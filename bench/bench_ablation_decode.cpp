// Ablation — decode-once token caching (paper §4: instruction tokens carry
// the decode result and "are cached for later reuse") vs re-decoding and
// re-binding operands on every fetch. The bypass mode rebuilds the full
// decode entry — DecodedInstruction, RegRef/Const operand binding, issue
// plan — for every dynamic instruction, the way per-stage interpretive
// simulators behave.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "machines/strongarm.hpp"
#include "util/table.hpp"

using namespace rcpn;

int main() {
  std::printf("Ablation: cached decoded tokens vs re-decode per fetch\n");
  std::printf("model: RCPN-StrongArm; REPRO_SCALE=%.2f\n\n", bench::repro_scale());

  util::Table table({"workload", "configuration", "Mcyc/s", "decode-cache hits",
                     "misses/rebuilds"});

  for (const char* name : {"crc", "blowfish"}) {
    const workloads::Workload* w = workloads::find(name);
    const sys::Program prog = workloads::build(*w, bench::scaled(*w));
    for (const bool bypass : {false, true}) {
      machines::StrongArmConfig cfg;
      cfg.decode_cache_bypass = bypass;
      machines::StrongArmSim sim(cfg);
      // Warm-up run: populate the decode cache (load_program keeps decoded
      // entries across reloads) so the timed run measures steady-state cache
      // behaviour, not its one-time construction.
      sim.run(prog);
      const auto s0 = sim.machine().dcache.stats();
      const auto [r, secs] = bench::timed([&] { return sim.run(prog); });
      const auto& ds = sim.machine().dcache.stats();
      table.add_row({name, bypass ? "re-decode every fetch" : "token cache (paper)",
                     bench::mcps(r.cycles, secs), std::to_string(ds.hits - s0.hits),
                     std::to_string((ds.misses + ds.rebuilds) -
                                    (s0.misses + s0.rebuilds))});
    }
  }
  table.print();

  std::printf("\nThe cached configuration decodes each static instruction once;"
              " bypass pays decode+bind per dynamic instruction.\n");
  return 0;
}
