// Ablation — reverse-topological processing with *selective* two-list
// stages (the paper's §4 optimization) vs the "usual, computationally
// expensive solution" of running the two-list (master/slave) algorithm on
// every stage. Reports both the speed difference and how many stages each
// strategy double-buffers.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "gen/generated.hpp"
#include "machines/strongarm.hpp"
#include "util/table.hpp"

using namespace rcpn;

namespace {

struct Row {
  double mcps = 0;
  double secs = 0;
  std::uint64_t cycles = 0;
  unsigned two_list_stages = 0;
};

Row measure(bool force_all, core::Backend backend, const sys::Program& prog) {
  machines::StrongArmConfig cfg;
  cfg.engine.force_two_list_all = force_all;
  cfg.engine.backend = backend;
  machines::StrongArmSim sim(cfg);
  const auto [r, secs] = bench::timed([&] { return sim.run(prog); });
  Row row;
  row.mcps = static_cast<double>(r.cycles) / secs / 1e6;
  row.secs = secs;
  row.cycles = r.cycles;
  for (unsigned s = 0; s < sim.net().num_stages(); ++s)
    if (sim.net().stage(static_cast<core::StageId>(s)).two_list())
      ++row.two_list_stages;
  return row;
}

}  // namespace

int main() {
  std::printf("Ablation: selective two-list (paper §4) vs two-list everywhere\n");
  std::printf("model: RCPN-StrongArm; REPRO_SCALE=%.2f\n\n", bench::repro_scale());

  util::Table table({"workload", "strategy", "two-list stages", "Mcyc/s",
                     "cycles", "program ms"});

  // The generated backend runs the ablation too when both emitted schedule
  // variants (default + two-list-everywhere, each registered under its own
  // options key) are linked into this binary.
  core::EngineOptions all_opts;
  all_opts.force_two_list_all = true;
  const bool has_gen = gen::find_generated_engine("StrongArm") != nullptr &&
                       gen::find_generated_engine("StrongArm", all_opts) != nullptr;
  if (!has_gen)
    std::printf("generated schedule variants not linked in - interpreted only\n\n");

  for (const char* name : {"crc", "go"}) {
    const workloads::Workload* w = workloads::find(name);
    const sys::Program prog = workloads::build(*w, bench::scaled(*w));
    const Row sel = measure(false, core::Backend::interpreted, prog);
    const Row all = measure(true, core::Backend::interpreted, prog);
    table.add_row({name, "selective (paper)", std::to_string(sel.two_list_stages),
                   util::Table::fmt(sel.mcps), std::to_string(sel.cycles),
                   util::Table::fmt(sel.secs * 1e3)});
    table.add_row({name, "two-list everywhere", std::to_string(all.two_list_stages),
                   util::Table::fmt(all.mcps), std::to_string(all.cycles),
                   util::Table::fmt(all.secs * 1e3)});
    if (has_gen) {
      const Row gsel = measure(false, core::Backend::generated, prog);
      const Row gall = measure(true, core::Backend::generated, prog);
      if (gsel.cycles != sel.cycles || gall.cycles != all.cycles) {
        std::fprintf(stderr, "generated/interpreted cycle mismatch on %s!\n", name);
        return 1;
      }
      table.add_row({name, "selective (generated)",
                     std::to_string(gsel.two_list_stages), util::Table::fmt(gsel.mcps),
                     std::to_string(gsel.cycles), util::Table::fmt(gsel.secs * 1e3)});
      table.add_row({name, "two-list everywhere (generated)",
                     std::to_string(gall.two_list_stages), util::Table::fmt(gall.mcps),
                     std::to_string(gall.cycles), util::Table::fmt(gall.secs * 1e3)});
    }
  }
  table.print();

  std::printf("\nDouble-buffering every latch costs twice: per-cycle overhead"
              " AND extra cycles, because forwarding\nbecomes visible one cycle"
              " later everywhere (conservative timing). The program-ms column"
              " is the\nend-to-end cost the paper's selective strategy"
              " avoids.\n");
  return 0;
}
