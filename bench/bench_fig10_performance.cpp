// Figure 10 — "Simulation performance (Million cycle/second)".
//
// The paper's headline experiment: simulation speed of SimpleScalar-Arm vs
// the RCPN-generated XScale and StrongArm simulators over the six
// benchmarks, plus the average row and the derived speedup factors.
// Absolute numbers are host-dependent; the claims under reproduction are the
// ordering (RCPN-StrongArm fastest of the two RCPN models because its net is
// simpler) and the RCPN-vs-SimpleScalar gap (see EXPERIMENTS.md for the
// honest discussion of the measured factor vs the paper's ~15x).
#include <cstdio>
#include <vector>

#include "baseline/simplescalar_sim.hpp"
#include "bench/bench_util.hpp"
#include "machines/strongarm.hpp"
#include "machines/xscale.hpp"
#include "util/table.hpp"

using namespace rcpn;

int main() {
  std::printf("Figure 10: simulation performance (Million cycles/second)\n");
  std::printf("host-dependent; REPRO_SCALE=%.2f\n\n", bench::repro_scale());

  util::Table table({"benchmark", "SimpleScalar-Arm", "RCPN-XScale",
                     "RCPN-StrongArm", "SA/SS speedup"});

  double sum_ss = 0, sum_xs = 0, sum_sa = 0;
  unsigned n = 0;
  std::vector<std::string> json_rows;
  baseline::SimpleScalarSim ss;
  machines::XScaleSim xs;
  machines::StrongArmSim sa;

  for (const workloads::Workload& w : workloads::all()) {
    const sys::Program prog = workloads::build(w, bench::scaled(w));

    const auto [rss, tss] = bench::timed([&] { return ss.run(prog); });
    const auto [rxs, txs] = bench::timed([&] { return xs.run(prog); });
    const auto [rsa, tsa] = bench::timed([&] { return sa.run(prog); });

    // All three must agree architecturally; a mismatch voids the row.
    if (rss.output != rxs.output || rss.output != rsa.output) {
      std::fprintf(stderr, "output mismatch on %s!\n", w.name.c_str());
      return 1;
    }

    const double mss = static_cast<double>(rss.cycles) / tss / 1e6;
    const double mxs = static_cast<double>(rxs.cycles) / txs / 1e6;
    const double msa = static_cast<double>(rsa.cycles) / tsa / 1e6;
    sum_ss += mss;
    sum_xs += mxs;
    sum_sa += msa;
    ++n;

    char speedup[16];
    std::snprintf(speedup, sizeof(speedup), "%.1fx", msa / mss);
    table.add_row({w.name, util::Table::fmt(mss), util::Table::fmt(mxs),
                   util::Table::fmt(msa), speedup});

    json_rows.push_back(bench::JsonObj()
                            .str("name", w.name)
                            .num("cycles_strongarm", rsa.cycles)
                            .num("cycles_xscale", rxs.cycles)
                            .num("cycles_simplescalar", rss.cycles)
                            .num("mcps_simplescalar", mss)
                            .num("mcps_xscale", mxs)
                            .num("mcps_strongarm", msa)
                            .num("speedup_strongarm_vs_simplescalar", msa / mss)
                            .render());
  }

  char speedup[16];
  std::snprintf(speedup, sizeof(speedup), "%.1fx", (sum_sa / n) / (sum_ss / n));
  table.add_row({"Average", util::Table::fmt(sum_ss / n),
                 util::Table::fmt(sum_xs / n), util::Table::fmt(sum_sa / n),
                 speedup});
  table.print();

  const std::string json =
      bench::JsonObj()
          .str("figure", "fig10")
          .str("metric", "simulation speed (million cycles/second)")
          .num("repro_scale", bench::repro_scale())
          .raw("benchmarks", bench::json_array(json_rows))
          .raw("average", bench::JsonObj()
                              .num("mcps_simplescalar", sum_ss / n)
                              .num("mcps_xscale", sum_xs / n)
                              .num("mcps_strongarm", sum_sa / n)
                              .num("speedup_strongarm_vs_simplescalar",
                                   (sum_sa / n) / (sum_ss / n))
                              .render())
          .render();
  if (bench::write_file("BENCH_fig10.json", json + "\n"))
    std::printf("\nwrote BENCH_fig10.json\n");

  std::printf("\npaper (P4/1.8GHz): SimpleScalar 0.6, RCPN-XScale 8.2,"
              " RCPN-StrongArm 12.2 Mcyc/s (~15x)\n");
  std::printf("shape checks: RCPN-StrongArm > RCPN-XScale: %s\n",
              sum_sa > sum_xs ? "yes (as in the paper)" : "NO");
  return 0;
}
