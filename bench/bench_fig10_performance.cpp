// Figure 10 — "Simulation performance (Million cycle/second)".
//
// The paper's headline experiment: simulation speed of SimpleScalar-Arm vs
// the RCPN-generated XScale and StrongArm simulators over the six
// benchmarks, plus the average row and the derived speedup factors.
// Absolute numbers are host-dependent; the claims under reproduction are the
// ordering (RCPN-StrongArm fastest of the two RCPN models because its net is
// simpler) and the RCPN-vs-SimpleScalar gap (see the README "Performance"
// section for the honest discussion of the measured factor vs the paper's
// ~15x).
//
// Both RCPN models run on every available engine backend:
//  * interpreted — core::Engine walking the net;
//  * compiled (c) — gen::CompiledEngine over the flattened tables;
//  * generated (g) — the standalone gen::emit_simulator artifact, present
//    when the build linked the emitted no-main TUs in (RCPN_GENERATED_SIMS).
// BENCH_fig10.json records compiled_vs_interpreted and, when available,
// generated_vs_compiled ratios so the perf trajectory across PRs tracks both
// devirtualization steps. CI fails if the compiled backend regresses below
// the interpreted one (aggregate over all workloads).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "baseline/simplescalar_sim.hpp"
#include "bench/bench_util.hpp"
#include "core/soa_scan.hpp"
#include "gen/generated.hpp"
#include "machines/strongarm.hpp"
#include "machines/xscale.hpp"
#include "util/table.hpp"

using namespace rcpn;

namespace {

/// Interleaved best-of-`k` A/B ratio: alternate the two sides so shared-host
/// noise hits both evenly, take each side's minimum as its floor. Returns
/// floor(off) / floor(on) — >1.0 means the optimization wins.
double ab_ratio(int k, const std::function<double()>& timed_on,
                const std::function<double()>& timed_off) {
  double t_on = 0.0, t_off = 0.0;
  for (int i = 0; i < k; ++i) {
    const double a = timed_on();
    const double b = timed_off();
    if (t_on == 0.0 || a < t_on) t_on = a;
    if (t_off == 0.0 || b < t_off) t_off = b;
  }
  return t_on > 0.0 ? t_off / t_on : 0.0;
}

}  // namespace

int main() {
  const bool has_gen_sa = gen::find_generated_engine("StrongArm") != nullptr;
  const bool has_gen_xs = gen::find_generated_engine("XScale") != nullptr;

  std::printf("Figure 10: simulation performance (Million cycles/second)\n");
  std::printf("host-dependent; REPRO_SCALE=%.2f; (c) = compiled, (g) = generated\n",
              bench::repro_scale());
  if (!has_gen_sa || !has_gen_xs)
    std::printf("generated backend not linked in — (g) columns skipped\n");
  std::printf("\n");

  util::Table table({"benchmark", "SimpleScalar", "XScale", "XScale(c)", "XScale(g)",
                     "StrongArm", "StrongArm(c)", "StrongArm(g)", "SA(c)/SS", "c/int",
                     "SAg/c", "XSg/c"});

  double sum_ss = 0, sum_xs = 0, sum_xc = 0, sum_sa = 0, sum_sc = 0;
  double sum_xg = 0, sum_sg = 0;
  unsigned n = 0;
  std::vector<std::string> json_rows;
  baseline::SimpleScalarSim ss;
  machines::XScaleSim xs;
  machines::StrongArmSim sa;
  machines::XScaleConfig xc_cfg;
  xc_cfg.engine.backend = core::Backend::compiled;
  machines::XScaleSim xc(xc_cfg);
  machines::StrongArmConfig sc_cfg;
  sc_cfg.engine.backend = core::Backend::compiled;
  machines::StrongArmSim sc(sc_cfg);
  std::unique_ptr<machines::XScaleSim> xg;
  std::unique_ptr<machines::StrongArmSim> sg;
  if (has_gen_xs) {
    machines::XScaleConfig cfg;
    cfg.engine.backend = core::Backend::generated;
    xg = std::make_unique<machines::XScaleSim>(cfg);
  }
  if (has_gen_sa) {
    machines::StrongArmConfig cfg;
    cfg.engine.backend = core::Backend::generated;
    sg = std::make_unique<machines::StrongArmSim>(cfg);
  }

  // Untimed warm-up: the first run of each simulator pays one-off costs
  // (page faults on freshly-allocated pools, branch-predictor and frequency
  // ramp-up) that would distort whichever benchmark happens to come first.
  {
    const workloads::Workload& w0 = workloads::all().front();
    const sys::Program warm = workloads::build(w0, 1);
    ss.run(warm);
    xs.run(warm);
    xc.run(warm);
    sa.run(warm);
    sc.run(warm);
    if (xg) xg->run(warm);
    if (sg) sg->run(warm);
  }

  for (const workloads::Workload& w : workloads::all()) {
    const sys::Program prog = workloads::build(w, bench::scaled(w));

    const auto [rss, tss] = bench::timed([&] { return ss.run(prog); });
    const auto [rxs, txs] = bench::timed([&] { return xs.run(prog); });
    const auto [rxc, txc] = bench::timed([&] { return xc.run(prog); });
    const auto [rsa, tsa] = bench::timed([&] { return sa.run(prog); });
    const auto [rsc, tsc] = bench::timed([&] { return sc.run(prog); });
    machines::RunResult rxg, rsg;
    double txg = 0, tsg = 0;
    if (xg) std::tie(rxg, txg) = bench::timed([&] { return xg->run(prog); });
    if (sg) std::tie(rsg, tsg) = bench::timed([&] { return sg->run(prog); });

    // All runs must agree architecturally; a mismatch voids the row. The
    // compiled/generated backends must also match their interpreted twins
    // cycle-exactly.
    if (rss.output != rxs.output || rss.output != rsa.output ||
        rss.output != rxc.output || rss.output != rsc.output ||
        (xg && rss.output != rxg.output) || (sg && rss.output != rsg.output)) {
      std::fprintf(stderr, "output mismatch on %s!\n", w.name.c_str());
      return 1;
    }
    if (rsc.cycles != rsa.cycles || rxc.cycles != rxs.cycles ||
        (sg && rsg.cycles != rsa.cycles) || (xg && rxg.cycles != rxs.cycles)) {
      std::fprintf(stderr, "backend cycle mismatch on %s!\n", w.name.c_str());
      return 1;
    }

    const double mss = static_cast<double>(rss.cycles) / tss / 1e6;
    const double mxs = static_cast<double>(rxs.cycles) / txs / 1e6;
    const double mxc = static_cast<double>(rxc.cycles) / txc / 1e6;
    const double msa = static_cast<double>(rsa.cycles) / tsa / 1e6;
    const double msc = static_cast<double>(rsc.cycles) / tsc / 1e6;
    const double mxg = xg ? static_cast<double>(rxg.cycles) / txg / 1e6 : 0.0;
    const double msg = sg ? static_cast<double>(rsg.cycles) / tsg / 1e6 : 0.0;
    sum_ss += mss;
    sum_xs += mxs;
    sum_xc += mxc;
    sum_sa += msa;
    sum_sc += msc;
    sum_xg += mxg;
    sum_sg += msg;
    ++n;

    char speedup[16], ratio[16], gsa[16], gxs[16];
    std::snprintf(speedup, sizeof(speedup), "%.1fx", msc / mss);
    std::snprintf(ratio, sizeof(ratio), "%.2fx", msc / msa);
    if (sg)
      std::snprintf(gsa, sizeof(gsa), "%.2fx", msg / msc);
    else
      std::snprintf(gsa, sizeof(gsa), "-");
    if (xg)
      std::snprintf(gxs, sizeof(gxs), "%.2fx", mxg / mxc);
    else
      std::snprintf(gxs, sizeof(gxs), "-");
    table.add_row({w.name, util::Table::fmt(mss), util::Table::fmt(mxs),
                   util::Table::fmt(mxc), xg ? util::Table::fmt(mxg) : "-",
                   util::Table::fmt(msa), util::Table::fmt(msc),
                   sg ? util::Table::fmt(msg) : "-", speedup, ratio, gsa, gxs});

    bench::JsonObj row;
    row.str("name", w.name)
        .num("cycles_strongarm", rsa.cycles)
        .num("cycles_xscale", rxs.cycles)
        .num("cycles_simplescalar", rss.cycles)
        .num("mcps_simplescalar", mss)
        .num("mcps_xscale", mxs)
        .num("mcps_xscale_compiled", mxc)
        .num("mcps_strongarm", msa)
        .num("mcps_strongarm_compiled", msc)
        .num("ns_per_cycle_strongarm", 1e3 / msa)
        .num("ns_per_cycle_strongarm_compiled", 1e3 / msc)
        // Keep the PR-1 meaning (interpreted vs baseline) so the perf
        // trajectory stays comparable across runs; each backend gets its
        // own key.
        .num("speedup_strongarm_vs_simplescalar", msa / mss)
        .num("speedup_strongarm_compiled_vs_simplescalar", msc / mss)
        .num("compiled_vs_interpreted_strongarm", msc / msa)
        .num("compiled_vs_interpreted_xscale", mxc / mxs);
    if (sg)
      row.num("mcps_strongarm_generated", msg)
          .num("generated_vs_compiled_strongarm", msg / msc);
    if (xg)
      row.num("mcps_xscale_generated", mxg)
          .num("generated_vs_compiled_xscale", mxg / mxc);
    json_rows.push_back(row.render());
  }

  // -- Per-optimization ablations (PR 8) -----------------------------------
  // Each hot-loop optimization timed against its own off-switch, interleaved
  // best-of-k (ab_ratio). Workloads are chosen to exercise the regime each
  // optimization targets; >= 1.0 means the switch pays for itself there.
  // Returns nullptr when the name is unknown so a renamed workload skips the
  // ablation loudly (0.0 = not measured) instead of silently measuring
  // whatever workload happens to be first.
  const auto find_workload = [](const char* name) -> const workloads::Workload* {
    for (const workloads::Workload& w : workloads::all())
      if (w.name == name) return &w;
    std::fprintf(stderr,
                 "fig10: workload '%s' not found - skipping ablation "
                 "(reported as 0.0 / not measured)\n",
                 name);
    return nullptr;
  };

  // (1) Decoded-uop cache — StrongArm compiled on the crc kernel; the off
  // switch re-decodes and re-binds operands on every fetch.
  double abl_decode = 0.0;
  if (const workloads::Workload* wp = find_workload("crc")) {
    const workloads::Workload& w = *wp;
    const sys::Program prog = workloads::build(w, bench::scaled(w));
    machines::StrongArmConfig on_cfg;
    on_cfg.engine.backend = core::Backend::compiled;
    machines::StrongArmConfig off_cfg = on_cfg;
    off_cfg.decode_cache_bypass = true;
    machines::StrongArmSim on_sim(on_cfg), off_sim(off_cfg);
    on_sim.run(prog);
    off_sim.run(prog);
    abl_decode = ab_ratio(
        5, [&] { return bench::timed([&] { return on_sim.run(prog); }).second; },
        [&] { return bench::timed([&] { return off_sim.run(prog); }).second; });
  }

  // (2) SIMD SoA scans — kernel-level at 32 slots with scattered keys, the
  // wide-pool regime the 8-wide filter targets (below soa::kSimdMinSlots the
  // kernels fall back to the scalar loop by design, and the in-order ARM
  // stages live there — see the e2e mcps columns for the whole-machine
  // picture). In a non-AVX2 build both sides run identical code.
  double abl_simd = 0.0;
  {
    constexpr std::size_t n = 32;
    std::uint32_t seed = 0x9e3779b9u;
    std::vector<std::uint32_t> keys(n);
    std::vector<core::Cycle> ready(n);
    for (std::size_t i = 0; i < n; ++i) {
      seed = seed * 1664525u + 1013904223u;
      keys[i] = (seed >> 16) % 5;
      ready[i] = (seed >> 8) % 3 ? 0 : 1000;
    }
    volatile std::uint64_t guard = 0;
    const auto pass = [&]() -> double {
      std::uint64_t sink = 0;
      const auto [unused, secs] = bench::timed([&] {
        for (int i = 0; i < 400000; ++i) {
          const auto want = static_cast<std::uint32_t>((i * 7) % 5);
          sink += core::soa::count_matches(keys.data(), n, want);
          sink += core::soa::find_match_ready(keys.data(), ready.data(), n, want, 10);
          core::soa::for_each_match_ready(keys.data(), ready.data(), n, want, 10,
                                          [&](std::size_t j) { sink += j; });
        }
        return 0;
      });
      (void)unused;
      guard = guard + sink;
      return secs;
    };
    abl_simd = ab_ratio(5,
                        [&] {
                          core::soa::scalar_override() = false;
                          return pass();
                        },
                        [&] {
                          core::soa::scalar_override() = true;
                          const double t = pass();
                          core::soa::scalar_override() = false;
                          return t;
                        });
  }

  // (3) Quiescence cycle-skipping — StrongArm compiled in a latency-bound
  // configuration (tiny direct-mapped caches, 1000-cycle miss penalty) on
  // go, where long miss stalls leave whole idle windows to jump over. The
  // default caches hit >99% on these kernels and leave nothing to skip, so
  // measuring there would only measure noise.
  double abl_quiesce = 0.0, quiesce_frac = 0.0;
  if (const workloads::Workload* wp = find_workload("go")) {
    const workloads::Workload& w = *wp;
    const sys::Program prog = workloads::build(w, bench::scaled(w));
    machines::StrongArmConfig on_cfg;
    on_cfg.engine.backend = core::Backend::compiled;
    on_cfg.mem.icache.size_bytes = 256;
    on_cfg.mem.icache.assoc = 1;
    on_cfg.mem.icache.miss_penalty = 1000;
    on_cfg.mem.dcache.size_bytes = 256;
    on_cfg.mem.dcache.assoc = 1;
    on_cfg.mem.dcache.miss_penalty = 1000;
    machines::StrongArmConfig off_cfg = on_cfg;
    on_cfg.engine.quiescence_skip = true;
    machines::StrongArmSim on_sim(on_cfg), off_sim(off_cfg);
    const machines::RunResult warm = on_sim.run(prog);
    off_sim.run(prog);
    quiesce_frac = warm.cycles > 0
                       ? static_cast<double>(on_sim.engine().stats().quiesced_cycles) /
                             static_cast<double>(warm.cycles)
                       : 0.0;
    abl_quiesce = ab_ratio(
        5, [&] { return bench::timed([&] { return on_sim.run(prog); }).second; },
        [&] { return bench::timed([&] { return off_sim.run(prog); }).second; });
  }

  // (4) Profile-guided emission ordering — measured below on the emitted
  // binaries (gen_sim_strongarm_crc_profile vs the default-ordered twin)
  // since the ordering is baked in at emission time.
  double abl_profile = 0.0;

  // Freestanding vs generated(linked) artifact: both binaries run their
  // golden workload under the same --time harness (N reps + warm-up), so the
  // ratio isolates what single-TU whole-program compilation buys over the
  // same engine linked against the library. Skipped silently when the
  // gen_sim_*/gen_fs_* binaries are not built.
  double fs_ratio_sa = 0.0, fs_ratio_xs = 0.0;
  double fs_mcps_sa = 0.0, fs_mcps_xs = 0.0;
#ifdef RCPN_BIN_DIR
  {
    // One --time sample: seconds spent and cycles simulated, both parsed
    // from the binary's report (no assumptions about the golden window).
    struct TimeSample {
      double secs = 0.0;
      double cycles = 0.0;
    };
    const auto time_binary = [](const std::string& bin, int reps) -> TimeSample {
      const std::string cmd = bin + " --time " + std::to_string(reps) + " 2>/dev/null";
      FILE* p = popen(cmd.c_str(), "r");
      if (p == nullptr) return {};
      char buf[512];
      std::string out;
      while (std::fgets(buf, sizeof(buf), p) != nullptr) out += buf;
      if (pclose(p) != 0) return {};
      const std::size_t spos = out.find("secs=");
      const std::size_t cpos = out.find("cycles=");
      if (spos == std::string::npos || cpos == std::string::npos) return {};
      return {std::atof(out.c_str() + spos + 5), std::atof(out.c_str() + cpos + 7)};
    };
    const auto ratio_for = [&time_binary](const char* key, double& fs_mcps) -> double {
      const std::string gen_bin = std::string(RCPN_BIN_DIR) + "/gen_sim_" + key;
      const std::string fs_bin = std::string(RCPN_BIN_DIR) + "/gen_fs_" + key;
      const int reps = 1500;
      double best_gen = 0.0, best_fs = 0.0, fs_cycles = 0.0;
      // Interleaved best-of-7: wall-clock noise on shared hosts (~±10% per
      // sample) hits both sides evenly instead of whichever binary ran
      // second, and the minimum over seven samples is a stable floor for
      // each side (single samples of this ratio swing 0.9-1.1x).
      for (int attempt = 0; attempt < 7; ++attempt) {
        const TimeSample tg = time_binary(gen_bin, reps);
        const TimeSample tf = time_binary(fs_bin, reps);
        if (tg.secs <= 0.0 || tf.secs <= 0.0) return 0.0;
        if (best_gen == 0.0 || tg.secs < best_gen) best_gen = tg.secs;
        if (best_fs == 0.0 || tf.secs < best_fs) best_fs = tf.secs;
        fs_cycles = tf.cycles;
      }
      fs_mcps = fs_cycles / best_fs / 1e6;
      return best_gen / best_fs;
    };
    fs_ratio_sa = ratio_for("strongarm_crc", fs_mcps_sa);
    fs_ratio_xs = ratio_for("xscale_adpcm", fs_mcps_xs);

    // Ablation (4): profile-ordered emission vs the default-ordered twin of
    // the same model, same --time harness, interleaved best-of-9 (the win is
    // a few percent, under the single-sample noise floor of a shared host).
    {
      const std::string def_bin = std::string(RCPN_BIN_DIR) + "/gen_sim_strongarm_crc";
      const std::string prof_bin =
          std::string(RCPN_BIN_DIR) + "/gen_sim_strongarm_crc_profile";
      double best_def = 0.0, best_prof = 0.0;
      for (int attempt = 0; attempt < 9; ++attempt) {
        const TimeSample td = time_binary(def_bin, 1500);
        const TimeSample tp = time_binary(prof_bin, 1500);
        if (td.secs <= 0.0 || tp.secs <= 0.0) {
          best_prof = 0.0;
          break;
        }
        if (best_def == 0.0 || td.secs < best_def) best_def = td.secs;
        if (best_prof == 0.0 || tp.secs < best_prof) best_prof = tp.secs;
      }
      if (best_prof > 0.0) abl_profile = best_def / best_prof;
    }
    if (fs_ratio_sa > 0.0 || fs_ratio_xs > 0.0) {
      char fs_sa[16] = "not measured", fs_xs[16] = "not measured";
      if (fs_ratio_sa > 0.0)
        std::snprintf(fs_sa, sizeof(fs_sa), "%.2fx", fs_ratio_sa);
      if (fs_ratio_xs > 0.0)
        std::snprintf(fs_xs, sizeof(fs_xs), "%.2fx", fs_ratio_xs);
      std::printf("\nfreestanding vs generated (golden workload, --time): "
                  "StrongArm %s, XScale %s\n",
                  fs_sa, fs_xs);
    } else {
      std::printf("\nfreestanding binaries not built - "
                  "freestanding_vs_generated ratios skipped\n");
    }
  }
#endif

  std::printf("\nper-optimization ablations (>= 1.0x means the switch pays):\n");
  std::printf("  decode cache (StrongArm(c), crc, vs bypass):        %.2fx\n", abl_decode);
  std::printf("  SIMD SoA scans (32-slot kernels, vs scalar, %s): %.2fx\n",
              core::soa::simd_compiled() ? "avx2" : "portable=identical", abl_simd);
  std::printf("  quiescence skip (latency-bound go, %.0f%% idle):      %.2fx\n",
              100.0 * quiesce_frac, abl_quiesce);
  if (abl_profile > 0.0)
    std::printf("  profile-guided emission order (gen_sim --time):     %.2fx\n",
                abl_profile);
  else
    std::printf("  profile-guided emission order: binaries not built - skipped\n");

  const double ratio_sa = sum_sc / sum_sa;
  const double ratio_xs = sum_xc / sum_xs;
  const double gratio_sa = sg ? sum_sg / sum_sc : 0.0;
  const double gratio_xs = xg ? sum_xg / sum_xc : 0.0;
  char speedup[16], ratio[16], gsa[16], gxs[16];
  std::snprintf(speedup, sizeof(speedup), "%.1fx", (sum_sc / n) / (sum_ss / n));
  std::snprintf(ratio, sizeof(ratio), "%.2fx", ratio_sa);
  if (sg)
    std::snprintf(gsa, sizeof(gsa), "%.2fx", gratio_sa);
  else
    std::snprintf(gsa, sizeof(gsa), "-");
  if (xg)
    std::snprintf(gxs, sizeof(gxs), "%.2fx", gratio_xs);
  else
    std::snprintf(gxs, sizeof(gxs), "-");
  table.add_row({"Average", util::Table::fmt(sum_ss / n), util::Table::fmt(sum_xs / n),
                 util::Table::fmt(sum_xc / n), xg ? util::Table::fmt(sum_xg / n) : "-",
                 util::Table::fmt(sum_sa / n), util::Table::fmt(sum_sc / n),
                 sg ? util::Table::fmt(sum_sg / n) : "-", speedup, ratio, gsa, gxs});
  table.print();

  bench::JsonObj avg;
  avg.num("mcps_simplescalar", sum_ss / n)
      .num("mcps_xscale", sum_xs / n)
      .num("mcps_xscale_compiled", sum_xc / n)
      .num("mcps_strongarm", sum_sa / n)
      .num("mcps_strongarm_compiled", sum_sc / n)
      .num("ns_per_cycle_strongarm", 1e3 * n / sum_sa)
      .num("ns_per_cycle_strongarm_compiled", 1e3 * n / sum_sc)
      .num("speedup_strongarm_vs_simplescalar", (sum_sa / n) / (sum_ss / n))
      .num("speedup_strongarm_compiled_vs_simplescalar", (sum_sc / n) / (sum_ss / n))
      .num("speedup_xscale_vs_simplescalar", (sum_xs / n) / (sum_ss / n))
      .num("speedup_xscale_compiled_vs_simplescalar", (sum_xc / n) / (sum_ss / n))
      .num("compiled_vs_interpreted_strongarm", ratio_sa)
      .num("compiled_vs_interpreted_xscale", ratio_xs);
  if (sg)
    avg.num("mcps_strongarm_generated", sum_sg / n)
        .num("generated_vs_compiled_strongarm", gratio_sa)
        .num("speedup_strongarm_generated_vs_simplescalar",
             (sum_sg / n) / (sum_ss / n));
  if (xg)
    avg.num("mcps_xscale_generated", sum_xg / n)
        .num("generated_vs_compiled_xscale", gratio_xs)
        .num("speedup_xscale_generated_vs_simplescalar",
             (sum_xg / n) / (sum_ss / n));
  if (fs_ratio_sa > 0.0)
    avg.num("freestanding_vs_generated_strongarm", fs_ratio_sa)
        .num("mcps_strongarm_freestanding_golden", fs_mcps_sa);
  if (fs_ratio_xs > 0.0)
    avg.num("freestanding_vs_generated_xscale", fs_ratio_xs)
        .num("mcps_xscale_freestanding_golden", fs_mcps_xs);

  bench::JsonObj ablations;
  ablations.num("decode_cache", abl_decode)
      .num("simd_scan", abl_simd)
      .str("simd_scan_path", core::soa::simd_compiled() ? "avx2" : "portable")
      .num("quiescence_skip", abl_quiesce)
      .num("quiescence_idle_fraction", quiesce_frac);
  if (abl_profile > 0.0) ablations.num("profile_order", abl_profile);

  const std::string json =
      bench::JsonObj()
          .str("figure", "fig10")
          .str("metric", "simulation speed (million cycles/second)")
          .num("repro_scale", bench::repro_scale())
          .raw("benchmarks", bench::json_array(json_rows))
          .raw("average", avg.render())
          .raw("ablations", ablations.render())
          .render();
  if (bench::write_file("BENCH_fig10.json", json + "\n"))
    std::printf("\nwrote BENCH_fig10.json\n");

  std::printf("\npaper (P4/1.8GHz): SimpleScalar 0.6, RCPN-XScale 8.2,"
              " RCPN-StrongArm 12.2 Mcyc/s (~15x)\n");
  std::printf("shape checks: RCPN-StrongArm > RCPN-XScale: %s\n",
              sum_sa > sum_xs ? "yes (as in the paper)" : "NO");
  std::printf("compiled vs interpreted: StrongArm %.2fx, XScale %.2fx (%s)\n",
              ratio_sa, ratio_xs,
              ratio_sa >= 1.0 ? "compiled not slower" : "COMPILED SLOWER");
  if (sg)
    std::printf("generated vs compiled: StrongArm %.2fx\n", gratio_sa);
  if (xg)
    std::printf("generated vs compiled: XScale %.2fx\n", gratio_xs);
  return 0;
}
