// Figure 11 — "Clocks per instruction (CPI)".
//
// SimpleScalar-Arm vs RCPN-StrongArm CPI per benchmark. The paper reports
// near-identical values with a ~10% gap attributed to model accuracy; the
// reproduction checks that both simulators' CPIs fall in the paper's range
// and that the per-benchmark gap stays small. The RCPN-XScale column is an
// extra (the paper plots StrongArm only).
#include <cmath>
#include <cstdio>

#include "baseline/simplescalar_sim.hpp"
#include "bench/bench_util.hpp"
#include "machines/strongarm.hpp"
#include "machines/xscale.hpp"
#include "util/table.hpp"

using namespace rcpn;

int main() {
  std::printf("Figure 11: clocks per instruction (CPI)\n");
  std::printf("REPRO_SCALE=%.2f\n\n", bench::repro_scale());

  util::Table table({"benchmark", "SimpleScalar-Arm", "RCPN-StrongArm", "diff",
                     "RCPN-XScale"});

  baseline::SimpleScalarSim ss;
  machines::StrongArmSim sa;
  machines::XScaleSim xs;
  machines::StrongArmConfig sc_cfg;
  sc_cfg.engine.backend = core::Backend::compiled;
  machines::StrongArmSim sc(sc_cfg);  // compiled backend; must report identical CPI
  double sum_ss = 0, sum_sa = 0, worst_gap = 0;
  unsigned n = 0;
  bool backends_match = true;
  std::vector<std::string> json_rows;

  for (const workloads::Workload& w : workloads::all()) {
    const sys::Program prog = workloads::build(w, bench::scaled(w));
    const auto rss = ss.run(prog);
    const auto rsa = sa.run(prog);
    const auto rxs = xs.run(prog);
    const auto rsc = sc.run(prog);
    // Cycle-accuracy means the backend choice cannot move a single cycle.
    if (rsc.cycles != rsa.cycles || rsc.instructions != rsa.instructions) {
      std::fprintf(stderr, "compiled backend CPI mismatch on %s!\n", w.name.c_str());
      backends_match = false;
    }
    const double gap = 100.0 * std::abs(rsa.cpi - rss.cpi) / rss.cpi;
    worst_gap = std::max(worst_gap, gap);
    sum_ss += rss.cpi;
    sum_sa += rsa.cpi;
    ++n;
    char diff[16];
    std::snprintf(diff, sizeof(diff), "%+.0f%%", 100.0 * (rsa.cpi - rss.cpi) / rss.cpi);
    table.add_row({w.name, util::Table::fmt(rss.cpi, 2), util::Table::fmt(rsa.cpi, 2),
                   diff, util::Table::fmt(rxs.cpi, 2)});

    json_rows.push_back(bench::JsonObj()
                            .str("name", w.name)
                            .num("cycles_strongarm", rsa.cycles)
                            .num("cycles_xscale", rxs.cycles)
                            .num("cycles_simplescalar", rss.cycles)
                            .num("instructions_strongarm", rsa.instructions)
                            .num("cpi_simplescalar", rss.cpi)
                            .num("cpi_strongarm", rsa.cpi)
                            .num("cpi_xscale", rxs.cpi)
                            .num("gap_pct", gap)
                            .render());
  }
  char diff[16];
  std::snprintf(diff, sizeof(diff), "%+.0f%%",
                100.0 * (sum_sa / n - sum_ss / n) / (sum_ss / n));
  table.add_row({"Average", util::Table::fmt(sum_ss / n, 2),
                 util::Table::fmt(sum_sa / n, 2), diff, ""});
  table.print();

  const std::string json =
      bench::JsonObj()
          .str("figure", "fig11")
          .str("metric", "clocks per instruction (CPI)")
          .num("repro_scale", bench::repro_scale())
          .raw("benchmarks", bench::json_array(json_rows))
          .raw("average", bench::JsonObj()
                              .num("cpi_simplescalar", sum_ss / n)
                              .num("cpi_strongarm", sum_sa / n)
                              .num("worst_gap_pct", worst_gap)
                              .render())
          .raw("compiled_backend_cpi_identical", backends_match ? "true" : "false")
          .render();
  if (bench::write_file("BENCH_fig11.json", json + "\n"))
    std::printf("\nwrote BENCH_fig11.json\n");

  std::printf("\npaper: SimpleScalar avg 1.8, RCPN-StrongArm avg 2.0 (~10%% gap"
              " from model accuracy)\n");
  std::printf("worst per-benchmark gap here: %.0f%%  (%s)\n", worst_gap,
              worst_gap <= 25.0 ? "within the paper's framing"
                                : "larger than the paper's framing");
  std::printf("compiled backend CPI identical to interpreted: %s\n",
              backends_match ? "yes" : "NO");
  return backends_match ? 0 : 1;
}
