// Observability overhead bench: the "zero-cost when compiled out" contract.
//
// Runs the StrongArm golden workload on the compiled backend twice per trial
// — once with no hub attached ("base") and once with EngineOptions::obs set
// ("obs") — interleaved, min-of-N. What that measures depends on the build:
//
//  * RCPN_OBS=OFF (default): the probe call sites do not exist in the binary
//    and the obs pointer is dead weight in EngineOptions, so the two legs
//    must time identically. The bench FAILS (exit 1) if obs/base exceeds
//    1.02 — the <=2% ratchet CI runs on every push.
//  * RCPN_OBS=ON: the ratio is the real probe cost (profile aggregation +
//    ring writes). Reported for the record, never failed on: recording
//    being visibly non-free is expected and documented.
//
// Emits BENCH_obs_overhead.json. REPRO_SCALE scales the per-trial rep count.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.hpp"
#include "machines/golden_runner.hpp"
#include "obs/probe.hpp"

using namespace rcpn;

namespace {

constexpr double kMaxCompiledOutRatio = 1.02;

double run_leg(const core::EngineOptions& options, unsigned reps,
               std::uint64_t& cycles_out) {
  const auto [cycles, secs] = bench::timed([&]() {
    std::uint64_t cycles = 0;
    for (unsigned i = 0; i < reps; ++i)
      cycles +=
          machines::run_golden_machine_full("strongarm_crc", options).stats.cycles;
    return cycles;
  });
  cycles_out = cycles;
  return secs;
}

}  // namespace

int main() {
  // Keep each timed leg well above timer granularity even at low
  // REPRO_SCALE — a 2% ratchet on a sub-millisecond leg is pure noise.
  const unsigned reps = std::max(8u, static_cast<unsigned>(40 * bench::repro_scale()));
  constexpr int kTrials = 5;

  core::EngineOptions base;
  base.backend = core::Backend::compiled;

  obs::Hub hub;
  core::EngineOptions with_obs = base;
  with_obs.obs = &hub;

#if RCPN_OBS
  const bool probes_compiled_in = true;
#else
  const bool probes_compiled_in = false;
#endif

  std::printf("Observability overhead: StrongArm golden workload, compiled "
              "backend, probes %s\n"
              "%d trials x %u reps, interleaved, min-of-trials\n\n",
              probes_compiled_in ? "COMPILED IN (RCPN_OBS=ON)" : "compiled out",
              kTrials, reps);

  double best_base = 1e300, best_obs = 1e300;
  std::uint64_t cycles = 0;
  for (int t = 0; t < kTrials; ++t) {
    std::uint64_t c1 = 0, c2 = 0;
    const double sb = run_leg(base, reps, c1);
    const double so = run_leg(with_obs, reps, c2);
    best_base = std::min(best_base, sb);
    best_obs = std::min(best_obs, so);
    cycles = c1;
    std::printf("  trial %d: base %.4fs  obs %.4fs\n", t + 1, sb, so);
  }

  const double ratio = best_base > 0.0 ? best_obs / best_base : 0.0;
  std::printf("\nbase %.4fs (%s Mcps)  obs %.4fs  ratio %.4f\n", best_base,
              bench::mcps(cycles, best_base).c_str(), best_obs, ratio);

  const std::string json =
      bench::JsonObj()
          .str("figure", "obs_overhead")
          .str("metric",
               "attached-hub vs no-hub wall time, StrongArm golden workload")
          .num("probes_compiled_in", std::uint64_t{probes_compiled_in ? 1u : 0u})
          .num("reps", std::uint64_t{reps})
          .num("base_secs", best_base)
          .num("obs_secs", best_obs)
          .num("ratio", ratio)
          .num("max_ratio_compiled_out", kMaxCompiledOutRatio)
          .render();
  if (bench::write_file("BENCH_obs_overhead.json", json + "\n"))
    std::printf("wrote BENCH_obs_overhead.json\n");

  if (!probes_compiled_in && ratio > kMaxCompiledOutRatio) {
    std::fprintf(stderr,
                 "FAIL: probes are compiled out but the obs leg ran %.2f%% "
                 "slower than base (ceiling %.0f%%) — the gating leaks into "
                 "the hot loop\n",
                 (ratio - 1.0) * 100.0, (kMaxCompiledOutRatio - 1.0) * 100.0);
    return 1;
  }
  if (probes_compiled_in)
    std::printf("probes compiled in: recording cost %.1f%% (informational)\n",
                (ratio - 1.0) * 100.0);
  return 0;
}
