// Ablation — the Fig 6 sorted per-(place, type) transition table vs the
// CPN-style global enabled-transition search (paper §4: "Searching for
// enabled transitions ... can be very time consuming in generic Petri Net
// models"). Two measurements:
//   1. the RCPN engine with linear_search forced on (same net, no table);
//   2. a genuinely generic CPN simulator (NaiveEngine) running the
//      *converted* Fig 2 net, whose every step re-scans all transitions and
//      double-buffers all places.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "cpn/naive_engine.hpp"
#include "cpn/rcpn_to_cpn.hpp"
#include "machines/simple_pipeline.hpp"
#include "machines/strongarm.hpp"
#include "util/table.hpp"

using namespace rcpn;

int main() {
  std::printf("Ablation: Fig 6 sorted candidate table vs global search\n");
  std::printf("REPRO_SCALE=%.2f\n\n", bench::repro_scale());

  // Part 1: StrongArm model, identical timing, different lookup strategy.
  util::Table table({"configuration", "Mcyc/s", "cycles"});
  const workloads::Workload* w = workloads::find("crc");
  const sys::Program prog = workloads::build(*w, bench::scaled(*w));
  for (const bool linear : {false, true}) {
    machines::StrongArmConfig cfg;
    cfg.engine.linear_search = linear;
    machines::StrongArmSim sim(cfg);
    const auto [r, secs] = bench::timed([&] { return sim.run(prog); });
    table.add_row({linear ? "global search (CPN-style)" : "sorted table (Fig 6)",
                   bench::mcps(r.cycles, secs), std::to_string(r.cycles)});
  }
  table.print();

  // Part 2: generic CPN engine on the converted Fig 2 net vs the RCPN engine
  // on the original — firings per second through the same structure.
  std::printf("\nFig 2 pipeline, tokens through the net:\n");
  const std::uint64_t kTokens = bench::scaled_count(400'000);

  machines::SimplePipeline pipe(kTokens);
  const auto [cycles_rcpn, secs_rcpn] =
      bench::timed([&] { return pipe.run(1u << 30); });
  const double rcpn_fps =
      static_cast<double>(pipe.engine().stats().firings) / secs_rcpn / 1e6;

  machines::SimplePipeline proto(1);
  const cpn::ConversionResult conv = cpn::convert(proto.net());
  cpn::NaiveEngine naive(conv.net);
  const auto [fired, secs_naive] = bench::timed([&] {
    // Generator transitions fire freely: run a comparable number of cycles.
    std::uint64_t total = 0;
    while (naive.firings() < kTokens * 3) total += naive.step();
    return total;
  });
  const double naive_fps = static_cast<double>(naive.firings()) / secs_naive / 1e6;

  util::Table t2({"engine", "firings/s (M)", "search visits per firing"});
  t2.add_row({"RCPN engine (sorted tables)", util::Table::fmt(rcpn_fps, 2), "1.0"});
  char visits[32];
  std::snprintf(visits, sizeof(visits), "%.1f",
                static_cast<double>(naive.search_visits()) /
                    static_cast<double>(naive.firings()));
  t2.add_row({"naive CPN engine (converted net)", util::Table::fmt(naive_fps, 2),
              visits});
  t2.print();
  (void)cycles_rcpn;
  (void)fired;
  return 0;
}
