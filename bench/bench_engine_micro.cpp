// Micro-benchmarks (google-benchmark) of the engine primitives behind the
// paper's §4 speedups: the per-cycle step cost on a minimal net, decode
// cache hits vs full decode+bind, cache access fast path vs the generic
// walker, and the RegRef hazard-check primitives.
#include <benchmark/benchmark.h>

#include <vector>

#include "baseline/ss_structures.hpp"
#include "core/token_store.hpp"
#include "machines/simple_pipeline.hpp"
#include "machines/strongarm.hpp"
#include "mem/cache.hpp"
#include "regfile/reg_ref.hpp"
#include "workloads/workloads.hpp"

using namespace rcpn;

static rcpn::core::EngineOptions backend_opts(rcpn::core::Backend b) {
  rcpn::core::EngineOptions o;
  o.backend = b;
  return o;
}

static void BM_EngineStepFig2(benchmark::State& state) {
  // arg 0: interpreted core::Engine; arg 1: compiled gen::CompiledEngine.
  const auto backend = state.range(0) == 1 ? core::Backend::compiled
                                           : core::Backend::interpreted;
  machines::SimplePipeline pipe(~0ull, backend_opts(backend));  // never stops
  for (auto _ : state) pipe.engine().step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineStepFig2)->Arg(0)->Arg(1);

static void BM_StrongArmCycle(benchmark::State& state) {
  machines::StrongArmConfig cfg;
  cfg.engine.backend = state.range(0) == 1 ? core::Backend::compiled
                                           : core::Backend::interpreted;
  machines::StrongArmSim sim(cfg);
  const workloads::Workload* w = workloads::find("crc");
  const sys::Program prog = workloads::build(*w, 50);
  // Reset the engine *before* load_program: reset squashes leftover in-flight
  // tokens, whose operands are owned by the decode cache load_program clears.
  sim.engine().reset();
  sim.machine().load_program(prog);
  for (auto _ : state) {
    if (sim.engine().stopped()) {  // restart when the program finishes
      state.PauseTiming();
      sim.engine().reset();
      sim.machine().load_program(prog);
      state.ResumeTiming();
    }
    sim.engine().step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StrongArmCycle)->Arg(0)->Arg(1);

static void BM_TokenStoreScan(benchmark::State& state) {
  // The compiled backend's Process(place) filter: scan a stage's SoA token
  // pool (packed key + ready arrays) for consumable instruction tokens of
  // one place. arg: pool population.
  const unsigned n = static_cast<unsigned>(state.range(0));
  core::TokenStore store;
  std::vector<core::InstructionToken> tokens(n);
  for (unsigned i = 0; i < n; ++i) {
    tokens[i].place = static_cast<core::PlaceId>(i % 4);  // 4 places share the stage
    tokens[i].ready = i % 2;
    store.insert_visible(&tokens[i]);
  }
  const core::TokenStore::Key want =
      core::TokenStore::key(core::PlaceId{1}, core::TokenKind::instruction);
  const core::Cycle clock = 0;  // ready values are 0/1: half the slots fail
  for (auto _ : state) {
    unsigned hits = 0;
    const core::TokenStore::Key* keys = store.keys();
    const core::Cycle* ready = store.ready();
    for (std::size_t i = 0; i < store.size(); ++i)
      if (keys[i] == want && ready[i] <= clock) ++hits;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_TokenStoreScan)->Arg(4)->Arg(16)->Arg(64);

static void BM_TokenStoreRemove(benchmark::State& state) {
  // The compiled/generated firing path's token removal. arg0: pool
  // population; arg1 = 1: the same-index hint the scan loop carries
  // (remove_visible_at — O(1) when the hint holds), 0: the plain pointer
  // search (remove_visible — O(n) find). Removal targets walk the pool
  // front-to-back, the scan order of Process(place).
  const unsigned n = static_cast<unsigned>(state.range(0));
  const bool hinted = state.range(1) == 1;
  core::TokenStore store;
  std::vector<core::InstructionToken> tokens(n);
  for (unsigned i = 0; i < n; ++i) {
    tokens[i].place = core::PlaceId{1};
    store.insert_visible(&tokens[i]);
  }
  unsigned next = 0;
  for (auto _ : state) {
    core::Token* victim = store.at(next % store.size());
    const std::size_t hint = next % store.size();
    const bool removed =
        hinted ? store.remove_visible_at(hint, victim) : store.remove_visible(victim);
    benchmark::DoNotOptimize(removed);
    store.insert_visible(victim);  // refill so the population stays at n
    ++next;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TokenStoreRemove)->Args({16, 0})->Args({16, 1})->Args({64, 0})->Args({64, 1});

static void BM_DecodeCacheHit(benchmark::State& state) {
  machines::ArmMachine::Config cfg;
  machines::ArmMachine m(cfg);
  m.mem.memory().write32(0x8000, 0xE0811002);  // add r1, r1, r2
  core::InstructionToken* t = m.dcache.get(0x8000, 0xE0811002);
  benchmark::DoNotOptimize(t);
  for (auto _ : state) {
    core::InstructionToken* tok = m.dcache.get(0x8000, 0xE0811002);
    benchmark::DoNotOptimize(tok);
  }
}
BENCHMARK(BM_DecodeCacheHit);

static void BM_DecodeBindFull(benchmark::State& state) {
  machines::ArmMachine::Config cfg;
  machines::ArmMachine m(cfg);
  m.dcache.set_bypass(true);  // force full decode + operand binding
  for (auto _ : state) {
    core::InstructionToken* tok = m.dcache.get(0x8000, 0xE0811002);
    benchmark::DoNotOptimize(tok);
  }
}
BENCHMARK(BM_DecodeBindFull);

static void BM_CacheAccessFastPath(benchmark::State& state) {
  mem::Cache cache({16 * 1024, 32, 32, 1, 24, true});
  std::uint32_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr, false));
    addr = (addr + 4) & 0x3fff;  // sequential stream: mostly same-line
  }
}
BENCHMARK(BM_CacheAccessFastPath);

static void BM_CacheAccessGenericWalk(benchmark::State& state) {
  baseline::SsCache cache("bench", 16, 32, 32, 1, 24);
  std::uint32_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr, false));
    addr = (addr + 4) & 0x3fff;
  }
}
BENCHMARK(BM_CacheAccessGenericWalk);

static void BM_RegRefHazardCheck(benchmark::State& state) {
  regfile::RegisterFile rf(17, regfile::WritePolicy::single_writer);
  rf.add_identity_registers(16);
  core::PlaceId owner = core::kNoPlace;
  regfile::RegRef r;
  r.bind(&rf, 3, reinterpret_cast<regfile::PlaceId*>(&owner));
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.can_read());
    benchmark::DoNotOptimize(r.can_write());
  }
}
BENCHMARK(BM_RegRefHazardCheck);

static void BM_RegRefReserveWriteback(benchmark::State& state) {
  regfile::RegisterFile rf(17, regfile::WritePolicy::single_writer);
  rf.add_identity_registers(16);
  core::PlaceId owner = core::kNoPlace;
  regfile::RegRef r;
  r.bind(&rf, 3, reinterpret_cast<regfile::PlaceId*>(&owner));
  for (auto _ : state) {
    r.reserve_write();
    r.set_value(42);
    r.writeback();
  }
}
BENCHMARK(BM_RegRefReserveWriteback);

BENCHMARK_MAIN();
