// Model-complexity table (paper §5's modeling-effort discussion: six
// operation-class sub-nets for the ARM7 models, RCPN structure mirroring the
// pipeline diagram) plus the CPN blow-up the reduction avoids: converting
// each model back to a standard CPN restores the capacity back-edge places
// and arcs of Fig 2(b). Emits machine-readable BENCH_model_stats.json like
// the fig10/fig11 benches, so model-size growth is tracked across PRs.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "cpn/rcpn_to_cpn.hpp"
#include "machines/fig5_processor.hpp"
#include "machines/golden_runner.hpp"
#include "machines/simple_pipeline.hpp"
#include "machines/strongarm.hpp"
#include "machines/tomasulo.hpp"
#include "machines/xscale.hpp"
#include "util/table.hpp"

using namespace rcpn;

namespace {

void add_row(util::Table& t, std::vector<std::string>& json_rows, const char* name,
             const core::Net& net) {
  const auto ms = net.model_stats();
  const cpn::ConversionResult conv = cpn::convert(net);
  t.add_row({name, std::to_string(ms.subnets), std::to_string(ms.stages - 1),
             std::to_string(ms.places - 1), std::to_string(ms.transitions),
             std::to_string(ms.arcs),
             std::to_string(conv.net.num_places()) + "/" +
                 std::to_string(conv.net.num_transitions()) + "/" +
                 std::to_string(conv.net.num_arcs())});
  json_rows.push_back(bench::JsonObj()
                          .str("name", name)
                          .num("subnets", std::uint64_t{ms.subnets})
                          .num("stages", std::uint64_t{ms.stages - 1})
                          .num("places", std::uint64_t{ms.places - 1})
                          .num("transitions", std::uint64_t{ms.transitions})
                          .num("arcs", std::uint64_t{ms.arcs})
                          .num("cpn_places", std::uint64_t{conv.net.num_places()})
                          .num("cpn_transitions",
                               std::uint64_t{conv.net.num_transitions()})
                          .num("cpn_arcs", std::uint64_t{conv.net.num_arcs()})
                          .render());
}

}  // namespace

int main() {
  std::printf("Model complexity: RCPN structure vs converted standard CPN\n\n");
  util::Table table({"model", "sub-nets", "stages", "places", "transitions",
                     "arcs", "CPN p/t/a"});
  std::vector<std::string> json_rows;

  machines::SimplePipeline fig2(1);
  add_row(table, json_rows, "Fig2 pipeline", fig2.net());

  machines::Fig5Processor fig5;
  add_row(table, json_rows, "Fig4/5 processor", fig5.net());

  machines::TomasuloCore tomasulo;
  add_row(table, json_rows, "Tomasulo (ext)", tomasulo.net());

  machines::StrongArmSim sa;
  add_row(table, json_rows, "StrongArm", sa.net());

  machines::XScaleSim xs;
  add_row(table, json_rows, "XScale", xs.net());

  table.print();

  // Dynamic stall attribution: run each machine's golden workload (compiled
  // backend) and roll the always-on per-place stall-cause counters up per
  // cause — the same breakdown Stats::report() prints per place, tracked
  // across PRs as aggregate behaviour of the fixed workloads.
  std::printf("\nGolden-workload stall causes (compiled backend)\n\n");
  util::Table stall_table(
      {"machine", "stalls", "no_ready_token", "guard_rejected", "capacity"});
  std::vector<std::string> stall_rows;
  for (const std::string& key : machines::golden_machine_keys()) {
    core::EngineOptions options;
    options.backend = core::Backend::compiled;
    const machines::GoldenRunResult r = machines::run_golden_machine_full(key, options);
    std::uint64_t causes[core::kNumStallCauses] = {0, 0, 0};
    std::uint64_t total = 0;
    const std::size_t np = r.stats.place_stall_causes.size() / core::kNumStallCauses;
    for (std::size_t p = 0; p < np; ++p)
      for (unsigned c = 0; c < core::kNumStallCauses; ++c)
        causes[c] += r.stats.place_stall_causes[p * core::kNumStallCauses + c];
    for (const std::uint64_t s : r.stats.place_stalls) total += s;
    stall_table.add_row({key, std::to_string(total), std::to_string(causes[0]),
                         std::to_string(causes[1]), std::to_string(causes[2])});
    stall_rows.push_back(bench::JsonObj()
                             .str("machine", key)
                             .num("stalls", total)
                             .num("no_ready_token", causes[0])
                             .num("guard_rejected", causes[1])
                             .num("capacity_backpressure", causes[2])
                             .render());
  }
  stall_table.print();

  const std::string json = bench::JsonObj()
                               .str("figure", "model_stats")
                               .str("metric", "RCPN model complexity vs converted CPN")
                               .raw("models", bench::json_array(json_rows))
                               .raw("golden_stall_causes", bench::json_array(stall_rows))
                               .render();
  if (bench::write_file("BENCH_model_stats.json", json + "\n"))
    std::printf("\nwrote BENCH_model_stats.json\n");

  std::printf("\npaper: \"there are six RCPN sub-nets in the StrongArm model\""
              " — each ARM7 operation class contributes one sub-net.\n");
  std::printf("The CPN column shows the structure RCPN's capacity rule removes"
              " (extra resource places + back-edge arcs).\n");
  return 0;
}
