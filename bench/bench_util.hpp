// Shared helpers for the benchmark harnesses: wall-clock timing of complete
// simulator runs and environment-controlled workload scaling.
//
// REPRO_SCALE (float, default 1.0) multiplies every workload's default
// iteration count, so the paper-sized runs can be stretched for more stable
// numbers or shrunk for smoke testing.
#pragma once

#include <chrono>
#include <cstdlib>
#include <string>

#include "workloads/workloads.hpp"

namespace bench {

inline double repro_scale() {
  if (const char* env = std::getenv("REPRO_SCALE")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return 1.0;
}

inline unsigned scaled(const rcpn::workloads::Workload& w) {
  const double s = static_cast<double>(w.default_scale) * repro_scale();
  return s < 1.0 ? 1u : static_cast<unsigned>(s);
}

/// Run `fn` once and return (result, seconds).
template <typename Fn>
auto timed(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  auto result = fn();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return std::pair{std::move(result), secs};
}

inline std::string mcps(std::uint64_t cycles, double secs) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(cycles) / secs / 1e6);
  return buf;
}

}  // namespace bench
