// Shared helpers for the benchmark harnesses: wall-clock timing of complete
// simulator runs and environment-controlled workload scaling.
//
// REPRO_SCALE (float, default 1.0) multiplies every workload's default
// iteration count, so the paper-sized runs can be stretched for more stable
// numbers or shrunk for smoke testing.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "workloads/workloads.hpp"

namespace bench {

inline double repro_scale() {
  // Parsed once: a malformed value must be rejected loudly — atof's silent 0
  // used to mean "run full-scale despite the user asking for a smoke run",
  // and a negative/zero scale would shrink workloads to empty traces (NaN
  // mcps, degenerate percentiles).
  static const double cached = [] {
    const char* env = std::getenv("REPRO_SCALE");
    if (env == nullptr || *env == '\0') return 1.0;
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end == env || *end != '\0' || !(v > 0.0) || v != v) {
      std::fprintf(stderr,
                   "bench: invalid REPRO_SCALE='%s' (expected a positive "
                   "number, e.g. REPRO_SCALE=0.02)\n",
                   env);
      std::exit(2);
    }
    return v;
  }();
  return cached;
}

inline unsigned scaled(const rcpn::workloads::Workload& w) {
  const double s = static_cast<double>(w.default_scale) * repro_scale();
  return s < 1.0 ? 1u : static_cast<unsigned>(s);
}

/// Scale an arbitrary iteration count by REPRO_SCALE, clamped to >= 1 so a
/// tiny scale can never produce a zero-length run.
inline std::uint64_t scaled_count(std::uint64_t base) {
  const double s = static_cast<double>(base) * repro_scale();
  return s < 1.0 ? 1ull : static_cast<std::uint64_t>(s);
}

/// Run `fn` once and return (result, seconds).
template <typename Fn>
auto timed(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  auto result = fn();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return std::pair{std::move(result), secs};
}

inline std::string mcps(std::uint64_t cycles, double secs) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(cycles) / secs / 1e6);
  return buf;
}

// ---------------------------------------------------------------------------
// Minimal JSON emission for the machine-readable BENCH_*.json files the
// figure benches write next to their human tables, so successive PRs have a
// perf trajectory to regress against. Flat objects/arrays of numbers and
// strings are all a bench report needs.
// ---------------------------------------------------------------------------

class JsonObj {
 public:
  JsonObj& num(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return raw(key, buf);
  }
  JsonObj& num(const std::string& key, std::uint64_t v) { return raw(key, std::to_string(v)); }
  JsonObj& str(const std::string& key, const std::string& v) {
    std::string escaped;
    for (char c : v) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    return raw(key, "\"" + escaped + "\"");
  }
  JsonObj& raw(const std::string& key, const std::string& rendered_value) {
    if (!body_.empty()) body_ += ", ";
    body_ += "\"" + key + "\": " + rendered_value;
    return *this;
  }
  std::string render() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

inline std::string json_array(const std::vector<std::string>& rendered_elems) {
  std::string out = "[";
  for (std::size_t i = 0; i < rendered_elems.size(); ++i) {
    if (i != 0) out += ", ";
    out += rendered_elems[i];
  }
  return out + "]";
}

/// Write `content` to `path` (current directory by default); returns success.
inline bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  std::fclose(f);
  return ok;
}

}  // namespace bench
