// CPN library, RCPN->CPN conversion and analysis tests, centred on the
// paper's Fig 2 example: the converted net must carry the capacity
// back-edges, stay bounded, be deadlock-free and have every transition
// fireable.
#include <gtest/gtest.h>

#include "cpn/analysis.hpp"
#include "cpn/naive_engine.hpp"
#include "cpn/rcpn_to_cpn.hpp"
#include "machines/fig5_processor.hpp"
#include "machines/simple_pipeline.hpp"
#include "model/model_builder.hpp"

namespace rcpn::cpn {
namespace {

CpnNet tiny_net() {
  // p0 --t0--> p1 --t1--> p0 with one black token.
  CpnNet net("tiny", 1);
  const int p0 = net.add_place("p0");
  const int p1 = net.add_place("p1");
  CpnTransition& t0 = net.add_transition("t0");
  t0.in.push_back({p0, kBlack, 1});
  t0.out.push_back({p1, kBlack, 1});
  CpnTransition& t1 = net.add_transition("t1");
  t1.in.push_back({p1, kBlack, 1});
  t1.out.push_back({p0, kBlack, 1});
  Marking m0 = net.empty_marking();
  m0.add(p0, kBlack, 1);
  net.set_initial_marking(std::move(m0));
  return net;
}

TEST(Cpn, EnablingAndFiring) {
  CpnNet net = tiny_net();
  Marking m = net.initial_marking();
  EXPECT_TRUE(net.enabled(0, m));
  EXPECT_FALSE(net.enabled(1, m));
  net.fire(0, m);
  EXPECT_FALSE(net.enabled(0, m));
  EXPECT_TRUE(net.enabled(1, m));
  EXPECT_EQ(m(1, kBlack), 1u);
}

TEST(Cpn, MultiTokenArcWeights) {
  CpnNet net("w", 1);
  const int p = net.add_place("p");
  const int q = net.add_place("q");
  CpnTransition& t = net.add_transition("t");
  t.in.push_back({p, kBlack, 3});
  t.out.push_back({q, kBlack, 2});
  Marking m = net.empty_marking();
  m.add(p, kBlack, 2);
  EXPECT_FALSE(net.enabled(0, m));
  m.add(p, kBlack, 1);
  EXPECT_TRUE(net.enabled(0, m));
  net.fire(0, m);
  EXPECT_EQ(m(p, kBlack), 0u);
  EXPECT_EQ(m(q, kBlack), 2u);
}

TEST(CpnAnalysis, TinyCycleIsOneBoundedAndLive) {
  const CpnNet net = tiny_net();
  const AnalysisResult res = analyze(net);
  EXPECT_EQ(res.states, 2u);
  EXPECT_TRUE(res.bounded(1));
  EXPECT_EQ(res.deadlocks, 0u);
  EXPECT_TRUE(res.all_fireable());
  EXPECT_FALSE(res.truncated);
}

TEST(CpnAnalysis, DetectsDeadlock) {
  CpnNet net("dead", 1);
  const int p = net.add_place("p");
  const int q = net.add_place("q");
  CpnTransition& t = net.add_transition("t");
  t.in.push_back({p, kBlack, 1});
  t.out.push_back({q, kBlack, 1});
  Marking m0 = net.empty_marking();
  m0.add(p, kBlack, 1);
  net.set_initial_marking(std::move(m0));
  const AnalysisResult res = analyze(net);
  EXPECT_EQ(res.deadlocks, 1u);  // q-marking has no successor
}

TEST(CpnAnalysis, TruncationReported) {
  // Unbounded generator: a source transition with no inputs.
  CpnNet net("unbounded", 1);
  const int p = net.add_place("p");
  CpnTransition& t = net.add_transition("gen");
  t.out.push_back({p, kBlack, 1});
  net.set_initial_marking(net.empty_marking());
  AnalysisOptions opt;
  opt.max_states = 50;
  const AnalysisResult res = analyze(net, opt);
  EXPECT_TRUE(res.truncated);
  EXPECT_GE(res.place_bound[static_cast<unsigned>(p)], 49u);
}

// -- conversion of the paper's Fig 2 RCPN -------------------------------------

TEST(Conversion, Fig2StructureMatchesPaper) {
  machines::SimplePipeline pipe(4);
  const ConversionResult conv = convert(pipe.net());
  const CpnNet& net = conv.net;

  // Places: L1, L2 + free(L1), free(L2); end dropped.
  EXPECT_EQ(net.num_places(), 4u);
  EXPECT_GE(net.find_place("free(L1)"), 0);
  EXPECT_GE(net.find_place("free(L2)"), 0);
  // Transitions: U2, U3, U4 + U1 split per type (A, B) = 5.
  EXPECT_EQ(net.num_transitions(), 5u);
  // Initial marking: the capacity tokens of Fig 2(b).
  EXPECT_EQ(net.initial_marking()(net.find_place("free(L1)"), kBlack), 1u);
  EXPECT_EQ(net.initial_marking()(net.find_place("free(L2)"), kBlack), 1u);
}

TEST(Conversion, Fig2IsBoundedDeadlockFreeAndLive) {
  machines::SimplePipeline pipe(4);
  const ConversionResult conv = convert(pipe.net());
  const AnalysisResult res = analyze(conv.net);
  EXPECT_FALSE(res.truncated);
  // Stage capacities bound every place by 1 (the reduction is sound).
  EXPECT_TRUE(res.bounded(1)) << "capacity invariant violated in conversion";
  EXPECT_EQ(res.deadlocks, 0u);
  EXPECT_TRUE(res.all_fireable());
}

TEST(Conversion, Fig5ProcessorConversionIsBounded) {
  machines::Fig5Processor cpu;
  const ConversionResult conv = convert(cpu.net());
  const AnalysisResult res = analyze(conv.net);
  EXPECT_FALSE(res.truncated);
  EXPECT_TRUE(res.bounded(1));
  EXPECT_EQ(res.deadlocks, 0u);
}

TEST(Conversion, CapacityBackEdgesPresent) {
  // Every converted transition with a non-end output must consume a free
  // token — the circular loops RCPN eliminates.
  machines::SimplePipeline pipe(2);
  const ConversionResult conv = convert(pipe.net());
  const CpnNet& net = conv.net;
  for (unsigned t = 0; t < net.num_transitions(); ++t) {
    const CpnTransition& ct = net.transition(t);
    bool has_colored_out = false;
    bool consumes_free = false;
    for (const CpnArc& a : ct.out)
      if (a.color != kBlack) has_colored_out = true;
    for (const CpnArc& a : ct.in)
      if (net.place_name(a.place).rfind("free(", 0) == 0) consumes_free = true;
    if (has_colored_out) {
      EXPECT_TRUE(consumes_free) << ct.name;
    }
  }
}

TEST(NaiveEngineTest, DrainsConvertedFig2) {
  machines::SimplePipeline pipe(4);
  const ConversionResult conv = convert(pipe.net());
  NaiveEngine eng(conv.net);
  // Run some cycles: the free-choice generator keeps injecting tokens, so
  // firings never stop, but capacity places must never go negative and the
  // total tokens per stage place must respect capacity 1.
  for (int i = 0; i < 50; ++i) eng.step();
  EXPECT_GT(eng.firings(), 0u);
  EXPECT_GT(eng.search_visits(), eng.firings());  // search overhead is real
  const int l1 = conv.net.find_place("L1");
  EXPECT_LE(eng.marking().place_total(l1), 1u);
}

TEST(NaiveEngineTest, TwoListSemanticsDelayProducedTokens) {
  CpnNet net = tiny_net();
  NaiveEngine eng(net);
  // Cycle 1: t0 fires once; the token written to p1 is not consumable until
  // the cycle ends, so exactly one firing happens per cycle.
  EXPECT_EQ(eng.step(), 1u);
  EXPECT_EQ(eng.step(), 1u);
  EXPECT_EQ(eng.cycles(), 2u);
}

TEST(ModelConversion, UnbuiltTypedModelConvertsWithDeclaredNames) {
  // A typed description (guards take Machine&) that is never built: the
  // model-level convert() lowers the structure without a machine context and
  // the declared stage/place names survive into the CPN.
  struct Machine {
    int budget = 0;
  };
  model::ModelBuilder<Machine> b("typed-frontend");
  const model::StageHandle fetch = b.add_stage("FetchLatch", 1);
  const model::StageHandle exec = b.add_stage("ExecLatch", 2);
  const model::PlaceHandle pf = b.add_place("fetch.q", fetch);
  const model::PlaceHandle pe = b.add_place("exec.q", exec);
  const model::TypeHandle op = b.add_type("op");
  b.add_transition("issue", op).from(pf).to(pe).guard(
      [](Machine& m, core::FireCtx&) { return m.budget > 0; });
  b.add_transition("retire", op).from(pe).to(b.end());

  ASSERT_FALSE(b.built());
  const ConversionResult conv = convert(b);
  ASSERT_FALSE(b.built());  // conversion must not build the model

  EXPECT_GE(conv.net.find_place("fetch.q"), 0);
  EXPECT_GE(conv.net.find_place("exec.q"), 0);
  EXPECT_GE(conv.net.find_place("free(FetchLatch)"), 0);
  EXPECT_GE(conv.net.find_place("free(ExecLatch)"), 0);
  // Initial marking: capacity tokens in the free places.
  EXPECT_EQ(conv.net.initial_marking()(conv.net.find_place("free(ExecLatch)"), kBlack),
            2u);
}

TEST(ModelConversion, BuiltModelUsesItsLoweredNet) {
  // Built models (here through a machine) convert identically via their net.
  machines::SimplePipeline pipe(1);
  const ConversionResult from_net = convert(pipe.net());
  // The builder is owned by the Simulator, so exercise the overload on a
  // standalone built ModelBuilder instead.
  model::ModelBuilder<> b("built");
  const model::StageHandle s = b.add_stage("S", 1);
  const model::PlaceHandle p = b.add_place("P", s);
  const model::TypeHandle t = b.add_type("T");
  b.add_transition("u", t).from(p).to(b.end());
  b.build();
  const ConversionResult conv = convert(b);
  EXPECT_GE(conv.net.find_place("P"), 0);
  EXPECT_GE(conv.net.find_place("free(S)"), 0);
  EXPECT_GT(from_net.net.num_places(), 0u);
}

}  // namespace
}  // namespace rcpn::cpn
