// Observability layer: the zero-interference contract and the exporters.
//
// Three layers of pinning:
//  * Zero interference — attaching a Hub must leave golden retire traces and
//    engine statistics byte-identical for every machine and backend, in BOTH
//    build configurations (RCPN_OBS=OFF ignores the hub entirely; RCPN_OBS=ON
//    records but must not perturb timing-visible behaviour). An 8-seed fuzz
//    shard extends the same contract to generated topologies.
//  * Backend-identical event streams — with probes compiled in, interpreted,
//    compiled and generated(linked) backends must fill the ring and the
//    StageProfile identically for the same run (the probes live in shared
//    engine code; this catches a backend growing a private call site).
//  * Exporters — export_chrome_trace() and format_profile() are exercised on
//    hand-built hubs so they are covered in every build config: JSON
//    validity, one named track per stage, balanced b/e token spans,
//    monotonic timestamps, drop-oldest ring truncation flagged not hidden.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/net.hpp"
#include "core/stats.hpp"
#include "machines/fuzz_model.hpp"
#include "machines/golden_runner.hpp"
#include "obs/export.hpp"
#include "obs/probe.hpp"

namespace rcpn {
namespace {

// -- minimal JSON syntax checker ----------------------------------------------
// Enough of RFC 8259 to reject unbalanced/truncated output; no DOM, no deps.

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse() {
    if (!value()) return false;
    ws();
    return i_ == s_.size();
  }

 private:
  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' ||
                              s_[i_] == '\r'))
      ++i_;
  }
  bool lit(const char* t) {
    const std::size_t n = std::strlen(t);
    if (s_.compare(i_, n, t) != 0) return false;
    i_ += n;
    return true;
  }
  bool string_lit() {
    if (i_ >= s_.size() || s_[i_] != '"') return false;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
      }
      ++i_;
    }
    if (i_ >= s_.size()) return false;
    ++i_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    bool digits = false;
    while (i_ < s_.size() && ((s_[i_] >= '0' && s_[i_] <= '9') || s_[i_] == '.' ||
                              s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '+' ||
                              s_[i_] == '-')) {
      if (s_[i_] >= '0' && s_[i_] <= '9') digits = true;
      ++i_;
    }
    return digits && i_ > start;
  }
  bool object() {
    ++i_;  // '{'
    ws();
    if (i_ < s_.size() && s_[i_] == '}') return ++i_, true;
    while (true) {
      ws();
      if (!string_lit()) return false;
      ws();
      if (i_ >= s_.size() || s_[i_] != ':') return false;
      ++i_;
      if (!value()) return false;
      ws();
      if (i_ >= s_.size()) return false;
      if (s_[i_] == ',') {
        ++i_;
        continue;
      }
      if (s_[i_] == '}') return ++i_, true;
      return false;
    }
  }
  bool array() {
    ++i_;  // '['
    ws();
    if (i_ < s_.size() && s_[i_] == ']') return ++i_, true;
    while (true) {
      if (!value()) return false;
      ws();
      if (i_ >= s_.size()) return false;
      if (s_[i_] == ',') {
        ++i_;
        continue;
      }
      if (s_[i_] == ']') return ++i_, true;
      return false;
    }
  }
  bool value() {
    ws();
    if (i_ >= s_.size()) return false;
    const char c = s_[i_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_lit();
    if (lit("true") || lit("false") || lit("null")) return true;
    return number();
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

bool valid_json(const std::string& text) { return JsonParser(text).parse(); }

std::size_t count_substr(const std::string& s, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = s.find(needle); pos != std::string::npos;
       pos = s.find(needle, pos + needle.size()))
    ++n;
  return n;
}

/// Every "ts": value, in emission order.
std::vector<std::uint64_t> extract_ts(const std::string& s) {
  std::vector<std::uint64_t> out;
  const std::string key = "\"ts\":";
  for (std::size_t pos = s.find(key); pos != std::string::npos;
       pos = s.find(key, pos + key.size())) {
    std::uint64_t v = 0;
    for (std::size_t i = pos + key.size(); i < s.size() && s[i] >= '0' && s[i] <= '9';
         ++i)
      v = v * 10 + static_cast<std::uint64_t>(s[i] - '0');
    out.push_back(v);
  }
  return out;
}

/// The in-process backends available to this binary. Backend::generated
/// needs the emitted no-main TUs linked in (CMake defines
/// RCPN_HAVE_GENERATED when it adds them, mirroring test_freestanding).
std::vector<core::Backend> in_process_backends() {
  return {
      core::Backend::interpreted,
      core::Backend::compiled,
#ifdef RCPN_HAVE_GENERATED
      core::Backend::generated,
#endif
  };
}

/// A two-stage toy model binding for the exporter tests (no engine needed).
obs::Meta toy_meta() {
  obs::Meta m;
  m.model = "toy";
  m.stage_names = {"fetch", "exec"};
  m.place_names = {"p_fetch", "p_exec"};
  m.place_stage = {0, 1};
  m.transition_names = {"t_fetch", "t_exec"};
  m.transition_place = {0, 1};
  return m;
}

}  // namespace

// -- ring buffer --------------------------------------------------------------

TEST(ObsRing, DropsOldestAndCountsEvictions) {
  obs::HubOptions ho;
  ho.ring_capacity = 4;
  obs::Hub hub(ho);
  hub.bind(toy_meta());
  for (std::uint64_t cycle = 0; cycle < 10; ++cycle)
    hub.on_token_enter(cycle, 0, static_cast<std::uint32_t>(cycle), 0x100 + cycle);

  EXPECT_EQ(hub.sink().size(), 4u);
  EXPECT_EQ(hub.sink().dropped(), 6u);
  const std::vector<obs::Event> kept = hub.sink().snapshot();
  ASSERT_EQ(kept.size(), 4u);
  for (std::size_t i = 0; i < kept.size(); ++i)
    EXPECT_EQ(kept[i].cycle, 6 + i) << "snapshot must be oldest-first";
}

TEST(ObsRing, ClearResetsEventsCountersAndProfile) {
  obs::Hub hub;
  hub.bind(toy_meta());
  hub.on_token_enter(0, 0, 1, 0x8000);
  hub.on_fire(0, 0);
  hub.on_cycle_end(0);
  ASSERT_GT(hub.sink().size(), 0u);
  ASSERT_EQ(hub.profile().cycles, 1u);
  hub.clear();
  EXPECT_EQ(hub.sink().size(), 0u);
  EXPECT_EQ(hub.sink().dropped(), 0u);
  EXPECT_EQ(hub.profile().cycles, 0u);
  EXPECT_EQ(hub.profile().fires, std::vector<std::uint64_t>({0, 0}));
  EXPECT_TRUE(hub.bound());  // the binding survives
}

// -- Chrome-trace exporter ----------------------------------------------------

namespace {

/// A tiny scripted run: two instructions through two stages, one stall, one
/// squash — every event kind appears at least once.
void scripted_run(obs::Hub& hub) {
  hub.bind(toy_meta());
  // cycle 0: seq 0 enters fetch and the fetch transition fires.
  hub.on_attempt(0);
  hub.on_fire(0, 0);
  hub.on_token_enter(0, 0, 0, 0x8000);
  hub.sample_stage(0, 0, 1);
  hub.sample_stage(0, 1, 0);
  hub.on_cycle_end(0);
  // cycle 1: seq 0 advances to exec, seq 1 enters fetch and stalls on a guard.
  hub.on_attempt(1);
  hub.on_fire(1, 1);
  hub.on_token_enter(1, 1, 0, 0x8000);
  hub.on_token_enter(1, 0, 1, 0x8004);
  hub.on_attempt(0);
  hub.on_stall(1, 0, core::StallCause::guard_rejected, 1, 0x8004);
  hub.sample_stage(1, 0, 1);
  hub.sample_stage(1, 1, 1);
  hub.on_cycle_end(1);
  // cycle 2: seq 0 retires, seq 1 is squashed by a flush.
  hub.on_retire(2, 0, 0x8000);
  hub.on_squash(2, 1, 0x8004);
  hub.sample_stage(2, 0, 0);
  hub.sample_stage(2, 1, 0);
  hub.on_cycle_end(2);
}

}  // namespace

TEST(ObsExport, ChromeTraceIsValidJsonWithOneTrackPerStage) {
  obs::Hub hub;
  scripted_run(hub);
  const std::string json = obs::export_chrome_trace(hub);
  EXPECT_TRUE(valid_json(json)) << json;

  // One thread_name per stage plus the tid-0 independent/engine track.
  EXPECT_EQ(count_substr(json, "\"thread_name\""), 3u);
  EXPECT_NE(json.find("\"args\":{\"name\":\"independent\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"fetch\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"exec\"}"), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);

  // Every token residency "b" has a matching "e" (the squash closes seq 1).
  EXPECT_EQ(count_substr(json, "\"ph\":\"b\""), count_substr(json, "\"ph\":\"e\""));
  EXPECT_EQ(count_substr(json, "\"ph\":\"b\""), 3u);  // 2 fetch entries + 1 exec

  // Instants and counters made it through with their payloads.
  EXPECT_NE(json.find("\"name\":\"retire\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"squash\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fire t_fetch\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"stall guard_rejected\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"occ fetch\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);

  // Timestamps are cycle numbers and never run backwards in emission order.
  const std::vector<std::uint64_t> ts = extract_ts(json);
  ASSERT_GT(ts.size(), 4u);
  for (std::size_t i = 1; i < ts.size(); ++i)
    EXPECT_LE(ts[i - 1], ts[i]) << "ts index " << i;
}

TEST(ObsExport, RingEvictedBeginNeverEmitsUnbalancedEnd) {
  obs::HubOptions ho;
  ho.ring_capacity = 2;
  obs::Hub hub(ho);
  hub.bind(toy_meta());
  hub.on_token_enter(0, 0, 0, 0x8000);  // evicted below
  hub.on_token_enter(0, 0, 1, 0x8004);  // evicted below
  hub.on_token_enter(1, 0, 2, 0x8008);
  hub.on_retire(2, 0, 0x8000);  // begin of seq 0 is gone from the ring

  const std::string json = obs::export_chrome_trace(hub);
  EXPECT_TRUE(valid_json(json)) << json;
  // seq 2's begin is closed at end-of-recording; seq 0's retire must NOT
  // synthesize an "e" for a begin the ring no longer holds.
  EXPECT_EQ(count_substr(json, "\"ph\":\"b\""), 1u);
  EXPECT_EQ(count_substr(json, "\"ph\":\"e\""), 1u);
  EXPECT_NE(json.find("\"dropped_events\":2"), std::string::npos);
}

TEST(ObsExport, FormatProfileReportsOccupancyStallsAndScanCosts) {
  obs::Hub hub;
  scripted_run(hub);
  const std::string text = obs::format_profile(hub);
  EXPECT_NE(text.find("profile: toy  (cycles: 3)"), std::string::npos) << text;
  EXPECT_NE(text.find("stage occupancy"), std::string::npos);
  EXPECT_NE(text.find("stall causes (no_ready/guard/capacity):"), std::string::npos);
  EXPECT_NE(text.find("p_fetch: 1 (0/1/0)"), std::string::npos) << text;
  // t_fetch: 1 fire / 2 attempts (the cycle-1 attempt was guard-rejected).
  EXPECT_NE(text.find("t_fetch: 1/2 (50%)"), std::string::npos) << text;
}

// -- zero interference: golden machines ---------------------------------------

TEST(ObsGolden, AttachedHubLeavesGoldenTracesByteIdentical) {
  for (const std::string& key : machines::golden_machine_keys()) {
    for (const core::Backend backend : in_process_backends()) {
      core::EngineOptions base;
      base.backend = backend;
      const machines::GoldenRunResult plain =
          machines::run_golden_machine_full(key, base);

      obs::Hub hub;
      core::EngineOptions observed_opts = base;
      observed_opts.obs = &hub;
      const machines::GoldenRunResult observed =
          machines::run_golden_machine_full(key, observed_opts);

      const std::string label = key + " backend=" +
                                std::to_string(static_cast<int>(backend));
      EXPECT_EQ(machines::format_golden_trace(key, plain.trace),
                machines::format_golden_trace(key, observed.trace))
          << label;
      EXPECT_EQ(plain.stats.cycles, observed.stats.cycles) << label;
      EXPECT_EQ(plain.stats.retired, observed.stats.retired) << label;
      EXPECT_EQ(plain.stats.place_stalls, observed.stats.place_stalls) << label;
      EXPECT_EQ(plain.stats.place_stall_causes, observed.stats.place_stall_causes)
          << label;

#if RCPN_OBS
      // Probes compiled in: the hub really recorded the run...
      EXPECT_TRUE(hub.bound()) << label;
      EXPECT_GT(hub.sink().size(), 0u) << label;
      EXPECT_EQ(hub.profile().cycles, observed.stats.cycles) << label;
#else
      // ...and compiled out: the pointer is inert, the hub untouched.
      EXPECT_FALSE(hub.bound()) << label;
      EXPECT_EQ(hub.sink().size(), 0u) << label;
#endif
    }
  }
}

// -- zero interference + lockstep: fuzz shard ---------------------------------

// Eight generated topologies with hubs attached to BOTH engines of each
// lockstep pair: traces and stats must agree with each other (and, with
// probes compiled in, so must the recorded event streams and profiles —
// the cross-backend stream contract on machines nobody curated).
TEST(ObsFuzz, EightSeedShardRunsLockstepWithProbesAttached) {
  for (unsigned seed = 9100; seed < 9108; ++seed) {
    obs::Hub hub_i, hub_c;
    core::EngineOptions oi = machines::fuzz_options_for(seed, core::Backend::interpreted);
    core::EngineOptions oc = machines::fuzz_options_for(seed, core::Backend::compiled);
    oi.obs = &hub_i;
    oc.obs = &hub_c;
    const machines::GoldenRunResult ri = machines::golden_run_fuzz(seed, oi);
    const machines::GoldenRunResult rc = machines::golden_run_fuzz(seed, oc);

    ASSERT_FALSE(ri.trace.empty()) << "seed=" << seed;
    EXPECT_EQ(ri.trace, rc.trace) << "seed=" << seed;
    EXPECT_EQ(ri.stats.cycles, rc.stats.cycles) << "seed=" << seed;
    EXPECT_EQ(ri.stats.place_stalls, rc.stats.place_stalls) << "seed=" << seed;
    EXPECT_EQ(ri.stats.place_stall_causes, rc.stats.place_stall_causes)
        << "seed=" << seed;

#if RCPN_OBS
    const std::vector<obs::Event> ei = hub_i.sink().snapshot();
    const std::vector<obs::Event> ec = hub_c.sink().snapshot();
    ASSERT_EQ(ei.size(), ec.size()) << "seed=" << seed;
    EXPECT_TRUE(ei == ec) << "seed=" << seed << ": event streams diverge";
    EXPECT_TRUE(hub_i.profile() == hub_c.profile())
        << "seed=" << seed << ": profiles diverge";
    EXPECT_EQ(hub_i.profile().cycles, ri.stats.cycles) << "seed=" << seed;
#endif
  }
}

// -- cross-backend event streams (probes compiled in only) --------------------

#if RCPN_OBS

TEST(ObsStreams, AllInProcessBackendsEmitIdenticalEventStreams) {
  for (const std::string& key : machines::golden_machine_keys()) {
    std::vector<obs::Event> ref_events;
    obs::StageProfile ref_profile;
    bool have_ref = false;
    for (const core::Backend backend : in_process_backends()) {
      obs::Hub hub;
      core::EngineOptions options;
      options.backend = backend;
      options.obs = &hub;
      machines::run_golden_machine_full(key, options);
      const std::vector<obs::Event> events = hub.sink().snapshot();
      ASSERT_GT(events.size(), 0u) << key;
      if (!have_ref) {
        ref_events = events;
        ref_profile = hub.profile();
        have_ref = true;
        continue;
      }
      const std::string label =
          key + " backend=" + std::to_string(static_cast<int>(backend));
      ASSERT_EQ(events.size(), ref_events.size()) << label;
      // Name the first diverging event instead of dumping both streams.
      for (std::size_t i = 0; i < events.size(); ++i)
        ASSERT_TRUE(events[i] == ref_events[i])
            << label << ": first divergence at event " << i << " (cycle "
            << events[i].cycle << ", kind "
            << obs::event_kind_name(events[i].kind) << " vs cycle "
            << ref_events[i].cycle << ", kind "
            << obs::event_kind_name(ref_events[i].kind) << ")";
      EXPECT_TRUE(hub.profile() == ref_profile) << label << ": profiles diverge";
    }
  }
}

TEST(ObsStreams, ExportedGoldenTraceIsValidJson) {
  obs::Hub hub;
  core::EngineOptions options;
  options.backend = core::Backend::compiled;
  options.obs = &hub;
  machines::run_golden_machine_full("strongarm_crc", options);
  const std::string json = obs::export_chrome_trace(hub);
  EXPECT_TRUE(valid_json(json));
  EXPECT_EQ(count_substr(json, "\"thread_name\""),
            hub.meta().stage_names.size() + 1);
  EXPECT_EQ(count_substr(json, "\"ph\":\"b\""), count_substr(json, "\"ph\":\"e\""));
}

#endif  // RCPN_OBS

// -- stall-cause attribution in Stats::report() -------------------------------

TEST(ObsStallReport, StatsReportBreaksStallsDownByCause) {
  machines::inspect_golden_machine(
      "fig2", core::EngineOptions{}, [](core::Net& net, core::Engine&) {
        core::Stats st;
        st.reset(net.num_transitions(), net.num_places());
        ASSERT_GE(net.num_places(), 2u);
        st.place_stalls[1] = 3;
        st.place_stall_causes[1 * core::kNumStallCauses + 0] = 1;
        st.place_stall_causes[1 * core::kNumStallCauses + 1] = 2;
        const std::string rep = st.report(net);
        EXPECT_NE(rep.find("place stalls (no_ready/guard/capacity):"),
                  std::string::npos)
            << rep;
        EXPECT_NE(rep.find(": 3 (1/2/0)"), std::string::npos) << rep;
      });
}

}  // namespace rcpn
