// Workload kernels: assemble, run to completion on the functional ISS,
// verify determinism and that each kernel has the instruction-mix character
// it stands in for (multiplies in g721, byte loads in go, etc.).
#include <gtest/gtest.h>

#include "baseline/functional_iss.hpp"
#include "workloads/workloads.hpp"

namespace rcpn::workloads {
namespace {

struct WorkloadRun {
  mem::Memory mem;
  sys::SyscallHandler sys;
  std::uint64_t instructions = 0;
  std::string output;
  int exit_code = -1;

  explicit WorkloadRun(const Workload& w, unsigned scale) {
    const sys::Program prog = build(w, scale);
    baseline::FunctionalIss iss(mem, sys);
    iss.reset(prog);
    iss.run(500'000'000ull);
    EXPECT_TRUE(iss.exited()) << w.name << " did not exit";
    instructions = iss.instret();
    output = sys.output();
    exit_code = sys.exit_code();
  }
};

class WorkloadTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadTest, RunsToCompletionAndPrintsChecksum) {
  const Workload* w = find(GetParam());
  ASSERT_NE(w, nullptr);
  WorkloadRun run(*w, w->test_scale);
  EXPECT_EQ(run.exit_code, 0);
  // Checksum: 8 hex digits + newline.
  ASSERT_EQ(run.output.size(), 9u) << run.output;
  EXPECT_EQ(run.output.back(), '\n');
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(std::isxdigit(run.output[i]));
  EXPECT_GT(run.instructions, 1000u);
}

TEST_P(WorkloadTest, DeterministicAcrossRuns) {
  const Workload* w = find(GetParam());
  ASSERT_NE(w, nullptr);
  WorkloadRun a(*w, w->test_scale), b(*w, w->test_scale);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.instructions, b.instructions);
}

TEST_P(WorkloadTest, ScaleChangesWorkNotChecksumFormat) {
  const Workload* w = find(GetParam());
  ASSERT_NE(w, nullptr);
  WorkloadRun small(*w, w->test_scale), big(*w, w->test_scale * 2);
  EXPECT_GT(big.instructions, small.instructions);
  EXPECT_EQ(big.output.size(), 9u);
}

INSTANTIATE_TEST_SUITE_P(AllSix, WorkloadTest,
                         ::testing::Values("adpcm", "blowfish", "compress", "crc",
                                           "g721", "go"));

TEST(Workloads, RegistryHasPaperBenchmarks) {
  EXPECT_EQ(all().size(), 6u);
  for (const char* name : {"adpcm", "blowfish", "compress", "crc", "g721", "go"})
    EXPECT_NE(find(name), nullptr) << name;
  EXPECT_EQ(find("quake"), nullptr);
}

TEST(Workloads, DefaultScaleIsBenchmarkSized) {
  // Fig 10 runs should be >= 1M dynamic instructions per the paper's setup.
  for (const Workload& w : all()) {
    EXPECT_GE(w.default_scale, w.test_scale) << w.name;
  }
}

}  // namespace
}  // namespace rcpn::workloads
