// Core RCPN engine tests on small synthetic nets: enabling semantics,
// capacity sharing, priorities, delays, reservation tokens, two-list
// analysis, flush/squash and the Fig 6 static extraction.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "core/soa_scan.hpp"
#include "core/token_store.hpp"
#include "regfile/reg_ref.hpp"

namespace rcpn::core {
namespace {

InstructionToken* emit(Engine& eng, TypeId type, PlaceId where) {
  InstructionToken* t = eng.acquire_pooled_instruction();
  t->type = type;
  eng.emit_instruction(t, where);
  return t;
}

TEST(Net, EndStageCreatedAutomatically) {
  Net net("n");
  EXPECT_EQ(net.num_stages(), 1u);
  EXPECT_EQ(net.num_places(), 1u);
  EXPECT_TRUE(net.stage(net.end_stage()).is_end());
  EXPECT_TRUE(net.stage(net.end_stage()).unlimited());
}

TEST(Net, FindByName) {
  Net net("n");
  const StageId s = net.add_stage("L1", 1);
  const PlaceId p = net.add_place("L1", s);
  EXPECT_EQ(net.find_stage("L1"), s);
  EXPECT_EQ(net.find_place("L1"), p);
  EXPECT_EQ(net.find_place("nope"), kNoPlace);
}

TEST(Net, ModelStatsCountArcs) {
  Net net("n");
  const StageId s = net.add_stage("L1", 1);
  const PlaceId p = net.add_place("L1", s);
  const TypeId ty = net.add_type("T");
  net.add_transition("t", ty).from(p).to(net.end_place());
  const auto ms = net.model_stats();
  EXPECT_EQ(ms.places, 2u);
  EXPECT_EQ(ms.transitions, 1u);
  EXPECT_EQ(ms.subnets, 1u);
  EXPECT_EQ(ms.arcs, 2u);
}

class LinearNetTest : public ::testing::Test {
 protected:
  LinearNetTest() : net_("linear"), eng_(net_) {
    s1_ = net_.add_stage("L1", 1);
    s2_ = net_.add_stage("L2", 1);
    p1_ = net_.add_place("L1", s1_);
    p2_ = net_.add_place("L2", s2_);
    ty_ = net_.add_type("T");
    net_.add_transition("T1", ty_).from(p1_).to(p2_);
    net_.add_transition("T2", ty_).from(p2_).to(net_.end_place());
  }
  Net net_;
  Engine eng_;
  StageId s1_, s2_;
  PlaceId p1_, p2_;
  TypeId ty_;
};

TEST_F(LinearNetTest, TokenFlowsOneStagePerCycle) {
  eng_.build();
  emit(eng_, ty_, p1_);
  EXPECT_EQ(eng_.tokens_in_flight(), 1u);
  eng_.step();  // cycle 0: not ready yet
  eng_.step();  // cycle 1: L1 -> L2
  EXPECT_EQ(eng_.tokens_in_place(p2_), 1u);
  eng_.step();  // cycle 2: L2 -> end
  EXPECT_EQ(eng_.stats().retired, 1u);
  EXPECT_EQ(eng_.tokens_in_flight(), 0u);
}

TEST_F(LinearNetTest, ReverseTopologicalOrderSinksFirst) {
  eng_.build();
  const auto& order = eng_.process_order();
  // End places are excluded (tokens retire on entry); downstream first.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], p2_);
  EXPECT_EQ(order[1], p1_);
}

TEST_F(LinearNetTest, BackToBackTokensPipeline) {
  eng_.build();
  emit(eng_, ty_, p1_);
  eng_.step();  // cycle 0: tok1 entered during cycle 0, ready at 1
  eng_.step();  // cycle 1: tok1 L1->L2; L1 free at end of cycle
  emit(eng_, ty_, p1_);  // entered during cycle 2, ready at 3
  eng_.step();  // cycle 2: tok1 retires
  eng_.step();  // cycle 3: tok2 L1->L2
  eng_.step();  // cycle 4: tok2 retires
  EXPECT_EQ(eng_.stats().retired, 2u);
}

TEST_F(LinearNetTest, CapacityBlocksUpstreamToken) {
  eng_.build();
  emit(eng_, ty_, p2_);  // occupies L2
  // Block T2 so the L2 token cannot drain.
  // (re-build a net is cheaper: here we just also fill L1 and check stall.)
  emit(eng_, ty_, p1_);
  EXPECT_FALSE(eng_.place_has_room(p1_));
  eng_.step();
  eng_.step();
  // Both retire eventually; stall counter must have fired at least once if
  // L1's token ever found L2 full. With reverse-topo order L2 drains first,
  // so no stall is expected here — this documents the shift-register effect.
  eng_.run(10);
  EXPECT_EQ(eng_.stats().retired, 2u);
}

TEST_F(LinearNetTest, ResetClearsState) {
  eng_.build();
  emit(eng_, ty_, p1_);
  eng_.run(5);
  EXPECT_EQ(eng_.stats().retired, 1u);
  eng_.reset();
  EXPECT_EQ(eng_.stats().retired, 0u);
  EXPECT_EQ(eng_.clock(), 0u);
  EXPECT_EQ(eng_.tokens_in_flight(), 0u);
  emit(eng_, ty_, p1_);
  eng_.run(5);
  EXPECT_EQ(eng_.stats().retired, 1u);
}

TEST(EnginePriority, LowerPriorityArcFiresFirst) {
  Net net("prio");
  const StageId s = net.add_stage("L1", 1);
  const PlaceId p = net.add_place("L1", s);
  const PlaceId e2 = net.add_end_place("end2");
  const TypeId ty = net.add_type("T");
  bool allow_fast = true;
  net.add_transition("slow", ty).from(p, /*priority=*/1).to(net.end_place());
  net.add_transition("fast", ty)
      .from(p, /*priority=*/0)
      .guard([](void* env, FireCtx&) { return *static_cast<bool*>(env); }, &allow_fast)
      .to(e2);
  Engine eng(net);
  eng.build();

  // Sorted candidate list: priority 0 first.
  const auto& cands = eng.candidates(p, ty);
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[0]->name(), "fast");
  EXPECT_EQ(cands[1]->name(), "slow");

  emit(eng, ty, p);
  eng.run(3);
  EXPECT_EQ(eng.stats().transition_fires[cands[0]->id()], 1u);
  EXPECT_EQ(eng.stats().transition_fires[cands[1]->id()], 0u);

  // With the guard closed, the priority-1 alternative fires instead
  // (exactly the Fig 5 forwarding-vs-stall pattern).
  allow_fast = false;
  emit(eng, ty, p);
  eng.run(3);
  EXPECT_EQ(eng.stats().transition_fires[cands[1]->id()], 1u);
}

TEST(EngineGuard, FalseGuardStallsToken) {
  Net net("guard");
  const StageId s = net.add_stage("L1", 1);
  const PlaceId p = net.add_place("L1", s);
  const TypeId ty = net.add_type("T");
  bool open = false;
  net.add_transition("t", ty)
      .from(p)
      .guard([](void* env, FireCtx&) { return *static_cast<bool*>(env); }, &open)
      .to(net.end_place());
  Engine eng(net);
  eng.build();
  emit(eng, ty, p);
  eng.run(4);
  EXPECT_EQ(eng.stats().retired, 0u);
  EXPECT_GT(eng.stats().place_stalls[p], 0u);
  open = true;
  eng.run(2);
  EXPECT_EQ(eng.stats().retired, 1u);
}

TEST(EngineDelay, PlaceDelayHoldsToken) {
  Net net("delay");
  const StageId s = net.add_stage("L1", 1);
  const PlaceId p = net.add_place("L1", s, /*delay=*/3);
  const TypeId ty = net.add_type("T");
  net.add_transition("t", ty).from(p).to(net.end_place());
  Engine eng(net);
  eng.build();
  emit(eng, ty, p);
  eng.run(2);
  EXPECT_EQ(eng.stats().retired, 0u);  // still waiting
  eng.run(2);
  EXPECT_EQ(eng.stats().retired, 1u);
  EXPECT_EQ(eng.clock(), 4u);  // entered at 0, residence 3, fired cycle 3
}

TEST(EngineDelay, TokenDelayOverridesPlaceDelay) {
  // Fig 5 LoadStore pattern: the transition sets t.delay = mem.delay(addr).
  Net net("tokdelay");
  const StageId s1 = net.add_stage("L1", 1);
  const StageId s2 = net.add_stage("L2", 4);
  const PlaceId p1 = net.add_place("L1", s1);
  const PlaceId p2 = net.add_place("L2", s2, /*delay=*/1);
  const TypeId ty = net.add_type("T");
  net.add_transition("M", ty)
      .from(p1)
      .action([](void*, FireCtx& ctx) { ctx.token->next_delay = 5; }, nullptr)
      .to(p2);
  net.add_transition("W", ty).from(p2).to(net.end_place());
  Engine eng(net);
  eng.build();
  emit(eng, ty, p1);
  eng.run(3);  // fired M at cycle 1, entered L2 with residence 5
  EXPECT_EQ(eng.stats().retired, 0u);
  eng.run(10);
  EXPECT_EQ(eng.stats().retired, 1u);
}

TEST(EngineReservation, BranchStylefetchStall) {
  // Mirror of the paper's branch sub-net: issuing emits a reservation into
  // L1 which disables an independent "fetch"; resolving consumes it.
  Net net("resv");
  const StageId s1 = net.add_stage("L1", 1);
  const StageId s2 = net.add_stage("L2", 1);
  const PlaceId p1 = net.add_place("L1", s1);
  const PlaceId p2 = net.add_place("L2", s2);
  const TypeId ty = net.add_type("Branch");
  struct FetchEnv {
    int fetched = 0;
    TypeId ty;
    PlaceId p1;
  } fenv{0, ty, p1};
  net.add_transition("D", ty).from(p1).to(p2).emit_reservation(p1);
  net.add_transition("B", ty).from(p2).consume_reservation(p1).to(net.end_place());
  net.add_independent_transition("F")
      .guard(
          [](void* env, FireCtx& ctx) {
            return ctx.engine->place_has_room(static_cast<FetchEnv*>(env)->p1);
          },
          &fenv)
      .action(
          [](void* env, FireCtx& ctx) {
            auto* fe = static_cast<FetchEnv*>(env);
            ++fe->fetched;
            InstructionToken* t = ctx.engine->acquire_pooled_instruction();
            t->type = fe->ty;
            ctx.engine->emit_instruction(t, fe->p1);
          },
          &fenv);
  Engine eng(net);
  eng.build();
  eng.step();  // cycle 0: fetch fires -> token in L1
  EXPECT_EQ(fenv.fetched, 1);
  eng.step();  // cycle 1: D fires (token->L2, reservation->L1); fetch blocked
  EXPECT_EQ(fenv.fetched, 1);
  eng.step();  // cycle 2: B consumes reservation + branch token; fetch free again
  EXPECT_EQ(fenv.fetched, 2);
  EXPECT_EQ(eng.stats().retired, 1u);
  EXPECT_GT(eng.stats().reservations, 0u);
}

TEST(EngineSharedStage, PlacesShareCapacity) {
  Net net("shared");
  const StageId s = net.add_stage("RS", 2);
  const PlaceId pa = net.add_place("RS.a", s);
  const PlaceId pb = net.add_place("RS.b", s);
  const TypeId ty = net.add_type("T");
  net.add_transition("ta", ty).from(pa).to(net.end_place());
  net.add_transition("tb", ty).from(pb).to(net.end_place());
  Engine eng(net);
  eng.build();
  emit(eng, ty, pa);
  emit(eng, ty, pb);
  EXPECT_FALSE(eng.place_has_room(pa));
  EXPECT_FALSE(eng.place_has_room(pb));  // shared capacity exhausted
  eng.run(3);
  EXPECT_EQ(eng.stats().retired, 2u);
}

TEST(EngineTwoList, StateRefCycleMarksReferencedStage) {
  // Fig 5: D (from L1) reads the state of L3 which is downstream of L1 ->
  // L3's stage must get the two-list algorithm; L1/L2 must not.
  Net net("fig5ish");
  const StageId s1 = net.add_stage("L1", 1);
  const StageId s2 = net.add_stage("L2", 1);
  const StageId s3 = net.add_stage("L3", 1);
  const PlaceId p1 = net.add_place("L1", s1);
  const PlaceId p2 = net.add_place("L2", s2);
  const PlaceId p3 = net.add_place("L3", s3);
  const TypeId ty = net.add_type("ALU");
  net.add_transition("D", ty).from(p1).to(p2).reads_state(p3);
  net.add_transition("E", ty).from(p2).to(p3);
  net.add_transition("W", ty).from(p3).to(net.end_place());
  Engine eng(net);
  eng.build();
  EXPECT_TRUE(eng.stage_is_two_list(s3));
  EXPECT_FALSE(eng.stage_is_two_list(s1));
  EXPECT_FALSE(eng.stage_is_two_list(s2));

  // Same net with the paper optimization disabled per model override.
  net.stage(s3).force_two_list(false);
  Engine eng2(net);
  eng2.build();
  EXPECT_FALSE(eng2.stage_is_two_list(s3));
}

TEST(EngineTwoList, NonCircularStateRefNotMarked) {
  // Reading the state of an upstream place is not circular.
  Net net("noncirc");
  const StageId s1 = net.add_stage("L1", 1);
  const StageId s2 = net.add_stage("L2", 1);
  const PlaceId p1 = net.add_place("L1", s1);
  const PlaceId p2 = net.add_place("L2", s2);
  const TypeId ty = net.add_type("T");
  net.add_transition("a", ty).from(p1).to(p2);
  net.add_transition("b", ty).from(p2).reads_state(p1).to(net.end_place());
  Engine eng(net);
  eng.build();
  EXPECT_FALSE(eng.stage_is_two_list(s1));
  EXPECT_FALSE(eng.stage_is_two_list(s2));
}

TEST(EngineTwoList, TokenCycleMarksWholeComponent) {
  Net net("cycle");
  const StageId s1 = net.add_stage("A", 2);
  const StageId s2 = net.add_stage("B", 2);
  const PlaceId p1 = net.add_place("A", s1);
  const PlaceId p2 = net.add_place("B", s2);
  const TypeId ty = net.add_type("T");
  net.add_transition("fwd", ty).from(p1).to(p2);
  net.add_transition("bwd", ty).from(p2).to(p1);
  Engine eng(net);
  eng.build();
  EXPECT_TRUE(eng.stage_is_two_list(s1));
  EXPECT_TRUE(eng.stage_is_two_list(s2));
}

TEST(EngineTwoList, ForceAllAblationStillCompletes) {
  Net net("all2l");
  const StageId s1 = net.add_stage("L1", 1);
  const StageId s2 = net.add_stage("L2", 1);
  const PlaceId p1 = net.add_place("L1", s1);
  const PlaceId p2 = net.add_place("L2", s2);
  const TypeId ty = net.add_type("T");
  net.add_transition("t1", ty).from(p1).to(p2);
  net.add_transition("t2", ty).from(p2).to(net.end_place());
  EngineOptions opt;
  opt.force_two_list_all = true;
  Engine eng(net, opt);
  eng.build();
  EXPECT_TRUE(eng.stage_is_two_list(s1));
  EXPECT_TRUE(eng.stage_is_two_list(s2));
  emit(eng, ty, p1);
  eng.run(10);
  EXPECT_EQ(eng.stats().retired, 1u);
}

TEST(EngineFlush, SquashReleasesRegisterReservations) {
  Net net("flush");
  const StageId s1 = net.add_stage("L1", 2);
  const PlaceId p1 = net.add_place("L1", s1);
  const TypeId ty = net.add_type("T");
  net.add_transition("t", ty)
      .from(p1)
      .guard([](void*, FireCtx&) { return false; }, nullptr)
      .to(net.end_place());
  Engine eng(net);
  eng.build();

  regfile::RegisterFile rf(1, regfile::WritePolicy::single_writer);
  rf.add_identity_registers(1);
  regfile::RegRef ref;

  InstructionToken* tok = eng.acquire_pooled_instruction();
  tok->type = ty;
  ref.bind(&rf, 0, &tok->state);
  tok->ops[0] = &ref;
  ref.reserve_write();
  int squashes = 0;
  eng.hooks().on_squash = [&](InstructionToken*) { ++squashes; };
  eng.emit_instruction(tok, p1);
  eng.step();
  EXPECT_TRUE(rf.has_writer(0));
  eng.flush_stage(s1);
  EXPECT_FALSE(rf.has_writer(0));
  EXPECT_EQ(squashes, 1);
  EXPECT_EQ(eng.stats().squashed, 1u);
  EXPECT_EQ(eng.tokens_in_flight(), 0u);
}

TEST(EngineFlush, PredicateFlushKeepsOlderTokens) {
  Net net("pflush");
  const StageId s1 = net.add_stage("L1", 4);
  const PlaceId p1 = net.add_place("L1", s1);
  const TypeId ty = net.add_type("T");
  net.add_transition("t", ty)
      .from(p1)
      .guard([](void*, FireCtx&) { return false; }, nullptr)
      .to(net.end_place());
  Engine eng(net);
  eng.build();
  InstructionToken* a = emit(eng, ty, p1);
  InstructionToken* b = emit(eng, ty, p1);
  ASSERT_LT(a->seq, b->seq);
  const std::uint32_t pivot = b->seq;
  eng.flush_stage_if(s1, [&](const Token& t) {
    return t.kind == TokenKind::instruction &&
           static_cast<const InstructionToken&>(t).seq >= pivot;
  });
  EXPECT_EQ(eng.stats().squashed, 1u);
  EXPECT_EQ(eng.tokens_in_place(p1), 1u);
}

TEST(EngineMicroOps, ActionEmitsAdditionalTokens) {
  // "Any sub-net can generate an instruction token" — LDM-style expansion.
  Net net("uops");
  const StageId s1 = net.add_stage("L1", 1);
  const StageId s2 = net.add_stage("L2", 4);
  const PlaceId p1 = net.add_place("L1", s1);
  const PlaceId p2 = net.add_place("L2", s2);
  const TypeId ty = net.add_type("LSM");
  struct ExpandEnv {
    TypeId ty;
    PlaceId p2;
  } xenv{ty, p2};
  net.add_transition("expand", ty)
      .from(p1)
      .guard(
          [](void* env, FireCtx& ctx) {
            return ctx.engine->place_has_room(static_cast<ExpandEnv*>(env)->p2, 3);
          },
          &xenv)
      .action(
          [](void* env, FireCtx& ctx) {
            auto* xe = static_cast<ExpandEnv*>(env);
            for (int i = 0; i < 2; ++i) {
              InstructionToken* u = ctx.engine->acquire_pooled_instruction();
              u->type = xe->ty;
              ctx.engine->emit_instruction(u, xe->p2);
            }
          },
          &xenv)
      .to(p2);
  net.add_transition("drain", ty).from(p2).to(net.end_place());
  Engine eng(net);
  eng.build();
  emit(eng, ty, p1);
  eng.run(6);
  EXPECT_EQ(eng.stats().retired, 3u);  // original + 2 µ-ops
}

TEST(EngineWatchdog, DeadlockStopsEngine) {
  Net net("dead");
  const StageId s1 = net.add_stage("L1", 1);
  const PlaceId p1 = net.add_place("L1", s1);
  const TypeId ty = net.add_type("T");
  net.add_transition("never", ty)
      .from(p1)
      .guard([](void*, FireCtx&) { return false; }, nullptr)
      .to(net.end_place());
  EngineOptions opt;
  opt.deadlock_limit = 50;
  Engine eng(net, opt);
  eng.build();
  emit(eng, ty, p1);
  const std::uint64_t ran = eng.run(10000);
  EXPECT_TRUE(eng.stopped());
  EXPECT_LT(ran, 10000u);
}

TEST(SoaScan, KernelsMatchNaiveLoopsInBothPaths) {
  // The vectorized scans must be drop-in equivalent to the scalar loops they
  // replaced — for every length (tail handling) and in both the block path
  // and the scalar_override ablation path.
  std::uint32_t rng = 99;
  auto next = [&] { return rng = rng * 1664525u + 1013904223u; };
  for (const bool scalar : {false, true}) {
    soa::scalar_override() = scalar;
    for (std::size_t n = 0; n <= 40; ++n) {
      std::vector<TokenStore::Key> keys(n);
      std::vector<Cycle> ready(n);
      for (std::size_t i = 0; i < n; ++i) {
        keys[i] = next() % 3;  // few distinct keys: plenty of matches
        ready[i] = next() % 4;
      }
      const TokenStore::Key want = next() % 3;
      const Cycle now = next() % 4;

      std::size_t naive_count = 0, naive_first = n;
      std::vector<std::size_t> naive_visits;
      Cycle naive_min = ~Cycle{0};
      for (std::size_t i = 0; i < n; ++i) {
        if (keys[i] == want) ++naive_count;
        if (keys[i] == want && ready[i] <= now) {
          if (naive_first == n) naive_first = i;
          naive_visits.push_back(i);
        }
        naive_min = std::min(naive_min, ready[i]);
      }

      EXPECT_EQ(soa::count_matches(keys.data(), n, want), naive_count) << n;
      EXPECT_EQ(soa::find_match_ready(keys.data(), ready.data(), n, want, now),
                naive_first)
          << n;
      std::vector<std::size_t> visits;
      soa::for_each_match_ready(keys.data(), ready.data(), n, want, now,
                                [&](std::size_t i) { visits.push_back(i); });
      EXPECT_EQ(visits, naive_visits) << n;
      EXPECT_EQ(soa::min_ready(ready.data(), n), naive_min) << n;
    }
  }
  soa::scalar_override() = false;
}

TEST(TokenStore, HintedRemovalEquivalentToLinearFindUnderChurn) {
  // remove_visible_at's hint is an optimization, never a semantic input: a
  // correct hint, a stale one (earlier removals shifted the slots) and pure
  // garbage must all leave the store byte-identical to plain remove_visible.
  // Two stores churn in lockstep — one removed with deliberately varied
  // hints, one with the linear find — and must agree after every operation.
  TokenStore hinted, plain;
  std::vector<std::unique_ptr<Token>> owned;
  std::vector<Token*> live_h, live_p;
  std::uint32_t rng = 12345, id = 0;
  auto next = [&] { return rng = rng * 1664525u + 1013904223u; };
  auto check_equal = [&] {
    ASSERT_EQ(hinted.size(), plain.size());
    for (std::size_t i = 0; i < hinted.size(); ++i) {
      // next_delay doubles as the creation id: same age order in both stores.
      ASSERT_EQ(hinted.at(i)->next_delay, plain.at(i)->next_delay) << "slot " << i;
      ASSERT_EQ(hinted.keys()[i], plain.keys()[i]) << "slot " << i;
      ASSERT_EQ(hinted.ready()[i], plain.ready()[i]) << "slot " << i;
      ASSERT_EQ(hinted.keys()[i],
                TokenStore::key(hinted.at(i)->place, hinted.at(i)->kind));
    }
  };
  for (int op = 0; op < 4000; ++op) {
    if (live_h.empty() || next() % 3 != 0) {
      auto th = std::make_unique<Token>();
      auto tp = std::make_unique<Token>();
      th->place = tp->place = static_cast<PlaceId>(next() % 4);
      th->kind = tp->kind =
          (next() % 4 == 0) ? TokenKind::reservation : TokenKind::instruction;
      th->ready = tp->ready = next() % 16;
      th->next_delay = tp->next_delay = id++;
      hinted.insert_visible(th.get());
      plain.insert_visible(tp.get());
      live_h.push_back(th.get());
      live_p.push_back(tp.get());
      owned.push_back(std::move(th));
      owned.push_back(std::move(tp));
    } else {
      const std::size_t vic = next() % live_h.size();
      std::size_t true_slot = hinted.size();
      for (std::size_t i = 0; i < hinted.size(); ++i)
        if (hinted.at(i) == live_h[vic]) true_slot = i;
      std::size_t hint = true_slot;
      switch (next() % 4) {
        case 0: break;                                   // exact
        case 1: hint = true_slot + 1; break;             // shifted (stale)
        case 2: hint = true_slot == 0 ? 7 : true_slot - 1; break;
        case 3: hint = 1u << 20; break;                  // far out of range
      }
      EXPECT_TRUE(hinted.remove_visible_at(hint, live_h[vic]));
      EXPECT_TRUE(plain.remove_visible(live_p[vic]));
      live_h.erase(live_h.begin() + static_cast<std::ptrdiff_t>(vic));
      live_p.erase(live_p.begin() + static_cast<std::ptrdiff_t>(vic));
    }
    check_equal();
  }
}

TEST(EngineQuiescence, SkipFastForwardsIdleCyclesWithoutChangingBehaviour) {
  // One token parked in a long-residence place and nothing else to do: the
  // engine is provably idle until the token's ready cycle, so the skip must
  // engage — and the observable outcome (clock, retire cycle, firings) must
  // be identical to the unskipped run.
  auto build = [](Net& net, PlaceId& p1) {
    const StageId s1 = net.add_stage("L1", 1);
    const StageId s2 = net.add_stage("L2", 1);
    p1 = net.add_place("L1", s1);
    const PlaceId p2 = net.add_place("L2", s2, /*delay=*/40);
    const TypeId ty = net.add_type("T");
    net.add_transition("t1", ty).from(p1).to(p2);
    net.add_transition("t2", ty).from(p2).to(net.end_place());
    return ty;
  };
  Net n1("plain"), n2("skip");
  PlaceId p1a, p1b;
  const TypeId ta = build(n1, p1a);
  const TypeId tb = build(n2, p1b);
  Engine e1(n1);
  EngineOptions opt;
  opt.quiescence_skip = true;
  Engine e2(n2, opt);
  e1.build();
  e2.build();
  emit(e1, ta, p1a);
  emit(e2, tb, p1b);
  e1.run(100);
  e2.run(100);
  EXPECT_EQ(e1.stats().retired, 1u);
  EXPECT_EQ(e2.stats().retired, 1u);
  EXPECT_EQ(e1.clock(), e2.clock());
  EXPECT_EQ(e1.stats().cycles, e2.stats().cycles);
  EXPECT_EQ(e1.stats().firings, e2.stats().firings);
  EXPECT_EQ(e1.stats().quiesced_cycles, 0u);
  // The 40-cycle residence of L2 is pure idle time: nearly all of it must
  // have been fast-forwarded rather than stepped.
  EXPECT_GT(e2.stats().quiesced_cycles, 30u);
}

TEST(EngineQuiescence, SkipRespectsRunHorizon) {
  // run(max_cycles) semantics must be unchanged: a skip may not overshoot
  // the caller's budget even when the next ready cycle lies beyond it.
  Net net("horizon");
  const StageId s1 = net.add_stage("L1", 1);
  const PlaceId p1 = net.add_place("L1", s1, /*delay=*/100);
  const TypeId ty = net.add_type("T");
  net.add_transition("t", ty).from(p1).to(net.end_place());
  EngineOptions opt;
  opt.quiescence_skip = true;
  Engine eng(net, opt);
  eng.build();
  emit(eng, ty, p1);
  const std::uint64_t ran = eng.run(10);
  EXPECT_EQ(ran, 10u);
  EXPECT_EQ(eng.clock(), 10u);
  EXPECT_EQ(eng.stats().retired, 0u);
  eng.run(200);
  EXPECT_EQ(eng.stats().retired, 1u);
}

TEST(EngineSearch, LinearSearchAblationMatchesSortedTable) {
  auto build = [](Net& net, PlaceId& p1) {
    const StageId s1 = net.add_stage("L1", 1);
    const StageId s2 = net.add_stage("L2", 1);
    p1 = net.add_place("L1", s1);
    const PlaceId p2 = net.add_place("L2", s2);
    const TypeId ty = net.add_type("T");
    net.add_transition("t1", ty).from(p1).to(p2);
    net.add_transition("t2", ty).from(p2).to(net.end_place());
    return ty;
  };
  Net n1("sorted"), n2("linear");
  PlaceId p1a, p1b;
  const TypeId ta = build(n1, p1a);
  const TypeId tb = build(n2, p1b);
  Engine e1(n1);
  EngineOptions opt;
  opt.linear_search = true;
  Engine e2(n2, opt);
  e1.build();
  e2.build();
  emit(e1, ta, p1a);
  emit(e2, tb, p1b);
  e1.run(6);
  e2.run(6);
  EXPECT_EQ(e1.stats().retired, e2.stats().retired);
  EXPECT_EQ(e1.stats().firings, e2.stats().firings);
}

}  // namespace
}  // namespace rcpn::core
