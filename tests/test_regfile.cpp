// Tests for the three-level register model of paper §3.1: storage cells,
// overlapping registers, RegRef lock/forward/writeback and Const uniformity.
#include <gtest/gtest.h>

#include "regfile/reg_ref.hpp"

namespace rcpn::regfile {
namespace {

class RegfileTest : public ::testing::Test {
 protected:
  RegfileTest() : file_(4, WritePolicy::single_writer) {
    file_.add_identity_registers(4);
  }
  RegisterFile file_;
  PlaceId owner_a_ = kNoPlace;
  PlaceId owner_b_ = kNoPlace;
};

TEST_F(RegfileTest, ReadAfterWriteCell) {
  file_.write_cell(2, 0xAB);
  EXPECT_EQ(file_.read_cell(2), 0xABu);
}

TEST_F(RegfileTest, FreshRegisterIsReadable) {
  RegRef r;
  r.bind(&file_, 1, &owner_a_);
  EXPECT_TRUE(r.can_read());
  EXPECT_TRUE(r.can_write());
}

TEST_F(RegfileTest, ReserveBlocksReaders) {
  RegRef writer, reader;
  writer.bind(&file_, 1, &owner_a_);
  reader.bind(&file_, 1, &owner_b_);
  writer.reserve_write();
  EXPECT_FALSE(reader.can_read());
  EXPECT_FALSE(reader.can_write());  // single_writer: WAW stalls
  writer.set_value(42);
  writer.writeback();
  EXPECT_TRUE(reader.can_read());
  reader.read();
  EXPECT_EQ(reader.value(), 42u);
}

TEST_F(RegfileTest, ForwardingFromWriterState) {
  RegRef writer, reader;
  writer.bind(&file_, 1, &owner_a_);
  reader.bind(&file_, 1, &owner_b_);
  writer.reserve_write();

  // Writer has no value yet: no forwarding from any state.
  owner_a_ = 3;
  EXPECT_FALSE(reader.can_read_in(3));

  writer.set_value(7);  // result computed, writer now in place 3
  EXPECT_TRUE(reader.can_read_in(3));
  EXPECT_FALSE(reader.can_read_in(2));  // wrong state
  reader.read_in(3);
  EXPECT_EQ(reader.value(), 7u);

  // Plain read is still blocked until writeback.
  EXPECT_FALSE(reader.can_read());
  writer.writeback();
  EXPECT_TRUE(reader.can_read());
  EXPECT_EQ(file_.read_cell(1), 7u);
}

TEST_F(RegfileTest, ReleaseDropsReservationWithoutCommit) {
  RegRef writer;
  writer.bind(&file_, 1, &owner_a_);
  file_.write_cell(1, 99);
  writer.reserve_write();
  writer.set_value(1);
  writer.release();  // squash
  EXPECT_FALSE(file_.has_writer(1));
  EXPECT_EQ(file_.read_cell(1), 99u);  // old value preserved
}

TEST_F(RegfileTest, OverlappingRegistersShareStorage) {
  // Two architectural names over the same cell (banked register model).
  const RegisterId alias = file_.add_register("r1_alias", 1);
  RegRef a, b;
  a.bind(&file_, 1, &owner_a_);
  b.bind(&file_, alias, &owner_b_);
  a.reserve_write();
  // Hazard visible through the alias as well.
  EXPECT_FALSE(b.can_read());
  a.set_value(5);
  a.writeback();
  b.read();
  EXPECT_EQ(b.value(), 5u);
}

TEST_F(RegfileTest, IndependentCellsDoNotInterfere) {
  RegRef a, b;
  a.bind(&file_, 1, &owner_a_);
  b.bind(&file_, 2, &owner_b_);
  a.reserve_write();
  EXPECT_TRUE(b.can_read());
  EXPECT_TRUE(b.can_write());
}

TEST(RegfileMultiWriter, OutOfOrderCompletionKeepsNewestValue) {
  RegisterFile file(2, WritePolicy::multi_writer);
  file.add_identity_registers(2);
  PlaceId pa = kNoPlace, pb = kNoPlace;
  RegRef older, newer;
  older.bind(&file, 0, &pa);
  newer.bind(&file, 0, &pb);
  older.reserve_write();
  newer.reserve_write();  // multi_writer allows a second reservation
  // Newer completes first (out-of-order completion)...
  newer.set_value(2);
  newer.writeback();
  EXPECT_EQ(file.read_cell(0), 2u);
  // ...then the older writer must NOT clobber the newer value.
  older.set_value(1);
  older.writeback();
  EXPECT_EQ(file.read_cell(0), 2u);
  EXPECT_FALSE(file.has_writer(0));
}

TEST(RegfileMultiWriter, InOrderCompletionCommitsBoth) {
  RegisterFile file(1, WritePolicy::multi_writer);
  file.add_identity_registers(1);
  PlaceId pa = kNoPlace, pb = kNoPlace;
  RegRef first, second;
  first.bind(&file, 0, &pa);
  second.bind(&file, 0, &pb);
  first.reserve_write();
  second.reserve_write();
  first.set_value(10);
  first.writeback();
  EXPECT_EQ(file.read_cell(0), 10u);
  second.set_value(20);
  second.writeback();
  EXPECT_EQ(file.read_cell(0), 20u);
}

TEST(RegfileMultiWriter, ForwardOnlyFromNewestWriter) {
  RegisterFile file(1, WritePolicy::multi_writer);
  file.add_identity_registers(1);
  PlaceId pa = 5, pb = 5, pr = kNoPlace;
  RegRef older, newer, reader;
  older.bind(&file, 0, &pa);
  newer.bind(&file, 0, &pb);
  reader.bind(&file, 0, &pr);
  older.reserve_write();
  older.set_value(1);
  newer.reserve_write();
  // Older writer sits in place 5 with a ready value, but it is stale:
  // a newer reservation exists, so forwarding from it must be refused.
  EXPECT_FALSE(reader.can_read_in(5));
  newer.set_value(2);
  EXPECT_TRUE(reader.can_read_in(5));
  reader.read_in(5);
  EXPECT_EQ(reader.value(), 2u);
}

TEST(ConstOperandTest, UniformInterface) {
  ConstOperand c(1234);
  EXPECT_TRUE(c.can_read());
  EXPECT_TRUE(c.can_write());
  EXPECT_FALSE(c.can_read_in(3));
  c.read();           // no-op
  c.reserve_write();  // no-op
  c.writeback();      // no-op
  c.release();        // no-op
  EXPECT_EQ(c.value(), 1234u);
}

TEST(RegfileReset, ClearsStorageAndWriters) {
  RegisterFile file(2, WritePolicy::single_writer);
  file.add_identity_registers(2);
  PlaceId p = kNoPlace;
  RegRef r;
  r.bind(&file, 0, &p);
  file.write_cell(0, 9);
  r.reserve_write();
  file.reset();
  EXPECT_EQ(file.read_cell(0), 0u);
  EXPECT_FALSE(file.has_writer(0));
}

}  // namespace
}  // namespace rcpn::regfile
