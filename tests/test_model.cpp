// Tests for the declarative modeling API: ModelBuilder build-time
// validation, the Simulator<M> facade (reset / re-run round trips, typed
// machine context), and the equivalence of a ModelBuilder-built Figure 2
// pipeline with a legacy hand-wired core::Net — cycle for cycle.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "machines/simple_pipeline.hpp"
#include "model/model_builder.hpp"
#include "model/simulator.hpp"

namespace rcpn::model {
namespace {

using core::FireCtx;

// ---------------------------------------------------------------------------
// Builder validation
// ---------------------------------------------------------------------------

/// Expect build() to throw a ModelError whose message contains `fragment`.
template <typename Builder>
void expect_build_error(Builder& b, const std::string& fragment) {
  try {
    b.build();
    FAIL() << "expected ModelError containing '" << fragment << "'";
  } catch (const ModelError& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(ModelValidation, DuplicateStageName) {
  ModelBuilder<> b("m");
  b.add_stage("S", 1);
  b.add_stage("S", 1);
  expect_build_error(b, "duplicate stage name 'S'");
}

TEST(ModelValidation, DuplicatePlaceName) {
  ModelBuilder<> b("m");
  const StageHandle s = b.add_stage("S", 1);
  b.add_place("P", s);
  b.add_place("P", s);
  expect_build_error(b, "duplicate place name 'P'");
}

TEST(ModelValidation, DuplicateTypeName) {
  ModelBuilder<> b("m");
  b.add_type("T");
  b.add_type("T");
  expect_build_error(b, "duplicate operation-class");
}

TEST(ModelValidation, ZeroCapacityStage) {
  ModelBuilder<> b("m");
  b.add_stage("S", 0);
  expect_build_error(b, "zero capacity");
}

TEST(ModelValidation, ZeroDelayPlace) {
  ModelBuilder<> b("m");
  const StageHandle s = b.add_stage("S", 1);
  b.add_place("P", s, /*delay=*/0);
  expect_build_error(b, "zero delay");
}

TEST(ModelValidation, UnreachableStage) {
  ModelBuilder<> b("m");
  const StageHandle s1 = b.add_stage("S1", 1);
  b.add_stage("ORPHAN", 2);  // no place ever binds to it
  b.add_place("P", s1);
  expect_build_error(b, "stage 'ORPHAN' is unreachable: no place binds to it");
}

TEST(ModelValidation, ReadsStateWithDanglingHandle) {
  ModelBuilder<> b("m");
  const TypeHandle ty = b.add_type("T");
  const StageHandle s = b.add_stage("S", 1);
  const PlaceHandle p = b.add_place("P", s);
  b.add_transition("t", ty).from(p).reads_state(PlaceHandle{}).to(b.end());
  expect_build_error(b, "reads_state: dangling place handle");
}

TEST(ModelValidation, ForceTwoListOnForeignStage) {
  ModelBuilder<> other("other");
  const StageHandle foreign = other.add_stage("S", 1);
  ModelBuilder<> b("m");
  try {
    b.force_two_list(foreign, true);
    FAIL() << "expected ModelError";
  } catch (const ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("belongs to a different model"),
              std::string::npos)
        << "actual message: " << e.what();
    EXPECT_NE(std::string(e.what()).find("force_two_list()"), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(ModelValidation, ErrorMessagesNameTheModelAndEntity) {
  // The message contract the other tests rely on: "model '<name>':" prefix
  // and the offending entity named in the body.
  ModelBuilder<> b("xscale-variant");
  b.add_stage("F1", 1);
  b.add_stage("F1", 1);
  try {
    b.build();
    FAIL() << "expected ModelError";
  } catch (const ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("model 'xscale-variant':"), std::string::npos)
        << "actual message: " << e.what();
    EXPECT_NE(std::string(e.what()).find("duplicate stage name 'F1'"),
              std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(ModelValidation, TransitionFromDanglingPlaceHandle) {
  ModelBuilder<> b("m");
  const TypeHandle ty = b.add_type("T");
  PlaceHandle never_declared;  // default-constructed: dangling
  EXPECT_FALSE(never_declared.valid());
  b.add_transition("t", ty).from(never_declared).to(b.end());
  expect_build_error(b, "dangling place handle");
}

TEST(ModelValidation, HandleFromAnotherModel) {
  ModelBuilder<> other("other");
  const StageHandle foreign_stage = other.add_stage("S", 1);
  const PlaceHandle foreign = other.add_place("P", foreign_stage);

  ModelBuilder<> b("m");
  const TypeHandle ty = b.add_type("T");
  const StageHandle s = b.add_stage("S", 1);
  const PlaceHandle p = b.add_place("P", s);
  b.add_transition("t", ty).from(p).to(foreign);
  expect_build_error(b, "belongs to a different model");
}

TEST(ModelValidation, PlaceOnForeignStage) {
  ModelBuilder<> other("other");
  const StageHandle foreign = other.add_stage("S", 1);

  ModelBuilder<> b("m");
  b.add_place("P", foreign);
  expect_build_error(b, "belongs to a different model");
}

TEST(ModelValidation, MissingTriggerArc) {
  ModelBuilder<> b("m");
  const TypeHandle ty = b.add_type("T");
  const StageHandle s = b.add_stage("S", 1);
  const PlaceHandle p = b.add_place("P", s);
  b.add_transition("t", ty).to(p);
  expect_build_error(b, "no trigger arc");
}

TEST(ModelValidation, TwoTriggerArcs) {
  ModelBuilder<> b("m");
  const TypeHandle ty = b.add_type("T");
  const StageHandle s = b.add_stage("S", 2);
  const PlaceHandle p1 = b.add_place("P1", s);
  const PlaceHandle p2 = b.add_place("P2", s);
  b.add_transition("t", ty).from(p1).from(p2).to(b.end());
  expect_build_error(b, "more than one trigger arc");
}

TEST(ModelValidation, MissingMoveArc) {
  ModelBuilder<> b("m");
  const TypeHandle ty = b.add_type("T");
  const StageHandle s = b.add_stage("S", 1);
  const PlaceHandle p = b.add_place("P", s);
  b.add_transition("t", ty).from(p);
  expect_build_error(b, "never moved");
}

TEST(ModelValidation, IndependentTransitionWithTriggerArc) {
  ModelBuilder<> b("m");
  const StageHandle s = b.add_stage("S", 1);
  const PlaceHandle p = b.add_place("P", s);
  b.add_independent_transition("f").from(p).to(p);
  expect_build_error(b, "cannot have trigger arcs");
}

TEST(ModelValidation, DanglingTypeHandle) {
  ModelBuilder<> b("m");
  const StageHandle s = b.add_stage("S", 1);
  const PlaceHandle p = b.add_place("P", s);
  b.add_transition("t", TypeHandle{}).from(p).to(b.end());
  expect_build_error(b, "dangling operation-class handle");
}

TEST(ModelValidation, TypedGuardWithoutMachineContext) {
  struct Ctx {
    int x = 0;
  };
  ModelBuilder<Ctx> b("m");
  const TypeHandle ty = b.add_type("T");
  const StageHandle s = b.add_stage("S", 1);
  const PlaceHandle p = b.add_place("P", s);
  b.add_transition("t", ty)
      .from(p)
      .guard([](Ctx& c, FireCtx&) { return c.x == 0; })
      .to(b.end());
  try {
    b.build(nullptr);
    FAIL() << "expected ModelError";
  } catch (const ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("no machine context"), std::string::npos);
  }
}

TEST(ModelValidation, InputArcFromEndPlace) {
  ModelBuilder<> b("m");
  const TypeHandle ty = b.add_type("T");
  const StageHandle s = b.add_stage("S", 1);
  const PlaceHandle p = b.add_place("P", s);
  b.add_transition("t", ty).from(b.end()).to(p);
  expect_build_error(b, "consumes from an end place");
}

TEST(ModelValidation, ReservationArcFromDeclaredEndPlace) {
  ModelBuilder<> b("m");
  const TypeHandle ty = b.add_type("T");
  const StageHandle s = b.add_stage("S", 1);
  const PlaceHandle p = b.add_place("P", s);
  const PlaceHandle done = b.add_end_place("done");
  b.add_transition("t", ty).from(p).consume_reservation(done).to(b.end());
  expect_build_error(b, "consumes from an end place");
}

TEST(ModelValidation, ZeroMaxFiresPerCycle) {
  ModelBuilder<> b("m");
  const StageHandle s = b.add_stage("S", 1);
  const PlaceHandle p = b.add_place("P", s);
  b.add_independent_transition("f").max_fires_per_cycle(0).to(p);
  expect_build_error(b, "max_fires_per_cycle must be >= 1");
}

TEST(ModelValidation, GuardOverrideLastWriterWinsAcrossStatefulAndStateless) {
  // A capturing guard replaced by a capture-less one (different internal
  // storage) must still be last-writer-wins, like core::TransitionBuilder.
  ModelBuilder<> b("m");
  const StageHandle s = b.add_stage("S", 1);
  const PlaceHandle p = b.add_place("P", s);
  const TypeHandle ty = b.add_type("T");
  bool captured_ran = false;
  const TransitionHandle t = b.add_transition("t", ty)
                                 .from(p)
                                 .guard([&captured_ran](FireCtx&) {
                                   captured_ran = true;
                                   return false;  // would block forever
                                 })
                                 .guard([](FireCtx&) { return true; })  // override
                                 .to(b.end());
  core::Net& net = b.build();
  core::Engine eng(net);
  eng.build();
  core::InstructionToken* tok = eng.acquire_pooled_instruction();
  tok->type = ty;
  eng.emit_instruction(tok, p);
  eng.step();
  eng.step();
  EXPECT_FALSE(captured_ran);
  EXPECT_EQ(eng.stats().transition_fires[static_cast<unsigned>(t.id())], 1u);
}

TEST(ModelValidation, BuildTwice) {
  ModelBuilder<> b("m");
  b.build();
  expect_build_error(b, "build() called twice");
}

TEST(ModelValidation, ValidModelLowersWithMatchingIds) {
  ModelBuilder<> b("m");
  const StageHandle s1 = b.add_stage("S1", 1);
  const StageHandle s2 = b.add_stage("S2", 3);
  const PlaceHandle p1 = b.add_place("P1", s1);
  const PlaceHandle p2 = b.add_place("P2", s2, /*delay=*/2);
  const PlaceHandle extra_end = b.add_end_place("done");
  const TypeHandle ty = b.add_type("T");
  const TransitionHandle t1 = b.add_transition("t1", ty).from(p1, 1).to(p2);
  const TransitionHandle t2 = b.add_transition("t2", ty).from(p2).to(extra_end);

  core::Net& net = b.build();
  EXPECT_TRUE(b.built());
  EXPECT_EQ(net.find_stage("S1"), s1.id());
  EXPECT_EQ(net.find_stage("S2"), s2.id());
  EXPECT_EQ(net.find_place("P1"), p1.id());
  EXPECT_EQ(net.find_place("P2"), p2.id());
  EXPECT_EQ(net.find_place("done"), extra_end.id());
  EXPECT_EQ(net.find_type("T"), ty.id());
  EXPECT_EQ(net.stage(s2.id()).capacity(), 3u);
  EXPECT_EQ(net.place(p2.id()).delay, 2u);
  EXPECT_TRUE(net.stage_of(extra_end.id()).is_end());
  EXPECT_EQ(net.transition(t1.id()).name(), "t1");
  EXPECT_EQ(net.transition(t1.id()).trigger_priority(), 1);
  EXPECT_EQ(net.transition(t2.id()).name(), "t2");
}

TEST(ModelValidation, PriorityMethodSetsTriggerPriority) {
  ModelBuilder<> b("m");
  const StageHandle s = b.add_stage("S", 1);
  const PlaceHandle p = b.add_place("P", s);
  const TypeHandle ty = b.add_type("T");
  const TransitionHandle t =
      b.add_transition("t", ty).from(p).priority(3).delay(2).to(b.end());
  core::Net& net = b.build();
  EXPECT_EQ(net.transition(t.id()).trigger_priority(), 3);
  EXPECT_EQ(net.transition(t.id()).delay(), 2u);
}

// ---------------------------------------------------------------------------
// Engine typed machine context
// ---------------------------------------------------------------------------

TEST(EngineMachineContext, TypedRoundTrip) {
  core::Net net("ctx");
  core::Engine eng(net);
  int value = 42;
  eng.set_machine(&value);
  EXPECT_EQ(&eng.machine<int>(), &value);
  EXPECT_EQ(eng.machine<int>(), 42);
}

// ---------------------------------------------------------------------------
// Simulator facade
// ---------------------------------------------------------------------------

struct Counter {
  std::uint64_t to_generate = 0;
  std::uint64_t generated = 0;

  void load(std::uint64_t n) {
    to_generate = n;
    generated = 0;
  }
};

/// One-stage model: generate `to_generate` tokens, each retires after a
/// cycle in S.
class CounterSim {
 public:
  explicit CounterSim(std::uint64_t n)
      : sim_(
            "counter",
            [this](ModelBuilder<Counter>& b, Counter&) {
              const StageHandle s = b.add_stage("S", 1);
              p_ = b.add_place("S", s);
              ty_ = b.add_type("T");
              t_ = b.add_transition("t", ty_).from(p_).to(b.end());
              const core::TypeId ty = ty_;
              const core::PlaceId p = p_;
              b.add_independent_transition("gen")
                  .guard([](Counter& c, FireCtx&) { return c.generated < c.to_generate; })
                  .action([ty, p](Counter& c, FireCtx& ctx) {
                    core::InstructionToken* t = ctx.engine->acquire_pooled_instruction();
                    t->type = ty;
                    ++c.generated;
                    ctx.engine->emit_instruction(t, p);
                  })
                  .to(p_);
            },
            Counter{n, 0}) {}

  Simulator<Counter>& sim() { return sim_; }
  std::uint64_t run() {
    return sim_.drain([](const Counter& c) { return c.generated >= c.to_generate; },
                      1u << 20);
  }
  TransitionHandle t() const { return t_; }

 private:
  PlaceHandle p_;
  TypeHandle ty_;
  TransitionHandle t_;
  Simulator<Counter> sim_;
};

TEST(SimulatorFacade, RunsAndReports) {
  CounterSim cs(5);
  const std::uint64_t cycles = cs.run();
  EXPECT_GT(cycles, 0u);
  EXPECT_EQ(cs.sim().stats().retired, 5u);
  EXPECT_EQ(cs.sim().fires(cs.t()), 5u);
  EXPECT_EQ(cs.sim().machine().generated, 5u);
  const std::string rep = cs.sim().report();
  EXPECT_NE(rep.find("cycles"), std::string::npos);
  EXPECT_NE(rep.find("t:"), std::string::npos);
}

TEST(SimulatorFacade, ResetRerunRoundTripIsIdentical) {
  CounterSim cs(7);
  const std::uint64_t c1 = cs.run();
  const std::uint64_t retired1 = cs.sim().stats().retired;

  // load() resets the engine (clock, stats, tokens) then reloads the machine.
  cs.sim().load(std::uint64_t{7});
  EXPECT_EQ(cs.sim().clock(), 0u);
  EXPECT_EQ(cs.sim().stats().retired, 0u);
  EXPECT_EQ(cs.sim().machine().generated, 0u);

  const std::uint64_t c2 = cs.run();
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(cs.sim().stats().retired, retired1);
  EXPECT_EQ(cs.sim().fires(cs.t()), 7u);
}

TEST(SimulatorFacade, FiresRejectsForeignOrDanglingHandles) {
  CounterSim cs(1);
  cs.run();
  EXPECT_EQ(cs.sim().fires(cs.t()), 1u);
  EXPECT_THROW(cs.sim().fires(TransitionHandle{}), ModelError);
  CounterSim other(1);
  EXPECT_THROW(cs.sim().fires(other.t()), ModelError);
}

TEST(SimulatorFacade, HooksFire) {
  CounterSim cs(3);
  std::uint64_t retired = 0;
  cs.sim().hooks().on_retire = [&](core::InstructionToken*) { ++retired; };
  cs.run();
  EXPECT_EQ(retired, 3u);
}

// ---------------------------------------------------------------------------
// Equivalence: ModelBuilder-built Fig 2 vs the legacy hand-wired net
// ---------------------------------------------------------------------------

/// The Figure 2 pipeline exactly as machines::SimplePipeline wired it before
/// the model API existed: raw core::Net ids, raw GuardFn/ActionFn delegates
/// with `this` as the environment (the only registration form the core layer
/// keeps; closures belong to the model layer).
class LegacyFig2 {
 public:
  explicit LegacyFig2(std::uint64_t to_generate)
      : net_("Fig2-legacy"), eng_(net_), to_generate_(to_generate) {
    const core::StageId s1 = net_.add_stage("L1", 1);
    const core::StageId s2 = net_.add_stage("L2", 1);
    l1_ = net_.add_place("L1", s1);
    l2_ = net_.add_place("L2", s2);
    type_a_ = net_.add_type("A");
    type_b_ = net_.add_type("B");

    u2_ = net_.add_transition("U2", type_a_).from(l1_).to(l2_).id();
    u3_ = net_.add_transition("U3", type_a_).from(l2_).to(net_.end_place()).id();
    u4_ = net_.add_transition("U4", type_b_).from(l1_).to(net_.end_place()).id();

    net_.add_independent_transition("U1")
        .guard(
            [](void* env, FireCtx&) {
              auto* self = static_cast<LegacyFig2*>(env);
              return self->generated_ < self->to_generate_;
            },
            this)
        .action(
            [](void* env, FireCtx& ctx) {
              auto* self = static_cast<LegacyFig2*>(env);
              core::InstructionToken* t = ctx.engine->acquire_pooled_instruction();
              t->type = (self->generated_ % 2 == 0) ? self->type_a_ : self->type_b_;
              ++self->generated_;
              ctx.engine->emit_instruction(t, self->l1_);
            },
            this)
        .to(l1_);

    eng_.build();
  }

  core::Engine& engine() { return eng_; }
  std::uint64_t generated() const { return generated_; }
  std::uint64_t to_generate() const { return to_generate_; }
  std::uint64_t fires(core::TransitionId t) const {
    return eng_.stats().transition_fires[static_cast<unsigned>(t)];
  }
  core::TransitionId u2() const { return u2_; }
  core::TransitionId u3() const { return u3_; }
  core::TransitionId u4() const { return u4_; }

 private:
  core::Net net_;
  core::Engine eng_;
  std::uint64_t to_generate_;
  std::uint64_t generated_ = 0;
  core::TypeId type_a_ = core::kNoType, type_b_ = core::kNoType;
  core::PlaceId l1_ = core::kNoPlace, l2_ = core::kNoPlace;
  core::TransitionId u2_ = -1, u3_ = -1, u4_ = -1;
};

TEST(ModelEquivalence, Fig2LockstepWithLegacyHandWiredNet) {
  for (const std::uint64_t n : {1ull, 2ull, 10ull, 101ull}) {
    LegacyFig2 legacy(n);
    machines::SimplePipeline modern(n);

    // Step both engines in lockstep; every cycle must agree on every
    // aggregate statistic — "cycle-for-cycle identical".
    std::uint64_t guard_cycles = 0;
    for (;;) {
      const bool legacy_done =
          legacy.generated() >= n && legacy.engine().tokens_in_flight() == 0;
      const bool modern_done =
          modern.generated() >= n && modern.engine().tokens_in_flight() == 0;
      EXPECT_EQ(legacy_done, modern_done) << "n=" << n << " cycle=" << guard_cycles;
      if (legacy_done || modern_done) break;

      legacy.engine().step();
      modern.engine().step();
      ++guard_cycles;
      ASSERT_LT(guard_cycles, 10'000u) << "lockstep run did not drain";

      const core::Stats& ls = legacy.engine().stats();
      const core::Stats& ms = modern.engine().stats();
      ASSERT_EQ(ls.cycles, ms.cycles);
      ASSERT_EQ(ls.firings, ms.firings) << "n=" << n << " cycle=" << guard_cycles;
      ASSERT_EQ(ls.retired, ms.retired) << "n=" << n << " cycle=" << guard_cycles;
      ASSERT_EQ(ls.fetched, ms.fetched) << "n=" << n << " cycle=" << guard_cycles;
      ASSERT_EQ(legacy.engine().tokens_in_flight(), modern.engine().tokens_in_flight());
    }

    // Final per-transition counts match (U2/U3/U4 share ids across the nets
    // because both declare them in the same order).
    EXPECT_EQ(legacy.fires(legacy.u2()), modern.u2_fires());
    EXPECT_EQ(legacy.fires(legacy.u3()), modern.u3_fires());
    EXPECT_EQ(legacy.fires(legacy.u4()), modern.u4_fires());
    EXPECT_EQ(legacy.engine().stats().cycles, modern.engine().stats().cycles);
  }
}

TEST(ModelEquivalence, Fig2RunHelperMatchesLockstepCycleCount) {
  LegacyFig2 legacy(10);
  while (!(legacy.generated() >= 10 && legacy.engine().tokens_in_flight() == 0))
    legacy.engine().step();

  machines::SimplePipeline modern(10);
  const std::uint64_t cycles = modern.run();
  EXPECT_EQ(cycles, legacy.engine().stats().cycles);
}

}  // namespace
}  // namespace rcpn::model
