#include <gtest/gtest.h>

#include "predictor/predictor.hpp"

namespace rcpn::predictor {
namespace {

TEST(StaticNotTakenTest, AlwaysPredictsNotTaken) {
  StaticNotTaken p;
  for (std::uint32_t pc = 0; pc < 64; pc += 4) {
    const Prediction pr = p.predict(pc);
    EXPECT_FALSE(pr.taken);
    EXPECT_FALSE(pr.target_known);
  }
  p.update(0, true, 0x100, true);
  EXPECT_EQ(p.stats().mispredicts, 1u);
}

TEST(BimodalTest, LearnsTakenBranch) {
  Bimodal p(64);
  const std::uint32_t pc = 0x8000;
  EXPECT_FALSE(p.predict(pc).taken);  // counters start weakly not-taken
  p.update(pc, true, 0x100, true);
  p.update(pc, true, 0x100, false);
  EXPECT_TRUE(p.predict(pc).taken);
  // And unlearns it.
  p.update(pc, false, 0, true);
  p.update(pc, false, 0, false);
  EXPECT_FALSE(p.predict(pc).taken);
}

TEST(BimodalTest, CountersSaturate) {
  Bimodal p(64);
  const std::uint32_t pc = 0x10;
  for (int i = 0; i < 10; ++i) p.update(pc, true, 0, false);
  // One not-taken shouldn't flip a saturated counter.
  p.update(pc, false, 0, false);
  EXPECT_TRUE(p.predict(pc).taken);
}

TEST(BimodalTest, DistinctIndexesAreIndependent) {
  Bimodal p(64);
  p.update(0x00, true, 0, false);
  p.update(0x00, true, 0, false);
  EXPECT_TRUE(p.predict(0x00).taken);
  EXPECT_FALSE(p.predict(0x04).taken);
}

TEST(BtbTest, MissUntilAllocatedOnTaken) {
  Btb p(16);
  EXPECT_FALSE(p.predict(0x8000).target_known);
  p.update(0x8000, false, 0, false);       // not-taken: no allocation
  EXPECT_FALSE(p.predict(0x8000).target_known);
  p.update(0x8000, true, 0x9000, true);    // taken: allocate
  const Prediction pr = p.predict(0x8000);
  EXPECT_TRUE(pr.target_known);
  EXPECT_TRUE(pr.taken);
  EXPECT_EQ(pr.target, 0x9000u);
}

TEST(BtbTest, TagMismatchBehavesLikeMiss) {
  Btb p(16);
  p.update(0x8000, true, 0x9000, false);
  // Same index (16 entries, word-indexed), different tag.
  const std::uint32_t alias = 0x8000 + 16 * 4;
  EXPECT_FALSE(p.predict(alias).target_known);
}

TEST(BtbTest, TargetUpdatesOnRetrain) {
  Btb p(16);
  p.update(0x8000, true, 0x9000, false);
  p.update(0x8000, true, 0xA000, true);  // target changed
  EXPECT_EQ(p.predict(0x8000).target, 0xA000u);
}

TEST(BtbTest, MispredictRatioTracked) {
  Btb p(16);
  p.update(0x0, true, 0x100, true);
  p.update(0x0, true, 0x100, false);
  p.update(0x0, true, 0x100, false);
  p.update(0x0, true, 0x100, false);
  EXPECT_DOUBLE_EQ(p.stats().mispredict_ratio(), 0.25);
}

}  // namespace
}  // namespace rcpn::predictor
