// SimFarm: job identity hashing, scheduling-independent determinism, fault
// injection (throwing and hanging jobs), the result cache, and subprocess
// executor parity with in-process runs.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/stat.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "farm/executor.hpp"
#include "farm/job.hpp"
#include "farm/report.hpp"
#include "farm/sim_farm.hpp"
#include "machines/fuzz_model.hpp"
#include "machines/golden_runner.hpp"

using namespace rcpn;

namespace {

farm::JobSpec golden_spec(const std::string& machine, std::uint64_t seed = 0) {
  farm::JobSpec spec;
  spec.machine = machine;
  spec.options.backend = core::Backend::compiled;
  spec.seed = seed;
  return spec;
}

farm::JobSpec fuzz_spec(std::uint64_t seed, std::uint64_t budget = 4000) {
  farm::JobSpec spec;
  spec.machine = "fuzz";
  spec.options.backend = core::Backend::compiled;
  spec.seed = seed;
  spec.cycle_budget = budget;
  return spec;
}

/// The mixed in-process grid the determinism and cache tests share: every
/// golden machine plus two fuzz topologies, under two schedule variants.
std::vector<farm::JobSpec> mixed_grid() {
  std::vector<farm::JobSpec> jobs;
  for (const std::string& key : machines::golden_machine_keys()) {
    jobs.push_back(golden_spec(key));
    farm::JobSpec ablated = golden_spec(key, 1);
    ablated.options.force_two_list_all = true;
    jobs.push_back(ablated);
  }
  jobs.push_back(fuzz_spec(7));
  jobs.push_back(fuzz_spec(11));
  return jobs;
}

farm::FarmReport run_fresh(const std::vector<farm::JobSpec>& jobs, unsigned workers,
                           std::uint64_t timeout_ms = 30000) {
  farm::FarmOptions fo;
  fo.workers = workers;
  fo.default_timeout_ms = timeout_ms;
  farm::SimFarm sim_farm(std::move(fo));
  return sim_farm.run(jobs);
}

}  // namespace

// -- job identity -------------------------------------------------------------

TEST(FarmJob, KeyCoversIdentityFieldsOnly) {
  const farm::JobSpec base = golden_spec("fig2");
  const std::uint64_t h = farm::job_hash(base);

  // timeout_ms is a runtime knob, not identity: same hash.
  farm::JobSpec timed = base;
  timed.timeout_ms = 1234;
  EXPECT_EQ(farm::job_hash(timed), h);

  // Every identity field changes the hash.
  farm::JobSpec other = base;
  other.machine = "fig5";
  EXPECT_NE(farm::job_hash(other), h);
  other = base;
  other.seed = 1;
  EXPECT_NE(farm::job_hash(other), h);
  other = base;
  other.executor = farm::ExecutorKind::subprocess;
  EXPECT_NE(farm::job_hash(other), h);
  other = base;
  other.options.backend = core::Backend::interpreted;
  EXPECT_NE(farm::job_hash(other), h);
  other = base;
  other.options.force_two_list_all = true;
  EXPECT_NE(farm::job_hash(other), h);
  other = base;
  other.options.deadlock_limit = 5;
  EXPECT_NE(farm::job_hash(other), h);

  // Golden machines run their fixed workload to completion — no executor
  // honors a cycle budget for them, so a budget must not split the identity
  // of what is provably the same simulation.
  other = base;
  other.cycle_budget = 999;
  EXPECT_EQ(farm::job_hash(other), h);
}

TEST(FarmJob, KeyIsStableAcrossCalls) {
  const farm::JobSpec spec = fuzz_spec(42);
  EXPECT_EQ(farm::job_key(spec), farm::job_key(spec));
  EXPECT_EQ(farm::job_hash(spec), farm::job_hash(spec));
  EXPECT_NE(farm::job_key(spec).find("machine=fuzz"), std::string::npos);
  EXPECT_NE(farm::job_key(spec).find("seed=42"), std::string::npos);
}

// -- determinism --------------------------------------------------------------

TEST(FarmDeterminism, OneWorkerAndFourWorkersProduceIdenticalStableReports) {
  const std::vector<farm::JobSpec> jobs = mixed_grid();
  const farm::FarmReport serial = run_fresh(jobs, 1);
  const farm::FarmReport parallel = run_fresh(jobs, 4);

  ASSERT_EQ(serial.jobs.size(), jobs.size());
  EXPECT_EQ(serial.count(farm::JobStatus::ok), jobs.size());
  EXPECT_EQ(parallel.count(farm::JobStatus::ok), jobs.size());
  EXPECT_EQ(serial.stable_json(), parallel.stable_json());

  // Submission order is preserved regardless of which worker ran what.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(parallel.jobs[i].spec.machine, jobs[i].machine) << "job " << i;
    EXPECT_EQ(parallel.jobs[i].hash, farm::job_hash(jobs[i])) << "job " << i;
  }
}

// -- fault injection ----------------------------------------------------------

TEST(FarmFaults, ThrowingJobFailsWithoutFailingTheFarm) {
  std::vector<farm::JobSpec> jobs = {golden_spec("fig2")};
  farm::JobSpec thrower;
  thrower.machine = farm::kThrowJobKey;
  jobs.push_back(thrower);
  jobs.push_back(golden_spec("fig5"));

  const farm::FarmReport report = run_fresh(jobs, 2);
  ASSERT_EQ(report.jobs.size(), 3u);
  EXPECT_EQ(report.jobs[0].result.status, farm::JobStatus::ok);
  EXPECT_EQ(report.jobs[1].result.status, farm::JobStatus::failed);
  EXPECT_NE(report.jobs[1].result.error.find("injected"), std::string::npos)
      << report.jobs[1].result.error;
  EXPECT_EQ(report.jobs[2].result.status, farm::JobStatus::ok);
}

TEST(FarmFaults, HangingJobTimesOutWhileTheRestOfTheGridCompletes) {
  std::vector<farm::JobSpec> jobs;
  farm::JobSpec hang;
  hang.machine = farm::kHangJobKey;
  hang.timeout_ms = 200;
  jobs.push_back(hang);
  for (const std::string& key : machines::golden_machine_keys())
    jobs.push_back(golden_spec(key));

  const farm::FarmReport report = run_fresh(jobs, 2);
  ASSERT_EQ(report.jobs.size(), machines::golden_machine_keys().size() + 1);
  EXPECT_EQ(report.jobs[0].result.status, farm::JobStatus::timeout);
  EXPECT_NE(report.jobs[0].result.error.find("timed out"), std::string::npos)
      << report.jobs[0].result.error;
  for (std::size_t i = 1; i < report.jobs.size(); ++i)
    EXPECT_EQ(report.jobs[i].result.status, farm::JobStatus::ok)
        << report.jobs[i].spec.machine;
}

TEST(FarmFaults, UnknownMachineKeyFailsTheJobNotTheFarm) {
  const farm::FarmReport report =
      run_fresh({golden_spec("no_such_machine"), golden_spec("fig2")}, 2);
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_EQ(report.jobs[0].result.status, farm::JobStatus::failed);
  EXPECT_FALSE(report.jobs[0].result.error.empty());
  EXPECT_EQ(report.jobs[1].result.status, farm::JobStatus::ok);
}

// -- result cache -------------------------------------------------------------

TEST(FarmCache, RerunningTheSameGridDoesZeroSimulationWork) {
  const std::vector<farm::JobSpec> jobs = mixed_grid();
  farm::SimFarm sim_farm;
  const farm::FarmReport first = sim_farm.run(jobs);
  ASSERT_EQ(first.count(farm::JobStatus::ok), jobs.size());
  const std::uint64_t executed_after_first = sim_farm.executed();
  EXPECT_EQ(executed_after_first, jobs.size());
  EXPECT_EQ(sim_farm.cache_hits(), 0u);

  const farm::FarmReport second = sim_farm.run(jobs);
  EXPECT_EQ(sim_farm.executed(), executed_after_first);  // zero new work
  EXPECT_EQ(sim_farm.cache_hits(), jobs.size());
  for (const farm::JobRecord& job : second.jobs) {
    EXPECT_TRUE(job.result.cached) << job.spec.machine;
    EXPECT_EQ(job.result.status, farm::JobStatus::ok) << job.spec.machine;
  }
  EXPECT_EQ(first.stable_json(), second.stable_json());
}

TEST(FarmCache, FailedJobsAreNotCached) {
  farm::JobSpec thrower;
  thrower.machine = farm::kThrowJobKey;
  farm::SimFarm sim_farm;
  sim_farm.run({thrower});
  const farm::FarmReport again = sim_farm.run({thrower});
  ASSERT_EQ(again.jobs.size(), 1u);
  EXPECT_FALSE(again.jobs[0].result.cached);
  EXPECT_EQ(sim_farm.executed(), 2u);
  EXPECT_EQ(sim_farm.cache_hits(), 0u);
}

// Regression: two fuzz jobs differing only in cycle-budget truncation are
// different simulations and must never share a cache entry — before the
// budget was canonicalized into the job key, the truncated job could be
// served the cached full-run result.
TEST(FarmCache, CycleBudgetTruncationIsPartOfTheCacheIdentity) {
  const unsigned seed = 7;
  core::EngineOptions opts;
  opts.backend = core::Backend::compiled;
  const machines::GoldenRunResult full = machines::golden_run_fuzz(seed, opts);
  const std::uint64_t n = full.stats.cycles;
  ASSERT_GT(n, 1u);

  const farm::JobSpec full_spec = fuzz_spec(seed, 0);
  const farm::JobSpec cut_spec = fuzz_spec(seed, n / 2);
  EXPECT_NE(farm::job_hash(full_spec), farm::job_hash(cut_spec));

  farm::SimFarm sim_farm;
  const farm::FarmReport first = sim_farm.run({full_spec});
  ASSERT_EQ(first.jobs[0].result.status, farm::JobStatus::ok)
      << first.jobs[0].result.error;

  // The truncated job must actually execute (no stale hit on the full-run
  // entry) and must not reproduce the full run's result: halving the budget
  // wedges the drain loop at the cap.
  const farm::FarmReport second = sim_farm.run({cut_spec});
  EXPECT_FALSE(second.jobs[0].result.cached);
  EXPECT_EQ(sim_farm.cache_hits(), 0u);
  EXPECT_EQ(second.jobs[0].result.status, farm::JobStatus::failed);
  EXPECT_NE(second.jobs[0].result.error.find("did not drain"), std::string::npos)
      << second.jobs[0].result.error;
}

// The flip side of budget canonicalization: budget values the execution
// cannot distinguish map to one identity (and one cache entry).
TEST(FarmCache, EquivalentBudgetsShareOneCacheEntry) {
  // fuzz: budget 0 means "the default drain cap" — same simulation as
  // spelling the cap out.
  EXPECT_EQ(farm::job_hash(fuzz_spec(3, 0)),
            farm::job_hash(fuzz_spec(3, machines::kFuzzDrainCap)));
  // golden machines ignore budgets entirely.
  farm::JobSpec budgeted = golden_spec("fig5");
  budgeted.cycle_budget = 12345;
  EXPECT_EQ(farm::job_hash(budgeted), farm::job_hash(golden_spec("fig5")));

  farm::SimFarm sim_farm;
  const farm::FarmReport first = sim_farm.run({fuzz_spec(3, 0)});
  ASSERT_EQ(first.jobs[0].result.status, farm::JobStatus::ok)
      << first.jobs[0].result.error;
  const farm::FarmReport again = sim_farm.run({fuzz_spec(3, machines::kFuzzDrainCap)});
  EXPECT_TRUE(again.jobs[0].result.cached);
  EXPECT_EQ(sim_farm.cache_hits(), 1u);
}

// -- report JSON --------------------------------------------------------------

TEST(FarmReportJson, CarriesSchemaAndPerJobIdentity) {
  const farm::FarmReport report = run_fresh({golden_spec("fig2")}, 1);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("rcpn-farm-report/2"), std::string::npos);
  EXPECT_NE(json.find("\"machine\": \"fig2\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"digest\""), std::string::npos);
  // Timing-dependent blocks ride in to_json() only; the stable subset used
  // for N-vs-1-worker determinism comparison must not leak any of them.
  EXPECT_NE(json.find("\"telemetry\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait_ms_mean\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_ms_p95\""), std::string::npos);
  const std::string stable = report.stable_json();
  EXPECT_EQ(stable.find("wall_ms"), std::string::npos);
  EXPECT_EQ(stable.find("\"workers\""), std::string::npos);
  EXPECT_EQ(stable.find("\"cached\""), std::string::npos);
  EXPECT_EQ(stable.find("\"telemetry\""), std::string::npos);
}

// -- aggregate percentiles ----------------------------------------------------

namespace {

/// A hand-built ok record with a pinned wall time, for percentile pinning.
farm::JobRecord ok_record(double wall_ms, bool cached = false) {
  farm::JobRecord rec;
  rec.spec = golden_spec("fig2");
  rec.result.status = farm::JobStatus::ok;
  rec.result.cached = cached;
  rec.result.wall_seconds = wall_ms * 1e-3;
  return rec;
}

}  // namespace

TEST(FarmAggregate, EmptyReportHasZeroSamplesAndZeroPercentiles) {
  const farm::FarmReport report;
  const farm::FarmAggregate a = report.aggregate();
  EXPECT_EQ(a.jobs, 0u);
  EXPECT_EQ(a.wall_samples, 0u);
  EXPECT_EQ(a.wall_ms_p50, 0.0);
  EXPECT_EQ(a.wall_ms_p95, 0.0);
  EXPECT_EQ(a.wall_ms_max, 0.0);
}

TEST(FarmAggregate, FailedAndCachedJobsContributeNoWallSamples) {
  farm::FarmReport report;
  farm::JobRecord failed;
  failed.spec = golden_spec("fig2");
  failed.result.status = farm::JobStatus::failed;
  failed.result.wall_seconds = 5.0;  // failure latency is not simulation cost
  report.jobs.push_back(failed);
  farm::JobRecord timed_out = failed;
  timed_out.result.status = farm::JobStatus::timeout;
  report.jobs.push_back(timed_out);
  report.jobs.push_back(ok_record(7.0, /*cached=*/true));

  const farm::FarmAggregate a = report.aggregate();
  EXPECT_EQ(a.jobs, 3u);
  EXPECT_EQ(a.failed, 1u);
  EXPECT_EQ(a.timeout, 1u);
  EXPECT_EQ(a.cached, 1u);
  EXPECT_EQ(a.wall_samples, 0u);
  EXPECT_EQ(a.wall_ms_p50, 0.0);
  EXPECT_EQ(a.wall_ms_p95, 0.0);
  EXPECT_EQ(a.wall_ms_max, 0.0);
}

TEST(FarmAggregate, NearestRankPercentilesArePinned) {
  farm::FarmReport report;
  for (int ms = 10; ms >= 1; --ms)  // reverse order: aggregate() must sort
    report.jobs.push_back(ok_record(static_cast<double>(ms)));
  const farm::FarmAggregate a = report.aggregate();
  EXPECT_EQ(a.wall_samples, 10u);
  // Nearest-rank over sorted {1..10}: p50 -> index 5 (6ms), p95 -> index 9.
  EXPECT_DOUBLE_EQ(a.wall_ms_p50, 6.0);
  EXPECT_DOUBLE_EQ(a.wall_ms_p95, 10.0);
  EXPECT_DOUBLE_EQ(a.wall_ms_max, 10.0);
}

// -- telemetry ----------------------------------------------------------------

TEST(FarmTelemetry, CountsExecutionsStealsAndWorkerSlots) {
  const std::vector<farm::JobSpec> jobs = mixed_grid();
  const farm::FarmReport report = run_fresh(jobs, 3);
  const farm::FarmTelemetry& t = report.telemetry;
  EXPECT_EQ(t.executed + t.cache_hits, jobs.size());
  EXPECT_EQ(t.cache_hits, 0u);  // fresh farm, nothing cached
  EXPECT_EQ(t.timeouts, 0u);
  ASSERT_EQ(t.workers.size(), 3u);
  std::size_t per_worker_jobs = 0, per_worker_steals = 0;
  for (const farm::WorkerTelemetry& w : t.workers) {
    per_worker_jobs += w.jobs;
    per_worker_steals += w.steals;
    EXPECT_GE(w.busy_seconds, 0.0);
  }
  EXPECT_EQ(per_worker_jobs, t.executed);
  EXPECT_EQ(per_worker_steals, t.steals);
  EXPECT_GE(t.queue_wait_ms_max, t.queue_wait_ms_mean);
}

TEST(FarmTelemetry, CacheHitsAreCountedPerRun) {
  const std::vector<farm::JobSpec> jobs = mixed_grid();
  farm::SimFarm sim_farm;
  const farm::FarmReport first = sim_farm.run(jobs);
  EXPECT_EQ(first.telemetry.executed, jobs.size());
  EXPECT_EQ(first.telemetry.cache_hits, 0u);
  const farm::FarmReport second = sim_farm.run(jobs);
  EXPECT_EQ(second.telemetry.executed, 0u);
  EXPECT_EQ(second.telemetry.cache_hits, jobs.size());
}

// -- progress callback --------------------------------------------------------

TEST(FarmProgress, CallbackSeesEveryJobExactlyOnce) {
  const std::vector<farm::JobSpec> jobs = mixed_grid();
  std::vector<int> seen(jobs.size(), 0);
  std::atomic<std::size_t> calls{0};
  farm::FarmOptions fo;
  fo.workers = 4;
  fo.on_job_done = [&](std::size_t done, std::size_t total, std::size_t index,
                       const farm::JobResult&) {
    ASSERT_LT(index, seen.size());
    ++seen[index];
    EXPECT_LE(done, total);
    ++calls;
  };
  farm::SimFarm sim_farm(std::move(fo));
  sim_farm.run(jobs);
  EXPECT_EQ(calls.load(), jobs.size());
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], 1) << "job " << i;
}

// -- subprocess executor ------------------------------------------------------

namespace {
void noop_signal_handler(int) {}
}  // namespace

// Regression: the capture loop's blocking syscalls (poll/read, and the
// post-EOF waitpid — which by construction blocks until the exact moment the
// child's SIGCHLD arrives) must retry on EINTR. A no-SA_RESTART handler plus
// a 1ms interval timer keeps interrupting them; before the retry fix, a
// perfectly healthy child was reported as spawn_failed (waitpid EINTR) or
// with a truncated capture (read EINTR treated as EOF).
TEST(FarmSubprocess, CaptureSurvivesSignalInterruptions) {
  char tmpl[] = "/tmp/rcpn_eintr_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const std::string script = dir + "/gen_fs_eintrtest";
  {
    // A fake gen_fs_* binary: dribbles a valid golden trace (so reads happen
    // mid-run), closes stdout, then lingers so the parent sits in waitpid
    // while timer signals land.
    std::ofstream out(script);
    out << "#!/bin/sh\n"
           "printf '# eintrtest golden cycle-stamped retire trace: cycle pc(hex) seq\\n'\n"
           "i=0\n"
           "while [ $i -lt 40 ]; do\n"
           "  printf '%d 0 %d\\n' $((i+1)) $i\n"
           "  i=$((i+1))\n"
           "  if [ $((i % 10)) -eq 0 ]; then sleep 0.02; fi\n"
           "done\n"
           "printf '# stats cycles=50 retired=40 fetched=40 squashed=0 "
           "reservations=0 firings=80\\n'\n"
           "exec >&- 2>&-\n"
           "sleep 0.25\n";
  }
  ASSERT_EQ(::chmod(script.c_str(), 0755), 0);

  struct sigaction sa{}, old_alrm{}, old_chld{};
  sa.sa_handler = &noop_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  ASSERT_EQ(::sigaction(SIGALRM, &sa, &old_alrm), 0);
  ASSERT_EQ(::sigaction(SIGCHLD, &sa, &old_chld), 0);
  itimerval timer{};
  timer.it_interval.tv_usec = 1000;
  timer.it_value.tv_usec = 1000;
  itimerval old_timer{};
  ASSERT_EQ(::setitimer(ITIMER_REAL, &timer, &old_timer), 0);

  farm::SubprocessExecutor executor({dir, "gen_fs_"});
  farm::JobSpec spec;
  spec.machine = "eintrtest";
  spec.options.backend = core::Backend::generated;  // no extra CLI flags
  farm::CancelToken cancel;
  const farm::JobResult result = executor.execute(spec, 10000, cancel);

  ::setitimer(ITIMER_REAL, &old_timer, nullptr);
  ::sigaction(SIGALRM, &old_alrm, nullptr);
  ::sigaction(SIGCHLD, &old_chld, nullptr);
  std::remove(script.c_str());
  ::rmdir(dir.c_str());

  ASSERT_EQ(result.status, farm::JobStatus::ok) << result.error;
  EXPECT_EQ(result.retired, 40u);
  EXPECT_EQ(result.stats.cycles, 50u);
  EXPECT_EQ(result.exit_code, 0);
}

// Regression: a child killed mid-fprintf — its final trace line cut off
// without a newline — must degrade to a failed job carrying the output tail,
// and the rest of the grid must keep running. Before SubprocessExecutor's
// execute() was exception-contained, anything thrown past it would
// std::terminate the whole farm.
TEST(FarmSubprocess, ChildKilledMidLineFailsTheJobNotTheGrid) {
  char tmpl[] = "/tmp/rcpn_midkill_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const std::string script = dir + "/gen_fs_midkill";
  {
    // A fake gen_fs_* binary that dies by SIGKILL in the middle of writing a
    // trace line (no newline, no stats record).
    std::ofstream out(script);
    out << "#!/bin/sh\n"
           "printf '# midkill golden cycle-stamped retire trace: cycle pc(hex) seq\\n'\n"
           "printf '1 0 0\\n2 4 1\\n'\n"
           "printf '3 8 '\n"
           "kill -9 $$\n";
  }
  ASSERT_EQ(::chmod(script.c_str(), 0755), 0);

  farm::JobSpec victim;
  victim.machine = "midkill";
  victim.options.backend = core::Backend::generated;
  victim.executor = farm::ExecutorKind::subprocess;

  farm::FarmOptions fo;
  fo.workers = 2;
  fo.bin_dir = dir;
  farm::SimFarm sim_farm(std::move(fo));
  // The in-process fig2 job rides along: the farm must complete it normally
  // around the dying child.
  const farm::FarmReport report = sim_farm.run({victim, golden_spec("fig2")});

  std::remove(script.c_str());
  ::rmdir(dir.c_str());

  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_EQ(report.jobs[0].result.status, farm::JobStatus::failed);
  EXPECT_EQ(report.jobs[0].result.exit_code, 128 + SIGKILL);
  // The failure carries the tail of what the child managed to write,
  // including the torn final line.
  EXPECT_NE(report.jobs[0].result.error.find("3 8"), std::string::npos)
      << report.jobs[0].result.error;
  EXPECT_EQ(report.jobs[1].result.status, farm::JobStatus::ok)
      << report.jobs[1].result.error;
}

// -- resume-from-checkpoint jobs ----------------------------------------------

// A JobSpec with resume_checkpoint set runs the tail of the checkpointed run;
// the result (trace prefix + remainder) must carry the straight run's digest.
// The snapshot is written by the interpreted engine and resumed under the
// spec's compiled backend — backend is not checkpoint identity.
TEST(FarmResume, InProcessResumeMatchesStraightRunDigest) {
  const std::string path = "/tmp/rcpn_farm_resume_run.ckpt";
  {
    core::EngineOptions wo;
    wo.backend = core::Backend::interpreted;
    auto writer = machines::make_golden_session("fig5", wo);
    writer->advance(7);
    std::ofstream(path, std::ios::binary) << machines::write_checkpoint(*writer);
  }

  farm::JobSpec spec = golden_spec("fig5");
  spec.resume_checkpoint = path;
  farm::InProcessExecutor exec;
  farm::CancelToken cancel;
  const farm::JobResult r = exec.execute(spec, 30000, cancel);
  std::remove(path.c_str());

  ASSERT_EQ(r.status, farm::JobStatus::ok) << r.error;
  const machines::GoldenRunResult direct =
      machines::run_golden_machine_full("fig5", spec.options);
  EXPECT_EQ(r.digest, farm::trace_digest(direct.trace));
  EXPECT_EQ(r.retired, direct.trace.size());
  EXPECT_EQ(r.stats.cycles, direct.stats.cycles);
}

// The checkpoint's identity is its content (like .rcpn description jobs):
// editing the file must miss the cache, and a job without a checkpoint has
// no ckpt field at all.
TEST(FarmResume, CheckpointContentIsPartOfTheJobIdentity) {
  const std::string path = "/tmp/rcpn_farm_resume_key.ckpt";
  farm::JobSpec spec = golden_spec("fig5");
  spec.resume_checkpoint = path;

  std::ofstream(path) << "rcpn-ckpt/1\nA\n";
  const std::uint64_t h1 = farm::job_hash(spec);
  EXPECT_NE(farm::job_key(spec).find(";ckpt="), std::string::npos);
  std::ofstream(path) << "rcpn-ckpt/1\nB\n";
  EXPECT_NE(farm::job_hash(spec), h1);

  std::remove(path.c_str());
  EXPECT_NE(farm::job_key(spec).find("ckpt=missing"), std::string::npos);
  EXPECT_EQ(farm::job_key(golden_spec("fig5")).find(";ckpt="), std::string::npos);
}

TEST(FarmResume, UnreadableCheckpointFailsTheJobNotTheFarm) {
  farm::JobSpec spec = golden_spec("fig5");
  spec.resume_checkpoint = "/nonexistent/resume.ckpt";
  const farm::FarmReport report = run_fresh({spec}, 1);
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].result.status, farm::JobStatus::failed);
  EXPECT_NE(report.jobs[0].result.error.find("cannot read checkpoint"),
            std::string::npos)
      << report.jobs[0].result.error;
}

// The generic fuzz artifact CLI has no --restore; silently dropping the flag
// would run (and cache) the wrong simulation, so the subprocess executor
// refuses fuzz resume jobs loudly.
TEST(FarmResume, SubprocessFuzzResumeIsRefusedLoudly) {
  farm::JobSpec spec = fuzz_spec(3);
  spec.executor = farm::ExecutorKind::subprocess;
  spec.resume_checkpoint = "/tmp/whatever.ckpt";
  farm::SubprocessExecutor exec(farm::SubprocessExecutor::Config{"/nonexistent"});
  farm::CancelToken cancel;
  const farm::JobResult r = exec.execute(spec, 1000, cancel);
  EXPECT_EQ(r.status, farm::JobStatus::failed);
  EXPECT_NE(r.error.find("use in-process"), std::string::npos) << r.error;
}

// Described models have no session implementation yet: resuming one must be
// a loud failure, not a silent straight run.
TEST(FarmResume, DescriptionResumeIsRefused) {
  farm::JobSpec spec = golden_spec("/tmp/any_model.rcpn");
  spec.resume_checkpoint = "/tmp/whatever.ckpt";
  farm::InProcessExecutor exec;
  farm::CancelToken cancel;
  const farm::JobResult r = exec.execute(spec, 1000, cancel);
  EXPECT_EQ(r.status, farm::JobStatus::failed);
  EXPECT_NE(r.error.find("cannot resume"), std::string::npos) << r.error;
}

#ifdef RCPN_HAVE_FS_BINARIES

TEST(FarmSubprocess, FreestandingDigestsMatchInProcessForEveryMachine) {
  std::vector<farm::JobSpec> jobs;
  for (const std::string& key : machines::golden_machine_keys()) {
    jobs.push_back(golden_spec(key));  // in-process, compiled backend
    farm::JobSpec sub = golden_spec(key);
    sub.executor = farm::ExecutorKind::subprocess;
    sub.options.backend = core::Backend::generated;  // the stamped fast path
    jobs.push_back(sub);
  }

  farm::FarmOptions fo;
  fo.workers = 4;
  fo.bin_dir = RCPN_BIN_DIR;
  farm::SimFarm sim_farm(std::move(fo));
  const farm::FarmReport report = sim_farm.run(jobs);

  ASSERT_EQ(report.jobs.size(), jobs.size());
  for (std::size_t i = 0; i + 1 < report.jobs.size(); i += 2) {
    const farm::JobRecord& in_proc = report.jobs[i];
    const farm::JobRecord& sub = report.jobs[i + 1];
    ASSERT_EQ(in_proc.result.status, farm::JobStatus::ok)
        << in_proc.spec.machine << ": " << in_proc.result.error;
    ASSERT_EQ(sub.result.status, farm::JobStatus::ok)
        << sub.spec.machine << ": " << sub.result.error;
    EXPECT_EQ(sub.result.digest, in_proc.result.digest) << sub.spec.machine;
    EXPECT_EQ(sub.result.retired, in_proc.result.retired) << sub.spec.machine;
    EXPECT_EQ(sub.result.stats.cycles, in_proc.result.stats.cycles)
        << sub.spec.machine;
  }
}

// Golden resume jobs under the subprocess executor pass --restore to the
// freestanding binary; the checkpoint written by this linked build's
// interpreted engine restores in the child and the digest matches the
// straight run.
TEST(FarmResume, SubprocessGoldenResumeRestoresInTheFreestandingChild) {
  const std::string path = "/tmp/rcpn_farm_resume_sub.ckpt";
  {
    core::EngineOptions wo;
    wo.backend = core::Backend::interpreted;
    auto writer = machines::make_golden_session("fig5", wo);
    writer->advance(7);
    std::ofstream(path, std::ios::binary) << machines::write_checkpoint(*writer);
  }

  farm::JobSpec spec = golden_spec("fig5");
  spec.executor = farm::ExecutorKind::subprocess;
  spec.options.backend = core::Backend::generated;
  spec.resume_checkpoint = path;
  farm::FarmOptions fo;
  fo.bin_dir = RCPN_BIN_DIR;
  farm::SimFarm sim_farm(std::move(fo));
  const farm::FarmReport report = sim_farm.run({spec});
  std::remove(path.c_str());

  ASSERT_EQ(report.jobs.size(), 1u);
  ASSERT_EQ(report.jobs[0].result.status, farm::JobStatus::ok)
      << report.jobs[0].result.error;
  core::EngineOptions direct_opts;
  direct_opts.backend = core::Backend::compiled;
  const machines::GoldenRunResult direct =
      machines::run_golden_machine_full("fig5", direct_opts);
  EXPECT_EQ(report.jobs[0].result.digest, farm::trace_digest(direct.trace));
  EXPECT_EQ(report.jobs[0].result.retired, direct.trace.size());
}

TEST(FarmSubprocess, MissingBinaryFailsTheJobWithExitCode127) {
  farm::JobSpec spec = golden_spec("no_such_binary");
  spec.executor = farm::ExecutorKind::subprocess;
  spec.options.backend = core::Backend::generated;
  farm::FarmOptions fo;
  fo.bin_dir = RCPN_BIN_DIR;
  farm::SimFarm sim_farm(std::move(fo));
  const farm::FarmReport report = sim_farm.run({spec});
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].result.status, farm::JobStatus::failed);
  EXPECT_EQ(report.jobs[0].result.exit_code, 127);
}

#endif  // RCPN_HAVE_FS_BINARIES

// -- serialized model descriptions (.rcpn jobs) -------------------------------

#ifdef RCPN_MODELS_DIR
TEST(FarmDescription, RcpnJobRunsInProcessAndMatchesTheDirectRun) {
  const farm::JobSpec spec = golden_spec(std::string(RCPN_MODELS_DIR) + "/fig5.rcpn");
  farm::InProcessExecutor exec;
  farm::CancelToken cancel;
  const farm::JobResult r = exec.execute(spec, 30000, cancel);
  ASSERT_EQ(r.status, farm::JobStatus::ok) << r.error;
  const machines::GoldenRunResult direct =
      machines::run_golden_machine_full("fig5", spec.options);
  EXPECT_EQ(r.digest, farm::trace_digest(direct.trace));
  EXPECT_EQ(r.retired, direct.trace.size());
}

TEST(FarmDescription, JobKeyFoldsTheFileContentNotJustThePath) {
  const std::string path = "/tmp/rcpn_farm_desc_test.rcpn";
  const farm::JobSpec spec = golden_spec(path);

  std::ofstream(path) << "rcpn-model/1\nmodel A\n";
  const std::uint64_t h1 = farm::job_hash(spec);
  // Same path, different content: editing a description must miss the cache.
  std::ofstream(path) << "rcpn-model/1\nmodel B\n";
  const std::uint64_t h2 = farm::job_hash(spec);
  EXPECT_NE(h1, h2);

  std::remove(path.c_str());
  const std::uint64_t h3 = farm::job_hash(spec);
  EXPECT_NE(h3, h1);
  EXPECT_NE(h3, h2);
  EXPECT_NE(farm::job_key(spec).find("desc=missing"), std::string::npos);
}

TEST(FarmDescription, SubprocessExecutorRejectsDescriptionJobs) {
  const farm::JobSpec spec = golden_spec(std::string(RCPN_MODELS_DIR) + "/fig2.rcpn");
  farm::SubprocessExecutor exec(farm::SubprocessExecutor::Config{"/nonexistent"});
  farm::CancelToken cancel;
  const farm::JobResult r = exec.execute(spec, 1000, cancel);
  EXPECT_EQ(r.status, farm::JobStatus::failed);
  EXPECT_NE(r.error.find("in-process"), std::string::npos) << r.error;
}
#endif  // RCPN_MODELS_DIR
