// SimFarm: job identity hashing, scheduling-independent determinism, fault
// injection (throwing and hanging jobs), the result cache, and subprocess
// executor parity with in-process runs.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "farm/job.hpp"
#include "farm/sim_farm.hpp"
#include "machines/golden_runner.hpp"

using namespace rcpn;

namespace {

farm::JobSpec golden_spec(const std::string& machine, std::uint64_t seed = 0) {
  farm::JobSpec spec;
  spec.machine = machine;
  spec.options.backend = core::Backend::compiled;
  spec.seed = seed;
  return spec;
}

farm::JobSpec fuzz_spec(std::uint64_t seed, std::uint64_t budget = 4000) {
  farm::JobSpec spec;
  spec.machine = "fuzz";
  spec.options.backend = core::Backend::compiled;
  spec.seed = seed;
  spec.cycle_budget = budget;
  return spec;
}

/// The mixed in-process grid the determinism and cache tests share: every
/// golden machine plus two fuzz topologies, under two schedule variants.
std::vector<farm::JobSpec> mixed_grid() {
  std::vector<farm::JobSpec> jobs;
  for (const std::string& key : machines::golden_machine_keys()) {
    jobs.push_back(golden_spec(key));
    farm::JobSpec ablated = golden_spec(key, 1);
    ablated.options.force_two_list_all = true;
    jobs.push_back(ablated);
  }
  jobs.push_back(fuzz_spec(7));
  jobs.push_back(fuzz_spec(11));
  return jobs;
}

farm::FarmReport run_fresh(const std::vector<farm::JobSpec>& jobs, unsigned workers,
                           std::uint64_t timeout_ms = 30000) {
  farm::FarmOptions fo;
  fo.workers = workers;
  fo.default_timeout_ms = timeout_ms;
  farm::SimFarm sim_farm(std::move(fo));
  return sim_farm.run(jobs);
}

}  // namespace

// -- job identity -------------------------------------------------------------

TEST(FarmJob, KeyCoversIdentityFieldsOnly) {
  const farm::JobSpec base = golden_spec("fig2");
  const std::uint64_t h = farm::job_hash(base);

  // timeout_ms is a runtime knob, not identity: same hash.
  farm::JobSpec timed = base;
  timed.timeout_ms = 1234;
  EXPECT_EQ(farm::job_hash(timed), h);

  // Every identity field changes the hash.
  farm::JobSpec other = base;
  other.machine = "fig5";
  EXPECT_NE(farm::job_hash(other), h);
  other = base;
  other.seed = 1;
  EXPECT_NE(farm::job_hash(other), h);
  other = base;
  other.executor = farm::ExecutorKind::subprocess;
  EXPECT_NE(farm::job_hash(other), h);
  other = base;
  other.options.backend = core::Backend::interpreted;
  EXPECT_NE(farm::job_hash(other), h);
  other = base;
  other.options.force_two_list_all = true;
  EXPECT_NE(farm::job_hash(other), h);
  other = base;
  other.cycle_budget = 999;
  EXPECT_NE(farm::job_hash(other), h);
  other = base;
  other.options.deadlock_limit = 5;
  EXPECT_NE(farm::job_hash(other), h);
}

TEST(FarmJob, KeyIsStableAcrossCalls) {
  const farm::JobSpec spec = fuzz_spec(42);
  EXPECT_EQ(farm::job_key(spec), farm::job_key(spec));
  EXPECT_EQ(farm::job_hash(spec), farm::job_hash(spec));
  EXPECT_NE(farm::job_key(spec).find("machine=fuzz"), std::string::npos);
  EXPECT_NE(farm::job_key(spec).find("seed=42"), std::string::npos);
}

// -- determinism --------------------------------------------------------------

TEST(FarmDeterminism, OneWorkerAndFourWorkersProduceIdenticalStableReports) {
  const std::vector<farm::JobSpec> jobs = mixed_grid();
  const farm::FarmReport serial = run_fresh(jobs, 1);
  const farm::FarmReport parallel = run_fresh(jobs, 4);

  ASSERT_EQ(serial.jobs.size(), jobs.size());
  EXPECT_EQ(serial.count(farm::JobStatus::ok), jobs.size());
  EXPECT_EQ(parallel.count(farm::JobStatus::ok), jobs.size());
  EXPECT_EQ(serial.stable_json(), parallel.stable_json());

  // Submission order is preserved regardless of which worker ran what.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(parallel.jobs[i].spec.machine, jobs[i].machine) << "job " << i;
    EXPECT_EQ(parallel.jobs[i].hash, farm::job_hash(jobs[i])) << "job " << i;
  }
}

// -- fault injection ----------------------------------------------------------

TEST(FarmFaults, ThrowingJobFailsWithoutFailingTheFarm) {
  std::vector<farm::JobSpec> jobs = {golden_spec("fig2")};
  farm::JobSpec thrower;
  thrower.machine = farm::kThrowJobKey;
  jobs.push_back(thrower);
  jobs.push_back(golden_spec("fig5"));

  const farm::FarmReport report = run_fresh(jobs, 2);
  ASSERT_EQ(report.jobs.size(), 3u);
  EXPECT_EQ(report.jobs[0].result.status, farm::JobStatus::ok);
  EXPECT_EQ(report.jobs[1].result.status, farm::JobStatus::failed);
  EXPECT_NE(report.jobs[1].result.error.find("injected"), std::string::npos)
      << report.jobs[1].result.error;
  EXPECT_EQ(report.jobs[2].result.status, farm::JobStatus::ok);
}

TEST(FarmFaults, HangingJobTimesOutWhileTheRestOfTheGridCompletes) {
  std::vector<farm::JobSpec> jobs;
  farm::JobSpec hang;
  hang.machine = farm::kHangJobKey;
  hang.timeout_ms = 200;
  jobs.push_back(hang);
  for (const std::string& key : machines::golden_machine_keys())
    jobs.push_back(golden_spec(key));

  const farm::FarmReport report = run_fresh(jobs, 2);
  ASSERT_EQ(report.jobs.size(), 6u);
  EXPECT_EQ(report.jobs[0].result.status, farm::JobStatus::timeout);
  EXPECT_NE(report.jobs[0].result.error.find("timed out"), std::string::npos)
      << report.jobs[0].result.error;
  for (std::size_t i = 1; i < report.jobs.size(); ++i)
    EXPECT_EQ(report.jobs[i].result.status, farm::JobStatus::ok)
        << report.jobs[i].spec.machine;
}

TEST(FarmFaults, UnknownMachineKeyFailsTheJobNotTheFarm) {
  const farm::FarmReport report =
      run_fresh({golden_spec("no_such_machine"), golden_spec("fig2")}, 2);
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_EQ(report.jobs[0].result.status, farm::JobStatus::failed);
  EXPECT_FALSE(report.jobs[0].result.error.empty());
  EXPECT_EQ(report.jobs[1].result.status, farm::JobStatus::ok);
}

// -- result cache -------------------------------------------------------------

TEST(FarmCache, RerunningTheSameGridDoesZeroSimulationWork) {
  const std::vector<farm::JobSpec> jobs = mixed_grid();
  farm::SimFarm sim_farm;
  const farm::FarmReport first = sim_farm.run(jobs);
  ASSERT_EQ(first.count(farm::JobStatus::ok), jobs.size());
  const std::uint64_t executed_after_first = sim_farm.executed();
  EXPECT_EQ(executed_after_first, jobs.size());
  EXPECT_EQ(sim_farm.cache_hits(), 0u);

  const farm::FarmReport second = sim_farm.run(jobs);
  EXPECT_EQ(sim_farm.executed(), executed_after_first);  // zero new work
  EXPECT_EQ(sim_farm.cache_hits(), jobs.size());
  for (const farm::JobRecord& job : second.jobs) {
    EXPECT_TRUE(job.result.cached) << job.spec.machine;
    EXPECT_EQ(job.result.status, farm::JobStatus::ok) << job.spec.machine;
  }
  EXPECT_EQ(first.stable_json(), second.stable_json());
}

TEST(FarmCache, FailedJobsAreNotCached) {
  farm::JobSpec thrower;
  thrower.machine = farm::kThrowJobKey;
  farm::SimFarm sim_farm;
  sim_farm.run({thrower});
  const farm::FarmReport again = sim_farm.run({thrower});
  ASSERT_EQ(again.jobs.size(), 1u);
  EXPECT_FALSE(again.jobs[0].result.cached);
  EXPECT_EQ(sim_farm.executed(), 2u);
  EXPECT_EQ(sim_farm.cache_hits(), 0u);
}

// -- report JSON --------------------------------------------------------------

TEST(FarmReportJson, CarriesSchemaAndPerJobIdentity) {
  const farm::FarmReport report = run_fresh({golden_spec("fig2")}, 1);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("rcpn-farm-report/1"), std::string::npos);
  EXPECT_NE(json.find("\"machine\": \"fig2\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"digest\""), std::string::npos);
  // The stable subset must not leak timing fields.
  const std::string stable = report.stable_json();
  EXPECT_EQ(stable.find("wall_ms"), std::string::npos);
  EXPECT_EQ(stable.find("\"workers\""), std::string::npos);
  EXPECT_EQ(stable.find("\"cached\""), std::string::npos);
}

// -- progress callback --------------------------------------------------------

TEST(FarmProgress, CallbackSeesEveryJobExactlyOnce) {
  const std::vector<farm::JobSpec> jobs = mixed_grid();
  std::vector<int> seen(jobs.size(), 0);
  std::atomic<std::size_t> calls{0};
  farm::FarmOptions fo;
  fo.workers = 4;
  fo.on_job_done = [&](std::size_t done, std::size_t total, std::size_t index,
                       const farm::JobResult&) {
    ASSERT_LT(index, seen.size());
    ++seen[index];
    EXPECT_LE(done, total);
    ++calls;
  };
  farm::SimFarm sim_farm(std::move(fo));
  sim_farm.run(jobs);
  EXPECT_EQ(calls.load(), jobs.size());
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], 1) << "job " << i;
}

// -- subprocess executor ------------------------------------------------------

#ifdef RCPN_HAVE_FS_BINARIES

TEST(FarmSubprocess, FreestandingDigestsMatchInProcessForEveryMachine) {
  std::vector<farm::JobSpec> jobs;
  for (const std::string& key : machines::golden_machine_keys()) {
    jobs.push_back(golden_spec(key));  // in-process, compiled backend
    farm::JobSpec sub = golden_spec(key);
    sub.executor = farm::ExecutorKind::subprocess;
    sub.options.backend = core::Backend::generated;  // the stamped fast path
    jobs.push_back(sub);
  }

  farm::FarmOptions fo;
  fo.workers = 4;
  fo.bin_dir = RCPN_BIN_DIR;
  farm::SimFarm sim_farm(std::move(fo));
  const farm::FarmReport report = sim_farm.run(jobs);

  ASSERT_EQ(report.jobs.size(), jobs.size());
  for (std::size_t i = 0; i + 1 < report.jobs.size(); i += 2) {
    const farm::JobRecord& in_proc = report.jobs[i];
    const farm::JobRecord& sub = report.jobs[i + 1];
    ASSERT_EQ(in_proc.result.status, farm::JobStatus::ok)
        << in_proc.spec.machine << ": " << in_proc.result.error;
    ASSERT_EQ(sub.result.status, farm::JobStatus::ok)
        << sub.spec.machine << ": " << sub.result.error;
    EXPECT_EQ(sub.result.digest, in_proc.result.digest) << sub.spec.machine;
    EXPECT_EQ(sub.result.retired, in_proc.result.retired) << sub.spec.machine;
    EXPECT_EQ(sub.result.stats.cycles, in_proc.result.stats.cycles)
        << sub.spec.machine;
  }
}

TEST(FarmSubprocess, MissingBinaryFailsTheJobWithExitCode127) {
  farm::JobSpec spec = golden_spec("no_such_binary");
  spec.executor = farm::ExecutorKind::subprocess;
  spec.options.backend = core::Backend::generated;
  farm::FarmOptions fo;
  fo.bin_dir = RCPN_BIN_DIR;
  farm::SimFarm sim_farm(std::move(fo));
  const farm::FarmReport report = sim_farm.run({spec});
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].result.status, farm::JobStatus::failed);
  EXPECT_EQ(report.jobs[0].result.exit_code, 127);
}

#endif  // RCPN_HAVE_FS_BINARIES
