// Baseline (SimpleScalar-style) simulator tests: architectural equality with
// the functional ISS, plausible timing behaviour, and structural-limit
// handling (IFQ/RUU/LSQ).
#include <gtest/gtest.h>

#include "arm/assembler.hpp"
#include "baseline/functional_iss.hpp"
#include "baseline/simplescalar_sim.hpp"
#include "workloads/workloads.hpp"

namespace rcpn::baseline {
namespace {

struct Ref {
  mem::Memory mem;
  sys::SyscallHandler sys;
  std::uint64_t instret = 0;
  std::array<std::uint32_t, 16> regs{};

  explicit Ref(const sys::Program& prog) {
    FunctionalIss iss(mem, sys);
    iss.reset(prog);
    iss.run(100'000'000ull);
    instret = iss.instret();
    for (unsigned i = 0; i < 16; ++i) regs[i] = iss.reg(i);
  }
};

void expect_match(const sys::Program& prog, const char* what) {
  Ref ref(prog);
  SimpleScalarSim sim;
  const auto r = sim.run(prog, 500'000'000ull);
  EXPECT_TRUE(r.exited) << what;
  EXPECT_EQ(r.output, ref.sys.output()) << what;
  EXPECT_EQ(r.exit_code, ref.sys.exit_code()) << what;
  for (unsigned i = 0; i <= 14; ++i)
    EXPECT_EQ(sim.reg(i), ref.regs[i]) << what << " r" << i;
  EXPECT_EQ(r.instructions, ref.instret) << what;
}

TEST(SimpleScalarSimTest, ArithmeticMatchesIss) {
  expect_match(arm::assemble(R"(
        mov r0, #10
        add r1, r0, #5
        subs r2, r1, #15
        moveq r3, #1
        swi 0
)").program,
               "arith");
}

TEST(SimpleScalarSimTest, CallLoopMatchesIss) {
  expect_match(arm::assemble(R"(
        ldr sp, =0xF0000
        mov r5, #5
        mov r6, #0
loop:   mov r0, r5
        bl square
        add r6, r6, r0
        subs r5, r5, #1
        bne loop
        mov r0, r6
        swi 2
        swi 5
        mov r0, #0
        swi 0
square: mul r1, r0, r0
        mov r0, r1
        mov pc, lr
)").program,
               "callloop");
}

class BaselineWorkloads : public ::testing::TestWithParam<const char*> {};

TEST_P(BaselineWorkloads, MatchesIss) {
  const workloads::Workload* w = workloads::find(GetParam());
  ASSERT_NE(w, nullptr);
  expect_match(workloads::build(*w, w->test_scale), w->name.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllSix, BaselineWorkloads,
                         ::testing::Values("adpcm", "blowfish", "compress", "crc",
                                           "g721", "go"));

TEST(SimpleScalarSimTest, CpiIsInPlausibleStrongArmRange) {
  const workloads::Workload* w = workloads::find("crc");
  SimpleScalarSim sim;
  const auto r = sim.run(workloads::build(*w, w->test_scale));
  // Paper Fig 11: SimpleScalar-Arm CPIs sit between ~1.5 and ~2.5.
  EXPECT_GT(r.cpi, 1.0);
  EXPECT_LT(r.cpi, 4.0);
}

TEST(SimpleScalarSimTest, TakenBranchesChargePenalty) {
  // A tight taken-branch loop must cost more than straight-line equivalents.
  const auto loop = arm::assemble(R"(
        mov r0, #200
l:      subs r0, r0, #1
        bne l
        swi 0
)").program;
  const auto straight = arm::assemble(R"(
        mov r0, #200
        mov r1, #200
s:      subs r0, r0, #1
        subs r1, r1, #1
        bne s
        swi 0
)").program;
  SimpleScalarSim a, b;
  const auto ra = a.run(loop);
  const auto rb = b.run(straight);
  // Same dominant loop count, but `loop` takes a branch every 2 instructions
  // vs every 3 — its CPI must be strictly worse.
  EXPECT_GT(ra.cpi, rb.cpi);
  EXPECT_GT(ra.mispredicts, 100u);
}

TEST(SimpleScalarSimTest, CacheMissesSlowExecution) {
  SimpleScalarConfig cold;
  cold.mem.dcache.size_bytes = 256;  // thrash
  cold.mem.dcache.assoc = 1;
  SimpleScalarConfig warm;
  const auto prog = workloads::build(*workloads::find("compress"), 1);
  SimpleScalarSim a(cold), b(warm);
  const auto ra = a.run(prog);
  const auto rb = b.run(prog);
  EXPECT_GT(ra.dcache_misses, rb.dcache_misses);
  EXPECT_GT(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.output, rb.output);  // timing config never changes results
}

TEST(SimpleScalarSimTest, DeterministicTiming) {
  const auto prog = workloads::build(*workloads::find("go"), 2);
  SimpleScalarSim a, b;
  const auto ra = a.run(prog);
  const auto rb = b.run(prog);
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.instructions, rb.instructions);
  EXPECT_EQ(ra.output, rb.output);
}

TEST(SimpleScalarSimTest, TinyRuuStillCorrectJustSlower) {
  SimpleScalarConfig tiny;
  tiny.ruu_size = 2;
  tiny.ifq_size = 1;
  tiny.lsq_size = 1;
  const auto prog = workloads::build(*workloads::find("crc"), 1);
  SimpleScalarSim small(tiny), normal;
  const auto rs = small.run(prog);
  const auto rn = normal.run(prog);
  EXPECT_EQ(rs.output, rn.output);
  EXPECT_GE(rs.cycles, rn.cycles);
}

}  // namespace
}  // namespace rcpn::baseline
