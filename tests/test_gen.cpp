// The compiled backend's contract: gen::CompiledEngine is cycle-for-cycle
// equivalent to the interpreted core::Engine on every machine model — same
// clock, same retire order (cycle-stamped), same statistics down to
// per-transition firing and per-place stall counts. Plus the lowering pass
// invariants (flat Fig 6 runs match the engine's candidate lists) and the
// emit_cpp / emit_dot exporters.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gen/compiled_engine.hpp"
#include "gen/emit.hpp"
#include "machines/fig5_processor.hpp"
#include "machines/simple_pipeline.hpp"
#include "machines/strongarm.hpp"
#include "machines/tomasulo.hpp"
#include "machines/xscale.hpp"
#include "workloads/workloads.hpp"

namespace rcpn {
namespace {

core::EngineOptions compiled_opts() {
  core::EngineOptions o;
  o.backend = core::Backend::compiled;
  return o;
}

struct RetireEvent {
  core::Cycle cycle = 0;
  std::uint64_t pc = 0;
  std::uint32_t seq = 0;
  bool operator==(const RetireEvent&) const = default;
};

/// Record every retirement with the cycle it happened in: equal traces mean
/// the two engines agree not just on totals but on *when* and in which order
/// every instruction left the pipeline.
void record_retires(core::Engine& eng, std::vector<RetireEvent>& out) {
  out.clear();
  eng.hooks().on_retire = [&eng, &out](core::InstructionToken* t) {
    out.push_back(RetireEvent{eng.clock(), t->pc, t->seq});
  };
}

void expect_stats_equal(const core::Stats& interp, const core::Stats& comp) {
  EXPECT_EQ(interp.cycles, comp.cycles);
  EXPECT_EQ(interp.retired, comp.retired);
  EXPECT_EQ(interp.fetched, comp.fetched);
  EXPECT_EQ(interp.squashed, comp.squashed);
  EXPECT_EQ(interp.reservations, comp.reservations);
  EXPECT_EQ(interp.firings, comp.firings);
  EXPECT_EQ(interp.transition_fires, comp.transition_fires);
  EXPECT_EQ(interp.place_stalls, comp.place_stalls);
  EXPECT_EQ(interp.place_stall_causes, comp.place_stall_causes);
}

// ---------------------------------------------------------------------------
// Lockstep equivalence on all five machine models
// ---------------------------------------------------------------------------

TEST(CompiledLockstep, Fig2PipelineStepwise) {
  machines::SimplePipeline interp(500);
  machines::SimplePipeline comp(500, compiled_opts());
  ASSERT_NE(dynamic_cast<gen::CompiledEngine*>(&comp.engine()), nullptr);
  ASSERT_EQ(dynamic_cast<gen::CompiledEngine*>(&interp.engine()), nullptr);

  // Step the two engines side by side and compare after every single cycle.
  for (int cycle = 0; cycle < 1200; ++cycle) {
    interp.engine().step();
    comp.engine().step();
    ASSERT_EQ(interp.engine().clock(), comp.engine().clock());
    ASSERT_EQ(interp.engine().tokens_in_flight(), comp.engine().tokens_in_flight());
    ASSERT_EQ(interp.engine().stats().retired, comp.engine().stats().retired);
    ASSERT_EQ(interp.engine().stats().firings, comp.engine().stats().firings);
  }
  EXPECT_EQ(comp.engine().stats().retired, 500u);
  expect_stats_equal(interp.engine().stats(), comp.engine().stats());
}

TEST(CompiledLockstep, Fig5Processor) {
  using I = machines::Fig5Instr;
  const std::vector<I> prog = {
      I::alui(I::AluOp::add, 1, 0, 7),
      I::alui(I::AluOp::add, 2, 1, 1),   // RAW: exercises the L3 feedback path
      I::store(2, 0x100),
      I::load(3, 0x100),
      I::branch(2),
      I::alui(I::AluOp::add, 4, 0, 99),  // squashed by the branch
      I::alu(I::AluOp::mul, 5, 2, 3),
  };
  machines::Fig5Processor interp;
  machines::Fig5Processor comp(compiled_opts());
  std::vector<RetireEvent> ti, tc;
  record_retires(interp.engine(), ti);
  record_retires(comp.engine(), tc);

  interp.load(prog);
  comp.load(prog);
  interp.run();
  comp.run();

  EXPECT_EQ(ti, tc);
  expect_stats_equal(interp.engine().stats(), comp.engine().stats());
  for (unsigned r = 0; r < machines::Fig5Processor::kNumRegs; ++r)
    EXPECT_EQ(interp.reg(r), comp.reg(r)) << "r" << r;
  EXPECT_EQ(interp.alu_issues_forwarded(), comp.alu_issues_forwarded());
  EXPECT_EQ(interp.alu_issues_direct(), comp.alu_issues_direct());
}

TEST(CompiledLockstep, TomasuloOutOfOrderCore) {
  using I = machines::Fig5Instr;
  const std::vector<I> prog = {
      I::alui(I::AluOp::add, 1, 0, 3),
      I::alu(I::AluOp::mul, 2, 1, 1),   // dependent chain
      I::alu(I::AluOp::mul, 3, 2, 2),
      I::alui(I::AluOp::add, 4, 0, 5),  // independent — issues out of order
      I::alui(I::AluOp::add, 5, 4, 1),
      I::alu(I::AluOp::xor_op, 6, 3, 5),
  };
  machines::TomasuloCore interp;
  machines::TomasuloCore comp(4, 2, compiled_opts());
  std::vector<RetireEvent> ti, tc;
  record_retires(interp.engine(), ti);
  record_retires(comp.engine(), tc);

  interp.load(prog);
  comp.load(prog);
  interp.run();
  comp.run();

  EXPECT_EQ(ti, tc);
  expect_stats_equal(interp.engine().stats(), comp.engine().stats());
  for (unsigned r = 0; r < machines::TomasuloCore::kNumRegs; ++r)
    EXPECT_EQ(interp.reg(r), comp.reg(r)) << "r" << r;
  EXPECT_EQ(interp.observed_ooo_issue(), comp.observed_ooo_issue());
}

TEST(CompiledLockstep, StrongArmFullProgram) {
  const workloads::Workload* w = workloads::find("crc");
  ASSERT_NE(w, nullptr);
  const sys::Program prog = workloads::build(*w, w->test_scale);

  machines::StrongArmSim interp;
  machines::StrongArmConfig ccfg;
  ccfg.engine.backend = core::Backend::compiled;
  machines::StrongArmSim comp(ccfg);
  std::vector<RetireEvent> ti, tc;
  record_retires(interp.engine(), ti);
  record_retires(comp.engine(), tc);

  const machines::RunResult ri = interp.run(prog);
  const machines::RunResult rc = comp.run(prog);

  EXPECT_EQ(ri.cycles, rc.cycles);
  EXPECT_EQ(ri.instructions, rc.instructions);
  EXPECT_EQ(ri.output, rc.output);
  EXPECT_EQ(ri.exit_code, rc.exit_code);
  EXPECT_EQ(ri.icache_misses, rc.icache_misses);
  EXPECT_EQ(ri.dcache_misses, rc.dcache_misses);
  EXPECT_EQ(ti, tc);
  expect_stats_equal(interp.engine().stats(), comp.engine().stats());
}

TEST(CompiledLockstep, XScaleFullProgram) {
  const workloads::Workload* w = workloads::find("g721");
  ASSERT_NE(w, nullptr);
  const sys::Program prog = workloads::build(*w, w->test_scale);

  machines::XScaleSim interp;
  machines::XScaleConfig ccfg;
  ccfg.engine.backend = core::Backend::compiled;
  machines::XScaleSim comp(ccfg);
  std::vector<RetireEvent> ti, tc;
  record_retires(interp.engine(), ti);
  record_retires(comp.engine(), tc);

  const machines::RunResult ri = interp.run(prog);
  const machines::RunResult rc = comp.run(prog);

  EXPECT_EQ(ri.cycles, rc.cycles);
  EXPECT_EQ(ri.instructions, rc.instructions);
  EXPECT_EQ(ri.output, rc.output);
  EXPECT_EQ(ri.mispredicts, rc.mispredicts);
  EXPECT_EQ(ti, tc);
  expect_stats_equal(interp.engine().stats(), comp.engine().stats());
}

// ---------------------------------------------------------------------------
// Lowering-pass invariants
// ---------------------------------------------------------------------------

TEST(CompiledModelLowering, Fig6RunsMatchInterpretedCandidates) {
  machines::Fig5Processor comp(compiled_opts());
  auto* ce = dynamic_cast<gen::CompiledEngine*>(&comp.engine());
  ASSERT_NE(ce, nullptr);
  const gen::CompiledModel& cm = ce->compiled();
  const core::Net& net = comp.net();

  ASSERT_EQ(cm.num_places, net.num_places());
  ASSERT_EQ(cm.num_types, net.num_types());
  for (unsigned p = 0; p < cm.num_places; ++p) {
    for (unsigned ty = 0; ty < cm.num_types; ++ty) {
      const auto& interp_cands =
          ce->candidates(static_cast<core::PlaceId>(p), static_cast<core::TypeId>(ty));
      const gen::CandRange& r =
          cm.candidates(static_cast<core::PlaceId>(p), static_cast<core::TypeId>(ty));
      ASSERT_EQ(interp_cands.size(), r.count);
      for (unsigned i = 0; i < r.count; ++i)
        EXPECT_EQ(interp_cands[i]->id(), cm.body[r.begin + i].id)
            << "cell (" << p << ", " << ty << ") slot " << i;
    }
  }
  // Every sub-net transition appears exactly once in the body table.
  std::vector<unsigned> seen(net.num_transitions(), 0);
  for (const gen::CompiledTransition& ct : cm.body) ++seen[static_cast<unsigned>(ct.id)];
  for (const gen::CompiledTransition& ct : cm.independent)
    ++seen[static_cast<unsigned>(ct.id)];
  for (unsigned t = 0; t < net.num_transitions(); ++t) EXPECT_EQ(seen[t], 1u) << "t" << t;

  // Process order and two-list set mirror the engine's build products.
  EXPECT_EQ(cm.order, ce->process_order());
  for (core::StageId s : cm.two_list_stages) EXPECT_TRUE(ce->stage_is_two_list(s));
}

TEST(CompiledModelLowering, SimpleShapePrecomputed) {
  machines::SimplePipeline comp(1, compiled_opts());
  auto* ce = dynamic_cast<gen::CompiledEngine*>(&comp.engine());
  ASSERT_NE(ce, nullptr);
  // U2/U3/U4 are plain latch-to-latch moves; the lowering must take the
  // fast-path flag and pre-resolve the destination stage.
  for (const gen::CompiledTransition& ct : ce->compiled().body) {
    EXPECT_TRUE(ct.simple);
    ASSERT_NE(ct.move_stage, nullptr);
    EXPECT_EQ(ct.move_stage, &comp.net().stage_of(ct.move_place));
  }
}

TEST(CompiledModelLowering, PoolSizingAndPreResolvedStages) {
  machines::Fig5Processor comp(compiled_opts());
  auto* ce = dynamic_cast<gen::CompiledEngine*>(&comp.engine());
  ASSERT_NE(ce, nullptr);
  const gen::CompiledModel& cm = ce->compiled();
  const core::Net& net = comp.net();

  // SoA pool sizing: bounded stages reserve exactly their capacity (they can
  // never hold more), unlimited stages a non-zero batch; the arena hints
  // cover every bounded slot.
  ASSERT_EQ(cm.stage_reserve.size(), net.num_stages());
  std::uint64_t bounded = 0;
  for (unsigned s = 0; s < net.num_stages(); ++s) {
    const core::PipelineStage& st = net.stage(static_cast<core::StageId>(s));
    if (st.unlimited()) {
      EXPECT_GT(cm.stage_reserve[s], 0u) << "stage " << s;
    } else {
      EXPECT_EQ(cm.stage_reserve[s], st.capacity()) << "stage " << s;
      bounded += st.capacity();
    }
  }
  EXPECT_EQ(cm.instr_pool_hint, bounded);
  EXPECT_EQ(cm.res_pool_hint, bounded);

  // Pre-resolved stage pointers agree with the net's id mapping everywhere.
  ASSERT_EQ(cm.order_stage.size(), cm.order.size());
  for (std::size_t i = 0; i < cm.order.size(); ++i)
    EXPECT_EQ(cm.order_stage[i], &net.stage_of(cm.order[i])) << "order slot " << i;
  ASSERT_EQ(cm.two_list_stage_ptrs.size(), cm.two_list_stages.size());
  for (std::size_t i = 0; i < cm.two_list_stages.size(); ++i)
    EXPECT_EQ(cm.two_list_stage_ptrs[i], &net.stage(cm.two_list_stages[i]));
  for (const gen::CompiledOutArc& a : cm.out_arcs)
    EXPECT_EQ(a.stage, &net.stage_of(a.place));
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(Exporters, EmitCppContainsScheduleTables) {
  machines::StrongArmConfig ccfg;
  ccfg.engine.backend = core::Backend::compiled;
  machines::StrongArmSim sim(ccfg);
  auto* ce = dynamic_cast<gen::CompiledEngine*>(&sim.engine());
  ASSERT_NE(ce, nullptr);

  const std::string src = gen::emit_cpp(ce->compiled(), sim.net());
  EXPECT_NE(src.find("namespace rcpn_gen::StrongArm"), std::string::npos);
  EXPECT_NE(src.find("kProcessOrder"), std::string::npos);
  EXPECT_NE(src.find("kTwoListStages"), std::string::npos);
  EXPECT_NE(src.find("kCell["), std::string::npos);
  EXPECT_NE(src.find("kBody["), std::string::npos);
  EXPECT_NE(src.find("kStageReserve"), std::string::npos);
  EXPECT_NE(src.find("kInstrPoolHint"), std::string::npos);
  // Names travel along as comments.
  EXPECT_NE(src.find("FD"), std::string::npos);
  EXPECT_NE(src.find("constexpr"), std::string::npos);
}

TEST(Exporters, EmitDotDescribesTheNet) {
  machines::SimplePipeline pipe(1);
  const std::string dot = gen::emit_dot(pipe.net());
  EXPECT_NE(dot.find("digraph \"Fig2\""), std::string::npos);
  EXPECT_NE(dot.find("U2"), std::string::npos);
  EXPECT_NE(dot.find("cluster_s"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // virtual end place
  EXPECT_NE(dot.find("(independent)"), std::string::npos);  // the U1 generator
  // Balanced braces, roughly: it must at least close what it opens.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

}  // namespace
}  // namespace rcpn
