// Functional ISS tests: small assembled programs with known architectural
// outcomes — ALU/flag behaviour, control flow, memory, LDM/STM, subroutine
// linkage and syscalls.
#include <gtest/gtest.h>

#include "arm/assembler.hpp"
#include "baseline/functional_iss.hpp"

namespace rcpn::baseline {
namespace {

struct IssRun {
  mem::Memory mem;
  sys::SyscallHandler sys;
  std::unique_ptr<FunctionalIss> iss;

  explicit IssRun(const std::string& src, std::uint64_t max = 100000) {
    const auto r = arm::assemble(src);
    iss = std::make_unique<FunctionalIss>(mem, sys);
    iss->reset(r.program);
    iss->run(max);
  }
};

TEST(Iss, ArithmeticChain) {
  IssRun r(R"(
        mov r0, #10
        add r1, r0, #5
        sub r2, r1, #3
        rsb r3, r2, #100
        swi 0
)");
  EXPECT_EQ(r.iss->reg(1), 15u);
  EXPECT_EQ(r.iss->reg(2), 12u);
  EXPECT_EQ(r.iss->reg(3), 88u);
  EXPECT_TRUE(r.iss->exited());
}

TEST(Iss, FlagsAndConditionalExecution) {
  IssRun r(R"(
        mov r0, #5
        subs r1, r0, #5      ; Z set
        moveq r2, #1
        movne r3, #1
        subs r4, r0, #6      ; negative -> N, no carry (borrow)
        movmi r5, #1
        movcc r6, #1
        swi 0
)");
  EXPECT_EQ(r.iss->reg(2), 1u);
  EXPECT_EQ(r.iss->reg(3), 0u);
  EXPECT_EQ(r.iss->reg(5), 1u);
  EXPECT_EQ(r.iss->reg(6), 1u);
}

TEST(Iss, LoopWithBackwardBranch) {
  IssRun r(R"(
        mov r0, #0
        mov r1, #10
loop:   add r0, r0, r1
        subs r1, r1, #1
        bne loop
        swi 0
)");
  EXPECT_EQ(r.iss->reg(0), 55u);
}

TEST(Iss, SubroutineCallAndReturn) {
  IssRun r(R"(
        mov r0, #3
        bl double
        bl double
        swi 0
double: add r0, r0, r0
        mov pc, lr
)");
  EXPECT_EQ(r.iss->reg(0), 12u);
}

TEST(Iss, NestedCallsWithStack) {
  IssRun r(R"(
        ldr sp, =0xF0000
        mov r0, #2
        bl outer
        swi 0
outer:  push {r4, lr}
        mov r4, r0
        bl inner
        add r0, r0, r4
        pop {r4, lr}
        mov pc, lr
inner:  add r0, r0, #10
        mov pc, lr
)");
  EXPECT_EQ(r.iss->reg(0), 14u);  // (2+10) + 2
}

TEST(Iss, MemoryLoadStore) {
  IssRun r(R"(
        ldr r0, =buf
        mov r1, #0xAB
        str r1, [r0]
        strb r1, [r0, #4]
        ldr r2, [r0]
        ldrb r3, [r0, #4]
        swi 0
        .ltorg
buf:    .space 16
)");
  EXPECT_EQ(r.iss->reg(2), 0xABu);
  EXPECT_EQ(r.iss->reg(3), 0xABu);
}

TEST(Iss, PostIndexWalksArray) {
  IssRun r(R"(
        ldr r0, =arr
        mov r1, #0
        mov r2, #4
loop:   ldr r3, [r0], #4
        add r1, r1, r3
        subs r2, r2, #1
        bne loop
        swi 0
        .ltorg
arr:    .word 1, 2, 3, 4
)");
  EXPECT_EQ(r.iss->reg(1), 10u);
}

TEST(Iss, LdmStmRoundTrip) {
  IssRun r(R"(
        ldr sp, =0xF0000
        mov r1, #11
        mov r2, #22
        mov r3, #33
        push {r1, r2, r3}
        mov r1, #0
        mov r2, #0
        mov r3, #0
        pop {r1, r2, r3}
        swi 0
)");
  EXPECT_EQ(r.iss->reg(1), 11u);
  EXPECT_EQ(r.iss->reg(2), 22u);
  EXPECT_EQ(r.iss->reg(3), 33u);
  EXPECT_EQ(r.iss->reg(arm::kRegSp), 0xF0000u);  // balanced
}

TEST(Iss, LdmLoadToPcReturns) {
  IssRun r(R"(
        ldr sp, =0xF0000
        mov r0, #1
        bl fn
        add r0, r0, #100
        swi 0
fn:     push {r4, lr}
        add r0, r0, #1
        pop {r4, pc}
)");
  EXPECT_EQ(r.iss->reg(0), 102u);
}

TEST(Iss, MultiplyAndAccumulate) {
  IssRun r(R"(
        mov r0, #6
        mov r1, #7
        mul r2, r0, r1
        mov r3, #100
        mla r4, r0, r1, r3
        swi 0
)");
  EXPECT_EQ(r.iss->reg(2), 42u);
  EXPECT_EQ(r.iss->reg(4), 142u);
}

TEST(Iss, ShifterCarryFeedsConditional) {
  IssRun r(R"(
        mov r0, #3
        movs r0, r0, lsr #1   ; shifts out a 1 -> C set
        moveq r1, #9
        movcs r2, #1
        swi 0
)");
  EXPECT_EQ(r.iss->reg(0), 1u);
  EXPECT_EQ(r.iss->reg(2), 1u);
}

TEST(Iss, PcReadsAsPlus8) {
  IssRun r(R"(
        mov r0, pc
        swi 0
)");
  // First instruction at 0x8000: r0 = 0x8008.
  EXPECT_EQ(r.iss->reg(0), 0x8008u);
}

TEST(Iss, SyscallOutputAndExitCode) {
  IssRun r(R"(
        mov r0, #65
        swi 1          ; putc 'A'
        mov r0, #123
        swi 2          ; put_uint
        swi 5          ; newline
        mov r0, #7
        swi 0          ; exit(7)
)");
  EXPECT_EQ(r.sys.output(), "A123\n");
  EXPECT_EQ(r.sys.exit_code(), 7);
}

TEST(Iss, SwiWriteDumpsMemory) {
  IssRun r(R"(
        ldr r0, =msg
        mov r1, #5
        swi 4
        mov r0, #0
        swi 0
        .ltorg
msg:    .ascii "hello"
)");
  EXPECT_EQ(r.sys.output(), "hello");
}

TEST(Iss, ConditionalBranchChains) {
  IssRun r(R"(
        mov r0, #0
        mov r1, #7
        cmp r1, #10
        bge over
        add r0, r0, #1
over:   cmp r1, #5
        ble under
        add r0, r0, #2
under:  swi 0
)");
  EXPECT_EQ(r.iss->reg(0), 3u);
}

TEST(Iss, UnknownInstructionTrapsLoudly) {
  mem::Memory mem;
  sys::SyscallHandler sys;
  FunctionalIss iss(mem, sys);
  mem.write32(0x8000, 0xE7000010);  // undefined space -> swi 0xdead00
  iss.reset(0x8000, 0xF0000);
  iss.run(10);
  // The trap SWI is "unknown" to the handler; the ISS keeps going but the
  // handler logged it; ensure we didn't crash and executed it.
  EXPECT_GE(iss.instret(), 1u);
}

}  // namespace
}  // namespace rcpn::baseline
