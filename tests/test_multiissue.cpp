// Multi-issue / VLIW-style machines (the paper's §3 remark that RCPN
// captures "VLIW and multi-issue machines"): issue width comes from stage
// capacities > 1 and an independent fetch transition firing multiple times
// per cycle — no engine changes required.
#include <gtest/gtest.h>

#include "core/engine.hpp"

namespace rcpn::core {
namespace {

/// A 2-wide machine: fetch emits up to two tokens per cycle into a 2-entry
/// issue latch; two parallel "lanes" (shared-stage capacity 2) drain them.
struct TwoWide {
  Net net{"vliw2"};
  StageId issue_stage, ex_stage;
  PlaceId issue, ex;
  TypeId op;
  std::uint64_t to_emit;
  std::uint64_t emitted = 0;
  Engine eng{net};

  explicit TwoWide(std::uint64_t n) : to_emit(n) {
    issue_stage = net.add_stage("ISSUE", 2);
    ex_stage = net.add_stage("EX", 2);
    issue = net.add_place("ISSUE", issue_stage);
    ex = net.add_place("EX", ex_stage);
    op = net.add_type("op");
    net.add_transition("lane", op).from(issue).to(ex);
    net.add_transition("wb", op).from(ex).to(net.end_place());
    net.add_independent_transition("fetch2")
        .guard([this](FireCtx&) { return emitted < to_emit; })
        .action([this](FireCtx& ctx) {
          InstructionToken* t = ctx.engine->acquire_pooled_instruction();
          t->type = op;
          ++emitted;
          ctx.engine->emit_instruction(t, issue);
        })
        .max_fires_per_cycle(2)
        .to(issue);
    eng.build();
  }

  std::uint64_t run() {
    while (emitted < to_emit || eng.tokens_in_flight() > 0) eng.step();
    return eng.stats().cycles;
  }
};

TEST(MultiIssue, TwoWideMachineSustainsIpcNearTwo) {
  TwoWide m(2000);
  const std::uint64_t cycles = m.run();
  EXPECT_EQ(m.eng.stats().retired, 2000u);
  const double ipc = 2000.0 / static_cast<double>(cycles);
  EXPECT_GT(ipc, 1.8);   // steady-state dual issue
  EXPECT_LE(ipc, 2.0);
}

TEST(MultiIssue, WidthOneIsHalfAsFast) {
  TwoWide wide(1000);
  const std::uint64_t wide_cycles = wide.run();

  // Same structure with unit capacities and single fetch.
  Net net("scalar");
  const StageId s1 = net.add_stage("ISSUE", 1);
  const StageId s2 = net.add_stage("EX", 1);
  const PlaceId p1 = net.add_place("ISSUE", s1);
  const PlaceId p2 = net.add_place("EX", s2);
  const TypeId op = net.add_type("op");
  net.add_transition("lane", op).from(p1).to(p2);
  net.add_transition("wb", op).from(p2).to(net.end_place());
  std::uint64_t emitted = 0;
  Engine eng(net);
  net.add_independent_transition("fetch")
      .guard([&](FireCtx&) { return emitted < 1000; })
      .action([&](FireCtx& ctx) {
        InstructionToken* t = ctx.engine->acquire_pooled_instruction();
        t->type = op;
        ++emitted;
        ctx.engine->emit_instruction(t, p1);
      })
      .to(p1);
  eng.build();
  while (emitted < 1000 || eng.tokens_in_flight() > 0) eng.step();

  EXPECT_EQ(eng.stats().retired, 1000u);
  // The scalar machine needs roughly 2x the cycles of the 2-wide one.
  EXPECT_GT(eng.stats().cycles, wide_cycles * 17 / 10);
}

TEST(MultiIssue, StructuralHazardSerializesSharedLane) {
  // Two-wide fetch into a 2-entry issue latch, but only ONE execute slot:
  // the shared-stage capacity models the structural hazard, and throughput
  // must drop to scalar.
  Net net("struct-hazard");
  const StageId s1 = net.add_stage("ISSUE", 2);
  const StageId s2 = net.add_stage("EX", 1);  // single shared FU
  const PlaceId p1 = net.add_place("ISSUE", s1);
  const PlaceId p2 = net.add_place("EX", s2);
  const TypeId op = net.add_type("op");
  net.add_transition("lane", op).from(p1).to(p2);
  net.add_transition("wb", op).from(p2).to(net.end_place());
  std::uint64_t emitted = 0;
  Engine eng(net);
  net.add_independent_transition("fetch2")
      .guard([&](FireCtx&) { return emitted < 1000; })
      .action([&](FireCtx& ctx) {
        InstructionToken* t = ctx.engine->acquire_pooled_instruction();
        t->type = op;
        ++emitted;
        ctx.engine->emit_instruction(t, p1);
      })
      .max_fires_per_cycle(2)
      .to(p1);
  eng.build();
  while (emitted < 1000 || eng.tokens_in_flight() > 0) eng.step();

  EXPECT_EQ(eng.stats().retired, 1000u);
  const double ipc = 1000.0 / static_cast<double>(eng.stats().cycles);
  EXPECT_LT(ipc, 1.05);  // bottlenecked by the single FU
  EXPECT_GT(eng.stats().place_stalls[p1], 0u);  // issue stalls observed
}

}  // namespace
}  // namespace rcpn::core
