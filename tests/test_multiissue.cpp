// Multi-issue / VLIW-style machines (the paper's §3 remark that RCPN
// captures "VLIW and multi-issue machines"): issue width comes from stage
// capacities > 1 and an independent fetch transition firing multiple times
// per cycle — no engine changes required.
//
// The machines are described through the declarative model API
// (max_fires_per_cycle on an independent transition) and run on both
// backends, with a cycle-for-cycle backend-equivalence check at the bottom.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "model/simulator.hpp"

namespace rcpn {
namespace {

/// A width-parametric machine: fetch emits up to `width` tokens per cycle
/// into a `width`-entry issue latch; `ex_slots` parallel lanes drain them.
class MultiIssue {
 public:
  struct Ctx {
    std::uint64_t to_emit = 0;
    std::uint64_t emitted = 0;
  };

  MultiIssue(std::uint64_t n, unsigned width, unsigned ex_slots,
             core::EngineOptions options = {})
      : sim_(
            "multi-issue", options,
            [&](model::ModelBuilder<Ctx>& b, Ctx&) {
              const model::StageHandle s_issue = b.add_stage("ISSUE", width);
              const model::StageHandle s_ex = b.add_stage("EX", ex_slots);
              issue_ = b.add_place("ISSUE", s_issue);
              ex_ = b.add_place("EX", s_ex);
              const model::TypeHandle op = b.add_type("op");
              b.add_transition("lane", op).from(issue_).to(ex_);
              b.add_transition("wb", op).from(ex_).to(b.end());
              const core::PlaceId fetch_into = issue_;
              const core::TypeId ty = op;
              b.add_independent_transition("fetch")
                  .guard([](Ctx& m, core::FireCtx&) { return m.emitted < m.to_emit; })
                  .action([fetch_into, ty](Ctx& m, core::FireCtx& ctx) {
                    core::InstructionToken* t = ctx.engine->acquire_pooled_instruction();
                    t->type = ty;
                    ++m.emitted;
                    ctx.engine->emit_instruction(t, fetch_into);
                  })
                  .max_fires_per_cycle(static_cast<int>(width))
                  .to(issue_);
            },
            Ctx{n, 0}) {}

  std::uint64_t run() {
    sim_.drain([](const Ctx& m) { return m.emitted >= m.to_emit; });
    return sim_.stats().cycles;
  }

  model::Simulator<Ctx>& sim() { return sim_; }
  core::PlaceId issue() const { return issue_; }

 private:
  model::PlaceHandle issue_, ex_;
  model::Simulator<Ctx> sim_;
};

class MultiIssueBackends : public ::testing::TestWithParam<core::Backend> {
 protected:
  core::EngineOptions opts() const {
    core::EngineOptions o;
    o.backend = GetParam();
    return o;
  }
};

TEST_P(MultiIssueBackends, TwoWideMachineSustainsIpcNearTwo) {
  MultiIssue m(2000, /*width=*/2, /*ex_slots=*/2, opts());
  const std::uint64_t cycles = m.run();
  EXPECT_EQ(m.sim().stats().retired, 2000u);
  const double ipc = 2000.0 / static_cast<double>(cycles);
  EXPECT_GT(ipc, 1.8);  // steady-state dual issue
  EXPECT_LE(ipc, 2.0);
}

TEST_P(MultiIssueBackends, WidthOneIsHalfAsFast) {
  MultiIssue wide(1000, 2, 2, opts());
  MultiIssue scalar(1000, 1, 1, opts());
  const std::uint64_t wide_cycles = wide.run();
  const std::uint64_t scalar_cycles = scalar.run();
  EXPECT_EQ(scalar.sim().stats().retired, 1000u);
  // The scalar machine needs roughly 2x the cycles of the 2-wide one.
  EXPECT_GT(scalar_cycles, wide_cycles * 17 / 10);
}

TEST_P(MultiIssueBackends, StructuralHazardSerializesSharedLane) {
  // Two-wide fetch into a 2-entry issue latch, but only ONE execute slot:
  // the shared-stage capacity models the structural hazard, and throughput
  // must drop to scalar.
  MultiIssue m(1000, /*width=*/2, /*ex_slots=*/1, opts());
  m.run();
  EXPECT_EQ(m.sim().stats().retired, 1000u);
  const double ipc =
      1000.0 / static_cast<double>(m.sim().stats().cycles);
  EXPECT_LT(ipc, 1.05);  // bottlenecked by the single FU
  EXPECT_GT(m.sim().stats().place_stalls[static_cast<unsigned>(m.issue())], 0u);
}

INSTANTIATE_TEST_SUITE_P(BothBackends, MultiIssueBackends,
                         ::testing::Values(core::Backend::interpreted,
                                           core::Backend::compiled),
                         [](const auto& info) {
                           return info.param == core::Backend::compiled ? "compiled"
                                                                        : "interpreted";
                         });

// ---------------------------------------------------------------------------
// The 2-wide machine that used to live here as a hand-wired core::Net (the
// last raw-net user of std::function guards — a wiring path the core layer
// no longer has: closures are the model layer's job). Ported to the model
// API, it now also pins backend equivalence: the interpreted and compiled
// engines must agree on the whole statistics vector, not just on IPC.
// ---------------------------------------------------------------------------

TEST(MultiIssueModelApi, TwoWideBackendsAgreeCycleForCycle) {
  MultiIssue interp(2000, /*width=*/2, /*ex_slots=*/2);
  core::EngineOptions copts;
  copts.backend = core::Backend::compiled;
  MultiIssue comp(2000, /*width=*/2, /*ex_slots=*/2, copts);
  interp.run();
  comp.run();

  const core::Stats& is = interp.sim().stats();
  const core::Stats& cs = comp.sim().stats();
  EXPECT_EQ(is.retired, 2000u);
  EXPECT_EQ(is.cycles, cs.cycles);
  EXPECT_EQ(is.retired, cs.retired);
  EXPECT_EQ(is.fetched, cs.fetched);
  EXPECT_EQ(is.firings, cs.firings);
  EXPECT_EQ(is.transition_fires, cs.transition_fires);
  EXPECT_EQ(is.place_stalls, cs.place_stalls);
  EXPECT_EQ(is.place_stall_causes, cs.place_stall_causes);

  const double ipc = 2000.0 / static_cast<double>(is.cycles);
  EXPECT_GT(ipc, 1.8);
  EXPECT_LE(ipc, 2.0);
}

}  // namespace
}  // namespace rcpn
