// Serialized model descriptions (.rcpn): canonical-text determinism, parser
// and loader error paths (unknown version / delegate symbol / arity / place /
// options flag, each named in the ModelError), and the round-trip contract —
// for every golden machine and 16 seeded fuzz topologies, build → describe →
// serialize → parse → load → build produces byte-identical retire traces and
// statistics on every in-process backend. The model zoo (models/*.rcpn) is
// pinned byte-for-byte against what the current library describes.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/options_signature.hpp"
#include "desc/delegate_registry.hpp"
#include "desc/description.hpp"
#include "gen/compiled_engine.hpp"
#include "gen/embed.hpp"
#include "gen/emit_simulator.hpp"
#include "machines/desc_machines.hpp"
#include "machines/fuzz_model.hpp"
#include "machines/golden_runner.hpp"
#include "model/simulator.hpp"

namespace rcpn {
namespace {

core::EngineOptions opts_for(core::Backend backend) {
  core::EngineOptions o;
  o.backend = backend;
  return o;
}

/// The full observable contract: retire trace plus every statistics field
/// (the same set the lockstep fuzz harness compares across backends).
void expect_runs_equal(const machines::GoldenRunResult& direct,
                       const machines::GoldenRunResult& loaded,
                       const std::string& label) {
  EXPECT_EQ(direct.trace, loaded.trace) << label;
  EXPECT_EQ(direct.stats.cycles, loaded.stats.cycles) << label;
  EXPECT_EQ(direct.stats.retired, loaded.stats.retired) << label;
  EXPECT_EQ(direct.stats.fetched, loaded.stats.fetched) << label;
  EXPECT_EQ(direct.stats.squashed, loaded.stats.squashed) << label;
  EXPECT_EQ(direct.stats.reservations, loaded.stats.reservations) << label;
  EXPECT_EQ(direct.stats.firings, loaded.stats.firings) << label;
  EXPECT_EQ(direct.stats.transition_fires, loaded.stats.transition_fires) << label;
  EXPECT_EQ(direct.stats.place_stalls, loaded.stats.place_stalls) << label;
  EXPECT_EQ(direct.stats.place_stall_causes, loaded.stats.place_stall_causes) << label;
}

/// describe → text → parse: the loaded-path description every test runs from
/// (so the serializer and parser are always in the loop, never bypassed).
desc::Description round_trip(const desc::Description& d) {
  return desc::parse(desc::to_text(d));
}

TEST(DescFormat, CanonicalTextIsByteDeterministic) {
  for (const std::string& key : machines::golden_machine_keys()) {
    const core::EngineOptions o = opts_for(core::Backend::compiled);
    const std::string a = desc::to_text(machines::describe_machine(key, o));
    const std::string b = desc::to_text(machines::describe_machine(key, o));
    EXPECT_EQ(a, b) << key;
    // parse(to_text) re-serializes to the same bytes: one spelling per model.
    EXPECT_EQ(desc::to_text(desc::parse(a)), a) << key;
  }
}

TEST(DescFormat, RecordsTheOptionsSignature) {
  core::EngineOptions o = opts_for(core::Backend::compiled);
  o.force_two_list_all = true;
  o.linear_search = true;
  const desc::Description d = machines::describe_machine("fig2", o);
  EXPECT_EQ(d.options, core::options_signature(o));
  // engine_options applies the recorded flags over a base and keeps the
  // base's backend.
  core::EngineOptions base = opts_for(core::Backend::interpreted);
  const core::EngineOptions applied = desc::engine_options(round_trip(d), base);
  EXPECT_TRUE(applied.force_two_list_all);
  EXPECT_TRUE(applied.linear_search);
  EXPECT_EQ(applied.backend, core::Backend::interpreted);
}

TEST(DescFormat, ParseRejectsUnknownVersionNamingIt) {
  try {
    desc::parse("rcpn-model/99\nmodel X\n");
    FAIL() << "parse accepted an unknown version";
  } catch (const model::ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("rcpn-model/99"), std::string::npos)
        << e.what();
  }
}

TEST(DescFormat, LoaderRejectsUnknownDelegateSymbolNamingIt) {
  desc::Description d =
      machines::describe_machine("fig2", opts_for(core::Backend::compiled));
  for (desc::DescTransition& t : d.transitions)
    if (t.guard.symbol == "rcpn::machines::fig2_u1_guard")
      t.guard.symbol = "rcpn::machines::no_such_guard";
  try {
    machines::run_description(round_trip(d), opts_for(core::Backend::compiled));
    FAIL() << "loader accepted an unknown delegate symbol";
  } catch (const model::ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("rcpn::machines::no_such_guard"),
              std::string::npos)
        << e.what();
  }
}

TEST(DescFormat, LoaderRejectsArityMismatchNamingTheSymbol) {
  // fuzz_action_delay is registered ctx-only; declaring it machine-arity in
  // the description must be rejected, not silently rebound. Scan seeds for a
  // topology that drew the delay action (the generator makes it common).
  desc::Description d;
  bool flipped = false;
  for (unsigned seed = 0; seed < 64 && !flipped; ++seed) {
    d = machines::describe_machine("fuzz-" + std::to_string(seed),
                                   opts_for(core::Backend::compiled));
    for (desc::DescTransition& t : d.transitions)
      if (t.action.symbol == "rcpn::machines::fuzz_action_delay") {
        t.action.takes_machine = true;
        flipped = true;
      }
  }
  ASSERT_TRUE(flipped) << "no seed in [0,64) uses fuzz_action_delay any more";
  try {
    machines::run_description(round_trip(d), opts_for(core::Backend::compiled));
    FAIL() << "loader accepted a delegate arity mismatch";
  } catch (const model::ModelError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rcpn::machines::fuzz_action_delay"), std::string::npos)
        << what;
    EXPECT_NE(what.find("arity"), std::string::npos) << what;
  }
}

TEST(DescFormat, LoaderRejectsUnknownPlaceNamingIt) {
  desc::Description d =
      machines::describe_machine("fig2", opts_for(core::Backend::compiled));
  ASSERT_FALSE(d.transitions.empty());
  ASSERT_FALSE(d.transitions[0].in.empty());
  d.transitions[0].in[0].place = "NOWHERE";
  EXPECT_THROW(
      {
        try {
          machines::run_description(d, opts_for(core::Backend::compiled));
        } catch (const model::ModelError& e) {
          EXPECT_NE(std::string(e.what()).find("NOWHERE"), std::string::npos)
              << e.what();
          throw;
        }
      },
      model::ModelError);
}

TEST(DescFormat, OptionsRejectUnknownFlagNamingIt) {
  desc::Description d =
      machines::describe_machine("fig2", opts_for(core::Backend::compiled));
  d.options = "warp_drive=1";
  try {
    desc::engine_options(d);
    FAIL() << "engine_options accepted an unknown flag";
  } catch (const model::ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("warp_drive"), std::string::npos)
        << e.what();
  }
}

TEST(DescFormat, UnknownModelFamilyIsRejectedNamingIt) {
  desc::Description d =
      machines::describe_machine("fig2", opts_for(core::Backend::compiled));
  d.model = "Mystery";
  try {
    machines::run_description(d, opts_for(core::Backend::compiled));
    FAIL() << "run_description accepted an unknown model family";
  } catch (const model::ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("Mystery"), std::string::npos) << e.what();
  }
}

struct PlainMachine {};

TEST(DescFormat, DescribeRejectsAnonymousDelegatesNamingTheTransition) {
  core::EngineOptions o = opts_for(core::Backend::compiled);
  model::Simulator<PlainMachine> sim(
      "closures", o,
      [](model::ModelBuilder<PlainMachine>& b, PlainMachine&) {
        b.emit_machine_type("rcpn::PlainMachine");
        const model::StageHandle s = b.add_stage("S", 1);
        const model::PlaceHandle p = b.add_place("P", s);
        const model::TypeHandle ty = b.add_type("T");
        int captured = 7;  // forces a boxed closure
        b.add_transition("boxed", ty)
            .from(p)
            .guard([captured](core::FireCtx&) { return captured > 0; })
            .to(b.end());
      },
      PlainMachine{});
  try {
    desc::describe_net(sim.net(), o);
    FAIL() << "describe_net serialized an anonymous closure";
  } catch (const model::ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("boxed"), std::string::npos) << e.what();
  }
}

// -- round-trip equality ------------------------------------------------------

class DescRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(DescRoundTrip, GoldenMachineMatchesOnEveryInProcessBackend) {
  const std::string key = GetParam();
  std::vector<core::Backend> backends = {core::Backend::interpreted,
                                         core::Backend::compiled};
#ifdef RCPN_HAVE_GENERATED
  backends.push_back(core::Backend::generated);
#endif
  for (const core::Backend backend : backends) {
    const core::EngineOptions o = opts_for(backend);
    const machines::GoldenRunResult direct = machines::run_golden_machine_full(key, o);
    const desc::Description d = round_trip(machines::describe_machine(key, o));
    EXPECT_EQ(machines::description_machine_key(d), key);
    const machines::GoldenRunResult loaded = machines::run_description(d, o);
    expect_runs_equal(direct, loaded,
                      key + "/backend=" + std::to_string(static_cast<int>(backend)));
  }
}

INSTANTIATE_TEST_SUITE_P(AllMachines, DescRoundTrip,
                         ::testing::Values("fig2", "fig5", "tomasulo",
                                           "strongarm_crc", "xscale_adpcm",
                                           "stallcause"));

TEST(DescRoundTripFuzz, SixteenSeededTopologiesMatchDirectBuilds) {
  for (unsigned seed = 0; seed < 16; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    for (const core::Backend backend :
         {core::Backend::interpreted, core::Backend::compiled}) {
      const core::EngineOptions o = machines::fuzz_options_for(seed, backend);
      const machines::GoldenRunResult direct = machines::golden_run_fuzz(seed, o);
      const desc::Description d = round_trip(
          machines::describe_machine("fuzz-" + std::to_string(seed), o));
      const machines::GoldenRunResult loaded = machines::run_description(d, o);
      expect_runs_equal(direct, loaded,
                        "fuzz-" + std::to_string(seed) + "/backend=" +
                            std::to_string(static_cast<int>(backend)));
    }
  }
}

// -- emitted-artifact parity --------------------------------------------------

TEST(DescEmit, SimulatorSourceFromDescriptionMatchesDirectEmission) {
  // The generated and freestanding backends consume emitted source, so
  // byte-identical emission from the loaded model extends round-trip
  // equality to both without compiling anything here (CI compiles and
  // golden-diffs the .rcpn-emitted freestanding artifact).
  const std::string key = "strongarm_crc";
  const core::EngineOptions o = opts_for(core::Backend::compiled);

  const auto emit_from = [&](auto&& fn_runner) {
    std::string linked, freestanding;
    fn_runner([&](core::Net& net, core::Engine& eng) {
      auto& ce = dynamic_cast<gen::CompiledEngine&>(eng);
      gen::EmitSimOptions main_opts;
      main_opts.machine_key = key;
      main_opts.engine_options = o;
      linked = gen::emit_simulator(ce.compiled(), net, main_opts);
      if (!gen::embedded_file_paths().empty()) {
        gen::EmitSimOptions fs;
        fs.mode = gen::EmitMode::freestanding;
        fs.engine_options = o;
        fs.machine_key = key;
        fs.run_expr = machines::golden_run_expr(key);
        fs.extra_roots.push_back(machines::golden_run_header(key));
        freestanding = gen::emit_simulator(ce.compiled(), net, fs);
      }
    });
    return std::pair<std::string, std::string>{linked, freestanding};
  };

  const auto direct = emit_from([&](const machines::GoldenInspectFn& fn) {
    machines::inspect_golden_machine(key, o, fn);
  });
  const desc::Description d = round_trip(machines::describe_machine(key, o));
  const auto loaded = emit_from([&](const machines::GoldenInspectFn& fn) {
    machines::inspect_description(d, o, fn);
  });
  EXPECT_EQ(direct.first, loaded.first);
  EXPECT_EQ(direct.second, loaded.second);
}

// -- the model zoo ------------------------------------------------------------

#ifdef RCPN_MODELS_DIR
std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return in ? out.str() : "";
}

TEST(DescZoo, CheckedInModelFilesMatchTheLibrary) {
  // models/*.rcpn are regenerated by `rcpn_emit describe <key>`; a drifted
  // file means the serializer or a machine's model changed without the zoo
  // being refreshed (CI diffs the same way).
  for (const std::string& key : machines::golden_machine_keys()) {
    const desc::Description d =
        machines::describe_machine(key, opts_for(core::Backend::compiled));
    const std::string path =
        std::string(RCPN_MODELS_DIR) + "/" + desc::canonical_file_name(d);
    const std::string checked_in = read_text_file(path);
    ASSERT_FALSE(checked_in.empty()) << "missing zoo file " << path;
    EXPECT_EQ(checked_in, desc::to_text(d)) << path << " is stale; regenerate with "
                                            << "rcpn_emit describe " << key;
  }
}

TEST(DescZoo, ZooFilesLoadAndRunEveryMachine) {
  for (const std::string& key : machines::golden_machine_keys()) {
    const desc::Description probe =
        machines::describe_machine(key, opts_for(core::Backend::compiled));
    const desc::Description d = desc::read_file(
        std::string(RCPN_MODELS_DIR) + "/" + desc::canonical_file_name(probe));
    const core::EngineOptions o =
        desc::engine_options(d, opts_for(core::Backend::compiled));
    const machines::GoldenRunResult loaded = machines::run_description(d, o);
    expect_runs_equal(machines::run_golden_machine_full(key, o), loaded, key);
  }
}
#endif  // RCPN_MODELS_DIR

}  // namespace
}  // namespace rcpn
