// Assembler tests: syntax coverage, label resolution, literal pools,
// directives, error reporting, and full encode->decode round trips.
#include <gtest/gtest.h>

#include "arm/assembler.hpp"
#include "arm/disassembler.hpp"
#include "mem/memory.hpp"

namespace rcpn::arm {
namespace {

std::uint32_t word_at(const sys::Program& p, std::uint32_t addr) {
  mem::Memory m;
  p.load_into(m);
  return m.read32(addr);
}

TEST(Assembler, MovImmediate) {
  const auto r = assemble("mov r0, #42\n");
  const auto d = decode(word_at(r.program, 0x8000), 0x8000);
  EXPECT_EQ(d.cls, OpClass::data_proc);
  EXPECT_EQ(d.dp_op, DpOp::mov);
  EXPECT_EQ(d.rd, 0);
  EXPECT_EQ(d.imm, 42u);
}

TEST(Assembler, ThreeOperandWithShift) {
  const auto r = assemble("add r1, r2, r3, lsl #4\n");
  const auto d = decode(word_at(r.program, 0x8000), 0x8000);
  EXPECT_EQ(d.dp_op, DpOp::add);
  EXPECT_EQ(d.rd, 1);
  EXPECT_EQ(d.rn, 2);
  EXPECT_EQ(d.rm, 3);
  EXPECT_EQ(d.shift, ShiftKind::lsl);
  EXPECT_EQ(d.shift_amount, 4);
}

TEST(Assembler, RegisterShiftedRegister) {
  const auto r = assemble("mov r0, r1, lsr r2\n");
  const auto d = decode(word_at(r.program, 0x8000), 0x8000);
  EXPECT_TRUE(d.shift_by_reg);
  EXPECT_EQ(d.rs, 2);
  EXPECT_EQ(d.shift, ShiftKind::lsr);
}

TEST(Assembler, ConditionAndSFlagSuffixes) {
  const auto r = assemble("addges r0, r0, #1\nsubs r1, r1, #1\nmoveq r2, #0\n");
  auto d = decode(word_at(r.program, 0x8000), 0x8000);
  EXPECT_EQ(d.cond, Cond::ge);
  EXPECT_TRUE(d.sets_flags);
  d = decode(word_at(r.program, 0x8004), 0x8004);
  EXPECT_EQ(d.cond, Cond::al);
  EXPECT_TRUE(d.sets_flags);
  d = decode(word_at(r.program, 0x8008), 0x8008);
  EXPECT_EQ(d.cond, Cond::eq);
  EXPECT_FALSE(d.sets_flags);
}

TEST(Assembler, BlsIsBranchLowerSame) {
  const auto r = assemble("x: bls x\nbllt x\n");
  auto d = decode(word_at(r.program, 0x8000), 0x8000);
  EXPECT_EQ(d.cls, OpClass::branch);
  EXPECT_FALSE(d.link);
  EXPECT_EQ(d.cond, Cond::ls);
  d = decode(word_at(r.program, 0x8004), 0x8004);
  EXPECT_TRUE(d.link);
  EXPECT_EQ(d.cond, Cond::lt);
}

TEST(Assembler, BranchTargetsResolveForwardAndBackward) {
  const auto r = assemble(R"(
start:  b fwd
        nop
fwd:    b start
)");
  auto d = decode(word_at(r.program, 0x8000), 0x8000);
  EXPECT_EQ(0x8000 + 8 + d.branch_offset, 0x8008);
  d = decode(word_at(r.program, 0x8008), 0x8008);
  EXPECT_EQ(0x8008 + 8 + d.branch_offset, 0x8000);
}

TEST(Assembler, LoadStoreAddressingModes) {
  const auto r = assemble(R"(
        ldr r0, [r1]
        ldr r0, [r1, #4]
        ldr r0, [r1, #-4]!
        ldr r0, [r1], #8
        ldrb r0, [r1, r2]
        str r0, [r1, r2, lsl #2]
        strb r0, [r1], #1
)");
  auto d = decode(word_at(r.program, 0x8000), 0x8000);
  EXPECT_TRUE(d.is_load);
  EXPECT_EQ(d.offset_imm, 0u);
  d = decode(word_at(r.program, 0x8004), 0x8004);
  EXPECT_EQ(d.offset_imm, 4u);
  EXPECT_TRUE(d.add_offset);
  d = decode(word_at(r.program, 0x8008), 0x8008);
  EXPECT_FALSE(d.add_offset);
  EXPECT_TRUE(d.writeback);
  EXPECT_TRUE(d.pre_index);
  d = decode(word_at(r.program, 0x800C), 0x800C);
  EXPECT_FALSE(d.pre_index);
  d = decode(word_at(r.program, 0x8010), 0x8010);
  EXPECT_TRUE(d.is_byte);
  EXPECT_TRUE(d.reg_offset);
  d = decode(word_at(r.program, 0x8014), 0x8014);
  EXPECT_FALSE(d.is_load);
  EXPECT_EQ(d.shift_amount, 2);
  d = decode(word_at(r.program, 0x8018), 0x8018);
  EXPECT_TRUE(d.is_byte);
  EXPECT_FALSE(d.pre_index);
}

TEST(Assembler, LdmStmAndStackAliases) {
  const auto r = assemble(R"(
        ldmia r0!, {r1, r2, r5-r7}
        stmdb sp!, {r4, lr}
        push {r0-r3}
        pop {r0-r3}
)");
  auto d = decode(word_at(r.program, 0x8000), 0x8000);
  EXPECT_EQ(d.cls, OpClass::load_store_multiple);
  EXPECT_EQ(d.reg_list, 0b11100110);
  EXPECT_TRUE(d.writeback);
  d = decode(word_at(r.program, 0x8004), 0x8004);
  EXPECT_FALSE(d.is_load);
  EXPECT_TRUE(d.lsm_before);
  EXPECT_FALSE(d.lsm_up);
  // push == stmdb sp!; pop == ldmia sp!.
  const auto push_d = decode(word_at(r.program, 0x8008), 0);
  EXPECT_FALSE(push_d.is_load);
  EXPECT_TRUE(push_d.lsm_before);
  EXPECT_FALSE(push_d.lsm_up);
  EXPECT_EQ(push_d.rn, kRegSp);
  const auto pop_d = decode(word_at(r.program, 0x800C), 0);
  EXPECT_TRUE(pop_d.is_load);
  EXPECT_FALSE(pop_d.lsm_before);
  EXPECT_TRUE(pop_d.lsm_up);
}

TEST(Assembler, LdrEqualsPseudoUsesMovWhenEncodable) {
  const auto r = assemble("ldr r0, =255\nldr r1, =0xFFFFFF00\n");
  auto d = decode(word_at(r.program, 0x8000), 0x8000);
  EXPECT_EQ(d.cls, OpClass::data_proc);
  EXPECT_EQ(d.dp_op, DpOp::mov);
  EXPECT_EQ(d.imm, 255u);
  // ~0xFFFFFF00 = 0xFF encodable -> mvn.
  d = decode(word_at(r.program, 0x8004), 0x8004);
  EXPECT_EQ(d.dp_op, DpOp::mvn);
}

TEST(Assembler, LdrEqualsPseudoFallsBackToLiteralPool) {
  const auto r = assemble("ldr r0, =0x12345678\nswi 0\n");
  const auto d = decode(word_at(r.program, 0x8000), 0x8000);
  EXPECT_EQ(d.cls, OpClass::load_store);
  EXPECT_EQ(d.rn, kRegPc);
  // The literal must contain the value, pc-relative.
  mem::Memory m;
  r.program.load_into(m);
  const std::uint32_t ea = 0x8000 + 8 + d.offset_imm;
  EXPECT_EQ(m.read32(ea), 0x12345678u);
}

TEST(Assembler, LdrEqualsLabelLoadsAddress) {
  const auto r = assemble(R"(
        ldr r0, =data
        swi 0
        .ltorg
data:   .word 99
)");
  const auto d = decode(word_at(r.program, 0x8000), 0x8000);
  mem::Memory m;
  r.program.load_into(m);
  const std::uint32_t pool_value = m.read32(0x8000 + 8 + d.offset_imm);
  EXPECT_EQ(pool_value, r.symbols.at("data"));
  EXPECT_EQ(m.read32(pool_value), 99u);
}

TEST(Assembler, AdrComputesPcRelative) {
  const auto r = assemble(R"(
        adr r0, data
        swi 0
data:   .word 1
)");
  // add r0, pc, #imm with pc = 0x8008 -> data at 0x8008.
  const auto d = decode(word_at(r.program, 0x8000), 0x8000);
  EXPECT_EQ(d.dp_op, DpOp::add);
  EXPECT_EQ(d.rn, kRegPc);
  EXPECT_EQ(d.imm, 0u);
}

TEST(Assembler, DirectivesWordByteSpaceAlignAscii) {
  const auto r = assemble(R"(
        .equ MAGIC, 0xABCD
a:      .word 1, 2, MAGIC
b:      .byte 1, 2, 3
        .align 2
c:      .space 8, 0xFF
s:      .asciz "hi\n"
)");
  mem::Memory m;
  r.program.load_into(m);
  EXPECT_EQ(m.read32(r.symbols.at("a") + 8), 0xABCDu);
  EXPECT_EQ(m.read8(r.symbols.at("b") + 2), 3u);
  EXPECT_EQ(r.symbols.at("c") % 4, 0u);
  EXPECT_EQ(m.read8(r.symbols.at("c")), 0xFFu);
  EXPECT_EQ(m.read8(r.symbols.at("s")), 'h');
  EXPECT_EQ(m.read8(r.symbols.at("s") + 2), '\n');
  EXPECT_EQ(m.read8(r.symbols.at("s") + 3), 0u);
}

TEST(Assembler, CommentsAndBlankLines) {
  const auto r = assemble(R"(
; full-line comment
        mov r0, #1   ; trailing
        mov r1, #2   @ other comment style
        mov r2, #3   // c++ style
)");
  EXPECT_EQ(decode(word_at(r.program, 0x8008), 0).imm, 3u);
}

TEST(Assembler, EntryPointDefaultsToOriginOrStart) {
  EXPECT_EQ(assemble("nop\n").program.entry, 0x8000u);
  const auto r = assemble("nop\n_start: nop\n");
  EXPECT_EQ(r.program.entry, 0x8004u);
}

TEST(Assembler, MulOperands) {
  const auto r = assemble("mul r0, r1, r2\nmla r3, r4, r5, r6\n");
  auto d = decode(word_at(r.program, 0x8000), 0);
  EXPECT_EQ(d.cls, OpClass::multiply);
  EXPECT_EQ(d.rd, 0);
  EXPECT_EQ(d.rm, 1);
  EXPECT_EQ(d.rs, 2);
  d = decode(word_at(r.program, 0x8004), 0);
  EXPECT_TRUE(d.accumulate);
  EXPECT_EQ(d.rn, 6);
}

TEST(AssemblerErrors, ReportLineNumbers) {
  try {
    assemble("nop\nbogus r0\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(AssemblerErrors, DuplicateLabel) {
  EXPECT_THROW(assemble("a: nop\na: nop\n"), AsmError);
}

TEST(AssemblerErrors, UndefinedSymbol) {
  EXPECT_THROW(assemble("b nowhere\n"), AsmError);
}

TEST(AssemblerErrors, NonEncodableImmediate) {
  EXPECT_THROW(assemble("mov r0, #0x12345678\n"), AsmError);
}

TEST(AssemblerErrors, RegisterRangeBackwards) {
  EXPECT_THROW(assemble("push {r5-r2}\n"), AsmError);
}

TEST(Assembler, DisassemblerRoundTripOnProgram) {
  // Re-assembling each disassembled instruction must reproduce the word.
  const char* src = R"(
_start: mov r0, #0
        add r1, r0, r0, lsl #2
        subs r2, r1, #1
        mul r3, r1, r2
        ldr r4, [sp, #8]
        strb r4, [r1], #1
        swi 1
)";
  const auto r = assemble(src);
  mem::Memory m;
  r.program.load_into(m);
  for (std::uint32_t a = 0x8000; a < 0x8000 + 7 * 4; a += 4) {
    const std::uint32_t raw = m.read32(a);
    const std::string text = disassemble(raw, a);
    const auto r2 = assemble(text + "\n");
    mem::Memory m2;
    r2.program.load_into(m2);
    EXPECT_EQ(m2.read32(0x8000), raw) << text;
  }
}

}  // namespace
}  // namespace rcpn::arm
