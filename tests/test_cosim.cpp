// Co-simulation: the RCPN-generated cycle-accurate simulators (StrongArm &
// XScale) must be architecturally identical to the functional ISS — same
// program output, same exit code, same final register file — on directed
// hazard programs, all six paper workloads, and randomized programs.
#include <gtest/gtest.h>

#include "arm/assembler.hpp"
#include "baseline/functional_iss.hpp"
#include "machines/strongarm.hpp"
#include "machines/xscale.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace rcpn::machines {
namespace {

struct IssRef {
  mem::Memory mem;
  sys::SyscallHandler sys;
  std::uint64_t instret = 0;
  std::array<std::uint32_t, 16> regs{};

  explicit IssRef(const sys::Program& prog, std::uint64_t max = 50'000'000) {
    baseline::FunctionalIss iss(mem, sys);
    iss.reset(prog);
    iss.run(max);
    instret = iss.instret();
    for (unsigned i = 0; i < 16; ++i) regs[i] = iss.reg(i);
  }
};

template <typename Sim>
void expect_cosim(Sim& sim, const sys::Program& prog, const char* what) {
  IssRef ref(prog);
  const RunResult r = sim.run(prog, 200'000'000ull);
  EXPECT_TRUE(r.exited) << what << ": pipeline simulation did not exit";
  EXPECT_EQ(r.output, ref.sys.output()) << what;
  EXPECT_EQ(r.exit_code, ref.sys.exit_code()) << what;
  // Final architectural registers (r0..r12 + sp; lr is call-clobbered but
  // deterministic too). The pipeline stops at the exit SWI with everything
  // older drained, so state must match exactly.
  for (unsigned i = 0; i <= 14; ++i)
    EXPECT_EQ(sim.machine().rf.read_cell(i), ref.regs[i]) << what << " r" << i;
  // Instruction counts: every retired token is one architectural
  // instruction; the exit SWI itself (and nothing else) may be in flight.
  EXPECT_LE(r.instructions, ref.instret) << what;
  EXPECT_GE(r.instructions + 8, ref.instret) << what;
}

const char* kHazardPrograms[] = {
    // RAW chains with forwarding.
    R"(
        mov r0, #1
        add r1, r0, r0
        add r2, r1, r1
        add r3, r2, r2
        add r4, r3, r3
        swi 0
)",
    // Load-use + store-to-load.
    R"(
        ldr sp, =0xF0000
        mov r0, #77
        ldr r1, =buf
        str r0, [r1]
        ldr r2, [r1]
        add r3, r2, #1
        ldr r4, [r1]
        add r5, r4, r3
        swi 0
        .ltorg
buf:    .word 0
)",
    // Flag hazards: S-setting chain feeding conditionals.
    R"(
        mov r0, #5
loop:   subs r0, r0, #1
        addne r1, r1, #2
        bne loop
        moveq r2, #9
        swi 0
)",
    // Multiply latency + dependent use.
    R"(
        mov r0, #1000
        mov r1, #2000
        mul r2, r0, r1
        add r3, r2, #1
        mul r4, r2, r0
        add r5, r4, r3
        swi 0
)",
    // Branch-heavy: calls, returns, taken/not-taken mix.
    R"(
        ldr sp, =0xF0000
        mov r6, #0
        mov r5, #6
bl_loop:
        mov r0, r5
        bl classify
        add r6, r6, r0
        subs r5, r5, #1
        bne bl_loop
        mov r0, r6
        swi 2
        swi 5
        mov r0, #0
        swi 0
classify:
        cmp r0, #3
        movlt r0, #1
        movge r0, #2
        mov pc, lr
)",
    // LDM/STM with writeback, push/pop discipline.
    R"(
        ldr sp, =0xF0000
        mov r1, #1
        mov r2, #2
        mov r3, #3
        mov r4, #4
        push {r1-r4}
        mov r1, #0
        mov r2, #0
        pop {r1-r4}
        add r0, r1, r2
        add r0, r0, r3
        add r0, r0, r4
        swi 2
        swi 5
        mov r0, #0
        swi 0
)",
    // Base writeback addressing walking an array.
    R"(
        ldr r0, =arr
        mov r1, #0
        mov r2, #4
walk:   ldr r3, [r0], #4
        add r1, r1, r3
        subs r2, r2, #1
        bne walk
        str r1, [r0, #-4]!
        ldr r4, [r0]
        swi 0
        .ltorg
arr:    .word 10, 20, 30, 40
)",
    // WAW + dead writes across classes.
    R"(
        mov r0, #4
        mov r1, #5
        mul r2, r0, r1
        mov r2, #9
        add r3, r2, #0
        swi 0
)",
    // Conditional execution around memory ops.
    R"(
        ldr r0, =buf
        mov r1, #3
        cmp r1, #3
        streq r1, [r0]
        strne r1, [r0, #4]
        ldreq r2, [r0]
        swi 0
        .ltorg
buf:    .word 0, 0
)",
    // Register-shifted operands and carries.
    R"(
        mov r0, #1
        mov r1, #31
        mov r2, r0, lsl r1
        movs r3, r2, lsr #31
        adc r4, r3, #0
        rsb r5, r4, #100
        swi 0
)",
};

class StrongArmHazards : public ::testing::TestWithParam<int> {};
TEST_P(StrongArmHazards, MatchesIss) {
  StrongArmSim sim;
  const auto prog = arm::assemble(kHazardPrograms[GetParam()]).program;
  expect_cosim(sim, prog, "strongarm-hazard");
}
INSTANTIATE_TEST_SUITE_P(Directed, StrongArmHazards, ::testing::Range(0, 10));

class XScaleHazards : public ::testing::TestWithParam<int> {};
TEST_P(XScaleHazards, MatchesIss) {
  XScaleSim sim;
  const auto prog = arm::assemble(kHazardPrograms[GetParam()]).program;
  expect_cosim(sim, prog, "xscale-hazard");
}
INSTANTIATE_TEST_SUITE_P(Directed, XScaleHazards, ::testing::Range(0, 10));

class WorkloadCosim : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadCosim, StrongArmMatchesIss) {
  const workloads::Workload* w = workloads::find(GetParam());
  ASSERT_NE(w, nullptr);
  StrongArmSim sim;
  expect_cosim(sim, workloads::build(*w, w->test_scale), w->name.c_str());
}

TEST_P(WorkloadCosim, XScaleMatchesIss) {
  const workloads::Workload* w = workloads::find(GetParam());
  ASSERT_NE(w, nullptr);
  XScaleSim sim;
  expect_cosim(sim, workloads::build(*w, w->test_scale), w->name.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllSix, WorkloadCosim,
                         ::testing::Values("adpcm", "blowfish", "compress", "crc",
                                           "g721", "go"));

// ---------------------------------------------------------------------------
// Randomized program fuzzing: straight-line random ALU/MUL/memory operations
// on a scratch buffer, ending in an exit SWI. Every seed must co-simulate.
// ---------------------------------------------------------------------------

std::string random_program(std::uint64_t seed) {
  util::Xorshift64 rng(seed);
  std::string src = "        ldr sp, =0xF0000\n        ldr r7, =buf\n";
  // Give registers defined values first.
  for (unsigned r = 0; r <= 6; ++r)
    src += "        mov r" + std::to_string(r) + ", #" +
           std::to_string(rng.below(200)) + "\n";
  const char* alu_ops[] = {"add", "sub", "eor", "orr", "and", "rsb"};
  for (int i = 0; i < 40; ++i) {
    const unsigned rd = static_cast<unsigned>(rng.below(7));
    const unsigned rn = static_cast<unsigned>(rng.below(7));
    const unsigned rm = static_cast<unsigned>(rng.below(7));
    switch (rng.below(6)) {
      case 0:
      case 1: {
        const char* op = alu_ops[rng.below(6)];
        const char* s = rng.chance(1, 3) ? "s" : "";
        src += "        " + std::string(op) + s + " r" + std::to_string(rd) +
               ", r" + std::to_string(rn) + ", r" + std::to_string(rm) + "\n";
        break;
      }
      case 2: {
        const unsigned sh = static_cast<unsigned>(rng.below(31) + 1);
        src += "        add r" + std::to_string(rd) + ", r" + std::to_string(rn) +
               ", r" + std::to_string(rm) + ", lsl #" + std::to_string(sh) + "\n";
        break;
      }
      case 3:
        if (rd != rm) {
          src += "        mul r" + std::to_string(rd) + ", r" +
                 std::to_string(rm) + ", r" + std::to_string(rn) + "\n";
        }
        break;
      case 4: {
        const unsigned off = static_cast<unsigned>(rng.below(16)) * 4;
        src += "        str r" + std::to_string(rd) + ", [r7, #" +
               std::to_string(off) + "]\n";
        break;
      }
      case 5: {
        const unsigned off = static_cast<unsigned>(rng.below(16)) * 4;
        src += "        ldr r" + std::to_string(rd) + ", [r7, #" +
               std::to_string(off) + "]\n";
        break;
      }
    }
  }
  // Fold everything into r0 and report.
  src += R"(
        eor r0, r0, r1
        eor r0, r0, r2
        eor r0, r0, r3
        eor r0, r0, r4
        eor r0, r0, r5
        eor r0, r0, r6
        swi 3
        swi 5
        mov r0, #0
        swi 0
        .ltorg
buf:    .space 64
)";
  return src;
}

class FuzzCosim : public ::testing::TestWithParam<int> {};

TEST_P(FuzzCosim, StrongArmMatchesIssOnRandomPrograms) {
  const auto prog = arm::assemble(random_program(1000 + GetParam())).program;
  StrongArmSim sim;
  expect_cosim(sim, prog, "fuzz-sa");
}

TEST_P(FuzzCosim, XScaleMatchesIssOnRandomPrograms) {
  const auto prog = arm::assemble(random_program(2000 + GetParam())).program;
  XScaleSim sim;
  expect_cosim(sim, prog, "fuzz-xs");
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCosim, ::testing::Range(0, 12));

// Regression: a simulator instance must be reusable across programs (the
// benchmark harness runs all six workloads through one instance). This once
// crashed: load_program cleared the decode cache while the engine still held
// tokens from the previous run.
TEST(SimReuse, BackToBackProgramsMatchFreshSimulators) {
  StrongArmSim reused;
  for (const char* name : {"crc", "g721", "go"}) {
    const workloads::Workload* w = workloads::find(name);
    const sys::Program prog = workloads::build(*w, w->test_scale);
    const RunResult shared = reused.run(prog);
    StrongArmSim fresh;
    const RunResult expect = fresh.run(prog);
    EXPECT_EQ(shared.output, expect.output) << name;
    EXPECT_EQ(shared.cycles, expect.cycles) << name;
  }
}

TEST(SimReuse, XScaleBackToBack) {
  XScaleSim reused;
  for (const char* name : {"adpcm", "blowfish"}) {
    const workloads::Workload* w = workloads::find(name);
    const sys::Program prog = workloads::build(*w, w->test_scale);
    const RunResult shared = reused.run(prog);
    XScaleSim fresh;
    const RunResult expect = fresh.run(prog);
    EXPECT_EQ(shared.output, expect.output) << name;
    EXPECT_EQ(shared.cycles, expect.cycles) << name;
  }
}

}  // namespace
}  // namespace rcpn::machines
