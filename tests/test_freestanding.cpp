// Four-way differential harness over the golden workloads: for every machine,
// the *same* fixed workload runs on
//
//   1. the interpreted engine (core::Engine, in-process),
//   2. the compiled engine (gen::CompiledEngine, in-process),
//   3. the generated engine (gen::StaticEngine from the emitted no-main TUs
//      linked into this binary),
//   4. the freestanding binary (gen_fs_<key>, a single emitted TU compiled
//      with zero repo includes and no library objects — spawned as a child
//      process),
//
// and every pair must agree on the full cycle-stamped retire trace (diffed
// with first-diverging-cycle reporting, reusing the golden_runner diff) and
// on the engine statistics. The checked-in tests/golden/*.trace files pin
// the absolute behaviour; the four-way comparison pins that no backend — in
// particular the freestanding artifact, whose whole runtime is an inlined
// copy — can drift from the others.
//
// Leg 3 needs the generated TUs (RCPN_GENERATED_SIMS=ON defines
// RCPN_HAVE_GENERATED); leg 4 additionally needs the emitted gen_fs_*
// binaries, which require the embedded source table (RCPN_NO_EMBED=OFF
// defines RCPN_HAVE_FS_BINARIES). Builds without either run only legs 1-2.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <sys/wait.h>

#include "gen/generated.hpp"
#include "machines/golden_runner.hpp"
#include "machines/simple_pipeline.hpp"
#include "machines/stallcause.hpp"
#include "model/simulator.hpp"

namespace rcpn {
namespace {

using machines::GoldenRunResult;

core::EngineOptions options_for(core::Backend backend) {
  core::EngineOptions o;
  o.backend = backend;
  return o;
}

void expect_traces_equal(const std::string& key, const std::string& what,
                         const GoldenRunResult& a, const GoldenRunResult& b) {
  const std::string diff = machines::diff_golden_traces(a.trace, b.trace);
  EXPECT_TRUE(diff.empty()) << key << " " << what << ": " << diff;
}

void expect_stats_equal(const std::string& key, const std::string& what,
                        const core::Stats& a, const core::Stats& b) {
  EXPECT_EQ(a.cycles, b.cycles) << key << " " << what;
  EXPECT_EQ(a.retired, b.retired) << key << " " << what;
  EXPECT_EQ(a.fetched, b.fetched) << key << " " << what;
  EXPECT_EQ(a.squashed, b.squashed) << key << " " << what;
  EXPECT_EQ(a.reservations, b.reservations) << key << " " << what;
  EXPECT_EQ(a.firings, b.firings) << key << " " << what;
  EXPECT_EQ(a.quiesced_cycles, b.quiesced_cycles) << key << " " << what;
  EXPECT_EQ(a.transition_fires, b.transition_fires) << key << " " << what;
  EXPECT_EQ(a.place_stalls, b.place_stalls) << key << " " << what;
  EXPECT_EQ(a.place_stall_causes, b.place_stall_causes) << key << " " << what;
}

#ifdef RCPN_HAVE_FS_BINARIES
/// Run `cmd`, capture stdout+stderr (a failing binary's verification or
/// divergence message must reach the assertion output); returns the process
/// exit code (-1 on spawn failure).
int run_capture(const std::string& cmd, std::string& out) {
  out.clear();
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return -1;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) out.append(buf, n);
  const int status = pclose(pipe);
  if (status < 0 || !WIFEXITED(status)) return -1;  // signal death != exit 0
  return WEXITSTATUS(status);
}
#endif

class FourWay : public ::testing::TestWithParam<const char*> {};

TEST_P(FourWay, InProcessBackendsAndGoldenAgree) {
  const std::string key = GetParam();
  const GoldenRunResult interp =
      machines::run_golden_machine_full(key, options_for(core::Backend::interpreted));
  ASSERT_FALSE(interp.trace.empty()) << key;

  // The checked-in golden trace is the absolute reference.
  std::vector<machines::GoldenRetireEvent> golden;
  ASSERT_TRUE(machines::load_golden_trace(std::string(RCPN_GOLDEN_DIR) + "/" + key +
                                              ".trace",
                                          golden))
      << key << ": missing golden file (RCPN_REGEN_GOLDEN=1 regenerates)";
  const std::string gdiff = machines::diff_golden_traces(golden, interp.trace);
  EXPECT_TRUE(gdiff.empty()) << key << " interpreted vs golden file: " << gdiff;

  const GoldenRunResult comp =
      machines::run_golden_machine_full(key, options_for(core::Backend::compiled));
  expect_traces_equal(key, "interpreted vs compiled", interp, comp);
  expect_stats_equal(key, "interpreted vs compiled", interp.stats, comp.stats);

#ifdef RCPN_HAVE_GENERATED
  ASSERT_NE(gen::find_generated_engine(machines::golden_model_name(key)), nullptr)
      << key << ": generated TU not registered despite being linked in";
  const GoldenRunResult genr =
      machines::run_golden_machine_full(key, options_for(core::Backend::generated));
  expect_traces_equal(key, "interpreted vs generated", interp, genr);
  expect_stats_equal(key, "interpreted vs generated", interp.stats, genr.stats);
#endif
}

TEST_P(FourWay, FreestandingBinaryMatchesInProcess) {
#ifndef RCPN_HAVE_FS_BINARIES
  GTEST_SKIP() << "no freestanding binaries in this build "
                  "(RCPN_GENERATED_SIMS=OFF or RCPN_NO_EMBED=ON)";
#else
  const std::string key = GetParam();
  const std::string bin = std::string(RCPN_BIN_DIR) + "/gen_fs_" + key;
  struct stat st{};
  ASSERT_EQ(::stat(bin.c_str(), &st), 0)
      << bin << " missing — build the gen_fs_* targets first";

  std::string out;
  const int rc = run_capture(bin + " --stats", out);
  ASSERT_EQ(rc, 0) << bin << " exited with " << rc << "\n" << out;

  std::vector<machines::GoldenRetireEvent> fs_trace;
  ASSERT_TRUE(machines::parse_golden_trace(out, fs_trace)) << out;
  core::Stats fs_stats;
  ASSERT_TRUE(machines::parse_golden_stats(out, fs_stats)) << out;

  const GoldenRunResult interp =
      machines::run_golden_machine_full(key, options_for(core::Backend::interpreted));
  const std::string diff = machines::diff_golden_traces(interp.trace, fs_trace);
  EXPECT_TRUE(diff.empty()) << key << " interpreted vs freestanding binary: " << diff;
  EXPECT_EQ(interp.stats.cycles, fs_stats.cycles) << key;
  EXPECT_EQ(interp.stats.retired, fs_stats.retired) << key;
  EXPECT_EQ(interp.stats.fetched, fs_stats.fetched) << key;
  EXPECT_EQ(interp.stats.squashed, fs_stats.squashed) << key;
  EXPECT_EQ(interp.stats.reservations, fs_stats.reservations) << key;
  EXPECT_EQ(interp.stats.firings, fs_stats.firings) << key;

  // The freestanding binary prints its stall-cause breakdown as
  // `# stallcause ...` comment lines; it must match the in-process
  // attribution counter for counter.
  std::vector<std::uint64_t> fs_causes;
  ASSERT_TRUE(machines::parse_stall_causes(
      out, static_cast<unsigned>(interp.stats.place_stalls.size()), fs_causes))
      << out;
  EXPECT_EQ(interp.stats.place_stall_causes, fs_causes)
      << key << " interpreted vs freestanding stall causes";
#endif
}

INSTANTIATE_TEST_SUITE_P(AllMachines, FourWay,
                         ::testing::Values("fig2", "fig5", "tomasulo", "strongarm_crc",
                                           "xscale_adpcm", "stallcause"),
                         [](const auto& info) { return std::string(info.param); });

// The stallcause workload is built so that a worker token in PA is rejected
// by BOTH of its candidates in the same cycle for different causes: the
// priority-0 move is capacity-blocked by the parked token in PB, then the
// priority-1 escape is guard-rejected. The attribution contract is
// last-candidate-wins, so PA must show only guard_rejected — an
// implementation that recorded the first candidate's cause would show the
// exact opposite split. (The FourWay stats comparison above already pins
// that every backend agrees on these numbers.)
TEST(StallCauseAttribution, LastCandidateWinsOnDualRejection) {
  const GoldenRunResult r = machines::run_golden_machine_full(
      "stallcause", options_for(core::Backend::interpreted));
  core::EngineOptions opts = options_for(core::Backend::interpreted);
  machines::StallCauseModel probe(0, opts);
  const unsigned pa = static_cast<unsigned>(probe.pa());
  const unsigned pb = static_cast<unsigned>(probe.pb());
  const auto cause = [&](unsigned place, core::StallCause c) {
    return r.stats.place_stall_causes[place * core::kNumStallCauses +
                                      static_cast<unsigned>(c)];
  };
  // PA: both candidates rejected each stall cycle; the guard (last) wins.
  EXPECT_GT(cause(pa, core::StallCause::guard_rejected), 0u);
  EXPECT_EQ(cause(pa, core::StallCause::capacity_backpressure), 0u);
  EXPECT_EQ(cause(pa, core::StallCause::no_ready_token), 0u);
  // PB: the parker's only candidate is its guarded exit.
  EXPECT_GT(cause(pb, core::StallCause::guard_rejected), 0u);
}

// Quiescence skipping is an execution shortcut, not a semantic change: with
// the knob on, every backend must produce the identical retire trace and the
// identical cycle count (skipped cycles are accounted, not elided from the
// stats). The generated leg runs from the quiesce-variant TU linked into
// this binary (its own options key in the registry).
TEST(QuiescenceSkip, TraceAndStatsInvariantAcrossBackends) {
  const std::string key = "strongarm_crc";
  const GoldenRunResult base =
      machines::run_golden_machine_full(key, options_for(core::Backend::interpreted));

  std::vector<core::Backend> backends = {core::Backend::interpreted,
                                         core::Backend::compiled};
#ifdef RCPN_HAVE_GENERATED
  backends.push_back(core::Backend::generated);
#endif
  for (const core::Backend b : backends) {
    core::EngineOptions opts = options_for(b);
    opts.quiescence_skip = true;
    const GoldenRunResult r = machines::run_golden_machine_full(key, opts);
    const std::string what = "quiescence-on backend " +
                             std::to_string(static_cast<int>(b)) + " vs baseline";
    expect_traces_equal(key, what, base, r);
    EXPECT_EQ(base.stats.cycles, r.stats.cycles) << key << " " << what;
    EXPECT_EQ(base.stats.retired, r.stats.retired) << key << " " << what;
    EXPECT_EQ(base.stats.firings, r.stats.firings) << key << " " << what;
    EXPECT_EQ(base.stats.transition_fires, r.stats.transition_fires)
        << key << " " << what;
  }
}

#ifdef RCPN_HAVE_GENERATED

// The registry keys generated engines by (model, schedule options): asking
// for an ablation variant whose TU is not linked in is a ModelError naming
// the options, never a silent fall-through to the default-schedule artifact.
TEST(GeneratedVariants, MissingVariantIsAModelError) {
  core::EngineOptions opts;
  opts.backend = core::Backend::generated;
  opts.force_two_list_all = true;
  try {
    machines::SimplePipeline sim(8, opts);
    FAIL() << "Backend::generated accepted an unregistered ablation variant";
  } catch (const model::ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("force_two_list_all"), std::string::npos)
        << e.what();
  }
}

// A generated engine refuses to *run* under options other than the ones its
// tables were emitted for (the stamped-options verification), instead of
// silently simulating a different schedule.
TEST(GeneratedVariants, WrongOptionsAtBuildTimeThrow) {
  core::EngineOptions opts;
  opts.backend = core::Backend::generated;
  machines::SimplePipeline sim(8, opts);  // default schedule: registered, fine
  sim.engine().options().force_two_list_all = true;
  try {
    sim.engine().build();
    FAIL() << "StaticEngine::build() accepted mismatched EngineOptions";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("EngineOptions"), std::string::npos)
        << e.what();
  }
}

#endif  // RCPN_HAVE_GENERATED

}  // namespace
}  // namespace rcpn
