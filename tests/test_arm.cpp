// ARM ISA tests: decode classification (the paper's six operation classes),
// encode/decode round trips, shifter/ALU/flag semantics, addressing modes,
// condition codes and multiply timing.
#include <gtest/gtest.h>

#include "arm/arm_isa.hpp"
#include "arm/disassembler.hpp"
#include "arm/encode.hpp"
#include "util/rng.hpp"

namespace rcpn::arm {
namespace {

TEST(Decode, SixOperationClasses) {
  // One representative per class, as in the paper's ARM7 model.
  EXPECT_EQ(decode(enc::dataproc_imm(Cond::al, DpOp::add, false, 0, 1, 5), 0).cls,
            OpClass::data_proc);
  EXPECT_EQ(decode(enc::mul(Cond::al, false, 0, 1, 2), 0).cls, OpClass::multiply);
  EXPECT_EQ(decode(enc::ldr_str_imm(Cond::al, true, false, 0, 1, 4, true, false), 0).cls,
            OpClass::load_store);
  EXPECT_EQ(decode(enc::ldm_stm(Cond::al, true, false, true, true, 13, 0x00F0), 0).cls,
            OpClass::load_store_multiple);
  EXPECT_EQ(decode(enc::branch(Cond::al, false, 8), 0).cls, OpClass::branch);
  EXPECT_EQ(decode(enc::swi(Cond::al, 3), 0).cls, OpClass::swi);
}

TEST(Decode, DataProcFields) {
  const auto d = decode(enc::dataproc_reg(Cond::ne, DpOp::eor, true, 3, 4, 5,
                                          ShiftKind::lsr, 7),
                        0x8000);
  EXPECT_EQ(d.cond, Cond::ne);
  EXPECT_EQ(d.dp_op, DpOp::eor);
  EXPECT_TRUE(d.sets_flags);
  EXPECT_EQ(d.rd, 3);
  EXPECT_EQ(d.rn, 4);
  EXPECT_EQ(d.rm, 5);
  EXPECT_EQ(d.shift, ShiftKind::lsr);
  EXPECT_EQ(d.shift_amount, 7);
  EXPECT_FALSE(d.shift_by_reg);
}

TEST(Decode, RotatedImmediateExpanded) {
  const auto enc12 = enc::encode_imm(0xFF000000);
  ASSERT_TRUE(enc12.has_value());
  const auto d =
      decode(enc::dataproc_imm(Cond::al, DpOp::mov, false, 0, 0, *enc12), 0);
  EXPECT_TRUE(d.imm_operand);
  EXPECT_EQ(d.imm, 0xFF000000u);
  EXPECT_TRUE(d.imm_carry_valid);
  EXPECT_TRUE(d.imm_carry);
}

TEST(Decode, MovToPcIsBranchClass) {
  // mov pc, lr must route to the Branch sub-net (control transfer).
  const auto d = decode(
      enc::dataproc_reg(Cond::al, DpOp::mov, false, kRegPc, 0, kRegLr,
                        ShiftKind::lsl, 0),
      0);
  EXPECT_EQ(d.cls, OpClass::branch);
  EXPECT_TRUE(d.branch_via_reg);
}

TEST(Decode, CompareHasNoDestination) {
  const auto d = decode(enc::dataproc_imm(Cond::al, DpOp::cmp, true, 0, 2, 9), 0);
  EXPECT_EQ(d.rd, kNumRegs);
  EXPECT_FALSE(d.writes_rd());
  EXPECT_TRUE(d.sets_flags);
}

TEST(Decode, BranchOffsetSignExtended) {
  const auto fwd = decode(enc::branch(Cond::al, false, 0x1000), 0x8000);
  EXPECT_EQ(fwd.branch_offset, 0x1000);
  const auto bwd = decode(enc::branch(Cond::lt, true, -64), 0x8000);
  EXPECT_EQ(bwd.branch_offset, -64);
  EXPECT_TRUE(bwd.link);
  EXPECT_EQ(bwd.cond, Cond::lt);
}

TEST(Decode, UnknownEncodingTrapsAsSwi) {
  const auto d = decode(0xE7000010, 0);  // media/undefined space
  EXPECT_EQ(d.cls, OpClass::swi);
  EXPECT_EQ(d.swi_imm, 0xdead00u);
}

TEST(Decode, RandomRoundTripThroughDisassembler) {
  // decode(encode(x)) must preserve the semantic fields for a spread of
  // random but valid encodings.
  util::Xorshift64 rng(1234);
  for (int i = 0; i < 500; ++i) {
    const auto op = static_cast<DpOp>(rng.below(16));
    const unsigned rd = dp_no_result(op) ? 0 : static_cast<unsigned>(rng.below(13));
    const unsigned rn = static_cast<unsigned>(rng.below(13));
    const unsigned rm = static_cast<unsigned>(rng.below(13));
    const auto shift = static_cast<ShiftKind>(rng.below(4));
    const unsigned amount = static_cast<unsigned>(rng.below(31) + 1);
    const bool s = rng.chance(1, 2);
    const std::uint32_t raw = enc::dataproc_reg(Cond::al, op, s, rd, rn, rm,
                                                shift, amount);
    const auto d = decode(raw, 0);
    EXPECT_EQ(d.dp_op, op);
    EXPECT_EQ(d.sets_flags, s);
    if (!dp_no_result(op)) {
      EXPECT_EQ(d.rd, rd);
    }
    if (!dp_no_rn(op)) {
      EXPECT_EQ(d.rn, rn);
    }
    EXPECT_EQ(d.rm, rm);
    EXPECT_EQ(d.shift, shift);
    EXPECT_EQ(d.shift_amount, amount);
    EXPECT_FALSE(disassemble(d).empty());
  }
}

TEST(EncodeImm, KnownCases) {
  EXPECT_EQ(enc::encode_imm(0).value(), 0u);
  EXPECT_EQ(enc::encode_imm(255).value(), 255u);
  EXPECT_TRUE(enc::encode_imm(0x400).has_value());       // 1 << 10
  EXPECT_TRUE(enc::encode_imm(0xFF000000).has_value());
  EXPECT_FALSE(enc::encode_imm(0x101).has_value());
  EXPECT_FALSE(enc::encode_imm(0xFFFFFFFF).has_value());
}

TEST(EncodeImm, RoundTripThroughDecode) {
  util::Xorshift64 rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t v = static_cast<std::uint32_t>(rng.below(256))
                            << (2 * rng.below(16));
    const auto enc12 = enc::encode_imm(v);
    ASSERT_TRUE(enc12.has_value()) << v;
    const auto d =
        decode(enc::dataproc_imm(Cond::al, DpOp::mov, false, 1, 0, *enc12), 0);
    EXPECT_EQ(d.imm, v);
  }
}

// -- condition codes -----------------------------------------------------------

TEST(CondPass, AllSixteenConditions) {
  const std::uint32_t N = kFlagN, Z = kFlagZ, C = kFlagC, V = kFlagV;
  EXPECT_TRUE(cond_pass(Cond::eq, Z));
  EXPECT_FALSE(cond_pass(Cond::eq, 0));
  EXPECT_TRUE(cond_pass(Cond::ne, 0));
  EXPECT_TRUE(cond_pass(Cond::cs, C));
  EXPECT_TRUE(cond_pass(Cond::cc, 0));
  EXPECT_TRUE(cond_pass(Cond::mi, N));
  EXPECT_TRUE(cond_pass(Cond::pl, 0));
  EXPECT_TRUE(cond_pass(Cond::vs, V));
  EXPECT_TRUE(cond_pass(Cond::vc, 0));
  EXPECT_TRUE(cond_pass(Cond::hi, C));
  EXPECT_FALSE(cond_pass(Cond::hi, C | Z));
  EXPECT_TRUE(cond_pass(Cond::ls, Z));
  EXPECT_TRUE(cond_pass(Cond::ge, N | V));
  EXPECT_TRUE(cond_pass(Cond::ge, 0));
  EXPECT_TRUE(cond_pass(Cond::lt, N));
  EXPECT_TRUE(cond_pass(Cond::lt, V));
  EXPECT_TRUE(cond_pass(Cond::gt, 0));
  EXPECT_FALSE(cond_pass(Cond::gt, Z));
  EXPECT_TRUE(cond_pass(Cond::le, Z));
  EXPECT_TRUE(cond_pass(Cond::al, 0));
  EXPECT_FALSE(cond_pass(Cond::nv, N | Z | C | V));
}

// -- shifter semantics -----------------------------------------------------------

DecodedInstruction reg_shift(ShiftKind k, unsigned amount, bool by_reg = false) {
  DecodedInstruction d;
  d.imm_operand = false;
  d.shift = k;
  d.shift_amount = static_cast<std::uint8_t>(amount);
  d.shift_by_reg = by_reg;
  return d;
}

TEST(Shifter, LslBasics) {
  EXPECT_EQ(eval_shifter(reg_shift(ShiftKind::lsl, 4), 0x1, 0, false).value, 0x10u);
  // Carry = last bit shifted out.
  EXPECT_TRUE(eval_shifter(reg_shift(ShiftKind::lsl, 1), 0x80000000, 0, false).carry);
  EXPECT_FALSE(eval_shifter(reg_shift(ShiftKind::lsl, 1), 0x1, 0, false).carry);
}

TEST(Shifter, LsrImmediateZeroMeans32) {
  const auto out = eval_shifter(reg_shift(ShiftKind::lsr, 0), 0x80000000, 0, false);
  EXPECT_EQ(out.value, 0u);
  EXPECT_TRUE(out.carry);  // bit 31
}

TEST(Shifter, AsrSignFill) {
  EXPECT_EQ(eval_shifter(reg_shift(ShiftKind::asr, 4), 0x80000000, 0, false).value,
            0xF8000000u);
  // ASR #32 (encoded 0): all sign.
  EXPECT_EQ(eval_shifter(reg_shift(ShiftKind::asr, 0), 0x80000000, 0, false).value,
            0xFFFFFFFFu);
}

TEST(Shifter, RorAndRrx) {
  EXPECT_EQ(eval_shifter(reg_shift(ShiftKind::ror, 8), 0x000000FF, 0, false).value,
            0xFF000000u);
  const auto rrx = eval_shifter(reg_shift(ShiftKind::rrx, 0), 0x3, 0, /*carry*/ true);
  EXPECT_EQ(rrx.value, 0x80000001u);
  EXPECT_TRUE(rrx.carry);
}

TEST(Shifter, RegisterShiftAmountZeroKeepsCarry) {
  const auto out =
      eval_shifter(reg_shift(ShiftKind::lsl, 0, /*by_reg=*/true), 0xFF, /*rs=*/0, true);
  EXPECT_EQ(out.value, 0xFFu);
  EXPECT_TRUE(out.carry);
}

TEST(Shifter, RegisterShiftOver31) {
  auto d = reg_shift(ShiftKind::lsl, 0, true);
  EXPECT_EQ(eval_shifter(d, 0xFF, 32, false).value, 0u);
  EXPECT_EQ(eval_shifter(d, 0xFF, 33, false).value, 0u);
  EXPECT_FALSE(eval_shifter(d, 0xFF, 33, false).carry);
}

// -- ALU semantics -----------------------------------------------------------

DecodedInstruction dp(DpOp op, std::uint32_t imm, bool s = true) {
  DecodedInstruction d;
  d.cls = OpClass::data_proc;
  d.dp_op = op;
  d.sets_flags = s;
  d.imm_operand = true;
  d.imm = imm;
  return d;
}

TEST(DataProc, AddSetsCarryAndOverflow) {
  auto out = exec_dataproc(dp(DpOp::add, 1), 0xFFFFFFFF, 0, 0, 0);
  EXPECT_EQ(out.result, 0u);
  EXPECT_TRUE(out.nzcv & kFlagZ);
  EXPECT_TRUE(out.nzcv & kFlagC);
  EXPECT_FALSE(out.nzcv & kFlagV);

  out = exec_dataproc(dp(DpOp::add, 1), 0x7FFFFFFF, 0, 0, 0);
  EXPECT_EQ(out.result, 0x80000000u);
  EXPECT_TRUE(out.nzcv & kFlagN);
  EXPECT_TRUE(out.nzcv & kFlagV);
}

TEST(DataProc, SubBorrowSemantics) {
  // ARM: C is NOT-borrow.
  auto out = exec_dataproc(dp(DpOp::sub, 3), 5, 0, 0, 0);
  EXPECT_EQ(out.result, 2u);
  EXPECT_TRUE(out.nzcv & kFlagC);
  out = exec_dataproc(dp(DpOp::sub, 5), 3, 0, 0, 0);
  EXPECT_EQ(out.result, 0xFFFFFFFEu);
  EXPECT_FALSE(out.nzcv & kFlagC);
  EXPECT_TRUE(out.nzcv & kFlagN);
}

TEST(DataProc, AdcSbcUseCarryIn) {
  EXPECT_EQ(exec_dataproc(dp(DpOp::adc, 10), 5, 0, 0, kFlagC).result, 16u);
  EXPECT_EQ(exec_dataproc(dp(DpOp::adc, 10), 5, 0, 0, 0).result, 15u);
  EXPECT_EQ(exec_dataproc(dp(DpOp::sbc, 3), 10, 0, 0, kFlagC).result, 7u);
  EXPECT_EQ(exec_dataproc(dp(DpOp::sbc, 3), 10, 0, 0, 0).result, 6u);
}

TEST(DataProc, RsbReverses) {
  EXPECT_EQ(exec_dataproc(dp(DpOp::rsb, 10), 3, 0, 0, 0).result, 7u);
}

TEST(DataProc, LogicalOpsPreserveV) {
  const auto out = exec_dataproc(dp(DpOp::and_, 0xF0), 0xFF, 0, 0, kFlagV);
  EXPECT_EQ(out.result, 0xF0u);
  EXPECT_TRUE(out.nzcv & kFlagV);  // V untouched by logical ops
}

TEST(DataProc, MovMvnBicOrrEor) {
  EXPECT_EQ(exec_dataproc(dp(DpOp::mov, 0xAB), 0, 0, 0, 0).result, 0xABu);
  EXPECT_EQ(exec_dataproc(dp(DpOp::mvn, 0), 0, 0, 0, 0).result, 0xFFFFFFFFu);
  EXPECT_EQ(exec_dataproc(dp(DpOp::bic, 0x0F), 0xFF, 0, 0, 0).result, 0xF0u);
  EXPECT_EQ(exec_dataproc(dp(DpOp::orr, 0x0F), 0xF0, 0, 0, 0).result, 0xFFu);
  EXPECT_EQ(exec_dataproc(dp(DpOp::eor, 0xFF), 0x0F, 0, 0, 0).result, 0xF0u);
}

TEST(DataProc, ComparesOnlySetFlags) {
  const auto out = exec_dataproc(dp(DpOp::cmp, 5), 5, 0, 0, 0);
  EXPECT_FALSE(out.writes_rd);
  EXPECT_TRUE(out.writes_flags);
  EXPECT_TRUE(out.nzcv & kFlagZ);
}

TEST(Multiply, MulAndMla) {
  DecodedInstruction d;
  d.cls = OpClass::multiply;
  EXPECT_EQ(exec_mul(d, 6, 7, 0, 0).result, 42u);
  d.accumulate = true;
  EXPECT_EQ(exec_mul(d, 6, 7, 100, 0).result, 142u);
}

TEST(Multiply, EarlyTerminationCycles) {
  EXPECT_EQ(mul_extra_cycles(0x00000012), 0u);
  EXPECT_EQ(mul_extra_cycles(0xFFFFFFF0), 0u);  // small negative
  EXPECT_EQ(mul_extra_cycles(0x00001234), 1u);
  EXPECT_EQ(mul_extra_cycles(0x00123456), 2u);
  EXPECT_EQ(mul_extra_cycles(0x12345678), 3u);
}

// -- addressing --------------------------------------------------------------

TEST(LsAddress, PreIndexedImmediate) {
  auto d = decode(enc::ldr_str_imm(Cond::al, true, false, 0, 1, 8, true, false), 0);
  const auto a = ls_address(d, 0x1000, 0, 0);
  EXPECT_EQ(a.ea, 0x1008u);
  EXPECT_FALSE(a.rn_writeback);
}

TEST(LsAddress, PreIndexedWritebackNegative) {
  auto d = decode(enc::ldr_str_imm(Cond::al, true, false, 0, 1, -8, true, true), 0);
  const auto a = ls_address(d, 0x1000, 0, 0);
  EXPECT_EQ(a.ea, 0xFF8u);
  EXPECT_TRUE(a.rn_writeback);
  EXPECT_EQ(a.rn_after, 0xFF8u);
}

TEST(LsAddress, PostIndexedAlwaysWritesBack) {
  auto d = decode(enc::ldr_str_imm(Cond::al, true, false, 0, 1, 4, false, false), 0);
  const auto a = ls_address(d, 0x1000, 0, 0);
  EXPECT_EQ(a.ea, 0x1000u);
  EXPECT_TRUE(a.rn_writeback);
  EXPECT_EQ(a.rn_after, 0x1004u);
}

TEST(LsAddress, ScaledRegisterOffset) {
  auto d = decode(enc::ldr_str_reg(Cond::al, true, false, 0, 1, 2, ShiftKind::lsl, 2,
                                   true, true, false),
                  0);
  const auto a = ls_address(d, 0x1000, /*rm=*/5, 0);
  EXPECT_EQ(a.ea, 0x1000u + 20u);
}

TEST(LsmPlanTest, IncrementAfter) {
  DecodedInstruction d;
  d.reg_list = 0b10110;  // r1, r2, r4
  d.lsm_up = true;
  d.lsm_before = false;
  const auto plan = lsm_plan(d, 0x1000);
  EXPECT_EQ(plan.count, 3u);
  EXPECT_EQ(plan.start, 0x1000u);
  EXPECT_EQ(plan.rn_after, 0x100Cu);
}

TEST(LsmPlanTest, DecrementBeforeIsFullDescendingPush) {
  DecodedInstruction d;
  d.reg_list = 0b110;  // r1, r2
  d.lsm_up = false;
  d.lsm_before = true;
  const auto plan = lsm_plan(d, 0x1000);
  EXPECT_EQ(plan.start, 0x0FF8u);
  EXPECT_EQ(plan.rn_after, 0x0FF8u);
}

TEST(Disassembler, RepresentativeMnemonics) {
  EXPECT_EQ(disassemble(enc::dataproc_imm(Cond::al, DpOp::add, false, 0, 1, 5), 0),
            "add r0, r1, #5");
  EXPECT_EQ(disassemble(enc::mul(Cond::al, false, 2, 3, 4), 0), "mul r2, r3, r4");
  EXPECT_EQ(disassemble(enc::swi(Cond::al, 1), 0), "swi 1");
  EXPECT_EQ(
      disassemble(enc::ldr_str_imm(Cond::al, true, false, 0, 13, 4, true, false), 0),
      "ldr r0, [sp, #4]");
  EXPECT_EQ(disassemble(enc::ldm_stm(Cond::al, true, false, true, true, 13, 0x30), 0),
            "ldmia sp!, {r4-r5}");
}

}  // namespace
}  // namespace rcpn::arm
