// DecodeCache unit tests: fast-path/slow-path coherence under self-modifying
// code, in-flight clone chaining, and the reset_runtime staleness protocol.
#include <gtest/gtest.h>

#include "isa/decoder.hpp"

namespace rcpn::isa {
namespace {

// Factory that stamps the encoding into token.type so a returned token
// proves which raw it was decoded from (build_entry pre-sets pc/raw).
DecodeCache make_cache() {
  return DecodeCache([](DecodeCache::Entry& e) {
    e.token.type = static_cast<core::TypeId>(e.raw & 0x7fff);
  });
}

TEST(DecodeCache, HitReusesEntryAndResetsDynamicState) {
  DecodeCache dc = make_cache();
  core::InstructionToken* t0 = dc.get(0x100, 0xaa);
  t0->in_flight = true;
  t0->ready = 99;
  t0->in_flight = false;
  core::InstructionToken* t1 = dc.get(0x100, 0xaa);
  EXPECT_EQ(t0, t1);
  EXPECT_EQ(t1->ready, 0u);
  EXPECT_EQ(dc.stats().hits, 1u);
  EXPECT_EQ(dc.stats().misses, 1u);
}

TEST(DecodeCache, SmcRebuildDecodesNewEncoding) {
  DecodeCache dc = make_cache();
  EXPECT_EQ(dc.get(0x100, 0xaa)->type, 0xaa);
  core::InstructionToken* t = dc.get(0x100, 0xbb);
  EXPECT_EQ(t->type, 0xbb);
  EXPECT_EQ(t->raw, 0xbbu);
  EXPECT_EQ(dc.stats().rebuilds, 1u);
}

// Regression: an SMC write sequence A -> B -> A. The B rebuild reuses the
// Entry in place; if the direct-mapped fast slot keeps its old {pc, A}
// snapshot paired with that entry, the final get(pc, A) fast-hits the stale
// slot and returns the token decoded for B.
TEST(DecodeCache, SmcToggleBackToOldEncodingReturnsCorrectDecode) {
  DecodeCache dc = make_cache();
  EXPECT_EQ(dc.get(0x100, 0xaa)->type, 0xaa);
  EXPECT_EQ(dc.get(0x100, 0xbb)->type, 0xbb);  // rebuild A -> B
  core::InstructionToken* t = dc.get(0x100, 0xaa);  // restore A
  EXPECT_EQ(t->type, 0xaa);
  EXPECT_EQ(t->raw, 0xaau);
  EXPECT_EQ(dc.stats().rebuilds, 2u);
}

TEST(DecodeCache, InFlightCollisionChainsClone) {
  DecodeCache dc = make_cache();
  core::InstructionToken* t0 = dc.get(0x100, 0xaa);
  t0->in_flight = true;  // tight loop: same static instruction fetched again
  core::InstructionToken* t1 = dc.get(0x100, 0xaa);
  EXPECT_NE(t0, t1);
  EXPECT_EQ(t1->type, 0xaa);
  EXPECT_EQ(dc.stats().clones, 1u);
  t0->in_flight = false;
  EXPECT_EQ(dc.get(0x100, 0xaa), t0);  // head free again
}

TEST(DecodeCache, ResetRuntimeRebuildsFormerlyInFlightEntry) {
  DecodeCache dc = make_cache();
  core::InstructionToken* t0 = dc.get(0x100, 0xaa);
  t0->in_flight = true;  // run interrupted with the token in flight
  dc.reset_runtime();
  core::InstructionToken* t1 = dc.get(0x100, 0xaa);
  EXPECT_EQ(t1->type, 0xaa);
  EXPECT_FALSE(t1->in_flight);
  EXPECT_EQ(dc.stats().rebuilds, 1u);
  // The republished fast slot must serve the rebuilt entry, not re-rebuild.
  EXPECT_EQ(dc.get(0x100, 0xaa), t1);
  EXPECT_EQ(dc.stats().rebuilds, 1u);
}

TEST(DecodeCache, BypassDecodesFreshEveryTime) {
  DecodeCache dc = make_cache();
  dc.set_bypass(true);
  core::InstructionToken* t0 = dc.get(0x100, 0xaa);
  core::InstructionToken* t1 = dc.get(0x100, 0xaa);
  EXPECT_NE(t0, t1);
  EXPECT_EQ(dc.stats().misses, 2u);
  EXPECT_EQ(dc.stats().hits, 0u);
}

}  // namespace
}  // namespace rcpn::isa
