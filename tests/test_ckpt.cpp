// Checkpoint/restore with deterministic resume: the byte-equality contract.
//
// The contract under test: run-to-T + snapshot + restore-into-a-fresh-session
// + run-to-completion must be byte-identical — full formatted trace, stats
// line and stall-cause attribution — to the straight run, on every backend.
// The backend is deliberately NOT part of the snapshot identity (all dynamic
// state lives in the engine base), so a snapshot written under interpreted
// must restore into a compiled or generated(linked) session; the freestanding
// leg (gen_fs_* binaries, plus a freestanding binary restoring a checkpoint
// written by this linked build) rides behind RCPN_HAVE_FS_BINARIES.
//
// Alongside the six golden machines an 8-seed fuzz shard snapshots generated
// topologies at a seed-derived split point and restores them across backends
// — coverage on machines nobody curated.
//
// Everything else a checkpoint could silently get wrong is pinned as an
// error path: format-version, machine, model-digest, workload and
// options-signature mismatches must be rejected with a CkptError naming the
// offender (desc-style), truncated files must never half-restore, and
// quiescence-skip runs must be refused at save time (resuming would re-time
// the quiesced-cycle accounting).
//
// The reset oracle (the state-leak sweep): re-running a workload on an
// already-used simulator — via the machine load path or a bare
// Engine::reset() — must be byte-identical to a fresh construction. This is
// what makes restore-into-reused-context sound, and it pins that no hidden
// state (decode-cache runtime entries, quiesce latches, predictor or syscall
// residue) survives a reset.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#ifdef RCPN_HAVE_FS_BINARIES
#include <sys/stat.h>
#include <sys/wait.h>
#endif

#include "ckpt/snapshot.hpp"
#include "ckpt/state_io.hpp"
#include "machines/fig5_processor.hpp"
#include "machines/fuzz_model.hpp"
#include "machines/golden_runner.hpp"
#include "machines/simple_pipeline.hpp"
#include "machines/strongarm.hpp"
#include "machines/tomasulo.hpp"
#include "machines/xscale.hpp"
#include "obs/probe.hpp"

namespace rcpn {
namespace {

using machines::GoldenRunResult;

core::EngineOptions options_for(core::Backend backend) {
  core::EngineOptions o;
  o.backend = backend;
  return o;
}

/// The full observable output of a run, as the byte-equality contract defines
/// it: formatted trace + stats line + stall-cause attribution.
std::string formatted(const std::string& name, const GoldenRunResult& r) {
  return machines::format_golden_trace(name, r.trace) +
         machines::format_golden_stats(r.stats) +
         machines::format_stall_causes(r.stats);
}

/// Mid-run split points, chosen inside each machine's busy window (deep
/// enough that ARM machines carry in-flight loads, resolved branches and
/// decode-cache clones across the boundary).
std::uint64_t mid_cycle(const std::string& key) {
  if (key == "fig2") return 30;
  if (key == "fig5") return 7;
  if (key == "tomasulo") return 9;
  if (key == "stallcause") return 11;
  return 700;  // strongarm_crc / xscale_adpcm: mid-kernel
}

/// Snapshot machine `key` at cycle `t` under `write_backend`, restore into a
/// fresh session under `read_backend`, run to completion and demand byte
/// equality with the straight run.
void roundtrip_expect(const std::string& key, core::Backend write_backend,
                      core::Backend read_backend, std::uint64_t t) {
  const GoldenRunResult straight =
      machines::run_golden_machine_full(key, options_for(read_backend));
  ASSERT_FALSE(straight.trace.empty()) << key;

  auto writer = machines::make_golden_session(key, options_for(write_backend));
  writer->advance(t);
  const std::string snap = machines::write_checkpoint(*writer);

  auto reader = machines::make_golden_session(key, options_for(read_backend));
  machines::read_checkpoint(*reader, snap);
  const GoldenRunResult resumed = machines::finish_session(*reader);

  EXPECT_EQ(formatted(key, resumed), formatted(key, straight))
      << key << ": restore at cycle " << t << " diverged from the straight run";
}

class SnapshotRestore : public ::testing::TestWithParam<const char*> {};

TEST_P(SnapshotRestore, InterpretedRoundTrip) {
  const std::string key = GetParam();
  roundtrip_expect(key, core::Backend::interpreted, core::Backend::interpreted,
                   mid_cycle(key));
}

TEST_P(SnapshotRestore, CompiledRoundTrip) {
  const std::string key = GetParam();
  roundtrip_expect(key, core::Backend::compiled, core::Backend::compiled,
                   mid_cycle(key));
}

// Backend is not snapshot identity: a snapshot written by the interpreted
// engine restores into a compiled session (and stays byte-identical).
TEST_P(SnapshotRestore, InterpretedSnapshotRestoresIntoCompiled) {
  const std::string key = GetParam();
  roundtrip_expect(key, core::Backend::interpreted, core::Backend::compiled,
                   mid_cycle(key));
}

#ifdef RCPN_HAVE_GENERATED
TEST_P(SnapshotRestore, GeneratedRoundTrip) {
  const std::string key = GetParam();
  roundtrip_expect(key, core::Backend::generated, core::Backend::generated,
                   mid_cycle(key));
}

TEST_P(SnapshotRestore, CompiledSnapshotRestoresIntoGenerated) {
  const std::string key = GetParam();
  roundtrip_expect(key, core::Backend::compiled, core::Backend::generated,
                   mid_cycle(key));
}
#endif

// Two independent sessions advanced to the same cycle must serialize to the
// same bytes — snapshotting is a pure function of the run state.
TEST_P(SnapshotRestore, SnapshotIsDeterministic) {
  const std::string key = GetParam();
  const std::uint64_t t = mid_cycle(key);
  auto a = machines::make_golden_session(key, options_for(core::Backend::interpreted));
  auto b = machines::make_golden_session(key, options_for(core::Backend::interpreted));
  a->advance(t);
  b->advance(t);
  EXPECT_EQ(machines::write_checkpoint(*a), machines::write_checkpoint(*b)) << key;
}

INSTANTIATE_TEST_SUITE_P(AllMachines, SnapshotRestore,
                         ::testing::Values("fig2", "fig5", "tomasulo", "strongarm_crc",
                                           "xscale_adpcm", "stallcause"),
                         [](const auto& info) { return std::string(info.param); });

// -- boundary positions -------------------------------------------------------

// Snapshot before the first cycle: restoring a cycle-0 checkpoint replays
// the whole run.
TEST(SnapshotEdges, SnapshotBeforeFirstCycleReplaysWholeRun) {
  roundtrip_expect("fig5", core::Backend::interpreted, core::Backend::interpreted, 0);
}

// Snapshot after completion: the restored session has nothing left to run
// and its result is the finished run.
TEST(SnapshotEdges, SnapshotAfterCompletionRestoresFinishedRun) {
  const std::string key = "fig2";
  const GoldenRunResult straight =
      machines::run_golden_machine_full(key, options_for(core::Backend::interpreted));

  auto writer = machines::make_golden_session(key, options_for(core::Backend::interpreted));
  while (writer->advance(1000)) {
  }
  const std::string snap = machines::write_checkpoint(*writer);

  auto reader = machines::make_golden_session(key, options_for(core::Backend::interpreted));
  machines::read_checkpoint(*reader, snap);
  const GoldenRunResult resumed = machines::finish_session(*reader);
  EXPECT_EQ(formatted(key, resumed), formatted(key, straight));
}

// -- fuzz shard ---------------------------------------------------------------

// Eight generated topologies: snapshot the interpreted engine at a
// seed-derived split point inside the run, restore into a *compiled* session
// and demand byte equality with the straight compiled run. Loops, flushes,
// reservations and multi-issue fetch all cross the resume boundary here.
TEST(CkptFuzz, EightSeedSnapshotAtSeededCycleRestoresAcrossBackends) {
  for (unsigned seed = 9200; seed < 9208; ++seed) {
    const core::EngineOptions oi =
        machines::fuzz_options_for(seed, core::Backend::interpreted);
    const core::EngineOptions oc =
        machines::fuzz_options_for(seed, core::Backend::compiled);
    const GoldenRunResult straight = machines::golden_run_fuzz(seed, oc);
    ASSERT_FALSE(straight.trace.empty()) << "seed=" << seed;

    // Deterministic pseudo-random split point strictly inside the run.
    const std::uint64_t t =
        1 + (seed * 2654435761u) % (straight.stats.cycles > 1
                                        ? straight.stats.cycles - 1
                                        : 1);
    auto writer = machines::make_fuzz_session(seed, oi);
    writer->advance(t);
    const std::string snap = machines::write_checkpoint(*writer);

    auto reader = machines::make_fuzz_session(seed, oc);
    machines::read_checkpoint(*reader, snap);
    const GoldenRunResult resumed = machines::finish_session(*reader);

    const std::string name = machines::fuzz_model_name(seed);
    EXPECT_EQ(formatted(name, resumed), formatted(name, straight))
        << "seed=" << seed << " split at cycle " << t;
  }
}

// -- error paths --------------------------------------------------------------

std::string snapshot_of(const std::string& key, std::uint64_t t) {
  auto s = machines::make_golden_session(key, options_for(core::Backend::interpreted));
  s->advance(t);
  return machines::write_checkpoint(*s);
}

/// Replace the value of `field` ("digest=", ...) in the snapshot text with
/// `repl` (values end at the next space or newline).
std::string tamper(std::string text, const std::string& field, const std::string& repl) {
  const std::size_t pos = text.find(field);
  EXPECT_NE(pos, std::string::npos) << field;
  const std::size_t start = pos + field.size();
  const std::size_t end = text.find_first_of(" \n", start);
  return text.replace(start, end - start, repl);
}

void expect_rejects(const std::string& key, const std::string& snap,
                    const std::string& needle) {
  auto s = machines::make_golden_session(key, options_for(core::Backend::interpreted));
  try {
    machines::read_checkpoint(*s, snap);
    FAIL() << "restore accepted a snapshot that should be rejected (" << needle << ")";
  } catch (const ckpt::CkptError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
  }
}

TEST(CkptErrors, UnsupportedFormatVersionIsNamed) {
  std::string snap = snapshot_of("fig2", 10);
  snap.replace(0, snap.find('\n'), "rcpn-ckpt/2");
  expect_rejects("fig2", snap, "unsupported format");
}

TEST(CkptErrors, MachineMismatchNamesBothSides) {
  const std::string snap = snapshot_of("fig2", 10);
  auto s = machines::make_golden_session("stallcause",
                                         options_for(core::Backend::interpreted));
  try {
    machines::read_checkpoint(*s, snap);
    FAIL() << "restore accepted a snapshot of a different machine";
  } catch (const ckpt::CkptError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("machine mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("fig2"), std::string::npos) << what;
    EXPECT_NE(what.find("stallcause"), std::string::npos) << what;
  }
}

TEST(CkptErrors, ModelDigestMismatchIsNamed) {
  const std::string snap = tamper(snapshot_of("fig2", 10), "digest=", "deadbeef");
  expect_rejects("fig2", snap, "model digest mismatch");
}

TEST(CkptErrors, WorkloadMismatchIsNamed) {
  const std::string snap = tamper(snapshot_of("fig2", 10), "workload=", "golden-32");
  expect_rejects("fig2", snap, "workload mismatch");
}

TEST(CkptErrors, OptionsSignatureMismatchIsNamed) {
  const std::string snap = snapshot_of("fig2", 10);
  core::EngineOptions o = options_for(core::Backend::compiled);
  o.force_two_list_all = true;  // schedule flag: part of the options signature
  auto s = machines::make_golden_session("fig2", o);
  try {
    machines::read_checkpoint(*s, snap);
    FAIL() << "restore accepted a snapshot taken under different schedule options";
  } catch (const ckpt::CkptError& e) {
    EXPECT_NE(std::string(e.what()).find("options-signature mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST(CkptErrors, TruncatedSnapshotIsRejectedNotHalfRestored) {
  const std::string snap = snapshot_of("fig5", 7);
  for (const double frac : {0.25, 0.5, 0.9}) {
    const std::string cut = snap.substr(0, static_cast<std::size_t>(snap.size() * frac));
    auto s = machines::make_golden_session("fig5", options_for(core::Backend::interpreted));
    EXPECT_THROW(machines::read_checkpoint(*s, cut), ckpt::CkptError)
        << "truncated to " << frac;
  }
}

// Quiescence skipping re-times the quiesced-cycle accounting across a resume
// boundary, so snapshotting such a run is refused up front — at save, with
// the reason in the message — rather than producing a checkpoint that
// silently violates byte equality.
TEST(CkptErrors, QuiescenceSkipRunsAreRefusedAtSave) {
  core::EngineOptions o = options_for(core::Backend::interpreted);
  o.quiescence_skip = true;
  auto s = machines::make_golden_session("strongarm_crc", o);
  s->advance(50);
  try {
    machines::write_checkpoint(*s);
    FAIL() << "save accepted a quiescence-skip run";
  } catch (const ckpt::CkptError& e) {
    EXPECT_NE(std::string(e.what()).find("quiescence_skip"), std::string::npos)
        << e.what();
  }
}

// -- obs stream equality (probes compiled in only) ----------------------------

// With a Hub attached on both sides, the restored run's event stream and
// profile must equal the straight observed run's — the obs state crosses the
// resume boundary too. In RCPN_OBS=OFF builds the probes are compiled out,
// so there is nothing to compare.
TEST(CkptObs, RestoredRunReplaysIdenticalEventStreamAndProfile) {
#if !RCPN_OBS
  GTEST_SKIP() << "observability probes not compiled in (RCPN_OBS=OFF)";
#else
  const std::string key = "fig5";
  obs::Hub hub_straight, hub_writer, hub_reader;

  core::EngineOptions os = options_for(core::Backend::interpreted);
  os.obs = &hub_straight;
  const GoldenRunResult straight = machines::run_golden_machine_full(key, os);

  core::EngineOptions ow = options_for(core::Backend::interpreted);
  ow.obs = &hub_writer;
  auto writer = machines::make_golden_session(key, ow);
  writer->advance(7);
  const std::string snap = machines::write_checkpoint(*writer);

  core::EngineOptions orr = options_for(core::Backend::interpreted);
  orr.obs = &hub_reader;
  auto reader = machines::make_golden_session(key, orr);
  machines::read_checkpoint(*reader, snap);
  const GoldenRunResult resumed = machines::finish_session(*reader);

  EXPECT_EQ(formatted(key, resumed), formatted(key, straight));
  const std::vector<obs::Event> es = hub_straight.sink().snapshot();
  const std::vector<obs::Event> er = hub_reader.sink().snapshot();
  ASSERT_EQ(es.size(), er.size());
  EXPECT_TRUE(es == er) << key << ": restored event stream diverges";
  EXPECT_TRUE(hub_reader.profile() == hub_straight.profile())
      << key << ": restored profile diverges";
#endif
}

// -- the reset oracle (state-leak sweep) --------------------------------------

/// Re-running the golden workload on an already-used simulator must be
/// byte-identical to a fresh construction — no hidden state survives the
/// machine's load path (decode-cache runtime entries, syscall capture,
/// predictor history) or the engine's reset.
template <typename Sim, typename Finish>
void reset_rerun_expect(const std::string& key, core::Backend backend, Sim& sim,
                        Finish finish) {
  (void)finish(sim);  // first run: dirties every piece of run state
  const GoldenRunResult again = finish(sim);
  const GoldenRunResult fresh =
      machines::run_golden_machine_full(key, options_for(backend));
  EXPECT_EQ(formatted(key, again), formatted(key, fresh))
      << key << " on backend " << static_cast<int>(backend)
      << ": rerun after reset diverged from a fresh run — state leaked";
}

TEST(ResetOracle, Fig5RerunEqualsFreshRun) {
  for (const auto backend : {core::Backend::interpreted, core::Backend::compiled}) {
    machines::Fig5Processor sim(options_for(backend));
    reset_rerun_expect("fig5", backend, sim,
                       [](auto& s) { return machines::golden_finish_fig5(s); });
  }
}

TEST(ResetOracle, TomasuloRerunEqualsFreshRun) {
  for (const auto backend : {core::Backend::interpreted, core::Backend::compiled}) {
    machines::TomasuloCore sim(4, 2, options_for(backend));
    reset_rerun_expect("tomasulo", backend, sim,
                       [](auto& s) { return machines::golden_finish_tomasulo(s); });
  }
}

TEST(ResetOracle, StrongArmRerunEqualsFreshRun) {
  for (const auto backend : {core::Backend::interpreted, core::Backend::compiled}) {
    machines::StrongArmConfig cfg;
    cfg.engine = options_for(backend);
    machines::StrongArmSim sim(cfg);
    reset_rerun_expect("strongarm_crc", backend, sim,
                       [](auto& s) { return machines::golden_finish_strongarm_crc(s); });
  }
}

TEST(ResetOracle, XScaleRerunEqualsFreshRun) {
  for (const auto backend : {core::Backend::interpreted, core::Backend::compiled}) {
    machines::XScaleConfig cfg;
    cfg.engine = options_for(backend);
    machines::XScaleSim sim(cfg);
    reset_rerun_expect("xscale_adpcm", backend, sim,
                       [](auto& s) { return machines::golden_finish_xscale_adpcm(s); });
  }
}

// A bare Engine::reset() (no machine load path in between) must scrub every
// engine-side latch — clock, in-flight accounting, activity snapshots, the
// quiesce-blocked latch, stats including the stall-cause tables.
TEST(ResetOracle, BareEngineResetClearsAllRunState) {
  for (const auto backend : {core::Backend::interpreted, core::Backend::compiled}) {
    machines::SimplePipeline sim(64, options_for(backend));
    (void)machines::golden_finish_fig2(sim);
    sim.engine().reset();
    sim.machine().generated = 0;  // the machine context's only mutable field
    const GoldenRunResult again = machines::golden_finish_fig2(sim);
    const GoldenRunResult fresh =
        machines::run_golden_machine_full("fig2", options_for(backend));
    EXPECT_EQ(formatted("fig2", again), formatted("fig2", fresh))
        << "backend " << static_cast<int>(backend)
        << ": Engine::reset() left residue behind";
  }
}

// Restore must also work into a *reused* session context: run a session to
// completion, then reuse its machine via a second fresh session — the pair
// (reset oracle + this) is what makes checkpoint branch-off exploration
// sound in long-lived processes.
TEST(ResetOracle, RestoreAfterPriorRunOnFreshSessionMatches) {
  const std::string key = "strongarm_crc";
  const GoldenRunResult straight =
      machines::run_golden_machine_full(key, options_for(core::Backend::interpreted));

  auto writer = machines::make_golden_session(key, options_for(core::Backend::interpreted));
  writer->advance(mid_cycle(key));
  const std::string snap = machines::write_checkpoint(*writer);

  // Dirty a full run first, then restore on a brand-new session.
  (void)machines::run_golden_machine_full(key, options_for(core::Backend::interpreted));
  auto reader = machines::make_golden_session(key, options_for(core::Backend::interpreted));
  machines::read_checkpoint(*reader, snap);
  const GoldenRunResult resumed = machines::finish_session(*reader);
  EXPECT_EQ(formatted(key, resumed), formatted(key, straight));
}

// -- freestanding binaries ----------------------------------------------------

#ifdef RCPN_HAVE_FS_BINARIES
/// Run `cmd`, capture stdout+stderr; returns the exit code (-1 on spawn
/// failure or signal death).
int run_capture(const std::string& cmd, std::string& out) {
  out.clear();
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return -1;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) out.append(buf, n);
  const int status = pclose(pipe);
  if (status < 0 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}
#endif

// The freestanding leg of the contract: the emitted single-TU binary
// checkpoints and restores itself byte-identically, and — the cross-build
// half — restores a checkpoint written by THIS linked build's interpreted
// engine (backend and build flavor are not snapshot identity).
TEST(CkptFreestanding, RoundTripAndCrossBuildRestore) {
#ifndef RCPN_HAVE_FS_BINARIES
  GTEST_SKIP() << "no freestanding binaries in this build "
                  "(RCPN_GENERATED_SIMS=OFF or RCPN_NO_EMBED=ON)";
#else
  const std::string key = "strongarm_crc";
  const std::string bin = std::string(RCPN_BIN_DIR) + "/gen_fs_" + key;
  struct stat st{};
  ASSERT_EQ(::stat(bin.c_str(), &st), 0)
      << bin << " missing — build the gen_fs_* targets first";
  const std::string dir = ::testing::TempDir();

  std::string straight;
  ASSERT_EQ(run_capture(bin + " --stats", straight), 0) << straight;

  // Leg 1: freestanding writes, freestanding restores.
  const std::string fs_ckpt = dir + "ckpt_fs_" + key;
  std::string out;
  ASSERT_EQ(run_capture(bin + " --checkpoint-at 700 --checkpoint-out " + fs_ckpt, out),
            0)
      << out;
  std::string restored;
  ASSERT_EQ(run_capture(bin + " --restore " + fs_ckpt + " --stats", restored), 0)
      << restored;
  EXPECT_EQ(restored, straight) << key << ": freestanding round trip diverged";

  // Leg 2: the linked build's interpreted engine writes, the freestanding
  // binary restores.
  auto writer = machines::make_golden_session(key, options_for(core::Backend::interpreted));
  writer->advance(700);
  const std::string linked_ckpt = dir + "ckpt_linked_" + key;
  {
    std::ofstream f(linked_ckpt, std::ios::binary);
    ASSERT_TRUE(f.is_open()) << linked_ckpt;
    f << machines::write_checkpoint(*writer);
  }
  std::string cross;
  ASSERT_EQ(run_capture(bin + " --restore " + linked_ckpt + " --stats", cross), 0)
      << cross;
  EXPECT_EQ(cross, straight) << key << ": linked-writer -> freestanding restore diverged";
#endif
}

// The periodic checkpoint ring: --checkpoint-every K writes alternating
// FILE.0/FILE.1 slots while still completing the run; the last slot restores
// to the straight result.
TEST(CkptFreestanding, CheckpointRingSlotsRestore) {
#ifndef RCPN_HAVE_FS_BINARIES
  GTEST_SKIP() << "no freestanding binaries in this build";
#else
  const std::string bin = std::string(RCPN_BIN_DIR) + "/gen_fs_fig2";
  struct stat st{};
  ASSERT_EQ(::stat(bin.c_str(), &st), 0) << bin;
  const std::string ring = ::testing::TempDir() + "ckpt_ring_fig2";

  std::string straight;
  ASSERT_EQ(run_capture(bin + " --stats", straight), 0) << straight;
  std::string out;
  ASSERT_EQ(
      run_capture(bin + " --checkpoint-every 10 --checkpoint-out " + ring + " --stats",
                  out),
      0)
      << out;
  // The ring run's own stdout is still the full straight run.
  EXPECT_EQ(out, straight);

  for (const char* slot : {".0", ".1"}) {
    std::string restored;
    ASSERT_EQ(run_capture(bin + " --restore " + ring + slot + " --stats", restored), 0)
        << restored;
    EXPECT_EQ(restored, straight) << "ring slot " << slot << " diverged";
  }
#endif
}

}  // namespace
}  // namespace rcpn
