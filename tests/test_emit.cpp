// The simulator emitter (gen::emit_simulator) and its contract:
//
//  * determinism — two independently constructed instances of the same model
//    emit byte-identical sources (emit_cpp and emit_simulator both); CI's
//    generate→compile→verify pipeline depends on regeneration being a pure
//    function of the model description;
//  * coverage — all five machines are fully emittable (every guard/action a
//    named delegate, machine type + includes registered), and the emitted
//    source contains the direct-call dispatch, the registrar and (when asked
//    for) the golden-runner main();
//  * refusal — models with anonymous closures are rejected with the offending
//    transitions named; Backend::generated without a linked generated TU is a
//    ModelError, not a silent fallback.
//
// The end-to-end proof that the emitted source *compiles and reproduces the
// golden traces* is the gen_sim_* ctest entries the build adds per machine
// (and the generated-sim CI job).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/options_signature.hpp"
#include "gen/compiled_engine.hpp"
#include "gen/embed.hpp"
#include "gen/emit.hpp"
#include "gen/emit_simulator.hpp"
#include "gen/generated.hpp"
#include "machines/golden_runner.hpp"
#include "model/simulator.hpp"

namespace rcpn {
namespace {

struct Emitted {
  std::string tables;
  std::string simulator;
  std::string simulator_no_main;
  std::string freestanding;
};

Emitted emit_machine(const std::string& key, core::EngineOptions opts = {}) {
  opts.backend = core::Backend::compiled;
  Emitted out;
  machines::inspect_golden_machine(key, opts, [&](core::Net& net, core::Engine& eng) {
    auto& ce = dynamic_cast<gen::CompiledEngine&>(eng);
    out.tables = gen::emit_cpp(ce.compiled(), net);
    gen::EmitSimOptions main_opts;
    main_opts.machine_key = key;
    main_opts.engine_options = opts;
    out.simulator = gen::emit_simulator(ce.compiled(), net, main_opts);
    gen::EmitSimOptions no_main;
    no_main.engine_options = opts;
    out.simulator_no_main = gen::emit_simulator(ce.compiled(), net, no_main);
    // Freestanding emission needs the embedded source table; builds with
    // RCPN_NO_EMBED=ON leave out.freestanding empty and skip its assertions.
    if (!gen::embedded_file_paths().empty()) {
      gen::EmitSimOptions fs;
      fs.mode = gen::EmitMode::freestanding;
      fs.engine_options = opts;
      fs.machine_key = key;
      fs.run_expr = machines::golden_run_expr(key);
      fs.extra_roots.push_back(machines::golden_run_header(key));
      out.freestanding = gen::emit_simulator(ce.compiled(), net, fs);
    }
  });
  return out;
}

class Emitter : public ::testing::TestWithParam<const char*> {};

TEST_P(Emitter, DeterministicByteIdenticalAcrossConstructions) {
  const std::string key = GetParam();
  const Emitted first = emit_machine(key);
  const Emitted second = emit_machine(key);
  EXPECT_EQ(first.tables, second.tables) << key << ": emit_cpp not deterministic";
  EXPECT_EQ(first.simulator, second.simulator)
      << key << ": emit_simulator not deterministic";
  EXPECT_EQ(first.simulator_no_main, second.simulator_no_main);
  EXPECT_EQ(first.freestanding, second.freestanding)
      << key << ": freestanding emission not deterministic";
}

TEST_P(Emitter, FreestandingInlinesTheRuntimeWithZeroRepoIncludes) {
  if (gen::embedded_file_paths().empty())
    GTEST_SKIP() << "embedded source table stripped (RCPN_NO_EMBED=ON)";
  const std::string key = GetParam();
  const Emitted e = emit_machine(key);

  // Zero quoted includes anywhere: the whole runtime subset is inlined.
  EXPECT_EQ(e.freestanding.find("#include \""), std::string::npos);
  // The inlined pieces the tentpole names: token storage + arena, the static
  // engine, the model layer, and the golden-runner trace IO + CLI.
  EXPECT_NE(e.freestanding.find("class TokenStore"), std::string::npos);
  EXPECT_NE(e.freestanding.find("class TokenArena"), std::string::npos);
  EXPECT_NE(e.freestanding.find("class StaticEngine"), std::string::npos);
  EXPECT_NE(e.freestanding.find("class ModelBuilderBase"), std::string::npos);
  EXPECT_NE(e.freestanding.find("golden_cli_main"), std::string::npos);
  // The same Traits/dispatch/registrar structure as the linked emission.
  EXPECT_NE(e.freestanding.find("struct Traits"), std::string::npos);
  EXPECT_NE(e.freestanding.find("register_generated_engine"), std::string::npos);
  EXPECT_NE(e.freestanding.find("int main(int argc, char** argv)"), std::string::npos);
  // The default-schedule options stamp: the registry key plus the canonical
  // core::options_signature rendering as a comment.
  const std::uint32_t def_key = core::options_bits(core::EngineOptions{});
  EXPECT_NE(e.freestanding.find("kOptionsKey = " + std::to_string(def_key) + "u"),
            std::string::npos);
  EXPECT_NE(e.freestanding.find(core::options_signature(core::EngineOptions{})),
            std::string::npos);
}

// Every ablation-variant schedule is emittable per machine: the stamped
// options flip, the registrar key follows, and emission stays deterministic.
TEST_P(Emitter, EmitsAblationVariantSchedules) {
  const std::string key = GetParam();
  const Emitted def = emit_machine(key);

  const auto key_stamp = [](const core::EngineOptions& o) {
    return "kOptionsKey = " + std::to_string(core::options_bits(o)) + "u";
  };

  core::EngineOptions two_list_all;
  two_list_all.force_two_list_all = true;
  const Emitted all = emit_machine(key, two_list_all);
  EXPECT_NE(all.simulator_no_main.find(key_stamp(two_list_all)), std::string::npos);
  EXPECT_NE(all.simulator_no_main.find("force_two_list_all=1"), std::string::npos);
  if (!all.freestanding.empty())
    EXPECT_NE(all.freestanding.find(key_stamp(two_list_all)), std::string::npos);
  EXPECT_NE(all.simulator_no_main, def.simulator_no_main)
      << key << ": variant schedule emitted identical to the default";
  EXPECT_EQ(all.simulator_no_main, emit_machine(key, two_list_all).simulator_no_main)
      << key << ": variant emission not deterministic";

  core::EngineOptions no_refs;
  no_refs.two_list_state_refs = false;
  EXPECT_NE(emit_machine(key, no_refs).simulator_no_main.find(key_stamp(no_refs)),
            std::string::npos);

  core::EngineOptions linear;
  linear.linear_search = true;
  EXPECT_NE(emit_machine(key, linear).simulator_no_main.find(key_stamp(linear)),
            std::string::npos);
}

TEST_P(Emitter, EmitsCompleteStandaloneSimulator) {
  const std::string key = GetParam();
  const Emitted e = emit_machine(key);
  const std::string model = machines::golden_model_name(key);

  // The standalone pieces: traits over the machine type, registrar, main.
  EXPECT_NE(e.simulator.find("struct Traits"), std::string::npos);
  EXPECT_NE(e.simulator.find("rcpn::gen::StaticEngine<Traits>"), std::string::npos);
  EXPECT_NE(e.simulator.find("register_generated_engine("), std::string::npos);
  EXPECT_NE(e.simulator.find("\"" + model + "\","), std::string::npos);
  EXPECT_NE(e.simulator.find("Traits::kOptionsKey,"), std::string::npos);
  EXPECT_NE(e.simulator.find("int main(int argc, char** argv)"), std::string::npos);
  EXPECT_NE(e.simulator.find("generated_main(argc, argv, \"" + key + "\")"),
            std::string::npos);
  EXPECT_EQ(e.simulator_no_main.find("int main"), std::string::npos);

  // Direct calls: at least one named delegate dispatched by symbol, and no
  // void*-environment indirection anywhere in the dispatch.
  EXPECT_NE(e.simulator.find("case "), std::string::npos);
  EXPECT_NE(e.simulator.find("::rcpn::machines::"), std::string::npos);
  EXPECT_EQ(e.simulator.find("guard_env"), std::string::npos);
  EXPECT_EQ(e.simulator.find("action_env"), std::string::npos);

  // Tables are constexpr data.
  EXPECT_NE(e.simulator.find("static constexpr rcpn::gen::StaticTx kBody"),
            std::string::npos);
  EXPECT_NE(e.simulator.find("kProcessOrder"), std::string::npos);
  EXPECT_NE(e.simulator.find("kStageReserve"), std::string::npos);
  EXPECT_NE(e.simulator.find("kHasGuard"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllMachines, Emitter,
                         ::testing::Values("fig2", "fig5", "tomasulo", "strongarm_crc",
                                           "xscale_adpcm"),
                         [](const auto& info) { return std::string(info.param); });

// emit_cpp records the lowered delegate symbols next to the rows it dumps.
TEST(Emitter, TablesNameTheBoundDelegates) {
  const Emitted e = emit_machine("strongarm_crc");
  EXPECT_NE(e.tables.find("guard=rcpn::machines::pipe_issue_guard"), std::string::npos);
  EXPECT_NE(e.tables.find("action=rcpn::machines::pipe_wb_action"), std::string::npos);
}

struct ClosureMachine {
  int hits = 0;
};

bool ctx_only_guard(core::FireCtx& ctx) { return ctx.token != nullptr; }
void machine_action(ClosureMachine& m, core::FireCtx&) { ++m.hits; }

// Named delegates come in both arities; the emitted dispatch must call each
// with the arguments it was registered with.
TEST(Emitter, EmitsTheRegisteredDelegateArity) {
  core::EngineOptions opts;
  opts.backend = core::Backend::compiled;
  model::Simulator<ClosureMachine> sim(
      "arity", opts,
      [](model::ModelBuilder<ClosureMachine>& b, ClosureMachine&) {
        b.emit_machine_type("rcpn::ClosureMachine");
        const model::StageHandle s = b.add_stage("S", 1);
        const model::PlaceHandle p = b.add_place("P", s);
        const model::TypeHandle ty = b.add_type("T");
        b.add_transition("t", ty)
            .from(p)
            .guard_named<&ctx_only_guard>("rcpn::ctx_only_guard")
            .action_named<&machine_action>("rcpn::machine_action")
            .to(b.end());
      },
      ClosureMachine{});
  auto& ce = dynamic_cast<gen::CompiledEngine&>(sim.engine());
  const std::string src = gen::emit_simulator(ce.compiled(), sim.net());
  EXPECT_NE(src.find("::rcpn::ctx_only_guard(ctx)"), std::string::npos) << src;
  EXPECT_NE(src.find("::rcpn::machine_action(m, ctx)"), std::string::npos);
  // The binding symbols are in the verification tables too.
  EXPECT_NE(src.find("kGuardSym"), std::string::npos);
  EXPECT_NE(src.find("kActionSym"), std::string::npos);
}

TEST(Emitter, RejectsAnonymousClosuresNamingTheTransition) {
  core::EngineOptions opts;
  opts.backend = core::Backend::compiled;
  model::Simulator<ClosureMachine> sim(
      "closures", opts,
      [](model::ModelBuilder<ClosureMachine>& b, ClosureMachine&) {
        b.emit_machine_type("rcpn::ClosureMachine");
        const model::StageHandle s = b.add_stage("S", 1);
        const model::PlaceHandle p = b.add_place("P", s);
        const model::TypeHandle ty = b.add_type("T");
        int captured = 7;  // forces a boxed closure
        b.add_transition("boxed", ty)
            .from(p)
            .guard([captured](core::FireCtx&) { return captured > 0; })
            .to(b.end());
      },
      ClosureMachine{});
  auto& ce = dynamic_cast<gen::CompiledEngine&>(sim.engine());
  try {
    gen::emit_simulator(ce.compiled(), sim.net());
    FAIL() << "emit_simulator accepted an anonymous closure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("guard of 'boxed'"), std::string::npos)
        << e.what();
  }
}

TEST(Emitter, RejectsModelsWithoutMachineType) {
  core::EngineOptions opts;
  opts.backend = core::Backend::compiled;
  model::Simulator<ClosureMachine> sim(
      "untyped", opts,
      [](model::ModelBuilder<ClosureMachine>& b, ClosureMachine&) {
        const model::StageHandle s = b.add_stage("S", 1);
        const model::PlaceHandle p = b.add_place("P", s);
        const model::TypeHandle ty = b.add_type("T");
        b.add_transition("t", ty).from(p).to(b.end());
      },
      ClosureMachine{});
  auto& ce = dynamic_cast<gen::CompiledEngine&>(sim.engine());
  EXPECT_THROW(gen::emit_simulator(ce.compiled(), sim.net()), std::runtime_error);
}

TEST(GeneratedBackend, UnregisteredModelThrowsModelError) {
  ASSERT_EQ(gen::find_generated_engine("never-registered"), nullptr);
  core::EngineOptions opts;
  opts.backend = core::Backend::generated;
  EXPECT_THROW(model::Simulator<ClosureMachine>(
                   "never-registered", opts,
                   [](model::ModelBuilder<ClosureMachine>& b, ClosureMachine&) {
                     const model::StageHandle s = b.add_stage("S", 1);
                     const model::PlaceHandle p = b.add_place("P", s);
                     const model::TypeHandle ty = b.add_type("T");
                     b.add_transition("t", ty).from(p).to(b.end());
                   },
                   ClosureMachine{}),
               model::ModelError);
}

TEST(GeneratedBackend, RegistryRoundTripKeyedByOptions) {
  const auto factory = [](core::Net& net, core::EngineOptions o)
      -> std::unique_ptr<core::Engine> { return std::make_unique<core::Engine>(net, o); };
  const std::uint32_t default_key = gen::generated_options_key(core::EngineOptions{});
  gen::register_generated_engine("test-registry-model", default_key, factory);
  EXPECT_NE(gen::find_generated_engine("test-registry-model"), nullptr);
  // A variant key is a different registration slot.
  core::EngineOptions variant;
  variant.force_two_list_all = true;
  EXPECT_EQ(gen::find_generated_engine("test-registry-model", variant), nullptr);
  gen::register_generated_engine("test-registry-model",
                                 gen::generated_options_key(variant), factory);
  EXPECT_NE(gen::find_generated_engine("test-registry-model", variant), nullptr);
  const std::vector<std::string> names = gen::registered_generated_models();
  EXPECT_EQ(std::count(names.begin(), names.end(), "test-registry-model"), 1)
      << "variant registrations must not duplicate the model listing";
}

// Freestanding refusal: anonymous closures are rejected exactly as in linked
// mode, and a model whose emit_include() is outside the embedded source set
// is rejected naming the offending path.
TEST(Emitter, FreestandingRejectsAnonymousClosures) {
  if (gen::embedded_file_paths().empty())
    GTEST_SKIP() << "embedded source table stripped (RCPN_NO_EMBED=ON)";
  core::EngineOptions opts;
  opts.backend = core::Backend::compiled;
  model::Simulator<ClosureMachine> sim(
      "closures-fs", opts,
      [](model::ModelBuilder<ClosureMachine>& b, ClosureMachine&) {
        b.emit_machine_type("rcpn::ClosureMachine");
        const model::StageHandle s = b.add_stage("S", 1);
        const model::PlaceHandle p = b.add_place("P", s);
        const model::TypeHandle ty = b.add_type("T");
        int captured = 7;  // forces a boxed closure
        b.add_transition("boxed", ty)
            .from(p)
            .guard([captured](core::FireCtx&) { return captured > 0; })
            .to(b.end());
      },
      ClosureMachine{});
  auto& ce = dynamic_cast<gen::CompiledEngine&>(sim.engine());
  gen::EmitSimOptions fs;
  fs.mode = gen::EmitMode::freestanding;
  try {
    gen::emit_simulator(ce.compiled(), sim.net(), fs);
    FAIL() << "freestanding emission accepted an anonymous closure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("guard of 'boxed'"), std::string::npos)
        << e.what();
  }
}

TEST(Emitter, FreestandingRejectsIncludesOutsideTheEmbeddedSet) {
  if (gen::embedded_file_paths().empty())
    GTEST_SKIP() << "embedded source table stripped (RCPN_NO_EMBED=ON)";
  core::EngineOptions opts;
  opts.backend = core::Backend::compiled;
  model::Simulator<ClosureMachine> sim(
      "foreign-include", opts,
      [](model::ModelBuilder<ClosureMachine>& b, ClosureMachine&) {
        b.emit_machine_type("rcpn::ClosureMachine");
        b.emit_include("not/embedded.hpp");
        const model::StageHandle s = b.add_stage("S", 1);
        const model::PlaceHandle p = b.add_place("P", s);
        const model::TypeHandle ty = b.add_type("T");
        b.add_transition("t", ty).from(p).to(b.end());
      },
      ClosureMachine{});
  auto& ce = dynamic_cast<gen::CompiledEngine&>(sim.engine());
  gen::EmitSimOptions fs;
  fs.mode = gen::EmitMode::freestanding;
  try {
    gen::emit_simulator(ce.compiled(), sim.net(), fs);
    FAIL() << "freestanding emission accepted a non-embedded include";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("not/embedded.hpp"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace rcpn
