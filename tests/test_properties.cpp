// Property-style and parameterized tests over whole-system invariants:
// capacity conservation, token accounting, timing monotonicity under
// memory-system and predictor sweeps, determinism, and analysis properties
// of converted nets.
#include <gtest/gtest.h>

#include "baseline/functional_iss.hpp"
#include "baseline/simplescalar_sim.hpp"
#include "cpn/analysis.hpp"
#include "cpn/rcpn_to_cpn.hpp"
#include "machines/fig5_processor.hpp"
#include "machines/strongarm.hpp"
#include "machines/tomasulo.hpp"
#include "machines/xscale.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace rcpn {
namespace {

using machines::Fig5Instr;
using I = Fig5Instr;

// ---------------------------------------------------------------------------
// Structural invariants under random programs (Fig 5 machine)
// ---------------------------------------------------------------------------

std::vector<Fig5Instr> random_fig5_program(std::uint64_t seed, unsigned len) {
  util::Xorshift64 rng(seed);
  std::vector<Fig5Instr> prog;
  for (unsigned i = 0; i < len; ++i) {
    switch (rng.below(8)) {
      case 0:
        prog.push_back(I::load(static_cast<unsigned>(rng.below(8)),
                               static_cast<std::uint32_t>(rng.below(64)) * 4));
        break;
      case 1:
        prog.push_back(I::store(static_cast<unsigned>(rng.below(8)),
                                static_cast<std::uint32_t>(rng.below(64)) * 4));
        break;
      default:
        prog.push_back(I::alu(static_cast<I::AluOp>(rng.below(4)),
                              static_cast<unsigned>(rng.below(8)),
                              static_cast<unsigned>(rng.below(8)),
                              static_cast<unsigned>(rng.below(8))));
        break;
    }
  }
  return prog;
}

class Fig5Property : public ::testing::TestWithParam<int> {};

TEST_P(Fig5Property, StageCapacityNeverExceededAndTokensConserved) {
  machines::Fig5Processor cpu;
  cpu.load(random_fig5_program(31337 + GetParam(), 60));
  // Step manually, asserting the capacity invariant every cycle.
  std::uint64_t guard_cycles = 0;
  while (cpu.engine().tokens_in_flight() > 0 || guard_cycles == 0) {
    cpu.engine().step();
    ++guard_cycles;
    for (unsigned s = 1; s < cpu.net().num_stages(); ++s) {
      const core::PipelineStage& st = cpu.net().stage(static_cast<core::StageId>(s));
      ASSERT_LE(st.occupancy(), st.capacity())
          << "capacity violated at stage " << st.name();
    }
    ASSERT_LT(guard_cycles, 100000u) << "program did not drain";
    if (guard_cycles > 2 && cpu.engine().tokens_in_flight() == 0) break;
  }
  // Token accounting: everything fetched either retired or was squashed.
  const core::Stats& st = cpu.engine().stats();
  EXPECT_EQ(st.fetched, st.retired + st.squashed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fig5Property, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Timing monotonicity sweeps
// ---------------------------------------------------------------------------

class MissPenaltySweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MissPenaltySweep, StrongArmCyclesGrowWithMissPenalty) {
  // compress misses the D-cache; a higher penalty must never make it faster,
  // and must never change architectural results.
  const auto* w = workloads::find("compress");
  const sys::Program prog = workloads::build(*w, w->test_scale);

  machines::StrongArmConfig base;
  base.mem.dcache.miss_penalty = 1;
  machines::StrongArmSim fast(base);
  const auto rf = fast.run(prog);

  machines::StrongArmConfig cfg;
  cfg.mem.dcache.miss_penalty = GetParam();
  machines::StrongArmSim sim(cfg);
  const auto r = sim.run(prog);

  EXPECT_GE(r.cycles, rf.cycles);
  EXPECT_EQ(r.output, rf.output);
  EXPECT_EQ(r.instructions, rf.instructions);
}

INSTANTIATE_TEST_SUITE_P(Penalties, MissPenaltySweep,
                         ::testing::Values(2u, 8u, 24u, 64u, 128u));

TEST(TimingSweep, TinyCachesSlowDownButNeverChangeResults) {
  const auto* w = workloads::find("blowfish");
  const sys::Program prog = workloads::build(*w, w->test_scale);
  machines::StrongArmConfig tiny;
  tiny.mem.dcache.size_bytes = 256;
  tiny.mem.dcache.assoc = 1;
  tiny.mem.icache.size_bytes = 256;
  tiny.mem.icache.assoc = 1;
  machines::StrongArmSim small(tiny);
  machines::StrongArmSim normal;
  const auto rs = small.run(prog);
  const auto rn = normal.run(prog);
  EXPECT_GT(rs.cycles, rn.cycles);
  EXPECT_GT(rs.dcache_misses, rn.dcache_misses);
  EXPECT_EQ(rs.output, rn.output);
}

TEST(TimingSweep, LargerBtbNeverMispredictsMore) {
  const auto* w = workloads::find("go");
  const sys::Program prog = workloads::build(*w, w->test_scale);
  machines::XScaleConfig tiny;
  tiny.btb_entries = 2;
  machines::XScaleConfig big;
  big.btb_entries = 512;
  machines::XScaleSim a(tiny), b(big);
  const auto ra = a.run(prog);
  const auto rb = b.run(prog);
  EXPECT_GE(ra.mispredicts, rb.mispredicts);
  EXPECT_GE(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.output, rb.output);
}

TEST(TimingSweep, XScaleBtbBeatsNoPredictionOnLoops) {
  // crc is loop-dominated: the BTB must cut taken-branch redirects
  // dramatically compared to the predictor-less StrongArm front end.
  const auto* w = workloads::find("crc");
  const sys::Program prog = workloads::build(*w, w->test_scale);
  machines::XScaleSim xs;
  machines::StrongArmSim sa;
  const auto rx = xs.run(prog);
  const auto rs = sa.run(prog);
  EXPECT_LT(rx.mispredicts * 2, rs.mispredicts);
}

// ---------------------------------------------------------------------------
// Determinism & replay
// ---------------------------------------------------------------------------

TEST(Determinism, StrongArmCycleExactAcrossRuns) {
  const auto* w = workloads::find("g721");
  const sys::Program prog = workloads::build(*w, w->test_scale);
  machines::StrongArmSim a, b;
  const auto ra = a.run(prog);
  const auto rb = b.run(prog);
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.instructions, rb.instructions);
  EXPECT_EQ(ra.output, rb.output);
  EXPECT_EQ(ra.dcache_misses, rb.dcache_misses);
}

TEST(Determinism, IssChunkedExecutionMatchesStraightRun) {
  const auto* w = workloads::find("adpcm");
  const sys::Program prog = workloads::build(*w, w->test_scale);

  mem::Memory m1;
  sys::SyscallHandler s1;
  baseline::FunctionalIss straight(m1, s1);
  straight.reset(prog);
  straight.run();

  mem::Memory m2;
  sys::SyscallHandler s2;
  baseline::FunctionalIss chunked(m2, s2);
  chunked.reset(prog);
  while (!chunked.exited()) chunked.run(777);  // arbitrary chunk size

  EXPECT_EQ(straight.instret(), chunked.instret());
  EXPECT_EQ(s1.output(), s2.output());
  for (unsigned r = 0; r < 16; ++r) EXPECT_EQ(straight.reg(r), chunked.reg(r));
}

// ---------------------------------------------------------------------------
// Cross-simulator agreement on cache behaviour
// ---------------------------------------------------------------------------

TEST(CrossSim, InstructionCountsAgreeEverywhere) {
  // The ISS, the baseline and both RCPN models must agree on the committed
  // instruction count (modulo the in-flight exit SWI in the RCPN models).
  const auto* w = workloads::find("crc");
  const sys::Program prog = workloads::build(*w, w->test_scale);

  mem::Memory m;
  sys::SyscallHandler sh;
  baseline::FunctionalIss iss(m, sh);
  iss.reset(prog);
  iss.run();

  baseline::SimpleScalarSim ss;
  const auto rss = ss.run(prog);
  machines::StrongArmSim sa;
  const auto rsa = sa.run(prog);
  machines::XScaleSim xs;
  const auto rxs = xs.run(prog);

  EXPECT_EQ(rss.instructions, iss.instret());
  EXPECT_LE(iss.instret() - rsa.instructions, 8u);
  EXPECT_LE(iss.instret() - rxs.instructions, 8u);
}

// ---------------------------------------------------------------------------
// Analysis properties of converted nets
// ---------------------------------------------------------------------------

TEST(ConvertedNets, TomasuloIsRsBoundedAndDeadlockFree) {
  machines::TomasuloCore core(/*rs_entries=*/4, /*num_fus=*/2);
  const cpn::ConversionResult conv = cpn::convert(core.net());
  const cpn::AnalysisResult res = cpn::analyze(conv.net);
  EXPECT_FALSE(res.truncated);
  EXPECT_EQ(res.deadlocks, 0u);
  // No place may ever exceed its stage capacity (RS holds the max, 4).
  EXPECT_TRUE(res.bounded(4));
  EXPECT_TRUE(res.all_fireable());
}

TEST(ConvertedNets, CapacityBoundsMatchStageCapacities) {
  machines::Fig5Processor cpu;
  const cpn::ConversionResult conv = cpn::convert(cpu.net());
  const cpn::AnalysisResult res = cpn::analyze(conv.net);
  ASSERT_FALSE(res.truncated);
  for (unsigned p = 0; p < cpu.net().num_places(); ++p) {
    const auto pid = static_cast<core::PlaceId>(p);
    if (cpu.net().stage_of(pid).is_end()) continue;
    const int cp = conv.place_map[p];
    ASSERT_GE(cp, 0);
    EXPECT_LE(res.place_bound[static_cast<unsigned>(cp)],
              cpu.net().stage_of(pid).capacity())
        << cpu.net().place(pid).name;
  }
}

// ---------------------------------------------------------------------------
// Ablation configurations preserve architecture
// ---------------------------------------------------------------------------

TEST(AblationSafety, AllEngineKnobsPreserveResults) {
  const auto* w = workloads::find("adpcm");
  const sys::Program prog = workloads::build(*w, w->test_scale);
  machines::StrongArmSim reference;
  const auto ref = reference.run(prog);

  for (int knob = 0; knob < 3; ++knob) {
    machines::StrongArmConfig cfg;
    if (knob == 0) cfg.engine.force_two_list_all = true;
    if (knob == 1) cfg.engine.linear_search = true;
    if (knob == 2) cfg.decode_cache_bypass = true;
    machines::StrongArmSim sim(cfg);
    const auto r = sim.run(prog);
    EXPECT_EQ(r.output, ref.output) << "knob " << knob;
    EXPECT_EQ(r.exit_code, ref.exit_code) << "knob " << knob;
    // linear_search and decode bypass must not change timing at all;
    // two-list everywhere legitimately adds cycles.
    if (knob != 0) {
      EXPECT_EQ(r.cycles, ref.cycles) << "knob " << knob;
    }
  }
}

}  // namespace
}  // namespace rcpn
