// Randomized lockstep-equivalence fuzzing: the compiled backend's contract
// (cycle-for-cycle equality with the interpreted engine) pinned on *generated*
// models, not just the five curated machines.
//
// A seeded generator builds random pipeline topologies through ModelBuilder —
// varying stage counts and capacities, place delays, fork/join edges,
// multi-issue fetch widths, guard mixes (periodic stalls, clock windows,
// state-referencing backpressure), token delay overrides, reservation
// emit/consume pairs, age-based flushes and *looping* topologies (Fig 5-style
// feedback arcs that send a token back to an earlier place a bounded number
// of times, forcing real token cycles through the SCC/two-list analysis) —
// and runs the interpreted and compiled engines in lockstep, comparing the
// clock, in-flight counts and aggregate stats after every cycle, and the full
// cycle-stamped retire and squash traces plus per-transition/per-place
// statistics at the end.
//
// Every seed is a different machine; a divergence report names the seed, so
// any future backend change that breaks token semantics reproduces with
// FuzzLockstep + that seed. The SoA token-pool rewrite landed gated on this
// suite.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <sys/wait.h>
#include <vector>

#include "gen/compiled_engine.hpp"
#include "gen/emit_simulator.hpp"
#include "gen/embed.hpp"
#include "machines/fuzz_model.hpp"
#include "machines/generic_main.hpp"
#include "model/simulator.hpp"

namespace rcpn {
namespace {

using machines::FuzzMachine;

struct TraceEvent {
  core::Cycle cycle = 0;
  std::uint64_t pc = 0;
  std::uint32_t seq = 0;
  bool operator==(const TraceEvent&) const = default;
};

struct Traces {
  std::vector<TraceEvent> retired;
  std::vector<TraceEvent> squashed;
};

void record(core::Engine& eng, Traces& out) {
  eng.hooks().on_retire = [&eng, &out](core::InstructionToken* t) {
    out.retired.push_back(TraceEvent{eng.clock(), t->pc, t->seq});
  };
  eng.hooks().on_squash = [&eng, &out](core::InstructionToken* t) {
    out.squashed.push_back(TraceEvent{eng.clock(), t->pc, t->seq});
  };
}


void expect_stats_equal(unsigned seed, const core::Stats& i, const core::Stats& c) {
  EXPECT_EQ(i.cycles, c.cycles) << "seed=" << seed;
  EXPECT_EQ(i.retired, c.retired) << "seed=" << seed;
  EXPECT_EQ(i.fetched, c.fetched) << "seed=" << seed;
  EXPECT_EQ(i.squashed, c.squashed) << "seed=" << seed;
  EXPECT_EQ(i.reservations, c.reservations) << "seed=" << seed;
  EXPECT_EQ(i.firings, c.firings) << "seed=" << seed;
  EXPECT_EQ(i.transition_fires, c.transition_fires) << "seed=" << seed;
  EXPECT_EQ(i.place_stalls, c.place_stalls) << "seed=" << seed;
  EXPECT_EQ(i.place_stall_causes, c.place_stall_causes) << "seed=" << seed;
}

/// Aggregate workload exercised by a seed range: guards that the corpus
/// really covers the mechanisms it claims to fuzz (flushes happened,
/// reservations were emitted and consumed, stalls occurred, some models ran
/// two-list stages), not just straight-line pipelines.
struct Coverage {
  std::uint64_t retired = 0;
  std::uint64_t squashed = 0;
  std::uint64_t reservations = 0;
  std::uint64_t stalls = 0;
  std::uint64_t loops_taken = 0;
  unsigned models_with_two_list = 0;
};

void run_seed(unsigned seed, Coverage& cov) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  auto make = [seed](core::Backend backend) {
    return std::make_unique<model::Simulator<FuzzMachine>>(
        machines::fuzz_model_name(seed), machines::fuzz_options_for(seed, backend),
        [seed](model::ModelBuilder<FuzzMachine>& b, FuzzMachine& m) {
          machines::describe_fuzz_model(seed, b, m);
        },
        FuzzMachine{});
  };
  auto interp = make(core::Backend::interpreted);
  auto comp = make(core::Backend::compiled);
  ASSERT_NE(dynamic_cast<gen::CompiledEngine*>(&comp->engine()), nullptr);
  ASSERT_EQ(dynamic_cast<gen::CompiledEngine*>(&interp->engine()), nullptr);

  Traces ti, tc;
  record(interp->engine(), ti);
  record(comp->engine(), tc);

  // Lockstep: compare the cheap aggregates after every cycle so a divergence
  // is localized to the first bad cycle, not discovered at the end.
  constexpr std::uint64_t kMaxCycles = 25000;
  std::uint64_t cycle = 0;
  for (; cycle < kMaxCycles; ++cycle) {
    const bool idone = interp->machine().emitted >= interp->machine().to_emit &&
                       interp->engine().tokens_in_flight() == 0;
    const bool cdone = comp->machine().emitted >= comp->machine().to_emit &&
                       comp->engine().tokens_in_flight() == 0;
    ASSERT_EQ(idone, cdone) << "seed=" << seed << " cycle=" << cycle;
    if (idone) break;
    ASSERT_TRUE(interp->step()) << "seed=" << seed << " interpreted engine stopped"
                                << " (deadlocked model?) at cycle " << cycle;
    ASSERT_TRUE(comp->step()) << "seed=" << seed << " compiled engine stopped"
                              << " (deadlocked model?) at cycle " << cycle;
    ASSERT_EQ(interp->clock(), comp->clock()) << "seed=" << seed;
    ASSERT_EQ(interp->engine().tokens_in_flight(), comp->engine().tokens_in_flight())
        << "seed=" << seed << " cycle=" << cycle;
    ASSERT_EQ(interp->stats().retired, comp->stats().retired)
        << "seed=" << seed << " cycle=" << cycle;
    ASSERT_EQ(interp->stats().firings, comp->stats().firings)
        << "seed=" << seed << " cycle=" << cycle;
  }
  ASSERT_LT(cycle, kMaxCycles) << "seed=" << seed << ": model did not drain "
                               << "(emitted=" << interp->machine().emitted << "/"
                               << interp->machine().to_emit << ", in flight "
                               << interp->engine().tokens_in_flight() << ")";

  // Full end-state comparison: every retirement and squash, cycle-stamped and
  // in order; all statistics; all machine-side counters.
  EXPECT_EQ(ti.retired, tc.retired) << "seed=" << seed;
  EXPECT_EQ(ti.squashed, tc.squashed) << "seed=" << seed;
  expect_stats_equal(seed, interp->stats(), comp->stats());
  EXPECT_EQ(interp->machine().emitted, comp->machine().emitted) << "seed=" << seed;
  EXPECT_EQ(interp->machine().actions_run, comp->machine().actions_run)
      << "seed=" << seed;
  EXPECT_EQ(interp->machine().flushes, comp->machine().flushes) << "seed=" << seed;
  EXPECT_EQ(interp->machine().loops_taken, comp->machine().loops_taken)
      << "seed=" << seed;
  // Conservation: every fetched token either retired or was squashed.
  EXPECT_EQ(interp->stats().fetched,
            interp->stats().retired + interp->stats().squashed)
      << "seed=" << seed;

  cov.retired += interp->stats().retired;
  cov.squashed += interp->stats().squashed;
  cov.reservations += interp->stats().reservations;
  cov.loops_taken += interp->machine().loops_taken;
  for (std::uint64_t s : interp->stats().place_stalls) cov.stalls += s;
  for (unsigned s = 0; s < interp->net().num_stages(); ++s)
    if (interp->engine().stage_is_two_list(static_cast<core::StageId>(s))) {
      ++cov.models_with_two_list;
      break;
    }
}

Coverage run_seed_range(unsigned first, unsigned last) {
  Coverage cov;
  for (unsigned seed = first; seed <= last; ++seed) run_seed(seed, cov);
  // Each ~40-seed shard must have exercised every fuzzed mechanism.
  EXPECT_GT(cov.retired, 1000u);
  EXPECT_GT(cov.squashed, 0u) << "no flush ever squashed an instruction";
  EXPECT_GT(cov.reservations, 0u) << "no reservation token was ever emitted";
  EXPECT_GT(cov.stalls, 0u) << "no guard or capacity stall ever happened";
  EXPECT_GT(cov.models_with_two_list, 0u) << "no model used a two-list stage";
  EXPECT_GT(cov.loops_taken, 0u)
      << "no token ever traversed a feedback arc — looping topologies uncovered";
  return cov;
}

// 128 seeds ≥ the 100 the acceptance bar asks for; three shards keep any
// failure's scope (and ctest's parallelism) reasonable.
TEST(FuzzLockstep, Seeds1To48) { run_seed_range(1, 48); }

TEST(FuzzLockstep, Seeds49To88) { run_seed_range(49, 88); }

TEST(FuzzLockstep, Seeds89To128) { run_seed_range(89, 128); }

// ---------------------------------------------------------------------------
// Freestanding shard: fuzz coverage reaches the *emitter*, not just the
// in-process backends. A small CI-budgeted set of seeded topologies is
// emitted as freestanding single-file simulators (gen::emit_simulator,
// EmitMode::freestanding), compiled at test time with the configured host
// compiler — zero repo includes, no library objects on the link line — run,
// and trace-diffed against the interpreted backend through the emitted
// binary's own --golden first-diverging-cycle reporting. The seeds cross the
// option mix of fuzz_options_for, so ablation-variant emission is fuzzed too.
// ---------------------------------------------------------------------------

int run_command(const std::string& cmd) {
  const int status = std::system(cmd.c_str());
  if (status < 0 || !WIFEXITED(status)) return -1;  // signal death != exit 0
  return WEXITSTATUS(status);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

TEST(FuzzFreestanding, EmittedShardMatchesInterpretedTraces) {
#ifndef RCPN_CXX_COMPILER
  GTEST_SKIP() << "host compiler not configured (RCPN_CXX_COMPILER)";
#else
  if (gen::embedded_file_paths().empty())
    GTEST_SKIP() << "embedded source table stripped (RCPN_NO_EMBED=ON)";
  const std::string dir = ::testing::TempDir() + "fuzz_freestanding";
  ASSERT_EQ(run_command("mkdir -p " + dir), 0);

  unsigned emitted_variants = 0;
  for (unsigned seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const std::string name = machines::fuzz_model_name(seed);
    const core::EngineOptions opts =
        machines::fuzz_options_for(seed, core::Backend::compiled);
    if (opts.force_two_list_all || !opts.two_list_state_refs) ++emitted_variants;

    // Emit the freestanding TU from a lowered in-process construction.
    model::Simulator<FuzzMachine> sim(
        name, opts,
        [seed](model::ModelBuilder<FuzzMachine>& b, FuzzMachine& m) {
          machines::describe_fuzz_model(seed, b, m);
        },
        FuzzMachine{});
    auto& ce = dynamic_cast<gen::CompiledEngine&>(sim.engine());
    gen::EmitSimOptions fs;
    fs.mode = gen::EmitMode::freestanding;
    fs.engine_options = opts;
    fs.machine_key = name;
    fs.run_expr =
        "rcpn::machines::golden_run_fuzz(" + std::to_string(seed) + "u, options)";
    fs.extra_roots.push_back("machines/fuzz_model.hpp");
    const std::string src = gen::emit_simulator(ce.compiled(), sim.net(), fs);
    ASSERT_EQ(src.find("#include \""), std::string::npos)
        << "freestanding TU pulled a repo include";
    ASSERT_NE(src.find("fuzz_"), std::string::npos)
        << "dispatch lost the fuzz delegates";

    const std::string base = dir + "/" + name;
    { std::ofstream(base + ".cpp") << src; }

    // The interpreted backend's trace is the reference the binary diffs.
    const machines::GoldenRunResult interp = machines::golden_run_fuzz(
        seed, machines::fuzz_options_for(seed, core::Backend::interpreted));
    ASSERT_FALSE(interp.trace.empty());
    { std::ofstream(base + ".trace") << machines::format_golden_trace(name, interp.trace); }

    // Compile standalone: no include dirs, no library objects.
    const std::string compile = std::string(RCPN_CXX_COMPILER) + " -std=c++20 -O0 -o " +
                                base + " " + base + ".cpp 2> " + base + ".err";
    ASSERT_EQ(run_command(compile), 0)
        << "freestanding TU failed to compile:\n" << slurp(base + ".err");

    const std::string run = base + " --golden " + base + ".trace > " + base +
                            ".out 2>&1";
    EXPECT_EQ(run_command(run), 0)
        << "freestanding binary diverged from the interpreted backend:\n"
        << slurp(base + ".out");
  }
  EXPECT_GT(emitted_variants, 0u)
      << "the shard never emitted an ablation-variant schedule";
#endif
}

// A freestanding artifact emitted with the *generic* main
// (machines/generic_main.hpp, via generic_describe_expr) instead of a golden
// runner: the binary must honour workload-from-argv (positional emit count)
// and --cycles, and replicate the in-process generic run loop exactly.
TEST(FuzzFreestanding, GenericMainBinaryHonoursWorkloadArgsAndCycleCap) {
#ifndef RCPN_CXX_COMPILER
  GTEST_SKIP() << "host compiler not configured (RCPN_CXX_COMPILER)";
#else
  if (gen::embedded_file_paths().empty())
    GTEST_SKIP() << "embedded source table stripped (RCPN_NO_EMBED=ON)";
  const unsigned seed = 3;
  const std::uint64_t to_emit = 5;   // downward override: always completes
  const std::uint64_t cycles = 2000;
  const std::string dir = ::testing::TempDir() + "fuzz_generic_main";
  ASSERT_EQ(run_command("mkdir -p " + dir), 0);
  const std::string name = machines::fuzz_model_name(seed);
  core::EngineOptions opts;
  opts.backend = core::Backend::compiled;

  const auto describe = [](model::ModelBuilder<FuzzMachine>& b, FuzzMachine& m) {
    machines::describe_fuzz_model(seed, b, m);
  };

  // Emit the freestanding TU with the generic main.
  std::string src;
  {
    model::Simulator<FuzzMachine> sim(name, opts, describe, FuzzMachine{});
    auto& ce = dynamic_cast<gen::CompiledEngine&>(sim.engine());
    gen::EmitSimOptions fs;
    fs.mode = gen::EmitMode::freestanding;
    fs.engine_options = opts;
    fs.extra_roots.push_back("machines/fuzz_model.hpp");
    const std::string m = "rcpn::machines::FuzzMachine";
    fs.generic_describe_expr =
        "[](rcpn::model::ModelBuilder<" + m + ">& b, " + m +
        "& m) { rcpn::machines::describe_fuzz_model(" + std::to_string(seed) +
        "u, b, m); }";
    fs.generic_workload_expr =
        "[](" + m + "& m, const std::vector<std::string>& args) { if (!args.empty()) "
        "m.to_emit = std::strtoull(args[0].c_str(), nullptr, 10); }";
    fs.generic_done_expr = "[](const " + m + "& m) { return m.emitted >= m.to_emit; }";
    src = gen::emit_simulator(ce.compiled(), sim.net(), fs);
  }
  ASSERT_EQ(src.find("#include \""), std::string::npos)
      << "freestanding TU pulled a repo include";
  ASSERT_NE(src.find("generic_cli_main"), std::string::npos)
      << "emitted main is not the generic CLI";

  const std::string base = dir + "/" + name;
  { std::ofstream(base + ".cpp") << src; }
  const std::string compile = std::string(RCPN_CXX_COMPILER) + " -std=c++20 -O0 -o " +
                              base + " " + base + ".cpp 2> " + base + ".err";
  ASSERT_EQ(run_command(compile), 0)
      << "freestanding TU failed to compile:\n" << slurp(base + ".err");

  // In-process reference: the same (describe, workload, done) run loop as
  // generic_cli_main, on the compiled backend.
  machines::GoldenRunResult ref;
  {
    model::Simulator<FuzzMachine> sim(name, opts, describe, FuzzMachine{});
    sim.machine().to_emit = to_emit;
    machines::record_golden_retires(sim.engine(), ref.trace);
    for (std::uint64_t c = 0; c < cycles; ++c) {
      if (sim.machine().emitted >= sim.machine().to_emit &&
          sim.engine().tokens_in_flight() == 0)
        break;
      if (!sim.step()) break;
    }
    ref.stats = sim.engine().stats();
  }
  ASSERT_EQ(ref.trace.size(), to_emit) << "reference run did not drain";

  // The binary with the same workload args must match the reference exactly.
  const std::string run = base + " " + std::to_string(to_emit) + " --cycles " +
                          std::to_string(cycles) + " --stats > " + base + ".out 2>&1";
  ASSERT_EQ(run_command(run), 0) << slurp(base + ".out");
  const std::string out = slurp(base + ".out");
  std::vector<machines::GoldenRetireEvent> fs_trace;
  core::Stats fs_stats;
  ASSERT_TRUE(machines::parse_golden_trace(out, fs_trace)) << out;
  ASSERT_TRUE(machines::parse_golden_stats(out, fs_stats)) << out;
  const std::string diff = machines::diff_golden_traces(ref.trace, fs_trace);
  EXPECT_TRUE(diff.empty()) << "generic-main binary vs in-process: " << diff;
  EXPECT_EQ(fs_stats.cycles, ref.stats.cycles);
  EXPECT_EQ(fs_stats.retired, ref.stats.retired);

  // A --cycles budget below the full run truncates the trace instead of
  // erroring out (exit 1 = "retired nothing" is the legitimate floor; exit 2
  // would be a real failure).
  const std::uint64_t cap = ref.trace.back().cycle - 1;
  const std::string capped = base + " " + std::to_string(to_emit) + " --cycles " +
                             std::to_string(cap) + " --stats > " + base +
                             ".capped 2>&1";
  const int capped_rc = run_command(capped);
  const std::string capped_out = slurp(base + ".capped");
  if (capped_rc == 0) {
    std::vector<machines::GoldenRetireEvent> capped_trace;
    ASSERT_TRUE(machines::parse_golden_trace(capped_out, capped_trace)) << capped_out;
    EXPECT_LT(capped_trace.size(), ref.trace.size())
        << "budget " << cap << " did not truncate the run";
  } else {
    EXPECT_EQ(capped_rc, 1) << capped_out;
    EXPECT_NE(capped_out.find("retired nothing"), std::string::npos) << capped_out;
  }
#endif
}

}  // namespace
}  // namespace rcpn
