// Randomized lockstep-equivalence fuzzing: the compiled backend's contract
// (cycle-for-cycle equality with the interpreted engine) pinned on *generated*
// models, not just the five curated machines.
//
// A seeded generator builds random pipeline topologies through ModelBuilder —
// varying stage counts and capacities, place delays, fork/join edges,
// multi-issue fetch widths, guard mixes (periodic stalls, clock windows,
// state-referencing backpressure), token delay overrides, reservation
// emit/consume pairs, age-based flushes and *looping* topologies (Fig 5-style
// feedback arcs that send a token back to an earlier place a bounded number
// of times, forcing real token cycles through the SCC/two-list analysis) —
// and runs the interpreted and compiled engines in lockstep, comparing the
// clock, in-flight counts and aggregate stats after every cycle, and the full
// cycle-stamped retire and squash traces plus per-transition/per-place
// statistics at the end.
//
// Every seed is a different machine; a divergence report names the seed, so
// any future backend change that breaks token semantics reproduces with
// FuzzLockstep + that seed. The SoA token-pool rewrite landed gated on this
// suite.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "gen/compiled_engine.hpp"
#include "model/simulator.hpp"

namespace rcpn {
namespace {

using core::FireCtx;

struct FuzzMachine {
  std::uint64_t to_emit = 0;
  std::uint64_t emitted = 0;
  /// Counters mutated by generated actions; compared across backends at the
  /// end, so action *execution order* differences surface even when traces
  /// happen to agree.
  std::uint64_t actions_run = 0;
  std::uint64_t flushes = 0;
  /// Backward (feedback) arc traversals: per-shard loop-coverage evidence.
  std::uint64_t loops_taken = 0;
};

struct TraceEvent {
  core::Cycle cycle = 0;
  std::uint64_t pc = 0;
  std::uint32_t seq = 0;
  bool operator==(const TraceEvent&) const = default;
};

struct Traces {
  std::vector<TraceEvent> retired;
  std::vector<TraceEvent> squashed;
};

void record(core::Engine& eng, Traces& out) {
  eng.hooks().on_retire = [&eng, &out](core::InstructionToken* t) {
    out.retired.push_back(TraceEvent{eng.clock(), t->pc, t->seq});
  };
  eng.hooks().on_squash = [&eng, &out](core::InstructionToken* t) {
    out.squashed.push_back(TraceEvent{eng.clock(), t->pc, t->seq});
  };
}

/// Build one random pipeline model. The generator draws every decision from
/// a mt19937 seeded with `seed`, so the two Simulator instances (interpreted
/// and compiled) construct byte-identical descriptions.
void describe_random_model(unsigned seed, model::ModelBuilder<FuzzMachine>& b,
                           FuzzMachine& m) {
  std::mt19937 rng(seed);
  auto pick = [&rng](unsigned lo, unsigned hi) {  // inclusive range
    return lo + static_cast<unsigned>(rng() % (hi - lo + 1));
  };

  const unsigned num_stages = pick(2, 6);
  const unsigned num_places = num_stages + pick(0, 2);
  const unsigned num_types = pick(1, 3);
  const unsigned width = pick(1, 3);
  m.to_emit = 80 + pick(0, 120);

  // Stages with small random capacities; the fetch stage must hold a full
  // issue group.
  std::vector<model::StageHandle> stages;
  std::vector<unsigned> caps;
  for (unsigned s = 0; s < num_stages; ++s) {
    unsigned cap = pick(1, 3);
    if (s == 0 && cap < width) cap = width;
    caps.push_back(cap);
    stages.push_back(b.add_stage("S" + std::to_string(s), cap));
  }
  // Occasionally pin a middle stage to two-list (conservative forwarding
  // timing), exercising the master/slave promotion path.
  if (num_stages > 2 && pick(0, 2) == 0)
    b.force_two_list(stages[1 + pick(0, num_stages - 3)], true);

  // Places in pipeline order, distributed over the stages (several places may
  // share one stage and its capacity).
  std::vector<model::PlaceHandle> places;
  std::vector<unsigned> place_stage;
  for (unsigned i = 0; i < num_places; ++i) {
    const unsigned s = i * num_stages / num_places;
    place_stage.push_back(s);
    places.push_back(
        b.add_place("P" + std::to_string(i), stages[s], /*delay=*/pick(1, 2)));
  }

  // A roomy side stage for reservation tokens (orphans from flushes may
  // accumulate; the stage must never backpressure the net into deadlock).
  const model::StageHandle res_stage =
      b.add_stage("RES", static_cast<std::uint32_t>(m.to_emit + 8));
  const model::PlaceHandle res_place = b.add_place("RES", res_stage);

  std::vector<model::TypeHandle> types;
  for (unsigned t = 0; t < num_types; ++t)
    types.push_back(b.add_type("T" + std::to_string(t)));

  // Per type: an emit/consume reservation pair on the chain (consume sites
  // get a fallback edge so a missing reservation stalls but never deadlocks).
  std::vector<int> res_emit_at(num_types, -1), res_consume_at(num_types, -1);
  for (unsigned t = 0; t < num_types; ++t) {
    if (num_places >= 2 && pick(0, 1) == 0) {
      const unsigned i = pick(0, num_places - 2);
      res_emit_at[t] = static_cast<int>(i);
      res_consume_at[t] = static_cast<int>(pick(i + 1, num_places - 1));
    }
  }

  // Guard mixes. Everything is a deterministic function of token fields,
  // the clock and machine counters, so both backends evaluate identically.
  auto add_guard = [&](auto& tb, unsigned kind, unsigned backpressure_place) {
    switch (kind) {
      case 1:  // periodic stall keyed on token age and time
        tb.guard([](FireCtx& ctx) {
          return (ctx.token->seq + ctx.engine->clock()) % 3 != 0;
        });
        break;
      case 2:  // coarse clock window
        tb.guard([](FireCtx& ctx) { return (ctx.engine->clock() >> 2) % 2 == 0; });
        break;
      case 3: {  // state-referencing backpressure (declared via reads_state)
        const core::PlaceId watched = places[backpressure_place];
        tb.guard([watched](FireCtx& ctx) {
          return ctx.engine->tokens_in_place(watched) < 2;
        });
        tb.reads_state(places[backpressure_place]);
        break;
      }
      default:
        break;
    }
  };
  auto add_action = [&](auto& tb, unsigned kind, unsigned from_place) {
    switch (kind) {
      case 1:
        tb.action([](FuzzMachine& fm, FireCtx&) { ++fm.actions_run; });
        break;
      case 2:  // token delay override for the next place entry
        tb.action([](FireCtx& ctx) {
          ctx.token->next_delay = 1 + ctx.token->seq % 3;
        });
        break;
      case 3: {  // age-based flush of an earlier stage every 11th instruction
        const core::StageId victim = stages[place_stage[pick(0, from_place)]];
        tb.action([victim](FuzzMachine& fm, FireCtx& ctx) {
          if (ctx.token->seq % 11 != 0) return;
          ++fm.flushes;
          const std::uint32_t older_than = ctx.token->seq;
          ctx.engine->flush_stage_if(victim, [older_than](const core::Token& t) {
            return t.kind == core::TokenKind::instruction &&
                   static_cast<const core::InstructionToken&>(t).seq > older_than;
          });
        });
        break;
      }
      default:
        break;
    }
  };

  // The sub-nets: for every (type, place) a forward edge (1-2 places ahead,
  // falling off the end retires), plus occasional lower-priority forks and
  // occasional *feedback* arcs ahead of the forward edge. This guarantees
  // every token always has a candidate transition wherever it sits, so
  // generated models cannot wedge on missing structure.
  for (unsigned t = 0; t < num_types; ++t) {
    for (unsigned i = 0; i < num_places; ++i) {
      const unsigned jump = pick(1, 2);
      const model::PlaceHandle target =
          (i + jump < num_places) ? places[i + jump] : b.end();
      const bool consume_here = res_consume_at[t] == static_cast<int>(i);
      std::uint8_t prio = 0;

      if (consume_here) {
        // Highest-priority consuming edge; the plain edge below is the
        // fallback.
        auto tb = b.add_transition("c" + std::to_string(t) + "_" + std::to_string(i),
                                   types[t]);
        tb.from(places[i], prio++).consume_reservation(res_place).to(target);
        add_action(tb, pick(0, 2), i);
      }

      // Feedback arc (Fig 5's L1 loop shape): send the token back to an
      // earlier place, at most `trips` times per token (token->raw is the
      // trip counter, reset at fetch), tried *before* the forward edge so it
      // actually fires. The enclosed places form a real token cycle, so the
      // engine's SCC analysis puts their stages on the two-list algorithm.
      if (i >= 1 && pick(0, 4) == 0) {
        const unsigned back = pick(0, i - 1);
        const std::uint32_t trips = pick(1, 2);
        auto lb = b.add_transition("l" + std::to_string(t) + "_" + std::to_string(i),
                                   types[t]);
        lb.from(places[i], prio++).to(places[back]);
        lb.guard([trips](FireCtx& ctx) { return ctx.token->raw < trips; });
        lb.action([](FuzzMachine& fm, FireCtx& ctx) {
          ++fm.loops_taken;
          ++ctx.token->raw;
        });
      }

      const std::uint8_t main_prio = prio;
      auto tb = b.add_transition("t" + std::to_string(t) + "_" + std::to_string(i),
                                 types[t]);
      tb.from(places[i], main_prio).to(target);
      if (res_emit_at[t] == static_cast<int>(i)) tb.emit_reservation(res_place);
      // Backpressure guards must watch a strictly *later* place: watching your
      // own (or an earlier) place can deadlock once it fills, and liveness of
      // the generated model is proven by induction from the last place back.
      unsigned guard_kind = pick(0, 3) == 1 ? pick(1, 3) : 0;
      if (guard_kind == 3 && i + 1 >= num_places) guard_kind = 1;
      add_guard(tb, guard_kind, i + 1 < num_places ? pick(i + 1, num_places - 1) : i);
      add_action(tb, pick(0, 4) == 0 ? 3 : pick(0, 2), i);

      if (pick(0, 3) == 0) {  // fork: alternative route at lower priority
        const unsigned fjump = pick(1, 3);
        const model::PlaceHandle ftarget =
            (i + fjump < num_places) ? places[i + fjump] : b.end();
        auto fb = b.add_transition("f" + std::to_string(t) + "_" + std::to_string(i),
                                   types[t]);
        fb.from(places[i], static_cast<std::uint8_t>(main_prio + 1)).to(ftarget);
        add_action(fb, pick(0, 2), i);
      }
    }
  }

  // Multi-issue fetch: up to `width` fresh tokens per cycle, type and pc a
  // deterministic hash of the emission index.
  const core::PlaceId entry = places[0];
  const unsigned type_count = num_types;
  std::vector<core::TypeId> type_ids;
  for (auto th : types) type_ids.push_back(th);
  b.add_independent_transition("fetch")
      .guard([](FuzzMachine& fm, FireCtx&) { return fm.emitted < fm.to_emit; })
      .action([entry, type_count, type_ids](FuzzMachine& fm, FireCtx& ctx) {
        core::InstructionToken* tok = ctx.engine->acquire_pooled_instruction();
        tok->type = type_ids[(fm.emitted * 2654435761u >> 8) % type_count];
        tok->pc = 0x1000 + fm.emitted * 4;
        tok->raw = 0;  // feedback-arc trip counter (recycled tokens keep raw)
        ++fm.emitted;
        ctx.engine->emit_instruction(tok, entry);
      })
      .max_fires_per_cycle(static_cast<int>(width))
      .to(places[0]);
}

core::EngineOptions options_for(unsigned seed, core::Backend backend) {
  core::EngineOptions o;
  o.backend = backend;
  // Exercise the ablation analyses too: some seeds double-buffer every stage,
  // some drop the state-reference rule. Both engines get identical options.
  o.force_two_list_all = seed % 7 == 3;
  o.two_list_state_refs = seed % 5 != 4;
  o.deadlock_limit = 20000;
  return o;
}

void expect_stats_equal(unsigned seed, const core::Stats& i, const core::Stats& c) {
  EXPECT_EQ(i.cycles, c.cycles) << "seed=" << seed;
  EXPECT_EQ(i.retired, c.retired) << "seed=" << seed;
  EXPECT_EQ(i.fetched, c.fetched) << "seed=" << seed;
  EXPECT_EQ(i.squashed, c.squashed) << "seed=" << seed;
  EXPECT_EQ(i.reservations, c.reservations) << "seed=" << seed;
  EXPECT_EQ(i.firings, c.firings) << "seed=" << seed;
  EXPECT_EQ(i.transition_fires, c.transition_fires) << "seed=" << seed;
  EXPECT_EQ(i.place_stalls, c.place_stalls) << "seed=" << seed;
}

/// Aggregate workload exercised by a seed range: guards that the corpus
/// really covers the mechanisms it claims to fuzz (flushes happened,
/// reservations were emitted and consumed, stalls occurred, some models ran
/// two-list stages), not just straight-line pipelines.
struct Coverage {
  std::uint64_t retired = 0;
  std::uint64_t squashed = 0;
  std::uint64_t reservations = 0;
  std::uint64_t stalls = 0;
  std::uint64_t loops_taken = 0;
  unsigned models_with_two_list = 0;
};

void run_seed(unsigned seed, Coverage& cov) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  auto make = [seed](core::Backend backend) {
    return std::make_unique<model::Simulator<FuzzMachine>>(
        "fuzz-" + std::to_string(seed), options_for(seed, backend),
        [seed](model::ModelBuilder<FuzzMachine>& b, FuzzMachine& m) {
          describe_random_model(seed, b, m);
        },
        FuzzMachine{});
  };
  auto interp = make(core::Backend::interpreted);
  auto comp = make(core::Backend::compiled);
  ASSERT_NE(dynamic_cast<gen::CompiledEngine*>(&comp->engine()), nullptr);
  ASSERT_EQ(dynamic_cast<gen::CompiledEngine*>(&interp->engine()), nullptr);

  Traces ti, tc;
  record(interp->engine(), ti);
  record(comp->engine(), tc);

  // Lockstep: compare the cheap aggregates after every cycle so a divergence
  // is localized to the first bad cycle, not discovered at the end.
  constexpr std::uint64_t kMaxCycles = 25000;
  std::uint64_t cycle = 0;
  for (; cycle < kMaxCycles; ++cycle) {
    const bool idone = interp->machine().emitted >= interp->machine().to_emit &&
                       interp->engine().tokens_in_flight() == 0;
    const bool cdone = comp->machine().emitted >= comp->machine().to_emit &&
                       comp->engine().tokens_in_flight() == 0;
    ASSERT_EQ(idone, cdone) << "seed=" << seed << " cycle=" << cycle;
    if (idone) break;
    ASSERT_TRUE(interp->step()) << "seed=" << seed << " interpreted engine stopped"
                                << " (deadlocked model?) at cycle " << cycle;
    ASSERT_TRUE(comp->step()) << "seed=" << seed << " compiled engine stopped"
                              << " (deadlocked model?) at cycle " << cycle;
    ASSERT_EQ(interp->clock(), comp->clock()) << "seed=" << seed;
    ASSERT_EQ(interp->engine().tokens_in_flight(), comp->engine().tokens_in_flight())
        << "seed=" << seed << " cycle=" << cycle;
    ASSERT_EQ(interp->stats().retired, comp->stats().retired)
        << "seed=" << seed << " cycle=" << cycle;
    ASSERT_EQ(interp->stats().firings, comp->stats().firings)
        << "seed=" << seed << " cycle=" << cycle;
  }
  ASSERT_LT(cycle, kMaxCycles) << "seed=" << seed << ": model did not drain "
                               << "(emitted=" << interp->machine().emitted << "/"
                               << interp->machine().to_emit << ", in flight "
                               << interp->engine().tokens_in_flight() << ")";

  // Full end-state comparison: every retirement and squash, cycle-stamped and
  // in order; all statistics; all machine-side counters.
  EXPECT_EQ(ti.retired, tc.retired) << "seed=" << seed;
  EXPECT_EQ(ti.squashed, tc.squashed) << "seed=" << seed;
  expect_stats_equal(seed, interp->stats(), comp->stats());
  EXPECT_EQ(interp->machine().emitted, comp->machine().emitted) << "seed=" << seed;
  EXPECT_EQ(interp->machine().actions_run, comp->machine().actions_run)
      << "seed=" << seed;
  EXPECT_EQ(interp->machine().flushes, comp->machine().flushes) << "seed=" << seed;
  EXPECT_EQ(interp->machine().loops_taken, comp->machine().loops_taken)
      << "seed=" << seed;
  // Conservation: every fetched token either retired or was squashed.
  EXPECT_EQ(interp->stats().fetched,
            interp->stats().retired + interp->stats().squashed)
      << "seed=" << seed;

  cov.retired += interp->stats().retired;
  cov.squashed += interp->stats().squashed;
  cov.reservations += interp->stats().reservations;
  cov.loops_taken += interp->machine().loops_taken;
  for (std::uint64_t s : interp->stats().place_stalls) cov.stalls += s;
  for (unsigned s = 0; s < interp->net().num_stages(); ++s)
    if (interp->engine().stage_is_two_list(static_cast<core::StageId>(s))) {
      ++cov.models_with_two_list;
      break;
    }
}

Coverage run_seed_range(unsigned first, unsigned last) {
  Coverage cov;
  for (unsigned seed = first; seed <= last; ++seed) run_seed(seed, cov);
  // Each ~40-seed shard must have exercised every fuzzed mechanism.
  EXPECT_GT(cov.retired, 1000u);
  EXPECT_GT(cov.squashed, 0u) << "no flush ever squashed an instruction";
  EXPECT_GT(cov.reservations, 0u) << "no reservation token was ever emitted";
  EXPECT_GT(cov.stalls, 0u) << "no guard or capacity stall ever happened";
  EXPECT_GT(cov.models_with_two_list, 0u) << "no model used a two-list stage";
  EXPECT_GT(cov.loops_taken, 0u)
      << "no token ever traversed a feedback arc — looping topologies uncovered";
  return cov;
}

// 128 seeds ≥ the 100 the acceptance bar asks for; three shards keep any
// failure's scope (and ctest's parallelism) reasonable.
TEST(FuzzLockstep, Seeds1To48) { run_seed_range(1, 48); }

TEST(FuzzLockstep, Seeds49To88) { run_seed_range(49, 88); }

TEST(FuzzLockstep, Seeds89To128) { run_seed_range(89, 128); }

}  // namespace
}  // namespace rcpn
