#include <gtest/gtest.h>

#include "mem/memory_system.hpp"
#include "util/rng.hpp"

namespace rcpn::mem {
namespace {

TEST(Memory, ByteRoundTrip) {
  Memory m;
  m.write8(0x8000, 0xAB);
  EXPECT_EQ(m.read8(0x8000), 0xAB);
  EXPECT_EQ(m.read8(0x8001), 0);  // untouched neighbours are zero
}

TEST(Memory, WordRoundTripLittleEndian) {
  Memory m;
  m.write32(0x100, 0x11223344);
  EXPECT_EQ(m.read32(0x100), 0x11223344u);
  EXPECT_EQ(m.read8(0x100), 0x44);  // little-endian like ARM
  EXPECT_EQ(m.read8(0x103), 0x11);
}

TEST(Memory, WordAccessesForceAlignment) {
  Memory m;
  m.write32(0x102, 0xCAFEBABE);  // low bits ignored
  EXPECT_EQ(m.read32(0x100), 0xCAFEBABEu);
  EXPECT_EQ(m.read32(0x103), 0xCAFEBABEu);
}

TEST(Memory, HalfwordRoundTrip) {
  Memory m;
  m.write16(0x200, 0xBEEF);
  EXPECT_EQ(m.read16(0x200), 0xBEEF);
  EXPECT_EQ(m.read16(0x201), 0xBEEF);  // aligned
}

TEST(Memory, CrossPageAccesses) {
  Memory m;
  const std::uint32_t boundary = Memory::kPageSize;
  m.write8(boundary - 1, 0x01);
  m.write8(boundary, 0x02);
  EXPECT_EQ(m.read8(boundary - 1), 0x01);
  EXPECT_EQ(m.read8(boundary), 0x02);
  EXPECT_EQ(m.resident_pages(), 2u);
}

TEST(Memory, BulkLoad) {
  Memory m;
  const std::uint8_t data[] = {1, 2, 3, 4, 5};
  m.load(0x8000, data);
  for (unsigned i = 0; i < 5; ++i) EXPECT_EQ(m.read8(0x8000 + i), data[i]);
}

TEST(Memory, UnbackedReadsAreZero) {
  Memory m;
  EXPECT_EQ(m.read32(0xDEAD0000), 0u);
  EXPECT_EQ(m.resident_pages(), 0u);  // reads do not allocate
}

CacheConfig small_cache() {
  CacheConfig c;
  c.size_bytes = 256;
  c.line_bytes = 16;
  c.assoc = 2;
  c.hit_latency = 1;
  c.miss_penalty = 10;
  return c;
}

TEST(Cache, ColdMissThenHit) {
  Cache c(small_cache());
  EXPECT_EQ(c.access(0x100, false), 11u);  // miss
  EXPECT_EQ(c.access(0x104, false), 1u);   // same line: hit
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_EQ(c.stats().hits, 1u);
}

TEST(Cache, LruEviction) {
  // 2-way, 8 sets of 16B: addresses 0x000, 0x080, 0x100 map to set 0.
  Cache c(small_cache());
  c.access(0x000, false);
  c.access(0x080, false);
  c.access(0x000, false);        // touch 0x000 -> LRU is 0x080
  c.access(0x100, false);        // evicts 0x080
  EXPECT_TRUE(c.contains(0x000));
  EXPECT_FALSE(c.contains(0x080));
  EXPECT_TRUE(c.contains(0x100));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, DirtyEvictionCountsWriteback) {
  Cache c(small_cache());
  c.access(0x000, true);   // dirty fill
  c.access(0x080, false);
  c.access(0x100, false);  // evicts dirty 0x000
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, WriteNoAllocatePolicy) {
  CacheConfig cfg = small_cache();
  cfg.write_allocate = false;
  Cache c(cfg);
  EXPECT_EQ(c.access(0x40, true), 11u);
  EXPECT_FALSE(c.contains(0x40));  // write-around
  EXPECT_EQ(c.access(0x40, false), 11u);  // still a miss
}

TEST(Cache, HitRatioStat) {
  Cache c(small_cache());
  c.access(0x0, false);
  c.access(0x0, false);
  c.access(0x0, false);
  c.access(0x0, false);
  EXPECT_DOUBLE_EQ(c.stats().hit_ratio(), 0.75);
}

TEST(Cache, ResetClearsTagsAndStats) {
  Cache c(small_cache());
  c.access(0x0, false);
  c.reset();
  EXPECT_FALSE(c.contains(0x0));
  EXPECT_EQ(c.stats().accesses, 0u);
}

class CacheSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CacheSweep, StreamingWorkloadNeverExceedsConfiguredLatencies) {
  const auto [assoc, lines] = GetParam();
  CacheConfig cfg;
  cfg.line_bytes = 32;
  cfg.size_bytes = static_cast<std::uint32_t>(32 * lines);
  cfg.assoc = static_cast<std::uint32_t>(assoc);
  Cache c(cfg);
  util::Xorshift64 rng(lines * 31 + assoc);
  for (int i = 0; i < 5000; ++i) {
    const auto addr = static_cast<std::uint32_t>(rng.below(1 << 16));
    const auto lat = c.access(addr, rng.chance(1, 4));
    EXPECT_TRUE(lat == cfg.hit_latency || lat == cfg.hit_latency + cfg.miss_penalty);
  }
  EXPECT_EQ(c.stats().hits + c.stats().misses, c.stats().accesses);
  EXPECT_EQ(c.stats().accesses, 5000u);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheSweep,
                         ::testing::Combine(::testing::Values(1, 2, 8, 32),
                                            ::testing::Values(32, 128, 512)));

TEST(MemorySystem, FetchAndDataDelaysUseSeparateCaches) {
  MemorySystemConfig cfg;
  cfg.icache.size_bytes = 1024;
  cfg.icache.line_bytes = 32;
  cfg.icache.assoc = 2;
  cfg.icache.miss_penalty = 20;
  cfg.dcache = cfg.icache;
  MemorySystem ms(cfg);
  EXPECT_EQ(ms.fetch_delay(0x8000), 21u);
  EXPECT_EQ(ms.fetch_delay(0x8004), 1u);
  EXPECT_EQ(ms.data_delay(0x8000, false), 21u);  // independent of icache
  EXPECT_EQ(ms.data_delay(0x8000, false), 1u);
}

TEST(MemorySystem, DisabledCachesAreSingleCycle) {
  MemorySystemConfig cfg;
  cfg.enable_icache = false;
  cfg.enable_dcache = false;
  MemorySystem ms(cfg);
  EXPECT_EQ(ms.fetch_delay(0x0), 1u);
  EXPECT_EQ(ms.data_delay(0x0, true), 1u);
}

}  // namespace
}  // namespace rcpn::mem
