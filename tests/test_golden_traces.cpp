// Golden cycle-stamped retire traces for the five machine models.
//
// Each trace file under tests/golden/ records, for a small fixed workload,
// every retirement as `cycle pc seq` in retire order — the full observable
// timing behaviour of the model, captured once and checked in. Both backends
// are diffed against the same file, so an equivalence regression (or an
// accidental timing change in a model or in either engine) fails by naming
// the machine, the backend and the *first diverging cycle*, instead of a
// distant aggregate mismatch.
//
// Regenerate after an intentional timing change with:
//   RCPN_REGEN_GOLDEN=1 ./test_golden_traces
// which rewrites the files in the source tree from the interpreted engine
// (the reference semantics) and still asserts the compiled engine agrees.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "machines/fig5_processor.hpp"
#include "machines/simple_pipeline.hpp"
#include "machines/strongarm.hpp"
#include "machines/tomasulo.hpp"
#include "machines/xscale.hpp"
#include "workloads/workloads.hpp"

namespace rcpn {
namespace {

struct RetireEvent {
  core::Cycle cycle = 0;
  std::uint64_t pc = 0;
  std::uint32_t seq = 0;
  bool operator==(const RetireEvent&) const = default;
};

void record_retires(core::Engine& eng, std::vector<RetireEvent>& out) {
  eng.hooks().on_retire = [&eng, &out](core::InstructionToken* t) {
    out.push_back(RetireEvent{eng.clock(), t->pc, t->seq});
  };
}

std::vector<machines::Fig5Instr> fig5_workload() {
  using I = machines::Fig5Instr;
  return {
      I::alui(I::AluOp::add, 1, 0, 7),
      I::alui(I::AluOp::add, 2, 1, 1),   // RAW hazard
      I::store(2, 0x100),
      I::load(3, 0x100),
      I::branch(2),
      I::alui(I::AluOp::add, 4, 0, 99),  // squashed by the branch
      I::alu(I::AluOp::mul, 5, 2, 3),
      I::alu(I::AluOp::xor_op, 6, 5, 1),
  };
}

std::vector<machines::Fig5Instr> tomasulo_workload() {
  using I = machines::Fig5Instr;
  return {
      I::alui(I::AluOp::add, 1, 0, 3),
      I::alu(I::AluOp::mul, 2, 1, 1),   // dependent chain
      I::alu(I::AluOp::mul, 3, 2, 2),
      I::alui(I::AluOp::add, 4, 0, 5),  // independent — issues out of order
      I::alui(I::AluOp::add, 5, 4, 1),
      I::alu(I::AluOp::xor_op, 6, 3, 5),
  };
}

/// Run machine `name` (fixed small workload) on `backend`; return its trace.
std::vector<RetireEvent> run_machine(const std::string& name, core::Backend backend) {
  core::EngineOptions opts;
  opts.backend = backend;
  std::vector<RetireEvent> trace;

  if (name == "fig2") {
    machines::SimplePipeline sim(64, opts);
    record_retires(sim.engine(), trace);
    sim.run();
  } else if (name == "fig5") {
    machines::Fig5Processor sim(opts);
    record_retires(sim.engine(), trace);
    sim.load(fig5_workload());
    sim.run();
  } else if (name == "tomasulo") {
    machines::TomasuloCore sim(4, 2, opts);
    record_retires(sim.engine(), trace);
    sim.load(tomasulo_workload());
    sim.run();
  } else if (name == "strongarm_crc") {
    // A fixed 1500-cycle window of the crc kernel: long enough to cover
    // icache/dcache misses, hazards and branches, small enough to check in.
    machines::StrongArmConfig cfg;
    cfg.engine.backend = backend;
    machines::StrongArmSim sim(cfg);
    record_retires(sim.engine(), trace);
    sim.run(workloads::build(*workloads::find("crc"), /*scale=*/1), /*max_cycles=*/1500);
  } else if (name == "xscale_adpcm") {
    machines::XScaleConfig cfg;
    cfg.engine.backend = backend;
    machines::XScaleSim sim(cfg);
    record_retires(sim.engine(), trace);
    sim.run(workloads::build(*workloads::find("adpcm"), /*scale=*/1),
            /*max_cycles=*/1500);
  } else {
    ADD_FAILURE() << "unknown machine " << name;
  }
  return trace;
}

std::string golden_path(const std::string& name) {
  return std::string(RCPN_GOLDEN_DIR) + "/" + name + ".trace";
}

std::vector<RetireEvent> load_golden(const std::string& name, bool& ok) {
  std::vector<RetireEvent> trace;
  std::ifstream in(golden_path(name));
  ok = in.good();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    RetireEvent e;
    fields >> e.cycle >> std::hex >> e.pc >> std::dec >> e.seq;
    ok = ok && !fields.fail();
    trace.push_back(e);
  }
  return trace;
}

void write_golden(const std::string& name, const std::vector<RetireEvent>& trace) {
  std::ofstream out(golden_path(name));
  ASSERT_TRUE(out.good()) << "cannot write " << golden_path(name);
  out << "# " << name << " golden cycle-stamped retire trace: cycle pc(hex) seq\n";
  for (const RetireEvent& e : trace)
    out << e.cycle << " " << std::hex << e.pc << std::dec << " " << e.seq << "\n";
}

/// Diff `trace` against `golden`, naming the first diverging retirement and
/// the cycle it happened in.
void expect_matches_golden(const std::string& name, const char* backend,
                           const std::vector<RetireEvent>& golden,
                           const std::vector<RetireEvent>& trace) {
  const std::size_t n = std::min(golden.size(), trace.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (golden[i] == trace[i]) continue;
    FAIL() << name << " (" << backend << "): first divergence at retirement #" << i
           << ": golden {cycle " << golden[i].cycle << ", pc 0x" << std::hex
           << golden[i].pc << std::dec << ", seq " << golden[i].seq << "} vs got {cycle "
           << trace[i].cycle << ", pc 0x" << std::hex << trace[i].pc << std::dec
           << ", seq " << trace[i].seq << "}";
  }
  EXPECT_EQ(golden.size(), trace.size())
      << name << " (" << backend << "): trace length differs; first "
      << (golden.size() < trace.size() ? "extra" : "missing") << " retirement is #" << n
      << (n < trace.size() ? " at cycle " + std::to_string(trace[n].cycle)
                           : n < golden.size()
                                 ? " at golden cycle " + std::to_string(golden[n].cycle)
                                 : "");
}

class GoldenTrace : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenTrace, BothBackendsMatchCheckedInTrace) {
  const std::string name = GetParam();
  const std::vector<RetireEvent> interp = run_machine(name, core::Backend::interpreted);
  const std::vector<RetireEvent> comp = run_machine(name, core::Backend::compiled);
  ASSERT_FALSE(interp.empty()) << name << ": workload retired nothing";

  if (std::getenv("RCPN_REGEN_GOLDEN") != nullptr) {
    write_golden(name, interp);
    expect_matches_golden(name, "compiled-vs-regenerated", interp, comp);
    GTEST_LOG_(INFO) << "regenerated " << golden_path(name) << " (" << interp.size()
                     << " retirements)";
    return;
  }

  bool ok = false;
  const std::vector<RetireEvent> golden = load_golden(name, ok);
  ASSERT_TRUE(ok) << "missing or malformed golden file " << golden_path(name)
                  << " — regenerate with RCPN_REGEN_GOLDEN=1 ./test_golden_traces";
  expect_matches_golden(name, "interpreted", golden, interp);
  expect_matches_golden(name, "compiled", golden, comp);
}

INSTANTIATE_TEST_SUITE_P(AllMachines, GoldenTrace,
                         ::testing::Values("fig2", "fig5", "tomasulo", "strongarm_crc",
                                           "xscale_adpcm"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
}  // namespace rcpn
