// Golden cycle-stamped retire traces for the golden machine models.
//
// Each trace file under tests/golden/ records, for a small fixed workload,
// every retirement as `cycle pc seq` in retire order — the full observable
// timing behaviour of the model, captured once and checked in. Both library
// backends are diffed against the same file, so an equivalence regression
// (or an accidental timing change in a model or in either engine) fails by
// naming the machine, the backend and the *first diverging cycle*, instead
// of a distant aggregate mismatch. The workload/trace machinery itself lives
// in machines/golden_runner.{hpp,cpp}, shared with the generated-simulator
// binaries (gen_sim_*) that CI diffs against the same files — three engines,
// one reference.
//
// Regenerate after an intentional timing change with:
//   RCPN_REGEN_GOLDEN=1 ./test_golden_traces
// which rewrites the files in the source tree from the interpreted engine
// (the reference semantics) and still asserts the compiled engine agrees.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "machines/golden_runner.hpp"

namespace rcpn {
namespace {

using machines::GoldenRetireEvent;

std::vector<GoldenRetireEvent> run_machine(const std::string& name,
                                           core::Backend backend) {
  core::EngineOptions opts;
  opts.backend = backend;
  return machines::run_golden_machine(name, opts);
}

std::string golden_path(const std::string& name) {
  return std::string(RCPN_GOLDEN_DIR) + "/" + name + ".trace";
}

void write_golden(const std::string& name, const std::vector<GoldenRetireEvent>& trace) {
  std::ofstream out(golden_path(name));
  ASSERT_TRUE(out.good()) << "cannot write " << golden_path(name);
  out << machines::format_golden_trace(name, trace);
}

void expect_matches_golden(const std::string& name, const char* backend,
                           const std::vector<GoldenRetireEvent>& golden,
                           const std::vector<GoldenRetireEvent>& trace) {
  const std::string diff = machines::diff_golden_traces(golden, trace);
  EXPECT_TRUE(diff.empty()) << name << " (" << backend << "): " << diff;
}

class GoldenTrace : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenTrace, BothBackendsMatchCheckedInTrace) {
  const std::string name = GetParam();
  const std::vector<GoldenRetireEvent> interp =
      run_machine(name, core::Backend::interpreted);
  const std::vector<GoldenRetireEvent> comp = run_machine(name, core::Backend::compiled);
  ASSERT_FALSE(interp.empty()) << name << ": workload retired nothing";

  if (std::getenv("RCPN_REGEN_GOLDEN") != nullptr) {
    write_golden(name, interp);
    expect_matches_golden(name, "compiled-vs-regenerated", interp, comp);
    GTEST_LOG_(INFO) << "regenerated " << golden_path(name) << " (" << interp.size()
                     << " retirements)";
    return;
  }

  std::vector<GoldenRetireEvent> golden;
  ASSERT_TRUE(machines::load_golden_trace(golden_path(name), golden))
      << "missing or malformed golden file " << golden_path(name)
      << " — regenerate with RCPN_REGEN_GOLDEN=1 ./test_golden_traces";
  expect_matches_golden(name, "interpreted", golden, interp);
  expect_matches_golden(name, "compiled", golden, comp);
}

INSTANTIATE_TEST_SUITE_P(AllMachines, GoldenTrace,
                         ::testing::Values("fig2", "fig5", "tomasulo", "strongarm_crc",
                                           "xscale_adpcm", "stallcause"),
                         [](const auto& info) { return std::string(info.param); });

// The trace keys and the golden runner's canonical key list must agree (the
// gen_sim_* CI jobs iterate the runner's list).
TEST(GoldenTrace, KeysMatchRunner) {
  const std::vector<std::string> expected = {
      "fig2", "fig5", "tomasulo", "strongarm_crc", "xscale_adpcm", "stallcause"};
  EXPECT_EQ(machines::golden_machine_keys(), expected);
}

}  // namespace
}  // namespace rcpn
