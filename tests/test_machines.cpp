// Tests for the example machines: the Fig 2 pipeline and the Fig 4/5
// representative processor — checking the paper's described behaviours
// (feedback-path forwarding, reservation-token branch stall, data-dependent
// memory delay, two-list marking of L3).
#include <gtest/gtest.h>

#include "machines/fig5_processor.hpp"
#include "machines/simple_pipeline.hpp"
#include "machines/tomasulo.hpp"

namespace rcpn::machines {
namespace {

using I = Fig5Instr;

TEST(SimplePipelineTest, AllTokensDrain) {
  SimplePipeline p(10);
  const std::uint64_t cycles = p.run();
  EXPECT_EQ(p.generated(), 10u);
  EXPECT_EQ(p.engine().stats().retired, 10u);
  // 5 of each type alternating.
  EXPECT_EQ(p.u2_fires(), 5u);
  EXPECT_EQ(p.u3_fires(), 5u);
  EXPECT_EQ(p.u4_fires(), 5u);
  EXPECT_GT(cycles, 10u);  // 1-wide with a 2-deep path for type A
}

TEST(SimplePipelineTest, TypeBBypassesL2) {
  SimplePipeline p(2);  // one A, one B
  p.run();
  EXPECT_EQ(p.u2_fires(), 1u);
  EXPECT_EQ(p.u4_fires(), 1u);
}

class Fig5Test : public ::testing::Test {
 protected:
  Fig5Processor cpu;
};

TEST_F(Fig5Test, AluComputes) {
  cpu.load({
      I::alui(I::AluOp::add, 1, 0, 5),    // r1 = r0 + 5
      I::alui(I::AluOp::add, 2, 1, 10),   // r2 = r1 + 10 (RAW dependence)
      I::alu(I::AluOp::mul, 3, 1, 2),     // r3 = r1 * r2
  });
  cpu.run();
  EXPECT_EQ(cpu.reg(1), 5u);
  EXPECT_EQ(cpu.reg(2), 15u);
  EXPECT_EQ(cpu.reg(3), 75u);
}

TEST_F(Fig5Test, FeedbackPathForwardsFromL3) {
  // Dependent ALU chain: the consumer cannot read s1 from the register file
  // (still reserved) — it must take the priority-1 feedback transition.
  cpu.load({
      I::alui(I::AluOp::add, 1, 0, 7),
      I::alui(I::AluOp::add, 2, 1, 1),  // needs r1 via L3 feedback
  });
  cpu.run();
  EXPECT_EQ(cpu.reg(2), 8u);
  EXPECT_GE(cpu.alu_issues_forwarded(), 1u);
}

TEST_F(Fig5Test, IndependentAluUsesRegisterFilePath) {
  cpu.load({
      I::alui(I::AluOp::add, 1, 0, 1),
      I::alui(I::AluOp::add, 2, 0, 2),  // independent
      I::alui(I::AluOp::add, 3, 0, 3),  // independent
  });
  cpu.run();
  EXPECT_EQ(cpu.alu_issues_forwarded(), 0u);
  EXPECT_EQ(cpu.alu_issues_direct(), 3u);
}

TEST_F(Fig5Test, L3GetsTwoListFromCircularReference) {
  // The paper's example: L3 is referenced circularly (canRead(L3) guard on
  // an upstream transition), so it must run the two-list algorithm.
  EXPECT_TRUE(cpu.engine().stage_is_two_list(cpu.net().place(cpu.l3()).stage));
  EXPECT_FALSE(cpu.engine().stage_is_two_list(cpu.net().place(cpu.l1()).stage));
  EXPECT_FALSE(cpu.engine().stage_is_two_list(cpu.net().place(cpu.l2()).stage));
}

TEST_F(Fig5Test, LoadStoreRoundTripWithDelay) {
  cpu.load({
      I::alui(I::AluOp::add, 1, 0, 42),
      I::store(1, 0x100),
      I::load(2, 0x100),
      I::alui(I::AluOp::add, 3, 2, 1),
  });
  cpu.run();
  EXPECT_EQ(cpu.memory().read32(0x100), 42u);
  EXPECT_EQ(cpu.reg(2), 42u);
  EXPECT_EQ(cpu.reg(3), 43u);
  EXPECT_GT(cpu.dcache().stats().accesses, 0u);
}

TEST_F(Fig5Test, ColdMissCostsMoreCycles) {
  // Same program twice: second run (warm cache state is reset by load(), so
  // run a program with two loads of the same line instead).
  cpu.load({I::load(1, 0x200), I::load(2, 0x200)});
  cpu.run();
  EXPECT_EQ(cpu.dcache().stats().misses, 1u);
  EXPECT_EQ(cpu.dcache().stats().hits, 1u);

  cpu.load({I::load(1, 0x200), I::load(2, 0x300)});
  const std::uint64_t cycles_two_misses = cpu.run();
  cpu.load({I::load(1, 0x200), I::load(2, 0x200)});
  const std::uint64_t cycles_one_miss = cpu.run();
  EXPECT_GT(cycles_two_misses, cycles_one_miss);
}

TEST_F(Fig5Test, BranchStallsFetchWithReservationToken) {
  // branch +2 skips the poison instruction.
  cpu.load({
      I::branch(2),
      I::alui(I::AluOp::add, 1, 0, 99),  // must be skipped
      I::alui(I::AluOp::add, 2, 0, 7),
  });
  cpu.run();
  EXPECT_EQ(cpu.reg(1), 0u);
  EXPECT_EQ(cpu.reg(2), 7u);
  EXPECT_GT(cpu.engine().stats().reservations, 0u);
}

TEST_F(Fig5Test, BackwardBranchLoops) {
  // r1 counts down from 3 by re-running an increment block. Unconditional
  // branches only: structure as straight-line with one backward jump over a
  // "done" flag using self-modifying... keep simple: forward branches only,
  // two hops.
  cpu.load({
      I::branch(2),
      I::alui(I::AluOp::add, 7, 0, 1),  // skipped
      I::branch(2),
      I::alui(I::AluOp::add, 7, 0, 2),  // skipped
      I::alui(I::AluOp::add, 1, 0, 5),
  });
  cpu.run();
  EXPECT_EQ(cpu.reg(7), 0u);
  EXPECT_EQ(cpu.reg(1), 5u);
}

TEST_F(Fig5Test, OutOfOrderCompletionLoadAluOverlap) {
  // A slow (missing) load followed by independent ALU work: the ALU
  // instructions complete while the load is still in L4 — out-of-order
  // completion, the configuration of Fig 4.
  cpu.load({
      I::load(1, 0x400),                // cold miss: several cycles in L4
      I::alui(I::AluOp::add, 2, 0, 1),  // independent
      I::alui(I::AluOp::add, 3, 2, 1),
  });
  cpu.run();
  EXPECT_EQ(cpu.reg(2), 1u);
  EXPECT_EQ(cpu.reg(3), 2u);
}

TEST_F(Fig5Test, WawHazardStallsSecondWriter) {
  cpu.load({
      I::load(1, 0x500),                // slow writer of r1
      I::alui(I::AluOp::add, 1, 0, 9),  // WAW on r1: must wait (single-writer)
  });
  cpu.run();
  EXPECT_EQ(cpu.reg(1), 9u);  // program order respected
}

TEST_F(Fig5Test, RunIsDeterministic) {
  std::vector<I> prog = {
      I::alui(I::AluOp::add, 1, 0, 3), I::store(1, 0x10), I::load(2, 0x10),
      I::branch(2),                    I::alui(I::AluOp::add, 4, 0, 1),
      I::alu(I::AluOp::xor_op, 5, 2, 1),
  };
  cpu.load(prog);
  const std::uint64_t c1 = cpu.run();
  const std::uint32_t r5 = cpu.reg(5);
  cpu.load(prog);
  const std::uint64_t c2 = cpu.run();
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(cpu.reg(5), r5);
}

// -- Tomasulo extension (tech-report example) ---------------------------------

TEST(TomasuloTest, ExecutesDependentChain) {
  TomasuloCore core;
  core.load({
      I::alui(I::AluOp::add, 1, 0, 4),
      I::alui(I::AluOp::add, 2, 1, 5),
      I::alu(I::AluOp::mul, 3, 1, 2),
  });
  core.run();
  EXPECT_EQ(core.reg(1), 4u);
  EXPECT_EQ(core.reg(2), 9u);
  EXPECT_EQ(core.reg(3), 36u);
}

TEST(TomasuloTest, IndependentWorkIssuesOutOfOrderAroundSlowChain) {
  TomasuloCore core;
  // A dependent multiply chain stalls in the reservation station; younger
  // independent adds must begin execution first (out-of-order issue).
  core.load({
      I::alui(I::AluOp::add, 1, 0, 3),
      I::alu(I::AluOp::mul, 2, 1, 1),   // r2 = r1*r1, waits for r1
      I::alu(I::AluOp::mul, 3, 2, 2),   // r3 = r2*r2, waits for r2
      I::alui(I::AluOp::add, 4, 0, 7),  // independent
      I::alui(I::AluOp::add, 5, 0, 8),  // independent
  });
  core.run();
  EXPECT_EQ(core.reg(2), 9u);
  EXPECT_EQ(core.reg(3), 81u);
  EXPECT_EQ(core.reg(4), 7u);
  EXPECT_EQ(core.reg(5), 8u);
  EXPECT_TRUE(core.observed_ooo_issue());
}

TEST(TomasuloTest, RenamingAllowsWawInFlight) {
  TomasuloCore core;
  // Two writers of r1 in flight (multi-writer renaming): the younger value
  // must survive architecturally and the consumer must see the older one.
  core.load({
      I::alui(I::AluOp::add, 1, 0, 10),
      I::alui(I::AluOp::add, 2, 1, 1),   // consumer of the first r1
      I::alui(I::AluOp::add, 1, 0, 20),  // younger writer of r1
  });
  core.run();
  EXPECT_EQ(core.reg(1), 20u);
  EXPECT_EQ(core.reg(2), 11u);
}

TEST(TomasuloTest, CdbSerializesBroadcasts) {
  TomasuloCore core(/*rs_entries=*/4, /*num_fus=*/4);
  // Four independent adds can all execute at once, but the unit-capacity CDB
  // admits one broadcast per cycle; values must still commit correctly.
  core.load({
      I::alui(I::AluOp::add, 1, 0, 1),
      I::alui(I::AluOp::add, 2, 0, 2),
      I::alui(I::AluOp::add, 3, 0, 3),
      I::alui(I::AluOp::add, 4, 0, 4),
  });
  const std::uint64_t cycles = core.run();
  for (unsigned r = 1; r <= 4; ++r) EXPECT_EQ(core.reg(r), r);
  EXPECT_GE(cycles, 7u);  // 4 broadcasts serialized + pipeline fill
}

TEST(TomasuloTest, CdbStageGetsTwoListFromCircularReference) {
  TomasuloCore core;
  // The Exec guard forwards from the CDB, which is downstream of the RS —
  // the engine must give the CDB stage the two-list algorithm.
  const core::PlaceId cdb = core.net().find_place("CDB");
  ASSERT_NE(cdb, core::kNoPlace);
  EXPECT_TRUE(core.engine().stage_is_two_list(core.net().place(cdb).stage));
}

}  // namespace
}  // namespace rcpn::machines
