#include <gtest/gtest.h>

#include "util/bits.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace rcpn::util {
namespace {

TEST(Bits, ExtractRanges) {
  EXPECT_EQ(bits(0xDEADBEEF, 31, 28), 0xDu);
  EXPECT_EQ(bits(0xDEADBEEF, 7, 0), 0xEFu);
  EXPECT_EQ(bits(0xDEADBEEF, 15, 8), 0xBEu);
  EXPECT_EQ(bits(0xFFFFFFFF, 31, 0), 0xFFFFFFFFu);
  EXPECT_EQ(bits(0x00000010, 4, 4), 1u);
}

TEST(Bits, SingleBit) {
  EXPECT_EQ(bit(0x80000000, 31), 1u);
  EXPECT_EQ(bit(0x80000000, 30), 0u);
  EXPECT_EQ(bit(1, 0), 1u);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0xFF, 8), -1);
  EXPECT_EQ(sign_extend(0x7F, 8), 127);
  EXPECT_EQ(sign_extend(0x800000, 24), -8388608);
  EXPECT_EQ(sign_extend(0x000001, 24), 1);
}

TEST(Bits, RotateRight) {
  EXPECT_EQ(rotr32(0x00000001, 1), 0x80000000u);
  EXPECT_EQ(rotr32(0x12345678, 0), 0x12345678u);
  EXPECT_EQ(rotr32(0x12345678, 32), 0x12345678u);
  EXPECT_EQ(rotr32(0xF0000000, 4), 0x0F000000u);
}

TEST(Bits, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(24));
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(4096), 12u);
}

TEST(Bits, Popcount) {
  EXPECT_EQ(popcount32(0), 0u);
  EXPECT_EQ(popcount32(0xFFFF), 16u);
  EXPECT_EQ(popcount32(0x8421), 4u);
}

TEST(Bits, AddCarryOverflow) {
  EXPECT_TRUE(add_carry(0xFFFFFFFF, 1, false));
  EXPECT_FALSE(add_carry(0x7FFFFFFF, 1, false));
  EXPECT_TRUE(add_overflow(0x7FFFFFFF, 1, false));
  EXPECT_FALSE(add_overflow(0xFFFFFFFF, 1, false));
  // Subtraction via a + ~b + 1: 5 - 3 has carry (no borrow).
  EXPECT_TRUE(add_carry(5, ~3u, true));
  EXPECT_FALSE(add_carry(3, ~5u, true));
}

TEST(Rng, DeterministicAndNonZero) {
  Xorshift64 a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    EXPECT_NE(va, 0u);
  }
}

TEST(Rng, BelowRespectsBound) {
  Xorshift64 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Xorshift64 rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Table, AlignedRendering) {
  Table t({"bench", "value"});
  t.add_row({"crc", "12.5"});
  t.add_row({"adpcm", "8.25"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("bench"), std::string::npos);
  EXPECT_NE(s.find("12.5"), std::string::npos);
  // Header underline present.
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, CsvRendering) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(1.256, 1), "1.3");
  EXPECT_EQ(Table::fmt(2.0, 2), "2.00");
}

}  // namespace
}  // namespace rcpn::util
