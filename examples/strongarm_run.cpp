// Run a paper benchmark (or your own .s file) on the RCPN-generated
// StrongArm cycle-accurate simulator and print the run summary.
//
//   $ ./strongarm_run [workload|path.s] [scale]
//   $ ./strongarm_run crc 5
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "arm/assembler.hpp"
#include "machines/strongarm.hpp"
#include "workloads/workloads.hpp"

using namespace rcpn;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "crc";
  const unsigned scale = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 2;

  sys::Program prog;
  if (const workloads::Workload* w = workloads::find(which)) {
    prog = workloads::build(*w, scale);
    std::printf("workload: %s (%s), scale %u\n", w->name.c_str(),
                w->description.c_str(), scale);
  } else {
    std::ifstream in(which);
    if (!in) {
      std::fprintf(stderr, "unknown workload / unreadable file: %s\n", which.c_str());
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    prog = arm::assemble(ss.str(), which).program;
    std::printf("assembled %s: %zu bytes at 0x%x\n", which.c_str(),
                prog.image_size(), prog.entry);
  }

  machines::StrongArmSim sim;
  sim.machine().sys.set_echo(true);
  std::printf("--- program output ---\n");
  const machines::RunResult r = sim.run(prog, 2'000'000'000ull);
  std::printf("----------------------\n");

  std::printf("exited:        %s (code %d)\n", r.exited ? "yes" : "no", r.exit_code);
  std::printf("cycles:        %llu\n", static_cast<unsigned long long>(r.cycles));
  std::printf("instructions:  %llu\n", static_cast<unsigned long long>(r.instructions));
  std::printf("CPI:           %.2f\n", r.cpi);
  std::printf("icache hits:   %.1f%%  dcache hits: %.1f%%\n",
              100.0 * r.icache_hit_ratio, 100.0 * r.dcache_hit_ratio);
  std::printf("redirects:     %llu (branch resolution)\n",
              static_cast<unsigned long long>(r.mispredicts));
  return r.exited ? 0 : 2;
}
