// The technical-report extension: Tomasulo's algorithm as an RCPN —
// reservation stations as a multi-capacity stage, register renaming through
// the multi-writer register file, and a unit-capacity CDB stage.
//
//   $ ./tomasulo_demo
#include <cstdio>

#include "machines/tomasulo.hpp"

using namespace rcpn;
using I = machines::Fig5Instr;

int main() {
  machines::TomasuloCore core(/*rs_entries=*/4, /*num_fus=*/2);

  // A slow dependent multiply chain plus independent adds: the adds overtake
  // the chain inside the reservation station (out-of-order issue), and two
  // in-flight writers of r1 demonstrate renaming.
  core.load({
      I::alui(I::AluOp::add, 1, 0, 3),   // r1 = 3
      I::alu(I::AluOp::mul, 2, 1, 1),    // r2 = r1*r1      (waits)
      I::alu(I::AluOp::mul, 3, 2, 2),    // r3 = r2*r2      (waits longer)
      I::alui(I::AluOp::add, 4, 0, 7),   // independent — overtakes
      I::alui(I::AluOp::add, 5, 0, 8),   // independent — overtakes
      I::alui(I::AluOp::add, 1, 0, 42),  // second writer of r1 (renamed)
  });

  const std::uint64_t cycles = core.run();

  std::printf("ran %llu cycles\n", static_cast<unsigned long long>(cycles));
  for (unsigned r = 1; r <= 5; ++r) std::printf("  r%u = %u\n", r, core.reg(r));
  std::printf("out-of-order issue observed: %s\n",
              core.observed_ooo_issue() ? "yes" : "no");
  std::printf("CDB stage two-listed by the engine's analysis: %s\n",
              core.engine().stage_is_two_list(
                  core.net().place(core.net().find_place("CDB")).stage)
                  ? "yes"
                  : "no");
  std::printf("%s", core.engine().stats().report(core.net()).c_str());
  return 0;
}
