// Quickstart: build the paper's Figure 2 pipeline from scratch with the raw
// RCPN API, run it, and inspect what the "simulator generation" step
// (Engine::build) extracted — the Fig 6 candidate table and the processing
// order.
//
//   $ ./quickstart
#include <cstdio>

#include "core/engine.hpp"

using namespace rcpn;

int main() {
  // -- model: Fig 2(a)'s pipeline as an RCPN (Fig 2c) -------------------------
  core::Net net("fig2");
  const core::StageId l1s = net.add_stage("L1", /*capacity=*/1);
  const core::StageId l2s = net.add_stage("L2", /*capacity=*/1);
  const core::PlaceId l1 = net.add_place("L1", l1s);
  const core::PlaceId l2 = net.add_place("L2", l2s);
  const core::TypeId type_a = net.add_type("A");  // flows U2 -> U3
  const core::TypeId type_b = net.add_type("B");  // leaves through U4

  net.add_transition("U2", type_a).from(l1).to(l2);
  net.add_transition("U3", type_a).from(l2).to(net.end_place());
  net.add_transition("U4", type_b).from(l1).to(net.end_place());

  // Instruction-independent sub-net: U1 generates alternating token types.
  std::uint64_t generated = 0;
  constexpr std::uint64_t kTokens = 10;
  net.add_independent_transition("U1")
      .guard([&](core::FireCtx&) { return generated < kTokens; })
      .action([&](core::FireCtx& ctx) {
        core::InstructionToken* t = ctx.engine->acquire_pooled_instruction();
        t->type = (generated++ % 2 == 0) ? type_a : type_b;
        ctx.engine->emit_instruction(t, l1);
      })
      .to(l1);

  // -- "generate" the simulator ------------------------------------------------
  core::Engine engine(net);
  engine.build();

  std::printf("model: %u places, %u transitions, %u sub-nets\n", net.num_places(),
              net.num_transitions(), net.num_types());
  std::printf("processing order (reverse topological):");
  for (core::PlaceId p : engine.process_order())
    std::printf(" %s", net.place(p).name.c_str());
  std::printf("\n");
  std::printf("candidates(L1, A): %zu  candidates(L1, B): %zu\n",
              engine.candidates(l1, type_a).size(),
              engine.candidates(l1, type_b).size());

  // -- run ---------------------------------------------------------------------
  while (generated < kTokens || engine.tokens_in_flight() > 0) engine.step();

  const core::Stats& s = engine.stats();
  std::printf("\nafter %llu cycles: %llu tokens retired, %llu firings\n",
              static_cast<unsigned long long>(s.cycles),
              static_cast<unsigned long long>(s.retired),
              static_cast<unsigned long long>(s.firings));
  std::printf("%s", s.report(net).c_str());
  return 0;
}
