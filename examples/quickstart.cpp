// Quickstart: describe the paper's Figure 2 pipeline with the declarative
// modeling API (ModelBuilder + Simulator), run it, and inspect what the
// "simulator generation" step extracted — the Fig 6 candidate table and the
// reverse-topological processing order.
//
//   $ ./quickstart          # run the pipeline and print the extraction
//   $ ./quickstart --dot    # print the model as graphviz instead
//                           # (pipe through `dot -Tsvg` to render)
#include <cstdio>
#include <cstring>

#include "gen/emit.hpp"
#include "model/simulator.hpp"

using namespace rcpn;

// The machine context: whatever state the model's guards and actions need.
// Here a token generator; a real processor model holds register files,
// memories and a pc (see src/machines/).
struct Generator {
  std::uint64_t to_generate = 0;
  std::uint64_t generated = 0;
};

int main(int argc, char** argv) {
  const bool dot = argc > 1 && std::strcmp(argv[1], "--dot") == 0;

  // Handles assigned by the description, used afterwards for introspection.
  model::PlaceHandle l1, l2;
  model::TypeHandle type_a, type_b;

  // -- model: Fig 2(a)'s pipeline as an RCPN (Fig 2c) -------------------------
  // Declarations return typed handles; build-time validation catches
  // duplicate names, dangling arcs and zero capacities before anything runs.
  model::Simulator<Generator> sim(
      "fig2",
      [&](model::ModelBuilder<Generator>& b, Generator&) {
        const model::StageHandle l1s = b.add_stage("L1", /*capacity=*/1);
        const model::StageHandle l2s = b.add_stage("L2", /*capacity=*/1);
        l1 = b.add_place("L1", l1s);
        l2 = b.add_place("L2", l2s);
        type_a = b.add_type("A");  // flows U2 -> U3
        type_b = b.add_type("B");  // leaves through U4

        b.add_transition("U2", type_a).from(l1).to(l2);
        b.add_transition("U3", type_a).from(l2).to(b.end());
        b.add_transition("U4", type_b).from(l1).to(b.end());

        // Instruction-independent sub-net: U1 generates alternating types.
        // Guards/actions receive the machine context typed — no void* casts.
        const core::TypeId ta = type_a, tb = type_b;
        const core::PlaceId fetch_into = l1;
        b.add_independent_transition("U1")
            .guard([](Generator& g, core::FireCtx&) { return g.generated < g.to_generate; })
            .action([ta, tb, fetch_into](Generator& g, core::FireCtx& ctx) {
              core::InstructionToken* t = ctx.engine->acquire_pooled_instruction();
              t->type = (g.generated++ % 2 == 0) ? ta : tb;
              ctx.engine->emit_instruction(t, fetch_into);
            })
            .to(l1);
      },
      Generator{/*to_generate=*/10});

  // -- graphviz export ---------------------------------------------------------
  if (dot) {
    std::printf("%s", gen::emit_dot(sim.net()).c_str());
    return 0;
  }

  // -- inspect the "generated" simulator --------------------------------------
  const core::Net& net = sim.net();
  std::printf("model: %u places, %u transitions, %u sub-nets\n", net.num_places(),
              net.num_transitions(), net.num_types());
  std::printf("processing order (reverse topological):");
  for (core::PlaceId p : sim.engine().process_order())
    std::printf(" %s", net.place(p).name.c_str());
  std::printf("\n");
  std::printf("candidates(L1, A): %zu  candidates(L1, B): %zu\n",
              sim.engine().candidates(l1, type_a).size(),
              sim.engine().candidates(l1, type_b).size());

  // -- run ---------------------------------------------------------------------
  sim.drain([](const Generator& g) { return g.generated >= g.to_generate; });

  const core::Stats& s = sim.stats();
  std::printf("\nafter %llu cycles: %llu tokens retired, %llu firings\n",
              static_cast<unsigned long long>(s.cycles),
              static_cast<unsigned long long>(s.retired),
              static_cast<unsigned long long>(s.firings));
  std::printf("%s", sim.report().c_str());
  return 0;
}
