// Run a paper benchmark on the RCPN-generated XScale simulator (the Fig 9
// superpipeline: 7 stages, three parallel pipes, BTB, out-of-order
// completion) and compare its timing against the StrongArm model.
//
//   $ ./xscale_run [workload] [scale]
#include <cstdio>
#include <cstdlib>

#include "machines/strongarm.hpp"
#include "machines/xscale.hpp"
#include "workloads/workloads.hpp"

using namespace rcpn;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "g721";
  const unsigned scale = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 2;

  const workloads::Workload* w = workloads::find(which);
  if (w == nullptr) {
    std::fprintf(stderr, "unknown workload: %s\n", which.c_str());
    return 1;
  }
  const sys::Program prog = workloads::build(*w, scale);
  std::printf("workload: %s, scale %u\n\n", w->name.c_str(), scale);

  machines::XScaleSim xs;
  const machines::RunResult rx = xs.run(prog, 2'000'000'000ull);
  machines::StrongArmSim sa;
  const machines::RunResult rs = sa.run(prog, 2'000'000'000ull);

  std::printf("                 XScale     StrongArm\n");
  std::printf("cycles:      %10llu  %10llu\n",
              static_cast<unsigned long long>(rx.cycles),
              static_cast<unsigned long long>(rs.cycles));
  std::printf("instructions:%10llu  %10llu\n",
              static_cast<unsigned long long>(rx.instructions),
              static_cast<unsigned long long>(rs.instructions));
  std::printf("CPI:         %10.2f  %10.2f\n", rx.cpi, rs.cpi);
  std::printf("mispredicts: %10llu  %10llu   (XScale: BTB; StrongArm: none)\n",
              static_cast<unsigned long long>(rx.mispredicts),
              static_cast<unsigned long long>(rs.mispredicts));
  std::printf("output match: %s\n", rx.output == rs.output ? "yes" : "NO (bug!)");

  // The models' relative complexity, visible in their static structure
  // (paper: the StrongArm simulator is faster because its net is simpler).
  const auto mx = xs.net().model_stats();
  const auto ms = sa.net().model_stats();
  std::printf("\nmodel size (places/transitions/arcs): XScale %u/%u/%u,"
              " StrongArm %u/%u/%u\n",
              mx.places, mx.transitions, mx.arcs, ms.places, ms.transitions,
              ms.arcs);
  return 0;
}
