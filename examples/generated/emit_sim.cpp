// rcpn_emit: the model-as-data command line — serialize machines to .rcpn
// descriptions and generate standalone C++ simulators from keys or files.
//
//   rcpn_emit list                         # what machines exist
//   rcpn_emit describe fig2 --out fig2.rcpn   # machine -> .rcpn description
//   rcpn_emit emit fig2 --out gen_fig2.cpp    # machine -> simulator source
//   rcpn_emit emit models/strongarm.rcpn --freestanding  # .rcpn -> simulator
//   rcpn_emit fuzz 7 --out gen_fuzz7.cpp      # shorthand for emit fuzz-7
//
// The generate→compile→verify workflow (see README "Generated simulators"):
//
//   ./rcpn_emit emit fig2 --out gen_fig2.cpp  # 1. generate
//   g++ -O3 -flto -I src gen_fig2.cpp -lrcpn -o gen_fig2   # 2. compile
//   ./gen_fig2 --golden tests/golden/fig2.trace            # 3. verify
//
// With --freestanding the emitted file inlines the runtime subset and needs
// no -I and no library at all:
//
//   ./rcpn_emit emit fig2 --freestanding | c++ -std=c++20 -O3 -x c++ - && ./a.out
//
// When `emit` is handed a .rcpn file the description's recorded engine
// options are the base and explicit CLI flags override them; delegate
// symbols resolve through the library's shipped registries
// (machines/desc_machines.hpp).
//
// The old flat spelling (`rcpn_emit fig2 --out ...`) still works through a
// deprecation shim that prints the new spelling.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "desc/description.hpp"
#include "gen/compiled_engine.hpp"
#include "gen/emit.hpp"
#include "gen/emit_simulator.hpp"
#include "machines/desc_machines.hpp"
#include "machines/fuzz_model.hpp"
#include "machines/golden_runner.hpp"
#include "model/simulator.hpp"

using namespace rcpn;

namespace {

int usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s <command> ...\n"
               "commands:\n"
               "  list\n"
               "      print the machine keys this build ships\n"
               "  describe <machine> [--out FILE] [schedule flags]\n"
               "      serialize the machine's model to a canonical .rcpn\n"
               "      description (stdout unless --out)\n"
               "  emit <machine|file.rcpn> [--out FILE] [--no-main] [--freestanding]\n"
               "       [schedule flags] [--profile] [--tables] [--dot]\n"
               "      generate the standalone C++ simulator source\n"
               "  fuzz <seed> [emit flags]\n"
               "      shorthand for `emit fuzz-<seed>`\n"
               "  machine: one of",
               argv0);
  for (const std::string& key : machines::golden_machine_keys())
    std::fprintf(stderr, " %s", key.c_str());
  std::fprintf(stderr,
               ", fuzz-<seed> (seeded random model, generic main),\n"
               "  or a path ending in .rcpn (the description's recorded engine\n"
               "  options are the base; explicit flags below override them)\n"
               "  schedule flags: --force-two-list-all --no-two-list-state-refs\n"
               "                  --linear-search --quiescence  (emit an\n"
               "                  ablation-variant schedule, stamped and verified\n"
               "                  at build(); --quiescence enables the idle-cycle\n"
               "                  fast-forward in the emitted engine)\n"
               "  --no-main: emit engine + registrar only (link into another binary)\n"
               "  --freestanding: inline the runtime subset — the emitted file\n"
               "                  compiles with no repo includes and links against\n"
               "                  nothing but the C++ standard library\n"
               "  --profile: run the machine's golden workload first and order the\n"
               "             emitted candidate runs and dispatch switches by the\n"
               "             measured per-transition firing counts (bit-identical\n"
               "             simulation; layout only)\n"
               "  --tables:  emit the static-schedule table dump (gen::emit_cpp)\n"
               "  --dot:     emit the model structure for graphviz (gen::emit_dot)\n"
               "A fuzz-<seed> artifact's main is the *generic* CLI\n"
               "(machines/generic_main.hpp): positional arg = emit count,\n"
               "--cycles N = cycle budget.\n");
  return code;
}

/// Build machine `key` — a golden key or "fuzz-<seed>" — and hand its net and
/// (compiled) engine to `fn`, like inspect_golden_machine but fuzz-aware.
void inspect_machine(const std::string& key, core::EngineOptions options,
                     const machines::GoldenInspectFn& fn) {
  if (key.rfind("fuzz-", 0) == 0) {
    const unsigned seed =
        static_cast<unsigned>(std::strtoul(key.c_str() + 5, nullptr, 10));
    model::Simulator<machines::FuzzMachine> sim(
        machines::fuzz_model_name(seed), options,
        [seed](model::ModelBuilder<machines::FuzzMachine>& b,
               machines::FuzzMachine& m) { machines::describe_fuzz_model(seed, b, m); },
        machines::FuzzMachine{});
    fn(sim.net(), sim.engine());
    return;
  }
  machines::inspect_golden_machine(key, options, fn);
}

/// The generic-main expressions for a fuzz-<seed> model: re-create the seed's
/// description, take the emit count from argv, drain when it is reached.
void fill_fuzz_generic_main(const std::string& key, gen::EmitSimOptions& emit_opts) {
  const std::string seed = key.substr(5);
  const std::string m = "rcpn::machines::FuzzMachine";
  emit_opts.generic_describe_expr =
      "[](rcpn::model::ModelBuilder<" + m + ">& b, " + m +
      "& m) { rcpn::machines::describe_fuzz_model(" + seed + "u, b, m); }";
  emit_opts.generic_workload_expr =
      "[](" + m +
      "& m, const std::vector<std::string>& args) {\n"
      "        if (!args.empty()) m.to_emit = std::strtoull(args[0].c_str(), nullptr, "
      "10);\n"
      "      }";
  emit_opts.generic_done_expr = "[](const " + m + "& m) { return m.emitted >= m.to_emit; }";
}

/// Write `source` to `out_path`, or stdout when the path is empty.
int write_output(const std::string& source, const std::string& out_path) {
  if (out_path.empty()) {
    std::fputs(source.c_str(), stdout);
    return 0;
  }
  std::ofstream out(out_path);
  out << source;
  if (!out.good()) {
    std::fprintf(stderr, "rcpn_emit: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "rcpn_emit: wrote %s (%zu bytes)\n", out_path.c_str(),
               source.size());
  return 0;
}

/// Which schedule flags the command line explicitly set — .rcpn inputs use
/// the description's recorded options as the base and re-apply only these.
struct ScheduleOverrides {
  bool force_two_list_all = false;
  bool no_two_list_state_refs = false;
  bool linear_search = false;
  bool quiescence = false;

  void apply(core::EngineOptions& options) const {
    if (force_two_list_all) options.force_two_list_all = true;
    if (no_two_list_state_refs) options.two_list_state_refs = false;
    if (linear_search) options.linear_search = true;
    if (quiescence) options.quiescence_skip = true;
  }
};

/// Shared schedule-flag parsing; returns false on an unrecognized flag.
bool parse_schedule_flag(const std::string& arg, ScheduleOverrides& seen) {
  if (arg == "--force-two-list-all") {
    seen.force_two_list_all = true;
  } else if (arg == "--no-two-list-state-refs") {
    seen.no_two_list_state_refs = true;
  } else if (arg == "--linear-search") {
    seen.linear_search = true;
  } else if (arg == "--quiescence") {
    seen.quiescence = true;
  } else {
    return false;
  }
  return true;
}

int cmd_list(const char* argv0, const std::vector<std::string>& args) {
  if (!args.empty()) return usage(argv0, 2);
  for (const std::string& key : machines::golden_machine_keys())
    std::printf("%s\n", key.c_str());
  std::printf("fuzz-<seed>\n");
  return 0;
}

int cmd_describe(const char* argv0, const std::vector<std::string>& args) {
  std::string machine, out_path;
  core::EngineOptions options;
  options.backend = core::Backend::compiled;
  ScheduleOverrides overrides;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (parse_schedule_flag(arg, overrides)) {
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv0, 0);
    } else if (machine.empty() && arg[0] != '-') {
      machine = arg;
    } else {
      return usage(argv0, 2);
    }
  }
  if (machine.empty()) return usage(argv0, 2);
  overrides.apply(options);
  try {
    const desc::Description d = machines::describe_machine(machine, options);
    return write_output(desc::to_text(d), out_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rcpn_emit: %s\n", e.what());
    return 1;
  }
}

int cmd_emit(const char* argv0, const std::vector<std::string>& args) {
  std::string machine, out_path;
  bool with_main = true, tables = false, dot = false, freestanding = false;
  bool profile = false;
  ScheduleOverrides overrides;
  core::EngineOptions cli_options;
  cli_options.backend = core::Backend::compiled;  // the lowering pass lives there
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (arg == "--no-main") {
      with_main = false;
    } else if (arg == "--freestanding") {
      freestanding = true;
    } else if (parse_schedule_flag(arg, overrides)) {
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--tables") {
      tables = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv0, 0);
    } else if (machine.empty() && arg[0] != '-') {
      machine = arg;
    } else {
      return usage(argv0, 2);
    }
  }
  if (machine.empty() || (tables && dot)) return usage(argv0, 2);
  if (freestanding && (tables || dot)) {
    std::fprintf(stderr, "--freestanding applies to simulator emission only\n");
    return usage(argv0, 2);
  }

  const bool from_file =
      machine.size() > 5 && machine.compare(machine.size() - 5, 5, ".rcpn") == 0;
  std::string source;
  try {
    // Resolve a .rcpn input up front: the description's recorded options are
    // the base; explicit CLI schedule flags override them.
    desc::Description d;
    std::string key = machine;  // golden key or fuzz-<seed>
    core::EngineOptions options = cli_options;
    if (from_file) {
      d = desc::read_file(machine);
      options = desc::engine_options(d, cli_options);
      key = machines::description_machine_key(d);
      if (key.empty()) key = d.model;  // fuzz-<seed> descriptions
    }
    overrides.apply(options);
    const bool fuzz = key.rfind("fuzz-", 0) == 0;

    // --profile: run the golden workload once on the compiled backend and
    // collect the per-transition firing counts the emitter orders by.
    std::vector<std::uint64_t> profile_fires;
    if (profile && !tables && !dot) {
      const machines::GoldenRunResult r =
          fuzz ? machines::golden_run_fuzz(
                     static_cast<unsigned>(std::strtoul(key.c_str() + 5, nullptr, 10)),
                     options)
               : machines::run_golden_machine_full(key, options);
      profile_fires = r.stats.transition_fires;
    }
    const machines::GoldenInspectFn lower = [&](core::Net& net, core::Engine& eng) {
      auto& ce = dynamic_cast<gen::CompiledEngine&>(eng);
      if (dot) {
        source = gen::emit_dot(net);
      } else if (tables) {
        source = gen::emit_cpp(ce.compiled(), net);
      } else {
        gen::EmitSimOptions emit_opts;
        emit_opts.engine_options = options;
        emit_opts.profile_fires = profile_fires;
        if (freestanding) {
          emit_opts.mode = gen::EmitMode::freestanding;
          emit_opts.extra_roots.push_back(
              fuzz ? "machines/fuzz_model.hpp" : machines::golden_run_header(key));
          if (with_main && !fuzz) {
            emit_opts.run_expr = machines::golden_run_expr(key);
            emit_opts.session_expr = machines::golden_session_expr(key);
          }
        }
        if (with_main) {
          if (fuzz)
            fill_fuzz_generic_main(key, emit_opts);
          else
            emit_opts.machine_key = key;
        }
        source = gen::emit_simulator(ce.compiled(), net, emit_opts);
      }
    };
    if (from_file)
      machines::inspect_description(d, options, lower);
    else
      inspect_machine(key, options, lower);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rcpn_emit: %s\n", e.what());
    return 1;
  }
  return write_output(source, out_path);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0], 2);
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "--help" || cmd == "-h") return usage(argv[0], 0);
  if (cmd == "list") return cmd_list(argv[0], args);
  if (cmd == "describe") return cmd_describe(argv[0], args);
  if (cmd == "emit") return cmd_emit(argv[0], args);
  if (cmd == "fuzz") {
    // `rcpn_emit fuzz 7 ...` == `rcpn_emit emit fuzz-7 ...`
    if (args.empty() || args[0].empty() || args[0][0] == '-')
      return usage(argv[0], 2);
    args[0] = "fuzz-" + args[0];
    return cmd_emit(argv[0], args);
  }
  // Deprecation shim: the pre-subcommand flat spelling (`rcpn_emit fig2
  // --out ...`) behaves exactly like `emit` and prints the new invocation.
  std::string spelled = std::string(argv[0]) + " emit";
  for (int i = 1; i < argc; ++i) spelled += std::string(" ") + argv[i];
  std::fprintf(stderr,
               "rcpn_emit: warning: flat invocation is deprecated; use:\n  %s\n",
               spelled.c_str());
  args.assign(argv + 1, argv + argc);
  return cmd_emit(argv[0], args);
}
