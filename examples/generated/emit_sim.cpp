// rcpn_emit: generate the standalone C++ simulator source for a machine.
//
// The generate→compile→verify workflow (see README "Generated simulators"):
//
//   ./rcpn_emit fig2 --out gen_fig2.cpp     # 1. generate
//   g++ -O3 -flto -I src gen_fig2.cpp -lrcpn -o gen_fig2   # 2. compile
//   ./gen_fig2 --golden tests/golden/fig2.trace            # 3. verify
//
// With --freestanding the emitted file inlines the runtime subset and needs
// no -I and no library at all:
//
//   ./rcpn_emit fig2 --freestanding | c++ -std=c++20 -O3 -x c++ - && ./a.out
//
// The build does this for all five machines automatically (gen_sim_* /
// gen_fs_* targets) and CI gates every push on the trace diff. `--tables`
// and `--dot` expose the other two exporters; the --force-two-list-all /
// --no-two-list-state-refs / --linear-search flags emit ablation-variant
// schedules (stamped into the artifact and verified at build()).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "gen/compiled_engine.hpp"
#include "gen/emit.hpp"
#include "gen/emit_simulator.hpp"
#include "machines/fuzz_model.hpp"
#include "machines/golden_runner.hpp"
#include "model/simulator.hpp"

using namespace rcpn;

namespace {

int usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s <machine> [--out FILE] [--no-main] [--freestanding]\n"
               "       [--force-two-list-all] [--no-two-list-state-refs]\n"
               "       [--linear-search] [--quiescence] [--profile]\n"
               "       [--tables] [--dot]\n"
               "  machine: one of", argv0);
  for (const std::string& key : machines::golden_machine_keys())
    std::fprintf(stderr, " %s", key.c_str());
  std::fprintf(stderr,
               ", or fuzz-<seed> (seeded random model, generic main)\n"
               "  default: emit the standalone generated simulator (with main)\n"
               "  --no-main: emit engine + registrar only (link into another binary)\n"
               "  --freestanding: inline the runtime subset — the emitted file\n"
               "                  compiles with no repo includes and links against\n"
               "                  nothing but the C++ standard library\n"
               "  --force-two-list-all / --no-two-list-state-refs / --linear-search /\n"
               "  --quiescence:   emit an ablation-variant schedule (stamped and\n"
               "                  verified at build()); --quiescence enables the\n"
               "                  idle-cycle fast-forward in the emitted engine\n"
               "  --profile: run the machine's golden workload first and order the\n"
               "             emitted candidate runs and dispatch switches by the\n"
               "             measured per-transition firing counts (bit-identical\n"
               "             simulation; layout only)\n"
               "  --tables:  emit the static-schedule table dump (gen::emit_cpp)\n"
               "  --dot:     emit the model structure for graphviz (gen::emit_dot)\n"
               "A fuzz-<seed> artifact's main is the *generic* CLI\n"
               "(machines/generic_main.hpp): positional arg = emit count,\n"
               "--cycles N = cycle budget.\n");
  return code;
}

/// Build machine `key` — a golden key or "fuzz-<seed>" — and hand its net and
/// (compiled) engine to `fn`, like inspect_golden_machine but fuzz-aware.
void inspect_machine(const std::string& key, core::EngineOptions options,
                     const machines::GoldenInspectFn& fn) {
  if (key.rfind("fuzz-", 0) == 0) {
    const unsigned seed =
        static_cast<unsigned>(std::strtoul(key.c_str() + 5, nullptr, 10));
    model::Simulator<machines::FuzzMachine> sim(
        machines::fuzz_model_name(seed), options,
        [seed](model::ModelBuilder<machines::FuzzMachine>& b,
               machines::FuzzMachine& m) { machines::describe_fuzz_model(seed, b, m); },
        machines::FuzzMachine{});
    fn(sim.net(), sim.engine());
    return;
  }
  machines::inspect_golden_machine(key, options, fn);
}

/// The generic-main expressions for a fuzz-<seed> model: re-create the seed's
/// description, take the emit count from argv, drain when it is reached.
void fill_fuzz_generic_main(const std::string& key, gen::EmitSimOptions& emit_opts) {
  const std::string seed = key.substr(5);
  const std::string m = "rcpn::machines::FuzzMachine";
  emit_opts.generic_describe_expr =
      "[](rcpn::model::ModelBuilder<" + m + ">& b, " + m +
      "& m) { rcpn::machines::describe_fuzz_model(" + seed + "u, b, m); }";
  emit_opts.generic_workload_expr =
      "[](" + m +
      "& m, const std::vector<std::string>& args) {\n"
      "        if (!args.empty()) m.to_emit = std::strtoull(args[0].c_str(), nullptr, "
      "10);\n"
      "      }";
  emit_opts.generic_done_expr = "[](const " + m + "& m) { return m.emitted >= m.to_emit; }";
}

}  // namespace

int main(int argc, char** argv) {
  std::string machine, out_path;
  bool with_main = true, tables = false, dot = false, freestanding = false;
  bool profile = false;
  core::EngineOptions options;
  options.backend = core::Backend::compiled;  // the lowering pass lives there
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--no-main") {
      with_main = false;
    } else if (arg == "--freestanding") {
      freestanding = true;
    } else if (arg == "--force-two-list-all") {
      options.force_two_list_all = true;
    } else if (arg == "--no-two-list-state-refs") {
      options.two_list_state_refs = false;
    } else if (arg == "--linear-search") {
      options.linear_search = true;
    } else if (arg == "--quiescence") {
      options.quiescence_skip = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--tables") {
      tables = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0], 0);
    } else if (machine.empty() && arg[0] != '-') {
      machine = arg;
    } else {
      return usage(argv[0], 2);
    }
  }
  if (machine.empty() || (tables && dot)) return usage(argv[0], 2);
  if (freestanding && (tables || dot)) {
    std::fprintf(stderr, "--freestanding applies to simulator emission only\n");
    return usage(argv[0], 2);
  }

  const bool fuzz = machine.rfind("fuzz-", 0) == 0;
  std::string source;
  try {
    // --profile: run the golden workload once on the compiled backend and
    // collect the per-transition firing counts the emitter orders by.
    std::vector<std::uint64_t> profile_fires;
    if (profile && !tables && !dot) {
      const machines::GoldenRunResult r =
          fuzz ? machines::golden_run_fuzz(
                     static_cast<unsigned>(std::strtoul(machine.c_str() + 5, nullptr, 10)),
                     options)
               : machines::run_golden_machine_full(machine, options);
      profile_fires = r.stats.transition_fires;
    }
    inspect_machine(
        machine, options, [&](core::Net& net, core::Engine& eng) {
          auto& ce = dynamic_cast<gen::CompiledEngine&>(eng);
          if (dot) {
            source = gen::emit_dot(net);
          } else if (tables) {
            source = gen::emit_cpp(ce.compiled(), net);
          } else {
            gen::EmitSimOptions emit_opts;
            emit_opts.engine_options = options;
            emit_opts.profile_fires = profile_fires;
            if (freestanding) {
              emit_opts.mode = gen::EmitMode::freestanding;
              emit_opts.extra_roots.push_back(
                  fuzz ? "machines/fuzz_model.hpp" : machines::golden_run_header(machine));
              if (with_main && !fuzz)
                emit_opts.run_expr = machines::golden_run_expr(machine);
            }
            if (with_main) {
              if (fuzz)
                fill_fuzz_generic_main(machine, emit_opts);
              else
                emit_opts.machine_key = machine;
            }
            source = gen::emit_simulator(ce.compiled(), net, emit_opts);
          }
        });
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rcpn_emit: %s\n", e.what());
    return 1;
  }

  if (out_path.empty()) {
    std::fputs(source.c_str(), stdout);
  } else {
    std::ofstream out(out_path);
    out << source;
    if (!out.good()) {
      std::fprintf(stderr, "rcpn_emit: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "rcpn_emit: wrote %s (%zu bytes)\n", out_path.c_str(),
                 source.size());
  }
  return 0;
}
