// rcpn_farm — sweep-grid driver for farm::SimFarm.
//
// Builds a job grid (machines x schedule variants x seeds x executors), runs
// it on a work-stealing worker pool, prints per-job progress and the
// aggregate, and optionally writes the machine-readable FarmReport JSON.
//
//   rcpn_farm                          default grid, hardware_concurrency workers
//   rcpn_farm --verify                 run the grid serially AND in parallel,
//                                      require identical stable reports, print
//                                      the speedup
//   rcpn_farm --inject-hang --inject-throw
//                                      add one hanging and one throwing job;
//                                      the farm must report them as
//                                      timeout/failed while the rest succeed
//   rcpn_farm --json FILE              write the full report JSON
//
// Grid knobs: --machines a,b,c  --variants default,twolist,linear,nostateref
// --seeds N  --executors in_process,subprocess  --cycles N (fuzz budget)
// --workers N  --timeout-ms N  --bin-dir DIR  --quiet
//
// --progress prints a once-per-second heartbeat line to stderr (done/total,
// percentage, elapsed) — the machine-parseable liveness signal for CI logs
// that would otherwise sit silent for the whole sweep. Combines with --quiet
// (heartbeat only, no per-job lines).
//
// The default seed count honours REPRO_SCALE (the repo-wide CI scaling knob):
// seeds = max(1, round(4 * REPRO_SCALE)).
//
// Exit status: 0 iff every non-injected job is ok, every injected job failed
// the way it was meant to (hang -> timeout, throw -> failed), and --verify
// (if given) found the serial and parallel reports identical.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "farm/sim_farm.hpp"
#include "machines/golden_runner.hpp"

using namespace rcpn;

namespace {

struct CliOptions {
  std::vector<std::string> machines;   // default: the five golden keys
  std::vector<std::string> variants = {"default", "twolist"};
  std::vector<std::string> executors = {"in_process", "subprocess"};
  std::size_t seeds = 0;               // 0 = REPRO_SCALE-scaled default (4)
  std::uint64_t cycle_budget = 0;      // fuzz machines only
  unsigned workers = 0;                // 0 = hardware_concurrency
  std::uint64_t timeout_ms = 30000;
  std::string json_path;
  std::string bin_dir;
  bool inject_hang = false;
  bool inject_throw = false;
  bool verify = false;
  bool quiet = false;
  bool progress = false;
};

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string item = s.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::size_t scaled_default_seeds() {
  double scale = 1.0;
  if (const char* env = std::getenv("REPRO_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) scale = v;
  }
  const long n = std::lround(4.0 * scale);
  return static_cast<std::size_t>(n < 1 ? 1 : n);
}

[[noreturn]] void usage_error(const char* msg) {
  std::fprintf(stderr,
               "rcpn_farm: %s\n"
               "usage: rcpn_farm [--machines a,b,...] [--variants "
               "default,twolist,linear,nostateref]\n"
               "                 [--executors in_process,subprocess] [--seeds N] "
               "[--cycles N]\n"
               "                 [--workers N] [--timeout-ms N] [--bin-dir DIR] "
               "[--json FILE]\n"
               "                 [--inject-hang] [--inject-throw] [--verify] "
               "[--quiet] [--progress]\n",
               msg);
  std::exit(2);
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions cli;
  const auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage_error("missing value for flag");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--machines") cli.machines = split_csv(value(i));
    else if (a == "--variants") cli.variants = split_csv(value(i));
    else if (a == "--executors") cli.executors = split_csv(value(i));
    else if (a == "--seeds") cli.seeds = std::strtoull(value(i), nullptr, 10);
    else if (a == "--cycles") cli.cycle_budget = std::strtoull(value(i), nullptr, 10);
    else if (a == "--workers")
      cli.workers = static_cast<unsigned>(std::strtoul(value(i), nullptr, 10));
    else if (a == "--timeout-ms") cli.timeout_ms = std::strtoull(value(i), nullptr, 10);
    else if (a == "--json") cli.json_path = value(i);
    else if (a == "--bin-dir") cli.bin_dir = value(i);
    else if (a == "--inject-hang") cli.inject_hang = true;
    else if (a == "--inject-throw") cli.inject_throw = true;
    else if (a == "--verify") cli.verify = true;
    else if (a == "--quiet") cli.quiet = true;
    else if (a == "--progress") cli.progress = true;
    else usage_error(("unknown flag '" + a + "'").c_str());
  }
  if (cli.machines.empty()) cli.machines = machines::golden_machine_keys();
  if (cli.seeds == 0) cli.seeds = scaled_default_seeds();
  if (cli.variants.empty() || cli.executors.empty())
    usage_error("--variants/--executors must name at least one entry");
  return cli;
}

/// Apply a named schedule variant. The default variant runs the generated
/// backend in subprocess jobs (the freestanding binaries are stamped for the
/// default schedule) and the compiled backend in-process (this binary links
/// no registered generated engines); every ablation variant changes the
/// schedule, so both executors fall back to the compiled backend for it.
core::EngineOptions variant_options(const std::string& variant,
                                    farm::ExecutorKind executor) {
  core::EngineOptions options;
  options.backend = variant == "default" && executor == farm::ExecutorKind::subprocess
                        ? core::Backend::generated
                        : core::Backend::compiled;
  if (variant == "default") return options;
  if (variant == "twolist") options.force_two_list_all = true;
  else if (variant == "linear") options.linear_search = true;
  else if (variant == "nostateref") options.two_list_state_refs = false;
  else usage_error(("unknown variant '" + variant + "'").c_str());
  return options;
}

farm::ExecutorKind executor_kind(const std::string& name) {
  if (name == "in_process") return farm::ExecutorKind::in_process;
  if (name == "subprocess") return farm::ExecutorKind::subprocess;
  usage_error(("unknown executor '" + name + "'").c_str());
}

std::vector<farm::JobSpec> build_grid(const CliOptions& cli) {
  std::vector<farm::JobSpec> jobs;
  for (const std::string& machine : cli.machines)
    for (const std::string& variant : cli.variants)
      for (const std::string& executor : cli.executors)
        for (std::uint64_t seed = 0; seed < cli.seeds; ++seed) {
          farm::JobSpec spec;
          spec.machine = machine;
          spec.executor = executor_kind(executor);
          spec.options = variant_options(variant, spec.executor);
          spec.seed = seed;
          spec.cycle_budget = cli.cycle_budget;
          spec.timeout_ms = cli.timeout_ms;
          jobs.push_back(std::move(spec));
        }
  if (cli.inject_throw) {
    farm::JobSpec spec;
    spec.machine = farm::kThrowJobKey;
    spec.timeout_ms = cli.timeout_ms;
    jobs.push_back(std::move(spec));
  }
  if (cli.inject_hang) {
    farm::JobSpec spec;
    spec.machine = farm::kHangJobKey;
    spec.timeout_ms = 300;  // short fuse: the monitor must reclaim the worker
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

farm::FarmReport run_grid(const CliOptions& cli, const std::vector<farm::JobSpec>& jobs,
                          unsigned workers) {
  farm::FarmOptions fo;
  fo.workers = workers;
  fo.default_timeout_ms = cli.timeout_ms;
  fo.bin_dir = cli.bin_dir;
  auto done_count = std::make_shared<std::atomic<std::size_t>>(0);
  if (!cli.quiet || cli.progress) {
    const bool per_job = !cli.quiet;
    fo.on_job_done = [&jobs, done_count, per_job](std::size_t done, std::size_t total,
                                                  std::size_t index,
                                                  const farm::JobResult& result) {
      done_count->store(done, std::memory_order_relaxed);
      if (!per_job) return;
      const farm::JobSpec& spec = jobs[index];
      std::printf("[%3zu/%zu] %-7s %-14s %-11s seed=%llu %s%.1fms%s%s\n", done, total,
                  farm::job_status_name(result.status), spec.machine.c_str(),
                  farm::executor_name(spec.executor),
                  static_cast<unsigned long long>(spec.seed),
                  result.cached ? "(cached) " : "", result.wall_seconds * 1e3,
                  result.error.empty() ? "" : " — ", result.error.c_str());
      std::fflush(stdout);
    };
  }
  farm::SimFarm sim_farm(std::move(fo));

  // --progress: a once-per-second heartbeat on stderr, independent of the
  // per-job lines — CI liveness without per-job log volume.
  std::atomic<bool> heartbeat_stop{false};
  std::thread heartbeat;
  if (cli.progress) {
    const std::size_t total = jobs.size();
    heartbeat = std::thread([&heartbeat_stop, done_count, total]() {
      const auto t0 = std::chrono::steady_clock::now();
      while (!heartbeat_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1000));
        const std::size_t done = done_count->load(std::memory_order_relaxed);
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        std::fprintf(stderr, "progress: %zu/%zu jobs (%.0f%%) elapsed=%.1fs\n",
                     done, total,
                     total == 0 ? 100.0 : 100.0 * static_cast<double>(done) /
                                              static_cast<double>(total),
                     elapsed);
      }
    });
  }
  farm::FarmReport report = sim_farm.run(jobs);
  if (heartbeat.joinable()) {
    heartbeat_stop.store(true, std::memory_order_relaxed);
    heartbeat.join();
    std::fprintf(stderr, "progress: %zu/%zu jobs (100%%) done\n", jobs.size(),
                 jobs.size());
  }
  return report;
}

void print_aggregate(const farm::FarmReport& report) {
  const farm::FarmAggregate a = report.aggregate();
  std::printf(
      "\n%zu jobs on %u workers in %.2fs: %zu ok, %zu failed, %zu timeout, "
      "%zu cached\n"
      "total simulated: %llu cycles, %llu retired; per-job wall ms "
      "p50=%.1f p95=%.1f max=%.1f (%zu samples)\n",
      a.jobs, report.workers, report.wall_seconds, a.ok, a.failed, a.timeout, a.cached,
      static_cast<unsigned long long>(a.total_cycles),
      static_cast<unsigned long long>(a.total_retired), a.wall_ms_p50, a.wall_ms_p95,
      a.wall_ms_max, a.wall_samples);

  const farm::FarmTelemetry& t = report.telemetry;
  double busy = 0.0;
  for (const farm::WorkerTelemetry& w : t.workers) busy += w.busy_seconds;
  const double capacity = report.wall_seconds * static_cast<double>(t.workers.size());
  std::printf(
      "telemetry: %zu executed, %zu cache hits, %zu timeouts, %zu replacements, "
      "%zu steals\n"
      "           utilization %.0f%% (busy %.2fs / capacity %.2fs), queue wait "
      "mean=%.1fms max=%.1fms\n",
      t.executed, t.cache_hits, t.timeouts, t.replacements, t.steals,
      capacity > 0.0 ? 100.0 * busy / capacity : 0.0, busy, capacity,
      t.queue_wait_ms_mean, t.queue_wait_ms_max);
}

/// First line where the two texts differ, for the --verify failure message.
void print_first_diff(const std::string& a, const std::string& b) {
  std::size_t pos_a = 0, pos_b = 0;
  for (int line = 1;; ++line) {
    const std::size_t end_a = a.find('\n', pos_a);
    const std::size_t end_b = b.find('\n', pos_b);
    const std::string la = a.substr(pos_a, end_a - pos_a);
    const std::string lb = b.substr(pos_b, end_b - pos_b);
    if (la != lb) {
      std::fprintf(stderr, "first divergence at line %d:\n  serial:   %s\n  parallel: %s\n",
                   line, la.c_str(), lb.c_str());
      return;
    }
    if (end_a == std::string::npos || end_b == std::string::npos) return;
    pos_a = end_a + 1;
    pos_b = end_b + 1;
  }
}

/// A job's outcome is as intended: injected fault keys must fail their
/// designated way; everything else must succeed.
bool outcome_expected(const farm::JobRecord& job) {
  if (job.spec.machine == farm::kHangJobKey)
    return job.result.status == farm::JobStatus::timeout;
  if (job.spec.machine == farm::kThrowJobKey)
    return job.result.status == farm::JobStatus::failed;
  return job.result.status == farm::JobStatus::ok;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse_cli(argc, argv);
  const std::vector<farm::JobSpec> jobs = build_grid(cli);
  std::printf("rcpn_farm: %zu jobs (%zu machines x %zu variants x %zu executors x "
              "%zu seeds%s%s)\n",
              jobs.size(), cli.machines.size(), cli.variants.size(),
              cli.executors.size(), cli.seeds, cli.inject_throw ? " + throw" : "",
              cli.inject_hang ? " + hang" : "");

  // The serial baseline runs FIRST so the parallel run is not the one paying
  // the cold-start costs (binary page-ins, allocator warm-up) — the speedup
  // comparison is then work-vs-work.
  farm::FarmReport serial;
  if (cli.verify) {
    std::printf("--verify: serial baseline on 1 worker...\n");
    CliOptions serial_cli = cli;
    serial_cli.quiet = true;
    serial = run_grid(serial_cli, jobs, 1);
  }

  farm::FarmReport report = run_grid(cli, jobs, cli.workers);
  print_aggregate(report);

  bool ok = true;
  for (const farm::JobRecord& job : report.jobs) {
    if (outcome_expected(job)) continue;
    ok = false;
    std::fprintf(stderr, "unexpected outcome: %s -> %s%s%s\n",
                 farm::job_key(job.spec).c_str(),
                 farm::job_status_name(job.result.status),
                 job.result.error.empty() ? "" : ": ", job.result.error.c_str());
  }

  if (cli.verify) {
    const std::string stable_parallel = report.stable_json();
    const std::string stable_serial = serial.stable_json();
    if (stable_serial == stable_parallel) {
      const double speedup =
          report.wall_seconds > 0.0 ? serial.wall_seconds / report.wall_seconds : 0.0;
      std::printf("verify OK: serial and parallel reports identical; "
                  "serial %.2fs vs parallel %.2fs on %u workers (%.2fx)\n",
                  serial.wall_seconds, report.wall_seconds, report.workers, speedup);
    } else {
      ok = false;
      std::fprintf(stderr, "verify FAILED: serial and parallel reports differ\n");
      print_first_diff(stable_serial, stable_parallel);
    }
  }

  if (!cli.json_path.empty()) {
    std::ofstream out(cli.json_path);
    out << report.to_json();
    if (!out) {
      ok = false;
      std::fprintf(stderr, "failed to write %s\n", cli.json_path.c_str());
    } else {
      std::printf("report written to %s\n", cli.json_path.c_str());
    }
  }

  return ok ? 0 : 1;
}
