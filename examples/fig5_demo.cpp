// The paper's §3.2 example processor (Fig 4/5): out-of-order completion,
// a feedback path captured by two prioritized issue transitions, branch
// stalls via reservation tokens and data-dependent memory delay.
//
//   $ ./fig5_demo
#include <cstdio>

#include "machines/fig5_processor.hpp"

using namespace rcpn;
using I = machines::Fig5Instr;

int main() {
  machines::Fig5Processor cpu;

  // A small program exercising every sub-net: a dependent ALU chain (uses
  // the L3 feedback path), loads/stores with cache-made-visible delays, and
  // a branch (stalls fetch with a reservation token for one cycle).
  cpu.load({
      I::alui(I::AluOp::add, 1, 0, 5),    // r1 = 5
      I::alui(I::AluOp::add, 2, 1, 10),   // r2 = r1 + 10   (feedback path)
      I::alu(I::AluOp::mul, 3, 1, 2),     // r3 = r1 * r2
      I::store(3, 0x100),                 // mem[0x100] = r3
      I::load(4, 0x100),                  // r4 = mem[0x100] (cache hit/miss)
      I::branch(2),                       // skip the next instruction
      I::alui(I::AluOp::add, 5, 0, 99),   // (squashed path — never fetched)
      I::alu(I::AluOp::xor_op, 6, 4, 3),  // r6 = r4 ^ r3 = 0
  });

  const std::uint64_t cycles = cpu.run();

  std::printf("ran %llu cycles\n", static_cast<unsigned long long>(cycles));
  for (unsigned r = 1; r <= 6; ++r) std::printf("  r%u = %u\n", r, cpu.reg(r));
  std::printf("ALU issues: %llu via register file, %llu via L3 feedback\n",
              static_cast<unsigned long long>(cpu.alu_issues_direct()),
              static_cast<unsigned long long>(cpu.alu_issues_forwarded()));
  std::printf("reservation tokens used: %llu (branch fetch-stall)\n",
              static_cast<unsigned long long>(cpu.engine().stats().reservations));
  std::printf("dcache: %llu accesses, %llu misses\n",
              static_cast<unsigned long long>(cpu.dcache().stats().accesses),
              static_cast<unsigned long long>(cpu.dcache().stats().misses));
  std::printf("L3 uses the two-list algorithm: %s (circular canRead(L3) reference)\n",
              cpu.engine().stage_is_two_list(cpu.net().place(cpu.l3()).stage)
                  ? "yes"
                  : "no");
  return 0;
}
