// Convert RCPN models to standard Colored Petri Nets and run the classical
// analyses the paper gains from the conversion (§3, §5): reachability,
// k-boundedness, deadlock freedom and transition quasi-liveness.
//
//   $ ./cpn_analysis
#include <cstdio>

#include "cpn/analysis.hpp"
#include "cpn/rcpn_to_cpn.hpp"
#include "machines/fig5_processor.hpp"
#include "machines/simple_pipeline.hpp"

using namespace rcpn;

namespace {

void report(const char* title, const core::Net& rcpn_net) {
  const cpn::ConversionResult conv = cpn::convert(rcpn_net);
  const cpn::AnalysisResult res = cpn::analyze(conv.net);

  const auto rs = rcpn_net.model_stats();
  std::printf("%s\n", title);
  std::printf("  RCPN: %u places, %u transitions, %u arcs\n", rs.places,
              rs.transitions, rs.arcs);
  std::printf("  CPN:  %u places, %u transitions, %u arcs"
              "  (capacity back-edges restored)\n",
              conv.net.num_places(), conv.net.num_transitions(),
              conv.net.num_arcs());
  std::printf("  reachable markings: %zu%s\n", res.states,
              res.truncated ? " (truncated)" : "");
  unsigned k = 0;
  for (unsigned b : res.place_bound)
    if (b > k) k = b;
  std::printf("  bounded: %u-bounded, deadlocks: %zu, all transitions fireable: %s\n",
              k, res.deadlocks, res.all_fireable() ? "yes" : "no");
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("RCPN -> CPN conversion & analysis (paper §3: \"use all the tools"
              " and algorithms that are available for CPN\")\n\n");

  machines::SimplePipeline fig2(4);
  report("Figure 2 pipeline:", fig2.net());

  machines::Fig5Processor fig5;
  report("Figure 4/5 representative processor:", fig5.net());
  return 0;
}
