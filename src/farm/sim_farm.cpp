#include "farm/sim_farm.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>

#include "farm/executor.hpp"
#include "farm/result_cache.hpp"

namespace rcpn::farm {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kNoJob = static_cast<std::size_t>(-1);

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

std::string default_bin_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  const std::string path(buf);
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

struct SimFarm::Impl {
  // All mutable state a worker touches after abandonment lives either in the
  // shared RunState (kept alive by the worker's shared_ptr) or in this Impl
  // (kept alive until ~Impl has joined the zombies) — an abandoned thread
  // never dereferences freed farm memory.
  struct Slot {
    std::mutex mu;
    std::size_t job = kNoJob;
    Clock::time_point deadline{};
    bool supervised = false;
    std::shared_ptr<CancelToken> token;
    /// Bumped when the monitor abandons this slot's thread; a worker whose
    /// generation no longer matches must exit without committing anything.
    std::uint64_t generation = 0;
  };

  struct WorkDeque {
    std::mutex mu;
    std::deque<std::size_t> q;
  };

  /// Per-worker-slot execution counters (FarmTelemetry source). Slot-indexed
  /// like Slot itself, so a replacement worker keeps accumulating into its
  /// predecessor's numbers — the slot's telemetry survives abandonment.
  struct WorkerStats {
    std::atomic<std::size_t> jobs{0};
    std::atomic<std::size_t> steals{0};
    std::atomic<std::uint64_t> busy_ns{0};
  };

  struct RunState {
    std::vector<JobSpec> jobs;
    std::vector<std::uint64_t> hashes;
    std::vector<JobResult> results;
    std::unique_ptr<std::atomic<bool>[]> claimed;  // exactly-once commit guard
    std::atomic<std::size_t> done{0};
    std::vector<std::unique_ptr<WorkDeque>> deques;  // one per worker slot
    std::vector<std::unique_ptr<Slot>> slots;
    std::mutex threads_mu;
    std::vector<std::thread> threads;  // slot-indexed current worker thread
    std::atomic<bool> monitor_stop{false};
    std::mutex progress_mu;
    // Run-scoped telemetry (FarmReport::telemetry). Lives in RunState, not
    // Impl, so abandoned workers of a *previous* run can never race it.
    Clock::time_point start{};
    std::vector<std::unique_ptr<WorkerStats>> wstats;  // one per worker slot
    std::atomic<std::size_t> run_executed{0};
    std::atomic<std::size_t> run_hits{0};
    std::atomic<std::size_t> run_timeouts{0};
    std::atomic<std::size_t> run_replacements{0};
    std::atomic<std::uint64_t> queue_wait_ns_total{0};
    std::atomic<std::uint64_t> queue_wait_ns_max{0};

    void record_queue_wait(std::uint64_t ns) {
      queue_wait_ns_total.fetch_add(ns, std::memory_order_relaxed);
      std::uint64_t prev = queue_wait_ns_max.load(std::memory_order_relaxed);
      while (prev < ns && !queue_wait_ns_max.compare_exchange_weak(
                              prev, ns, std::memory_order_relaxed)) {
      }
    }
  };

  FarmOptions opts;
  InProcessExecutor in_process;
  SubprocessExecutor subprocess;
  ResultCache cache;
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> hits{0};
  std::mutex zombies_mu;
  std::vector<std::thread> zombies;  // abandoned workers, joined at teardown

  explicit Impl(FarmOptions o)
      : opts(std::move(o)),
        subprocess(SubprocessExecutor::Config{
            opts.bin_dir.empty() ? default_bin_dir() : opts.bin_dir}),
        cache(opts.cache_entries) {}

  ~Impl() {
    // Zombies exit once their job's CancelToken fired (cancelled at the
    // moment of abandonment) and the job code cooperates; see the hard-hang
    // caveat in the header.
    std::lock_guard<std::mutex> lock(zombies_mu);
    for (std::thread& t : zombies)
      if (t.joinable()) t.join();
  }

  JobExecutor& executor_for(const JobSpec& spec) {
    return spec.executor == ExecutorKind::subprocess
               ? static_cast<JobExecutor&>(subprocess)
               : static_cast<JobExecutor&>(in_process);
  }

  void commit(RunState& rs, std::size_t j, const JobResult& r) {
    if (rs.claimed[j].exchange(true)) return;  // the monitor already timed it out
    rs.results[j] = r;
    const std::size_t done = rs.done.fetch_add(1) + 1;
    if (opts.on_job_done) {
      std::lock_guard<std::mutex> lock(rs.progress_mu);
      opts.on_job_done(done, rs.jobs.size(), j, r);
    }
  }

  /// Pop the next job: own deque from the back (LIFO keeps a worker on the
  /// jobs it was dealt), then steal from the fronts of the others. All jobs
  /// are enqueued before the workers start, so a full empty scan means the
  /// grid is drained and the worker may exit. `stolen` reports whether the
  /// job came from another worker's deque (telemetry).
  std::size_t next_job(RunState& rs, std::size_t wi, bool& stolen) {
    stolen = false;
    {
      WorkDeque& d = *rs.deques[wi];
      std::lock_guard<std::mutex> lock(d.mu);
      if (!d.q.empty()) {
        const std::size_t j = d.q.back();
        d.q.pop_back();
        return j;
      }
    }
    for (std::size_t off = 1; off < rs.deques.size(); ++off) {
      WorkDeque& d = *rs.deques[(wi + off) % rs.deques.size()];
      std::lock_guard<std::mutex> lock(d.mu);
      if (!d.q.empty()) {
        const std::size_t j = d.q.front();
        d.q.pop_front();
        stolen = true;
        return j;
      }
    }
    return kNoJob;
  }

  void worker_loop(std::shared_ptr<RunState> rs, std::size_t wi, std::uint64_t my_gen) {
    WorkerStats& ws = *rs->wstats[wi];
    for (;;) {
      bool stolen = false;
      const std::size_t j = next_job(*rs, wi, stolen);
      if (j == kNoJob) return;
      if (stolen) ws.steals.fetch_add(1, std::memory_order_relaxed);
      // Queue wait: run start -> pickup. All jobs are enqueued up front, so
      // this is exactly how long the job sat in a deque.
      rs->record_queue_wait(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               rs->start)
              .count()));

      // Copy the spec so the executor never aliases the shared jobs vector,
      // even from a thread the monitor has abandoned.
      const JobSpec spec = rs->jobs[j];
      JobResult result;
      if (cache.lookup(rs->hashes[j], result)) {
        hits.fetch_add(1, std::memory_order_relaxed);
        rs->run_hits.fetch_add(1, std::memory_order_relaxed);
        commit(*rs, j, result);
        continue;
      }

      JobExecutor& ex = executor_for(spec);
      const std::uint64_t timeout_ms =
          spec.timeout_ms != 0 ? spec.timeout_ms : opts.default_timeout_ms;
      auto token = std::make_shared<CancelToken>();
      Slot& slot = *rs->slots[wi];
      {
        std::lock_guard<std::mutex> lock(slot.mu);
        if (slot.generation != my_gen) return;
        slot.job = j;
        slot.deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
        slot.supervised = !ex.enforces_timeout();
        slot.token = token;
      }

      const auto exec_t0 = Clock::now();
      // Executors promise not to throw, but a worker thread has no handler
      // above this frame — one escaped exception would std::terminate the
      // process and take the whole grid down. Last-resort containment: the
      // job fails, the farm lives.
      try {
        result = ex.execute(spec, timeout_ms, *token);
      } catch (const std::exception& e) {
        result = JobResult{};
        result.status = JobStatus::failed;
        result.error = std::string("executor threw: ") + e.what();
      } catch (...) {
        result = JobResult{};
        result.status = JobStatus::failed;
        result.error = "executor threw an unknown exception";
      }
      executed.fetch_add(1, std::memory_order_relaxed);
      rs->run_executed.fetch_add(1, std::memory_order_relaxed);
      ws.jobs.fetch_add(1, std::memory_order_relaxed);
      ws.busy_ns.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                   exec_t0)
                  .count()),
          std::memory_order_relaxed);

      bool still_mine = false;
      {
        std::lock_guard<std::mutex> lock(slot.mu);
        still_mine = slot.generation == my_gen;
        if (still_mine) {
          slot.job = kNoJob;
          slot.token.reset();
        }
      }
      if (!still_mine) return;  // timed out and replaced: result discarded

      if (result.status == JobStatus::ok) cache.insert(rs->hashes[j], result);
      commit(*rs, j, result);
    }
  }

  /// Fail every job still queued in deque `wi` (last-resort path when a
  /// replacement worker cannot be spawned and no other worker exists to
  /// steal the leftovers).
  void drain_deque_as_failed(RunState& rs, std::size_t wi, const std::string& why) {
    for (;;) {
      std::size_t j = kNoJob;
      {
        WorkDeque& d = *rs.deques[wi];
        std::lock_guard<std::mutex> lock(d.mu);
        if (d.q.empty()) break;
        j = d.q.back();
        d.q.pop_back();
      }
      JobResult r;
      r.status = JobStatus::failed;
      r.error = why;
      commit(rs, j, r);
    }
  }

  void monitor_loop(std::shared_ptr<RunState> rs) {
    while (!rs->monitor_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      const auto now = Clock::now();
      for (std::size_t wi = 0; wi < rs->slots.size(); ++wi) {
        Slot& slot = *rs->slots[wi];
        std::size_t j = kNoJob;
        std::uint64_t newgen = 0;
        {
          std::lock_guard<std::mutex> lock(slot.mu);
          if (slot.job == kNoJob || !slot.supervised || now < slot.deadline) continue;
          if (rs->claimed[slot.job].exchange(true)) continue;  // worker just won
          j = slot.job;
          slot.token->cancel();
          slot.job = kNoJob;
          slot.token.reset();
          newgen = ++slot.generation;
        }

        const JobSpec& spec = rs->jobs[j];
        const std::uint64_t timeout_ms =
            spec.timeout_ms != 0 ? spec.timeout_ms : opts.default_timeout_ms;
        JobResult r;
        r.status = JobStatus::timeout;
        r.error = "timed out after " + std::to_string(timeout_ms) +
                  "ms (in-process worker abandoned, replacement spawned)";
        rs->results[j] = r;
        rs->run_timeouts.fetch_add(1, std::memory_order_relaxed);
        const std::size_t done = rs->done.fetch_add(1) + 1;

        {
          std::lock_guard<std::mutex> lock(rs->threads_mu);
          {
            std::lock_guard<std::mutex> zlock(zombies_mu);
            zombies.push_back(std::move(rs->threads[wi]));
          }
          try {
            rs->threads[wi] = std::thread(&Impl::worker_loop, this, rs, wi, newgen);
            rs->run_replacements.fetch_add(1, std::memory_order_relaxed);
          } catch (const std::exception& e) {
            // No replacement thread: other workers will steal this deque; if
            // this was the only worker, fail the leftovers rather than hang.
            std::fprintf(stderr, "rcpn-farm: worker replacement failed: %s\n", e.what());
            if (rs->slots.size() == 1)
              drain_deque_as_failed(*rs, wi, "worker replacement failed");
          }
        }

        if (opts.on_job_done) {
          std::lock_guard<std::mutex> lock(rs->progress_mu);
          opts.on_job_done(done, rs->jobs.size(), j, r);
        }
      }
    }
  }

  FarmReport run(std::vector<JobSpec> jobs) {
    const auto t0 = Clock::now();
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned nw =
        std::max(1u, opts.workers != 0 ? opts.workers : (hw != 0 ? hw : 4u));

    auto rs = std::make_shared<RunState>();
    rs->start = t0;
    rs->jobs = std::move(jobs);
    const std::size_t n = rs->jobs.size();
    rs->hashes.resize(n);
    rs->results.resize(n);
    rs->claimed = std::make_unique<std::atomic<bool>[]>(n);
    for (std::size_t i = 0; i < n; ++i) {
      rs->hashes[i] = job_hash(rs->jobs[i]);
      rs->claimed[i].store(false, std::memory_order_relaxed);
    }
    for (unsigned w = 0; w < nw; ++w) {
      rs->deques.push_back(std::make_unique<WorkDeque>());
      rs->slots.push_back(std::make_unique<Slot>());
      rs->wstats.push_back(std::make_unique<WorkerStats>());
    }
    for (std::size_t i = 0; i < n; ++i) rs->deques[i % nw]->q.push_back(i);

    std::thread monitor;
    if (n != 0) {
      rs->threads.reserve(nw);
      for (unsigned w = 0; w < nw; ++w)
        rs->threads.emplace_back(&Impl::worker_loop, this, rs, w, 0);
      monitor = std::thread(&Impl::monitor_loop, this, rs);
      while (rs->done.load(std::memory_order_acquire) < n)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      rs->monitor_stop.store(true, std::memory_order_relaxed);
      monitor.join();
      std::lock_guard<std::mutex> lock(rs->threads_mu);
      for (std::thread& t : rs->threads)
        if (t.joinable()) t.join();
      rs->threads.clear();
    }

    FarmReport report;
    report.workers = nw;
    report.wall_seconds = seconds_since(t0);
    report.jobs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      report.jobs.push_back(JobRecord{rs->jobs[i], rs->hashes[i], rs->results[i]});

    // Telemetry snapshot. Live workers and the monitor are joined; an
    // abandoned zombie may still tick a counter after this point (it keeps
    // RunState alive via its shared_ptr, so that is safe), but its job was
    // already reported as a timeout — the snapshot is consistent.
    FarmTelemetry& t = report.telemetry;
    t.executed = rs->run_executed.load(std::memory_order_relaxed);
    t.cache_hits = rs->run_hits.load(std::memory_order_relaxed);
    t.timeouts = rs->run_timeouts.load(std::memory_order_relaxed);
    t.replacements = rs->run_replacements.load(std::memory_order_relaxed);
    const std::size_t picked = t.executed + t.cache_hits;
    t.queue_wait_ms_mean =
        picked == 0 ? 0.0
                    : static_cast<double>(rs->queue_wait_ns_total.load(
                          std::memory_order_relaxed)) /
                          static_cast<double>(picked) / 1e6;
    t.queue_wait_ms_max = static_cast<double>(rs->queue_wait_ns_max.load(
                              std::memory_order_relaxed)) /
                          1e6;
    t.workers.reserve(nw);
    for (unsigned w = 0; w < nw; ++w) {
      const WorkerStats& ws = *rs->wstats[w];
      WorkerTelemetry wt;
      wt.jobs = ws.jobs.load(std::memory_order_relaxed);
      wt.steals = ws.steals.load(std::memory_order_relaxed);
      wt.busy_seconds =
          static_cast<double>(ws.busy_ns.load(std::memory_order_relaxed)) / 1e9;
      t.steals += wt.steals;
      t.workers.push_back(wt);
    }
    return report;
  }
};

SimFarm::SimFarm(FarmOptions options) : impl_(std::make_unique<Impl>(std::move(options))) {}
SimFarm::~SimFarm() = default;

FarmReport SimFarm::run(std::vector<JobSpec> jobs) { return impl_->run(std::move(jobs)); }

std::uint64_t SimFarm::executed() const {
  return impl_->executed.load(std::memory_order_relaxed);
}

std::uint64_t SimFarm::cache_hits() const {
  return impl_->hits.load(std::memory_order_relaxed);
}

}  // namespace rcpn::farm
