// The two ways SimFarm hosts a job, behind one interface.
//
// InProcessExecutor constructs and runs the model inside the worker thread —
// fastest (no process spawn, shared code pages), but a thread cannot be
// killed: its timeouts are *cooperative* (the farm's monitor cancels the
// job's CancelToken and abandons the thread; well-behaved long jobs poll the
// token, and the engine's own deadlock watchdog bounds wedged nets).
// SubprocessExecutor spawns the machine's freestanding gen_fs_<machine>
// binary and parses its golden-format stdout — one fork/exec per job, but
// hard isolation: a crash is an exit code, a hang is a SIGKILL, and the
// simulation cannot corrupt farm memory.
//
// execute() never throws: every failure mode (model exception, unknown key,
// spawn failure, nonzero exit, unparseable output) becomes a JobResult with
// status failed/timeout and a human-readable reason.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "farm/job.hpp"

namespace rcpn::farm {

/// Cooperative cancellation flag shared between a worker and the farm's
/// timeout monitor. Executors (and the fault-injection hang job) poll it.
class CancelToken {
 public:
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

class JobExecutor {
 public:
  virtual ~JobExecutor() = default;

  /// Run `spec` to completion (or failure). Must not throw; must not block
  /// past `timeout_ms` if enforces_timeout(), and should return early with a
  /// failed result once `cancel` fires otherwise.
  virtual JobResult execute(const JobSpec& spec, std::uint64_t timeout_ms,
                            const CancelToken& cancel) = 0;

  /// True if execute() itself guarantees return within the timeout (the
  /// subprocess executor kills its child); false if the farm's monitor must
  /// supervise the job (in-process threads are only cooperatively bounded).
  virtual bool enforces_timeout() const = 0;
};

class InProcessExecutor final : public JobExecutor {
 public:
  JobResult execute(const JobSpec& spec, std::uint64_t timeout_ms,
                    const CancelToken& cancel) override;
  bool enforces_timeout() const override { return false; }
};

class SubprocessExecutor final : public JobExecutor {
 public:
  struct Config {
    std::string bin_dir;                 // where the gen_fs_* binaries live
    std::string bin_prefix = "gen_fs_";  // binary name = prefix + spec.machine
  };

  explicit SubprocessExecutor(Config config) : config_(std::move(config)) {}

  JobResult execute(const JobSpec& spec, std::uint64_t timeout_ms,
                    const CancelToken& cancel) override;
  bool enforces_timeout() const override { return true; }

  const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace rcpn::farm
