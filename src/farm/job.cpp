#include "farm/job.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/options_signature.hpp"
#include "machines/fuzz_model.hpp"

namespace rcpn::farm {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  // Mix fixed-width little-endian bytes so the digest is layout-independent.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

const char* executor_name(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::in_process: return "in-process";
    case ExecutorKind::subprocess: return "subprocess";
  }
  return "?";
}

const char* backend_name(core::Backend backend) {
  switch (backend) {
    case core::Backend::interpreted: return "interpreted";
    case core::Backend::compiled: return "compiled";
    case core::Backend::generated: return "generated";
  }
  return "?";
}

const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::ok: return "ok";
    case JobStatus::failed: return "failed";
    case JobStatus::timeout: return "timeout";
  }
  return "?";
}

bool is_description_job(const JobSpec& spec) {
  return spec.machine.size() > 5 && spec.machine.ends_with(".rcpn");
}

bool is_fuzz_job(const JobSpec& spec, unsigned& seed) {
  if (spec.machine == "fuzz") {
    seed = static_cast<unsigned>(spec.seed);
    return true;
  }
  if (spec.machine.rfind("fuzz-", 0) == 0) {
    seed = static_cast<unsigned>(std::strtoul(spec.machine.c_str() + 5, nullptr, 10));
    return true;
  }
  return false;
}

std::uint64_t effective_cycle_budget(const JobSpec& spec) {
  unsigned seed = 0;
  if (is_fuzz_job(spec, seed))
    return spec.cycle_budget != 0 ? spec.cycle_budget : machines::kFuzzDrainCap;
  if (is_description_job(spec)) return spec.cycle_budget;
  // Golden machine keys (and the fault-injection keys) run their fixed
  // workload to completion — no executor honors a budget for them, so the
  // budget must not distinguish (or unify) their identities.
  return 0;
}

namespace {

/// `;name=<fnv1a of file content>` (or `;name=missing`): the identity of a
/// file-backed job input is its content, not its path — editing the file
/// must miss the result cache.
void append_file_digest(std::ostringstream& key, const char* name,
                        const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    key << ";" << name << "=missing";
    return;
  }
  std::ostringstream content;
  content << in.rdbuf();
  const std::string text = content.str();
  key << ";" << name << "=" << std::hex
      << fnv1a_bytes(kFnvOffset, text.data(), text.size()) << std::dec;
}

}  // namespace

std::string job_key(const JobSpec& spec) {
  // One canonical field order; every identity-defining field spelled by a
  // stable name (enum values never leak as raw integers). timeout_ms is a
  // patience knob, not an identity — see the header. The cycle budget is
  // canonicalized to what the executors enforce (effective_cycle_budget), so
  // budget values the execution would ignore cannot split or alias identities.
  std::ostringstream key;
  key << "machine=" << spec.machine
      << ";backend=" << backend_name(spec.options.backend)
      << ";options=" << core::options_signature(spec.options)
      << ";deadlock=" << spec.options.deadlock_limit
      << ";seed=" << spec.seed
      << ";cycles=" << effective_cycle_budget(spec)
      << ";executor=" << executor_name(spec.executor);
  if (is_description_job(spec)) append_file_digest(key, "desc", spec.machine);
  if (!spec.resume_checkpoint.empty())
    append_file_digest(key, "ckpt", spec.resume_checkpoint);
  return key.str();
}

std::uint64_t job_hash(const JobSpec& spec) {
  const std::string key = job_key(spec);
  return fnv1a_bytes(kFnvOffset, key.data(), key.size());
}

std::uint64_t trace_digest(const std::vector<machines::GoldenRetireEvent>& trace) {
  std::uint64_t h = kFnvOffset;
  for (const auto& e : trace) {
    h = fnv1a_u64(h, e.cycle);
    h = fnv1a_u64(h, e.pc);
    h = fnv1a_u64(h, e.seq);
  }
  return h;
}

}  // namespace rcpn::farm
