// FarmReport: the machine-readable outcome of one SimFarm::run().
//
// Per job it records the spec (as submitted), the canonical hash and the
// result (status, stats, trace digest, wall time, failure reason); the
// aggregate rolls those up into counts, total simulated work and wall-time
// percentiles. to_json() emits the full report under the
// "rcpn-farm-report/1" schema; stable_json() strips every field that
// legitimately varies between runs of the same grid (wall times, worker
// count, cache-hit flags) so two reports from the same grid compare equal
// byte-for-byte exactly when the *simulations* behaved identically — the
// N-worker-vs-1-worker determinism check in tests and `rcpn_farm --verify`
// is a string comparison of stable_json() outputs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "farm/job.hpp"

namespace rcpn::farm {

struct JobRecord {
  JobSpec spec;
  std::uint64_t hash = 0;
  JobResult result;
};

struct FarmAggregate {
  std::size_t jobs = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t timeout = 0;
  std::size_t cached = 0;
  std::uint64_t total_cycles = 0;   // over ok jobs
  std::uint64_t total_retired = 0;  // over ok jobs
  double wall_ms_p50 = 0.0;         // over executed (non-cached) jobs
  double wall_ms_p90 = 0.0;
  double wall_ms_max = 0.0;
};

struct FarmReport {
  std::vector<JobRecord> jobs;  // submission order, independent of scheduling
  unsigned workers = 1;
  double wall_seconds = 0.0;

  FarmAggregate aggregate() const;
  std::size_t count(JobStatus status) const;

  /// Full JSON report (schema "rcpn-farm-report/1"): metadata, aggregate,
  /// one object per job. Hashes and digests are 16-digit hex strings.
  std::string to_json() const { return render_json(true); }

  /// Timing-independent subset: drops wall times/percentiles, the worker
  /// count and per-job cached flags (which depend on scheduling when
  /// duplicate-hash jobs race the cache). Equal stable_json() == identical
  /// simulation outcomes.
  std::string stable_json() const { return render_json(false); }

 private:
  std::string render_json(bool include_timing) const;
};

}  // namespace rcpn::farm
