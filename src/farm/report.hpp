// FarmReport: the machine-readable outcome of one SimFarm::run().
//
// Per job it records the spec (as submitted), the canonical hash and the
// result (status, stats, trace digest, wall time, failure reason); the
// aggregate rolls those up into counts, total simulated work and wall-time
// percentiles. to_json() emits the full report under the
// "rcpn-farm-report/1" schema; stable_json() strips every field that
// legitimately varies between runs of the same grid (wall times, worker
// count, cache-hit flags) so two reports from the same grid compare equal
// byte-for-byte exactly when the *simulations* behaved identically — the
// N-worker-vs-1-worker determinism check in tests and `rcpn_farm --verify`
// is a string comparison of stable_json() outputs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "farm/job.hpp"

namespace rcpn::farm {

struct JobRecord {
  JobSpec spec;
  std::uint64_t hash = 0;
  JobResult result;
};

struct FarmAggregate {
  std::size_t jobs = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t timeout = 0;
  std::size_t cached = 0;
  std::uint64_t total_cycles = 0;   // over ok jobs
  std::uint64_t total_retired = 0;  // over ok jobs
  /// Wall-time percentiles over *executed, successful* jobs only: cached
  /// results have no wall time of their own, and failed/timed-out jobs would
  /// skew the distribution with abort latencies. wall_samples says how many
  /// jobs the percentiles summarize — 0 means every percentile is 0.0 by
  /// definition (empty grid, all-cached or all-failed), not "instant".
  std::size_t wall_samples = 0;
  double wall_ms_p50 = 0.0;
  double wall_ms_p95 = 0.0;
  double wall_ms_max = 0.0;
};

/// Per-worker-slot execution counters (a replacement worker inherits its
/// predecessor's slot, so the slot's numbers survive timeout abandonment).
struct WorkerTelemetry {
  std::size_t jobs = 0;    // jobs this slot completed (including abandoned)
  std::size_t steals = 0;  // jobs taken from another worker's deque
  double busy_seconds = 0.0;
};

/// Run-wide scheduling telemetry: additive observability (schema bump to
/// rcpn-farm-report/2), emitted only in the timing report — stable_json()
/// stays byte-identical across worker counts and machine load.
struct FarmTelemetry {
  std::size_t executed = 0;    // jobs that actually ran (non-cached)
  std::size_t cache_hits = 0;  // jobs satisfied from the result cache
  std::size_t timeouts = 0;    // jobs abandoned by the monitor
  std::size_t replacements = 0;  // workers spawned to replace stuck ones
  std::size_t steals = 0;        // sum of WorkerTelemetry::steals
  /// Queue wait: submission (run start) -> job pickup, over executed jobs.
  double queue_wait_ms_mean = 0.0;
  double queue_wait_ms_max = 0.0;
  std::vector<WorkerTelemetry> workers;  // indexed by worker slot
};

struct FarmReport {
  std::vector<JobRecord> jobs;  // submission order, independent of scheduling
  unsigned workers = 1;
  double wall_seconds = 0.0;
  FarmTelemetry telemetry;

  FarmAggregate aggregate() const;
  std::size_t count(JobStatus status) const;

  /// Full JSON report (schema "rcpn-farm-report/2"): metadata, aggregate,
  /// telemetry, one object per job. Hashes and digests are 16-digit hex
  /// strings.
  std::string to_json() const { return render_json(true); }

  /// Timing-independent subset: drops wall times/percentiles, the worker
  /// count, the telemetry block and per-job cached flags (which depend on
  /// scheduling when duplicate-hash jobs race the cache). Equal
  /// stable_json() == identical simulation outcomes.
  std::string stable_json() const { return render_json(false); }

 private:
  std::string render_json(bool include_timing) const;
};

}  // namespace rcpn::farm
