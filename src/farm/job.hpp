// Batch-simulation job descriptions (the unit of work of farm::SimFarm).
//
// A JobSpec names one simulation: which machine to run (a golden-runner key,
// a seeded fuzz model, or one of the fault-injection keys below), under which
// EngineOptions/backend, through which executor, with a seed, a cycle budget
// and a wall-clock timeout. job_key() renders the *identity-defining* subset
// of those fields into one canonical string and job_hash() folds it to a
// 64-bit FNV-1a value — the same stamping idea the generated-artifact
// registry uses for (model, options): two specs with equal hashes describe
// the same deterministic simulation, so the farm's result cache may serve
// one's result for the other. Runtime-only knobs (timeout_ms, reps) are
// deliberately excluded from the key: they change how long we are willing to
// wait, not what is being simulated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "machines/golden_trace.hpp"

namespace rcpn::farm {

/// How a job's simulation is hosted. `in_process` constructs the model in
/// this process (interpreted/compiled/registered-generated backends);
/// `subprocess` spawns the machine's freestanding gen_fs_<machine> binary and
/// parses its golden-format trace — full address-space isolation, and the
/// only executor whose timeout can hard-kill a wedged simulation.
enum class ExecutorKind : std::uint8_t { in_process, subprocess };

const char* executor_name(ExecutorKind kind);
const char* backend_name(core::Backend backend);

/// Fault-injection machine keys understood by the in-process executor: a
/// job that throws, and a job that spins until cancelled. They exist so the
/// farm's failure paths (exception capture, timeout supervision) are
/// exercisable from tests and from the rcpn_farm CLI without a real broken
/// model.
inline constexpr const char* kThrowJobKey = "__throw__";
inline constexpr const char* kHangJobKey = "__hang__";

struct JobSpec {
  /// Golden machine key ("fig2", ... "xscale_adpcm"), "fuzz" (seeded by
  /// `seed`), "fuzz-<n>" (explicit seed), a fault-injection key above, or a
  /// path to a serialized model description (ends with ".rcpn" — the
  /// in-process executor loads and runs the described model; the file's
  /// *content* is folded into job_key/job_hash so editing a description
  /// invalidates cached results).
  std::string machine;
  core::EngineOptions options;
  ExecutorKind executor = ExecutorKind::in_process;
  /// Replicate index for fixed-workload machines; topology seed for "fuzz".
  std::uint64_t seed = 0;
  /// Cycle cap for budgeted workloads (fuzz models); 0 = machine default.
  std::uint64_t cycle_budget = 0;
  /// Per-job wall-clock timeout; 0 = the farm's default_timeout_ms.
  std::uint64_t timeout_ms = 0;
  /// Optional rcpn-ckpt/1 checkpoint file to resume from instead of starting
  /// the workload at cycle 0 (golden machine keys and fuzz models). The
  /// file's *content* digest is folded into job_key/job_hash — the restored
  /// state is part of the simulation's identity, so editing or regenerating
  /// the checkpoint invalidates cached results.
  std::string resume_checkpoint;
};

/// True when spec.machine names a serialized model description file
/// (a ".rcpn" path) rather than a compiled-in machine key.
bool is_description_job(const JobSpec& spec);

/// True when spec.machine names a seeded fuzz model ("fuzz" seeded by
/// spec.seed, or "fuzz-<n>"); fills `seed` accordingly.
bool is_fuzz_job(const JobSpec& spec, unsigned& seed);

/// The cycle budget the executors actually enforce for `spec` — the value
/// job_key renders. Fuzz models resolve 0 to their default drain cap, and
/// machines that ignore the budget (golden keys run a fixed workload to
/// completion) canonicalize to 0, so two specs that simulate identically
/// cannot hash apart — and, conversely, a budget the execution would not
/// honor can never make two *different*-looking specs share a stale cached
/// result.
std::uint64_t effective_cycle_budget(const JobSpec& spec);

/// Canonical identity string: machine, backend, schedule-affecting options
/// signature (core::options_signature), deadlock limit, seed, effective
/// cycle budget, executor — stable across processes and library versions
/// that agree on those semantics. Description jobs append `;desc=<fnv1a of
/// file content>` (or `;desc=missing` for an unreadable file); jobs resuming
/// from a checkpoint append `;ckpt=<fnv1a of file content>` the same way.
std::string job_key(const JobSpec& spec);

/// 64-bit FNV-1a of job_key(spec): the result-cache key and the per-job
/// identity stamp in FarmReport JSON.
std::uint64_t job_hash(const JobSpec& spec);

/// Order-sensitive FNV-1a digest of a retire trace — the compact equality
/// witness FarmReport records per job (two runs with equal digests retired
/// the same instructions at the same cycles in the same order).
std::uint64_t trace_digest(const std::vector<machines::GoldenRetireEvent>& trace);

enum class JobStatus : std::uint8_t { ok, failed, timeout };

const char* job_status_name(JobStatus status);

/// Outcome of one job. `stats`/`retired`/`digest` are meaningful only for
/// status == ok; `error` is empty only for status == ok.
struct JobResult {
  JobStatus status = JobStatus::failed;
  std::string error;
  core::Stats stats;
  std::uint64_t retired = 0;       // trace length (= stats.retired for golden runs)
  std::uint64_t digest = 0;        // trace_digest of the retire trace
  double wall_seconds = 0.0;       // execution wall time (0 for cache hits)
  bool cached = false;             // served from the farm's result cache
  int exit_code = 0;               // subprocess executor: child exit status
};

}  // namespace rcpn::farm
