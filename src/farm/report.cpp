#include "farm/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "gen/generated.hpp"

namespace rcpn::farm {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string fmt3(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// Nearest-rank percentile of an ascending-sorted vector (q in [0,1]).
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(q * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

std::size_t FarmReport::count(JobStatus status) const {
  std::size_t n = 0;
  for (const JobRecord& j : jobs)
    if (j.result.status == status) ++n;
  return n;
}

FarmAggregate FarmReport::aggregate() const {
  FarmAggregate a;
  a.jobs = jobs.size();
  std::vector<double> wall_ms;
  for (const JobRecord& j : jobs) {
    switch (j.result.status) {
      case JobStatus::ok: ++a.ok; break;
      case JobStatus::failed: ++a.failed; break;
      case JobStatus::timeout: ++a.timeout; break;
    }
    if (j.result.cached) ++a.cached;
    if (j.result.status == JobStatus::ok) {
      a.total_cycles += j.result.stats.cycles;
      a.total_retired += j.result.retired;
      // Percentiles over executed-and-successful jobs only: cached results
      // carry no wall time, and failure/timeout latencies are not simulation
      // cost. An empty sample set (all cached, all failed, no jobs) yields
      // 0.0 percentiles with wall_samples == 0 flagging the degenerate case.
      if (!j.result.cached) wall_ms.push_back(j.result.wall_seconds * 1e3);
    }
  }
  std::sort(wall_ms.begin(), wall_ms.end());
  a.wall_samples = wall_ms.size();
  a.wall_ms_p50 = percentile(wall_ms, 0.50);
  a.wall_ms_p95 = percentile(wall_ms, 0.95);
  a.wall_ms_max = wall_ms.empty() ? 0.0 : wall_ms.back();
  return a;
}

std::string FarmReport::render_json(bool include_timing) const {
  const FarmAggregate a = aggregate();
  std::ostringstream out;
  out << "{\n  \"schema\": \"rcpn-farm-report/2\",\n";
  if (include_timing) {
    out << "  \"workers\": " << workers << ",\n";
    out << "  \"wall_seconds\": " << wall_seconds << ",\n";
  }
  out << "  \"aggregate\": {\"jobs\": " << a.jobs << ", \"ok\": " << a.ok
      << ", \"failed\": " << a.failed << ", \"timeout\": " << a.timeout;
  out << ", \"total_cycles\": " << a.total_cycles
      << ", \"total_retired\": " << a.total_retired;
  if (include_timing) {
    out << ", \"cached\": " << a.cached << ", \"wall_samples\": " << a.wall_samples
        << ", \"wall_ms_p50\": " << fmt3(a.wall_ms_p50)
        << ", \"wall_ms_p95\": " << fmt3(a.wall_ms_p95)
        << ", \"wall_ms_max\": " << fmt3(a.wall_ms_max);
  }
  out << "},\n";
  if (include_timing) {
    const FarmTelemetry& t = telemetry;
    out << "  \"telemetry\": {\"executed\": " << t.executed
        << ", \"cache_hits\": " << t.cache_hits << ", \"timeouts\": " << t.timeouts
        << ", \"replacements\": " << t.replacements << ", \"steals\": " << t.steals
        << ", \"queue_wait_ms_mean\": " << fmt3(t.queue_wait_ms_mean)
        << ", \"queue_wait_ms_max\": " << fmt3(t.queue_wait_ms_max)
        << ", \"workers\": [";
    for (std::size_t i = 0; i < t.workers.size(); ++i) {
      const WorkerTelemetry& w = t.workers[i];
      out << (i == 0 ? "" : ", ") << "{\"jobs\": " << w.jobs
          << ", \"steals\": " << w.steals
          << ", \"busy_seconds\": " << fmt3(w.busy_seconds) << "}";
    }
    out << "]},\n";
  }
  out << "  \"jobs\": [";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobRecord& j = jobs[i];
    const JobSpec& s = j.spec;
    const JobResult& r = j.result;
    out << (i == 0 ? "\n" : ",\n") << "    {\"machine\": \"" << json_escape(s.machine)
        << "\", \"executor\": \"" << executor_name(s.executor) << "\", \"backend\": \""
        << backend_name(s.options.backend) << "\", \"options\": \""
        << json_escape(gen::generated_options_desc(gen::generated_options_key(s.options)))
        << "\", \"seed\": " << s.seed << ", \"cycle_budget\": " << s.cycle_budget
        << ", \"hash\": \"" << hex64(j.hash) << "\", \"status\": \""
        << job_status_name(r.status) << "\"";
    if (!r.error.empty()) out << ", \"error\": \"" << json_escape(r.error) << "\"";
    if (r.status == JobStatus::ok) {
      out << ", \"digest\": \"" << hex64(r.digest) << "\", \"retired\": " << r.retired
          << ", \"cycles\": " << r.stats.cycles << ", \"fetched\": " << r.stats.fetched
          << ", \"squashed\": " << r.stats.squashed
          << ", \"reservations\": " << r.stats.reservations
          << ", \"firings\": " << r.stats.firings;
    }
    if (s.executor == ExecutorKind::subprocess) out << ", \"exit_code\": " << r.exit_code;
    if (include_timing) {
      out << ", \"wall_ms\": " << fmt3(r.wall_seconds * 1e3)
          << ", \"cached\": " << (r.cached ? "true" : "false");
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace rcpn::farm
