#include "farm/result_cache.hpp"

namespace rcpn::farm {

bool ResultCache::lookup(std::uint64_t hash, JobResult& out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(hash);
  if (it == index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  out = it->second->second;
  out.cached = true;
  out.wall_seconds = 0.0;
  return true;
}

void ResultCache::insert(std::uint64_t hash, const JobResult& result) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(hash);
  if (it != index_.end()) {
    it->second->second = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(hash, result);
  index_[hash] = lru_.begin();
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace rcpn::farm
