// Bounded, thread-safe LRU cache of job results, keyed by job_hash().
//
// The farm consults it before executing a job and inserts successful results
// after: re-running an identical sweep grid (same canonical job keys) does
// zero simulation work. Only status == ok results are cached — a failure or
// timeout may be transient (load spike, missing binary just built), so it is
// retried on the next submission. Capacity is a hard bound on retained
// results; eviction is least-recently-used (lookups refresh recency).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "farm/job.hpp"

namespace rcpn::farm {

class ResultCache {
 public:
  /// `capacity` == 0 disables the cache (lookup always misses, insert drops).
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// If `hash` is cached, copy its result into `out` with `cached` set and
  /// the wall clock zeroed (the simulation did not run) and return true.
  bool lookup(std::uint64_t hash, JobResult& out);

  /// Retain `result` for `hash` (intended for status == ok only; the farm
  /// enforces that policy). Overwrites an existing entry; evicts the least
  /// recently used entry when full.
  void insert(std::uint64_t hash, const JobResult& result);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  using LruList = std::list<std::pair<std::uint64_t, JobResult>>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, LruList::iterator> index_;
};

}  // namespace rcpn::farm
