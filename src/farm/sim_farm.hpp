// SimFarm: the sharded batch-simulation engine.
//
// run(jobs) distributes the jobs round-robin over per-worker work-stealing
// deques (each worker pops its own deque from the back and steals from the
// fronts of the others when empty), executes every job through its spec's
// executor, and returns a FarmReport in submission order. Invariants:
//
//  * A failing job never fails the farm. Executors convert exceptions into
//    failed results; an in-process job that outlives its wall-clock timeout
//    is claimed as `timeout` by the monitor thread, its CancelToken is
//    cancelled, and the stuck worker thread is abandoned (parked until it
//    cooperates) while a replacement thread takes over its deque — the rest
//    of the grid always completes. Subprocess jobs enforce their own
//    timeout with SIGKILL and need no supervision.
//  * Each job's result is committed exactly once (worker/monitor races are
//    resolved by an atomic claim), and the report lists jobs in submission
//    order regardless of which worker ran them when.
//  * Successful results enter a bounded LRU cache keyed by job_hash(); the
//    cache persists across run() calls on the same farm, so re-running an
//    identical grid does zero simulation work.
//
// Hard-hang caveat: an in-process job that never polls its CancelToken and
// never trips the engine's deadlock watchdog cannot be killed — its thread
// is abandoned and joined in ~SimFarm, which then blocks. Use the
// subprocess executor when jobs are untrusted.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "farm/job.hpp"
#include "farm/report.hpp"

namespace rcpn::farm {

struct FarmOptions {
  /// Worker thread count; 0 = std::thread::hardware_concurrency().
  unsigned workers = 0;
  /// Timeout for jobs whose spec leaves timeout_ms at 0.
  std::uint64_t default_timeout_ms = 30000;
  /// Result-cache capacity in entries; 0 disables caching.
  std::size_t cache_entries = 256;
  /// Directory holding the gen_fs_<machine> binaries for the subprocess
  /// executor; empty = directory of the current executable.
  std::string bin_dir;
  /// Progress callback, invoked with the farm-wide progress lock held (calls
  /// are serialized): (completed count, total, job index, its result).
  std::function<void(std::size_t, std::size_t, std::size_t, const JobResult&)>
      on_job_done;
};

class SimFarm {
 public:
  explicit SimFarm(FarmOptions options = {});
  ~SimFarm();  // joins abandoned (timed-out) worker threads
  SimFarm(const SimFarm&) = delete;
  SimFarm& operator=(const SimFarm&) = delete;

  /// Run the grid to completion. Not reentrant: one run() at a time.
  FarmReport run(std::vector<JobSpec> jobs);

  /// Jobs actually simulated (cache misses), cumulative over run() calls.
  std::uint64_t executed() const;
  /// Jobs served from the result cache, cumulative over run() calls.
  std::uint64_t cache_hits() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Directory of the running executable (via /proc/self/exe) — the default
/// search path for sibling gen_fs_* binaries.
std::string default_bin_dir();

}  // namespace rcpn::farm
