#include "farm/executor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "desc/description.hpp"
#include "machines/desc_machines.hpp"
#include "machines/fuzz_model.hpp"
#include "machines/golden_runner.hpp"

namespace rcpn::farm {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

JobResult ok_result(const machines::GoldenRunResult& run) {
  JobResult r;
  r.status = JobStatus::ok;
  r.stats = run.stats;
  r.retired = run.trace.size();
  r.digest = trace_digest(run.trace);
  return r;
}

JobResult failed_result(std::string why) {
  JobResult r;
  r.status = JobStatus::failed;
  r.error = std::move(why);
  return r;
}

/// Resume path of the in-process executor: construct `spec`'s machine as a
/// golden session, restore the checkpoint into it, run the remainder.
/// Throws (captured by execute()'s handler) on an unreadable file or any
/// checkpoint mismatch — the ckpt layer's errors name the offender.
machines::GoldenRunResult run_from_checkpoint(const JobSpec& spec) {
  std::ifstream in(spec.resume_checkpoint, std::ios::binary);
  if (!in)
    throw std::runtime_error("cannot read checkpoint '" + spec.resume_checkpoint +
                             "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  unsigned fuzz_seed = 0;
  std::unique_ptr<machines::GoldenSession> session =
      is_fuzz_job(spec, fuzz_seed)
          ? machines::make_fuzz_session(fuzz_seed, spec.options, spec.cycle_budget)
          : machines::make_golden_session(spec.machine, spec.options);
  machines::read_checkpoint(*session, buf.str());
  return machines::finish_session(*session);
}

/// Tail of `out` for error messages: enough to show the child's complaint
/// without dumping a whole trace into the report.
std::string output_tail(const std::string& out, std::size_t max = 400) {
  const std::string trimmed =
      out.size() <= max ? out : "..." + out.substr(out.size() - max);
  std::string flat = trimmed;
  for (char& c : flat)
    if (c == '\n') c = ' ';
  return flat;
}

}  // namespace

JobResult InProcessExecutor::execute(const JobSpec& spec, std::uint64_t timeout_ms,
                                     const CancelToken& cancel) {
  (void)timeout_ms;  // cooperative only — the farm's monitor owns the clock
  const auto t0 = Clock::now();
  JobResult result;
  try {
    if (spec.machine == kThrowJobKey) {
      throw std::runtime_error("injected failure (" + std::string(kThrowJobKey) + ")");
    } else if (spec.machine == kHangJobKey) {
      // Spin until the monitor cancels us; the timeout result is committed by
      // the monitor, this return value is discarded by the abandoned worker.
      while (!cancel.cancelled())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      result = failed_result("hung job cancelled");
    } else {
      unsigned fuzz_seed = 0;
      if (is_description_job(spec)) {
        if (!spec.resume_checkpoint.empty())
          throw std::runtime_error("description job '" + spec.machine +
                                   "' cannot resume from a checkpoint (no "
                                   "session for described models yet)");
        // Serialized-model job: the .rcpn file IS the model. Its recorded
        // schedule flags govern (they are part of the described model); the
        // spec still picks everything else — backend, obs — so one sweep can
        // run a description across backends.
        const desc::Description d = desc::read_file(spec.machine);
        result = ok_result(machines::run_description(
            d, desc::engine_options(d, spec.options), spec.cycle_budget));
      } else if (!spec.resume_checkpoint.empty()) {
        result = ok_result(run_from_checkpoint(spec));
      } else if (is_fuzz_job(spec, fuzz_seed)) {
        result = ok_result(
            machines::golden_run_fuzz(fuzz_seed, spec.options, spec.cycle_budget));
      } else {
        // Unknown keys throw std::invalid_argument here — captured below.
        result = ok_result(machines::run_golden_machine_full(spec.machine, spec.options));
      }
    }
  } catch (const std::exception& e) {
    result = failed_result(e.what());
  } catch (...) {
    result = failed_result("unknown exception");
  }
  result.wall_seconds = seconds_since(t0);
  return result;
}

namespace {

enum class SpawnOutcome { exited, timed_out, spawn_failed };

/// fork/exec `argv`, capture stdout+stderr, enforce `deadline` with SIGKILL.
/// `cancel` is polled alongside the deadline so a cancelled farm reaps its
/// children promptly.
SpawnOutcome spawn_with_deadline(const std::vector<std::string>& argv,
                                 Clock::time_point deadline,
                                 const CancelToken& cancel, std::string& out,
                                 int& exit_code) {
  out.clear();
  exit_code = -1;

  int fds[2];
  if (::pipe(fds) != 0) return SpawnOutcome::spawn_failed;

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return SpawnOutcome::spawn_failed;
  }
  if (pid == 0) {
    ::close(fds[0]);
    ::dup2(fds[1], STDOUT_FILENO);
    ::dup2(fds[1], STDERR_FILENO);
    ::close(fds[1]);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    ::_exit(127);  // exec failed (missing binary): a distinctive exit code
  }

  ::close(fds[1]);
  bool killed = false;
  char buf[4096];
  for (;;) {
    const auto now = Clock::now();
    if (!killed && (now >= deadline || cancel.cancelled())) {
      ::kill(pid, SIGKILL);
      killed = true;
    }
    const auto budget = killed ? Clock::duration(std::chrono::milliseconds(100))
                               : deadline - now;
    const int wait_ms = static_cast<int>(std::max<long long>(
        1, std::chrono::duration_cast<std::chrono::milliseconds>(budget).count()));
    struct pollfd pfd{fds[0], POLLIN, 0};
    const int pr = ::poll(&pfd, 1, std::min(wait_ms, 50));
    if (pr > 0) {
      const ssize_t n = ::read(fds[0], buf, sizeof(buf));
      if (n > 0) {
        out.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      // A signal (SIGCHLD from another worker's child, a profiler tick)
      // landing mid-read must not be mistaken for EOF: that would abort the
      // capture and report a truncated output tail. Retry the poll/read.
      if (n < 0 && errno == EINTR) continue;
      break;  // EOF (or real read error): child closed its end
    }
    // pr == 0: poll slice elapsed — loop to re-check deadline/cancellation.
    if (pr < 0 && errno != EINTR) break;
  }
  ::close(fds[0]);

  // waitpid blocks until the child exits, which is exactly when SIGCHLD
  // arrives — without SA_RESTART the call returns EINTR instead of the pid.
  // Retry: the child is still ours to reap.
  int status = 0;
  pid_t waited;
  do {
    waited = ::waitpid(pid, &status, 0);
  } while (waited < 0 && errno == EINTR);
  if (waited != pid) return SpawnOutcome::spawn_failed;
  if (killed) return SpawnOutcome::timed_out;
  if (WIFEXITED(status)) {
    exit_code = WEXITSTATUS(status);
    return SpawnOutcome::exited;
  }
  exit_code = WIFSIGNALED(status) ? 128 + WTERMSIG(status) : -1;
  return SpawnOutcome::exited;
}

}  // namespace

JobResult SubprocessExecutor::execute(const JobSpec& spec, std::uint64_t timeout_ms,
                                      const CancelToken& cancel) {
  const auto t0 = Clock::now();
  // execute() must not throw (the contract in executor.hpp): a worker thread
  // has no handler above this frame, so a stray exception — bad_alloc while
  // buffering a huge child output, a parse helper's surprise — would
  // std::terminate the whole grid instead of failing this one job. A child
  // killed mid-fprintf (partial final trace line) must come back as a failed
  // JobResult carrying the output tail, nothing worse.
  try {
    const auto deadline = t0 + std::chrono::milliseconds(timeout_ms);

    if (is_description_job(spec)) {
      // Description jobs resolve delegates through the in-process registries;
      // there is no pre-built per-description binary to exec. Fail loudly
      // instead of exec'ing a nonsense path.
      JobResult r = failed_result(
          "description job '" + spec.machine +
          "' requires the in-process executor (no per-.rcpn binary to spawn)");
      r.wall_seconds = seconds_since(t0);
      return r;
    }

    std::vector<std::string> argv;
    argv.push_back(config_.bin_dir + "/" + config_.bin_prefix + spec.machine);
    argv.push_back("--stats");
    // The freestanding binary's generated tables are stamped with the options
    // it was emitted under; other backends/schedules go through its CLI flags
    // (a generated-backend run under mismatched options fails verification in
    // the child and surfaces here as a nonzero exit).
    if (spec.options.backend != core::Backend::generated) {
      argv.push_back("--backend");
      argv.push_back(backend_name(spec.options.backend));
    }
    if (spec.options.force_two_list_all) argv.push_back("--force-two-list-all");
    if (!spec.options.two_list_state_refs) argv.push_back("--no-two-list-state-refs");
    if (spec.options.linear_search) argv.push_back("--linear-search");
    unsigned fuzz_seed = 0;
    const bool fuzz = is_fuzz_job(spec, fuzz_seed);
    if (fuzz) {
      // Fuzz artifacts carry the generic --cycles cap. Without this the child
      // would run its own default regardless of spec.cycle_budget — and the
      // result cache, keyed on the budget, would retain a result the spec's
      // truncation never produced.
      argv.push_back("--cycles");
      argv.push_back(std::to_string(effective_cycle_budget(spec)));
    }
    if (!spec.resume_checkpoint.empty()) {
      if (fuzz) {
        // The generic artifact CLI treats unknown arguments as workload
        // positionals — silently ignoring the checkpoint would run (and
        // cache) the wrong simulation. Refuse instead.
        JobResult r = failed_result(
            "fuzz job '" + spec.machine +
            "' cannot resume from a checkpoint under the subprocess executor "
            "(generic artifact CLI has no --restore); use in-process");
        r.wall_seconds = seconds_since(t0);
        return r;
      }
      argv.push_back("--restore");
      argv.push_back(spec.resume_checkpoint);
    }

    std::string out;
    int exit_code = -1;
    const SpawnOutcome outcome =
        spawn_with_deadline(argv, deadline, cancel, out, exit_code);

    JobResult result;
    result.wall_seconds = seconds_since(t0);
    result.exit_code = exit_code;
    switch (outcome) {
      case SpawnOutcome::spawn_failed:
        result.status = JobStatus::failed;
        result.error = "failed to spawn " + argv[0];
        return result;
      case SpawnOutcome::timed_out:
        result.status = JobStatus::timeout;
        result.error = "timed out after " + std::to_string(timeout_ms) + "ms (SIGKILL)";
        return result;
      case SpawnOutcome::exited:
        break;
    }
    if (exit_code != 0) {
      result.status = JobStatus::failed;
      result.error = argv[0] + " exited with " + std::to_string(exit_code) + ": " +
                     output_tail(out);
      return result;
    }

    std::vector<machines::GoldenRetireEvent> trace;
    core::Stats stats;
    if (!machines::parse_golden_trace(out, trace) ||
        !machines::parse_golden_stats(out, stats)) {
      result.status = JobStatus::failed;
      result.error = "unparseable simulator output: " + output_tail(out);
      return result;
    }
    result.status = JobStatus::ok;
    result.stats = stats;
    result.retired = trace.size();
    result.digest = trace_digest(trace);
    return result;
  } catch (const std::exception& e) {
    JobResult r = failed_result(e.what());
    r.wall_seconds = seconds_since(t0);
    return r;
  } catch (...) {
    JobResult r = failed_result("unknown exception in subprocess executor");
    r.wall_seconds = seconds_since(t0);
    return r;
  }
}

}  // namespace rcpn::farm
