// Registry of generated simulator engines (Backend::generated).
//
// A translation unit produced by gen::emit_simulator() defines a
// StaticEngine specialization for one model *under one set of
// schedule-affecting EngineOptions* and registers a factory for it here from
// a static initializer. model::Simulator<M> resolves EngineOptions::backend
// == Backend::generated through this registry by the model's net name plus
// the options key, so a model runs on its generated simulator simply by
// linking the emitted source into the binary — no model code changes — and
// ablation-variant artifacts (force_two_list_all etc.) coexist with the
// default schedule in one binary.
//
// The registry is deliberately tiny: (name, options key) -> plain function
// pointer. It is the only runtime coupling between a generated artifact and
// the library; everything else in the emitted file is constexpr data and
// direct calls.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"

namespace rcpn::gen {

using GeneratedFactory = std::unique_ptr<core::Engine> (*)(core::Net&,
                                                           core::EngineOptions);

/// The schedule-affecting option bits a generated artifact is emitted under
/// (two-list analysis, candidate-search strategy and the quiescence-skip
/// main-loop variant; backend and runtime knobs like deadlock_limit do not
/// change the tables). Emitted TUs stamp the key as Traits::kOptionsKey;
/// lookups derive the same key from live EngineOptions. Both sides come
/// from the core::options_bits table (core/options_signature.hpp) — the
/// constexpr form is kept for compatibility and must agree with that table
/// (tests assert it).
constexpr std::uint32_t generated_options_key(bool two_list_state_refs,
                                              bool force_two_list_all,
                                              bool linear_search,
                                              bool quiescence_skip) {
  return (two_list_state_refs ? 1u : 0u) | (force_two_list_all ? 2u : 0u) |
         (linear_search ? 4u : 0u) | (quiescence_skip ? 8u : 0u);
}
std::uint32_t generated_options_key(const core::EngineOptions& options);

/// Human-readable spelling of an options key (error messages, emitted
/// header comments), e.g. "two_list_state_refs" or
/// "force_two_list_all,linear_search".
std::string generated_options_desc(std::uint32_t options_key);

/// Register the generated engine for model `model` (the net name) under
/// `options_key`. Called from the emitted TU's static initializer;
/// re-registration replaces (the same generated source linked twice is
/// harmless).
void register_generated_engine(const std::string& model, std::uint32_t options_key,
                               GeneratedFactory factory);

/// The factory for `model` under `options` (or an explicit key), or nullptr
/// if no matching generated TU is linked in.
GeneratedFactory find_generated_engine(const std::string& model,
                                       std::uint32_t options_key);
GeneratedFactory find_generated_engine(const std::string& model,
                                       const core::EngineOptions& options);
/// Default-options lookup (the common single-artifact case).
GeneratedFactory find_generated_engine(const std::string& model);

/// Names of all models with a registered generated engine (diagnostics);
/// variant registrations of one model appear once.
std::vector<std::string> registered_generated_models();

}  // namespace rcpn::gen
