// Registry of generated simulator engines (Backend::generated).
//
// A translation unit produced by gen::emit_simulator() defines a
// StaticEngine specialization for one model and registers a factory for it
// here from a static initializer. model::Simulator<M> resolves
// EngineOptions::backend == Backend::generated through this registry by the
// model's net name, so a model runs on its generated simulator simply by
// linking the emitted source into the binary — no model code changes.
//
// The registry is deliberately tiny: name -> plain function pointer. It is
// the only runtime coupling between a generated artifact and the library;
// everything else in the emitted file is constexpr data and direct calls.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"

namespace rcpn::gen {

using GeneratedFactory = std::unique_ptr<core::Engine> (*)(core::Net&,
                                                           core::EngineOptions);

/// Register the generated engine for model `model` (the net name). Called
/// from the emitted TU's static initializer; re-registration replaces (the
/// same generated source linked twice is harmless).
void register_generated_engine(const std::string& model, GeneratedFactory factory);

/// The factory for `model`, or nullptr if no generated TU is linked in.
GeneratedFactory find_generated_engine(const std::string& model);

/// Names of all models with a registered generated engine (diagnostics).
std::vector<std::string> registered_generated_models();

}  // namespace rcpn::gen
