// Exporters for a built model: the generated static schedule as a standalone
// C++ table file, and the model structure as graphviz.
//
//  * emit_cpp(cm, net) prints the CompiledModel tables — the Fig 6 candidate
//    runs, the reverse-topological place order, the two-list stage set, the
//    flat arc arrays and per-place residences — as a self-contained C++
//    source with names in comments. Guards and actions are runtime-bound
//    delegates and cannot be serialized; the emitted file documents the
//    schedule a generated simulator would be compiled from (and diffs
//    usefully across model edits).
//  * emit_dot(net) prints the RCPN for graphviz: stages as clusters of their
//    places, transitions as boxes per operation class, reservation arcs
//    dashed, the virtual end place as a double circle. After build(),
//    two-list stages are shaded.
#pragma once

#include <string>

#include "core/net.hpp"
#include "gen/compiled_model.hpp"

namespace rcpn::gen {

std::string emit_cpp(const CompiledModel& cm, const core::Net& net);
std::string emit_dot(const core::Net& net);

}  // namespace rcpn::gen
