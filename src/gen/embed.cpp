#include "gen/embed.hpp"

#include <functional>
#include <set>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

namespace rcpn::gen {

namespace {

/// One embedded file, split into the pieces the amalgamation reassembles.
struct ParsedSource {
  std::vector<std::string> quoted;  ///< `#include "..."` targets, in order
  std::vector<std::string> system;  ///< `#include <...>` targets, in order
  std::string body;                 ///< everything else, verbatim
};

std::string_view trim_left(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  return s;
}

/// Extract the target of an include directive line, or empty.
std::string include_target(std::string_view line, char open, char close) {
  std::string_view s = trim_left(line);
  if (!s.starts_with("#include")) return {};
  s = trim_left(s.substr(8));
  if (s.empty() || s.front() != open) return {};
  const std::size_t end = s.find(close, 1);
  if (end == std::string_view::npos) return {};
  return std::string(s.substr(1, end - 1));
}

ParsedSource parse_source(const char* text) {
  ParsedSource out;
  std::string_view rest(text);
  while (!rest.empty()) {
    const std::size_t nl = rest.find('\n');
    const std::string_view line =
        nl == std::string_view::npos ? rest : rest.substr(0, nl);
    rest = nl == std::string_view::npos ? std::string_view{} : rest.substr(nl + 1);

    if (std::string q = include_target(line, '"', '"'); !q.empty()) {
      out.quoted.push_back(std::move(q));
      continue;
    }
    if (std::string s = include_target(line, '<', '>'); !s.empty()) {
      out.system.push_back(std::move(s));
      continue;
    }
    if (trim_left(line).starts_with("#pragma once")) continue;
    out.body.append(line);
    out.body.push_back('\n');
  }
  // Collapse the blank lines the stripped include block leaves behind.
  while (out.body.starts_with("\n")) out.body.erase(0, 1);
  return out;
}

bool is_cpp(const std::string& path) { return path.ends_with(".cpp"); }

}  // namespace

const char* find_embedded_file(const std::string& path) {
  for (unsigned i = 0; i < kNumEmbeddedFiles; ++i)
    if (path == kEmbeddedFiles[i].path) return kEmbeddedFiles[i].text;
  return nullptr;
}

std::vector<std::string> embedded_file_paths() {
  std::vector<std::string> paths;
  for (unsigned i = 0; i < kNumEmbeddedFiles; ++i)
    paths.push_back(kEmbeddedFiles[i].path);
  return paths;
}

std::string amalgamate_sources(const std::vector<std::string>& roots) {
  if (kNumEmbeddedFiles == 0)
    throw std::runtime_error(
        "amalgamate_sources: the embedded source table is empty — this "
        "library was built with RCPN_NO_EMBED=ON, which strips freestanding "
        "emission support; rebuild with RCPN_NO_EMBED=OFF to emit "
        "freestanding simulators");
  std::unordered_map<std::string, ParsedSource> parsed;
  const auto parsed_of = [&parsed](const std::string& path) -> const ParsedSource& {
    const auto it = parsed.find(path);
    if (it != parsed.end()) return it->second;
    const char* text = find_embedded_file(path);
    if (text == nullptr)
      throw std::runtime_error(
          "amalgamate_sources: '" + path +
          "' is not in the embedded source set — a freestanding simulator can "
          "only inline the library sources embedded at build time "
          "(cmake/EmbedSources.cmake)");
    return parsed.emplace(path, parse_source(text)).first->second;
  };

  // Headers in DFS post-order: every header's quoted includes precede it.
  std::vector<std::string> header_order;
  std::unordered_set<std::string> visited;
  const std::function<void(const std::string&)> visit_header =
      [&](const std::string& path) {
        if (!visited.insert(path).second) return;
        for (const std::string& dep : parsed_of(path).quoted) visit_header(dep);
        header_order.push_back(path);
      };
  for (const std::string& root : roots) visit_header(root);

  // Companion .cpp files: an embedded .cpp belongs to the TU when its owning
  // header (its first quoted include, per the repo convention) was pulled in.
  // A companion's remaining includes may pull further headers, which may in
  // turn own more companions — iterate to the fixpoint. Table order keeps
  // every round, and therefore the output, deterministic.
  std::vector<std::string> cpp_order;
  std::unordered_set<std::string> cpp_taken;
  for (bool grew = true; grew;) {
    grew = false;
    for (unsigned i = 0; i < kNumEmbeddedFiles; ++i) {
      const std::string path = kEmbeddedFiles[i].path;
      if (!is_cpp(path) || cpp_taken.contains(path)) continue;
      const ParsedSource& src = parsed_of(path);
      if (src.quoted.empty() || !visited.contains(src.quoted.front())) continue;
      cpp_taken.insert(path);
      cpp_order.push_back(path);
      for (const std::string& dep : src.quoted) visit_header(dep);
      grew = true;
    }
  }

  // Render: sorted system includes, then headers, then companion bodies.
  std::set<std::string> system;
  const auto collect = [&](const std::vector<std::string>& paths) {
    for (const std::string& p : paths)
      for (const std::string& s : parsed_of(p).system) system.insert(s);
  };
  collect(header_order);
  collect(cpp_order);

  std::string out;
  out +=
      "// ---- amalgamated runtime (" + std::to_string(header_order.size()) +
      " headers, " + std::to_string(cpp_order.size()) +
      " sources; see src/gen/embed.hpp) ----\n";
  for (const std::string& s : system) out += "#include <" + s + ">\n";
  out += "\n";
  for (const std::string& p : header_order) {
    out += "// ---- " + p + " ----\n";
    out += parsed_of(p).body;
    out += "\n";
  }
  for (const std::string& p : cpp_order) {
    out += "// ---- " + p + " ----\n";
    out += parsed_of(p).body;
    out += "\n";
  }
  return out;
}

}  // namespace rcpn::gen
