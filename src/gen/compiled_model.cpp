#include "gen/compiled_model.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/engine.hpp"

namespace rcpn::gen {

namespace {

CompiledTransition compile_one(CompiledModel& cm, core::Net& net,
                               const core::Transition& t) {
  CompiledTransition ct;
  ct.guard = t.guard_fn();
  ct.guard_env = t.guard_env();
  ct.action = t.action_fn();
  ct.action_env = t.action_env();
  ct.id = t.id();
  ct.delay = t.delay();
  ct.max_fires = t.max_fires_per_cycle();

  ct.res_in_begin = static_cast<std::uint32_t>(cm.res_in.size());
  for (const core::InArc& a : t.inputs())
    if (a.need == core::ArcNeed::reservation) cm.res_in.push_back(a.place);
  ct.n_res_in = static_cast<std::uint16_t>(cm.res_in.size() - ct.res_in_begin);

  ct.out_begin = static_cast<std::uint32_t>(cm.out_arcs.size());
  for (const core::OutArc& a : t.outputs())
    cm.out_arcs.push_back(CompiledOutArc{a.place, a.emit == core::ArcEmit::reservation,
                                         &net.stage_of(a.place)});
  ct.n_out = static_cast<std::uint16_t>(cm.out_arcs.size() - ct.out_begin);

  ct.simple = !t.independent() && t.inputs().size() == 1 && t.outputs().size() == 1 &&
              t.outputs()[0].emit == core::ArcEmit::move;
  if (ct.simple) {
    ct.move_place = t.outputs()[0].place;
    ct.move_stage = &net.stage_of(ct.move_place);
  }
  return ct;
}

}  // namespace

CompiledModel CompiledModel::lower(core::Engine& eng) {
  if (!eng.built())
    throw std::logic_error("gen: CompiledModel::lower() needs a built engine");
  core::Net& net = eng.net();

  CompiledModel cm;
  cm.num_places = net.num_places();
  cm.num_types = net.num_types();
  cm.num_stages = net.num_stages();
  cm.num_transitions = net.num_transitions();

  // Fig 6 as contiguous runs: each sub-net transition has exactly one trigger
  // place and one type, so laying the table out cell-by-cell stores every
  // transition exactly once, already in candidate order.
  cm.cell.assign(static_cast<std::size_t>(cm.num_places) * cm.num_types, CandRange{});
  for (unsigned p = 0; p < cm.num_places; ++p) {
    for (unsigned ty = 0; ty < cm.num_types; ++ty) {
      const auto& cands =
          eng.candidates(static_cast<core::PlaceId>(p), static_cast<core::TypeId>(ty));
      CandRange& r = cm.cell[static_cast<std::size_t>(p) * cm.num_types + ty];
      r.begin = static_cast<std::uint32_t>(cm.body.size());
      r.count = static_cast<std::uint32_t>(cands.size());
      for (const core::Transition* t : cands) {
        cm.body.push_back(compile_one(cm, net, *t));
        cm.body_syms.push_back({t->guard_symbol(), t->action_symbol()});
      }
    }
  }

  for (core::TransitionId tid : net.independent_transitions()) {
    const core::Transition& t = net.transition(tid);
    cm.independent.push_back(compile_one(cm, net, t));
    cm.independent_syms.push_back({t.guard_symbol(), t.action_symbol()});
  }

  cm.order.assign(eng.process_order().begin(), eng.process_order().end());
  for (core::PlaceId p : cm.order) cm.order_stage.push_back(&net.stage_of(p));
  for (unsigned s = 0; s < cm.num_stages; ++s)
    if (net.stage(static_cast<core::StageId>(s)).two_list()) {
      cm.two_list_stages.push_back(static_cast<core::StageId>(s));
      cm.two_list_stage_ptrs.push_back(&net.stage(static_cast<core::StageId>(s)));
    }

  cm.place_stage.resize(cm.num_places);
  cm.place_delay.resize(cm.num_places);
  for (unsigned p = 0; p < cm.num_places; ++p) {
    cm.place_stage[p] = net.place(static_cast<core::PlaceId>(p)).stage;
    cm.place_delay[p] = net.place(static_cast<core::PlaceId>(p)).delay;
  }

  // Token-pool sizing. A bounded stage can never hold more slots than its
  // capacity (has_room gates every entry); unlimited stages get one batch.
  // The arena hints cover the theoretical in-flight maximum: every bounded
  // slot occupied at once, by either kind of token.
  constexpr std::uint32_t kUnlimitedBatch = 64;
  std::uint64_t bounded_slots = 0;
  cm.stage_reserve.resize(cm.num_stages);
  for (unsigned s = 0; s < cm.num_stages; ++s) {
    const core::PipelineStage& st = net.stage(static_cast<core::StageId>(s));
    cm.stage_reserve[s] = st.unlimited() ? kUnlimitedBatch : st.capacity();
    if (!st.unlimited()) bounded_slots += st.capacity();
  }
  constexpr std::uint64_t kPoolCap = 4096;
  cm.instr_pool_hint = static_cast<std::uint32_t>(std::min(bounded_slots, kPoolCap));
  cm.res_pool_hint = static_cast<std::uint32_t>(std::min(bounded_slots, kPoolCap));
  return cm;
}

}  // namespace rcpn::gen
