// CompiledModel: the "generated simulator" data of paper §4-5, materialized.
//
// The interpreted core::Engine already performs the paper's static extraction
// (Fig 6 candidate tables, reverse-topological place order, two-list set) but
// stores the results as pointer-linked structures: a vector-of-vectors of
// Transition*, each Transition a heap object carrying std::vector arc lists.
// CompiledModel::lower() flattens those build products into the dense tables
// a generated simulator would be compiled from:
//
//  * `body` — every sub-net transition, laid out contiguously grouped by
//    (trigger place, operation class) and priority-sorted within a group, so
//    one Fig 6 cell is one linear run of POD descriptors;
//  * `cell` — the Fig 6 table itself: (place, type) -> [begin, count) run;
//  * flat arc arrays (`res_in`, `out_arcs`) shared by all transitions;
//  * guard/action delegates copied out as raw function pointers with their
//    environments pre-bound (the ROADMAP devirtualization item) — the
//    environments (machine context, builder-owned closures) stay owned by
//    the model layer and must outlive the compiled tables;
//  * the Fig 8 process order and the two-list stage set as plain id arrays.
//
// gen::CompiledEngine executes these tables; gen::emit_cpp() prints them as
// a standalone C++ source file (the paper's "simulator generation" made
// visible); both leave the lowered core::Net untouched.
#pragma once

#include <cstdint>
#include <vector>

#include "core/net.hpp"

namespace rcpn::core {
class Engine;
}

namespace rcpn::gen {

struct CompiledOutArc {
  core::PlaceId place = core::kNoPlace;
  /// true: emit a fresh reservation token; false: move the instruction token.
  bool reservation = false;
  /// Pre-resolved owning stage of `place` (token entry without the id hop).
  core::PipelineStage* stage = nullptr;
};

/// One transition, flattened: everything the hot loop reads in firing order,
/// no indirection into Transition/std::vector storage.
struct CompiledTransition {
  core::GuardFn guard = nullptr;
  void* guard_env = nullptr;
  core::ActionFn action = nullptr;
  void* action_env = nullptr;
  /// Simple shape only: pre-resolved destination of the single move arc.
  core::PipelineStage* move_stage = nullptr;
  core::PlaceId move_place = core::kNoPlace;
  core::TransitionId id = core::TransitionId{-1};
  std::uint32_t delay = 0;
  /// Flat ranges into CompiledModel::res_in / out_arcs.
  std::uint32_t res_in_begin = 0;
  std::uint32_t out_begin = 0;
  std::uint16_t n_res_in = 0;
  std::uint16_t n_out = 0;
  /// Independent transitions only: firings per cycle.
  std::int32_t max_fires = 1;
  /// One trigger arc in, one move arc out — the latch-to-latch fast path
  /// (precomputed so the per-firing shape test of the interpreted engine
  /// disappears).
  bool simple = false;
};

/// Half-open run into CompiledModel::body.
struct CandRange {
  std::uint32_t begin = 0;
  std::uint32_t count = 0;
};

struct CompiledModel {
  unsigned num_places = 0;
  unsigned num_types = 0;
  unsigned num_stages = 0;
  unsigned num_transitions = 0;

  /// Sub-net transitions grouped by (trigger place, type), priority order.
  std::vector<CompiledTransition> body;
  /// Fig 6: [place * num_types + type] -> run in `body`.
  std::vector<CandRange> cell;
  /// Instruction-independent sub-net, declaration order (Fig 8 tail).
  std::vector<CompiledTransition> independent;

  /// Which named delegate each entry binds (same index as body/independent;
  /// empty string = anonymous closure or no delegate). Cold emission
  /// metadata, kept out of the hot CompiledTransition rows —
  /// gen::emit_simulator() turns these into direct calls.
  struct DelegateSyms {
    std::string guard, action;
  };
  std::vector<DelegateSyms> body_syms;
  std::vector<DelegateSyms> independent_syms;

  /// Flat reservation-input places (CompiledTransition::res_in_begin).
  std::vector<core::PlaceId> res_in;
  /// Flat output arcs in declaration order (CompiledTransition::out_begin).
  std::vector<CompiledOutArc> out_arcs;

  /// Fig 8 processing order (reverse topological; end places dropped).
  std::vector<core::PlaceId> order;
  /// Pre-resolved owning stage of each `order` entry (same index): the hot
  /// loop reaches each place's token pool without the id->stage hop.
  std::vector<core::PipelineStage*> order_stage;
  /// Stages running the two-list (master/slave) algorithm.
  std::vector<core::StageId> two_list_stages;
  /// The same stages pre-resolved for the per-cycle promote loop.
  std::vector<core::PipelineStage*> two_list_stage_ptrs;

  /// Per-place structure-of-arrays: owning stage and residence delay.
  std::vector<core::StageId> place_stage;
  std::vector<std::uint32_t> place_delay;

  /// Token-pool sizing, applied by CompiledEngine::build(): per-stage SoA
  /// reservation (stage capacity; the end stage and other unlimited stages
  /// get a fixed batch) and arena pre-allocation hints, so the generated
  /// simulator's steady state never grows a vector.
  std::vector<std::uint32_t> stage_reserve;
  std::uint32_t instr_pool_hint = 0;
  std::uint32_t res_pool_hint = 0;

  const CandRange& candidates(core::PlaceId p, core::TypeId type) const {
    return cell[static_cast<std::size_t>(p) * num_types + static_cast<unsigned>(type)];
  }

  /// Flatten the build products of an already-built engine. The engine is
  /// taken mutable only to pre-resolve PipelineStage pointers; the pass reads
  /// everything else through the const introspection surface.
  static CompiledModel lower(core::Engine& eng);
};

}  // namespace rcpn::gen
