#include "gen/emit_simulator.hpp"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "core/options_signature.hpp"
#include "gen/embed.hpp"
#include "gen/generated.hpp"

namespace rcpn::gen {

namespace {

std::string sanitize(const std::string& name) {
  std::string out;
  for (char c : name)
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) out = "m_" + out;
  return out;
}

void appendf(std::string& out, const char* fmt, ...) {
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

/// Emit one `base.<flag> = true|false;` line per schedule-affecting option
/// (core::options_signature table), reproducing the stamped variant in the
/// emitted main()'s base EngineOptions.
void emit_base_option_lines(std::string& out, const core::EngineOptions& eo) {
  for (unsigned i = 0; i < core::num_schedule_options(); ++i)
    appendf(out, "  base.%s = %s;\n", core::schedule_option_name(i),
            core::schedule_option_get(i, eo) ? "true" : "false");
}

void emit_tx(std::string& out, const CompiledTransition& ct, const core::Net& net) {
  appendf(out,
          "      {%d, %d, %u, %u, %u, %u, %u, %d, %s},  // %s\n",
          static_cast<int>(ct.id), static_cast<int>(ct.move_place), ct.delay,
          ct.res_in_begin, ct.out_begin, ct.n_res_in, ct.n_out, ct.max_fires,
          ct.simple ? "true" : "false", net.transition(ct.id).name().c_str());
}

/// The guard/action dispatch switch: one case per transition that binds a
/// named delegate, calling it directly with the typed machine context.
/// `order` lists the transition ids in case-emission order (profile-guided
/// hottest-first, or plain id order) — case order never changes semantics.
void emit_dispatch(std::string& out, const core::Net& net, bool guards,
                   const std::vector<unsigned>& order) {
  const char* fn = guards ? "guard" : "action";
  appendf(out,
          "  static %s %s(std::int16_t id, [[maybe_unused]] Machine& m,\n"
          "         %s     [[maybe_unused]] rcpn::core::FireCtx& ctx) {\n"
          "    switch (id) {\n",
          guards ? "bool" : "void", fn, guards ? " " : "");
  for (unsigned t : order) {
    const core::Transition& tr = net.transition(static_cast<core::TransitionId>(t));
    const std::string& sym = guards ? tr.guard_symbol() : tr.action_symbol();
    if (sym.empty()) continue;
    // The registered arity decides the call shape: (Machine&, FireCtx&) named
    // functions get the typed context, (FireCtx&)-only ones just the context.
    const bool takes_machine =
        guards ? tr.guard_symbol_takes_machine() : tr.action_symbol_takes_machine();
    const char* args = takes_machine ? "m, ctx" : "ctx";
    if (guards) {
      appendf(out, "      case %u: return ::%s(%s);  // %s\n", t, sym.c_str(), args,
              tr.name().c_str());
    } else {
      appendf(out, "      case %u: ::%s(%s); return;  // %s\n", t, sym.c_str(), args,
              tr.name().c_str());
    }
  }
  out += guards ? "      default: return true;\n" : "      default: return;\n";
  out += "    }\n  }\n";
}

}  // namespace

std::string emit_simulator(const CompiledModel& cm, const core::Net& net,
                           const EmitSimOptions& options) {
  // -- emittability checks ----------------------------------------------------
  if (net.emit_machine_type().empty())
    throw std::runtime_error("emit_simulator: model '" + net.name() +
                             "' declared no machine context type "
                             "(ModelBuilder::emit_machine_type)");
  std::string missing;
  for (unsigned t = 0; t < net.num_transitions(); ++t) {
    const core::Transition& tr = net.transition(static_cast<core::TransitionId>(t));
    if (tr.guard_fn() != nullptr && tr.guard_symbol().empty())
      missing += "\n  guard of '" + tr.name() + "'";
    if (tr.action_fn() != nullptr && tr.action_symbol().empty())
      missing += "\n  action of '" + tr.name() + "'";
  }
  if (!missing.empty())
    throw std::runtime_error(
        "emit_simulator: model '" + net.name() +
        "' binds anonymous delegates that cannot be emitted (register them "
        "as named free functions with guard_named/action_named):" +
        missing);

  const bool freestanding = options.mode == EmitMode::freestanding;
  if (freestanding && !options.machine_key.empty() && options.run_expr.empty())
    throw std::runtime_error(
        "emit_simulator: freestanding main() for '" + options.machine_key +
        "' needs EmitSimOptions::run_expr (the golden-runner call expression)");
  const bool generic_main = !options.generic_describe_expr.empty();
  if (generic_main && !options.machine_key.empty())
    throw std::runtime_error(
        "emit_simulator: machine_key and generic_describe_expr are mutually "
        "exclusive (a golden-runner main or a generic main, not both)");

  const core::EngineOptions& eo = options.engine_options;
  const std::uint32_t opt_key = generated_options_key(eo);

  // Profile-guided layout (EmitSimOptions::profile_fires): permute the kBody
  // cell runs hottest-cell-first and order the dispatch cases by measured
  // firing counts. Within-cell candidate (priority) order and the
  // independent-subnet order are untouched, so behavior is bit-identical.
  std::vector<CandRange> cell = cm.cell;
  std::vector<CompiledTransition> body = cm.body;
  std::vector<unsigned> dispatch_order(net.num_transitions());
  for (unsigned t = 0; t < net.num_transitions(); ++t) dispatch_order[t] = t;
  const bool profiled = options.profile_fires.size() == cm.num_transitions;
  std::uint64_t profiled_fires = 0;
  if (profiled) {
    for (std::uint64_t f : options.profile_fires) profiled_fires += f;
    struct Run {
      std::size_t cell_idx;
      std::uint64_t fires;
    };
    std::vector<Run> runs;
    std::size_t covered = 0;
    for (std::size_t ci = 0; ci < cell.size(); ++ci) {
      if (cell[ci].count == 0) continue;
      std::uint64_t f = 0;
      for (std::uint32_t i = 0; i < cell[ci].count; ++i)
        f += options.profile_fires[static_cast<unsigned>(cm.body[cell[ci].begin + i].id)];
      runs.push_back({ci, f});
      covered += cell[ci].count;
    }
    // Permute only when the cells partition kBody exactly (they do for
    // every lowering today; a future aliasing layout falls back untouched).
    if (covered == body.size()) {
      std::stable_sort(runs.begin(), runs.end(),
                       [](const Run& a, const Run& b) { return a.fires > b.fires; });
      std::vector<CompiledTransition> permuted;
      permuted.reserve(body.size());
      for (const Run& r : runs) {
        CandRange& c = cell[r.cell_idx];
        const std::uint32_t nb = static_cast<std::uint32_t>(permuted.size());
        for (std::uint32_t i = 0; i < c.count; ++i)
          permuted.push_back(cm.body[c.begin + i]);
        c.begin = nb;
      }
      body = std::move(permuted);
    }
    std::stable_sort(dispatch_order.begin(), dispatch_order.end(),
                     [&](unsigned a, unsigned b) {
                       return options.profile_fires[a] > options.profile_fires[b];
                     });
  }

  const std::string ns = sanitize(net.name());
  std::string out;
  out +=
      "// Generated by rcpn::gen::emit_simulator from model '" + net.name() +
      "'. Do not edit.\n"
      "//\n"
      "// A complete standalone simulator for this model (paper §4-5): the\n"
      "// static schedule as constexpr tables, every guard/action as a direct\n"
      "// call to its named delegate (no void* environments), executed by a\n"
      "// gen::StaticEngine specialization instantiated in this translation\n"
      "// unit — compile with -O3 -flto for whole-program optimization. The\n"
      "// engine verifies every table against the live model at build() and\n"
      "// refuses to run a stale artifact.\n"
      "//\n";
  appendf(out,
          "// EngineOptions stamp: %s\n"
          "// — schedule variant [%s]; build() throws when run under any other\n"
          "// ablation.\n",
          core::options_signature(eo).c_str(),
          generated_options_desc(opt_key).c_str());
  if (profiled)
    appendf(out,
            "// Profile-guided layout: candidate runs and dispatch cases ordered\n"
            "// by a %llu-firing profile (bit-identical simulation; layout only).\n",
            static_cast<unsigned long long>(profiled_fires));

  if (freestanding) {
    out +=
        "//\n"
        "// FREESTANDING: the runtime subset below is inlined from the library\n"
        "// sources (src/gen/embed.hpp) — this file compiles with zero repo\n"
        "// includes and links against nothing but the C++ standard library:\n"
        "//\n"
        "//   c++ -std=c++20 -O3 -flto this_file.cpp\n";
#if RCPN_OBS
    // Freestanding TUs never see the cmake-level PUBLIC definition (they link
    // nothing), so an emitter built with the probe layer stamps it: the
    // emitted simulator then records the same event stream as the other three
    // backends and its CLI accepts --trace-json/--profile.
    out += "#define RCPN_OBS 1  // probes compiled in (emitter built with RCPN_OBS=ON)\n";
#endif
    out +=
        "#include <cstdint>\n"
        "#include <memory>\n"
        "\n";
    std::vector<std::string> roots = {"gen/static_engine.hpp", "gen/generated.hpp"};
    for (const std::string& inc : net.emit_includes()) roots.push_back(inc);
    for (const std::string& inc : options.extra_roots) roots.push_back(inc);
    if (!options.machine_key.empty()) roots.push_back("machines/golden_trace.hpp");
    if (generic_main) roots.push_back("machines/generic_main.hpp");
    out += amalgamate_sources(roots);
  } else {
    out +=
        "#include <cstdint>\n"
        "#include <memory>\n"
        "\n"
        "#include \"core/engine.hpp\"\n"
        "#include \"gen/generated.hpp\"\n"
        "#include \"gen/static_engine.hpp\"\n";
    std::vector<std::string> seen;
    for (const std::string& inc : net.emit_includes()) {
      bool dup = false;
      for (const std::string& s : seen) dup = dup || s == inc;
      if (dup) continue;
      seen.push_back(inc);
      out += "#include \"" + inc + "\"\n";
    }
    if (!options.machine_key.empty())
      out += "#include \"machines/golden_runner.hpp\"\n";
    if (generic_main) out += "#include \"machines/generic_main.hpp\"\n";
  }

  out +=
      "\n"
      "namespace rcpn_gen {\n"
      "namespace {\n"
      "namespace " +
      ns +
      " {\n"
      "\n"
      "struct Traits {\n"
      "  using Machine = " +
      net.emit_machine_type() +
      ";\n"
      "  static constexpr const char* kModelName = \"" +
      net.name() + "\";\n\n"
      "  // schedule-affecting EngineOptions the tables were lowered under\n"
      "  // (core::options_bits; StaticEngine::build() verifies the key\n"
      "  // against the live options)\n";
  appendf(out, "  static constexpr std::uint32_t kOptionsKey = %uu;  // %s\n\n",
          opt_key, core::options_signature(eo).c_str());

  appendf(out, "  static constexpr unsigned kNumStages = %u;\n", cm.num_stages);
  appendf(out, "  static constexpr unsigned kNumPlaces = %u;\n", cm.num_places);
  appendf(out, "  static constexpr unsigned kNumTypes = %u;\n", cm.num_types);
  appendf(out, "  static constexpr unsigned kNumTransitions = %u;\n", cm.num_transitions);
  appendf(out, "  static constexpr unsigned kNumOrder = %zu;\n", cm.order.size());
  appendf(out, "  static constexpr unsigned kNumTwoList = %zu;\n",
          cm.two_list_stages.size());
  appendf(out, "  static constexpr unsigned kNumBody = %zu;\n", body.size());
  appendf(out, "  static constexpr unsigned kNumIndependent = %zu;\n\n",
          cm.independent.size());

  // Place tables.
  out += "  // place id -> owning stage / residence delay\n";
  out += "  static constexpr std::int16_t kPlaceStage[kNumPlaces] = {";
  for (unsigned p = 0; p < cm.num_places; ++p)
    appendf(out, "%s%d", p ? ", " : "", static_cast<int>(cm.place_stage[p]));
  out += "};\n";
  out += "  static constexpr std::uint32_t kPlaceDelay[kNumPlaces] = {";
  for (unsigned p = 0; p < cm.num_places; ++p)
    appendf(out, "%s%u", p ? ", " : "", cm.place_delay[p]);
  out += "};\n\n";

  // Token-pool sizing.
  out += "  // token pools: SoA slots reserved per stage; arena pre-allocation\n";
  out += "  static constexpr std::uint32_t kStageReserve[kNumStages] = {";
  for (unsigned s = 0; s < cm.num_stages; ++s)
    appendf(out, "%s%u", s ? ", " : "", cm.stage_reserve[s]);
  out += "};\n";
  appendf(out, "  static constexpr std::uint32_t kInstrPoolHint = %u;\n",
          cm.instr_pool_hint);
  appendf(out, "  static constexpr std::uint32_t kResPoolHint = %u;\n\n",
          cm.res_pool_hint);

  // Fig 8 process order (reverse topological; end places dropped).
  out += "  // Fig 8 processing order (reverse topological; end places dropped)\n";
  appendf(out, "  static constexpr std::int16_t kProcessOrder[%zu] = {",
          cm.order.empty() ? std::size_t{1} : cm.order.size());
  for (std::size_t i = 0; i < cm.order.size(); ++i)
    appendf(out, "%s%d /*%s*/", i ? ", " : "", static_cast<int>(cm.order[i]),
            net.place(cm.order[i]).name.c_str());
  out += cm.order.empty() ? "0};  // none\n" : "};\n";

  // Two-list set.
  out += "  // stages using the two-list (master/slave) algorithm\n";
  appendf(out, "  static constexpr std::int16_t kTwoListStages[%zu] = {",
          cm.two_list_stages.empty() ? std::size_t{1} : cm.two_list_stages.size());
  for (std::size_t i = 0; i < cm.two_list_stages.size(); ++i)
    appendf(out, "%s%d /*%s*/", i ? ", " : "", static_cast<int>(cm.two_list_stages[i]),
            net.stage(cm.two_list_stages[i]).name().c_str());
  out += cm.two_list_stages.empty() ? "0};  // none\n\n" : "};\n\n";

  // Fig 6 table.
  out += "  // Fig 6: (place, type) -> [begin, count) run in kBody\n";
  appendf(out, "  static constexpr rcpn::gen::StaticCandRange kCell[%zu] = {\n",
          cell.empty() ? std::size_t{1} : cell.size());
  if (cell.empty()) out += "      {0, 0},  // none\n";
  for (unsigned p = 0; p < cm.num_places; ++p) {
    out += "      ";
    for (unsigned ty = 0; ty < cm.num_types; ++ty) {
      const CandRange& r = cell[static_cast<std::size_t>(p) * cm.num_types + ty];
      appendf(out, "{%u, %u}, ", r.begin, r.count);
    }
    appendf(out, "// %s\n", net.place(static_cast<core::PlaceId>(p)).name.c_str());
  }
  out += "  };\n\n";

  // Transition tables.
  out +=
      "  // transition rows: {id, movePlace, delay, resIn begin, out begin,\n"
      "  //                   nResIn, nOut, maxFires, simple}\n";
  appendf(out, "  static constexpr rcpn::gen::StaticTx kBody[%zu] = {\n",
          body.empty() ? std::size_t{1} : body.size());
  if (body.empty()) out += "      {},  // none\n";
  for (const CompiledTransition& ct : body) emit_tx(out, ct, net);
  out += "  };\n";
  appendf(out, "  static constexpr rcpn::gen::StaticTx kIndependent[%zu] = {\n",
          cm.independent.empty() ? std::size_t{1} : cm.independent.size());
  if (cm.independent.empty()) out += "      {},  // none\n";
  for (const CompiledTransition& ct : cm.independent) emit_tx(out, ct, net);
  out += "  };\n\n";

  // Flat arc arrays.
  appendf(out, "  static constexpr std::int16_t kResIn[%zu] = {",
          cm.res_in.empty() ? std::size_t{1} : cm.res_in.size());
  if (cm.res_in.empty()) out += "0  /* none */";
  for (std::size_t i = 0; i < cm.res_in.size(); ++i)
    appendf(out, "%s%d", i ? ", " : "", static_cast<int>(cm.res_in[i]));
  out += "};\n";
  appendf(out, "  static constexpr rcpn::gen::StaticOutArc kOutArcs[%zu] = {",
          cm.out_arcs.empty() ? std::size_t{1} : cm.out_arcs.size());
  if (cm.out_arcs.empty()) out += "{0, false}  /* none */";
  for (std::size_t i = 0; i < cm.out_arcs.size(); ++i)
    appendf(out, "%s{%d, %s}", i ? ", " : "", static_cast<int>(cm.out_arcs[i].place),
            cm.out_arcs[i].reservation ? "true" : "false");
  out += "};\n\n";

  // Delegate bindings: the symbol each transition dispatches to, verified
  // against the live model at build() so a stale binary with rebound
  // delegates refuses to run (presence alone would miss a swapped symbol).
  out += "  // transition id -> bound delegate symbol (\"\" = none); verified live\n";
  out += "  static constexpr const char* kGuardSym[kNumTransitions] = {";
  for (unsigned t = 0; t < net.num_transitions(); ++t)
    appendf(out, "%s\"%s\"", t ? ", " : "",
            net.transition(static_cast<core::TransitionId>(t)).guard_symbol().c_str());
  out += "};\n";
  out += "  static constexpr const char* kActionSym[kNumTransitions] = {";
  for (unsigned t = 0; t < net.num_transitions(); ++t)
    appendf(out, "%s\"%s\"", t ? ", " : "",
            net.transition(static_cast<core::TransitionId>(t)).action_symbol().c_str());
  out += "};\n\n";

  // Delegate presence + the direct-call dispatch switches.
  out += "  // transition id -> delegate presence (gates the dispatch calls)\n";
  out += "  static constexpr bool kHasGuard[kNumTransitions] = {";
  for (unsigned t = 0; t < net.num_transitions(); ++t)
    appendf(out, "%s%s", t ? ", " : "",
            net.transition(static_cast<core::TransitionId>(t)).has_guard() ? "true"
                                                                           : "false");
  out += "};\n";
  out += "  static constexpr bool kHasAction[kNumTransitions] = {";
  for (unsigned t = 0; t < net.num_transitions(); ++t)
    appendf(out, "%s%s", t ? ", " : "",
            net.transition(static_cast<core::TransitionId>(t)).has_action() ? "true"
                                                                            : "false");
  out += "};\n\n";

  out += "  // direct calls to the model's named delegates (no void* env)\n";
  emit_dispatch(out, net, /*guards=*/true, dispatch_order);
  out += "\n";
  emit_dispatch(out, net, /*guards=*/false, dispatch_order);

  out +=
      "};\n"
      "\n"
      "std::unique_ptr<rcpn::core::Engine> make_engine(rcpn::core::Net& net,\n"
      "                                                rcpn::core::EngineOptions "
      "options) {\n"
      "  return std::make_unique<rcpn::gen::StaticEngine<Traits>>(net, options);\n"
      "}\n"
      "\n"
      "// Linking this TU into a binary makes Backend::generated resolve to the\n"
      "// engine above for this model, under exactly the stamped options.\n"
      "[[maybe_unused]] const bool kRegistered =\n"
      "    (rcpn::gen::register_generated_engine(\n"
      "         \"" +
      net.name() +
      "\",\n"
      "         Traits::kOptionsKey,\n"
      "         &make_engine),\n"
      "     true);\n"
      "\n"
      "}  // namespace " +
      ns +
      "\n"
      "}  // namespace\n"
      "}  // namespace rcpn_gen\n";

  if (!options.machine_key.empty()) {
    if (freestanding) {
      out +=
          "\n"
          "// Run the golden workload on the generated engine; with --golden FILE\n"
          "// diff the cycle-stamped retire trace and report the first divergence.\n"
          "// The base options reproduce the stamped emission variant.\n"
          "int main(int argc, char** argv) {\n"
          "  rcpn::core::EngineOptions base;\n";
      emit_base_option_lines(out, eo);
      out +=
          "  return rcpn::machines::golden_cli_main(\n"
          "      argc, argv, \"" +
          options.machine_key +
          "\",\n"
          "      [](rcpn::core::EngineOptions options) {\n"
          "        return " +
          options.run_expr +
          ";\n"
          "      },\n"
          "      base";
      if (!options.session_expr.empty()) {
        out +=
            ",\n"
            "      [](rcpn::core::EngineOptions options) {\n"
            "        return " +
            options.session_expr +
            ";\n"
            "      }";
      }
      out += ");\n}\n";
    } else {
      out +=
          "\n"
          "// Run the golden workload on the generated engine; with --golden FILE\n"
          "// diff the cycle-stamped retire trace and report the first divergence.\n"
          "int main(int argc, char** argv) {\n"
          "  return rcpn::machines::generated_main(argc, argv, \"" +
          options.machine_key + "\");\n}\n";
    }
  }

  if (generic_main) {
    const std::string mtype = net.emit_machine_type();
    const std::string workload =
        !options.generic_workload_expr.empty()
            ? options.generic_workload_expr
            : "[](" + mtype + "&, const std::vector<std::string>&) {}";
    const std::string done = !options.generic_done_expr.empty()
                                 ? options.generic_done_expr
                                 : "[](const " + mtype + "&) { return false; }";
    out +=
        "\n"
        "// Generic CLI main: --cycles N caps the run, positional arguments are\n"
        "// the workload; see machines/generic_main.hpp. The base options\n"
        "// reproduce the stamped emission variant.\n"
        "int main(int argc, char** argv) {\n"
        "  rcpn::core::EngineOptions base;\n";
    emit_base_option_lines(out, eo);
    out += "  return rcpn::machines::generic_cli_main<" + mtype +
           ">(\n"
           "      argc, argv, \"" +
           net.name() +
           "\",\n"
           "      " +
           options.generic_describe_expr +
           ",\n"
           "      " +
           workload +
           ",\n"
           "      " +
           done +
           ",\n"
           "      base);\n"
           "}\n";
  }
  return out;
}

}  // namespace rcpn::gen
