// Embedded runtime sources + the amalgamation pass behind freestanding
// simulator emission.
//
// The library's own sources (everything a generated simulator can need:
// core engine/token storage, the model layer, the gen:: engines, machines,
// ISA/memory/register-file support) are embedded verbatim into the binary at
// build time (cmake/EmbedSources.cmake generates gen_embed_data.cpp from the
// checked-in files — a single source of truth: the emitter re-emits the same
// text the library was compiled from, it never forks it).
//
// amalgamate_sources() resolves the quoted-include closure of a set of root
// headers over that table and renders one self-contained C++ block:
//  * `#include "..."` lines are resolved recursively and dropped — every
//    pulled header is inlined exactly once, in topological order;
//  * for every pulled header, the embedded .cpp files belonging to it (the
//    convention: a .cpp names its owning header in its first quoted include)
//    are appended after all headers, so the block also *links* standalone;
//  * `#include <...>` lines are hoisted to one sorted, deduplicated system
//    include block; `#pragma once` is dropped.
//
// The result is what gen::emit_simulator() places at the top of an
// EmitMode::freestanding translation unit: a trimmed, per-model subset of the
// runtime that compiles with zero repo includes and links against nothing
// but the C++ standard library.
#pragma once

#include <string>
#include <vector>

namespace rcpn::gen {

/// One embedded source file, keyed by its repo-relative path under src/.
struct EmbeddedFile {
  const char* path;
  const char* text;
};

/// The embedded table (defined in the build-generated gen_embed_data.cpp),
/// sorted by path.
extern const EmbeddedFile kEmbeddedFiles[];
extern const unsigned kNumEmbeddedFiles;

/// The embedded text of `path`, or nullptr when the file is not embedded.
const char* find_embedded_file(const std::string& path);

/// All embedded paths, in table (path-sorted) order.
std::vector<std::string> embedded_file_paths();

/// Amalgamate the quoted-include closure of `roots` (repo-relative header
/// paths) into one self-contained block. Deterministic: byte-identical output
/// for the same roots and the same embedded table. Throws std::runtime_error
/// naming the offender when a root or a transitively included file is not in
/// the embedded set.
std::string amalgamate_sources(const std::vector<std::string>& roots);

}  // namespace rcpn::gen
