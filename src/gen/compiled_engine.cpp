#include "gen/compiled_engine.hpp"

#include <cassert>

#include "core/soa_scan.hpp"

namespace rcpn::gen {

using core::FireCtx;
using core::InstructionToken;
using core::PipelineStage;
using core::PlaceId;
using core::StageId;
using core::Token;

void CompiledEngine::build() {
  core::Engine::build();
  cm_ = CompiledModel::lower(*this);
  // Apply the lowering's pool sizing: per-stage SoA slots and recycling
  // arenas, so the generated simulator's steady state never reallocates.
  for (unsigned s = 0; s < cm_.num_stages; ++s)
    net_.stage(static_cast<StageId>(s)).reserve_store(cm_.stage_reserve[s]);
  reserve_token_pools(cm_.instr_pool_hint, cm_.res_pool_hint);
  scratch_.reserve(cm_.instr_pool_hint);
  scratch_idx_.reserve(cm_.instr_pool_hint);
}

bool CompiledEngine::try_fire_compiled(const CompiledTransition& ct,
                                       InstructionToken* tok, PipelineStage& from,
                                       std::size_t hint) {
  count_attempt(ct.id);
  if (ct.simple) {
    // Latch-to-latch: shape and destination stage were resolved at lowering.
    PipelineStage& to = *ct.move_stage;
    if (&to != &from && !to.has_room(1, 0)) {
      reject_cause_ = core::StallCause::capacity_backpressure;
      return false;
    }
    FireCtx ctx{this, tok, ct.id};
    if (ct.guard != nullptr && !ct.guard(ct.guard_env, ctx)) {
      reject_cause_ = core::StallCause::guard_rejected;
      return false;
    }
    const bool removed = from.remove_at(hint, tok);
    assert(removed && "trigger token not visible in its place");
    (void)removed;
    tok->place = core::kNoPlace;
    tok->state = core::kNoPlace;
    if (ct.action != nullptr) ct.action(ct.action_env, ctx);
    enter_place_in(tok, ct.move_place, to, ct.delay);
    count_fire(ct.id);
    return true;
  }

  // General shape: mirror of Engine::try_fire over the flat arc arrays.
  Token* reservations[4];
  unsigned nres = 0;
  for (unsigned i = 0; i < ct.n_res_in; ++i) {
    Token* r = find_ready_reservation(cm_.res_in[ct.res_in_begin + i]);
    if (r == nullptr) {
      reject_cause_ = core::StallCause::no_ready_token;
      return false;
    }
    assert(nres < 4);
    reservations[nres++] = r;
  }

  StageDelta deltas[8];
  unsigned nd = 0;
  auto delta_for = [&](StageId s) -> StageDelta& {
    for (unsigned i = 0; i < nd; ++i)
      if (deltas[i].stage == s) return deltas[i];
    assert(nd < 8);
    deltas[nd].stage = s;
    deltas[nd].removals = 0;
    deltas[nd].additions = 0;
    return deltas[nd++];
  };
  delta_for(cm_.place_stage[static_cast<unsigned>(tok->place)]).removals += 1;
  for (unsigned i = 0; i < nres; ++i)
    delta_for(cm_.place_stage[static_cast<unsigned>(reservations[i]->place)]).removals += 1;
  for (unsigned i = 0; i < ct.n_out; ++i)
    delta_for(cm_.place_stage[static_cast<unsigned>(cm_.out_arcs[ct.out_begin + i].place)])
        .additions += 1;
  for (unsigned i = 0; i < nd; ++i) {
    const PipelineStage& st = net_.stage(deltas[i].stage);
    if (!st.has_room(static_cast<std::uint32_t>(deltas[i].additions),
                     static_cast<std::uint32_t>(deltas[i].removals))) {
      reject_cause_ = core::StallCause::capacity_backpressure;
      return false;
    }
  }

  FireCtx ctx{this, tok, ct.id};
  if (ct.guard != nullptr && !ct.guard(ct.guard_env, ctx)) {
    reject_cause_ = core::StallCause::guard_rejected;
    return false;
  }

  // ---- fire ----
  const bool removed = from.remove_at(hint, tok);
  assert(removed && "trigger token not visible in its place");
  (void)removed;
  tok->place = core::kNoPlace;
  tok->state = core::kNoPlace;
  for (unsigned i = 0; i < nres; ++i) {
    PipelineStage& rs = *place_stage_[static_cast<unsigned>(reservations[i]->place)];
    rs.remove(reservations[i]);
    recycle(reservations[i]);
  }

  if (ct.action != nullptr) ct.action(ct.action_env, ctx);

  for (unsigned i = 0; i < ct.n_out; ++i) {
    const CompiledOutArc& a = cm_.out_arcs[ct.out_begin + i];
    if (!a.reservation) {
      enter_place_in(tok, a.place, *a.stage, ct.delay);
    } else {
      Token* r = acquire_reservation();
      ++stats_.reservations;
      enter_place_in(r, a.place, *a.stage, ct.delay);
    }
  }

  count_fire(ct.id);
  return true;
}

void CompiledEngine::process_place_compiled(PlaceId p, PipelineStage& st) {
  // SoA filter scan over the stage's token pool: one packed-key compare and
  // one ready compare per slot, in age order — tokens are only dereferenced
  // once they pass (the interpreted engine walks the Token objects instead).
  const core::TokenStore& ts = st.store();
  const std::size_t n = ts.size();
  const core::TokenStore::Key want =
      core::TokenStore::key(p, core::TokenKind::instruction);
  const core::TokenStore::Key* keys = ts.keys();
  const core::Cycle* ready = ts.ready();
  // Snapshot: firing mutates the pool. Slot indices ride along so each
  // firing can hand remove_visible a same-index hint (snapshot position
  // minus the removals already performed this pass) instead of searching.
  scratch_.clear();
  scratch_idx_.clear();
  core::soa::for_each_match_ready(keys, ready, n, want, clock_, [&](std::size_t i) {
    scratch_.push_back(static_cast<InstructionToken*>(ts.at(i)));
    scratch_idx_.push_back(static_cast<std::uint32_t>(i));
  });
  if (scratch_.empty()) return;

  const CompiledTransition* body = cm_.body.data();
  std::size_t removed_here = 0;
  for (std::size_t k = 0; k < scratch_.size(); ++k) {
    InstructionToken* tok = scratch_[k];
    // Re-check: an earlier firing in this cycle may have consumed, flushed or
    // even recycled-and-reinjected this token.
    if (tok->place != p || tok->squashed || tok->ready > clock_) continue;
    // Same last-candidate-wins attribution as Engine::process_place.
    reject_cause_ = core::StallCause::no_ready_token;
    const std::size_t hint =
        scratch_idx_[k] >= removed_here ? scratch_idx_[k] - removed_here : 0;
    const CandRange r = cm_.cell[static_cast<std::size_t>(p) * cm_.num_types +
                                 static_cast<unsigned>(tok->type)];
    bool fired = false;
    for (std::uint32_t i = r.begin; i < r.begin + r.count; ++i) {
      if (try_fire_compiled(body[i], tok, st, hint)) {
        fired = true;
        ++removed_here;
        break;
      }
    }
    if (!fired) count_stall(p, tok);
  }
}

bool CompiledEngine::independent_enabled_compiled(const CompiledTransition& ct) {
  count_attempt(ct.id);
  for (unsigned i = 0; i < ct.n_res_in; ++i)
    if (find_ready_reservation(cm_.res_in[ct.res_in_begin + i]) == nullptr) return false;
  for (unsigned i = 0; i < ct.n_out; ++i)
    if (!place_has_room(cm_.out_arcs[ct.out_begin + i].place, 1)) return false;
  FireCtx ctx{this, nullptr, ct.id};
  if (ct.guard != nullptr && !ct.guard(ct.guard_env, ctx)) return false;
  return true;
}

void CompiledEngine::fire_independent_compiled(const CompiledTransition& ct) {
  for (unsigned i = 0; i < ct.n_res_in; ++i) {
    const PlaceId p = cm_.res_in[ct.res_in_begin + i];
    Token* r = find_ready_reservation(p);
    PipelineStage& rs = *place_stage_[static_cast<unsigned>(p)];
    rs.remove(r);
    recycle(r);
  }
  FireCtx ctx{this, nullptr, ct.id};
  if (ct.action != nullptr) ct.action(ct.action_env, ctx);
  for (unsigned i = 0; i < ct.n_out; ++i) {
    const CompiledOutArc& a = cm_.out_arcs[ct.out_begin + i];
    if (a.reservation) {
      Token* r = acquire_reservation();
      ++stats_.reservations;
      enter_place_in(r, a.place, *a.stage, ct.delay);
    }
    // Move targets declare capacity intent only; the action emits instruction
    // tokens itself via emit_instruction().
  }
  count_fire(ct.id);
}

bool CompiledEngine::step() {
  if (!built()) build();
  if (stopped()) return false;

  // Fig 8 over the compiled tables: promote, process in order, run the
  // independent sub-net, advance the clock. Stage objects were resolved at
  // lowering; the per-cycle loops never translate an id.
  for (PipelineStage* st : cm_.two_list_stage_ptrs) st->promote_incoming();

  const std::size_t np = cm_.order.size();
  for (std::size_t i = 0; i < np; ++i) {
    PipelineStage& st = *cm_.order_stage[i];
    // Hoisted empty check: most places are empty most cycles, and the pool
    // size is one load away.
    if (!st.store().empty()) process_place_compiled(cm_.order[i], st);
  }

  for (const CompiledTransition& ct : cm_.independent) {
    for (std::int32_t i = 0; i < ct.max_fires; ++i) {
      if (!independent_enabled_compiled(ct)) break;
      fire_independent_compiled(ct);
    }
  }

  return finish_cycle();
}

}  // namespace rcpn::gen
