#include "gen/generated.hpp"

#include <map>

namespace rcpn::gen {

namespace {
// Function-local static: emitted TUs register from static initializers, so
// the map must be constructed on first use, not in link order.
std::map<std::string, GeneratedFactory>& registry() {
  static std::map<std::string, GeneratedFactory> r;
  return r;
}
}  // namespace

void register_generated_engine(const std::string& model, GeneratedFactory factory) {
  registry()[model] = factory;
}

GeneratedFactory find_generated_engine(const std::string& model) {
  const auto& r = registry();
  const auto it = r.find(model);
  return it == r.end() ? nullptr : it->second;
}

std::vector<std::string> registered_generated_models() {
  std::vector<std::string> names;
  for (const auto& [name, _] : registry()) names.push_back(name);
  return names;
}

}  // namespace rcpn::gen
