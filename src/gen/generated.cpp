#include "gen/generated.hpp"

#include <map>

namespace rcpn::gen {

namespace {
// Function-local static: emitted TUs register from static initializers, so
// the map must be constructed on first use, not in link order.
std::map<std::pair<std::string, std::uint32_t>, GeneratedFactory>& registry() {
  static std::map<std::pair<std::string, std::uint32_t>, GeneratedFactory> r;
  return r;
}
}  // namespace

std::uint32_t generated_options_key(const core::EngineOptions& options) {
  return generated_options_key(options.two_list_state_refs,
                               options.force_two_list_all, options.linear_search,
                               options.quiescence_skip);
}

std::string generated_options_desc(std::uint32_t options_key) {
  std::string desc;
  const auto add = [&desc](const char* name) {
    if (!desc.empty()) desc += ",";
    desc += name;
  };
  if (options_key & 1u) add("two_list_state_refs");
  if (options_key & 2u) add("force_two_list_all");
  if (options_key & 4u) add("linear_search");
  if (options_key & 8u) add("quiescence_skip");
  return desc.empty() ? "(none)" : desc;
}

void register_generated_engine(const std::string& model, std::uint32_t options_key,
                               GeneratedFactory factory) {
  registry()[{model, options_key}] = factory;
}

GeneratedFactory find_generated_engine(const std::string& model,
                                       std::uint32_t options_key) {
  const auto& r = registry();
  const auto it = r.find({model, options_key});
  return it == r.end() ? nullptr : it->second;
}

GeneratedFactory find_generated_engine(const std::string& model,
                                       const core::EngineOptions& options) {
  return find_generated_engine(model, generated_options_key(options));
}

GeneratedFactory find_generated_engine(const std::string& model) {
  return find_generated_engine(model, generated_options_key(core::EngineOptions{}));
}

std::vector<std::string> registered_generated_models() {
  std::vector<std::string> names;
  for (const auto& [key, _] : registry())
    if (names.empty() || names.back() != key.first) names.push_back(key.first);
  return names;
}

}  // namespace rcpn::gen
