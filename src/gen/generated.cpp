#include "gen/generated.hpp"

#include <map>

#include "core/options_signature.hpp"

namespace rcpn::gen {

namespace {
// Function-local static: emitted TUs register from static initializers, so
// the map must be constructed on first use, not in link order.
std::map<std::pair<std::string, std::uint32_t>, GeneratedFactory>& registry() {
  static std::map<std::pair<std::string, std::uint32_t>, GeneratedFactory> r;
  return r;
}
}  // namespace

std::uint32_t generated_options_key(const core::EngineOptions& options) {
  return core::options_bits(options);
}

std::string generated_options_desc(std::uint32_t options_key) {
  return core::options_bits_desc(options_key);
}

void register_generated_engine(const std::string& model, std::uint32_t options_key,
                               GeneratedFactory factory) {
  registry()[{model, options_key}] = factory;
}

GeneratedFactory find_generated_engine(const std::string& model,
                                       std::uint32_t options_key) {
  const auto& r = registry();
  const auto it = r.find({model, options_key});
  return it == r.end() ? nullptr : it->second;
}

GeneratedFactory find_generated_engine(const std::string& model,
                                       const core::EngineOptions& options) {
  return find_generated_engine(model, generated_options_key(options));
}

GeneratedFactory find_generated_engine(const std::string& model) {
  return find_generated_engine(model, generated_options_key(core::EngineOptions{}));
}

std::vector<std::string> registered_generated_models() {
  std::vector<std::string> names;
  for (const auto& [key, _] : registry())
    if (names.empty() || names.back() != key.first) names.push_back(key.first);
  return names;
}

}  // namespace rcpn::gen
