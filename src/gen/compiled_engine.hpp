// CompiledEngine: the high-performance backend "generated" from a model.
//
// Derives from core::Engine and replaces only the hot loop: candidate lookup
// walks CompiledModel's contiguous Fig 6 runs instead of the net's
// pointer-linked Transition objects, guards and actions dispatch through the
// pre-bound raw delegates in the flat tables, and the latch-to-latch fast
// path is a precomputed flag with the destination stage already resolved.
// Everything that defines the *semantics* — token services, two-list
// promotion, retirement, flush, pools, stats, the deadlock watchdog — is the
// inherited Engine code operating on the same state, so the two backends are
// cycle-for-cycle equivalent by construction (tests/test_gen.cpp pins this
// on all five machine models).
//
// Actions keep calling FireCtx::engine services unchanged: a CompiledEngine
// IS-A core::Engine, so models never know which backend runs them.
//
// The `linear_search` ablation option is meaningless here (the compiled
// tables *are* the Fig 6 precomputation) and is ignored; the two-list options
// act at analysis time and are honored by both backends.
#pragma once

#include "core/engine.hpp"
#include "gen/compiled_model.hpp"

namespace rcpn::gen {

class CompiledEngine final : public core::Engine {
 public:
  explicit CompiledEngine(core::Net& net, core::EngineOptions options = {})
      : core::Engine(net, options) {}

  /// Run the shared static extraction, then flatten its products.
  void build() override;
  /// The Fig 8 main loop over the compiled tables.
  bool step() override;

  /// The lowered tables (introspection, emit_cpp, tests).
  const CompiledModel& compiled() const { return cm_; }

 private:
  void process_place_compiled(core::PlaceId p, core::PipelineStage& st);
  /// `hint` is the trigger token's expected slot index in `from`'s pool (the
  /// scan position minus the removals this cycle); validated, never trusted.
  bool try_fire_compiled(const CompiledTransition& ct, core::InstructionToken* tok,
                         core::PipelineStage& from, std::size_t hint);
  bool independent_enabled_compiled(const CompiledTransition& ct);
  void fire_independent_compiled(const CompiledTransition& ct);

  CompiledModel cm_;
  /// Snapshot slot indices parallel to Engine::scratch_ (removal hints).
  std::vector<std::uint32_t> scratch_idx_;
};

}  // namespace rcpn::gen
