// StaticEngine<Traits>: the engine of a *generated* simulator.
//
// A translation unit emitted by gen::emit_simulator() defines one Traits
// struct per model — the lowered CompiledModel tables as `static constexpr`
// data plus two static dispatch functions whose switch bodies call the
// model's named guard/action delegates *directly*, specialized against the
// typed machine context (no void* environment, no function-pointer
// indirection) — and instantiates this template over it. The instantiation
// happens in the emitted TU, so the compiler sees the whole hot loop, every
// table and every delegate body at once: the paper's "generated C++
// simulator" that whole-program/LTO optimization can specialize end to end.
//
// Semantics are inherited: StaticEngine derives core::Engine and replaces
// only the hot loop (exactly like gen::CompiledEngine, whose structure the
// loop below mirrors); token services, two-list promotion, retirement,
// flush, pools, stats and the watchdog are the shared Engine code, so all
// three backends stay cycle-for-cycle equivalent by construction.
//
// A generated artifact can go stale: the model description may change after
// the source was emitted. build() therefore *verifies* every table against
// the engine's own static extraction of the live net and refuses to run on
// any mismatch — CI regenerates on every push, so a stale artifact is a
// build failure, never a silently wrong simulation.
#pragma once

#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/soa_scan.hpp"
#include "gen/generated.hpp"

namespace rcpn::gen {

/// One transition row of a generated table (the POD subset of
/// CompiledTransition: delegates live in the Traits dispatch switches, stage
/// pointers are resolved at build() through Engine's place->stage cache).
struct StaticTx {
  std::int16_t id;
  /// Simple shape only: destination place of the single move arc (-1 else).
  std::int16_t move_place;
  std::uint32_t delay;
  std::uint32_t res_in_begin;
  std::uint32_t out_begin;
  std::uint16_t n_res_in;
  std::uint16_t n_out;
  std::int32_t max_fires;
  bool simple;
};

struct StaticOutArc {
  std::int16_t place;
  bool reservation;
};

struct StaticCandRange {
  std::uint32_t begin, count;
};

template <typename Traits>
class StaticEngine final : public core::Engine {
 public:
  using Machine = typename Traits::Machine;

  StaticEngine(core::Net& net, core::EngineOptions options)
      : core::Engine(net, options) {}

  /// Shared static extraction, then verify the generated tables against it
  /// (throws std::runtime_error on a stale artifact) and apply pool sizing.
  void build() override {
    core::Engine::build();
    verify_tables();
    for (unsigned s = 0; s < Traits::kNumStages; ++s)
      net_.stage(static_cast<core::StageId>(s)).reserve_store(Traits::kStageReserve[s]);
    reserve_token_pools(Traits::kInstrPoolHint, Traits::kResPoolHint);
    scratch_.reserve(Traits::kInstrPoolHint);
    scratch_idx_.reserve(Traits::kInstrPoolHint);
    order_stage_.clear();
    for (unsigned i = 0; i < Traits::kNumOrder; ++i)
      order_stage_.push_back(
          place_stage_[static_cast<unsigned>(Traits::kProcessOrder[i])]);
    two_list_ptrs_.clear();
    for (unsigned i = 0; i < Traits::kNumTwoList; ++i)
      two_list_ptrs_.push_back(
          &net_.stage(static_cast<core::StageId>(Traits::kTwoListStages[i])));
    m_ = &machine<Machine>();
  }

  /// The Fig 8 main loop over the constexpr tables.
  bool step() override {
    if (!built()) build();
    if (stopped()) return false;

    for (core::PipelineStage* st : two_list_ptrs_) st->promote_incoming();

    for (unsigned i = 0; i < Traits::kNumOrder; ++i) {
      core::PipelineStage& st = *order_stage_[i];
      if (!st.store().empty()) process_place_static(Traits::kProcessOrder[i], st);
    }

    for (unsigned i = 0; i < Traits::kNumIndependent; ++i) {
      const StaticTx& ct = Traits::kIndependent[i];
      for (std::int32_t f = 0; f < ct.max_fires; ++f) {
        if (!independent_enabled_static(ct)) break;
        fire_independent_static(ct);
      }
    }

    return finish_cycle();
  }

 private:
  bool run_guard(std::int16_t id, core::FireCtx& ctx) {
    // kHasGuard gates the dispatch so guardless transitions cost one constexpr
    // table load, mirroring the null check of the other backends.
    if (!Traits::kHasGuard[static_cast<unsigned>(id)]) return true;
    return Traits::guard(id, *m_, ctx);
  }
  void run_action(std::int16_t id, core::FireCtx& ctx) {
    if (Traits::kHasAction[static_cast<unsigned>(id)]) Traits::action(id, *m_, ctx);
  }

  bool try_fire_static(const StaticTx& ct, core::InstructionToken* tok,
                       core::PipelineStage& from, std::size_t hint) {
    count_attempt(ct.id);
    if (ct.simple) {
      // Latch-to-latch: shape and destination were resolved at emission.
      core::PipelineStage& to = *place_stage_[static_cast<unsigned>(ct.move_place)];
      if (&to != &from && !to.has_room(1, 0)) {
        reject_cause_ = core::StallCause::capacity_backpressure;
        return false;
      }
      core::FireCtx ctx{this, tok, ct.id};
      if (!run_guard(ct.id, ctx)) {
        reject_cause_ = core::StallCause::guard_rejected;
        return false;
      }
      const bool removed = from.remove_at(hint, tok);
      assert(removed && "trigger token not visible in its place");
      (void)removed;
      tok->place = core::kNoPlace;
      tok->state = core::kNoPlace;
      run_action(ct.id, ctx);
      enter_place_in(tok, ct.move_place, to, ct.delay);
      count_fire(ct.id);
      return true;
    }

    // General shape: mirror of Engine::try_fire over the constexpr arrays.
    core::Token* reservations[4];
    unsigned nres = 0;
    for (unsigned i = 0; i < ct.n_res_in; ++i) {
      core::Token* r = find_ready_reservation(Traits::kResIn[ct.res_in_begin + i]);
      if (r == nullptr) {
        reject_cause_ = core::StallCause::no_ready_token;
        return false;
      }
      assert(nres < 4);
      reservations[nres++] = r;
    }

    StageDelta deltas[8];
    unsigned nd = 0;
    auto delta_for = [&](core::StageId s) -> StageDelta& {
      for (unsigned i = 0; i < nd; ++i)
        if (deltas[i].stage == s) return deltas[i];
      assert(nd < 8);
      deltas[nd].stage = s;
      deltas[nd].removals = 0;
      deltas[nd].additions = 0;
      return deltas[nd++];
    };
    delta_for(Traits::kPlaceStage[static_cast<unsigned>(tok->place)]).removals += 1;
    for (unsigned i = 0; i < nres; ++i)
      delta_for(Traits::kPlaceStage[static_cast<unsigned>(reservations[i]->place)])
          .removals += 1;
    for (unsigned i = 0; i < ct.n_out; ++i)
      delta_for(Traits::kPlaceStage[static_cast<unsigned>(
                    Traits::kOutArcs[ct.out_begin + i].place)])
          .additions += 1;
    for (unsigned i = 0; i < nd; ++i) {
      const core::PipelineStage& st = net_.stage(deltas[i].stage);
      if (!st.has_room(static_cast<std::uint32_t>(deltas[i].additions),
                       static_cast<std::uint32_t>(deltas[i].removals))) {
        reject_cause_ = core::StallCause::capacity_backpressure;
        return false;
      }
    }

    core::FireCtx ctx{this, tok, ct.id};
    if (!run_guard(ct.id, ctx)) {
      reject_cause_ = core::StallCause::guard_rejected;
      return false;
    }

    // ---- fire ----
    const bool removed = from.remove_at(hint, tok);
    assert(removed && "trigger token not visible in its place");
    (void)removed;
    tok->place = core::kNoPlace;
    tok->state = core::kNoPlace;
    for (unsigned i = 0; i < nres; ++i) {
      core::PipelineStage& rs =
          *place_stage_[static_cast<unsigned>(reservations[i]->place)];
      rs.remove(reservations[i]);
      recycle(reservations[i]);
    }

    run_action(ct.id, ctx);

    for (unsigned i = 0; i < ct.n_out; ++i) {
      const StaticOutArc a = Traits::kOutArcs[ct.out_begin + i];
      core::PipelineStage& st = *place_stage_[static_cast<unsigned>(a.place)];
      if (!a.reservation) {
        enter_place_in(tok, a.place, st, ct.delay);
      } else {
        core::Token* r = acquire_reservation();
        ++stats_.reservations;
        enter_place_in(r, a.place, st, ct.delay);
      }
    }

    count_fire(ct.id);
    return true;
  }

  void process_place_static(core::PlaceId p, core::PipelineStage& st) {
    // SoA filter scan (see CompiledEngine): only the packed key and ready
    // arrays are touched until a slot passes; slot indices ride along as
    // same-index removal hints.
    const core::TokenStore& ts = st.store();
    const std::size_t n = ts.size();
    const core::TokenStore::Key want =
        core::TokenStore::key(p, core::TokenKind::instruction);
    const core::TokenStore::Key* keys = ts.keys();
    const core::Cycle* ready = ts.ready();
    scratch_.clear();
    scratch_idx_.clear();
    core::soa::for_each_match_ready(keys, ready, n, want, clock_, [&](std::size_t i) {
      scratch_.push_back(static_cast<core::InstructionToken*>(ts.at(i)));
      scratch_idx_.push_back(static_cast<std::uint32_t>(i));
    });
    if (scratch_.empty()) return;

    std::size_t removed_here = 0;
    for (std::size_t k = 0; k < scratch_.size(); ++k) {
      core::InstructionToken* tok = scratch_[k];
      // Re-check: an earlier firing in this cycle may have consumed, flushed
      // or even recycled-and-reinjected this token.
      if (tok->place != p || tok->squashed || tok->ready > clock_) continue;
      // Same last-candidate-wins attribution as Engine::process_place.
      reject_cause_ = core::StallCause::no_ready_token;
      const std::size_t hint =
          scratch_idx_[k] >= removed_here ? scratch_idx_[k] - removed_here : 0;
      const StaticCandRange r =
          Traits::kCell[static_cast<std::size_t>(p) * Traits::kNumTypes +
                        static_cast<unsigned>(tok->type)];
      bool fired = false;
      for (std::uint32_t i = r.begin; i < r.begin + r.count; ++i) {
        if (try_fire_static(Traits::kBody[i], tok, st, hint)) {
          fired = true;
          ++removed_here;
          break;
        }
      }
      if (!fired) count_stall(p, tok);
    }
  }

  bool independent_enabled_static(const StaticTx& ct) {
    count_attempt(ct.id);
    for (unsigned i = 0; i < ct.n_res_in; ++i)
      if (find_ready_reservation(Traits::kResIn[ct.res_in_begin + i]) == nullptr)
        return false;
    for (unsigned i = 0; i < ct.n_out; ++i)
      if (!place_has_room(Traits::kOutArcs[ct.out_begin + i].place, 1)) return false;
    core::FireCtx ctx{this, nullptr, ct.id};
    return run_guard(ct.id, ctx);
  }

  void fire_independent_static(const StaticTx& ct) {
    for (unsigned i = 0; i < ct.n_res_in; ++i) {
      const core::PlaceId p = Traits::kResIn[ct.res_in_begin + i];
      core::Token* r = find_ready_reservation(p);
      core::PipelineStage& rs = *place_stage_[static_cast<unsigned>(p)];
      rs.remove(r);
      recycle(r);
    }
    core::FireCtx ctx{this, nullptr, ct.id};
    run_action(ct.id, ctx);
    for (unsigned i = 0; i < ct.n_out; ++i) {
      const StaticOutArc a = Traits::kOutArcs[ct.out_begin + i];
      if (a.reservation) {
        core::Token* r = acquire_reservation();
        ++stats_.reservations;
        enter_place_in(r, a.place, *place_stage_[static_cast<unsigned>(a.place)],
                       ct.delay);
      }
      // Move targets declare capacity intent only; the action emits
      // instruction tokens itself via emit_instruction().
    }
    count_fire(ct.id);
  }

  // -- staleness verification -------------------------------------------------

  [[noreturn]] void stale(const std::string& what) const {
    throw std::runtime_error(
        std::string("generated simulator for model '") + Traits::kModelName +
        "' does not match the live model (" + what +
        ") — regenerate with gen::emit_simulator (or check EngineOptions: the "
        "tables were emitted under the options the model was generated with)");
  }

  void verify_tables() {
    // The schedule-affecting options first: a binary built for one ablation
    // variant must refuse to run under another *before* the table diffs
    // produce a confusing structural message (satisfying the contract that a
    // wrong-ablation artifact throws instead of silently diverging).
    const std::uint32_t stamped = Traits::kOptionsKey;
    const std::uint32_t live = generated_options_key(options_);
    if (stamped != live)
      stale("EngineOptions: tables were emitted for [" +
            generated_options_desc(stamped) + "] but the engine runs with [" +
            generated_options_desc(live) + "]");

    if (Traits::kNumStages != net_.num_stages()) stale("stage count");
    if (Traits::kNumPlaces != net_.num_places()) stale("place count");
    if (Traits::kNumTypes != net_.num_types()) stale("type count");
    if (Traits::kNumTransitions != net_.num_transitions()) stale("transition count");

    for (unsigned p = 0; p < Traits::kNumPlaces; ++p) {
      const core::Place& pl = net_.place(static_cast<core::PlaceId>(p));
      if (Traits::kPlaceStage[p] != pl.stage)
        stale("owning stage of place '" + pl.name + "'");
      if (Traits::kPlaceDelay[p] != pl.delay)
        stale("residence delay of place '" + pl.name + "'");
    }

    if (Traits::kNumOrder != process_order().size()) stale("process-order length");
    for (unsigned i = 0; i < Traits::kNumOrder; ++i)
      if (Traits::kProcessOrder[i] != process_order()[i]) stale("process order");

    unsigned n_two_list = 0;
    for (unsigned s = 0; s < Traits::kNumStages; ++s)
      if (net_.stage(static_cast<core::StageId>(s)).two_list()) ++n_two_list;
    if (Traits::kNumTwoList != n_two_list) stale("two-list stage set size");
    for (unsigned i = 0; i < Traits::kNumTwoList; ++i)
      if (!net_.stage(static_cast<core::StageId>(Traits::kTwoListStages[i])).two_list())
        stale("two-list stage set");

    for (unsigned t = 0; t < Traits::kNumTransitions; ++t) {
      const core::Transition& tr = net_.transition(static_cast<core::TransitionId>(t));
      if (Traits::kHasGuard[t] != tr.has_guard())
        stale("guard presence on transition '" + tr.name() + "'");
      if (Traits::kHasAction[t] != tr.has_action())
        stale("action presence on transition '" + tr.name() + "'");
      // The *binding*, not just presence: a model edit that swaps one named
      // delegate for another leaves every structural table identical, but
      // this binary's dispatch switch still calls the old function.
      if (tr.guard_symbol() != Traits::kGuardSym[t])
        stale("guard binding of '" + tr.name() + "' (emitted for '" +
              Traits::kGuardSym[t] + "', model now binds '" + tr.guard_symbol() + "')");
      if (tr.action_symbol() != Traits::kActionSym[t])
        stale("action binding of '" + tr.name() + "' (emitted for '" +
              Traits::kActionSym[t] + "', model now binds '" + tr.action_symbol() +
              "')");
    }

    // Fig 6 cells: the candidate id sequence of every (place, type) pair.
    for (unsigned p = 0; p < Traits::kNumPlaces; ++p) {
      for (unsigned ty = 0; ty < Traits::kNumTypes; ++ty) {
        const auto& cands = candidates(static_cast<core::PlaceId>(p),
                                       static_cast<core::TypeId>(ty));
        const StaticCandRange r =
            Traits::kCell[static_cast<std::size_t>(p) * Traits::kNumTypes + ty];
        if (r.count != cands.size()) stale("candidate count of a (place, type) cell");
        for (unsigned i = 0; i < r.count; ++i)
          if (Traits::kBody[r.begin + i].id != cands[i]->id())
            stale("candidate order of a (place, type) cell");
      }
    }
    for (unsigned i = 0; i < Traits::kNumBody; ++i)
      verify_tx(Traits::kBody[i], /*independent=*/false);

    if (Traits::kNumIndependent != net_.independent_transitions().size())
      stale("independent-transition count");
    for (unsigned i = 0; i < Traits::kNumIndependent; ++i) {
      if (Traits::kIndependent[i].id != net_.independent_transitions()[i])
        stale("independent-transition order");
      verify_tx(Traits::kIndependent[i], /*independent=*/true);
    }
  }

  void verify_tx(const StaticTx& ct, bool independent) {
    const core::Transition& tr = net_.transition(ct.id);
    const std::string& name = tr.name();
    if (tr.independent() != independent) stale("sub-net kind of '" + name + "'");
    if (ct.delay != tr.delay()) stale("delay of '" + name + "'");
    if (ct.max_fires != tr.max_fires_per_cycle()) stale("max_fires of '" + name + "'");
    unsigned nres = 0;
    for (const core::InArc& a : tr.inputs()) {
      if (a.need != core::ArcNeed::reservation) continue;
      if (nres >= ct.n_res_in || Traits::kResIn[ct.res_in_begin + nres] != a.place)
        stale("reservation inputs of '" + name + "'");
      ++nres;
    }
    if (nres != ct.n_res_in) stale("reservation-input count of '" + name + "'");
    if (ct.n_out != tr.outputs().size()) stale("output-arc count of '" + name + "'");
    for (unsigned i = 0; i < ct.n_out; ++i) {
      const StaticOutArc a = Traits::kOutArcs[ct.out_begin + i];
      if (a.place != tr.outputs()[i].place ||
          a.reservation != (tr.outputs()[i].emit == core::ArcEmit::reservation))
        stale("output arcs of '" + name + "'");
    }
    const bool simple = !tr.independent() && tr.inputs().size() == 1 &&
                        tr.outputs().size() == 1 &&
                        tr.outputs()[0].emit == core::ArcEmit::move;
    if (ct.simple != simple) stale("fast-path shape of '" + name + "'");
    if (simple && ct.move_place != tr.outputs()[0].place)
      stale("move destination of '" + name + "'");
  }

  Machine* m_ = nullptr;
  /// Pre-resolved stage of each kProcessOrder entry / two-list stage.
  std::vector<core::PipelineStage*> order_stage_;
  std::vector<core::PipelineStage*> two_list_ptrs_;
  /// Snapshot token pointers + slot indices (removal hints), reused per place.
  std::vector<std::uint32_t> scratch_idx_;
};

}  // namespace rcpn::gen
