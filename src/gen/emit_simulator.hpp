// emit_simulator: print a *complete, standalone* generated C++ simulator for
// a lowered model — the paper's headline artifact made literal.
//
// Where emit_cpp() documents the static schedule as a table dump, this
// emitter produces a compilable translation unit:
//
//  * the CompiledModel tables as `static constexpr` data inside a Traits
//    struct (candidate runs, arc arrays, process order, stage reserves,
//    pool hints), stamped with the schedule-affecting EngineOptions they
//    were lowered under (the StaticEngine refuses to run under different
//    ones — an artifact built for one ablation variant cannot silently
//    diverge under another);
//  * guard/action dispatch as two switch functions whose cases call the
//    model's *named* delegates directly, specialized against the typed
//    machine context — no void* environments, no function pointers;
//  * a gen::StaticEngine<Traits> instantiation (the whole hot loop visible
//    to the compiler in one TU — eligible for whole-program/LTO
//    optimization);
//  * a static registrar so Backend::generated resolves to this engine (keyed
//    by model name + options) when the TU is linked in, and optionally a
//    main() that runs the machine's golden workload and diffs the retire
//    trace (the CI gate).
//
// Two emission modes:
//  * EmitMode::linked (default) — the TU #includes the library headers and
//    links against librcpn for the Engine/TokenStore services;
//  * EmitMode::freestanding — the needed subset of the runtime (token
//    storage, engine, model layer, the machine and its golden runner) is
//    *inlined* into the TU from the embedded library sources
//    (gen::amalgamate_sources), so the artifact compiles with zero repo
//    includes and links against nothing but the C++ standard library:
//
//      rcpn_emit fig2 --freestanding > fs.cpp && c++ -std=c++20 -O3 fs.cpp
//
// Requirements on the model: every guard/action registered through
// ModelBuilder's guard_named/action_named (anonymous closures cannot be
// emitted — emit_simulator throws listing the offenders), plus
// emit_machine_type()/emit_include() so the generated TU can name the
// context type and include (or, freestanding, inline) its declarations.
// Emission is deterministic: byte-identical output for the same model
// (tests/test_emit.cpp pins this).
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/net.hpp"
#include "gen/compiled_model.hpp"

namespace rcpn::gen {

enum class EmitMode : std::uint8_t {
  /// Emit a TU that #includes the library headers and links against it.
  linked,
  /// Inline the runtime subset; the TU compiles with zero repo includes.
  freestanding,
};

struct EmitSimOptions {
  /// Emit a main() that runs this golden-runner machine key (see
  /// machines/golden_runner.hpp) and prints/diffs the retire trace. Empty:
  /// emit only the engine + registrar (for linking into another binary).
  std::string machine_key;

  EmitMode mode = EmitMode::linked;

  /// The EngineOptions the model was built and lowered with. The
  /// schedule-affecting flags are stamped into the Traits (verified live at
  /// build()), key the registrar, and seed the emitted main()'s base
  /// options, so ablation-variant artifacts can be emitted per options.
  core::EngineOptions engine_options;

  /// Freestanding main() only: C++ expression (an `options` variable of type
  /// core::EngineOptions is in scope) producing the machine's
  /// machines::GoldenRunResult, e.g.
  /// "rcpn::machines::golden_run_fig2(options)" (golden_run_expr()).
  std::string run_expr;

  /// Freestanding main() only, optional: C++ expression (same `options`
  /// variable in scope) constructing the machine's checkpointable
  /// machines::GoldenSession, e.g.
  /// "rcpn::machines::golden_session_fig2(options)" (golden_session_expr()).
  /// When set, the emitted binary supports --checkpoint-*/--restore.
  std::string session_expr;

  /// Freestanding only: extra amalgamation root headers beyond the net's
  /// emit_include()s — typically the header declaring run_expr's runner
  /// (golden_run_header()).
  std::vector<std::string> extra_roots;

  /// Generic main() (machines/generic_main.hpp) for models *without* a
  /// golden-runner key — mutually exclusive with machine_key. A C++ lambda
  /// expression of type void(model::ModelBuilder<M>&, M&) re-creating the
  /// model description, e.g.
  ///   "[](rcpn::model::ModelBuilder<rcpn::machines::FuzzMachine>& b,
  ///       rcpn::machines::FuzzMachine& m) {
  ///      rcpn::machines::describe_fuzz_model(7u, b, m); }"
  /// The emitted main() supports --cycles N and workload-from-argv, so the
  /// artifact is farm-runnable. Works in both emission modes.
  std::string generic_describe_expr;

  /// Optional with generic_describe_expr: a lambda expression of type
  /// void(M&, const std::vector<std::string>&) applying the positional CLI
  /// arguments to the machine before the run (default: ignore them).
  std::string generic_workload_expr;

  /// Optional with generic_describe_expr: a lambda expression of type
  /// bool(const M&) — the completion predicate (default: run to the
  /// --cycles cap).
  std::string generic_done_expr;

  /// Profile-guided emission ordering: per-transition firing counts from a
  /// profiling run of the same model (core::Stats::transition_fires — the
  /// always-on mirror of obs::StageProfile::fires). When sized to the
  /// model's transition count, the emitter lays out the kBody candidate runs
  /// hottest-cell-first (better locality for the runs the hot loop actually
  /// walks) and orders the dispatch switch cases by firing frequency. The
  /// candidate *priority* order within each cell and the independent-subnet
  /// order are preserved, so the simulation is bit-identical — only memory
  /// layout and case order change, and StaticEngine::verify_tables() accepts
  /// the permuted layout through the kCell indirection. Empty (default):
  /// keep the lowering order.
  std::vector<std::uint64_t> profile_fires;
};

/// Render the standalone simulator source. Throws std::runtime_error if the
/// model is not emittable (anonymous delegates, missing machine type, or —
/// freestanding — includes outside the embedded source set).
std::string emit_simulator(const CompiledModel& cm, const core::Net& net,
                           const EmitSimOptions& options = {});

}  // namespace rcpn::gen
