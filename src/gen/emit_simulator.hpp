// emit_simulator: print a *complete, standalone* generated C++ simulator for
// a lowered model — the paper's headline artifact made literal.
//
// Where emit_cpp() documents the static schedule as a table dump, this
// emitter produces a compilable translation unit:
//
//  * the CompiledModel tables as `static constexpr` data inside a Traits
//    struct (candidate runs, arc arrays, process order, stage reserves,
//    pool hints);
//  * guard/action dispatch as two switch functions whose cases call the
//    model's *named* delegates directly, specialized against the typed
//    machine context — no void* environments, no function pointers;
//  * a gen::StaticEngine<Traits> instantiation (the whole hot loop visible
//    to the compiler in one TU — eligible for whole-program/LTO
//    optimization);
//  * a static registrar so Backend::generated resolves to this engine when
//    the TU is linked in, and optionally a main() that runs the machine's
//    golden workload and diffs the retire trace (the CI gate).
//
// Requirements on the model: every guard/action registered through
// ModelBuilder's guard_named/action_named (anonymous closures cannot be
// emitted — emit_simulator throws listing the offenders), plus
// emit_machine_type()/emit_include() so the generated TU can name the
// context type and include its declarations. Emission is deterministic:
// byte-identical output for the same model (tests/test_emit.cpp pins this).
#pragma once

#include <string>

#include "core/net.hpp"
#include "gen/compiled_model.hpp"

namespace rcpn::gen {

struct EmitSimOptions {
  /// Emit a main() that runs this golden-runner machine key (see
  /// machines/golden_runner.hpp) and prints/diffs the retire trace. Empty:
  /// emit only the engine + registrar (for linking into another binary).
  std::string machine_key;
};

/// Render the standalone simulator source. Throws std::runtime_error if the
/// model is not emittable (anonymous delegates, missing machine type).
std::string emit_simulator(const CompiledModel& cm, const core::Net& net,
                           const EmitSimOptions& options = {});

}  // namespace rcpn::gen
