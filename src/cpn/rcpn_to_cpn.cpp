#include "cpn/rcpn_to_cpn.hpp"

#include "model/model_builder.hpp"

namespace rcpn::cpn {

using core::ArcEmit;
using core::ArcNeed;
using core::InArc;
using core::OutArc;
using core::PlaceId;
using core::StageId;
using core::Transition;
using core::TypeId;

namespace {
ColorId color_of(TypeId type) { return static_cast<ColorId>(type) + 1; }
}  // namespace

ConversionResult convert(const core::Net& rcpn, const ConversionOptions& opt) {
  // Colors: black + one per instruction type.
  ConversionResult out{CpnNet(rcpn.name() + ".cpn", rcpn.num_types() + 1), {}, {}};
  CpnNet& net = out.net;

  out.place_map.assign(rcpn.num_places(), -1);
  out.free_place_map.assign(rcpn.num_stages(), -1);

  for (unsigned p = 0; p < rcpn.num_places(); ++p) {
    if (rcpn.stage_of(static_cast<PlaceId>(p)).is_end()) continue;  // dropped
    out.place_map[p] = net.add_place(rcpn.place(static_cast<PlaceId>(p)).name);
  }
  for (unsigned s = 0; s < rcpn.num_stages(); ++s) {
    const core::PipelineStage& st = rcpn.stage(static_cast<StageId>(s));
    if (st.is_end()) continue;
    out.free_place_map[s] = net.add_place("free(" + st.name() + ")");
  }

  // Initial marking: every stage starts empty, so its resource place holds
  // `capacity` black tokens (Fig 2b's tokens in L1/L2).
  Marking m0 = net.empty_marking();
  for (unsigned s = 0; s < rcpn.num_stages(); ++s) {
    if (out.free_place_map[s] < 0) continue;
    m0.add(out.free_place_map[s], kBlack,
           rcpn.stage(static_cast<StageId>(s)).capacity());
  }
  net.set_initial_marking(std::move(m0));

  auto stage_of_place = [&](PlaceId p) {
    return rcpn.place(p).stage;
  };

  // Emit one CPN transition per (RCPN transition [, type for independents]).
  auto convert_transition = [&](const Transition& t, TypeId emit_type) {
    CpnTransition& ct = net.add_transition(
        t.independent() ? t.name() + "#" + rcpn.type_name(emit_type) : t.name());

    // Capacity accounting: +1 free slot per vacated input place, -1 per
    // occupied output place, netted per stage. Netting matters: a transition
    // that both vacates and refills a stage (the branch reservation into its
    // own L1, Fig 5) must not demand a spare slot it is about to create —
    // RCPN's enabling rule counts removals, and the complementary-place
    // construction mirrors that by cancelling self-loops.
    std::vector<int> free_delta(rcpn.num_stages(), 0);

    for (const InArc& a : t.inputs()) {
      const ColorId color =
          a.need == ArcNeed::trigger ? color_of(t.subnet()) : kBlack;
      ct.in.push_back(CpnArc{out.place_map[static_cast<unsigned>(a.place)], color, 1});
      ++free_delta[static_cast<unsigned>(stage_of_place(a.place))];
    }
    for (const OutArc& a : t.outputs()) {
      const StageId s = stage_of_place(a.place);
      if (rcpn.stage(s).is_end()) continue;  // retirement: token dropped
      const ColorId color = a.emit == ArcEmit::move
                                ? (t.independent() ? color_of(emit_type)
                                                   : color_of(t.subnet()))
                                : kBlack;
      ct.out.push_back(CpnArc{out.place_map[static_cast<unsigned>(a.place)], color, 1});
      --free_delta[static_cast<unsigned>(s)];
    }
    for (unsigned s = 0; s < rcpn.num_stages(); ++s) {
      const int fp = out.free_place_map[s];
      if (fp < 0 || free_delta[s] == 0) continue;
      if (free_delta[s] > 0)
        ct.out.push_back(CpnArc{fp, kBlack, static_cast<unsigned>(free_delta[s])});
      else
        ct.in.push_back(CpnArc{fp, kBlack, static_cast<unsigned>(-free_delta[s])});
    }
  };

  for (unsigned ti = 0; ti < rcpn.num_transitions(); ++ti) {
    const Transition& t = rcpn.transition(static_cast<core::TransitionId>(ti));
    if (!t.independent()) {
      convert_transition(t, t.subnet());
      continue;
    }
    // Token generators become a free-choice conflict over the emitted types.
    if (opt.independent_emits.empty()) {
      for (unsigned ty = 0; ty < rcpn.num_types(); ++ty)
        convert_transition(t, static_cast<TypeId>(ty));
    } else {
      for (TypeId ty : opt.independent_emits) convert_transition(t, ty);
    }
  }

  return out;
}

ConversionResult convert(const model::ModelBuilderBase& model,
                         const ConversionOptions& opt) {
  if (model.built()) return convert(model.net(), opt);
  const core::Net structural = model.structural_net();
  return convert(structural, opt);
}

}  // namespace rcpn::cpn
