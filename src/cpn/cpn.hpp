// Standard Colored Petri Net (untimed, analysis-level).
//
// RCPN redefines CPN concepts to stay simple and fast; the paper's claim is
// that an RCPN "can be converted to standard CPN and use all the tools and
// algorithms that are available for CPN". This module provides that other
// side: a classical CPN with token multisets and the back-edge capacity
// loops RCPN eliminates (Fig 2b), plus reachability-based analyses.
//
// Colors are small integers: color 0 is the uncolored/black token
// (reservation and capacity tokens); colors 1..n map to RCPN instruction
// types (type t -> color t+1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rcpn::cpn {

using ColorId = int;
constexpr ColorId kBlack = 0;

struct CpnArc {
  int place = -1;
  ColorId color = kBlack;
  unsigned count = 1;
};

struct CpnTransition {
  std::string name;
  std::vector<CpnArc> in;
  std::vector<CpnArc> out;
};

/// A marking: tokens-per-(place, color).
class Marking {
 public:
  Marking() = default;
  Marking(unsigned num_places, unsigned num_colors)
      : num_colors_(num_colors), counts_(num_places * num_colors, 0) {}

  unsigned operator()(int place, ColorId color) const {
    return counts_[static_cast<unsigned>(place) * num_colors_ +
                   static_cast<unsigned>(color)];
  }
  void add(int place, ColorId color, unsigned n) {
    counts_[static_cast<unsigned>(place) * num_colors_ +
            static_cast<unsigned>(color)] += n;
  }
  void remove(int place, ColorId color, unsigned n) {
    counts_[static_cast<unsigned>(place) * num_colors_ +
            static_cast<unsigned>(color)] -= n;
  }
  unsigned place_total(int place) const {
    unsigned total = 0;
    for (unsigned c = 0; c < num_colors_; ++c)
      total += counts_[static_cast<unsigned>(place) * num_colors_ + c];
    return total;
  }
  /// Component-wise addition (two-list merge in the naive engine).
  void merge(const Marking& other) {
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  }
  void clear() { counts_.assign(counts_.size(), 0); }

  /// Canonical key for reachability hashing.
  std::string key() const {
    return std::string(reinterpret_cast<const char*>(counts_.data()),
                       counts_.size() * sizeof(std::uint16_t));
  }
  bool operator==(const Marking& other) const { return counts_ == other.counts_; }

 private:
  unsigned num_colors_ = 0;
  std::vector<std::uint16_t> counts_;
};

class CpnNet {
 public:
  explicit CpnNet(std::string name, unsigned num_colors = 1)
      : name_(std::move(name)), num_colors_(num_colors) {}

  const std::string& name() const { return name_; }
  unsigned num_colors() const { return num_colors_; }

  int add_place(const std::string& name) {
    places_.push_back(name);
    return static_cast<int>(places_.size() - 1);
  }
  CpnTransition& add_transition(const std::string& name) {
    transitions_.push_back(CpnTransition{name, {}, {}});
    return transitions_.back();
  }

  unsigned num_places() const { return static_cast<unsigned>(places_.size()); }
  unsigned num_transitions() const {
    return static_cast<unsigned>(transitions_.size());
  }
  const std::string& place_name(int p) const {
    return places_[static_cast<unsigned>(p)];
  }
  int find_place(const std::string& name) const {
    for (unsigned i = 0; i < places_.size(); ++i)
      if (places_[i] == name) return static_cast<int>(i);
    return -1;
  }
  const CpnTransition& transition(unsigned t) const { return transitions_[t]; }

  Marking empty_marking() const { return Marking(num_places(), num_colors_); }
  Marking& initial_marking() { return initial_; }
  const Marking& initial_marking() const { return initial_; }
  void set_initial_marking(Marking m) { initial_ = std::move(m); }

  /// Classical CPN enabling: every input arc satisfiable in `m`.
  bool enabled(unsigned t, const Marking& m) const;
  /// Fire (must be enabled): consume inputs, produce outputs.
  void fire(unsigned t, Marking& m) const;

  /// Structural statistics (arcs include both directions).
  unsigned num_arcs() const;

 private:
  std::string name_;
  unsigned num_colors_;
  std::vector<std::string> places_;
  std::vector<CpnTransition> transitions_;
  Marking initial_;
};

}  // namespace rcpn::cpn
