// Naive CPN simulation engine: the expensive baseline the paper's §4
// optimizations are measured against. Every step performs a *global search*
// over all transitions for an enabled binding (no per-(place,type) candidate
// lists) and all places use two token storages (the "two-list algorithm"
// everywhere), since in CPN every resource-sharing loop is a circular
// structure that forbids the reverse-topological trick.
#pragma once

#include <cstdint>

#include "cpn/cpn.hpp"

namespace rcpn::cpn {

class NaiveEngine {
 public:
  explicit NaiveEngine(const CpnNet& net)
      : net_(net), current_(net.initial_marking()), written_(net.empty_marking()) {}

  /// One synchronous cycle: repeatedly scan all transitions against the
  /// read-list marking, firing each enabled transition once per sweep, until
  /// a sweep fires nothing; then merge the write-list (master/slave copy).
  /// Returns the number of firings this cycle.
  unsigned step();

  std::uint64_t cycles() const { return cycles_; }
  std::uint64_t firings() const { return firings_; }
  /// Enabled-transition search visits (the cost Fig 6 removes).
  std::uint64_t search_visits() const { return search_visits_; }
  const Marking& marking() const { return current_; }

  void reset() {
    current_ = net_.initial_marking();
    written_ = net_.empty_marking();
    cycles_ = firings_ = search_visits_ = 0;
  }

 private:
  const CpnNet& net_;
  Marking current_;   // read list
  Marking written_;   // write list (merged at end of cycle)
  std::uint64_t cycles_ = 0;
  std::uint64_t firings_ = 0;
  std::uint64_t search_visits_ = 0;
};

}  // namespace rcpn::cpn
