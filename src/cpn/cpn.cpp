#include "cpn/cpn.hpp"

namespace rcpn::cpn {

bool CpnNet::enabled(unsigned t, const Marking& m) const {
  for (const CpnArc& a : transitions_[t].in)
    if (m(a.place, a.color) < a.count) return false;
  return true;
}

void CpnNet::fire(unsigned t, Marking& m) const {
  for (const CpnArc& a : transitions_[t].in) m.remove(a.place, a.color, a.count);
  for (const CpnArc& a : transitions_[t].out) m.add(a.place, a.color, a.count);
}

unsigned CpnNet::num_arcs() const {
  unsigned n = 0;
  for (const CpnTransition& t : transitions_)
    n += static_cast<unsigned>(t.in.size() + t.out.size());
  return n;
}

}  // namespace rcpn::cpn
