// RCPN -> standard CPN conversion (paper §3 / Fig 2).
//
// The reduction RCPN performs on CPN is undone explicitly:
//  * every finite-capacity pipeline stage becomes a complementary resource
//    place `free(stage)` initially holding `capacity` black tokens;
//  * every transition additionally consumes one `free` token per output
//    stage and returns one per input stage — the back-edge circular loops of
//    Fig 2(b) that RCPN replaces with the output-capacity enabling rule;
//  * instruction types become token colors (type t -> color t+1; black = 0);
//  * reservation arcs become black-token arcs on the same places;
//  * instruction-independent transitions (fetch) become one CPN transition
//    per instruction type they can generate (a free-choice conflict);
//  * guards, delays and actions are abstracted away: the CPN is an untimed
//    over-approximation, sound for boundedness/safety analysis;
//  * arcs into the virtual end stage drop their token (retirement), keeping
//    the net bounded.
#pragma once

#include "core/net.hpp"
#include "cpn/cpn.hpp"

namespace rcpn::model {
class ModelBuilderBase;
}

namespace rcpn::cpn {

struct ConversionOptions {
  /// Types each independent transition can emit; empty = all types.
  std::vector<core::TypeId> independent_emits;
};

struct ConversionResult {
  CpnNet net;
  /// RCPN place id -> CPN place id.
  std::vector<int> place_map;
  /// RCPN stage id -> CPN resource place id (-1 for the end stage).
  std::vector<int> free_place_map;
};

ConversionResult convert(const core::Net& rcpn, const ConversionOptions& opt = {});

/// Convert a declarative model description, preserving the declared stage and
/// place names in the converted CPN (free places are named after the declared
/// stages). Uses the built net when the model was built; otherwise lowers the
/// structure on the fly via ModelBuilderBase::structural_net(), so a typed
/// model can be analyzed without ever constructing its machine context.
/// Throws model::ModelError on an invalid description.
ConversionResult convert(const model::ModelBuilderBase& model,
                         const ConversionOptions& opt = {});

}  // namespace rcpn::cpn
