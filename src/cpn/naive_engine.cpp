#include "cpn/naive_engine.hpp"

namespace rcpn::cpn {

unsigned NaiveEngine::step() {
  unsigned fired_this_cycle = 0;
  // Global search sweeps: every sweep re-examines every transition (there is
  // no sorted per-place candidate table in a generic CPN simulator).
  for (;;) {
    unsigned fired_this_sweep = 0;
    for (unsigned t = 0; t < net_.num_transitions(); ++t) {
      ++search_visits_;
      if (!net_.enabled(t, current_)) continue;
      // Consume from the read list, produce into the write list.
      for (const CpnArc& a : net_.transition(t).in)
        current_.remove(a.place, a.color, a.count);
      for (const CpnArc& a : net_.transition(t).out)
        written_.add(a.place, a.color, a.count);
      ++fired_this_sweep;
      ++firings_;
    }
    fired_this_cycle += fired_this_sweep;
    if (fired_this_sweep == 0) break;
  }
  // Master/slave copy: tokens written this cycle become readable.
  current_.merge(written_);
  written_.clear();
  ++cycles_;
  return fired_this_cycle;
}

}  // namespace rcpn::cpn
