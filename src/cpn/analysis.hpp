// Reachability-based CPN analyses — the "rich varieties of analysis [and]
// verification techniques" the paper gains by converting RCPN models to
// standard CPN: boundedness per place, deadlock detection and transition
// quasi-liveness over the explicit reachability graph.
#pragma once

#include <cstdint>
#include <vector>

#include "cpn/cpn.hpp"

namespace rcpn::cpn {

struct AnalysisOptions {
  std::size_t max_states = 100'000;
};

struct AnalysisResult {
  /// Number of distinct reachable markings explored.
  std::size_t states = 0;
  /// True if exploration stopped at max_states (results are then partial).
  bool truncated = false;
  /// Max tokens observed per place (the k of k-boundedness).
  std::vector<unsigned> place_bound;
  /// Transitions that fired at least once (quasi-live).
  std::vector<bool> fireable;
  /// Reachable markings with no enabled transition.
  std::size_t deadlocks = 0;

  bool bounded(unsigned k) const {
    for (unsigned b : place_bound)
      if (b > k) return false;
    return true;
  }
  bool all_fireable() const {
    for (bool f : fireable)
      if (!f) return false;
    return true;
  }
};

/// Breadth-first exploration of the reachability graph from the initial
/// marking.
AnalysisResult analyze(const CpnNet& net, const AnalysisOptions& opt = {});

}  // namespace rcpn::cpn
