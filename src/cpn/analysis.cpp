#include "cpn/analysis.hpp"

#include <deque>
#include <unordered_set>

namespace rcpn::cpn {

AnalysisResult analyze(const CpnNet& net, const AnalysisOptions& opt) {
  AnalysisResult res;
  res.place_bound.assign(net.num_places(), 0);
  res.fireable.assign(net.num_transitions(), false);

  std::unordered_set<std::string> seen;
  std::deque<Marking> frontier;
  frontier.push_back(net.initial_marking());
  seen.insert(net.initial_marking().key());

  auto note_bounds = [&](const Marking& m) {
    for (unsigned p = 0; p < net.num_places(); ++p) {
      const unsigned total = m.place_total(static_cast<int>(p));
      if (total > res.place_bound[p]) res.place_bound[p] = total;
    }
  };
  note_bounds(net.initial_marking());

  while (!frontier.empty()) {
    if (seen.size() >= opt.max_states) {
      res.truncated = true;
      break;
    }
    const Marking m = std::move(frontier.front());
    frontier.pop_front();
    ++res.states;

    bool any_enabled = false;
    for (unsigned t = 0; t < net.num_transitions(); ++t) {
      if (!net.enabled(t, m)) continue;
      any_enabled = true;
      res.fireable[t] = true;
      Marking next = m;
      net.fire(t, next);
      note_bounds(next);
      if (seen.insert(next.key()).second) frontier.push_back(std::move(next));
    }
    if (!any_enabled) ++res.deadlocks;
  }
  return res;
}

}  // namespace rcpn::cpn
