#include "machines/simple_pipeline.hpp"

namespace rcpn::machines {

using core::FireCtx;

SimplePipeline::SimplePipeline(std::uint64_t to_generate)
    : net_("Fig2"), eng_(net_, this), to_generate_(to_generate) {
  const core::StageId s1 = net_.add_stage("L1", 1);
  const core::StageId s2 = net_.add_stage("L2", 1);
  l1_ = net_.add_place("L1", s1);
  l2_ = net_.add_place("L2", s2);
  type_a_ = net_.add_type("A");
  type_b_ = net_.add_type("B");

  u2_ = net_.add_transition("U2", type_a_).from(l1_).to(l2_).id();
  u3_ = net_.add_transition("U3", type_a_).from(l2_).to(net_.end_place()).id();
  u4_ = net_.add_transition("U4", type_b_).from(l1_).to(net_.end_place()).id();

  net_.add_independent_transition("U1")
      .guard([this](FireCtx&) { return generated_ < to_generate_; })
      .action([this](FireCtx& ctx) {
        core::InstructionToken* t = ctx.engine->acquire_pooled_instruction();
        t->type = (generated_ % 2 == 0) ? type_a_ : type_b_;
        ++generated_;
        ctx.engine->emit_instruction(t, l1_);
      })
      .to(l1_);

  eng_.build();
}

std::uint64_t SimplePipeline::run(std::uint64_t max_cycles) {
  const core::Cycle start = eng_.clock();
  while (!eng_.stopped() && eng_.clock() - start < max_cycles) {
    eng_.step();
    if (generated_ >= to_generate_ && eng_.tokens_in_flight() == 0) break;
  }
  return eng_.clock() - start;
}

std::uint64_t SimplePipeline::u2_fires() const {
  return eng_.stats().transition_fires[static_cast<unsigned>(u2_)];
}
std::uint64_t SimplePipeline::u3_fires() const {
  return eng_.stats().transition_fires[static_cast<unsigned>(u3_)];
}
std::uint64_t SimplePipeline::u4_fires() const {
  return eng_.stats().transition_fires[static_cast<unsigned>(u4_)];
}

}  // namespace rcpn::machines
