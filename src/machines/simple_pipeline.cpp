#include "machines/simple_pipeline.hpp"

namespace rcpn::machines {

using core::FireCtx;

SimplePipeline::SimplePipeline(std::uint64_t to_generate, core::EngineOptions options)
    : sim_(
          "Fig2", options,
          [this](model::ModelBuilder<Machine>& b, Machine&) {
            const model::StageHandle s1 = b.add_stage("L1", 1);
            const model::StageHandle s2 = b.add_stage("L2", 1);
            l1_ = b.add_place("L1", s1);
            l2_ = b.add_place("L2", s2);
            type_a_ = b.add_type("A");
            type_b_ = b.add_type("B");

            u2_ = b.add_transition("U2", type_a_).from(l1_).to(l2_);
            u3_ = b.add_transition("U3", type_a_).from(l2_).to(b.end());
            u4_ = b.add_transition("U4", type_b_).from(l1_).to(b.end());

            const core::TypeId ta = type_a_, tb = type_b_;
            const core::PlaceId l1 = l1_;
            b.add_independent_transition("U1")
                .guard([](Machine& m, FireCtx&) { return m.generated < m.to_generate; })
                .action([ta, tb, l1](Machine& m, FireCtx& ctx) {
                  core::InstructionToken* t = ctx.engine->acquire_pooled_instruction();
                  t->type = (m.generated % 2 == 0) ? ta : tb;
                  ++m.generated;
                  ctx.engine->emit_instruction(t, l1);
                })
                .to(l1_);
          },
          Machine{to_generate, 0}) {}

std::uint64_t SimplePipeline::run(std::uint64_t max_cycles) {
  return sim_.drain([](const Machine& m) { return m.generated >= m.to_generate; },
                    max_cycles);
}

}  // namespace rcpn::machines
