#include "machines/simple_pipeline.hpp"

namespace rcpn::machines {

using core::FireCtx;

bool fig2_u1_guard(Fig2Machine& m, FireCtx&) { return m.generated < m.to_generate; }

void fig2_u1_action(Fig2Machine& m, FireCtx& ctx) {
  core::InstructionToken* t = ctx.engine->acquire_pooled_instruction();
  t->type = (m.generated % 2 == 0) ? m.ty_a : m.ty_b;
  ++m.generated;
  ctx.engine->emit_instruction(t, m.l1);
}

SimplePipeline::SimplePipeline(std::uint64_t to_generate, core::EngineOptions options)
    : sim_(
          "Fig2", options,
          [this](model::ModelBuilder<Fig2Machine>& b, Fig2Machine& m) {
            b.emit_machine_type("rcpn::machines::Fig2Machine");
            b.emit_include("machines/simple_pipeline.hpp");
            const model::StageHandle s1 = b.add_stage("L1", 1);
            const model::StageHandle s2 = b.add_stage("L2", 1);
            l1_ = b.add_place("L1", s1);
            l2_ = b.add_place("L2", s2);
            type_a_ = b.add_type("A");
            type_b_ = b.add_type("B");
            m.ty_a = type_a_;
            m.ty_b = type_b_;
            m.l1 = l1_;

            u2_ = b.add_transition("U2", type_a_).from(l1_).to(l2_);
            u3_ = b.add_transition("U3", type_a_).from(l2_).to(b.end());
            u4_ = b.add_transition("U4", type_b_).from(l1_).to(b.end());

            b.add_independent_transition("U1")
                .guard_named<&fig2_u1_guard>("rcpn::machines::fig2_u1_guard")
                .action_named<&fig2_u1_action>("rcpn::machines::fig2_u1_action")
                .to(l1_);
          },
          Fig2Machine{to_generate, 0, core::kNoType, core::kNoType, core::kNoPlace}) {}

std::uint64_t SimplePipeline::run(std::uint64_t max_cycles) {
  return sim_.drain([](const Fig2Machine& m) { return m.generated >= m.to_generate; },
                    max_cycles);
}

GoldenRunResult golden_run_fig2(core::EngineOptions options) {
  SimplePipeline sim(64, options);
  GoldenRunResult r;
  record_golden_retires(sim.engine(), r.trace);
  sim.run();
  r.stats = sim.engine().stats();
  return r;
}

void golden_inspect_fig2(core::EngineOptions options, const GoldenInspectFn& fn) {
  SimplePipeline sim(64, options);
  fn(sim.net(), sim.engine());
}

}  // namespace rcpn::machines
