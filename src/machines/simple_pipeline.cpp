#include "machines/simple_pipeline.hpp"

#include "desc/delegate_registry.hpp"
#include "machines/golden_session.hpp"

namespace rcpn::machines {

using core::FireCtx;

bool fig2_u1_guard(Fig2Machine& m, FireCtx&) { return m.generated < m.to_generate; }

void fig2_u1_action(Fig2Machine& m, FireCtx& ctx) {
  core::InstructionToken* t = ctx.engine->acquire_pooled_instruction();
  t->type = (m.generated % 2 == 0) ? m.ty_a : m.ty_b;
  ++m.generated;
  ctx.engine->emit_instruction(t, m.l1);
}

const desc::DelegateRegistry& fig2_delegates() {
  static const desc::DelegateRegistry reg = [] {
    desc::DelegateRegistry r("rcpn::machines::Fig2Machine",
                             {"machines/simple_pipeline.hpp"});
    auto d = r.bind<Fig2Machine>();
    d.guard<&fig2_u1_guard>("rcpn::machines::fig2_u1_guard");
    d.action<&fig2_u1_action>("rcpn::machines::fig2_u1_action");
    return r;
  }();
  return reg;
}

void bind_fig2_context(const core::Net& net, Fig2Machine& m) {
  m.ty_a = net.find_type("A");
  m.ty_b = net.find_type("B");
  m.l1 = net.find_place("L1");
}

SimplePipeline::SimplePipeline(std::uint64_t to_generate, core::EngineOptions options)
    : sim_(
          "Fig2", options,
          [this](model::ModelBuilder<Fig2Machine>& b, Fig2Machine&) {
            b.use_delegates(fig2_delegates());
            const model::StageHandle s1 = b.add_stage("L1", 1);
            const model::StageHandle s2 = b.add_stage("L2", 1);
            l1_ = b.add_place("L1", s1);
            l2_ = b.add_place("L2", s2);
            type_a_ = b.add_type("A");
            type_b_ = b.add_type("B");

            u2_ = b.add_transition("U2", type_a_).from(l1_).to(l2_);
            u3_ = b.add_transition("U3", type_a_).from(l2_).to(b.end());
            u4_ = b.add_transition("U4", type_b_).from(l1_).to(b.end());

            b.add_independent_transition("U1")
                .guard_ref("rcpn::machines::fig2_u1_guard")
                .action_ref("rcpn::machines::fig2_u1_action")
                .to(l1_);
          },
          Fig2Machine{to_generate, 0, core::kNoType, core::kNoType, core::kNoPlace}) {
  bind_fig2_context(sim_.net(), sim_.machine());
}

std::uint64_t SimplePipeline::run(std::uint64_t max_cycles) {
  return sim_.drain([](const Fig2Machine& m) { return m.generated >= m.to_generate; },
                    max_cycles);
}

GoldenRunResult golden_finish_fig2(SimplePipeline& sim) {
  GoldenRunResult r;
  record_golden_retires(sim.engine(), r.trace);
  sim.run();
  r.stats = sim.engine().stats();
  return r;
}

GoldenRunResult golden_run_fig2(core::EngineOptions options) {
  SimplePipeline sim(64, options);
  return golden_finish_fig2(sim);
}

void golden_inspect_fig2(core::EngineOptions options, const GoldenInspectFn& fn) {
  SimplePipeline sim(64, options);
  fn(sim.net(), sim.engine());
}

namespace {

class Fig2Session final : public SessionBase {
 public:
  explicit Fig2Session(core::EngineOptions options) : sim_(64, options) {
    record_golden_retires(sim_.engine(), trace_);
  }

  core::Engine& engine() override { return sim_.engine(); }

  bool advance(std::uint64_t cycles) override {
    if (finished()) return false;
    sim_.run(cycles);
    return !finished();
  }

  std::string machine_key() const override { return "fig2"; }
  std::string workload_id() const override { return "golden-64"; }

  void save_machine(ckpt::StateWriter& w, const ckpt::RefCoder&) const override {
    w.begin("fig2").field("generated", sim_.machine().generated).end();
  }

  void restore_machine(ckpt::StateReader& r, const ckpt::RefCoder&) override {
    r.next("fig2");
    sim_.machine().generated = r.get_u64("generated");
  }

 private:
  bool finished() {
    return sim_.engine().stopped() ||
           (sim_.machine().generated >= sim_.machine().to_generate &&
            sim_.engine().tokens_in_flight() == 0);
  }

  SimplePipeline sim_;
};

}  // namespace

std::unique_ptr<GoldenSession> golden_session_fig2(core::EngineOptions options) {
  return std::make_unique<Fig2Session>(options);
}

}  // namespace rcpn::machines
