#include "machines/golden_trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/export.hpp"

namespace rcpn::machines {

void record_golden_retires(core::Engine& eng, std::vector<GoldenRetireEvent>& out) {
  eng.hooks().on_retire = [&eng, &out](core::InstructionToken* t) {
    out.push_back(GoldenRetireEvent{eng.clock(), t->pc, t->seq});
  };
}

std::string format_golden_trace(const std::string& name,
                                const std::vector<GoldenRetireEvent>& trace) {
  std::ostringstream out;
  out << "# " << name << " golden cycle-stamped retire trace: cycle pc(hex) seq\n";
  for (const GoldenRetireEvent& e : trace)
    out << e.cycle << " " << std::hex << e.pc << std::dec << " " << e.seq << "\n";
  return out.str();
}

std::string format_golden_stats(const core::Stats& stats) {
  std::ostringstream out;
  out << "# stats cycles=" << stats.cycles << " retired=" << stats.retired
      << " fetched=" << stats.fetched << " squashed=" << stats.squashed
      << " reservations=" << stats.reservations << " firings=" << stats.firings
      << "\n";
  return out.str();
}

std::string format_stall_causes(const core::Stats& stats) {
  std::ostringstream out;
  const std::size_t places = stats.place_stalls.size();
  for (std::size_t p = 0; p < places; ++p)
    for (unsigned c = 0; c < core::kNumStallCauses; ++c) {
      const std::uint64_t n =
          stats.place_stall_causes[p * core::kNumStallCauses + c];
      if (n == 0) continue;
      out << "# stallcause place=" << p << " cause="
          << core::stall_cause_name(static_cast<core::StallCause>(c))
          << " count=" << n << "\n";
    }
  return out.str();
}

bool parse_stall_causes(const std::string& text, unsigned num_places,
                        std::vector<std::uint64_t>& out) {
  out.assign(static_cast<std::size_t>(num_places) * core::kNumStallCauses, 0);
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    // Anchor on `place=`, not just the tag: a machine literally named
    // "stallcause" puts the tag in its trace header line too.
    if (line.rfind("# stallcause place=", 0) != 0) continue;
    unsigned long long place = 0, count = 0;
    char cause[64] = {0};
    if (std::sscanf(line.c_str(), "# stallcause place=%llu cause=%63s count=%llu",
                    &place, cause, &count) != 3)
      return false;
    if (place >= num_places) return false;
    int ci = -1;
    for (unsigned c = 0; c < core::kNumStallCauses; ++c)
      if (std::string(cause) ==
          core::stall_cause_name(static_cast<core::StallCause>(c)))
        ci = static_cast<int>(c);
    if (ci < 0) return false;
    out[static_cast<std::size_t>(place) * core::kNumStallCauses +
        static_cast<unsigned>(ci)] = count;
  }
  return true;
}

bool parse_golden_stats(const std::string& text, core::Stats& out) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("# stats ", 0) != 0) continue;
    unsigned long long cycles = 0, retired = 0, fetched = 0, squashed = 0,
                       reservations = 0, firings = 0;
    if (std::sscanf(line.c_str(),
                    "# stats cycles=%llu retired=%llu fetched=%llu squashed=%llu "
                    "reservations=%llu firings=%llu",
                    &cycles, &retired, &fetched, &squashed, &reservations,
                    &firings) != 6)
      return false;
    out.cycles = cycles;
    out.retired = retired;
    out.fetched = fetched;
    out.squashed = squashed;
    out.reservations = reservations;
    out.firings = firings;
    return true;
  }
  return false;
}

namespace {

bool parse_golden_stream(std::istream& in, std::vector<GoldenRetireEvent>& out) {
  bool ok = true;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    GoldenRetireEvent e;
    fields >> e.cycle >> std::hex >> e.pc >> std::dec >> e.seq;
    ok = ok && !fields.fail();
    out.push_back(e);
  }
  return ok;
}

}  // namespace

bool parse_golden_trace(const std::string& text, std::vector<GoldenRetireEvent>& out) {
  std::istringstream in(text);
  return parse_golden_stream(in, out);
}

bool load_golden_trace(const std::string& path, std::vector<GoldenRetireEvent>& out) {
  std::ifstream in(path);
  return in.good() && parse_golden_stream(in, out);
}

std::string diff_golden_traces(const std::vector<GoldenRetireEvent>& golden,
                               const std::vector<GoldenRetireEvent>& got) {
  const std::size_t n = std::min(golden.size(), got.size());
  std::ostringstream msg;
  for (std::size_t i = 0; i < n; ++i) {
    if (golden[i] == got[i]) continue;
    msg << "first divergence at retirement #" << i << ": golden {cycle "
        << golden[i].cycle << ", pc 0x" << std::hex << golden[i].pc << std::dec
        << ", seq " << golden[i].seq << "} vs got {cycle " << got[i].cycle << ", pc 0x"
        << std::hex << got[i].pc << std::dec << ", seq " << got[i].seq << "}";
    return msg.str();
  }
  if (golden.size() != got.size()) {
    msg << "trace length differs (golden " << golden.size() << ", got " << got.size()
        << "); first " << (golden.size() < got.size() ? "extra" : "missing")
        << " retirement is #" << n;
    if (n < got.size())
      msg << " at cycle " << got[n].cycle;
    else if (n < golden.size())
      msg << " at golden cycle " << golden[n].cycle;
    return msg.str();
  }
  return {};
}

std::string write_checkpoint(GoldenSession& s) {
  std::vector<ckpt::TraceEvent> prefix;
  prefix.reserve(s.trace().size());
  for (const GoldenRetireEvent& e : s.trace())
    prefix.push_back(ckpt::TraceEvent{e.cycle, e.pc, e.seq});
  return ckpt::save_snapshot(s.engine(), s.io(), prefix);
}

void read_checkpoint(GoldenSession& s, const std::string& text) {
  std::vector<ckpt::TraceEvent> prefix;
  ckpt::restore_snapshot(text, s.engine(), s.io(), prefix);
  std::vector<GoldenRetireEvent>& tr = s.trace();
  tr.clear();
  tr.reserve(prefix.size());
  for (const ckpt::TraceEvent& e : prefix)
    tr.push_back(GoldenRetireEvent{e.cycle, e.pc, e.seq});
}

GoldenRunResult finish_session(GoldenSession& s) {
  while (s.advance(std::uint64_t(1) << 62)) {
  }
  return s.result();
}

namespace {

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  return out.good();
}

}  // namespace

int golden_cli_main(int argc, char** argv, const std::string& name,
                    const GoldenRunFn& run, core::EngineOptions base,
                    const GoldenSessionFn& session) {
  std::string golden_path;
  std::string trace_json_path;
  std::string ckpt_out;
  std::string restore_path;
  std::uint64_t ckpt_at = 0;
  bool have_ckpt_at = false;
  std::uint64_t ckpt_every = 0;
  bool print_stats = false;
  bool print_profile = false;
  long reps = 0;
  core::EngineOptions options = base;
  options.backend = core::Backend::generated;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--golden" && i + 1 < argc) {
      golden_path = argv[++i];
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (arg == "--trace-json" && i + 1 < argc) {
      trace_json_path = argv[++i];
    } else if (arg == "--profile") {
      print_profile = true;
    } else if (arg == "--time" && i + 1 < argc) {
      reps = std::atol(argv[++i]);
      if (reps <= 0) {
        std::fprintf(stderr, "--time expects a positive repetition count\n");
        return 2;
      }
    } else if (arg == "--backend" && i + 1 < argc) {
      const std::string b = argv[++i];
      if (b == "interpreted") {
        options.backend = core::Backend::interpreted;
      } else if (b == "compiled") {
        options.backend = core::Backend::compiled;
      } else if (b != "generated") {
        std::fprintf(stderr, "unknown backend '%s'\n", b.c_str());
        return 2;
      }
    } else if (arg == "--checkpoint-at" && i + 1 < argc) {
      ckpt_at = std::strtoull(argv[++i], nullptr, 10);
      have_ckpt_at = true;
    } else if (arg == "--checkpoint-every" && i + 1 < argc) {
      ckpt_every = std::strtoull(argv[++i], nullptr, 10);
      if (ckpt_every == 0) {
        std::fprintf(stderr, "--checkpoint-every expects a positive cycle count\n");
        return 2;
      }
    } else if (arg == "--checkpoint-out" && i + 1 < argc) {
      ckpt_out = argv[++i];
    } else if (arg == "--restore" && i + 1 < argc) {
      restore_path = argv[++i];
    } else if (arg == "--force-two-list-all") {
      options.force_two_list_all = true;
    } else if (arg == "--no-two-list-state-refs") {
      options.two_list_state_refs = false;
    } else if (arg == "--linear-search") {
      options.linear_search = true;
    } else if (arg == "--quiescence") {
      options.quiescence_skip = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--golden FILE] [--stats] [--time N]\n"
          "       [--trace-json FILE] [--profile]\n"
          "       [--backend generated|compiled|interpreted]\n"
          "       [--force-two-list-all] [--no-two-list-state-refs]\n"
          "       [--linear-search] [--quiescence]\n"
          "       [--checkpoint-at T --checkpoint-out FILE]\n"
          "       [--checkpoint-every K --checkpoint-out FILE]\n"
          "       [--restore FILE]\n"
          "Runs the %s golden workload on the generated simulator engine.\n"
          "Default: print the cycle-stamped retire trace to stdout.\n"
          "--golden FILE: diff the trace against FILE; exit 1 on the first\n"
          "divergence, naming its cycle.\n"
          "--stats: also print the aggregate `# stats ...` line.\n"
          "--time N: run the workload N times (plus a warm-up) and print one\n"
          "`time ... secs=...` line instead of the trace.\n"
          "--trace-json FILE: write a Chrome-trace-event/Perfetto JSON of the\n"
          "run (needs a build with RCPN_OBS=ON; load in ui.perfetto.dev).\n"
          "--profile: print the aggregate observability profile (occupancy\n"
          "histograms, stall causes, candidate-scan hit rates; RCPN_OBS=ON).\n"
          "The schedule flags select ablation variants; the generated backend\n"
          "only accepts the options its tables were emitted for (use\n"
          "--backend compiled to run other schedules from this binary).\n"
          "--checkpoint-at T: run to cycle T, write the rcpn-ckpt/1 snapshot\n"
          "to --checkpoint-out FILE and exit. --checkpoint-every K: run to\n"
          "completion, alternating FILE.0/FILE.1 every K cycles. --restore\n"
          "FILE: resume from a snapshot and run to completion; the printed\n"
          "trace and stats are byte-identical to the straight run.\n",
          argv[0], name.c_str());
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s' (try --help)\n", arg.c_str());
      return 2;
    }
  }

  const bool want_ckpt = have_ckpt_at || ckpt_every > 0 || !restore_path.empty();
  if (want_ckpt) {
    if (!session) {
      std::fprintf(stderr,
                   "%s: this binary was built without a checkpoint session for "
                   "its machine (re-emit it to pick one up)\n",
                   name.c_str());
      return 2;
    }
    if (reps > 0) {
      std::fprintf(stderr,
                   "--checkpoint-at/--checkpoint-every/--restore cannot be "
                   "combined with --time\n");
      return 2;
    }
    if ((have_ckpt_at || ckpt_every > 0) && ckpt_out.empty()) {
      std::fprintf(stderr,
                   "--checkpoint-at/--checkpoint-every need --checkpoint-out "
                   "FILE\n");
      return 2;
    }
    if (have_ckpt_at && ckpt_every > 0) {
      std::fprintf(stderr,
                   "--checkpoint-at and --checkpoint-every are mutually "
                   "exclusive\n");
      return 2;
    }
  }

  const bool want_obs = !trace_json_path.empty() || print_profile;
  if (want_obs && reps > 0) {
    std::fprintf(stderr,
                 "--trace-json/--profile cannot be combined with --time: probe "
                 "recording would distort the measurement\n");
    return 2;
  }
#if !RCPN_OBS
  if (want_obs) {
    std::fprintf(stderr,
                 "--trace-json/--profile need a build with RCPN_OBS=ON (this "
                 "binary was compiled without the probe layer)\n");
    return 2;
  }
#else
  obs::Hub obs_hub;
  if (want_obs) options.obs = &obs_hub;
#endif

  if (reps > 0) {
    try {
      run(options);  // warm-up: pools, page faults, branch predictors
      std::uint64_t cycles = 0, retired = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (long i = 0; i < reps; ++i) {
        const GoldenRunResult r = run(options);
        cycles += r.stats.cycles;
        retired += r.trace.size();
      }
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      std::printf("time model=%s reps=%ld cycles=%llu retired=%llu secs=%.6f "
                  "mcps=%.3f\n",
                  name.c_str(), reps, static_cast<unsigned long long>(cycles),
                  static_cast<unsigned long long>(retired), secs,
                  secs > 0 ? static_cast<double>(cycles) / secs / 1e6 : 0.0);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(), e.what());
      return 2;
    }
    return 0;
  }

  GoldenRunResult result;
  try {
    if (want_ckpt) {
      std::unique_ptr<GoldenSession> s = session(options);
      if (!restore_path.empty()) {
        std::ifstream in(restore_path, std::ios::binary);
        if (!in.good()) {
          std::fprintf(stderr, "%s: cannot read checkpoint %s\n", name.c_str(),
                       restore_path.c_str());
          return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        read_checkpoint(*s, buf.str());
      }
      if (have_ckpt_at) {
        const core::Cycle now = s->engine().clock();
        if (ckpt_at > now) s->advance(ckpt_at - now);
        if (!write_file(ckpt_out, write_checkpoint(*s))) {
          std::fprintf(stderr, "%s: cannot write %s\n", name.c_str(),
                       ckpt_out.c_str());
          return 2;
        }
        std::fprintf(stderr, "%s: wrote checkpoint at cycle %llu to %s\n",
                     name.c_str(),
                     static_cast<unsigned long long>(s->engine().clock()),
                     ckpt_out.c_str());
        return 0;
      }
      if (ckpt_every > 0) {
        // Two-slot ring: the last two periodic snapshots survive, so a crash
        // while writing one slot always leaves the other intact.
        unsigned slot = 0;
        while (s->advance(ckpt_every)) {
          const std::string path = ckpt_out + "." + std::to_string(slot % 2);
          if (!write_file(path, write_checkpoint(*s))) {
            std::fprintf(stderr, "%s: cannot write %s\n", name.c_str(),
                         path.c_str());
            return 2;
          }
          ++slot;
        }
        result = s->result();
      } else {
        result = finish_session(*s);
      }
    } else {
      result = run(options);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(), e.what());
    return 2;
  }
  if (result.trace.empty()) {
    std::fprintf(stderr, "%s: workload retired nothing\n", name.c_str());
    return 1;
  }

#if RCPN_OBS
  if (!trace_json_path.empty()) {
    std::ofstream out(trace_json_path, std::ios::binary);
    if (!out.good()) {
      std::fprintf(stderr, "%s: cannot write %s\n", name.c_str(),
                   trace_json_path.c_str());
      return 2;
    }
    out << obs::export_chrome_trace(obs_hub);
    std::fprintf(stderr, "%s: wrote %s\n", name.c_str(), trace_json_path.c_str());
  }
  if (print_profile) std::fputs(obs::format_profile(obs_hub).c_str(), stdout);
#endif

  if (golden_path.empty()) {
    std::fputs(format_golden_trace(name, result.trace).c_str(), stdout);
    if (print_stats) {
      std::fputs(format_golden_stats(result.stats).c_str(), stdout);
      std::fputs(format_stall_causes(result.stats).c_str(), stdout);
    }
    return 0;
  }

  if (print_stats) {
      std::fputs(format_golden_stats(result.stats).c_str(), stdout);
      std::fputs(format_stall_causes(result.stats).c_str(), stdout);
    }
  std::vector<GoldenRetireEvent> golden;
  if (!load_golden_trace(golden_path, golden)) {
    std::fprintf(stderr, "%s: missing or malformed golden file %s\n", name.c_str(),
                 golden_path.c_str());
    return 2;
  }
  const std::string diff = diff_golden_traces(golden, result.trace);
  if (!diff.empty()) {
    std::fprintf(stderr, "%s (generated): %s\n", name.c_str(), diff.c_str());
    return 1;
  }
  std::printf("%s: %zu retirements match %s\n", name.c_str(), result.trace.size(),
              golden_path.c_str());
  return 0;
}

}  // namespace rcpn::machines
