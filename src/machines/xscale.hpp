// XScale RCPN model: the paper's Fig 9 pipeline — "in-order execution,
// out-of-order completion processor with a relatively complex pipeline".
//
//   F1 -> F2 -> ID -> RF -+-> X1 -> X2 -> XWB   (main execute pipe)
//                         +-> D1 -> D2 -> DWB   (memory pipe)
//                         +-> M1 -> M2 -> MWB   (MAC pipe)
//
// Issue (operand read + reservations) happens entering RF; branches resolve
// leaving RF with a BTB (128 entries) predicting at fetch — a mispredict
// squashes the fetch side for the XScale's ~4-cycle penalty. The three pipes
// complete out of order; the register file runs the multi-writer policy so
// an older slow writer cannot clobber a newer value (paper §3.1's renaming
// remark). Declared through model::ModelBuilder over ArmPipeMachine.
#pragma once

#include "machines/arm_machine.hpp"
#include "machines/golden_trace.hpp"
#include "machines/strongarm.hpp"  // RunResult / collect_result
#include "model/simulator.hpp"

namespace rcpn::machines {

struct XScaleConfig {
  mem::MemorySystemConfig mem;
  core::EngineOptions engine;
  std::uint32_t btb_entries = 128;
  bool decode_cache_bypass = false;

  XScaleConfig();
};

class XScaleSim {
 public:
  explicit XScaleSim(XScaleConfig config = XScaleConfig());

  /// Model-as-data construction: the same pipeline, loaded from a serialized
  /// description. `config.engine` selects the backend/schedule knobs (fold
  /// the description's own options in with desc::engine_options first).
  /// Defined in machines/desc_machines.cpp.
  XScaleSim(const desc::Description& d, const desc::DelegateRegistry& registry,
            XScaleConfig config);

  RunResult run(const sys::Program& program, std::uint64_t max_cycles = ~0ull);

  /// Checkpoint-session support: load `program` (same ordering as run())
  /// without running anything.
  void begin(const sys::Program& program);
  /// Continue an in-progress run for up to `cycles` more cycles.
  void advance(std::uint64_t cycles) { sim_.run(cycles); }

  core::Net& net() { return sim_.net(); }
  core::Engine& engine() { return sim_.engine(); }
  ArmMachine& machine() { return sim_.machine().m; }
  const ArmMachine& machine() const { return sim_.machine().m; }

 private:
  void describe(model::ModelBuilder<ArmPipeMachine>& b, ArmPipeMachine& mc);

  XScaleConfig cfg_;
  model::Simulator<ArmPipeMachine> sim_;
};

/// Fill the pipeline-shape environment (forwarding sources, flush/drain
/// sets, fetch place) by name from the lowered net — shared by the
/// describe-callback and description-loaded construction paths.
void bind_xscale_context(const core::Net& net, ArmPipeMachine& mc);

/// Golden-workload runner/inspector (key "xscale_adpcm"): a fixed 1500-cycle
/// window of the adpcm kernel.
GoldenRunResult golden_run_xscale_adpcm(core::EngineOptions options);
void golden_inspect_xscale_adpcm(core::EngineOptions options,
                                 const GoldenInspectFn& fn);

/// Checkpointable golden session (same adpcm ×1 workload under the same
/// 1500-cycle budget; see machines/golden_trace.hpp).
std::unique_ptr<GoldenSession> golden_session_xscale_adpcm(
    core::EngineOptions options);

/// The golden workload itself (trace recording + adpcm window + stats),
/// factored out so both construction paths run byte-identical work.
GoldenRunResult golden_finish_xscale_adpcm(XScaleSim& sim);

}  // namespace rcpn::machines
