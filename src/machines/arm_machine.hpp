// Shared machine context + instruction behaviour for the ARM pipeline models
// (StrongArm §5 / XScale Fig 9).
//
// The paper's recipe: each operation class has a sub-net; decode binds the
// class's symbols (Register -> RegRef, Constant -> Const, µ-op -> semantic
// function) producing a customized sub-net instance carried by the token.
// This file implements the per-class issue/execute/mem/writeback behaviours
// once; the two pipeline models instantiate them as transitions over their
// own stage structure.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "arm/arm_isa.hpp"
#include "core/engine.hpp"
#include "isa/decoder.hpp"
#include "mem/memory_system.hpp"
#include "predictor/predictor.hpp"
#include "regfile/reg_ref.hpp"
#include "sys/program.hpp"
#include "sys/syscalls.hpp"

namespace rcpn::machines {

/// Decode payload: the static decode result plus the per-dynamic-instance
/// scratch the sub-net transitions communicate through. Token, decode-cache
/// entry and payload are 1:1, so per-instance state is safe here.
struct ArmPayload final : isa::Payload {
  arm::DecodedInstruction d;

  // -- per-instance state (written before read on every execution) ----------
  bool nullified = false;  // condition failed at issue
  bool resolved = false;   // branch reached its resolve transition
  std::uint32_t ea = 0;    // load/store effective address
  std::uint32_t result = 0;     // deferred result (mul)
  std::uint32_t pred_next = 0;  // next-pc predicted at fetch
  std::uint32_t base_after = 0; // base register after auto-index / LSM
  bool base_wb = false;

  // Load/store-multiple: one RegRef per listed register (owned by the decode
  // cache entry). r15 never appears here; has_pc flags a pop-to-pc.
  std::vector<regfile::RegRef*> list_refs;
  bool has_pc = false;
  std::uint32_t loaded_pc = 0;

  // -- partially-evaluated issue plan (static; built at decode) --------------
  // The customized sub-net instance of the paper: only the register symbols
  // that actually bind to RegRefs appear here, so the per-cycle hazard check
  // walks a handful of direct (devirtualized) RegRef operations and constant
  // operands cost nothing.
  regfile::RegRef* reads[4] = {};
  unsigned n_reads = 0;
  regfile::RegRef* reserves[4] = {};
  unsigned n_reserves = 0;
  regfile::RegRef* flags_ref = nullptr;  // CPSR
  bool check_cond = false;   // cond != AL
  bool read_flags = false;   // cond / carry-in / S-preserved bits / RRX offset
  bool write_flags = false;  // S bit
  bool base_wb_static = false;  // auto-index / LSM writeback commits the base
  bool needs_class_guard = false;  // LSM lists, SWI / pop-to-pc drains
};

/// Fixed operand-slot meanings for the ARM models (see isa::OperandSlot).
/// dst=rd (or lr for BL; also the store data register), src1=rn,
/// src2=rm, src3=rs, flags=CPSR.

class ArmMachine {
 public:
  struct Config {
    mem::MemorySystemConfig mem;
    regfile::WritePolicy policy = regfile::WritePolicy::single_writer;
  };

  explicit ArmMachine(const Config& config);
  ArmMachine(const ArmMachine&) = delete;
  ArmMachine& operator=(const ArmMachine&) = delete;

  /// Load a program and reset all architectural + micro-architectural state.
  void load_program(const sys::Program& program);

  static ArmPayload& payload(core::InstructionToken& t) {
    return *static_cast<ArmPayload*>(t.payload);
  }

  regfile::RegisterFile rf;
  mem::MemorySystem mem;
  sys::SyscallHandler sys;
  isa::DecodeCache dcache;
  std::unique_ptr<predictor::BranchPredictor> bp;  // models install one
  std::uint32_t pc = 0;

  // model statistics
  std::uint64_t nullified_count = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t taken_branches = 0;

 private:
  /// DecodeCache factory: decode + bind operands (partial evaluation).
  void bind(isa::DecodeCache::Entry& e);
};

/// Environment a pipeline model passes to the shared behaviours: where
/// results can be forwarded from and which stages to flush on redirect.
struct PipeEnv {
  ArmMachine* m = nullptr;
  /// Forwarding-source places, checked in order (can_read_in / read_in).
  std::vector<core::PlaceId> fwd;
  /// Fetch-side stages squashed when a branch redirects.
  std::vector<core::StageId> flush_on_redirect;
  /// Places that must be empty before a serializing instruction (SWI,
  /// pop-to-pc) may issue — i.e. all downstream pipeline latches.
  std::vector<core::PlaceId> drain;
  /// Where the independent fetch transition emits instruction tokens.
  core::PlaceId fetch_into = core::kNoPlace;
  bool use_predictor = false;
};

/// Machine context of the model::Simulator-based ARM pipeline models: the
/// shared architectural machine plus the pipeline-shape environment the
/// per-class behaviours read. Guards and actions receive it typed.
struct ArmPipeMachine {
  explicit ArmPipeMachine(const ArmMachine::Config& config) : m(config) { env.m = &m; }
  // env.m points back into this object: copying would alias the original.
  ArmPipeMachine(const ArmPipeMachine&) = delete;
  ArmPipeMachine& operator=(const ArmPipeMachine&) = delete;

  /// Simulator::load entry point (the engine was already reset).
  void load(const sys::Program& program) { m.load_program(program); }

  ArmMachine m;
  PipeEnv env;
};

// -- shared per-class behaviours (used as transition guards/actions) ----------

/// Issue: hazard checks (paper §3.1 interface pairing) for the token's class.
bool issue_guard(const PipeEnv& env, core::FireCtx& ctx);
/// Issue: read sources, take write reservations, compute addresses.
void issue_action(const PipeEnv& env, core::FireCtx& ctx);

/// Execute: ALU result / branch resolve + redirect / SWI / mul start.
void execute_action(const PipeEnv& env, core::FireCtx& ctx);

/// Memory access: functional load/store (+ LSM burst) with the cache delay
/// applied as a token delay (the paper's t.delay = mem.delay(addr)). With
/// `publish` the load/mul result also becomes forwardable immediately
/// (single-transition memory stage as in the 5-stage StrongArm); without it,
/// publish_action exposes the value in a later stage (XScale's D2/M2).
void mem_action(const PipeEnv& env, core::FireCtx& ctx, bool publish);

/// Expose a deferred load/multiply result for forwarding.
void publish_action(const PipeEnv& env, core::FireCtx& ctx);

/// Writeback: commit every reservation this instruction holds.
void wb_action(const PipeEnv& env, core::FireCtx& ctx);

/// Instruction-independent fetch: predict, decode (cached), emit the token
/// into env.fetch_into.
void fetch_action(const PipeEnv& env, core::FireCtx& ctx);

/// True if `op` is readable now, either from the register file or forwarded
/// out of one of the `fwd` places.
bool operand_ready(const regfile::Operand* op, std::span<const core::PlaceId> fwd);

// -- named delegates over the typed ArmPipeMachine context --------------------
// The emittable registration form the StrongArm and XScale models use: each
// wraps one shared per-class behaviour above, with the pipeline-shape
// environment taken from the machine context. gen::emit_simulator references
// them by symbol and calls them directly in the generated simulator.
bool pipe_issue_guard(ArmPipeMachine& m, core::FireCtx& ctx);
void pipe_issue_action(ArmPipeMachine& m, core::FireCtx& ctx);
void pipe_execute_action(ArmPipeMachine& m, core::FireCtx& ctx);
/// Memory access that also publishes the result (StrongArm's single M stage).
void pipe_mem_publish_action(ArmPipeMachine& m, core::FireCtx& ctx);
/// Memory access only; pipe_publish_action exposes the value later (XScale).
void pipe_mem_action(ArmPipeMachine& m, core::FireCtx& ctx);
void pipe_publish_action(ArmPipeMachine& m, core::FireCtx& ctx);
void pipe_wb_action(ArmPipeMachine& m, core::FireCtx& ctx);
bool pipe_fetch_guard(ArmPipeMachine& m, core::FireCtx& ctx);
void pipe_fetch_action(ArmPipeMachine& m, core::FireCtx& ctx);

}  // namespace rcpn::machines

namespace rcpn::desc {
class DelegateRegistry;
}

namespace rcpn::ckpt {
class StateWriter;
class StateReader;
class RefCoder;
}

namespace rcpn::machines {

/// The shared ArmPipeMachine DelegateRegistry used by both the StrongArm and
/// XScale models: symbol -> typed binding for every pipe_* delegate above,
/// plus the emission metadata (machine type, header).
const desc::DelegateRegistry& arm_pipe_delegates();

// -- checkpoint support (shared by the StrongArm and XScale sessions) ---------

/// ArmMachine context serialization: architectural registers, memory pages,
/// both timing caches, the syscall capture, the predictor (when installed)
/// and the fetch cursor/statistics. Defined in machines/arm_ckpt.cpp.
void save_arm_machine(ckpt::StateWriter& w, const ArmMachine& m,
                      const ckpt::RefCoder& refs);
void restore_arm_machine(ckpt::StateReader& r, ArmMachine& m,
                         const ckpt::RefCoder& refs);

/// ArmPayload per-instance state beyond the core token fields (issue/resolve
/// latches, effective address, deferred result, predicted next-pc, ...).
void save_arm_token_extra(ckpt::StateWriter& w, const core::InstructionToken& t);
void restore_arm_token_extra(ckpt::StateReader& r, core::InstructionToken& t);

/// RegRef enumeration covering the fixed operand slots plus the out-of-band
/// load/store-multiple register-list refs.
unsigned arm_num_reg_refs(const core::InstructionToken& t);
regfile::RegRef* arm_reg_ref(const core::InstructionToken& t, unsigned i);

}  // namespace rcpn::machines
