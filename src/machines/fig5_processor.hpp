// The paper's Figure 4/5 "representative out-of-order completion processor
// with a feedback path", reproduced literally:
//
//  * three operation classes — ALU {op, d, s1, s2}, LoadStore {L, r, addr},
//    Branch {offset} — with Register|Constant symbols (Fig 4b);
//  * the ALU sub-net's two prioritized issue transitions: priority 0 reads
//    s1 from the register file, priority 1 forwards it from state L3 via
//    canRead(L3)/read(L3) (the feedback path, used only for s1 as in §3.2);
//  * the Branch sub-net stalls fetch with a reservation token in L1 that B
//    consumes one cycle later;
//  * the LoadStore sub-net's M transition sets the token delay from
//    mem.delay(addr) (a small data cache), modeling data-dependent latency.
//
// L3 is circularly referenced, so the engine's analysis gives it the
// two-list algorithm — exactly the paper's example of the optimization.
#pragma once

#include "core/engine.hpp"
#include "isa/decoder.hpp"
#include "mem/cache.hpp"
#include "mem/memory.hpp"
#include "regfile/reg_ref.hpp"

namespace rcpn::machines {

struct Fig5Instr {
  enum class Kind : std::uint8_t { alu, load_store, branch };
  enum class AluOp : std::uint8_t { add, sub, mul, xor_op };

  Kind kind = Kind::alu;

  // ALU: d = s1 op (s2 | imm)
  AluOp op = AluOp::add;
  std::uint8_t d = 0;
  std::uint8_t s1 = 0;
  bool s2_is_imm = false;
  std::uint8_t s2 = 0;
  std::uint32_t imm = 0;

  // LoadStore: L ? r = mem[addr] : mem[addr] = r; addr is Register|Constant.
  bool is_load = true;
  std::uint8_t r = 0;
  bool addr_is_imm = true;
  std::uint8_t addr_reg = 0;
  std::uint32_t addr = 0;

  // Branch: target instruction index = own index + offset (unconditional,
  // as in Fig 4b where offset is the only symbol).
  std::int32_t offset = 0;

  // -- convenience constructors ------------------------------------------------
  static Fig5Instr alu(AluOp op, unsigned d, unsigned s1, unsigned s2);
  static Fig5Instr alui(AluOp op, unsigned d, unsigned s1, std::uint32_t imm);
  static Fig5Instr load(unsigned r, std::uint32_t addr);
  static Fig5Instr store(unsigned r, std::uint32_t addr);
  static Fig5Instr branch(std::int32_t offset);
};

class Fig5Processor {
 public:
  static constexpr unsigned kNumRegs = 8;

  Fig5Processor();

  void load(std::vector<Fig5Instr> program);
  /// Run until all tokens drain and fetch passes the end of the program.
  std::uint64_t run(std::uint64_t max_cycles = 1u << 20);

  std::uint32_t reg(unsigned i) const { return rf_.read_cell(i); }
  void set_reg(unsigned i, std::uint32_t v) { rf_.write_cell(i, v); }
  mem::Memory& memory() { return mem_; }
  mem::Cache& dcache() { return cache_; }

  core::Net& net() { return net_; }
  core::Engine& engine() { return eng_; }

  /// Paper-behaviour counters for tests: how often the feedback path
  /// (priority-1 issue) fired vs the register-file path.
  std::uint64_t alu_issues_direct() const;
  std::uint64_t alu_issues_forwarded() const;

  core::PlaceId l1() const { return l1_; }
  core::PlaceId l2() const { return l2_; }
  core::PlaceId l3() const { return l3_; }
  core::PlaceId l4() const { return l4_; }

 private:
  struct Payload;
  void build();
  void bind(isa::DecodeCache::Entry& e);

  core::Net net_;
  regfile::RegisterFile rf_;
  mem::Memory mem_;
  mem::Cache cache_;
  isa::DecodeCache dcache_;
  core::Engine eng_;
  std::vector<Fig5Instr> program_;
  std::uint32_t pc_ = 0;

  core::TypeId ty_alu_ = core::kNoType, ty_ls_ = core::kNoType,
               ty_br_ = core::kNoType;
  core::PlaceId l1_ = core::kNoPlace, l2_ = core::kNoPlace, l3_ = core::kNoPlace,
                l4_ = core::kNoPlace;
  core::TransitionId d0_ = -1, d1_ = -1;
};

}  // namespace rcpn::machines
