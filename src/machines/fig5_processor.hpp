// The paper's Figure 4/5 "representative out-of-order completion processor
// with a feedback path", reproduced literally:
//
//  * three operation classes — ALU {op, d, s1, s2}, LoadStore {L, r, addr},
//    Branch {offset} — with Register|Constant symbols (Fig 4b);
//  * the ALU sub-net's two prioritized issue transitions: priority 0 reads
//    s1 from the register file, priority 1 forwards it from state L3 via
//    canRead(L3)/read(L3) (the feedback path, used only for s1 as in §3.2);
//  * the Branch sub-net stalls fetch with a reservation token in L1 that B
//    consumes one cycle later;
//  * the LoadStore sub-net's M transition sets the token delay from
//    mem.delay(addr) (a small data cache), modeling data-dependent latency.
//
// L3 is circularly referenced, so the engine's analysis gives it the
// two-list algorithm — exactly the paper's example of the optimization.
//
// The model is declared through model::ModelBuilder; Fig5Machine is the
// typed context (register file, memories, decode cache, pc) the sub-net
// guards and actions receive.
#pragma once

#include "isa/decoder.hpp"
#include "machines/golden_trace.hpp"
#include "mem/cache.hpp"
#include "mem/memory.hpp"
#include "model/simulator.hpp"
#include "regfile/reg_ref.hpp"

namespace rcpn::machines {

struct Fig5Instr {
  enum class Kind : std::uint8_t { alu, load_store, branch };
  enum class AluOp : std::uint8_t { add, sub, mul, xor_op };

  Kind kind = Kind::alu;

  // ALU: d = s1 op (s2 | imm)
  AluOp op = AluOp::add;
  std::uint8_t d = 0;
  std::uint8_t s1 = 0;
  bool s2_is_imm = false;
  std::uint8_t s2 = 0;
  std::uint32_t imm = 0;

  // LoadStore: L ? r = mem[addr] : mem[addr] = r; addr is Register|Constant.
  bool is_load = true;
  std::uint8_t r = 0;
  bool addr_is_imm = true;
  std::uint8_t addr_reg = 0;
  std::uint32_t addr = 0;

  // Branch: target instruction index = own index + offset (unconditional,
  // as in Fig 4b where offset is the only symbol).
  std::int32_t offset = 0;

  // -- convenience constructors ------------------------------------------------
  static Fig5Instr alu(AluOp op, unsigned d, unsigned s1, unsigned s2);
  static Fig5Instr alui(AluOp op, unsigned d, unsigned s1, std::uint32_t imm);
  static Fig5Instr load(unsigned r, std::uint32_t addr);
  static Fig5Instr store(unsigned r, std::uint32_t addr);
  static Fig5Instr branch(std::int32_t offset);
};

/// Machine context of the Fig 4/5 model: architectural state plus the ids
/// the decode binding needs (operation classes, the fetch latch).
struct Fig5Machine {
  static constexpr unsigned kNumRegs = 8;

  Fig5Machine();
  Fig5Machine(const Fig5Machine&) = delete;
  Fig5Machine& operator=(const Fig5Machine&) = delete;

  /// Swap in a program and reset architectural + decode state (the engine is
  /// reset by Simulator::load before this runs).
  void load(std::vector<Fig5Instr> p);

  regfile::RegisterFile rf;
  mem::Memory mem;
  mem::Cache cache;
  isa::DecodeCache dcache;
  std::vector<Fig5Instr> program;
  std::uint32_t pc = 0;

  // Filled by the model description, consumed by the decode binding and the
  // named delegates (declaration order is deterministic, so the ids are the
  // same on every construction — which makes the delegates emittable).
  core::TypeId ty_alu = core::kNoType, ty_ls = core::kNoType, ty_br = core::kNoType;
  core::PlaceId fetch_into = core::kNoPlace;
  /// The L3 result latch the priority-1 issue path forwards from (§3.2).
  core::PlaceId fwd_from = core::kNoPlace;

  struct Payload;

 private:
  void bind(isa::DecodeCache::Entry& e);
};

// -- named delegates (referenced by symbol in generated simulator sources) ----
bool fig5_d0_guard(Fig5Machine& m, core::FireCtx& ctx);
void fig5_d0_action(Fig5Machine& m, core::FireCtx& ctx);
bool fig5_d1_guard(Fig5Machine& m, core::FireCtx& ctx);
void fig5_d1_action(Fig5Machine& m, core::FireCtx& ctx);
void fig5_alu_e_action(Fig5Machine& m, core::FireCtx& ctx);
void fig5_alu_we_action(Fig5Machine& m, core::FireCtx& ctx);
bool fig5_ls_d_guard(Fig5Machine& m, core::FireCtx& ctx);
void fig5_ls_d_action(Fig5Machine& m, core::FireCtx& ctx);
void fig5_ls_m_action(Fig5Machine& m, core::FireCtx& ctx);
void fig5_ls_wm_action(Fig5Machine& m, core::FireCtx& ctx);
bool fig5_br_d_guard(Fig5Machine& m, core::FireCtx& ctx);
void fig5_br_d_action(Fig5Machine& m, core::FireCtx& ctx);
void fig5_br_b_action(Fig5Machine& m, core::FireCtx& ctx);
bool fig5_fetch_guard(Fig5Machine& m, core::FireCtx& ctx);
void fig5_fetch_action(Fig5Machine& m, core::FireCtx& ctx);

/// The Fig 5 DelegateRegistry: symbol -> typed binding for every delegate
/// above, plus the emission metadata (machine type, header).
const desc::DelegateRegistry& fig5_delegates();

/// Fill the machine-context fields the delegates and the decode binding read
/// (operation-class ids, fetch latch, forward latch) by name from the
/// lowered net — shared by both construction paths.
void bind_fig5_context(const core::Net& net, Fig5Machine& m);

/// Golden-workload runner/inspector (key "fig5"): the fixed eight-instruction
/// hazard/branch/memory mix of tests/golden/fig5.trace.
GoldenRunResult golden_run_fig5(core::EngineOptions options);
void golden_inspect_fig5(core::EngineOptions options, const GoldenInspectFn& fn);

/// Checkpointable golden session (same eight-instruction workload,
/// advanceable in cycle chunks; see machines/golden_trace.hpp).
std::unique_ptr<GoldenSession> golden_session_fig5(core::EngineOptions options);

class Fig5Processor;

/// The golden workload itself (trace recording + load + run + stats),
/// factored out so the describe-callback and description-loaded construction
/// paths run byte-identical work.
GoldenRunResult golden_finish_fig5(Fig5Processor& sim);

class Fig5Processor {
 public:
  static constexpr unsigned kNumRegs = Fig5Machine::kNumRegs;

  explicit Fig5Processor(core::EngineOptions options = {});

  /// Model-as-data construction: the same machine, loaded from a serialized
  /// description (the fluent-handle accessors alu_issues_direct()/l1()/...
  /// are not available on this path). Defined in machines/desc_machines.cpp.
  Fig5Processor(const desc::Description& d, const desc::DelegateRegistry& registry,
                core::EngineOptions options);

  void load(std::vector<Fig5Instr> program) { sim_.load(std::move(program)); }
  /// Run until all tokens drain and fetch passes the end of the program.
  std::uint64_t run(std::uint64_t max_cycles = 1u << 20);

  std::uint32_t reg(unsigned i) const { return sim_.machine().rf.read_cell(i); }
  void set_reg(unsigned i, std::uint32_t v) { sim_.machine().rf.write_cell(i, v); }
  mem::Memory& memory() { return sim_.machine().mem; }
  mem::Cache& dcache() { return sim_.machine().cache; }

  core::Net& net() { return sim_.net(); }
  core::Engine& engine() { return sim_.engine(); }
  Fig5Machine& machine() { return sim_.machine(); }
  const Fig5Machine& machine() const { return sim_.machine(); }

  /// Paper-behaviour counters for tests: how often the feedback path
  /// (priority-1 issue) fired vs the register-file path.
  std::uint64_t alu_issues_direct() const { return sim_.fires(d0_); }
  std::uint64_t alu_issues_forwarded() const { return sim_.fires(d1_); }

  core::PlaceId l1() const { return l1_.id(); }
  core::PlaceId l2() const { return l2_.id(); }
  core::PlaceId l3() const { return l3_.id(); }
  core::PlaceId l4() const { return l4_.id(); }

 private:
  void describe(model::ModelBuilder<Fig5Machine>& b, Fig5Machine& m);

  model::PlaceHandle l1_, l2_, l3_, l4_;
  model::TransitionHandle d0_, d1_;
  model::Simulator<Fig5Machine> sim_;
};

}  // namespace rcpn::machines
