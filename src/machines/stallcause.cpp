#include "machines/stallcause.hpp"

#include "desc/delegate_registry.hpp"
#include "machines/golden_session.hpp"

namespace rcpn::machines {

using core::FireCtx;

void stallcause_tick_action(StallCauseMachine& m, FireCtx&) { ++m.counter; }

bool stallcause_fetch_guard(StallCauseMachine& m, FireCtx&) {
  return m.emitted < m.to_emit;
}

void stallcause_fetch_action(StallCauseMachine& m, FireCtx& ctx) {
  core::InstructionToken* t = ctx.engine->acquire_pooled_instruction();
  // The first token is the parker; everything after it is a worker.
  t->type = (m.emitted == 0) ? m.ty_parker : m.ty_worker;
  t->pc = static_cast<std::uint32_t>(m.emitted);
  ++m.emitted;
  ctx.engine->emit_instruction(t, m.into);
}

bool stallcause_park_exit_guard(StallCauseMachine& m, FireCtx&) {
  return m.counter >= StallCauseMachine::kParkUntil;
}

bool stallcause_escape_guard(StallCauseMachine& m, FireCtx&) {
  return m.counter >= StallCauseMachine::kEscapeAt;
}

const desc::DelegateRegistry& stallcause_delegates() {
  static const desc::DelegateRegistry reg = [] {
    desc::DelegateRegistry r("rcpn::machines::StallCauseMachine",
                             {"machines/stallcause.hpp"});
    auto d = r.bind<StallCauseMachine>();
    d.action<&stallcause_tick_action>("rcpn::machines::stallcause_tick_action");
    d.guard<&stallcause_fetch_guard>("rcpn::machines::stallcause_fetch_guard");
    d.action<&stallcause_fetch_action>("rcpn::machines::stallcause_fetch_action");
    d.guard<&stallcause_park_exit_guard>("rcpn::machines::stallcause_park_exit_guard");
    d.guard<&stallcause_escape_guard>("rcpn::machines::stallcause_escape_guard");
    return r;
  }();
  return reg;
}

void bind_stallcause_context(const core::Net& net, StallCauseMachine& m) {
  m.ty_parker = net.find_type("Parker");
  m.ty_worker = net.find_type("Worker");
  m.into = net.find_place("PA");
}

StallCauseModel::StallCauseModel(std::uint64_t to_emit, core::EngineOptions options)
    : sim_(
          "StallCause", options,
          [this](model::ModelBuilder<StallCauseMachine>& b, StallCauseMachine&) {
            b.use_delegates(stallcause_delegates());
            const model::StageHandle sa = b.add_stage("PA", 1);
            const model::StageHandle sb = b.add_stage("PB", 1);
            const model::StageHandle sc = b.add_stage("PC", 1);
            pa_ = b.add_place("PA", sa);
            pb_ = b.add_place("PB", sb);
            pc_ = b.add_place("PC", sc);
            const model::TypeHandle parker = b.add_type("Parker");
            const model::TypeHandle worker = b.add_type("Worker");

            // Parker: straight into PB, then parked there until the ticker
            // releases it — the capacity pressure every worker sees.
            b.add_transition("PK.move", parker).from(pa_).to(pb_);
            b.add_transition("PK.exit", parker)
                .from(pb_)
                .guard_ref("rcpn::machines::stallcause_park_exit_guard")
                .to(b.end());

            // Worker in PA: candidate 0 is capacity-rejected (PB full),
            // candidate 1 is guard-rejected (until kEscapeAt) — the same
            // cycle, the same place, two different causes. Last one wins.
            b.add_transition("W.block", worker).from(pa_, /*priority=*/0).to(pb_);
            b.add_transition("W.escape", worker)
                .from(pa_, /*priority=*/1)
                .guard_ref("rcpn::machines::stallcause_escape_guard")
                .to(pc_);
            // Safety drain for a worker that ever does land in PB (never in
            // the golden workload: all workers escape before the parker
            // leaves) — keeps the net deadlock-free under other schedules.
            b.add_transition("W.drain", worker)
                .from(pb_)
                .guard_ref("rcpn::machines::stallcause_park_exit_guard")
                .to(b.end());
            b.add_transition("W.retire", worker).from(pc_).to(b.end());

            // Instruction-independent sub-net: the per-cycle ticker and the
            // one-token-per-cycle fetch.
            b.add_independent_transition("tick").action_ref(
                "rcpn::machines::stallcause_tick_action");
            b.add_independent_transition("fetch")
                .guard_ref("rcpn::machines::stallcause_fetch_guard")
                .action_ref("rcpn::machines::stallcause_fetch_action")
                .to(pa_);
          },
          StallCauseMachine{to_emit}) {
  bind_stallcause_context(sim_.net(), sim_.machine());
}

std::uint64_t StallCauseModel::run(std::uint64_t max_cycles) {
  return sim_.drain(
      [](const StallCauseMachine& m) { return m.emitted >= m.to_emit; }, max_cycles);
}

GoldenRunResult golden_finish_stallcause(StallCauseModel& sim) {
  GoldenRunResult r;
  record_golden_retires(sim.engine(), r.trace);
  sim.run();
  r.stats = sim.engine().stats();
  return r;
}

GoldenRunResult golden_run_stallcause(core::EngineOptions options) {
  StallCauseModel sim(4, options);
  return golden_finish_stallcause(sim);
}

void golden_inspect_stallcause(core::EngineOptions options, const GoldenInspectFn& fn) {
  StallCauseModel sim(4, options);
  fn(sim.net(), sim.engine());
}

namespace {

class StallCauseSession final : public SessionBase {
 public:
  explicit StallCauseSession(core::EngineOptions options) : sim_(4, options) {
    record_golden_retires(sim_.engine(), trace_);
  }

  core::Engine& engine() override { return sim_.engine(); }

  bool advance(std::uint64_t cycles) override {
    if (finished()) return false;
    sim_.run(cycles);
    return !finished();
  }

  std::string machine_key() const override { return "stallcause"; }
  std::string workload_id() const override { return "golden-4"; }

  void save_machine(ckpt::StateWriter& w, const ckpt::RefCoder&) const override {
    const StallCauseMachine& m = sim_.machine();
    w.begin("stallcause")
        .field("emitted", m.emitted)
        .field("counter", m.counter)
        .end();
  }

  void restore_machine(ckpt::StateReader& r, const ckpt::RefCoder&) override {
    StallCauseMachine& m = sim_.machine();
    r.next("stallcause");
    m.emitted = r.get_u64("emitted");
    m.counter = r.get_u64("counter");
  }

 private:
  bool finished() {
    return sim_.engine().stopped() ||
           (sim_.machine().emitted >= sim_.machine().to_emit &&
            sim_.engine().tokens_in_flight() == 0);
  }

  StallCauseModel sim_;
};

}  // namespace

std::unique_ptr<GoldenSession> golden_session_stallcause(core::EngineOptions options) {
  return std::make_unique<StallCauseSession>(options);
}

}  // namespace rcpn::machines
