// Tomasulo-style out-of-order core as an RCPN — the extension example the
// paper's technical report ([5]) describes ("RCPN model of the Tomasulo
// algorithm"). Demonstrates three capabilities the in-order models do not:
//
//  * a multi-capacity pipeline stage acting as a reservation station: tokens
//    *wait inside* the RS place until their operands arrive, and any ready
//    token may fire — out-of-order issue falls out of the enabling rule;
//  * register renaming via the multi-writer register file (paper §3.1: "the
//    implementation of these interfaces may vary based on architectural
//    features such as register renaming"): multiple in-flight writers of the
//    same architectural register are legal, consumers forward from the
//    newest;
//  * a common data bus modeled as a unit-capacity stage (CDB) that
//    serializes result broadcast/writeback.
//
// The ISA is the Fig 4(b) ALU class (op, d, s1, s2). Declared through
// model::ModelBuilder with TomasuloMachine as the typed context.
#pragma once

#include "isa/decoder.hpp"
#include "machines/fig5_processor.hpp"  // Fig5Instr
#include "machines/golden_trace.hpp"
#include "model/simulator.hpp"
#include "regfile/reg_ref.hpp"

namespace rcpn::machines {

/// Machine context: architectural state, decode binding, and the OoO-issue
/// observation counters the tests read.
struct TomasuloMachine {
  static constexpr unsigned kNumRegs = 8;

  TomasuloMachine();
  TomasuloMachine(const TomasuloMachine&) = delete;
  TomasuloMachine& operator=(const TomasuloMachine&) = delete;

  void load(std::vector<Fig5Instr> p);

  regfile::RegisterFile rf;
  isa::DecodeCache dcache;
  std::vector<Fig5Instr> program;
  std::uint32_t pc = 0;
  std::uint32_t last_exec_seq = 0;
  bool observed_ooo = false;

  // Filled by the model description, consumed by the decode binding.
  core::TypeId ty_alu = core::kNoType;
  core::PlaceId fetch_into = core::kNoPlace;

  struct Payload;

 private:
  void bind(isa::DecodeCache::Entry& e);
};

// -- named delegates (referenced by symbol in generated simulator sources) ----
bool tomasulo_issue_guard(TomasuloMachine& m, core::FireCtx& ctx);
void tomasulo_issue_action(TomasuloMachine& m, core::FireCtx& ctx);
bool tomasulo_exec_guard(TomasuloMachine& m, core::FireCtx& ctx);
void tomasulo_exec_action(TomasuloMachine& m, core::FireCtx& ctx);
void tomasulo_bcast_action(TomasuloMachine& m, core::FireCtx& ctx);
void tomasulo_wb_action(TomasuloMachine& m, core::FireCtx& ctx);
bool tomasulo_fetch_guard(TomasuloMachine& m, core::FireCtx& ctx);
void tomasulo_fetch_action(TomasuloMachine& m, core::FireCtx& ctx);

/// The Tomasulo DelegateRegistry: symbol -> typed binding for every delegate
/// above, plus the emission metadata (machine type, header).
const desc::DelegateRegistry& tomasulo_delegates();

/// Fill the machine-context fields the decode binding reads by name from the
/// lowered net — shared by both construction paths.
void bind_tomasulo_context(const core::Net& net, TomasuloMachine& m);

/// Golden-workload runner/inspector (key "tomasulo"): the fixed
/// six-instruction dependent/independent mix of tests/golden/tomasulo.trace.
GoldenRunResult golden_run_tomasulo(core::EngineOptions options);
void golden_inspect_tomasulo(core::EngineOptions options, const GoldenInspectFn& fn);

/// Checkpointable golden session (same six-instruction workload, advanceable
/// in cycle chunks; see machines/golden_trace.hpp).
std::unique_ptr<GoldenSession> golden_session_tomasulo(core::EngineOptions options);

class TomasuloCore;

/// The golden workload itself (trace recording + load + run + stats),
/// factored out so the describe-callback and description-loaded construction
/// paths run byte-identical work.
GoldenRunResult golden_finish_tomasulo(TomasuloCore& sim);

class TomasuloCore {
 public:
  static constexpr unsigned kNumRegs = TomasuloMachine::kNumRegs;

  /// `rs_entries`: reservation-station capacity; `num_fus`: execute slots.
  explicit TomasuloCore(unsigned rs_entries = 4, unsigned num_fus = 2,
                        core::EngineOptions options = {});

  /// Model-as-data construction: the same machine, loaded from a serialized
  /// description (RS/FU capacities come from the description's stages).
  /// Defined in machines/desc_machines.cpp.
  TomasuloCore(const desc::Description& d, const desc::DelegateRegistry& registry,
               core::EngineOptions options);

  void load(std::vector<Fig5Instr> program) { sim_.load(std::move(program)); }
  std::uint64_t run(std::uint64_t max_cycles = 1u << 20);

  std::uint32_t reg(unsigned i) const { return sim_.machine().rf.read_cell(i); }
  void set_reg(unsigned i, std::uint32_t v) { sim_.machine().rf.write_cell(i, v); }

  core::Net& net() { return sim_.net(); }
  core::Engine& engine() { return sim_.engine(); }
  TomasuloMachine& machine() { return sim_.machine(); }
  const TomasuloMachine& machine() const { return sim_.machine(); }

  /// Did any instruction begin execution before an older one? (proof of
  /// out-of-order issue for the tests)
  bool observed_ooo_issue() const { return sim_.machine().observed_ooo; }

 private:
  void describe(model::ModelBuilder<TomasuloMachine>& b, TomasuloMachine& m,
                unsigned rs_entries, unsigned num_fus);

  model::Simulator<TomasuloMachine> sim_;
};

}  // namespace rcpn::machines
