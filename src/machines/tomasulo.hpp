// Tomasulo-style out-of-order core as an RCPN — the extension example the
// paper's technical report ([5]) describes ("RCPN model of the Tomasulo
// algorithm"). Demonstrates three capabilities the in-order models do not:
//
//  * a multi-capacity pipeline stage acting as a reservation station: tokens
//    *wait inside* the RS place until their operands arrive, and any ready
//    token may fire — out-of-order issue falls out of the enabling rule;
//  * register renaming via the multi-writer register file (paper §3.1: "the
//    implementation of these interfaces may vary based on architectural
//    features such as register renaming"): multiple in-flight writers of the
//    same architectural register are legal, consumers forward from the
//    newest;
//  * a common data bus modeled as a unit-capacity stage (CDB) that
//    serializes result broadcast/writeback.
//
// The ISA is the Fig 4(b) ALU class (op, d, s1, s2).
#pragma once

#include "core/engine.hpp"
#include "isa/decoder.hpp"
#include "machines/fig5_processor.hpp"  // Fig5Instr
#include "regfile/reg_ref.hpp"

namespace rcpn::machines {

class TomasuloCore {
 public:
  static constexpr unsigned kNumRegs = 8;

  /// `rs_entries`: reservation-station capacity; `num_fus`: execute slots.
  explicit TomasuloCore(unsigned rs_entries = 4, unsigned num_fus = 2);

  void load(std::vector<Fig5Instr> program);  // ALU instructions only
  std::uint64_t run(std::uint64_t max_cycles = 1u << 20);

  std::uint32_t reg(unsigned i) const { return rf_.read_cell(i); }
  void set_reg(unsigned i, std::uint32_t v) { rf_.write_cell(i, v); }

  core::Net& net() { return net_; }
  core::Engine& engine() { return eng_; }

  /// Did any instruction begin execution before an older one? (proof of
  /// out-of-order issue for the tests)
  bool observed_ooo_issue() const { return observed_ooo_; }

 private:
  struct Payload;
  void build();
  void bind(isa::DecodeCache::Entry& e);

  core::Net net_;
  regfile::RegisterFile rf_;
  isa::DecodeCache dcache_;
  core::Engine eng_;
  std::vector<Fig5Instr> program_;
  std::uint32_t pc_ = 0;
  unsigned rs_entries_;
  unsigned num_fus_;
  std::uint32_t last_exec_seq_ = 0;
  bool observed_ooo_ = false;

  core::TypeId ty_alu_ = core::kNoType;
  core::PlaceId disp_ = core::kNoPlace, rs_ = core::kNoPlace, ex_ = core::kNoPlace,
                cdb_ = core::kNoPlace;
};

}  // namespace rcpn::machines
