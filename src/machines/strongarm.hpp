// StrongArm (SA-110) RCPN model: the paper's "simple five stage pipeline"
// (§5). Stages F, D, E, M, W with unit-capacity latches; operands issue at D
// with full bypass from the E and M output latches; no branch prediction
// (sequential fetch, redirect + fetch-side squash when a branch resolves in
// E). Six operation-class sub-nets, as in the paper's model — declared
// through model::ModelBuilder over the shared ArmPipeMachine context.
#pragma once

#include "machines/arm_machine.hpp"
#include "machines/golden_trace.hpp"
#include "model/simulator.hpp"

namespace rcpn::machines {

struct RunResult {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;  // retired architectural instructions
  double cpi = 0.0;
  std::string output;
  int exit_code = 0;
  bool exited = false;
  std::uint64_t icache_misses = 0;
  std::uint64_t dcache_misses = 0;
  std::uint64_t mispredicts = 0;
  double icache_hit_ratio = 0.0;
  double dcache_hit_ratio = 0.0;
};

struct StrongArmConfig {
  mem::MemorySystemConfig mem;  // defaults set in the constructor
  core::EngineOptions engine;
  /// Ablation: re-decode and re-bind on every fetch (no token cache).
  bool decode_cache_bypass = false;

  StrongArmConfig();
};

class StrongArmSim {
 public:
  explicit StrongArmSim(StrongArmConfig config = StrongArmConfig());

  /// Model-as-data construction: the same pipeline, loaded from a serialized
  /// description. `config.engine` selects the backend/schedule knobs (fold
  /// the description's own options in with desc::engine_options first).
  /// Defined in machines/desc_machines.cpp.
  StrongArmSim(const desc::Description& d, const desc::DelegateRegistry& registry,
               StrongArmConfig config);

  /// Run `program` to completion (SWI exit) or `max_cycles`.
  RunResult run(const sys::Program& program, std::uint64_t max_cycles = ~0ull);

  /// Checkpoint-session support: load `program` (same ordering as run())
  /// without running anything.
  void begin(const sys::Program& program);
  /// Continue an in-progress run for up to `cycles` more cycles.
  void advance(std::uint64_t cycles) { sim_.run(cycles); }

  core::Net& net() { return sim_.net(); }
  core::Engine& engine() { return sim_.engine(); }
  ArmMachine& machine() { return sim_.machine().m; }
  const ArmMachine& machine() const { return sim_.machine().m; }

 private:
  void describe(model::ModelBuilder<ArmPipeMachine>& b, ArmPipeMachine& mc);

  StrongArmConfig cfg_;
  model::Simulator<ArmPipeMachine> sim_;
};

/// Collect a RunResult from an engine + machine after a run.
RunResult collect_result(const core::Engine& eng, const ArmMachine& m);

/// Fill the pipeline-shape environment (forwarding sources, flush/drain
/// sets, fetch place) by name from the lowered net — shared by the
/// describe-callback and description-loaded construction paths.
void bind_strongarm_context(const core::Net& net, ArmPipeMachine& mc);

/// Golden-workload runner/inspector (key "strongarm_crc"): a fixed 1500-cycle
/// window of the crc kernel — long enough to cover icache/dcache misses,
/// hazards and branches, small enough to check in.
GoldenRunResult golden_run_strongarm_crc(core::EngineOptions options);
void golden_inspect_strongarm_crc(core::EngineOptions options,
                                  const GoldenInspectFn& fn);

/// Checkpointable golden session (same crc ×1 workload under the same
/// 1500-cycle budget; see machines/golden_trace.hpp).
std::unique_ptr<GoldenSession> golden_session_strongarm_crc(
    core::EngineOptions options);

/// The golden workload itself (trace recording + crc window + stats),
/// factored out so both construction paths run byte-identical work.
GoldenRunResult golden_finish_strongarm_crc(StrongArmSim& sim);

}  // namespace rcpn::machines
