// Golden-workload runner: the ONE definition of "run machine X on its small
// fixed workload and record the cycle-stamped retire trace".
//
// Three consumers share it so they can never drift apart:
//  * tests/test_golden_traces.cpp — diffs both library backends against the
//    checked-in tests/golden/*.trace files;
//  * the rcpn_emit tool (examples/generated/) — builds the machine to lower
//    and emit its standalone generated simulator;
//  * generated_main() — the entry point emitted into every generated
//    simulator: runs the same workload on Backend::generated and prints or
//    diffs the same trace format (the CI generate→compile→verify gate).
//
// Machine keys: fig2, fig5, tomasulo, strongarm_crc, xscale_adpcm.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/engine.hpp"

namespace rcpn::machines {

/// One retirement: the cycle it happened in, the instruction's pc and its
/// dynamic sequence number — the full observable timing behaviour.
struct GoldenRetireEvent {
  core::Cycle cycle = 0;
  std::uint64_t pc = 0;
  std::uint32_t seq = 0;
  bool operator==(const GoldenRetireEvent&) const = default;
};

/// The five machine keys, in canonical order.
const std::vector<std::string>& golden_machine_keys();

/// Model (net) name for a machine key, e.g. "fig2" -> "Fig2". Throws on an
/// unknown key.
std::string golden_model_name(const std::string& key);

/// Construct machine `key`, run its fixed golden workload on the engine
/// `options` selects, and return the retire trace. Throws on an unknown key.
std::vector<GoldenRetireEvent> run_golden_machine(const std::string& key,
                                                  core::EngineOptions options);

/// Construct machine `key` (engine built, workload NOT run) and hand its net
/// and engine to `fn` — the emitter's hook for lowering a model without
/// simulating it.
void inspect_golden_machine(const std::string& key, core::EngineOptions options,
                            const std::function<void(core::Net&, core::Engine&)>& fn);

// -- trace file format (tests/golden/*.trace) ---------------------------------

/// Render a trace in golden format: a `# name ...` header line, then one
/// `cycle pc(hex) seq` line per retirement.
std::string format_golden_trace(const std::string& name,
                                const std::vector<GoldenRetireEvent>& trace);

/// Parse a golden file; false on a missing or malformed file.
bool load_golden_trace(const std::string& path, std::vector<GoldenRetireEvent>& out);

/// Empty string if equal; otherwise a message naming the first diverging
/// retirement and the cycle it happened in.
std::string diff_golden_traces(const std::vector<GoldenRetireEvent>& golden,
                               const std::vector<GoldenRetireEvent>& got);

/// Entry point of a generated simulator binary (gen::emit_simulator emits a
/// main() forwarding here). Runs `machine_key`'s golden workload on
/// Backend::generated. Default: print the trace (golden format) to stdout.
/// `--golden FILE`: diff against FILE instead; exit 1 naming the first
/// diverging cycle. `--backend compiled|interpreted`: run a library backend
/// instead (escape hatch for A/B timing).
int generated_main(int argc, char** argv, const std::string& machine_key);

}  // namespace rcpn::machines
