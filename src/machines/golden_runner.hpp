// Golden-workload runner: the ONE definition of "run machine X on its small
// fixed workload and record the cycle-stamped retire trace".
//
// The trace format, diff and CLI live in machines/golden_trace.hpp; the
// per-machine runners (golden_run_fig2, golden_run_strongarm_crc, ...) live
// next to their machines so a freestanding generated simulator can inline
// exactly one of them. This header adds the key-indexed dispatch the
// machine-generic consumers share:
//  * tests/test_golden_traces.cpp / tests/test_freestanding.cpp — diff the
//    library backends against the checked-in tests/golden/*.trace files;
//  * the rcpn_emit tool (examples/generated/) — builds the machine to lower
//    and emit its standalone generated simulator;
//  * generated_main() — the entry point emitted into every *linked-mode*
//    generated simulator (freestanding artifacts call golden_cli_main with
//    their machine's runner directly and never touch this dispatch).
//
// Machine keys: fig2, fig5, tomasulo, strongarm_crc, xscale_adpcm, stallcause.
#pragma once

#include <string>
#include <vector>

#include "machines/golden_trace.hpp"

namespace rcpn::machines {

/// The golden machine keys, in canonical order.
const std::vector<std::string>& golden_machine_keys();

/// Model (net) name for a machine key, e.g. "fig2" -> "Fig2". Throws on an
/// unknown key.
std::string golden_model_name(const std::string& key);

/// Construct machine `key`, run its fixed golden workload on the engine
/// `options` selects, and return the retire trace. Throws on an unknown key.
std::vector<GoldenRetireEvent> run_golden_machine(const std::string& key,
                                                  core::EngineOptions options);

/// Same, returning the trace together with the engine's end-of-run
/// statistics (the four-way differential harness compares both).
GoldenRunResult run_golden_machine_full(const std::string& key,
                                        core::EngineOptions options);

/// Construct machine `key` (engine built, workload NOT run) and hand its net
/// and engine to `fn` — the emitter's hook for lowering a model without
/// simulating it.
void inspect_golden_machine(const std::string& key, core::EngineOptions options,
                            const GoldenInspectFn& fn);

/// Construct machine `key` as a checkpointable golden session (workload
/// loaded, nothing run) — the snapshot/restore entry point for the golden
/// machines. Throws on an unknown key.
std::unique_ptr<GoldenSession> make_golden_session(const std::string& key,
                                                   core::EngineOptions options);

// -- emission metadata (rcpn_emit --freestanding) -----------------------------

/// C++ expression calling machine `key`'s golden runner with an
/// `options` variable in scope, e.g. "rcpn::machines::golden_run_fig2(options)".
std::string golden_run_expr(const std::string& key);

/// C++ expression constructing machine `key`'s golden session with an
/// `options` variable in scope — stamped into freestanding mains so emitted
/// binaries support --checkpoint-*/--restore too.
std::string golden_session_expr(const std::string& key);

/// Repo-relative header declaring that runner (and the machine it
/// constructs), e.g. "machines/simple_pipeline.hpp".
std::string golden_run_header(const std::string& key);

/// Entry point of a linked-mode generated simulator binary
/// (gen::emit_simulator emits a main() forwarding here). Thin wrapper over
/// golden_cli_main with machine `key`'s runner and default options.
int generated_main(int argc, char** argv, const std::string& machine_key);

}  // namespace rcpn::machines
