#include "machines/strongarm.hpp"

namespace rcpn::machines {

using arm::OpClass;
using core::FireCtx;

StrongArmConfig::StrongArmConfig() {
  // SA-110: 16 KiB / 32-way / 32 B-line caches; ~180 ns memory at 200 MHz.
  mem.icache = {16 * 1024, 32, 32, 1, 24, true};
  mem.dcache = {16 * 1024, 32, 32, 1, 24, true};
}

StrongArmSim::StrongArmSim(StrongArmConfig config)
    : cfg_(std::move(config)),
      net_("StrongArm"),
      // multi_writer: the SA-110 is in-order with a single pipe, so
      // writebacks are naturally ordered and back-to-back writers of the
      // same register (most importantly consecutive CPSR setters in
      // compare/branch loops) do not stall — a single-writer scoreboard
      // would over-serialize them by the full pipeline depth.
      m_(ArmMachine::Config{cfg_.mem, regfile::WritePolicy::multi_writer}),
      eng_(net_, &m_, cfg_.engine) {
  build();
}

void StrongArmSim::build() {
  const core::StageId sFD = net_.add_stage("FD", 1);
  const core::StageId sDE = net_.add_stage("DE", 1);
  const core::StageId sEM = net_.add_stage("EM", 1);
  const core::StageId sMW = net_.add_stage("MW", 1);
  fd_ = net_.add_place("FD", sFD);
  de_ = net_.add_place("DE", sDE);
  em_ = net_.add_place("EM", sEM);
  mw_ = net_.add_place("MW", sMW);

  // ALU results forward out of EM in the same cycle (E->D bypass, 0-bubble
  // back-to-back ALU). MW stays on the engine's default two-list analysis:
  // load/multiply results become visible one cycle after entering MW, giving
  // the SA-110's one-cycle load-use penalty.
  net_.stage(sEM).force_two_list(false);

  env_ = PipeEnv{&m_,
                 /*fwd=*/{em_, mw_},
                 /*flush_on_redirect=*/{sFD},
                 /*drain=*/{de_, em_, mw_},
                 /*use_predictor=*/false};

  // Raw delegates: the generated-simulator shape — one indirect call per
  // guard/action, environment passed as a pointer.
  const auto g_issue = +[](void* env, FireCtx& ctx) {
    return issue_guard(*static_cast<PipeEnv*>(env), ctx);
  };
  const auto a_issue = +[](void* env, FireCtx& ctx) {
    issue_action(*static_cast<PipeEnv*>(env), ctx);
  };
  const auto a_exec = +[](void* env, FireCtx& ctx) {
    execute_action(*static_cast<PipeEnv*>(env), ctx);
  };
  const auto a_mem = +[](void* env, FireCtx& ctx) {
    mem_action(*static_cast<PipeEnv*>(env), ctx, /*publish=*/true);
  };
  const auto a_wb = +[](void* env, FireCtx& ctx) {
    wb_action(*static_cast<PipeEnv*>(env), ctx);
  };

  for (unsigned c = 0; c < arm::kNumOpClasses; ++c) {
    const auto cls = static_cast<OpClass>(c);
    const std::string name = arm::op_class_name(cls);
    const core::TypeId ty = net_.add_type(name);
    assert(ty == static_cast<core::TypeId>(c));
    (void)ty;

    net_.add_transition("D." + name, ty)
        .from(fd_)
        .guard(g_issue, &env_)
        .action(a_issue, &env_)
        .to(de_)
        .reads_state(em_)
        .reads_state(mw_);
    net_.add_transition("E." + name, ty).from(de_).action(a_exec, &env_).to(em_);
    net_.add_transition("M." + name, ty).from(em_).action(a_mem, &env_).to(mw_);
    net_.add_transition("W." + name, ty)
        .from(mw_)
        .action(a_wb, &env_)
        .to(net_.end_place());
  }

  net_.add_independent_transition("F")
      .guard(+[](void* env, FireCtx&) {
        return !static_cast<StrongArmSim*>(env)->m_.sys.exited();
      }, this)
      .action(+[](void* env, FireCtx& ctx) {
        auto* self = static_cast<StrongArmSim*>(env);
        fetch_action(self->env_, ctx, self->fd_);
      }, this)
      .to(fd_);

  eng_.build();
}

RunResult StrongArmSim::run(const sys::Program& program, std::uint64_t max_cycles) {
  // Drain leftover tokens from a previous run *before* load_program clears
  // the decode cache that owns them.
  eng_.reset();
  m_.load_program(program);
  m_.dcache.set_bypass(cfg_.decode_cache_bypass);
  eng_.run(max_cycles);
  return collect_result(eng_, m_);
}

RunResult collect_result(const core::Engine& eng, const ArmMachine& m) {
  RunResult r;
  r.cycles = eng.stats().cycles;
  r.instructions = eng.stats().retired;
  r.cpi = eng.stats().cpi();
  r.output = m.sys.output();
  r.exit_code = m.sys.exit_code();
  r.exited = m.sys.exited();
  r.icache_misses = m.mem.icache().stats().misses;
  r.dcache_misses = m.mem.dcache().stats().misses;
  r.icache_hit_ratio = m.mem.icache().stats().hit_ratio();
  r.dcache_hit_ratio = m.mem.dcache().stats().hit_ratio();
  r.mispredicts = m.mispredicts;
  return r;
}

}  // namespace rcpn::machines
