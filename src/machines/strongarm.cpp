#include "machines/strongarm.hpp"

#include <cassert>

#include "desc/delegate_registry.hpp"
#include "machines/golden_session.hpp"
#include "workloads/workloads.hpp"

namespace rcpn::machines {

using arm::OpClass;
using core::FireCtx;

StrongArmConfig::StrongArmConfig() {
  // SA-110: 16 KiB / 32-way / 32 B-line caches; ~180 ns memory at 200 MHz.
  mem.icache = {16 * 1024, 32, 32, 1, 24, true};
  mem.dcache = {16 * 1024, 32, 32, 1, 24, true};
}

StrongArmSim::StrongArmSim(StrongArmConfig config)
    : cfg_(std::move(config)),
      sim_(
          "StrongArm", cfg_.engine,
          [this](model::ModelBuilder<ArmPipeMachine>& b, ArmPipeMachine& mc) {
            describe(b, mc);
          },
          // multi_writer: the SA-110 is in-order with a single pipe, so
          // writebacks are naturally ordered and back-to-back writers of the
          // same register (most importantly consecutive CPSR setters in
          // compare/branch loops) do not stall — a single-writer scoreboard
          // would over-serialize them by the full pipeline depth.
          ArmMachine::Config{cfg_.mem, regfile::WritePolicy::multi_writer}) {
  bind_strongarm_context(sim_.net(), sim_.machine());
}

void bind_strongarm_context(const core::Net& net, ArmPipeMachine& mc) {
  mc.env.fwd = {net.find_place("EM"), net.find_place("MW")};
  mc.env.flush_on_redirect = {net.find_stage("FD")};
  mc.env.drain = {net.find_place("DE"), net.find_place("EM"), net.find_place("MW")};
  mc.env.fetch_into = net.find_place("FD");
  mc.env.use_predictor = false;
}

void StrongArmSim::describe(model::ModelBuilder<ArmPipeMachine>& b, ArmPipeMachine&) {
  b.use_delegates(arm_pipe_delegates());
  const model::StageHandle sFD = b.add_stage("FD", 1);
  const model::StageHandle sDE = b.add_stage("DE", 1);
  const model::StageHandle sEM = b.add_stage("EM", 1);
  const model::StageHandle sMW = b.add_stage("MW", 1);
  const model::PlaceHandle fd = b.add_place("FD", sFD);
  const model::PlaceHandle de = b.add_place("DE", sDE);
  const model::PlaceHandle em = b.add_place("EM", sEM);
  const model::PlaceHandle mw = b.add_place("MW", sMW);

  // ALU results forward out of EM in the same cycle (E->D bypass, 0-bubble
  // back-to-back ALU). MW stays on the engine's default two-list analysis:
  // load/multiply results become visible one cycle after entering MW, giving
  // the SA-110's one-cycle load-use penalty.
  b.force_two_list(sEM, false);

  // The per-class behaviours are shared *named* free functions over the typed
  // machine context (arm_machine.hpp), resolved through the shared
  // DelegateRegistry so the model is emittable as a standalone generated
  // simulator and loadable from a serialized description.
  for (unsigned c = 0; c < arm::kNumOpClasses; ++c) {
    const auto cls = static_cast<OpClass>(c);
    const std::string name = arm::op_class_name(cls);
    const model::TypeHandle ty = b.add_type(name);
    assert(ty.id() == static_cast<core::TypeId>(c));
    (void)ty;

    b.add_transition("D." + name, ty)
        .from(fd)
        .guard_ref("rcpn::machines::pipe_issue_guard")
        .action_ref("rcpn::machines::pipe_issue_action")
        .to(de)
        .reads_state(em)
        .reads_state(mw);
    b.add_transition("E." + name, ty)
        .from(de)
        .action_ref("rcpn::machines::pipe_execute_action")
        .to(em);
    b.add_transition("M." + name, ty)
        .from(em)
        .action_ref("rcpn::machines::pipe_mem_publish_action")
        .to(mw);
    b.add_transition("W." + name, ty)
        .from(mw)
        .action_ref("rcpn::machines::pipe_wb_action")
        .to(b.end());
  }

  b.add_independent_transition("F")
      .guard_ref("rcpn::machines::pipe_fetch_guard")
      .action_ref("rcpn::machines::pipe_fetch_action")
      .to(fd);
}

RunResult StrongArmSim::run(const sys::Program& program, std::uint64_t max_cycles) {
  // load() drains leftover tokens from a previous run *before* the machine's
  // load_program clears the decode cache that owns them.
  sim_.load(program);
  machine().dcache.set_bypass(cfg_.decode_cache_bypass);
  sim_.run(max_cycles);
  return collect_result(sim_.engine(), machine());
}

void StrongArmSim::begin(const sys::Program& program) {
  // Same ordering as run(): load() drains leftover tokens before load_program
  // clears the decode cache that owns them.
  sim_.load(program);
  machine().dcache.set_bypass(cfg_.decode_cache_bypass);
}

RunResult collect_result(const core::Engine& eng, const ArmMachine& m) {
  RunResult r;
  r.cycles = eng.stats().cycles;
  r.instructions = eng.stats().retired;
  r.cpi = eng.stats().cpi();
  r.output = m.sys.output();
  r.exit_code = m.sys.exit_code();
  r.exited = m.sys.exited();
  r.icache_misses = m.mem.icache().stats().misses;
  r.dcache_misses = m.mem.dcache().stats().misses;
  r.icache_hit_ratio = m.mem.icache().stats().hit_ratio();
  r.dcache_hit_ratio = m.mem.dcache().stats().hit_ratio();
  r.mispredicts = m.mispredicts;
  return r;
}

GoldenRunResult golden_finish_strongarm_crc(StrongArmSim& sim) {
  GoldenRunResult r;
  record_golden_retires(sim.engine(), r.trace);
  sim.run(workloads::build(*workloads::find("crc"), /*scale=*/1), /*max_cycles=*/1500);
  r.stats = sim.engine().stats();
  return r;
}

GoldenRunResult golden_run_strongarm_crc(core::EngineOptions options) {
  StrongArmConfig cfg;
  cfg.engine = options;
  StrongArmSim sim(cfg);
  return golden_finish_strongarm_crc(sim);
}

void golden_inspect_strongarm_crc(core::EngineOptions options,
                                  const GoldenInspectFn& fn) {
  StrongArmConfig cfg;
  cfg.engine = options;
  StrongArmSim sim(cfg);
  fn(sim.net(), sim.engine());
}

namespace {

class StrongArmCrcSession final : public SessionBase {
 public:
  explicit StrongArmCrcSession(core::EngineOptions options) : sim_(cfg_for(options)) {
    record_golden_retires(sim_.engine(), trace_);
    sim_.begin(workloads::build(*workloads::find("crc"), /*scale=*/1));
  }

  core::Engine& engine() override { return sim_.engine(); }

  bool advance(std::uint64_t cycles) override {
    if (finished()) return false;
    const std::uint64_t left = kBudget - sim_.engine().clock();
    sim_.advance(cycles < left ? cycles : left);
    return !finished();
  }

  std::string machine_key() const override { return "strongarm_crc"; }
  std::string workload_id() const override { return "crc-x1-1500"; }

  void save_machine(ckpt::StateWriter& w, const ckpt::RefCoder& refs) const override {
    save_arm_machine(w, sim_.machine(), refs);
  }
  void restore_machine(ckpt::StateReader& r, const ckpt::RefCoder& refs) override {
    restore_arm_machine(r, sim_.machine(), refs);
  }
  core::InstructionToken* materialize(std::uint64_t pc, std::uint32_t raw) override {
    return sim_.machine().dcache.get(static_cast<std::uint32_t>(pc), raw);
  }
  void save_token_extra(ckpt::StateWriter& w,
                        const core::InstructionToken& t) const override {
    save_arm_token_extra(w, t);
  }
  void restore_token_extra(ckpt::StateReader& r, core::InstructionToken& t) override {
    restore_arm_token_extra(r, t);
  }
  unsigned num_reg_refs(const core::InstructionToken& t) const override {
    return arm_num_reg_refs(t);
  }
  regfile::RegRef* reg_ref(const core::InstructionToken& t, unsigned i) const override {
    return arm_reg_ref(t, i);
  }

 private:
  static constexpr std::uint64_t kBudget = 1500;  // golden_finish max_cycles

  static StrongArmConfig cfg_for(core::EngineOptions options) {
    StrongArmConfig cfg;
    cfg.engine = options;
    return cfg;
  }

  bool finished() {
    return sim_.engine().stopped() || sim_.engine().clock() >= kBudget;
  }

  StrongArmSim sim_;
};

}  // namespace

std::unique_ptr<GoldenSession> golden_session_strongarm_crc(
    core::EngineOptions options) {
  return std::make_unique<StrongArmCrcSession>(options);
}

}  // namespace rcpn::machines
