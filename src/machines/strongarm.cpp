#include "machines/strongarm.hpp"

#include <cassert>

#include "workloads/workloads.hpp"

namespace rcpn::machines {

using arm::OpClass;
using core::FireCtx;

StrongArmConfig::StrongArmConfig() {
  // SA-110: 16 KiB / 32-way / 32 B-line caches; ~180 ns memory at 200 MHz.
  mem.icache = {16 * 1024, 32, 32, 1, 24, true};
  mem.dcache = {16 * 1024, 32, 32, 1, 24, true};
}

StrongArmSim::StrongArmSim(StrongArmConfig config)
    : cfg_(std::move(config)),
      sim_(
          "StrongArm", cfg_.engine,
          [this](model::ModelBuilder<ArmPipeMachine>& b, ArmPipeMachine& mc) {
            describe(b, mc);
          },
          // multi_writer: the SA-110 is in-order with a single pipe, so
          // writebacks are naturally ordered and back-to-back writers of the
          // same register (most importantly consecutive CPSR setters in
          // compare/branch loops) do not stall — a single-writer scoreboard
          // would over-serialize them by the full pipeline depth.
          ArmMachine::Config{cfg_.mem, regfile::WritePolicy::multi_writer}) {}

void StrongArmSim::describe(model::ModelBuilder<ArmPipeMachine>& b, ArmPipeMachine& mc) {
  b.emit_machine_type("rcpn::machines::ArmPipeMachine");
  b.emit_include("machines/arm_machine.hpp");
  const model::StageHandle sFD = b.add_stage("FD", 1);
  const model::StageHandle sDE = b.add_stage("DE", 1);
  const model::StageHandle sEM = b.add_stage("EM", 1);
  const model::StageHandle sMW = b.add_stage("MW", 1);
  const model::PlaceHandle fd = b.add_place("FD", sFD);
  const model::PlaceHandle de = b.add_place("DE", sDE);
  const model::PlaceHandle em = b.add_place("EM", sEM);
  const model::PlaceHandle mw = b.add_place("MW", sMW);

  // ALU results forward out of EM in the same cycle (E->D bypass, 0-bubble
  // back-to-back ALU). MW stays on the engine's default two-list analysis:
  // load/multiply results become visible one cycle after entering MW, giving
  // the SA-110's one-cycle load-use penalty.
  b.force_two_list(sEM, false);

  mc.env.fwd = {em.id(), mw.id()};
  mc.env.flush_on_redirect = {sFD.id()};
  mc.env.drain = {de.id(), em.id(), mw.id()};
  mc.env.fetch_into = fd.id();
  mc.env.use_predictor = false;

  // The per-class behaviours are shared *named* free functions over the typed
  // machine context (arm_machine.hpp), registered with their symbols so the
  // model is emittable as a standalone generated simulator.
  for (unsigned c = 0; c < arm::kNumOpClasses; ++c) {
    const auto cls = static_cast<OpClass>(c);
    const std::string name = arm::op_class_name(cls);
    const model::TypeHandle ty = b.add_type(name);
    assert(ty.id() == static_cast<core::TypeId>(c));
    (void)ty;

    b.add_transition("D." + name, ty)
        .from(fd)
        .guard_named<&pipe_issue_guard>("rcpn::machines::pipe_issue_guard")
        .action_named<&pipe_issue_action>("rcpn::machines::pipe_issue_action")
        .to(de)
        .reads_state(em)
        .reads_state(mw);
    b.add_transition("E." + name, ty)
        .from(de)
        .action_named<&pipe_execute_action>("rcpn::machines::pipe_execute_action")
        .to(em);
    b.add_transition("M." + name, ty)
        .from(em)
        .action_named<&pipe_mem_publish_action>("rcpn::machines::pipe_mem_publish_action")
        .to(mw);
    b.add_transition("W." + name, ty)
        .from(mw)
        .action_named<&pipe_wb_action>("rcpn::machines::pipe_wb_action")
        .to(b.end());
  }

  b.add_independent_transition("F")
      .guard_named<&pipe_fetch_guard>("rcpn::machines::pipe_fetch_guard")
      .action_named<&pipe_fetch_action>("rcpn::machines::pipe_fetch_action")
      .to(fd);
}

RunResult StrongArmSim::run(const sys::Program& program, std::uint64_t max_cycles) {
  // load() drains leftover tokens from a previous run *before* the machine's
  // load_program clears the decode cache that owns them.
  sim_.load(program);
  machine().dcache.set_bypass(cfg_.decode_cache_bypass);
  sim_.run(max_cycles);
  return collect_result(sim_.engine(), machine());
}

RunResult collect_result(const core::Engine& eng, const ArmMachine& m) {
  RunResult r;
  r.cycles = eng.stats().cycles;
  r.instructions = eng.stats().retired;
  r.cpi = eng.stats().cpi();
  r.output = m.sys.output();
  r.exit_code = m.sys.exit_code();
  r.exited = m.sys.exited();
  r.icache_misses = m.mem.icache().stats().misses;
  r.dcache_misses = m.mem.dcache().stats().misses;
  r.icache_hit_ratio = m.mem.icache().stats().hit_ratio();
  r.dcache_hit_ratio = m.mem.dcache().stats().hit_ratio();
  r.mispredicts = m.mispredicts;
  return r;
}

GoldenRunResult golden_run_strongarm_crc(core::EngineOptions options) {
  StrongArmConfig cfg;
  cfg.engine = options;
  StrongArmSim sim(cfg);
  GoldenRunResult r;
  record_golden_retires(sim.engine(), r.trace);
  sim.run(workloads::build(*workloads::find("crc"), /*scale=*/1), /*max_cycles=*/1500);
  r.stats = sim.engine().stats();
  return r;
}

void golden_inspect_strongarm_crc(core::EngineOptions options,
                                  const GoldenInspectFn& fn) {
  StrongArmConfig cfg;
  cfg.engine = options;
  StrongArmSim sim(cfg);
  fn(sim.net(), sim.engine());
}

}  // namespace rcpn::machines
