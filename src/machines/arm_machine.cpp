#include "machines/arm_machine.hpp"

#include <cassert>

#include "desc/delegate_registry.hpp"

namespace rcpn::machines {

using arm::Cond;
using arm::DecodedInstruction;
using arm::OpClass;
using core::FireCtx;
using core::InstructionToken;
using isa::kSlotDst;
using isa::kSlotFlags;
using isa::kSlotSrc1;
using isa::kSlotSrc2;
using isa::kSlotSrc3;
using regfile::ConstOperand;
using regfile::Operand;
using regfile::RegRef;

namespace {

constexpr std::uint32_t kNzcvMask =
    arm::kFlagN | arm::kFlagZ | arm::kFlagC | arm::kFlagV;

/// Does this load/store write its base register back?
bool ls_base_writeback(const DecodedInstruction& d) {
  return !d.pre_index || d.writeback;
}

/// LDM with the base in the register list suppresses the base writeback
/// (the loaded value wins) — mirrored in the ISS.
bool lsm_base_writeback(const DecodedInstruction& d) {
  if (!d.writeback) return false;
  if (d.is_load && (d.reg_list & (1u << d.rn))) return false;
  return true;
}

// Direct RegRef hazard helpers (RegRef is final: these devirtualize).
bool ref_ready(const RegRef* r, std::span<const core::PlaceId> fwd) {
  if (r->can_read()) return true;
  for (core::PlaceId p : fwd)
    if (r->can_read_in(p)) return true;
  return false;
}

std::uint32_t ref_peek(const RegRef* r, std::span<const core::PlaceId> fwd) {
  if (r->can_read()) return r->peek();
  for (core::PlaceId p : fwd)
    if (r->can_read_in(p)) return r->peek_in(p);
  assert(false && "ref_peek without ref_ready");
  return 0;
}

void ref_fetch(RegRef* r, std::span<const core::PlaceId> fwd) {
  if (r->can_read()) {
    r->read();
    return;
  }
  for (core::PlaceId p : fwd) {
    if (r->can_read_in(p)) {
      r->read_in(p);
      return;
    }
  }
  assert(false && "ref_fetch without ref_ready");
}

bool drained(const PipeEnv& env, core::Engine& eng) {
  for (core::PlaceId p : env.drain)
    if (eng.tokens_in_place(p) != 0) return false;
  return true;
}

}  // namespace

bool operand_ready(const Operand* op, std::span<const core::PlaceId> fwd) {
  if (op->can_read()) return true;
  for (core::PlaceId p : fwd)
    if (op->can_read_in(p)) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Machine context & decode binding
// ---------------------------------------------------------------------------

ArmMachine::ArmMachine(const Config& config)
    : rf(arm::kNumCells, config.policy),
      mem(config.mem),
      dcache([this](isa::DecodeCache::Entry& e) { bind(e); }) {
  rf.add_identity_registers(arm::kNumRegs);
  rf.add_register("cpsr", arm::kCpsrCell);
}

void ArmMachine::load_program(const sys::Program& program) {
  rf.reset();
  mem.memory().clear();
  mem.reset_timing();
  program.load_into(mem.memory());
  rf.write_cell(arm::kRegSp, program.initial_sp);
  pc = program.entry;
  sys.reset();
  // Keep decoded entries across reloads (paper §5: decode once, cache the
  // token): a changed encoding at a pc rebuilds via the raw check, and
  // entries whose token was mid-flight when the previous run stopped are
  // rebuilt via the stale flag. Only the dynamic state resets here.
  dcache.reset_runtime();
  if (bp) bp->reset();
  nullified_count = mispredicts = taken_branches = 0;
}

void ArmMachine::bind(isa::DecodeCache::Entry& e) {
  auto pl = std::make_unique<ArmPayload>();
  pl->d = arm::decode(e.raw, e.pc);
  const DecodedInstruction& d = pl->d;
  InstructionToken& t = e.token;
  t.type = static_cast<core::TypeId>(d.cls);

  const core::PlaceId* owner = &t.state;
  auto make_regref = [&](unsigned r) -> RegRef* {
    auto ref = std::make_unique<RegRef>();
    ref->bind(&rf, static_cast<regfile::RegisterId>(r), owner);
    RegRef* raw = ref.get();
    e.operands.push_back(std::move(ref));
    return raw;
  };
  auto make_const = [&](std::uint32_t v) -> Operand* {
    auto c = std::make_unique<ConstOperand>(v);
    Operand* raw = c.get();
    e.operands.push_back(std::move(c));
    return raw;
  };
  auto add_read = [&](RegRef* r) {
    assert(pl->n_reads < 4);
    pl->reads[pl->n_reads++] = r;
  };
  auto add_reserve = [&](RegRef* r) {
    assert(pl->n_reserves < 4);
    pl->reserves[pl->n_reserves++] = r;
  };
  // Register symbol -> RegRef (tracked in the issue plan); the architectural
  // pc reads as a decode-time constant (pc + 8) — per-instance partial
  // evaluation.
  auto src_operand = [&](std::uint8_t r) -> Operand* {
    if (r >= arm::kNumRegs) return make_const(0);
    if (r == arm::kRegPc) return make_const(e.pc + 8);
    RegRef* ref = make_regref(r);
    add_read(ref);
    return ref;
  };

  RegRef* flags = make_regref(arm::kCpsrCell);
  t.ops[kSlotFlags] = flags;
  t.ops[kSlotDst] = make_const(0);
  t.ops[kSlotSrc1] = make_const(0);
  t.ops[kSlotSrc2] = make_const(0);
  t.ops[kSlotSrc3] = make_const(0);

  pl->flags_ref = flags;
  pl->check_cond = d.cond != Cond::al;
  const bool rrx_offset = d.cls == OpClass::load_store && d.reg_offset &&
                          d.shift == arm::ShiftKind::rrx;
  pl->write_flags = d.sets_flags && d.cls != OpClass::swi;
  pl->read_flags =
      pl->check_cond || d.reads_carry() || rrx_offset || pl->write_flags;

  switch (d.cls) {
    case OpClass::data_proc: {
      if (d.writes_rd()) {
        RegRef* dst = make_regref(d.rd);
        t.ops[kSlotDst] = dst;
        add_reserve(dst);
      }
      t.ops[kSlotSrc1] = src_operand(d.rn);
      t.ops[kSlotSrc2] = d.imm_operand ? make_const(d.imm) : src_operand(d.rm);
      if (d.shift_by_reg) t.ops[kSlotSrc3] = src_operand(d.rs);
      break;
    }
    case OpClass::multiply: {
      RegRef* dst = make_regref(d.rd);
      t.ops[kSlotDst] = dst;
      add_reserve(dst);
      if (d.accumulate) t.ops[kSlotSrc1] = src_operand(d.rn);
      t.ops[kSlotSrc2] = src_operand(d.rm);
      t.ops[kSlotSrc3] = src_operand(d.rs);
      break;
    }
    case OpClass::load_store: {
      pl->has_pc = d.is_load && d.rd == arm::kRegPc;
      pl->base_wb_static = ls_base_writeback(d);
      if (d.is_load) {
        if (!pl->has_pc) {
          RegRef* dst = make_regref(d.rd);
          t.ops[kSlotDst] = dst;
          add_reserve(dst);
        }
      } else {
        t.ops[kSlotDst] = src_operand(d.rd);  // store data (str pc: pc+8)
      }
      t.ops[kSlotSrc1] = src_operand(d.rn);
      if (d.reg_offset) t.ops[kSlotSrc2] = src_operand(d.rm);
      if (pl->base_wb_static && d.rn != arm::kRegPc) {
        // The base RegRef was just added as a read; it is also reserved.
        add_reserve(static_cast<RegRef*>(t.ops[kSlotSrc1]));
      }
      pl->needs_class_guard = pl->has_pc;
      break;
    }
    case OpClass::load_store_multiple: {
      pl->has_pc = (d.reg_list & (1u << arm::kRegPc)) != 0;
      pl->base_wb_static = lsm_base_writeback(d);
      RegRef* base = make_regref(d.rn);
      t.ops[kSlotSrc1] = base;
      add_read(base);
      if (pl->base_wb_static) add_reserve(base);
      for (unsigned r = 0; r < arm::kRegPc; ++r)
        if (d.reg_list & (1u << r)) pl->list_refs.push_back(make_regref(r));
      pl->needs_class_guard = true;  // list hazards (+ drain for pop-to-pc)
      break;
    }
    case OpClass::branch: {
      if (d.link) {
        RegRef* dst = make_regref(arm::kRegLr);
        t.ops[kSlotDst] = dst;
        add_reserve(dst);
      }
      if (d.branch_via_reg) {
        t.ops[kSlotSrc1] = src_operand(d.rn);
        t.ops[kSlotSrc2] = d.imm_operand ? make_const(d.imm) : src_operand(d.rm);
        if (d.shift_by_reg) t.ops[kSlotSrc3] = src_operand(d.rs);
      }
      break;
    }
    case OpClass::swi: {
      t.ops[kSlotSrc1] = src_operand(0);
      t.ops[kSlotSrc2] = src_operand(1);
      pl->needs_class_guard = true;  // serializing drain
      break;
    }
    default:
      break;
  }

  t.payload = pl.get();
  e.payload = std::move(pl);
}

// ---------------------------------------------------------------------------
// Shared class behaviours
// ---------------------------------------------------------------------------

namespace {

/// Class-specific guard extras: LSM register lists and serializing drains.
bool class_guard_extra(const PipeEnv& env, FireCtx& ctx, const ArmPayload& p) {
  const DecodedInstruction& d = p.d;
  if (d.cls == OpClass::load_store_multiple) {
    for (RegRef* r : p.list_refs) {
      if (d.is_load) {
        if (!r->can_write()) return false;
      } else if (!ref_ready(r, env.fwd)) {
        return false;
      }
    }
  }
  if ((d.cls == OpClass::swi || p.has_pc) && !drained(env, *ctx.engine))
    return false;
  return true;
}

}  // namespace

bool issue_guard(const PipeEnv& env, FireCtx& ctx) {
  InstructionToken& t = *ctx.token;
  const ArmPayload& p = ArmMachine::payload(t);
  const std::span<const core::PlaceId> fwd(env.fwd);

  if (p.read_flags && !ref_ready(p.flags_ref, fwd)) return false;
  if (p.check_cond && !arm::cond_pass(p.d.cond, ref_peek(p.flags_ref, fwd)))
    return true;  // issues as a nullified bubble; no other hazards matter
  if (p.write_flags && !p.flags_ref->can_write()) return false;
  for (unsigned i = 0; i < p.n_reads; ++i)
    if (!ref_ready(p.reads[i], fwd)) return false;
  for (unsigned i = 0; i < p.n_reserves; ++i)
    if (!p.reserves[i]->can_write()) return false;
  if (p.needs_class_guard) return class_guard_extra(env, ctx, p);
  return true;
}

void issue_action(const PipeEnv& env, FireCtx& ctx) {
  InstructionToken& t = *ctx.token;
  ArmPayload& p = ArmMachine::payload(t);
  const DecodedInstruction& d = p.d;
  ArmMachine* m = env.m;
  const std::span<const core::PlaceId> fwd(env.fwd);

  if (p.read_flags) ref_fetch(p.flags_ref, fwd);
  p.nullified = p.check_cond && !arm::cond_pass(d.cond, p.flags_ref->value());
  if (p.nullified) {
    ++m->nullified_count;
    return;
  }

  for (unsigned i = 0; i < p.n_reads; ++i) ref_fetch(p.reads[i], fwd);

  // Class-specific issue work (addresses, burst plans, LSM list handling).
  switch (d.cls) {
    case OpClass::load_store: {
      const arm::LsAddress a =
          arm::ls_address(d, t.ops[kSlotSrc1]->value(), t.ops[kSlotSrc2]->value(),
                          p.flags_ref->value());
      p.ea = a.ea;
      p.base_after = a.rn_after;
      break;
    }
    case OpClass::load_store_multiple: {
      const arm::LsmPlan plan = arm::lsm_plan(d, t.ops[kSlotSrc1]->value());
      p.ea = plan.start;
      p.base_after = plan.rn_after;
      for (RegRef* r : p.list_refs) {
        if (d.is_load)
          r->reserve_write();
        else
          ref_fetch(r, fwd);
      }
      break;
    }
    default:
      break;
  }

  for (unsigned i = 0; i < p.n_reserves; ++i) p.reserves[i]->reserve_write();
  if (p.write_flags) p.flags_ref->reserve_write();
  if (d.cls == OpClass::branch && d.link)
    t.ops[kSlotDst]->set_value(static_cast<std::uint32_t>(t.pc) + 4);
}

namespace {

void resolve_branch(const PipeEnv& env, FireCtx& ctx) {
  InstructionToken& t = *ctx.token;
  ArmPayload& p = ArmMachine::payload(t);
  const DecodedInstruction& d = p.d;
  ArmMachine* m = env.m;
  p.resolved = true;

  bool taken = false;
  std::uint32_t actual_next = static_cast<std::uint32_t>(t.pc) + 4;
  if (!p.nullified) {
    taken = true;
    if (d.branch_via_reg) {
      Operand* fl = t.ops[kSlotFlags];
      const arm::DataProcOut out = arm::exec_dataproc(
          d, t.ops[kSlotSrc1]->value(), t.ops[kSlotSrc2]->value(),
          t.ops[kSlotSrc3]->value(), fl->value());
      actual_next = out.result & ~3u;
      if (out.writes_flags)
        fl->set_value((fl->value() & ~kNzcvMask) | out.nzcv);
    } else {
      actual_next = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(t.pc) + 8 + d.branch_offset);
    }
    ++m->taken_branches;
  }

  const bool mispredicted = actual_next != p.pred_next;
  if (m->bp) m->bp->update(static_cast<std::uint32_t>(t.pc), taken, actual_next,
                           mispredicted);
  if (mispredicted) {
    ++m->mispredicts;
    m->pc = actual_next;
    // Everything younger is still on the fetch side (in-order issue with
    // unit-capacity latches); squash it.
    for (core::StageId s : env.flush_on_redirect) ctx.engine->flush_stage(s);
  }
}

}  // namespace

void execute_action(const PipeEnv& env, FireCtx& ctx) {
  InstructionToken& t = *ctx.token;
  ArmPayload& p = ArmMachine::payload(t);
  const DecodedInstruction& d = p.d;

  if (d.cls == OpClass::branch) {
    resolve_branch(env, ctx);
    return;
  }
  if (p.nullified) return;

  switch (d.cls) {
    case OpClass::data_proc: {
      Operand* fl = t.ops[kSlotFlags];
      const arm::DataProcOut out = arm::exec_dataproc(
          d, t.ops[kSlotSrc1]->value(), t.ops[kSlotSrc2]->value(),
          t.ops[kSlotSrc3]->value(), fl->value());
      if (out.writes_rd) t.ops[kSlotDst]->set_value(out.result);
      if (out.writes_flags)
        fl->set_value((fl->value() & ~kNzcvMask) | out.nzcv);
      break;
    }
    case OpClass::multiply: {
      Operand* fl = t.ops[kSlotFlags];
      const arm::MulOut out =
          arm::exec_mul(d, t.ops[kSlotSrc2]->value(), t.ops[kSlotSrc3]->value(),
                        t.ops[kSlotSrc1]->value(), fl->value());
      p.result = out.result;  // published at the memory/M2 stage
      if (out.writes_flags)
        fl->set_value((fl->value() & ~kNzcvMask) | out.nzcv);
      // Early-terminating multiplier occupies the stage for extra cycles.
      t.next_delay = 1 + arm::mul_extra_cycles(t.ops[kSlotSrc3]->value());
      break;
    }
    case OpClass::swi: {
      const sys::SyscallResult res = env.m->sys.handle(
          {d.swi_imm, t.ops[kSlotSrc1]->value(), t.ops[kSlotSrc2]->value()},
          env.m->mem.memory());
      if (res.exited) ctx.engine->stop();
      break;
    }
    default:
      break;  // load/store address work happened at issue
  }
}

void mem_action(const PipeEnv& env, FireCtx& ctx, bool publish) {
  InstructionToken& t = *ctx.token;
  ArmPayload& p = ArmMachine::payload(t);
  const DecodedInstruction& d = p.d;
  ArmMachine* m = env.m;
  if (p.nullified) return;

  switch (d.cls) {
    case OpClass::load_store: {
      t.next_delay = m->mem.data_delay(p.ea, !d.is_load);
      mem::Memory& mm = m->mem.memory();
      if (d.is_load) {
        const std::uint32_t v = d.is_byte ? mm.read8(p.ea) : mm.read32(p.ea);
        if (p.has_pc) {
          p.loaded_pc = v & ~3u;
        } else {
          p.result = v;
          if (publish) t.ops[kSlotDst]->set_value(v);
        }
      } else {
        const std::uint32_t v = t.ops[kSlotDst]->value();
        if (d.is_byte)
          mm.write8(p.ea, static_cast<std::uint8_t>(v));
        else
          mm.write32(p.ea, v);
      }
      if (p.base_wb_static) t.ops[kSlotSrc1]->set_value(p.base_after);
      break;
    }
    case OpClass::load_store_multiple: {
      mem::Memory& mm = m->mem.memory();
      std::uint32_t addr = p.ea;
      std::uint32_t total = 0;
      for (RegRef* r : p.list_refs) {
        total += m->mem.data_delay(addr, !d.is_load);
        if (d.is_load)
          r->set_value(mm.read32(addr));
        else
          mm.write32(addr, r->value());
        addr += 4;
      }
      if (p.has_pc) {
        total += m->mem.data_delay(addr, !d.is_load);
        if (d.is_load)
          p.loaded_pc = mm.read32(addr) & ~3u;
        else
          mm.write32(addr, static_cast<std::uint32_t>(t.pc) + 8);
        addr += 4;
      }
      t.next_delay = total == 0 ? 1 : total;
      if (p.base_wb_static) t.ops[kSlotSrc1]->set_value(p.base_after);
      break;
    }
    case OpClass::multiply:
      if (publish) t.ops[kSlotDst]->set_value(p.result);
      break;
    default:
      break;
  }
}

void publish_action(const PipeEnv&, FireCtx& ctx) {
  InstructionToken& t = *ctx.token;
  ArmPayload& p = ArmMachine::payload(t);
  const DecodedInstruction& d = p.d;
  if (p.nullified) return;
  if (d.cls == OpClass::multiply ||
      (d.cls == OpClass::load_store && d.is_load && !p.has_pc))
    t.ops[kSlotDst]->set_value(p.result);
}

void wb_action(const PipeEnv& env, FireCtx& ctx) {
  InstructionToken& t = *ctx.token;
  ArmPayload& p = ArmMachine::payload(t);
  const DecodedInstruction& d = p.d;
  if (p.nullified) return;

  // Commit everything the issue plan reserved.
  for (unsigned i = 0; i < p.n_reserves; ++i) p.reserves[i]->writeback();
  if (p.write_flags) p.flags_ref->writeback();
  if (d.cls == OpClass::load_store_multiple && d.is_load)
    for (RegRef* r : p.list_refs) r->writeback();

  // Pop-to-pc / ldr pc: redirect once the loaded value commits. The issue
  // guard serialized the pipeline, so only fetch-side state needs squashing.
  if (p.has_pc && d.is_load) {
    env.m->pc = p.loaded_pc;
    for (core::StageId s : env.flush_on_redirect) ctx.engine->flush_stage(s);
  }
}

void fetch_action(const PipeEnv& env, FireCtx& ctx) {
  ArmMachine* m = env.m;
  if (m->sys.exited()) return;
  const std::uint32_t fpc = m->pc;
  const std::uint32_t raw = m->mem.memory().read32(fpc);
  InstructionToken* t = m->dcache.get(fpc, raw);
  ArmPayload& p = ArmMachine::payload(*t);
  p.nullified = false;
  p.resolved = false;

  std::uint32_t next = fpc + 4;
  if (env.use_predictor && m->bp) {
    const predictor::Prediction pred = m->bp->predict(fpc);
    if (pred.taken && pred.target_known) next = pred.target;
  }
  p.pred_next = next;
  m->pc = next;
  t->next_delay = m->mem.fetch_delay(fpc);
  ctx.engine->emit_instruction(t, env.fetch_into);
}

// -- named delegates over ArmPipeMachine --------------------------------------

bool pipe_issue_guard(ArmPipeMachine& m, FireCtx& ctx) {
  return issue_guard(m.env, ctx);
}

void pipe_issue_action(ArmPipeMachine& m, FireCtx& ctx) { issue_action(m.env, ctx); }

void pipe_execute_action(ArmPipeMachine& m, FireCtx& ctx) { execute_action(m.env, ctx); }

void pipe_mem_publish_action(ArmPipeMachine& m, FireCtx& ctx) {
  mem_action(m.env, ctx, /*publish=*/true);
}

void pipe_mem_action(ArmPipeMachine& m, FireCtx& ctx) {
  mem_action(m.env, ctx, /*publish=*/false);
}

void pipe_publish_action(ArmPipeMachine& m, FireCtx& ctx) { publish_action(m.env, ctx); }

void pipe_wb_action(ArmPipeMachine& m, FireCtx& ctx) { wb_action(m.env, ctx); }

bool pipe_fetch_guard(ArmPipeMachine& m, FireCtx&) { return !m.m.sys.exited(); }

void pipe_fetch_action(ArmPipeMachine& m, FireCtx& ctx) { fetch_action(m.env, ctx); }

const desc::DelegateRegistry& arm_pipe_delegates() {
  static const desc::DelegateRegistry reg = [] {
    desc::DelegateRegistry r("rcpn::machines::ArmPipeMachine",
                             {"machines/arm_machine.hpp"});
    auto d = r.bind<ArmPipeMachine>();
    d.guard<&pipe_issue_guard>("rcpn::machines::pipe_issue_guard");
    d.action<&pipe_issue_action>("rcpn::machines::pipe_issue_action");
    d.action<&pipe_execute_action>("rcpn::machines::pipe_execute_action");
    d.action<&pipe_mem_publish_action>("rcpn::machines::pipe_mem_publish_action");
    d.action<&pipe_mem_action>("rcpn::machines::pipe_mem_action");
    d.action<&pipe_publish_action>("rcpn::machines::pipe_publish_action");
    d.action<&pipe_wb_action>("rcpn::machines::pipe_wb_action");
    d.guard<&pipe_fetch_guard>("rcpn::machines::pipe_fetch_guard");
    d.action<&pipe_fetch_action>("rcpn::machines::pipe_fetch_action");
    return r;
  }();
  return reg;
}

}  // namespace rcpn::machines
