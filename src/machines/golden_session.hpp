// Shared plumbing of the per-machine golden sessions (golden_session_fig2,
// ...): every session owns its retire trace (hooked into the engine at
// construction, repopulated by read_checkpoint) and doubles as the machine's
// ckpt::MachineIO. Machine .cpp files include this next to their model and
// implement the per-machine pieces: the workload, the advance loop (exactly
// the golden runner's loop shape) and the machine-context serialization.
#pragma once

#include "ckpt/components.hpp"
#include "machines/golden_trace.hpp"

namespace rcpn::machines {

class SessionBase : public GoldenSession, public ckpt::MachineIO {
 public:
  ckpt::MachineIO& io() override { return *this; }
  std::vector<GoldenRetireEvent>& trace() override { return trace_; }

 protected:
  std::vector<GoldenRetireEvent> trace_;
};

}  // namespace rcpn::machines
