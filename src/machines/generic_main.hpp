// Generic CLI entry point for *arbitrary* user models — the counterpart of
// golden_cli_main for machines that have no fixed golden workload.
//
// golden_cli_main assumes a self-contained GoldenRunFn; this header turns a
// (describe, workload, done) triple into one, so any Simulator<M>-described
// machine becomes a runnable binary — including a freestanding one
// (gen::emit_simulator's generic_describe_expr emits a main() calling here,
// and this header is part of the embedded source table) — and therefore a
// SimFarm subprocess work unit. On top of golden_cli_main's flags it adds:
//
//   --cycles N          cycle cap for the run (default 100000)
//   <positional args>   handed to `apply_workload(machine, args)` before the
//                       run — workload-from-argv (e.g. an element count, an
//                       input file), so one binary serves a whole sweep
//
// The run loop steps until `done(machine)` holds with no tokens in flight
// (drained: the golden-trace semantics), the engine stops itself, or the
// cycle cap is reached; reaching the cap is not an error — the trace up to
// the budget is the result, which is exactly what a farm cycle budget means.
// Header-only: the template must inline into freestanding artifacts.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "machines/golden_trace.hpp"
#include "model/simulator.hpp"

namespace rcpn::machines {

inline constexpr std::uint64_t kGenericDefaultCycles = 100000;

/// Run machine M as a CLI binary. `describe` is the Simulator<M> model
/// description; `apply_workload(machine, args)` consumes the positional
/// arguments; `done(machine)` is the completion predicate (return false to
/// run to the cycle cap). All other flags (--golden, --stats, --time,
/// --backend, schedule ablations) are golden_cli_main's, which this wraps.
template <typename M, typename Describe, typename Workload, typename Done>
int generic_cli_main(int argc, char** argv, const std::string& name,
                     Describe describe, Workload apply_workload, Done done,
                     core::EngineOptions base = {}) {
  std::uint64_t cycles = 0;
  std::vector<std::string> workload_args;
  std::vector<char*> fwd;
  fwd.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cycles" && i + 1 < argc) {
      cycles = std::strtoull(argv[++i], nullptr, 10);
    } else if ((arg == "--golden" || arg == "--time" || arg == "--backend") &&
               i + 1 < argc) {
      fwd.push_back(argv[i]);  // value-taking flags forward as a pair, so the
      fwd.push_back(argv[++i]);  // value is never mistaken for a workload arg
    } else if (!arg.empty() && arg[0] != '-') {
      workload_args.push_back(arg);
    } else {
      fwd.push_back(argv[i]);
    }
  }

  const auto run = [&](core::EngineOptions options) -> GoldenRunResult {
    model::Simulator<M> sim(name, options, describe, M{});
    apply_workload(sim.machine(), workload_args);
    GoldenRunResult r;
    record_golden_retires(sim.engine(), r.trace);
    const std::uint64_t cap = cycles != 0 ? cycles : kGenericDefaultCycles;
    for (std::uint64_t c = 0; c < cap; ++c) {
      if (done(static_cast<const M&>(sim.machine())) &&
          sim.engine().tokens_in_flight() == 0)
        break;
      if (!sim.step()) break;
    }
    r.stats = sim.engine().stats();
    return r;
  };
  return golden_cli_main(static_cast<int>(fwd.size()), fwd.data(), name, run, base);
}

}  // namespace rcpn::machines
