// Seeded random pipeline models — the fuzz generator as a library machine.
//
// A mt19937 seeded with `seed` drives every decision, so two constructions
// (or a construction in another process) produce byte-identical model
// descriptions: varying stage counts and capacities, place delays, fork/join
// edges, multi-issue fetch widths, guard mixes (periodic stalls, clock
// windows, state-referencing backpressure), token delay overrides,
// reservation emit/consume pairs, age-based flushes and looping topologies
// (bounded feedback arcs that force real token cycles through the SCC /
// two-list analysis).
//
// Every delegate is a *named* free function — the per-transition parameters
// the old closure captures carried (watched place, loop trip bound, flush
// victim) live in FuzzMachine arrays indexed by core::FireCtx::transition —
// so any seeded topology is fully emittable by gen::emit_simulator,
// including EmitMode::freestanding. That is the point: the lockstep fuzz
// suite (tests/test_fuzz_lockstep.cpp) reaches the emitter with randomized
// models, not just the five curated machines.
#pragma once

#include <cstdint>
#include <vector>

#include "machines/golden_trace.hpp"
#include "model/model_builder.hpp"

namespace rcpn::model {
template <typename Machine>
class Simulator;
}

namespace rcpn::machines {

/// Default drain cap of a fuzz run when no explicit cycle budget is given —
/// shared with farm::effective_cycle_budget so a budget of 0 and an explicit
/// budget of this value describe (and hash as) the same simulation.
inline constexpr std::uint64_t kFuzzDrainCap = 25000;

struct FuzzMachine {
  std::uint64_t to_emit = 0;
  std::uint64_t emitted = 0;
  /// Counters mutated by generated actions; compared across backends at the
  /// end, so action *execution order* differences surface even when traces
  /// happen to agree.
  std::uint64_t actions_run = 0;
  std::uint64_t flushes = 0;
  /// Backward (feedback) arc traversals: per-shard loop-coverage evidence.
  std::uint64_t loops_taken = 0;

  /// Fetch parameters (filled by the model description).
  core::PlaceId entry = core::kNoPlace;
  std::vector<core::TypeId> fetch_types;

  /// Per-transition delegate parameters, indexed by the transition id the
  /// dispatch hands over in FireCtx::transition (watched place for
  /// backpressure guards, trip bound for loop guards, victim stage for flush
  /// actions). This is what replaces closure captures and keeps the model
  /// emittable.
  std::vector<std::int32_t> guard_param;
  std::vector<std::int32_t> action_param;
};

// -- named delegates (referenced by symbol in generated simulator sources) ----
bool fuzz_guard_periodic(core::FireCtx& ctx);
bool fuzz_guard_window(core::FireCtx& ctx);
bool fuzz_guard_backpressure(FuzzMachine& m, core::FireCtx& ctx);
bool fuzz_guard_loop(FuzzMachine& m, core::FireCtx& ctx);
bool fuzz_fetch_guard(FuzzMachine& m, core::FireCtx& ctx);
void fuzz_action_count(FuzzMachine& m, core::FireCtx& ctx);
void fuzz_action_delay(core::FireCtx& ctx);
void fuzz_action_flush(FuzzMachine& m, core::FireCtx& ctx);
void fuzz_action_loop(FuzzMachine& m, core::FireCtx& ctx);
void fuzz_fetch_action(FuzzMachine& m, core::FireCtx& ctx);

/// The fuzz DelegateRegistry: symbol -> typed binding for every delegate
/// above (mixed machine/ctx arities), plus the emission metadata.
const desc::DelegateRegistry& fuzz_delegates();

/// Build the random pipeline model of `seed` into `b`, recording the
/// delegate parameters into `m`.
void describe_fuzz_model(unsigned seed, model::ModelBuilder<FuzzMachine>& b,
                         FuzzMachine& m);

/// The option mix a seed runs under (some seeds double-buffer every stage,
/// some drop the state-reference rule — both engines of a lockstep pair get
/// identical options).
core::EngineOptions fuzz_options_for(unsigned seed, core::Backend backend);

/// Model (net) name of a seed, e.g. "fuzz-7".
std::string fuzz_model_name(unsigned seed);

/// Golden-style runner: construct the seed's model under `options`, run it
/// until every token drained, return the retire trace + stats. Throws
/// std::runtime_error if the model wedges (deadlock watchdog / cycle cap).
/// `max_cycles` overrides the drain cap (0 = the default 25000) — the farm's
/// per-job cycle budget.
GoldenRunResult golden_run_fuzz(unsigned seed, core::EngineOptions options,
                                std::uint64_t max_cycles = 0);

/// The fuzz workload itself (trace recording + manual drain loop + stats),
/// factored out so the describe-callback and description-loaded construction
/// paths run byte-identical work. `name` labels the error messages.
GoldenRunResult golden_finish_fuzz(model::Simulator<FuzzMachine>& sim,
                                   const std::string& name,
                                   std::uint64_t max_cycles = 0);

/// Checkpointable session of a seed's model (machine key "fuzz-<seed>"):
/// the same manual drain loop as golden_run_fuzz, advanceable in cycle
/// chunks. `max_cycles` overrides the drain cap (0 = the default 25000).
std::unique_ptr<GoldenSession> make_fuzz_session(unsigned seed,
                                                 core::EngineOptions options,
                                                 std::uint64_t max_cycles = 0);

}  // namespace rcpn::machines
