// Checkpoint serialization shared by the StrongArm and XScale sessions: the
// ArmMachine context (registers, memory, caches, predictor, syscalls, fetch
// cursor) plus the ArmPayload per-instance scratch carried by in-flight
// tokens. The static half of ArmPayload (decode result, partially-evaluated
// issue plan, list_refs) is rebuilt by the decode cache when the restoring run
// re-materializes the token, so only the dynamic fields travel.
// The first include names the owning header (machines/arm_machine.hpp
// declares these helpers): gen/embed.cpp keys companion-source selection on
// it, so this TU rides into freestanding builds exactly when the ARM machine
// context does.
#include "machines/arm_machine.hpp"

#include "ckpt/components.hpp"

namespace rcpn::machines {

void save_arm_machine(ckpt::StateWriter& w, const ArmMachine& m,
                      const ckpt::RefCoder& refs) {
  w.begin("arm_machine")
      .field("pc", static_cast<std::uint64_t>(m.pc))
      .field("nullified", m.nullified_count)
      .field("mispredicts", m.mispredicts)
      .field("taken_branches", m.taken_branches)
      .field("predictor", m.bp != nullptr)
      .end();
  ckpt::save_register_file(w, m.rf, refs);
  ckpt::save_memory(w, m.mem.memory());
  ckpt::save_cache(w, m.mem.icache());
  ckpt::save_cache(w, m.mem.dcache());
  ckpt::save_syscalls(w, m.sys);
  if (m.bp != nullptr) ckpt::save_predictor(w, *m.bp);
}

void restore_arm_machine(ckpt::StateReader& r, ArmMachine& m,
                         const ckpt::RefCoder& refs) {
  r.next("arm_machine");
  m.pc = static_cast<std::uint32_t>(r.get_u64("pc"));
  m.nullified_count = r.get_u64("nullified");
  m.mispredicts = r.get_u64("mispredicts");
  m.taken_branches = r.get_u64("taken_branches");
  const bool had_predictor = r.get_bool("predictor");
  if (had_predictor != (m.bp != nullptr))
    r.fail(std::string("checkpoint predictor mismatch: snapshot was taken ") +
           (had_predictor ? "with" : "without") +
           " a branch predictor, the restoring machine runs " +
           (m.bp != nullptr ? "with" : "without") + " one");
  ckpt::restore_register_file(r, m.rf, refs);
  ckpt::restore_memory(r, m.mem.memory());
  ckpt::restore_cache(r, m.mem.icache());
  ckpt::restore_cache(r, m.mem.dcache());
  ckpt::restore_syscalls(r, m.sys);
  if (m.bp != nullptr) ckpt::restore_predictor(r, *m.bp);
}

void save_arm_token_extra(ckpt::StateWriter& w, const core::InstructionToken& t) {
  const ArmPayload& p = *static_cast<const ArmPayload*>(t.payload);
  w.begin("arm_extra")
      .field("nullified", p.nullified)
      .field("resolved", p.resolved)
      .field("ea", static_cast<std::uint64_t>(p.ea))
      .field("result", static_cast<std::uint64_t>(p.result))
      .field("pred_next", static_cast<std::uint64_t>(p.pred_next))
      .field("base_after", static_cast<std::uint64_t>(p.base_after))
      .field("base_wb", p.base_wb)
      .field("loaded_pc", static_cast<std::uint64_t>(p.loaded_pc))
      .end();
}

void restore_arm_token_extra(ckpt::StateReader& r, core::InstructionToken& t) {
  ArmPayload& p = ArmMachine::payload(t);
  r.next("arm_extra");
  p.nullified = r.get_bool("nullified");
  p.resolved = r.get_bool("resolved");
  p.ea = static_cast<std::uint32_t>(r.get_u64("ea"));
  p.result = static_cast<std::uint32_t>(r.get_u64("result"));
  p.pred_next = static_cast<std::uint32_t>(r.get_u64("pred_next"));
  p.base_after = static_cast<std::uint32_t>(r.get_u64("base_after"));
  p.base_wb = r.get_bool("base_wb");
  p.loaded_pc = static_cast<std::uint32_t>(r.get_u64("loaded_pc"));
}

unsigned arm_num_reg_refs(const core::InstructionToken& t) {
  if (t.payload == nullptr) return core::InstructionToken::kMaxOps;
  const ArmPayload& p = *static_cast<const ArmPayload*>(t.payload);
  return core::InstructionToken::kMaxOps + static_cast<unsigned>(p.list_refs.size());
}

regfile::RegRef* arm_reg_ref(const core::InstructionToken& t, unsigned i) {
  if (i < core::InstructionToken::kMaxOps)
    return dynamic_cast<regfile::RegRef*>(t.ops[i]);
  const ArmPayload& p = *static_cast<const ArmPayload*>(t.payload);
  return p.list_refs[i - core::InstructionToken::kMaxOps];
}

}  // namespace rcpn::machines
