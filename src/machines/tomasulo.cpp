#include "machines/tomasulo.hpp"

#include "isa/operation_class.hpp"

namespace rcpn::machines {

using core::FireCtx;
using core::InstructionToken;
using isa::kSlotDst;
using isa::kSlotSrc1;
using isa::kSlotSrc2;
using regfile::ConstOperand;
using regfile::Operand;
using regfile::RegRef;

struct TomasuloCore::Payload final : isa::Payload {
  Fig5Instr instr;
};

namespace {
std::uint32_t alu_eval(Fig5Instr::AluOp op, std::uint32_t a, std::uint32_t b) {
  switch (op) {
    case Fig5Instr::AluOp::add: return a + b;
    case Fig5Instr::AluOp::sub: return a - b;
    case Fig5Instr::AluOp::mul: return a * b;
    case Fig5Instr::AluOp::xor_op: return a ^ b;
  }
  return 0;
}

// Tomasulo source capture at issue: either the value is current (read it now
// — the Vj/Vk field) or the newest in-flight writer becomes the tag (Qj/Qk).
// Only RegRefs can be unreadable, so the cast below is safe.
void src_capture(Operand* op) {
  if (op->can_read()) {
    op->read();
  } else {
    static_cast<RegRef*>(op)->capture_writer();
  }
}

bool src_ready(const Operand* op) {
  if (op->value_ready()) return true;
  return static_cast<const RegRef*>(op)->captured_ready();
}

void src_fetch(Operand* op) {
  if (op->value_ready()) return;
  static_cast<RegRef*>(op)->read_captured();
}
}  // namespace

TomasuloCore::TomasuloCore(unsigned rs_entries, unsigned num_fus)
    : net_("Tomasulo"),
      rf_(kNumRegs, regfile::WritePolicy::multi_writer),  // renaming (§3.1)
      dcache_([this](isa::DecodeCache::Entry& e) { bind(e); }),
      eng_(net_, this),
      rs_entries_(rs_entries),
      num_fus_(num_fus) {
  rf_.add_identity_registers(kNumRegs);
  build();
}

void TomasuloCore::bind(isa::DecodeCache::Entry& e) {
  auto pl = std::make_unique<Payload>();
  pl->instr = program_[e.pc];
  const Fig5Instr& i = pl->instr;
  InstructionToken& t = e.token;
  t.type = ty_alu_;
  const core::PlaceId* owner = &t.state;

  auto make_reg = [&](unsigned r) -> Operand* {
    auto ref = std::make_unique<RegRef>();
    ref->bind(&rf_, static_cast<regfile::RegisterId>(r), owner);
    Operand* raw = ref.get();
    e.operands.push_back(std::move(ref));
    return raw;
  };
  auto make_const = [&](std::uint32_t v) -> Operand* {
    auto c = std::make_unique<ConstOperand>(v);
    Operand* raw = c.get();
    e.operands.push_back(std::move(c));
    return raw;
  };

  t.ops[kSlotDst] = make_reg(i.d);
  t.ops[kSlotSrc1] = make_reg(i.s1);
  t.ops[kSlotSrc2] = i.s2_is_imm ? make_const(i.imm) : make_reg(i.s2);
  t.payload = pl.get();
  e.payload = std::move(pl);
}

void TomasuloCore::build() {
  const core::StageId sDisp = net_.add_stage("DISP", 1);
  const core::StageId sRs = net_.add_stage("RS", rs_entries_);
  const core::StageId sEx = net_.add_stage("EX", num_fus_);
  const core::StageId sCdb = net_.add_stage("CDB", 1);
  disp_ = net_.add_place("DISP", sDisp);
  rs_ = net_.add_place("RS", sRs);
  ex_ = net_.add_place("EX", sEx);
  cdb_ = net_.add_place("CDB", sCdb);
  ty_alu_ = net_.add_type("ALU");

  // Issue: claim an RS entry, read available sources (Vj/Vk), capture the
  // producer tag of pending ones (Qj/Qk), and rename the destination
  // (reserve_write on a multi-writer file == allocate a new name).
  net_.add_transition("Issue", ty_alu_)
      .from(disp_)
      .guard([](FireCtx& ctx) { return ctx.token->ops[kSlotDst]->can_write(); })
      .action([](FireCtx& ctx) {
        InstructionToken& t = *ctx.token;
        src_capture(t.ops[kSlotSrc1]);
        src_capture(t.ops[kSlotSrc2]);
        t.ops[kSlotDst]->reserve_write();
      })
      .to(rs_);

  // Dispatch-to-execute: fires for ANY token in the reservation station whose
  // operands have arrived (value captured at issue, or the tagged producer
  // has broadcast) — out-of-order issue is just the enabling rule over a
  // capacity>1 stage.
  net_.add_transition("Exec", ty_alu_)
      .from(rs_)
      .guard([](FireCtx& ctx) {
        InstructionToken& t = *ctx.token;
        return src_ready(t.ops[kSlotSrc1]) && src_ready(t.ops[kSlotSrc2]);
      })
      .action([this](FireCtx& ctx) {
        InstructionToken& t = *ctx.token;
        src_fetch(t.ops[kSlotSrc1]);
        src_fetch(t.ops[kSlotSrc2]);
        const Fig5Instr& i = static_cast<Payload*>(t.payload)->instr;
        // FU latency: multiplies occupy the unit longer.
        t.next_delay = i.op == Fig5Instr::AluOp::mul ? 3 : 1;
        if (t.seq < last_exec_seq_) observed_ooo_ = true;
        if (t.seq > last_exec_seq_) last_exec_seq_ = t.seq;
      })
      .to(ex_)
      .reads_state(cdb_);

  // Broadcast: one result per cycle crosses the common data bus.
  net_.add_transition("Bcast", ty_alu_)
      .from(ex_)
      .action([](FireCtx& ctx) {
        InstructionToken& t = *ctx.token;
        const Fig5Instr& i = static_cast<Payload*>(t.payload)->instr;
        t.ops[kSlotDst]->set_value(
            alu_eval(i.op, t.ops[kSlotSrc1]->value(), t.ops[kSlotSrc2]->value()));
      })
      .to(cdb_);

  // Writeback/retire.
  net_.add_transition("Wb", ty_alu_)
      .from(cdb_)
      .action([](FireCtx& ctx) { ctx.token->ops[kSlotDst]->writeback(); })
      .to(net_.end_place());

  net_.add_independent_transition("Fetch")
      .guard([this](FireCtx&) { return pc_ < program_.size(); })
      .action([this](FireCtx& ctx) {
        InstructionToken* t = dcache_.get(pc_, 0);
        ++pc_;
        ctx.engine->emit_instruction(t, disp_);
      })
      .to(disp_);

  eng_.build();
}

void TomasuloCore::load(std::vector<Fig5Instr> program) {
  program_ = std::move(program);
  pc_ = 0;
  rf_.reset();
  dcache_.clear();
  eng_.reset();
  last_exec_seq_ = 0;
  observed_ooo_ = false;
}

std::uint64_t TomasuloCore::run(std::uint64_t max_cycles) {
  const core::Cycle start = eng_.clock();
  while (!eng_.stopped() && eng_.clock() - start < max_cycles) {
    eng_.step();
    if (pc_ >= program_.size() && eng_.tokens_in_flight() == 0) break;
  }
  return eng_.clock() - start;
}

}  // namespace rcpn::machines
