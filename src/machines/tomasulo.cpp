#include "machines/tomasulo.hpp"

#include "desc/delegate_registry.hpp"
#include "isa/operation_class.hpp"
#include "machines/golden_session.hpp"

namespace rcpn::machines {

using core::FireCtx;
using core::InstructionToken;
using isa::kSlotDst;
using isa::kSlotSrc1;
using isa::kSlotSrc2;
using regfile::ConstOperand;
using regfile::Operand;
using regfile::RegRef;

struct TomasuloMachine::Payload final : isa::Payload {
  Fig5Instr instr;
};

namespace {
std::uint32_t tomasulo_alu_eval(Fig5Instr::AluOp op, std::uint32_t a, std::uint32_t b) {
  switch (op) {
    case Fig5Instr::AluOp::add: return a + b;
    case Fig5Instr::AluOp::sub: return a - b;
    case Fig5Instr::AluOp::mul: return a * b;
    case Fig5Instr::AluOp::xor_op: return a ^ b;
  }
  return 0;
}

const Fig5Instr& tomasulo_instr_of(const InstructionToken& t) {
  return static_cast<TomasuloMachine::Payload*>(t.payload)->instr;
}

// Tomasulo source capture at issue: either the value is current (read it now
// — the Vj/Vk field) or the newest in-flight writer becomes the tag (Qj/Qk).
// Only RegRefs can be unreadable, so the cast below is safe.
void src_capture(Operand* op) {
  if (op->can_read()) {
    op->read();
  } else {
    static_cast<RegRef*>(op)->capture_writer();
  }
}

bool src_ready(const Operand* op) {
  if (op->value_ready()) return true;
  return static_cast<const RegRef*>(op)->captured_ready();
}

void src_fetch(Operand* op) {
  if (op->value_ready()) return;
  static_cast<RegRef*>(op)->read_captured();
}
}  // namespace

TomasuloMachine::TomasuloMachine()
    : rf(kNumRegs, regfile::WritePolicy::multi_writer),  // renaming (§3.1)
      dcache([this](isa::DecodeCache::Entry& e) { bind(e); }) {
  rf.add_identity_registers(kNumRegs);
}

void TomasuloMachine::load(std::vector<Fig5Instr> p) {
  program = std::move(p);
  pc = 0;
  rf.reset();
  dcache.clear();
  last_exec_seq = 0;
  observed_ooo = false;
}

void TomasuloMachine::bind(isa::DecodeCache::Entry& e) {
  auto pl = std::make_unique<Payload>();
  pl->instr = program[e.pc];
  const Fig5Instr& i = pl->instr;
  InstructionToken& t = e.token;
  t.type = ty_alu;
  const core::PlaceId* owner = &t.state;

  auto make_reg = [&](unsigned r) -> Operand* {
    auto ref = std::make_unique<RegRef>();
    ref->bind(&rf, static_cast<regfile::RegisterId>(r), owner);
    Operand* raw = ref.get();
    e.operands.push_back(std::move(ref));
    return raw;
  };
  auto make_const = [&](std::uint32_t v) -> Operand* {
    auto c = std::make_unique<ConstOperand>(v);
    Operand* raw = c.get();
    e.operands.push_back(std::move(c));
    return raw;
  };

  t.ops[kSlotDst] = make_reg(i.d);
  t.ops[kSlotSrc1] = make_reg(i.s1);
  t.ops[kSlotSrc2] = i.s2_is_imm ? make_const(i.imm) : make_reg(i.s2);
  t.payload = pl.get();
  e.payload = std::move(pl);
}

// -- named delegates ---------------------------------------------------------------
// The per-transition functionality as free functions over the typed machine
// context: the emittable registration form (gen::emit_simulator references
// these by symbol and calls them directly in the generated simulator).

bool tomasulo_issue_guard(TomasuloMachine&, FireCtx& ctx) {
  return ctx.token->ops[kSlotDst]->can_write();
}

// Issue: read available sources (Vj/Vk), capture the producer tag of pending
// ones (Qj/Qk), and rename the destination (reserve_write on a multi-writer
// file == allocate a new name).
void tomasulo_issue_action(TomasuloMachine&, FireCtx& ctx) {
  InstructionToken& t = *ctx.token;
  src_capture(t.ops[kSlotSrc1]);
  src_capture(t.ops[kSlotSrc2]);
  t.ops[kSlotDst]->reserve_write();
}

bool tomasulo_exec_guard(TomasuloMachine&, FireCtx& ctx) {
  InstructionToken& t = *ctx.token;
  return src_ready(t.ops[kSlotSrc1]) && src_ready(t.ops[kSlotSrc2]);
}

void tomasulo_exec_action(TomasuloMachine& m, FireCtx& ctx) {
  InstructionToken& t = *ctx.token;
  src_fetch(t.ops[kSlotSrc1]);
  src_fetch(t.ops[kSlotSrc2]);
  // FU latency: multiplies occupy the unit longer.
  t.next_delay = tomasulo_instr_of(t).op == Fig5Instr::AluOp::mul ? 3 : 1;
  if (t.seq < m.last_exec_seq) m.observed_ooo = true;
  if (t.seq > m.last_exec_seq) m.last_exec_seq = t.seq;
}

void tomasulo_bcast_action(TomasuloMachine&, FireCtx& ctx) {
  InstructionToken& t = *ctx.token;
  const Fig5Instr& i = tomasulo_instr_of(t);
  t.ops[kSlotDst]->set_value(
      tomasulo_alu_eval(i.op, t.ops[kSlotSrc1]->value(), t.ops[kSlotSrc2]->value()));
}

void tomasulo_wb_action(TomasuloMachine&, FireCtx& ctx) {
  ctx.token->ops[kSlotDst]->writeback();
}

bool tomasulo_fetch_guard(TomasuloMachine& m, FireCtx&) {
  return m.pc < m.program.size();
}

void tomasulo_fetch_action(TomasuloMachine& m, FireCtx& ctx) {
  InstructionToken* t = m.dcache.get(m.pc, 0);
  ++m.pc;
  ctx.engine->emit_instruction(t, m.fetch_into);
}

const desc::DelegateRegistry& tomasulo_delegates() {
  static const desc::DelegateRegistry reg = [] {
    desc::DelegateRegistry r("rcpn::machines::TomasuloMachine",
                             {"machines/tomasulo.hpp"});
    auto d = r.bind<TomasuloMachine>();
    d.guard<&tomasulo_issue_guard>("rcpn::machines::tomasulo_issue_guard");
    d.action<&tomasulo_issue_action>("rcpn::machines::tomasulo_issue_action");
    d.guard<&tomasulo_exec_guard>("rcpn::machines::tomasulo_exec_guard");
    d.action<&tomasulo_exec_action>("rcpn::machines::tomasulo_exec_action");
    d.action<&tomasulo_bcast_action>("rcpn::machines::tomasulo_bcast_action");
    d.action<&tomasulo_wb_action>("rcpn::machines::tomasulo_wb_action");
    d.guard<&tomasulo_fetch_guard>("rcpn::machines::tomasulo_fetch_guard");
    d.action<&tomasulo_fetch_action>("rcpn::machines::tomasulo_fetch_action");
    return r;
  }();
  return reg;
}

void bind_tomasulo_context(const core::Net& net, TomasuloMachine& m) {
  m.ty_alu = net.find_type("ALU");
  m.fetch_into = net.find_place("DISP");
}

TomasuloCore::TomasuloCore(unsigned rs_entries, unsigned num_fus,
                           core::EngineOptions options)
    : sim_("Tomasulo", options,
           [this, rs_entries, num_fus](model::ModelBuilder<TomasuloMachine>& b,
                                       TomasuloMachine& m) {
             describe(b, m, rs_entries, num_fus);
           }) {
  bind_tomasulo_context(sim_.net(), sim_.machine());
}

void TomasuloCore::describe(model::ModelBuilder<TomasuloMachine>& b, TomasuloMachine&,
                            unsigned rs_entries, unsigned num_fus) {
  b.use_delegates(tomasulo_delegates());
  const model::StageHandle sDisp = b.add_stage("DISP", 1);
  const model::StageHandle sRs = b.add_stage("RS", rs_entries);
  const model::StageHandle sEx = b.add_stage("EX", num_fus);
  const model::StageHandle sCdb = b.add_stage("CDB", 1);
  const model::PlaceHandle disp = b.add_place("DISP", sDisp);
  const model::PlaceHandle rs = b.add_place("RS", sRs);
  const model::PlaceHandle ex = b.add_place("EX", sEx);
  const model::PlaceHandle cdb = b.add_place("CDB", sCdb);
  const model::TypeHandle ty_alu = b.add_type("ALU");

  // Issue: claim an RS entry; see tomasulo_issue_action.
  b.add_transition("Issue", ty_alu)
      .from(disp)
      .guard_ref("rcpn::machines::tomasulo_issue_guard")
      .action_ref("rcpn::machines::tomasulo_issue_action")
      .to(rs);

  // Dispatch-to-execute: fires for ANY token in the reservation station whose
  // operands have arrived (value captured at issue, or the tagged producer
  // has broadcast) — out-of-order issue is just the enabling rule over a
  // capacity>1 stage.
  b.add_transition("Exec", ty_alu)
      .from(rs)
      .guard_ref("rcpn::machines::tomasulo_exec_guard")
      .action_ref("rcpn::machines::tomasulo_exec_action")
      .to(ex)
      .reads_state(cdb);

  // Broadcast: one result per cycle crosses the common data bus.
  b.add_transition("Bcast", ty_alu)
      .from(ex)
      .action_ref("rcpn::machines::tomasulo_bcast_action")
      .to(cdb);

  // Writeback/retire.
  b.add_transition("Wb", ty_alu)
      .from(cdb)
      .action_ref("rcpn::machines::tomasulo_wb_action")
      .to(b.end());

  b.add_independent_transition("Fetch")
      .guard_ref("rcpn::machines::tomasulo_fetch_guard")
      .action_ref("rcpn::machines::tomasulo_fetch_action")
      .to(disp);
}

std::uint64_t TomasuloCore::run(std::uint64_t max_cycles) {
  return sim_.drain(
      [](const TomasuloMachine& m) { return m.pc >= m.program.size(); }, max_cycles);
}

namespace {

std::vector<Fig5Instr> tomasulo_golden_workload() {
  using I = Fig5Instr;
  return {
      I::alui(I::AluOp::add, 1, 0, 3),
      I::alu(I::AluOp::mul, 2, 1, 1),   // dependent chain
      I::alu(I::AluOp::mul, 3, 2, 2),
      I::alui(I::AluOp::add, 4, 0, 5),  // independent — issues out of order
      I::alui(I::AluOp::add, 5, 4, 1),
      I::alu(I::AluOp::xor_op, 6, 3, 5),
  };
}

}  // namespace

GoldenRunResult golden_finish_tomasulo(TomasuloCore& sim) {
  GoldenRunResult r;
  record_golden_retires(sim.engine(), r.trace);
  sim.load(tomasulo_golden_workload());
  sim.run();
  r.stats = sim.engine().stats();
  return r;
}

GoldenRunResult golden_run_tomasulo(core::EngineOptions options) {
  TomasuloCore sim(4, 2, options);
  return golden_finish_tomasulo(sim);
}

void golden_inspect_tomasulo(core::EngineOptions options, const GoldenInspectFn& fn) {
  TomasuloCore sim(4, 2, options);
  fn(sim.net(), sim.engine());
}

namespace {

class TomasuloSession final : public SessionBase {
 public:
  explicit TomasuloSession(core::EngineOptions options) : sim_(4, 2, options) {
    record_golden_retires(sim_.engine(), trace_);
    sim_.load(tomasulo_golden_workload());
  }

  core::Engine& engine() override { return sim_.engine(); }

  bool advance(std::uint64_t cycles) override {
    if (finished()) return false;
    sim_.run(cycles);
    return !finished();
  }

  std::string machine_key() const override { return "tomasulo"; }
  std::string workload_id() const override { return "golden-6"; }

  void save_machine(ckpt::StateWriter& w, const ckpt::RefCoder& refs) const override {
    const TomasuloMachine& m = sim_.machine();
    w.begin("tomasulo")
        .field("pc", static_cast<std::uint64_t>(m.pc))
        .field("last_exec_seq", static_cast<std::uint64_t>(m.last_exec_seq))
        .field("observed_ooo", m.observed_ooo)
        .end();
    ckpt::save_register_file(w, m.rf, refs);
  }

  void restore_machine(ckpt::StateReader& r, const ckpt::RefCoder& refs) override {
    TomasuloMachine& m = sim_.machine();
    r.next("tomasulo");
    m.pc = static_cast<std::uint32_t>(r.get_u64("pc"));
    m.last_exec_seq = static_cast<std::uint32_t>(r.get_u64("last_exec_seq"));
    m.observed_ooo = r.get_bool("observed_ooo");
    ckpt::restore_register_file(r, m.rf, refs);
  }

  core::InstructionToken* materialize(std::uint64_t pc, std::uint32_t raw) override {
    return sim_.machine().dcache.get(static_cast<std::uint32_t>(pc), raw);
  }

 private:
  bool finished() {
    return sim_.engine().stopped() ||
           (sim_.machine().pc >= sim_.machine().program.size() &&
            sim_.engine().tokens_in_flight() == 0);
  }

  TomasuloCore sim_;
};

}  // namespace

std::unique_ptr<GoldenSession> golden_session_tomasulo(core::EngineOptions options) {
  return std::make_unique<TomasuloSession>(options);
}

}  // namespace rcpn::machines
