#include "machines/xscale.hpp"

#include <cassert>

#include "desc/delegate_registry.hpp"
#include "machines/golden_session.hpp"
#include "workloads/workloads.hpp"

namespace rcpn::machines {

using arm::OpClass;
using core::FireCtx;

XScaleConfig::XScaleConfig() {
  // PXA250-class: 32 KiB / 32-way / 32 B-line caches, higher core:memory
  // clock ratio than the SA-110.
  mem.icache = {32 * 1024, 32, 32, 1, 40, true};
  mem.dcache = {32 * 1024, 32, 32, 1, 40, true};
}

XScaleSim::XScaleSim(XScaleConfig config)
    : cfg_(std::move(config)),
      sim_(
          "XScale", cfg_.engine,
          [this](model::ModelBuilder<ArmPipeMachine>& b, ArmPipeMachine& mc) {
            mc.m.bp = std::make_unique<predictor::Btb>(cfg_.btb_entries);
            describe(b, mc);
          },
          ArmMachine::Config{cfg_.mem, regfile::WritePolicy::multi_writer}) {
  bind_xscale_context(sim_.net(), sim_.machine());
}

void bind_xscale_context(const core::Net& net, ArmPipeMachine& mc) {
  mc.env.fwd = {net.find_place("X1"), net.find_place("X2"), net.find_place("D2"),
                net.find_place("M2")};
  mc.env.flush_on_redirect = {net.find_stage("F1"), net.find_stage("F2"),
                              net.find_stage("ID")};
  mc.env.drain = {net.find_place("RF"), net.find_place("X1"), net.find_place("X2"),
                  net.find_place("D1"), net.find_place("D2"), net.find_place("M1"),
                  net.find_place("M2")};
  mc.env.fetch_into = net.find_place("F1");
  mc.env.use_predictor = true;
}

void XScaleSim::describe(model::ModelBuilder<ArmPipeMachine>& b, ArmPipeMachine&) {
  b.use_delegates(arm_pipe_delegates());
  const model::StageHandle sF1 = b.add_stage("F1", 1);
  const model::StageHandle sF2 = b.add_stage("F2", 1);
  const model::StageHandle sID = b.add_stage("ID", 1);
  const model::StageHandle sRF = b.add_stage("RF", 1);
  const model::StageHandle sX1 = b.add_stage("X1", 1);
  const model::StageHandle sX2 = b.add_stage("X2", 1);
  const model::StageHandle sD1 = b.add_stage("D1", 1);
  const model::StageHandle sD2 = b.add_stage("D2", 1);
  const model::StageHandle sM1 = b.add_stage("M1", 1);
  const model::StageHandle sM2 = b.add_stage("M2", 1);
  const model::PlaceHandle f1 = b.add_place("F1", sF1);
  const model::PlaceHandle f2 = b.add_place("F2", sF2);
  const model::PlaceHandle id = b.add_place("ID", sID);
  const model::PlaceHandle rf = b.add_place("RF", sRF);
  const model::PlaceHandle x1 = b.add_place("X1", sX1);
  const model::PlaceHandle x2 = b.add_place("X2", sX2);
  const model::PlaceHandle d1 = b.add_place("D1", sD1);
  const model::PlaceHandle d2 = b.add_place("D2", sD2);
  const model::PlaceHandle m1 = b.add_place("M1", sM1);
  const model::PlaceHandle m2 = b.add_place("M2", sM2);

  // All four forwarding sources bypass combinationally within the cycle.
  b.force_two_list(sX1, false);
  b.force_two_list(sX2, false);
  b.force_two_list(sD2, false);
  b.force_two_list(sM2, false);

  // The per-class behaviours are shared *named* free functions over the typed
  // machine context (arm_machine.hpp), resolved through the shared
  // DelegateRegistry so the model is emittable as a standalone generated
  // simulator and loadable from a serialized description.
  for (unsigned c = 0; c < arm::kNumOpClasses; ++c) {
    const auto cls = static_cast<OpClass>(c);
    const std::string name = arm::op_class_name(cls);
    const model::TypeHandle ty = b.add_type(name);
    assert(ty.id() == static_cast<core::TypeId>(c));
    (void)ty;

    // Common front end: F2 and ID simply advance the (already decoded,
    // token-cached) instruction; RF is the issue point.
    b.add_transition("F2." + name, ty).from(f1).to(f2);
    b.add_transition("ID." + name, ty).from(f2).to(id);
    b.add_transition("RF." + name, ty)
        .from(id)
        .guard_ref("rcpn::machines::pipe_issue_guard")
        .action_ref("rcpn::machines::pipe_issue_action")
        .to(rf)
        .reads_state(x1)
        .reads_state(x2)
        .reads_state(d2)
        .reads_state(m2);

    switch (cls) {
      case OpClass::load_store:
      case OpClass::load_store_multiple:
        // Memory pipe: access (with cache delay) in D1, publish in D2.
        b.add_transition("D1." + name, ty)
            .from(rf)
            .action_ref("rcpn::machines::pipe_mem_action")
            .to(d1);
        b.add_transition("D2." + name, ty)
            .from(d1)
            .action_ref("rcpn::machines::pipe_publish_action")
            .to(d2);
        b.add_transition("DWB." + name, ty)
            .from(d2)
            .action_ref("rcpn::machines::pipe_wb_action")
            .to(b.end());
        break;
      case OpClass::multiply:
        // MAC pipe: M1 computes (iterating for wide multiplicands), M2
        // publishes for forwarding.
        b.add_transition("M1." + name, ty)
            .from(rf)
            .action_ref("rcpn::machines::pipe_execute_action")
            .to(m1);
        b.add_transition("M2." + name, ty)
            .from(m1)
            .action_ref("rcpn::machines::pipe_publish_action")
            .to(m2);
        b.add_transition("MWB." + name, ty)
            .from(m2)
            .action_ref("rcpn::machines::pipe_wb_action")
            .to(b.end());
        break;
      default:
        // Main pipe (data-processing, branches, SWI): X1 executes/resolves.
        b.add_transition("X1." + name, ty)
            .from(rf)
            .action_ref("rcpn::machines::pipe_execute_action")
            .to(x1);
        b.add_transition("X2." + name, ty).from(x1).to(x2);
        b.add_transition("XWB." + name, ty)
            .from(x2)
            .action_ref("rcpn::machines::pipe_wb_action")
            .to(b.end());
        break;
    }
  }

  b.add_independent_transition("F1")
      .guard_ref("rcpn::machines::pipe_fetch_guard")
      .action_ref("rcpn::machines::pipe_fetch_action")
      .to(f1);
}

RunResult XScaleSim::run(const sys::Program& program, std::uint64_t max_cycles) {
  // load() drains leftover tokens from a previous run *before* the machine's
  // load_program clears the decode cache that owns them.
  sim_.load(program);
  machine().dcache.set_bypass(cfg_.decode_cache_bypass);
  sim_.run(max_cycles);
  return collect_result(sim_.engine(), machine());
}

void XScaleSim::begin(const sys::Program& program) {
  // Same ordering as run(): load() drains leftover tokens before load_program
  // clears the decode cache that owns them.
  sim_.load(program);
  machine().dcache.set_bypass(cfg_.decode_cache_bypass);
}

GoldenRunResult golden_finish_xscale_adpcm(XScaleSim& sim) {
  GoldenRunResult r;
  record_golden_retires(sim.engine(), r.trace);
  sim.run(workloads::build(*workloads::find("adpcm"), /*scale=*/1),
          /*max_cycles=*/1500);
  r.stats = sim.engine().stats();
  return r;
}

GoldenRunResult golden_run_xscale_adpcm(core::EngineOptions options) {
  XScaleConfig cfg;
  cfg.engine = options;
  XScaleSim sim(cfg);
  return golden_finish_xscale_adpcm(sim);
}

void golden_inspect_xscale_adpcm(core::EngineOptions options,
                                 const GoldenInspectFn& fn) {
  XScaleConfig cfg;
  cfg.engine = options;
  XScaleSim sim(cfg);
  fn(sim.net(), sim.engine());
}

namespace {

class XScaleAdpcmSession final : public SessionBase {
 public:
  explicit XScaleAdpcmSession(core::EngineOptions options) : sim_(cfg_for(options)) {
    record_golden_retires(sim_.engine(), trace_);
    sim_.begin(workloads::build(*workloads::find("adpcm"), /*scale=*/1));
  }

  core::Engine& engine() override { return sim_.engine(); }

  bool advance(std::uint64_t cycles) override {
    if (finished()) return false;
    const std::uint64_t left = kBudget - sim_.engine().clock();
    sim_.advance(cycles < left ? cycles : left);
    return !finished();
  }

  std::string machine_key() const override { return "xscale_adpcm"; }
  std::string workload_id() const override { return "adpcm-x1-1500"; }

  void save_machine(ckpt::StateWriter& w, const ckpt::RefCoder& refs) const override {
    save_arm_machine(w, sim_.machine(), refs);
  }
  void restore_machine(ckpt::StateReader& r, const ckpt::RefCoder& refs) override {
    restore_arm_machine(r, sim_.machine(), refs);
  }
  core::InstructionToken* materialize(std::uint64_t pc, std::uint32_t raw) override {
    return sim_.machine().dcache.get(static_cast<std::uint32_t>(pc), raw);
  }
  void save_token_extra(ckpt::StateWriter& w,
                        const core::InstructionToken& t) const override {
    save_arm_token_extra(w, t);
  }
  void restore_token_extra(ckpt::StateReader& r, core::InstructionToken& t) override {
    restore_arm_token_extra(r, t);
  }
  unsigned num_reg_refs(const core::InstructionToken& t) const override {
    return arm_num_reg_refs(t);
  }
  regfile::RegRef* reg_ref(const core::InstructionToken& t, unsigned i) const override {
    return arm_reg_ref(t, i);
  }

 private:
  static constexpr std::uint64_t kBudget = 1500;  // golden_finish max_cycles

  static XScaleConfig cfg_for(core::EngineOptions options) {
    XScaleConfig cfg;
    cfg.engine = options;
    return cfg;
  }

  bool finished() {
    return sim_.engine().stopped() || sim_.engine().clock() >= kBudget;
  }

  XScaleSim sim_;
};

}  // namespace

std::unique_ptr<GoldenSession> golden_session_xscale_adpcm(
    core::EngineOptions options) {
  return std::make_unique<XScaleAdpcmSession>(options);
}

}  // namespace rcpn::machines
