#include "machines/xscale.hpp"

namespace rcpn::machines {

using arm::OpClass;
using core::FireCtx;

XScaleConfig::XScaleConfig() {
  // PXA250-class: 32 KiB / 32-way / 32 B-line caches, higher core:memory
  // clock ratio than the SA-110.
  mem.icache = {32 * 1024, 32, 32, 1, 40, true};
  mem.dcache = {32 * 1024, 32, 32, 1, 40, true};
}

XScaleSim::XScaleSim(XScaleConfig config)
    : cfg_(std::move(config)),
      net_("XScale"),
      m_(ArmMachine::Config{cfg_.mem, regfile::WritePolicy::multi_writer}),
      eng_(net_, &m_, cfg_.engine) {
  m_.bp = std::make_unique<predictor::Btb>(cfg_.btb_entries);
  build();
}

void XScaleSim::build() {
  const core::StageId sF1 = net_.add_stage("F1", 1);
  const core::StageId sF2 = net_.add_stage("F2", 1);
  const core::StageId sID = net_.add_stage("ID", 1);
  const core::StageId sRF = net_.add_stage("RF", 1);
  const core::StageId sX1 = net_.add_stage("X1", 1);
  const core::StageId sX2 = net_.add_stage("X2", 1);
  const core::StageId sD1 = net_.add_stage("D1", 1);
  const core::StageId sD2 = net_.add_stage("D2", 1);
  const core::StageId sM1 = net_.add_stage("M1", 1);
  const core::StageId sM2 = net_.add_stage("M2", 1);
  f1_ = net_.add_place("F1", sF1);
  f2_ = net_.add_place("F2", sF2);
  id_ = net_.add_place("ID", sID);
  rf_ = net_.add_place("RF", sRF);
  x1_ = net_.add_place("X1", sX1);
  x2_ = net_.add_place("X2", sX2);
  d1_ = net_.add_place("D1", sD1);
  d2_ = net_.add_place("D2", sD2);
  m1_ = net_.add_place("M1", sM1);
  m2_ = net_.add_place("M2", sM2);

  // All four forwarding sources bypass combinationally within the cycle.
  net_.stage(sX1).force_two_list(false);
  net_.stage(sX2).force_two_list(false);
  net_.stage(sD2).force_two_list(false);
  net_.stage(sM2).force_two_list(false);

  env_ = PipeEnv{&m_,
                 /*fwd=*/{x1_, x2_, d2_, m2_},
                 /*flush_on_redirect=*/{sF1, sF2, sID},
                 /*drain=*/{rf_, x1_, x2_, d1_, d2_, m1_, m2_},
                 /*use_predictor=*/true};

  const auto g_issue = +[](void* env, FireCtx& ctx) {
    return issue_guard(*static_cast<PipeEnv*>(env), ctx);
  };
  const auto a_issue = +[](void* env, FireCtx& ctx) {
    issue_action(*static_cast<PipeEnv*>(env), ctx);
  };
  const auto a_exec = +[](void* env, FireCtx& ctx) {
    execute_action(*static_cast<PipeEnv*>(env), ctx);
  };
  const auto a_access = +[](void* env, FireCtx& ctx) {
    mem_action(*static_cast<PipeEnv*>(env), ctx, /*publish=*/false);
  };
  const auto a_publish = +[](void* env, FireCtx& ctx) {
    publish_action(*static_cast<PipeEnv*>(env), ctx);
  };
  const auto a_wb = +[](void* env, FireCtx& ctx) {
    wb_action(*static_cast<PipeEnv*>(env), ctx);
  };

  for (unsigned c = 0; c < arm::kNumOpClasses; ++c) {
    const auto cls = static_cast<OpClass>(c);
    const std::string name = arm::op_class_name(cls);
    const core::TypeId ty = net_.add_type(name);
    assert(ty == static_cast<core::TypeId>(c));
    (void)ty;

    // Common front end: F2 and ID simply advance the (already decoded,
    // token-cached) instruction; RF is the issue point.
    net_.add_transition("F2." + name, ty).from(f1_).to(f2_);
    net_.add_transition("ID." + name, ty).from(f2_).to(id_);
    net_.add_transition("RF." + name, ty)
        .from(id_)
        .guard(g_issue, &env_)
        .action(a_issue, &env_)
        .to(rf_)
        .reads_state(x1_)
        .reads_state(x2_)
        .reads_state(d2_)
        .reads_state(m2_);

    switch (cls) {
      case OpClass::load_store:
      case OpClass::load_store_multiple:
        // Memory pipe: access (with cache delay) in D1, publish in D2.
        net_.add_transition("D1." + name, ty)
            .from(rf_)
            .action(a_access, &env_)
            .to(d1_);
        net_.add_transition("D2." + name, ty)
            .from(d1_)
            .action(a_publish, &env_)
            .to(d2_);
        net_.add_transition("DWB." + name, ty)
            .from(d2_)
            .action(a_wb, &env_)
            .to(net_.end_place());
        break;
      case OpClass::multiply:
        // MAC pipe: M1 computes (iterating for wide multiplicands), M2
        // publishes for forwarding.
        net_.add_transition("M1." + name, ty)
            .from(rf_)
            .action(a_exec, &env_)
            .to(m1_);
        net_.add_transition("M2." + name, ty)
            .from(m1_)
            .action(a_publish, &env_)
            .to(m2_);
        net_.add_transition("MWB." + name, ty)
            .from(m2_)
            .action(a_wb, &env_)
            .to(net_.end_place());
        break;
      default:
        // Main pipe (data-processing, branches, SWI): X1 executes/resolves.
        net_.add_transition("X1." + name, ty)
            .from(rf_)
            .action(a_exec, &env_)
            .to(x1_);
        net_.add_transition("X2." + name, ty).from(x1_).to(x2_);
        net_.add_transition("XWB." + name, ty)
            .from(x2_)
            .action(a_wb, &env_)
            .to(net_.end_place());
        break;
    }
  }

  net_.add_independent_transition("F1")
      .guard(+[](void* env, FireCtx&) {
        return !static_cast<XScaleSim*>(env)->m_.sys.exited();
      }, this)
      .action(+[](void* env, FireCtx& ctx) {
        auto* self = static_cast<XScaleSim*>(env);
        fetch_action(self->env_, ctx, self->f1_);
      }, this)
      .to(f1_);

  eng_.build();
}

RunResult XScaleSim::run(const sys::Program& program, std::uint64_t max_cycles) {
  // Drain leftover tokens from a previous run *before* load_program clears
  // the decode cache that owns them.
  eng_.reset();
  m_.load_program(program);
  m_.dcache.set_bypass(cfg_.decode_cache_bypass);
  eng_.run(max_cycles);
  return collect_result(eng_, m_);
}

}  // namespace rcpn::machines
