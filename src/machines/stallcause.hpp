// Stall-cause attribution fixture (golden key "stallcause"): a tiny model
// whose entire purpose is to pin the *last-candidate-wins* tie-break of
// core::Stats::place_stall_causes across all four backends.
//
// One parker token is sent ahead and parked in PB (its exit guard holds it
// until the ticker counter reaches kParkUntil). Each worker token then stalls
// in PA with TWO candidate transitions rejecting it in the same cycle for
// DIFFERENT causes:
//   * W.block  (priority 0, PA -> PB, no guard)   — capacity_backpressure,
//     because the parked token fills PB's one-slot stage;
//   * W.escape (priority 1, PA -> PC, counter>=N) — guard_rejected, until the
//     ticker reaches kEscapeAt.
// The candidate scan visits priority order 0 then 1, so the recorded cause
// for PA must be guard_rejected and the capacity_backpressure counter for PA
// must stay zero — a first-candidate-wins implementation would record the
// exact opposite, which is what makes this workload a discriminating pin.
//
// All delegates are named free functions, so the model is emittable as a
// generated/freestanding simulator like every other golden machine.
#pragma once

#include "machines/golden_trace.hpp"
#include "model/simulator.hpp"

namespace rcpn::machines {

/// Machine context: the emission counters, the ticker the guards compare
/// against, and the ids the named delegates read (filled by the description;
/// declaration order is deterministic, so they are identical on every
/// construction — which is what makes the delegates emittable).
struct StallCauseMachine {
  /// Ticker value the workers' escape guard waits for.
  static constexpr std::uint64_t kEscapeAt = 6;
  /// Ticker value the parker's exit guard waits for (after every worker has
  /// escaped, so W.block can never actually fire in the golden workload).
  static constexpr std::uint64_t kParkUntil = 12;

  std::uint64_t to_emit = 0;
  std::uint64_t emitted = 0;
  /// Incremented once per cycle by the independent ticker transition.
  std::uint64_t counter = 0;
  core::TypeId ty_parker = core::kNoType;
  core::TypeId ty_worker = core::kNoType;
  core::PlaceId into = core::kNoPlace;
};

// -- named delegates (referenced by symbol in generated simulator sources) ----
void stallcause_tick_action(StallCauseMachine& m, core::FireCtx& ctx);
bool stallcause_fetch_guard(StallCauseMachine& m, core::FireCtx& ctx);
void stallcause_fetch_action(StallCauseMachine& m, core::FireCtx& ctx);
bool stallcause_park_exit_guard(StallCauseMachine& m, core::FireCtx& ctx);
bool stallcause_escape_guard(StallCauseMachine& m, core::FireCtx& ctx);

/// The StallCause DelegateRegistry: symbol -> typed binding for every
/// delegate above, plus the emission metadata (machine type, header).
const desc::DelegateRegistry& stallcause_delegates();

/// Fill the machine-context fields the delegates read (type ids, fetch
/// place) by name from the lowered net — shared by both construction paths.
void bind_stallcause_context(const core::Net& net, StallCauseMachine& m);

/// Golden-workload runner/inspector (key "stallcause"): one parker plus three
/// workers through the PA/PB/PC net of tests/golden/stallcause.trace.
GoldenRunResult golden_run_stallcause(core::EngineOptions options);
void golden_inspect_stallcause(core::EngineOptions options, const GoldenInspectFn& fn);

/// Checkpointable golden session (same parker+workers workload, advanceable
/// in cycle chunks; see machines/golden_trace.hpp).
std::unique_ptr<GoldenSession> golden_session_stallcause(core::EngineOptions options);

class StallCauseModel;

/// The golden workload itself (trace recording + run + stats), factored out
/// so the describe-callback and description-loaded construction paths run
/// byte-identical work.
GoldenRunResult golden_finish_stallcause(StallCauseModel& sim);

class StallCauseModel {
 public:
  explicit StallCauseModel(std::uint64_t to_emit, core::EngineOptions options = {});

  /// Model-as-data construction: the same machine, loaded from a serialized
  /// description. Defined in machines/desc_machines.cpp.
  StallCauseModel(const desc::Description& d, const desc::DelegateRegistry& registry,
                  core::EngineOptions options, std::uint64_t to_emit);

  /// Run until everything emitted and drained (or `max_cycles`).
  std::uint64_t run(std::uint64_t max_cycles = 1u << 20);

  core::Net& net() { return sim_.net(); }
  core::Engine& engine() { return sim_.engine(); }
  StallCauseMachine& machine() { return sim_.machine(); }
  const StallCauseMachine& machine() const { return sim_.machine(); }

  core::PlaceId pa() const { return pa_.id(); }
  core::PlaceId pb() const { return pb_.id(); }
  core::PlaceId pc() const { return pc_.id(); }

 private:
  model::PlaceHandle pa_, pb_, pc_;
  model::Simulator<StallCauseMachine> sim_;
};

}  // namespace rcpn::machines
