#include "machines/desc_machines.hpp"

#include <stdexcept>

#include "desc/delegate_registry.hpp"
#include "machines/fig5_processor.hpp"
#include "machines/fuzz_model.hpp"
#include "machines/golden_runner.hpp"
#include "machines/simple_pipeline.hpp"
#include "machines/stallcause.hpp"
#include "machines/strongarm.hpp"
#include "machines/tomasulo.hpp"
#include "machines/xscale.hpp"
#include "model/simulator.hpp"

namespace rcpn::machines {

namespace {

/// "fuzz-N" -> N; -1 when `model` is not a fuzz model name.
int fuzz_seed_of(const std::string& model) {
  if (model.rfind("fuzz-", 0) != 0 || model.size() == 5) return -1;
  int seed = 0;
  for (std::size_t i = 5; i < model.size(); ++i) {
    const char c = model[i];
    if (c < '0' || c > '9') return -1;
    seed = seed * 10 + (c - '0');
    if (seed > 1'000'000) return -1;
  }
  return seed;
}

/// Restore a loaded fuzz simulator's per-transition delegate parameters:
/// replay describe_fuzz_model(seed) into a throwaway builder against the
/// *live* machine. Declaration order is deterministic, so the throwaway ids
/// equal the loaded ids and the guard_param/action_param arrays line up.
void restore_fuzz_params(const desc::Description& d, int seed, FuzzMachine& m) {
  model::ModelBuilder<FuzzMachine> throwaway(d.model);
  describe_fuzz_model(static_cast<unsigned>(seed), throwaway, m);
}

}  // namespace

const desc::DelegateRegistry& delegates_for(const desc::Description& d) {
  if (d.machine_type == "rcpn::machines::Fig2Machine") return fig2_delegates();
  if (d.machine_type == "rcpn::machines::Fig5Machine") return fig5_delegates();
  if (d.machine_type == "rcpn::machines::TomasuloMachine") return tomasulo_delegates();
  if (d.machine_type == "rcpn::machines::StallCauseMachine")
    return stallcause_delegates();
  if (d.machine_type == "rcpn::machines::ArmPipeMachine") return arm_pipe_delegates();
  if (d.machine_type == "rcpn::machines::FuzzMachine") return fuzz_delegates();
  throw model::ModelError("description '" + d.model + "': no shipped DelegateRegistry " +
                          "for machine type '" + d.machine_type + "'");
}

desc::Description describe_machine(const std::string& key,
                                   core::EngineOptions options) {
  const int seed = fuzz_seed_of(key);
  if (seed >= 0) {
    model::Simulator<FuzzMachine> sim(
        key, options,
        [seed](model::ModelBuilder<FuzzMachine>& b, FuzzMachine& m) {
          describe_fuzz_model(static_cast<unsigned>(seed), b, m);
        },
        FuzzMachine{});
    return desc::describe_net(sim.net(), options);
  }
  desc::Description d;
  inspect_golden_machine(key, options, [&](core::Net& net, core::Engine&) {
    d = desc::describe_net(net, options);
  });
  return d;
}

GoldenRunResult run_description(const desc::Description& d, core::EngineOptions options,
                                std::uint64_t max_cycles) {
  const desc::DelegateRegistry& reg = delegates_for(d);
  if (d.model == "Fig2") {
    SimplePipeline sim(d, reg, options, 64);
    return golden_finish_fig2(sim);
  }
  if (d.model == "Fig5") {
    Fig5Processor sim(d, reg, options);
    return golden_finish_fig5(sim);
  }
  if (d.model == "Tomasulo") {
    TomasuloCore sim(d, reg, options);
    return golden_finish_tomasulo(sim);
  }
  if (d.model == "StallCause") {
    StallCauseModel sim(d, reg, options, 4);
    return golden_finish_stallcause(sim);
  }
  if (d.model == "StrongArm") {
    StrongArmConfig cfg;
    cfg.engine = options;
    StrongArmSim sim(d, reg, cfg);
    return golden_finish_strongarm_crc(sim);
  }
  if (d.model == "XScale") {
    XScaleConfig cfg;
    cfg.engine = options;
    XScaleSim sim(d, reg, cfg);
    return golden_finish_xscale_adpcm(sim);
  }
  const int seed = fuzz_seed_of(d.model);
  if (seed >= 0) {
    model::Simulator<FuzzMachine> sim(d, reg, options, FuzzMachine{});
    restore_fuzz_params(d, seed, sim.machine());
    return golden_finish_fuzz(sim, d.model, max_cycles);
  }
  throw model::ModelError("description model '" + d.model +
                          "' names no machine family shipped with this library");
}

void inspect_description(const desc::Description& d, core::EngineOptions options,
                         const GoldenInspectFn& fn) {
  const desc::DelegateRegistry& reg = delegates_for(d);
  if (d.model == "Fig2") {
    SimplePipeline sim(d, reg, options, 64);
    fn(sim.net(), sim.engine());
    return;
  }
  if (d.model == "Fig5") {
    Fig5Processor sim(d, reg, options);
    fn(sim.net(), sim.engine());
    return;
  }
  if (d.model == "Tomasulo") {
    TomasuloCore sim(d, reg, options);
    fn(sim.net(), sim.engine());
    return;
  }
  if (d.model == "StallCause") {
    StallCauseModel sim(d, reg, options, 4);
    fn(sim.net(), sim.engine());
    return;
  }
  if (d.model == "StrongArm") {
    StrongArmConfig cfg;
    cfg.engine = options;
    StrongArmSim sim(d, reg, cfg);
    fn(sim.net(), sim.engine());
    return;
  }
  if (d.model == "XScale") {
    XScaleConfig cfg;
    cfg.engine = options;
    XScaleSim sim(d, reg, cfg);
    fn(sim.net(), sim.engine());
    return;
  }
  const int seed = fuzz_seed_of(d.model);
  if (seed >= 0) {
    model::Simulator<FuzzMachine> sim(d, reg, options, FuzzMachine{});
    restore_fuzz_params(d, seed, sim.machine());
    fn(sim.net(), sim.engine());
    return;
  }
  throw model::ModelError("description model '" + d.model +
                          "' names no machine family shipped with this library");
}

std::string description_machine_key(const desc::Description& d) {
  for (const std::string& key : golden_machine_keys())
    if (golden_model_name(key) == d.model) return key;
  return "";
}

// -- description constructors of the wrapper classes --------------------------
// Defined here (not in the machine cpps) so freestanding amalgamations, which
// embed the machine cpps, never reference the description layer.

SimplePipeline::SimplePipeline(const desc::Description& d,
                               const desc::DelegateRegistry& registry,
                               core::EngineOptions options, std::uint64_t to_generate)
    : sim_(d, registry, options,
           Fig2Machine{to_generate, 0, core::kNoType, core::kNoType, core::kNoPlace}) {
  bind_fig2_context(sim_.net(), sim_.machine());
}

Fig5Processor::Fig5Processor(const desc::Description& d,
                             const desc::DelegateRegistry& registry,
                             core::EngineOptions options)
    : sim_(d, registry, options) {
  bind_fig5_context(sim_.net(), sim_.machine());
}

TomasuloCore::TomasuloCore(const desc::Description& d,
                           const desc::DelegateRegistry& registry,
                           core::EngineOptions options)
    : sim_(d, registry, options) {
  bind_tomasulo_context(sim_.net(), sim_.machine());
}

StallCauseModel::StallCauseModel(const desc::Description& d,
                                 const desc::DelegateRegistry& registry,
                                 core::EngineOptions options, std::uint64_t to_emit)
    : sim_(d, registry, options, StallCauseMachine{to_emit}) {
  bind_stallcause_context(sim_.net(), sim_.machine());
}

StrongArmSim::StrongArmSim(const desc::Description& d,
                           const desc::DelegateRegistry& registry,
                           StrongArmConfig config)
    : cfg_(std::move(config)),
      sim_(d, registry, cfg_.engine,
           ArmMachine::Config{cfg_.mem, regfile::WritePolicy::multi_writer}) {
  bind_strongarm_context(sim_.net(), sim_.machine());
}

XScaleSim::XScaleSim(const desc::Description& d, const desc::DelegateRegistry& registry,
                     XScaleConfig config)
    : cfg_(std::move(config)),
      sim_(d, registry, cfg_.engine,
           ArmMachine::Config{cfg_.mem, regfile::WritePolicy::multi_writer}) {
  sim_.machine().m.bp = std::make_unique<predictor::Btb>(cfg_.btb_entries);
  bind_xscale_context(sim_.net(), sim_.machine());
}

}  // namespace rcpn::machines
