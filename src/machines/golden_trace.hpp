// Golden-trace plumbing: the cycle-stamped retire-trace format of
// tests/golden/*.trace, the first-diverging-cycle diff, and the generic CLI
// main every golden-workload binary fronts.
//
// This file is deliberately free of machine includes so that a *freestanding*
// generated simulator (gen::emit_simulator, EmitMode::freestanding) can inline
// it next to one machine without dragging the other four in: the five
// per-machine runners (golden_run_fig2, ... — declared in their machines'
// own headers) and machines/golden_runner.hpp's key-dispatch both build on
// exactly this module, so the library build and every emitted artifact share
// one definition of "run the golden workload and diff the trace".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "core/engine.hpp"

namespace rcpn::machines {

/// One retirement: the cycle it happened in, the instruction's pc and its
/// dynamic sequence number — the full observable timing behaviour.
struct GoldenRetireEvent {
  core::Cycle cycle = 0;
  std::uint64_t pc = 0;
  std::uint32_t seq = 0;
  bool operator==(const GoldenRetireEvent&) const = default;
};

/// Everything one golden-workload run observes: the retire trace plus the
/// engine's end-of-run statistics (the four-way differential harness compares
/// both across backends and across process boundaries).
struct GoldenRunResult {
  std::vector<GoldenRetireEvent> trace;
  core::Stats stats;
};

/// Run the machine's fixed golden workload under `options`; per-machine
/// implementations live next to their machines (golden_run_fig2, ...).
using GoldenRunFn = std::function<GoldenRunResult(core::EngineOptions)>;
/// Hand a constructed-but-not-run machine's net and engine to the caller
/// (the emitter's hook for lowering a model without simulating it).
using GoldenInspectFn = std::function<void(core::Net&, core::Engine&)>;

/// Install an on_retire hook appending to `out` (shared by every runner).
void record_golden_retires(core::Engine& eng, std::vector<GoldenRetireEvent>& out);

// -- trace file format (tests/golden/*.trace) ---------------------------------

/// Render a trace in golden format: a `# name ...` header line, then one
/// `cycle pc(hex) seq` line per retirement.
std::string format_golden_trace(const std::string& name,
                                const std::vector<GoldenRetireEvent>& trace);

/// Aggregate statistics as one golden-format comment line
/// (`# stats cycles=... retired=...`); trace parsers skip it, the four-way
/// harness reads it back with parse_golden_stats.
std::string format_golden_stats(const core::Stats& stats);

/// Per-place stall attribution as golden-format comment lines, one
/// `# stallcause place=P cause=NAME count=N` per nonzero counter. Printed by
/// golden_cli_main under --stats so the four-way harness can compare the
/// last-candidate-wins attribution across a process boundary; trace parsers
/// skip the lines like any other comment.
std::string format_stall_causes(const core::Stats& stats);

/// Read `# stallcause ...` lines back into a dense
/// [place * kNumStallCauses + cause] vector of `num_places` places.
/// False on a malformed line or an out-of-range place/cause.
bool parse_stall_causes(const std::string& text, unsigned num_places,
                        std::vector<std::uint64_t>& out);

/// Parse a trace in golden format; false on malformed content.
bool parse_golden_trace(const std::string& text, std::vector<GoldenRetireEvent>& out);

/// Recover the aggregate counters from a `# stats ...` line inside `text`;
/// false if no such line exists or it is malformed.
bool parse_golden_stats(const std::string& text, core::Stats& out);

/// Parse a golden file; false on a missing or malformed file.
bool load_golden_trace(const std::string& path, std::vector<GoldenRetireEvent>& out);

/// Empty string if equal; otherwise a message naming the first diverging
/// retirement and the cycle it happened in.
std::string diff_golden_traces(const std::vector<GoldenRetireEvent>& golden,
                               const std::vector<GoldenRetireEvent>& got);

// -- checkpointable golden sessions -------------------------------------------

/// An in-progress golden-workload run that can be advanced in cycle chunks
/// and snapshotted between chunks. One implementation per machine, defined
/// next to the machine (golden_session_fig2, ...) so a freestanding generated
/// simulator inlines exactly one of them; each implementation replicates its
/// golden runner's exact loop shape, which is what makes
///   advance(T) + write_checkpoint + [new process] read_checkpoint + finish
/// byte-identical — trace, stats, obs stream — to the straight run.
class GoldenSession {
 public:
  virtual ~GoldenSession() = default;

  virtual core::Engine& engine() = 0;
  /// The machine's checkpoint serializer (usually the session itself).
  virtual ckpt::MachineIO& io() = 0;
  /// Run up to `cycles` more cycles of the workload. Returns false once the
  /// workload is complete (calling again runs nothing). Must be called at
  /// cycle boundaries only — which is the only way this API can call it.
  virtual bool advance(std::uint64_t cycles) = 0;
  /// The session-owned retire trace: the restored prefix plus everything
  /// retired since.
  virtual std::vector<GoldenRetireEvent>& trace() = 0;

  /// The run's observable result so far (trace + engine stats).
  GoldenRunResult result() {
    GoldenRunResult r;
    r.trace = trace();
    r.stats = engine().stats();
    return r;
  }
};

/// Construct machine `key`'s golden session under `options` (workload loaded,
/// nothing run). Per-machine factories live next to their machines.
using GoldenSessionFn =
    std::function<std::unique_ptr<GoldenSession>(core::EngineOptions)>;

/// Serialize the session's complete dynamic state (rcpn-ckpt/1).
std::string write_checkpoint(GoldenSession& s);

/// Restore `text` into a *freshly constructed* session (workload loaded,
/// never advanced). Throws ckpt::CkptError on any identity mismatch.
void read_checkpoint(GoldenSession& s, const std::string& text);

/// Advance the session to completion and return its result.
GoldenRunResult finish_session(GoldenSession& s);

/// Entry point of a golden-workload simulator binary. Runs `run` on
/// Backend::generated over `base` options (the options the artifact was
/// emitted for — schedule-affecting flags must match the generated tables or
/// the engine's build() verification throws). Default: print the trace
/// (golden format) to stdout. Flags:
///   --golden FILE                     diff against FILE; exit 1 naming the
///                                     first diverging cycle
///   --stats                           also print the `# stats ...` line
///   --time N                          timing mode: run the workload N times
///                                     (plus one warm-up) and print one
///                                     `time ... secs=...` line
///   --trace-json FILE                 write a Chrome-trace-event/Perfetto
///                                     JSON of the run (RCPN_OBS=ON builds;
///                                     exit 2 otherwise or with --time)
///   --profile                         print the aggregate observability
///                                     profile (RCPN_OBS=ON builds)
///   --backend generated|compiled|interpreted
///                                     escape hatch for A/B timing
///   --force-two-list-all, --no-two-list-state-refs, --linear-search
///                                     schedule-ablation variants (the
///                                     generated backend rejects options its
///                                     tables were not emitted for — combine
///                                     with --backend compiled)
///
/// Checkpoint/restore flags (need a `session` factory; exit 2 otherwise):
///   --checkpoint-at T --checkpoint-out FILE
///                                     run to cycle T, write the snapshot to
///                                     FILE and exit without finishing
///   --checkpoint-every K --checkpoint-out FILE
///                                     run to completion, writing a two-slot
///                                     checkpoint ring (FILE.0 / FILE.1,
///                                     alternating) every K cycles
///   --restore FILE                    restore FILE into a fresh session and
///                                     run to completion; stdout is
///                                     byte-identical to the straight run
int golden_cli_main(int argc, char** argv, const std::string& name,
                    const GoldenRunFn& run, core::EngineOptions base = {},
                    const GoldenSessionFn& session = {});

}  // namespace rcpn::machines
