#include "machines/fig5_processor.hpp"

#include <cassert>

#include "desc/delegate_registry.hpp"
#include "isa/operation_class.hpp"
#include "machines/golden_session.hpp"

namespace rcpn::machines {

using core::FireCtx;
using core::InstructionToken;
using isa::kSlotDst;
using isa::kSlotSrc1;
using isa::kSlotSrc2;
using regfile::ConstOperand;
using regfile::Operand;
using regfile::RegRef;

// -- instruction constructors ---------------------------------------------------

Fig5Instr Fig5Instr::alu(AluOp op, unsigned d, unsigned s1, unsigned s2) {
  Fig5Instr i;
  i.kind = Kind::alu;
  i.op = op;
  i.d = static_cast<std::uint8_t>(d);
  i.s1 = static_cast<std::uint8_t>(s1);
  i.s2 = static_cast<std::uint8_t>(s2);
  return i;
}

Fig5Instr Fig5Instr::alui(AluOp op, unsigned d, unsigned s1, std::uint32_t imm) {
  Fig5Instr i = alu(op, d, s1, 0);
  i.s2_is_imm = true;
  i.imm = imm;
  return i;
}

Fig5Instr Fig5Instr::load(unsigned r, std::uint32_t addr) {
  Fig5Instr i;
  i.kind = Kind::load_store;
  i.is_load = true;
  i.r = static_cast<std::uint8_t>(r);
  i.addr = addr;
  return i;
}

Fig5Instr Fig5Instr::store(unsigned r, std::uint32_t addr) {
  Fig5Instr i = load(r, addr);
  i.is_load = false;
  return i;
}

Fig5Instr Fig5Instr::branch(std::int32_t offset) {
  Fig5Instr i;
  i.kind = Kind::branch;
  i.offset = offset;
  return i;
}

// -- payload ---------------------------------------------------------------------

struct Fig5Machine::Payload final : isa::Payload {
  Fig5Instr instr;
};

namespace {
std::uint32_t alu_eval(Fig5Instr::AluOp op, std::uint32_t a, std::uint32_t b) {
  switch (op) {
    case Fig5Instr::AluOp::add: return a + b;
    case Fig5Instr::AluOp::sub: return a - b;
    case Fig5Instr::AluOp::mul: return a * b;
    case Fig5Instr::AluOp::xor_op: return a ^ b;
  }
  return 0;
}

const Fig5Instr& instr_of(const InstructionToken& t) {
  return static_cast<Fig5Machine::Payload*>(t.payload)->instr;
}
}  // namespace

// -- machine context --------------------------------------------------------------

Fig5Machine::Fig5Machine()
    : rf(kNumRegs, regfile::WritePolicy::single_writer),
      cache({/*size*/ 256, /*line*/ 16, /*assoc*/ 2, /*hit*/ 1, /*miss*/ 6, true},
            "fig5-dcache"),
      dcache([this](isa::DecodeCache::Entry& e) { bind(e); }) {
  rf.add_identity_registers(kNumRegs);
}

void Fig5Machine::load(std::vector<Fig5Instr> p) {
  program = std::move(p);
  pc = 0;
  rf.reset();
  mem.clear();
  cache.reset();
  dcache.clear();
}

void Fig5Machine::bind(isa::DecodeCache::Entry& e) {
  auto pl = std::make_unique<Payload>();
  pl->instr = program[e.pc];
  const Fig5Instr& i = pl->instr;
  InstructionToken& t = e.token;
  const core::PlaceId* owner = &t.state;

  auto make_reg = [&](unsigned r) -> Operand* {
    auto ref = std::make_unique<RegRef>();
    ref->bind(&rf, static_cast<regfile::RegisterId>(r), owner);
    Operand* raw = ref.get();
    e.operands.push_back(std::move(ref));
    return raw;
  };
  auto make_const = [&](std::uint32_t v) -> Operand* {
    auto c = std::make_unique<ConstOperand>(v);
    Operand* raw = c.get();
    e.operands.push_back(std::move(c));
    return raw;
  };

  switch (i.kind) {
    case Fig5Instr::Kind::alu:
      t.type = ty_alu;
      t.ops[kSlotDst] = make_reg(i.d);
      t.ops[kSlotSrc1] = make_reg(i.s1);
      t.ops[kSlotSrc2] = i.s2_is_imm ? make_const(i.imm) : make_reg(i.s2);
      break;
    case Fig5Instr::Kind::load_store:
      t.type = ty_ls;
      t.ops[kSlotDst] = make_reg(i.r);  // the r symbol: dest (load) or data (store)
      t.ops[kSlotSrc1] =
          i.addr_is_imm ? make_const(i.addr) : make_reg(i.addr_reg);
      break;
    case Fig5Instr::Kind::branch:
      t.type = ty_br;
      // offset: {Register | Constant} — constant form here.
      t.ops[kSlotSrc1] = make_const(static_cast<std::uint32_t>(i.offset));
      break;
  }
  t.payload = pl.get();
  e.payload = std::move(pl);
}

// -- named delegates ---------------------------------------------------------------
// Each transition's functionality as a free function over the typed machine
// context: the emittable registration form (gen::emit_simulator references
// these by symbol and calls them directly in the generated simulator).

// priority 0: [t.s1.canRead(), t.s2.canRead(), t.d.canWrite()]
bool fig5_d0_guard(Fig5Machine&, FireCtx& ctx) {
  InstructionToken& t = *ctx.token;
  return t.ops[kSlotSrc1]->can_read() && t.ops[kSlotSrc2]->can_read() &&
         t.ops[kSlotDst]->can_write();
}

void fig5_d0_action(Fig5Machine&, FireCtx& ctx) {
  InstructionToken& t = *ctx.token;
  t.ops[kSlotSrc1]->read();
  t.ops[kSlotSrc2]->read();
  t.ops[kSlotDst]->reserve_write();
}

// priority 1: [t.s1.canRead(L3), ...] — the feedback path, s1 only (§3.2).
bool fig5_d1_guard(Fig5Machine& m, FireCtx& ctx) {
  InstructionToken& t = *ctx.token;
  return t.ops[kSlotSrc1]->can_read_in(m.fwd_from) && t.ops[kSlotSrc2]->can_read() &&
         t.ops[kSlotDst]->can_write();
}

void fig5_d1_action(Fig5Machine& m, FireCtx& ctx) {
  InstructionToken& t = *ctx.token;
  t.ops[kSlotSrc1]->read_in(m.fwd_from);
  t.ops[kSlotSrc2]->read();
  t.ops[kSlotDst]->reserve_write();
}

void fig5_alu_e_action(Fig5Machine&, FireCtx& ctx) {
  InstructionToken& t = *ctx.token;
  const Fig5Instr& i = instr_of(t);
  t.ops[kSlotDst]->set_value(
      alu_eval(i.op, t.ops[kSlotSrc1]->value(), t.ops[kSlotSrc2]->value()));
}

void fig5_alu_we_action(Fig5Machine&, FireCtx& ctx) {
  ctx.token->ops[kSlotDst]->writeback();
}

bool fig5_ls_d_guard(Fig5Machine&, FireCtx& ctx) {
  InstructionToken& t = *ctx.token;
  const Fig5Instr& i = instr_of(t);
  // [!t.L || t.r.canWrite(), t.L || t.r.canRead(), t.addr.canRead()]
  if (!t.ops[kSlotSrc1]->can_read()) return false;
  return i.is_load ? t.ops[kSlotDst]->can_write() : t.ops[kSlotDst]->can_read();
}

void fig5_ls_d_action(Fig5Machine&, FireCtx& ctx) {
  InstructionToken& t = *ctx.token;
  const Fig5Instr& i = instr_of(t);
  t.ops[kSlotSrc1]->read();
  if (i.is_load)
    t.ops[kSlotDst]->reserve_write();
  else
    t.ops[kSlotDst]->read();
}

void fig5_ls_m_action(Fig5Machine& m, FireCtx& ctx) {
  InstructionToken& t = *ctx.token;
  const Fig5Instr& i = instr_of(t);
  const std::uint32_t addr = t.ops[kSlotSrc1]->value();
  // if (t.L) t.r = mem[addr]; else mem[addr] = t.r;
  if (i.is_load)
    t.ops[kSlotDst]->set_value(m.mem.read32(addr));
  else
    m.mem.write32(addr, t.ops[kSlotDst]->value());
  // t.delay = mem.delay(addr);
  t.next_delay = m.cache.access(addr, !i.is_load);
}

void fig5_ls_wm_action(Fig5Machine&, FireCtx& ctx) {
  InstructionToken& t = *ctx.token;
  if (instr_of(t).is_load) t.ops[kSlotDst]->writeback();
}

bool fig5_br_d_guard(Fig5Machine&, FireCtx& ctx) {
  return ctx.token->ops[kSlotSrc1]->can_read();
}

void fig5_br_d_action(Fig5Machine&, FireCtx& ctx) { ctx.token->ops[kSlotSrc1]->read(); }

void fig5_br_b_action(Fig5Machine& m, FireCtx& ctx) {
  InstructionToken& t = *ctx.token;
  // pc = pc + offset (relative to the branch's own index).
  m.pc = static_cast<std::uint32_t>(static_cast<std::int64_t>(t.pc) +
                                    static_cast<std::int32_t>(t.ops[kSlotSrc1]->value()));
}

bool fig5_fetch_guard(Fig5Machine& m, FireCtx&) { return m.pc < m.program.size(); }

void fig5_fetch_action(Fig5Machine& m, FireCtx& ctx) {
  InstructionToken* t = m.dcache.get(m.pc, /*raw=*/0);
  ++m.pc;
  ctx.engine->emit_instruction(t, m.fetch_into);
}

// -- delegate registry --------------------------------------------------------------

const desc::DelegateRegistry& fig5_delegates() {
  static const desc::DelegateRegistry reg = [] {
    desc::DelegateRegistry r("rcpn::machines::Fig5Machine",
                             {"machines/fig5_processor.hpp"});
    auto d = r.bind<Fig5Machine>();
    d.guard<&fig5_d0_guard>("rcpn::machines::fig5_d0_guard");
    d.action<&fig5_d0_action>("rcpn::machines::fig5_d0_action");
    d.guard<&fig5_d1_guard>("rcpn::machines::fig5_d1_guard");
    d.action<&fig5_d1_action>("rcpn::machines::fig5_d1_action");
    d.action<&fig5_alu_e_action>("rcpn::machines::fig5_alu_e_action");
    d.action<&fig5_alu_we_action>("rcpn::machines::fig5_alu_we_action");
    d.guard<&fig5_ls_d_guard>("rcpn::machines::fig5_ls_d_guard");
    d.action<&fig5_ls_d_action>("rcpn::machines::fig5_ls_d_action");
    d.action<&fig5_ls_m_action>("rcpn::machines::fig5_ls_m_action");
    d.action<&fig5_ls_wm_action>("rcpn::machines::fig5_ls_wm_action");
    d.guard<&fig5_br_d_guard>("rcpn::machines::fig5_br_d_guard");
    d.action<&fig5_br_d_action>("rcpn::machines::fig5_br_d_action");
    d.action<&fig5_br_b_action>("rcpn::machines::fig5_br_b_action");
    d.guard<&fig5_fetch_guard>("rcpn::machines::fig5_fetch_guard");
    d.action<&fig5_fetch_action>("rcpn::machines::fig5_fetch_action");
    return r;
  }();
  return reg;
}

void bind_fig5_context(const core::Net& net, Fig5Machine& m) {
  m.ty_alu = net.find_type("ALU");
  m.ty_ls = net.find_type("LoadStore");
  m.ty_br = net.find_type("Branch");
  m.fetch_into = net.find_place("L1");
  m.fwd_from = net.find_place("L3");
}

// -- model description -------------------------------------------------------------

Fig5Processor::Fig5Processor(core::EngineOptions options)
    : sim_("Fig5", options,
           [this](model::ModelBuilder<Fig5Machine>& b, Fig5Machine& m) {
             describe(b, m);
           }) {
  bind_fig5_context(sim_.net(), sim_.machine());
}

void Fig5Processor::describe(model::ModelBuilder<Fig5Machine>& b, Fig5Machine&) {
  b.use_delegates(fig5_delegates());
  const model::StageHandle s1 = b.add_stage("L1", 1);
  const model::StageHandle s2 = b.add_stage("L2", 1);
  const model::StageHandle s3 = b.add_stage("L3", 1);
  const model::StageHandle s4 = b.add_stage("L4", 1);
  l1_ = b.add_place("L1", s1);
  l2_ = b.add_place("L2", s2);
  // L3 holds results for two cycles before writeback (a result latch ahead
  // of the register-file port). That residence is what makes the feedback
  // path useful: a dependent instruction can take the priority-1 canRead(L3)
  // route one cycle before the value commits.
  l3_ = b.add_place("L3", s3, /*delay=*/2);
  l4_ = b.add_place("L4", s4);
  const model::TypeHandle ty_alu = b.add_type("ALU");
  const model::TypeHandle ty_ls = b.add_type("LoadStore");
  const model::TypeHandle ty_br = b.add_type("Branch");

  // ---- ALU sub-net (two prioritized issue transitions, Fig 5 left) ---------
  d0_ = b.add_transition("ALU.D0", ty_alu)
            .from(l1_, /*priority=*/0)
            .guard_ref("rcpn::machines::fig5_d0_guard")
            .action_ref("rcpn::machines::fig5_d0_action")
            .to(l2_);
  d1_ = b.add_transition("ALU.D1", ty_alu)
            .from(l1_, /*priority=*/1)
            .guard_ref("rcpn::machines::fig5_d1_guard")
            .action_ref("rcpn::machines::fig5_d1_action")
            .to(l2_)
            .reads_state(l3_);
  b.add_transition("ALU.E", ty_alu)
      .from(l2_)
      .action_ref("rcpn::machines::fig5_alu_e_action")
      .to(l3_);
  b.add_transition("ALU.We", ty_alu)
      .from(l3_)
      .action_ref("rcpn::machines::fig5_alu_we_action")
      .to(b.end());

  // ---- LoadStore sub-net (variable memory delay, Fig 5 bottom) -------------
  b.add_transition("LS.D", ty_ls)
      .from(l1_)
      .guard_ref("rcpn::machines::fig5_ls_d_guard")
      .action_ref("rcpn::machines::fig5_ls_d_action")
      .to(l2_);
  b.add_transition("LS.M", ty_ls)
      .from(l2_)
      .action_ref("rcpn::machines::fig5_ls_m_action")
      .to(l4_);
  b.add_transition("LS.Wm", ty_ls)
      .from(l4_)
      .action_ref("rcpn::machines::fig5_ls_wm_action")
      .to(b.end());

  // ---- Branch sub-net (reservation-token fetch stall, Fig 5 right) ---------
  b.add_transition("BR.D", ty_br)
      .from(l1_)
      .guard_ref("rcpn::machines::fig5_br_d_guard")
      .action_ref("rcpn::machines::fig5_br_d_action")
      .to(l2_)
      .emit_reservation(l1_);
  b.add_transition("BR.B", ty_br)
      .from(l2_)
      .consume_reservation(l1_)
      .action_ref("rcpn::machines::fig5_br_b_action")
      .to(b.end());

  // ---- instruction-independent sub-net (F) ----------------------------------
  b.add_independent_transition("F")
      .guard_ref("rcpn::machines::fig5_fetch_guard")
      .action_ref("rcpn::machines::fig5_fetch_action")
      .to(l1_);
}

std::uint64_t Fig5Processor::run(std::uint64_t max_cycles) {
  return sim_.drain(
      [](const Fig5Machine& m) { return m.pc >= m.program.size(); }, max_cycles);
}

namespace {

std::vector<Fig5Instr> fig5_golden_workload() {
  using I = Fig5Instr;
  return {
      I::alui(I::AluOp::add, 1, 0, 7),
      I::alui(I::AluOp::add, 2, 1, 1),   // RAW hazard
      I::store(2, 0x100),
      I::load(3, 0x100),
      I::branch(2),
      I::alui(I::AluOp::add, 4, 0, 99),  // squashed by the branch
      I::alu(I::AluOp::mul, 5, 2, 3),
      I::alu(I::AluOp::xor_op, 6, 5, 1),
  };
}

}  // namespace

GoldenRunResult golden_finish_fig5(Fig5Processor& sim) {
  GoldenRunResult r;
  record_golden_retires(sim.engine(), r.trace);
  sim.load(fig5_golden_workload());
  sim.run();
  r.stats = sim.engine().stats();
  return r;
}

GoldenRunResult golden_run_fig5(core::EngineOptions options) {
  Fig5Processor sim(options);
  return golden_finish_fig5(sim);
}

void golden_inspect_fig5(core::EngineOptions options, const GoldenInspectFn& fn) {
  Fig5Processor sim(options);
  fn(sim.net(), sim.engine());
}

namespace {

class Fig5Session final : public SessionBase {
 public:
  explicit Fig5Session(core::EngineOptions options) : sim_(options) {
    record_golden_retires(sim_.engine(), trace_);
    sim_.load(fig5_golden_workload());
  }

  core::Engine& engine() override { return sim_.engine(); }

  bool advance(std::uint64_t cycles) override {
    if (finished()) return false;
    sim_.run(cycles);
    return !finished();
  }

  std::string machine_key() const override { return "fig5"; }
  std::string workload_id() const override { return "golden-8"; }

  void save_machine(ckpt::StateWriter& w, const ckpt::RefCoder& refs) const override {
    const Fig5Machine& m = sim_.machine();
    w.begin("fig5").field("pc", static_cast<std::uint64_t>(m.pc)).end();
    ckpt::save_register_file(w, m.rf, refs);
    ckpt::save_memory(w, m.mem);
    ckpt::save_cache(w, m.cache);
  }

  void restore_machine(ckpt::StateReader& r, const ckpt::RefCoder& refs) override {
    Fig5Machine& m = sim_.machine();
    r.next("fig5");
    m.pc = static_cast<std::uint32_t>(r.get_u64("pc"));
    ckpt::restore_register_file(r, m.rf, refs);
    ckpt::restore_memory(r, m.mem);
    ckpt::restore_cache(r, m.cache);
  }

  core::InstructionToken* materialize(std::uint64_t pc, std::uint32_t raw) override {
    return sim_.machine().dcache.get(static_cast<std::uint32_t>(pc), raw);
  }

 private:
  bool finished() {
    return sim_.engine().stopped() ||
           (sim_.machine().pc >= sim_.machine().program.size() &&
            sim_.engine().tokens_in_flight() == 0);
  }

  Fig5Processor sim_;
};

}  // namespace

std::unique_ptr<GoldenSession> golden_session_fig5(core::EngineOptions options) {
  return std::make_unique<Fig5Session>(options);
}

}  // namespace rcpn::machines
