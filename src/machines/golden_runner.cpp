#include "machines/golden_runner.hpp"

#include <stdexcept>

#include "machines/fig5_processor.hpp"
#include "machines/simple_pipeline.hpp"
#include "machines/stallcause.hpp"
#include "machines/strongarm.hpp"
#include "machines/tomasulo.hpp"
#include "machines/xscale.hpp"

namespace rcpn::machines {

namespace {

/// One golden machine: the key-indexed dispatch row tying the per-machine
/// runner (defined next to its machine, so it is freestanding-emittable) to
/// the metadata the emitter needs to call it from a generated main().
struct GoldenMachine {
  const char* key;
  const char* model;
  GoldenRunResult (*run)(core::EngineOptions);
  void (*inspect)(core::EngineOptions, const GoldenInspectFn&);
  const char* run_symbol;
  const char* header;
  std::unique_ptr<GoldenSession> (*session)(core::EngineOptions);
  const char* session_symbol;
};

constexpr GoldenMachine kGoldenMachines[] = {
    {"fig2", "Fig2", &golden_run_fig2, &golden_inspect_fig2,
     "rcpn::machines::golden_run_fig2", "machines/simple_pipeline.hpp",
     &golden_session_fig2, "rcpn::machines::golden_session_fig2"},
    {"fig5", "Fig5", &golden_run_fig5, &golden_inspect_fig5,
     "rcpn::machines::golden_run_fig5", "machines/fig5_processor.hpp",
     &golden_session_fig5, "rcpn::machines::golden_session_fig5"},
    {"tomasulo", "Tomasulo", &golden_run_tomasulo, &golden_inspect_tomasulo,
     "rcpn::machines::golden_run_tomasulo", "machines/tomasulo.hpp",
     &golden_session_tomasulo, "rcpn::machines::golden_session_tomasulo"},
    {"strongarm_crc", "StrongArm", &golden_run_strongarm_crc,
     &golden_inspect_strongarm_crc, "rcpn::machines::golden_run_strongarm_crc",
     "machines/strongarm.hpp", &golden_session_strongarm_crc,
     "rcpn::machines::golden_session_strongarm_crc"},
    {"xscale_adpcm", "XScale", &golden_run_xscale_adpcm, &golden_inspect_xscale_adpcm,
     "rcpn::machines::golden_run_xscale_adpcm", "machines/xscale.hpp",
     &golden_session_xscale_adpcm, "rcpn::machines::golden_session_xscale_adpcm"},
    {"stallcause", "StallCause", &golden_run_stallcause, &golden_inspect_stallcause,
     "rcpn::machines::golden_run_stallcause", "machines/stallcause.hpp",
     &golden_session_stallcause, "rcpn::machines::golden_session_stallcause"},
};

const GoldenMachine& find_machine(const std::string& key) {
  for (const GoldenMachine& m : kGoldenMachines)
    if (key == m.key) return m;
  throw std::invalid_argument("unknown golden machine key '" + key + "'");
}

}  // namespace

const std::vector<std::string>& golden_machine_keys() {
  static const std::vector<std::string> keys = [] {
    std::vector<std::string> k;
    for (const GoldenMachine& m : kGoldenMachines) k.push_back(m.key);
    return k;
  }();
  return keys;
}

std::string golden_model_name(const std::string& key) { return find_machine(key).model; }

std::vector<GoldenRetireEvent> run_golden_machine(const std::string& key,
                                                  core::EngineOptions options) {
  return run_golden_machine_full(key, options).trace;
}

GoldenRunResult run_golden_machine_full(const std::string& key,
                                        core::EngineOptions options) {
  return find_machine(key).run(options);
}

void inspect_golden_machine(const std::string& key, core::EngineOptions options,
                            const GoldenInspectFn& fn) {
  find_machine(key).inspect(options, fn);
}

std::unique_ptr<GoldenSession> make_golden_session(const std::string& key,
                                                   core::EngineOptions options) {
  return find_machine(key).session(options);
}

std::string golden_run_expr(const std::string& key) {
  return std::string(find_machine(key).run_symbol) + "(options)";
}

std::string golden_session_expr(const std::string& key) {
  return std::string(find_machine(key).session_symbol) + "(options)";
}

std::string golden_run_header(const std::string& key) {
  return find_machine(key).header;
}

int generated_main(int argc, char** argv, const std::string& machine_key) {
  const GoldenMachine& m = find_machine(machine_key);
  return golden_cli_main(
      argc, argv, machine_key,
      [&m](core::EngineOptions options) { return m.run(options); },
      /*base=*/{},
      [&m](core::EngineOptions options) { return m.session(options); });
}

}  // namespace rcpn::machines
