#include "machines/golden_runner.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "machines/fig5_processor.hpp"
#include "machines/simple_pipeline.hpp"
#include "machines/strongarm.hpp"
#include "machines/tomasulo.hpp"
#include "machines/xscale.hpp"
#include "workloads/workloads.hpp"

namespace rcpn::machines {

namespace {

void record_retires(core::Engine& eng, std::vector<GoldenRetireEvent>& out) {
  eng.hooks().on_retire = [&eng, &out](core::InstructionToken* t) {
    out.push_back(GoldenRetireEvent{eng.clock(), t->pc, t->seq});
  };
}

std::vector<Fig5Instr> fig5_workload() {
  using I = Fig5Instr;
  return {
      I::alui(I::AluOp::add, 1, 0, 7),
      I::alui(I::AluOp::add, 2, 1, 1),   // RAW hazard
      I::store(2, 0x100),
      I::load(3, 0x100),
      I::branch(2),
      I::alui(I::AluOp::add, 4, 0, 99),  // squashed by the branch
      I::alu(I::AluOp::mul, 5, 2, 3),
      I::alu(I::AluOp::xor_op, 6, 5, 1),
  };
}

std::vector<Fig5Instr> tomasulo_workload() {
  using I = Fig5Instr;
  return {
      I::alui(I::AluOp::add, 1, 0, 3),
      I::alu(I::AluOp::mul, 2, 1, 1),   // dependent chain
      I::alu(I::AluOp::mul, 3, 2, 2),
      I::alui(I::AluOp::add, 4, 0, 5),  // independent — issues out of order
      I::alui(I::AluOp::add, 5, 4, 1),
      I::alu(I::AluOp::xor_op, 6, 3, 5),
  };
}

/// Construct machine `key`; run its workload when `trace` is non-null,
/// otherwise stop after construction and call `inspect`.
void with_golden_machine(const std::string& key, core::EngineOptions options,
                         std::vector<GoldenRetireEvent>* trace,
                         const std::function<void(core::Net&, core::Engine&)>& inspect) {
  if (key == "fig2") {
    SimplePipeline sim(64, options);
    if (trace == nullptr) return inspect(sim.net(), sim.engine());
    record_retires(sim.engine(), *trace);
    sim.run();
  } else if (key == "fig5") {
    Fig5Processor sim(options);
    if (trace == nullptr) return inspect(sim.net(), sim.engine());
    record_retires(sim.engine(), *trace);
    sim.load(fig5_workload());
    sim.run();
  } else if (key == "tomasulo") {
    TomasuloCore sim(4, 2, options);
    if (trace == nullptr) return inspect(sim.net(), sim.engine());
    record_retires(sim.engine(), *trace);
    sim.load(tomasulo_workload());
    sim.run();
  } else if (key == "strongarm_crc") {
    // A fixed 1500-cycle window of the crc kernel: long enough to cover
    // icache/dcache misses, hazards and branches, small enough to check in.
    StrongArmConfig cfg;
    cfg.engine = options;
    StrongArmSim sim(cfg);
    if (trace == nullptr) return inspect(sim.net(), sim.engine());
    record_retires(sim.engine(), *trace);
    sim.run(workloads::build(*workloads::find("crc"), /*scale=*/1), /*max_cycles=*/1500);
  } else if (key == "xscale_adpcm") {
    XScaleConfig cfg;
    cfg.engine = options;
    XScaleSim sim(cfg);
    if (trace == nullptr) return inspect(sim.net(), sim.engine());
    record_retires(sim.engine(), *trace);
    sim.run(workloads::build(*workloads::find("adpcm"), /*scale=*/1),
            /*max_cycles=*/1500);
  } else {
    throw std::invalid_argument("unknown golden machine key '" + key + "'");
  }
}

}  // namespace

const std::vector<std::string>& golden_machine_keys() {
  static const std::vector<std::string> keys = {"fig2", "fig5", "tomasulo",
                                                "strongarm_crc", "xscale_adpcm"};
  return keys;
}

std::string golden_model_name(const std::string& key) {
  if (key == "fig2") return "Fig2";
  if (key == "fig5") return "Fig5";
  if (key == "tomasulo") return "Tomasulo";
  if (key == "strongarm_crc") return "StrongArm";
  if (key == "xscale_adpcm") return "XScale";
  throw std::invalid_argument("unknown golden machine key '" + key + "'");
}

std::vector<GoldenRetireEvent> run_golden_machine(const std::string& key,
                                                  core::EngineOptions options) {
  std::vector<GoldenRetireEvent> trace;
  with_golden_machine(key, options, &trace, {});
  return trace;
}

void inspect_golden_machine(const std::string& key, core::EngineOptions options,
                            const std::function<void(core::Net&, core::Engine&)>& fn) {
  with_golden_machine(key, options, nullptr, fn);
}

std::string format_golden_trace(const std::string& name,
                                const std::vector<GoldenRetireEvent>& trace) {
  std::ostringstream out;
  out << "# " << name << " golden cycle-stamped retire trace: cycle pc(hex) seq\n";
  for (const GoldenRetireEvent& e : trace)
    out << e.cycle << " " << std::hex << e.pc << std::dec << " " << e.seq << "\n";
  return out.str();
}

bool load_golden_trace(const std::string& path, std::vector<GoldenRetireEvent>& out) {
  std::ifstream in(path);
  bool ok = in.good();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    GoldenRetireEvent e;
    fields >> e.cycle >> std::hex >> e.pc >> std::dec >> e.seq;
    ok = ok && !fields.fail();
    out.push_back(e);
  }
  return ok;
}

std::string diff_golden_traces(const std::vector<GoldenRetireEvent>& golden,
                               const std::vector<GoldenRetireEvent>& got) {
  const std::size_t n = std::min(golden.size(), got.size());
  std::ostringstream msg;
  for (std::size_t i = 0; i < n; ++i) {
    if (golden[i] == got[i]) continue;
    msg << "first divergence at retirement #" << i << ": golden {cycle "
        << golden[i].cycle << ", pc 0x" << std::hex << golden[i].pc << std::dec
        << ", seq " << golden[i].seq << "} vs got {cycle " << got[i].cycle << ", pc 0x"
        << std::hex << got[i].pc << std::dec << ", seq " << got[i].seq << "}";
    return msg.str();
  }
  if (golden.size() != got.size()) {
    msg << "trace length differs (golden " << golden.size() << ", got " << got.size()
        << "); first " << (golden.size() < got.size() ? "extra" : "missing")
        << " retirement is #" << n;
    if (n < got.size())
      msg << " at cycle " << got[n].cycle;
    else if (n < golden.size())
      msg << " at golden cycle " << golden[n].cycle;
    return msg.str();
  }
  return {};
}

int generated_main(int argc, char** argv, const std::string& machine_key) {
  std::string golden_path;
  core::EngineOptions options;
  options.backend = core::Backend::generated;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--golden" && i + 1 < argc) {
      golden_path = argv[++i];
    } else if (arg == "--backend" && i + 1 < argc) {
      const std::string b = argv[++i];
      if (b == "interpreted") {
        options.backend = core::Backend::interpreted;
      } else if (b == "compiled") {
        options.backend = core::Backend::compiled;
      } else if (b != "generated") {
        std::fprintf(stderr, "unknown backend '%s'\n", b.c_str());
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--golden FILE] [--backend generated|compiled|interpreted]\n"
          "Runs the %s golden workload on the generated simulator engine.\n"
          "Default: print the cycle-stamped retire trace to stdout.\n"
          "--golden FILE: diff the trace against FILE; exit 1 on the first\n"
          "divergence, naming its cycle.\n",
          argv[0], machine_key.c_str());
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s' (try --help)\n", arg.c_str());
      return 2;
    }
  }

  std::vector<GoldenRetireEvent> trace;
  try {
    trace = run_golden_machine(machine_key, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", machine_key.c_str(), e.what());
    return 2;
  }
  if (trace.empty()) {
    std::fprintf(stderr, "%s: workload retired nothing\n", machine_key.c_str());
    return 1;
  }

  if (golden_path.empty()) {
    std::fputs(format_golden_trace(machine_key, trace).c_str(), stdout);
    return 0;
  }

  std::vector<GoldenRetireEvent> golden;
  if (!load_golden_trace(golden_path, golden)) {
    std::fprintf(stderr, "%s: missing or malformed golden file %s\n",
                 machine_key.c_str(), golden_path.c_str());
    return 2;
  }
  const std::string diff = diff_golden_traces(golden, trace);
  if (!diff.empty()) {
    std::fprintf(stderr, "%s (generated): %s\n", machine_key.c_str(), diff.c_str());
    return 1;
  }
  std::printf("%s: %zu retirements match %s\n", machine_key.c_str(), trace.size(),
              golden_path.c_str());
  return 0;
}

}  // namespace rcpn::machines
