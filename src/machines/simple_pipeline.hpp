// The paper's Figure 2 example: a two-latch, four-unit pipeline, expressed
// as an RCPN with one instruction-independent sub-net (U1, the generator)
// and two instruction-type sub-nets: type A flows U2 -> U3 through latch L2,
// type B leaves from L1 through U4. Used by the quickstart example, the core
// integration tests and the CPN-conversion demo.
#pragma once

#include "core/engine.hpp"

namespace rcpn::machines {

class SimplePipeline {
 public:
  /// `to_generate` tokens are produced by U1, alternating type A / type B.
  explicit SimplePipeline(std::uint64_t to_generate);

  /// Run until every token drained (or `max_cycles`); returns cycles used.
  std::uint64_t run(std::uint64_t max_cycles = 1u << 20);

  core::Net& net() { return net_; }
  core::Engine& engine() { return eng_; }

  std::uint64_t generated() const { return generated_; }
  std::uint64_t u2_fires() const;
  std::uint64_t u3_fires() const;
  std::uint64_t u4_fires() const;

  core::PlaceId l1() const { return l1_; }
  core::PlaceId l2() const { return l2_; }

 private:
  core::Net net_;
  core::Engine eng_;
  std::uint64_t to_generate_;
  std::uint64_t generated_ = 0;
  core::TypeId type_a_ = core::kNoType, type_b_ = core::kNoType;
  core::PlaceId l1_ = core::kNoPlace, l2_ = core::kNoPlace;
  core::TransitionId u2_ = -1, u3_ = -1, u4_ = -1;
};

}  // namespace rcpn::machines
