// The paper's Figure 2 example: a two-latch, four-unit pipeline, expressed
// as an RCPN with one instruction-independent sub-net (U1, the generator)
// and two instruction-type sub-nets: type A flows U2 -> U3 through latch L2,
// type B leaves from L1 through U4. Used by the quickstart example, the core
// integration tests and the CPN-conversion demo.
//
// Described with the declarative model API: the machine context is a plain
// counter struct, the net is declared through ModelBuilder, and
// model::Simulator owns all three layers. The U1 delegates are *named* free
// functions registered with guard_named/action_named, so the model is fully
// emittable as a standalone generated simulator (gen::emit_simulator).
#pragma once

#include "machines/golden_trace.hpp"
#include "model/simulator.hpp"

namespace rcpn::machines {

/// Machine context of the Fig 2 model: the generator counters plus the ids
/// the named delegates read. The id fields are filled by the model
/// description (declaration order is deterministic, so they are the same on
/// every construction — which is what makes the delegates emittable).
struct Fig2Machine {
  std::uint64_t to_generate = 0;
  std::uint64_t generated = 0;
  core::TypeId ty_a = core::kNoType;
  core::TypeId ty_b = core::kNoType;
  core::PlaceId l1 = core::kNoPlace;
};

/// Named delegates of the Fig 2 model (referenced by symbol in generated
/// simulator sources).
bool fig2_u1_guard(Fig2Machine& m, core::FireCtx& ctx);
void fig2_u1_action(Fig2Machine& m, core::FireCtx& ctx);

/// The Fig 2 DelegateRegistry: symbol -> typed binding for the delegates
/// above, plus the emission metadata (machine type, header).
const desc::DelegateRegistry& fig2_delegates();

/// Fill the machine-context fields the delegates read (type ids, entry
/// place) by name from the lowered net — shared by the describe-callback and
/// description-loading construction paths.
void bind_fig2_context(const core::Net& net, Fig2Machine& m);

/// Golden-workload runner/inspector (key "fig2" in machines/golden_runner.hpp
/// and in every generated simulator emitted for this model): 64 tokens
/// through the Fig 2 pipeline.
GoldenRunResult golden_run_fig2(core::EngineOptions options);
void golden_inspect_fig2(core::EngineOptions options, const GoldenInspectFn& fn);

/// Checkpointable golden session (same 64-token workload, advanceable in
/// cycle chunks; see machines/golden_trace.hpp).
std::unique_ptr<GoldenSession> golden_session_fig2(core::EngineOptions options);

class SimplePipeline;

/// The golden workload itself (trace recording + run + stats), factored out
/// so the describe-callback and description-loaded construction paths run
/// byte-identical work.
GoldenRunResult golden_finish_fig2(SimplePipeline& sim);

class SimplePipeline {
 public:
  /// `to_generate` tokens are produced by U1, alternating type A / type B.
  /// `options` selects the backend and analysis knobs.
  explicit SimplePipeline(std::uint64_t to_generate, core::EngineOptions options = {});

  /// Model-as-data construction: the same machine, loaded from a serialized
  /// description (the fluent-handle accessors u2_fires()/l1()/... are not
  /// available on this path). Defined in machines/desc_machines.cpp.
  SimplePipeline(const desc::Description& d, const desc::DelegateRegistry& registry,
                 core::EngineOptions options, std::uint64_t to_generate);

  /// Run until every token drained (or `max_cycles`); returns cycles used.
  std::uint64_t run(std::uint64_t max_cycles = 1u << 20);

  core::Net& net() { return sim_.net(); }
  core::Engine& engine() { return sim_.engine(); }
  Fig2Machine& machine() { return sim_.machine(); }
  const Fig2Machine& machine() const { return sim_.machine(); }

  std::uint64_t generated() const { return sim_.machine().generated; }
  std::uint64_t u2_fires() const { return sim_.fires(u2_); }
  std::uint64_t u3_fires() const { return sim_.fires(u3_); }
  std::uint64_t u4_fires() const { return sim_.fires(u4_); }

  core::PlaceId l1() const { return l1_.id(); }
  core::PlaceId l2() const { return l2_.id(); }

 private:
  // Handles are assigned by the describe callback before sim_ finishes
  // constructing, so they are declared first.
  model::PlaceHandle l1_, l2_;
  model::TypeHandle type_a_, type_b_;
  model::TransitionHandle u2_, u3_, u4_;
  model::Simulator<Fig2Machine> sim_;
};

}  // namespace rcpn::machines
