// The paper's Figure 2 example: a two-latch, four-unit pipeline, expressed
// as an RCPN with one instruction-independent sub-net (U1, the generator)
// and two instruction-type sub-nets: type A flows U2 -> U3 through latch L2,
// type B leaves from L1 through U4. Used by the quickstart example, the core
// integration tests and the CPN-conversion demo.
//
// Described with the declarative model API: the machine context is a plain
// counter struct, the net is declared through ModelBuilder, and
// model::Simulator owns all three layers.
#pragma once

#include "model/simulator.hpp"

namespace rcpn::machines {

class SimplePipeline {
 public:
  /// `to_generate` tokens are produced by U1, alternating type A / type B.
  /// `options` selects the backend and analysis knobs.
  explicit SimplePipeline(std::uint64_t to_generate, core::EngineOptions options = {});

  /// Run until every token drained (or `max_cycles`); returns cycles used.
  std::uint64_t run(std::uint64_t max_cycles = 1u << 20);

  core::Net& net() { return sim_.net(); }
  core::Engine& engine() { return sim_.engine(); }

  std::uint64_t generated() const { return sim_.machine().generated; }
  std::uint64_t u2_fires() const { return sim_.fires(u2_); }
  std::uint64_t u3_fires() const { return sim_.fires(u3_); }
  std::uint64_t u4_fires() const { return sim_.fires(u4_); }

  core::PlaceId l1() const { return l1_.id(); }
  core::PlaceId l2() const { return l2_.id(); }

 private:
  struct Machine {
    std::uint64_t to_generate = 0;
    std::uint64_t generated = 0;
  };

  // Handles are assigned by the describe callback before sim_ finishes
  // constructing, so they are declared first.
  model::PlaceHandle l1_, l2_;
  model::TypeHandle type_a_, type_b_;
  model::TransitionHandle u2_, u3_, u4_;
  model::Simulator<Machine> sim_;
};

}  // namespace rcpn::machines
