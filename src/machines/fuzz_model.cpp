#include "machines/fuzz_model.hpp"

#include <random>
#include <stdexcept>
#include <string>

#include "desc/delegate_registry.hpp"
#include "machines/golden_session.hpp"
#include "model/simulator.hpp"

namespace rcpn::machines {

namespace {

std::int32_t fuzz_param(const std::vector<std::int32_t>& params,
                        core::TransitionId t) {
  return params[static_cast<std::size_t>(t)];
}

void fuzz_set_param(std::vector<std::int32_t>& params, core::TransitionId t,
                    std::int32_t v) {
  const auto idx = static_cast<std::size_t>(t);
  if (params.size() <= idx) params.resize(idx + 1, 0);
  params[idx] = v;
}

}  // namespace

bool fuzz_guard_periodic(core::FireCtx& ctx) {
  // Periodic stall keyed on token age and time.
  return (ctx.token->seq + ctx.engine->clock()) % 3 != 0;
}

bool fuzz_guard_window(core::FireCtx& ctx) {
  // Coarse clock window.
  return (ctx.engine->clock() >> 2) % 2 == 0;
}

bool fuzz_guard_backpressure(FuzzMachine& m, core::FireCtx& ctx) {
  // State-referencing backpressure (declared via reads_state at build time).
  const auto watched =
      static_cast<core::PlaceId>(fuzz_param(m.guard_param, ctx.transition));
  return ctx.engine->tokens_in_place(watched) < 2;
}

bool fuzz_guard_loop(FuzzMachine& m, core::FireCtx& ctx) {
  // token->raw is the feedback-arc trip counter, reset at fetch.
  return ctx.token->raw <
         static_cast<std::uint32_t>(fuzz_param(m.guard_param, ctx.transition));
}

bool fuzz_fetch_guard(FuzzMachine& m, core::FireCtx&) {
  return m.emitted < m.to_emit;
}

void fuzz_action_count(FuzzMachine& m, core::FireCtx&) { ++m.actions_run; }

void fuzz_action_delay(core::FireCtx& ctx) {
  // Token delay override for the next place entry.
  ctx.token->next_delay = 1 + ctx.token->seq % 3;
}

void fuzz_action_flush(FuzzMachine& m, core::FireCtx& ctx) {
  // Age-based flush of an earlier stage every 11th instruction.
  if (ctx.token->seq % 11 != 0) return;
  ++m.flushes;
  const auto victim =
      static_cast<core::StageId>(fuzz_param(m.action_param, ctx.transition));
  const std::uint32_t older_than = ctx.token->seq;
  ctx.engine->flush_stage_if(victim, [older_than](const core::Token& t) {
    return t.kind == core::TokenKind::instruction &&
           static_cast<const core::InstructionToken&>(t).seq > older_than;
  });
}

void fuzz_action_loop(FuzzMachine& m, core::FireCtx& ctx) {
  ++m.loops_taken;
  ++ctx.token->raw;
}

void fuzz_fetch_action(FuzzMachine& m, core::FireCtx& ctx) {
  core::InstructionToken* tok = ctx.engine->acquire_pooled_instruction();
  // Type and pc are a deterministic hash of the emission index.
  tok->type = m.fetch_types[(m.emitted * 2654435761u >> 8) % m.fetch_types.size()];
  tok->pc = 0x1000 + m.emitted * 4;
  tok->raw = 0;  // feedback-arc trip counter (recycled tokens keep raw)
  ++m.emitted;
  ctx.engine->emit_instruction(tok, m.entry);
}

const desc::DelegateRegistry& fuzz_delegates() {
  static const desc::DelegateRegistry reg = [] {
    desc::DelegateRegistry r("rcpn::machines::FuzzMachine",
                             {"machines/fuzz_model.hpp"});
    auto d = r.bind<FuzzMachine>();
    d.guard<&fuzz_guard_periodic>("rcpn::machines::fuzz_guard_periodic");
    d.guard<&fuzz_guard_window>("rcpn::machines::fuzz_guard_window");
    d.guard<&fuzz_guard_backpressure>("rcpn::machines::fuzz_guard_backpressure");
    d.guard<&fuzz_guard_loop>("rcpn::machines::fuzz_guard_loop");
    d.guard<&fuzz_fetch_guard>("rcpn::machines::fuzz_fetch_guard");
    d.action<&fuzz_action_count>("rcpn::machines::fuzz_action_count");
    d.action<&fuzz_action_delay>("rcpn::machines::fuzz_action_delay");
    d.action<&fuzz_action_flush>("rcpn::machines::fuzz_action_flush");
    d.action<&fuzz_action_loop>("rcpn::machines::fuzz_action_loop");
    d.action<&fuzz_fetch_action>("rcpn::machines::fuzz_fetch_action");
    return r;
  }();
  return reg;
}

void describe_fuzz_model(unsigned seed, model::ModelBuilder<FuzzMachine>& b,
                         FuzzMachine& m) {
  b.use_delegates(fuzz_delegates());

  std::mt19937 rng(seed);
  auto pick = [&rng](unsigned lo, unsigned hi) {  // inclusive range
    return lo + static_cast<unsigned>(rng() % (hi - lo + 1));
  };
  // Built without operator+(const char*, string&&) to sidestep a GCC 12
  // -Wrestrict false positive (PR105651) in the inlined insert path.
  auto tx_name = [](char kind, unsigned t, unsigned i) {
    std::string s(1, kind);
    s += std::to_string(t);
    s += '_';
    s += std::to_string(i);
    return s;
  };
  auto id_name = [](char kind, unsigned i) {
    std::string s(1, kind);
    s += std::to_string(i);
    return s;
  };

  const unsigned num_stages = pick(2, 6);
  const unsigned num_places = num_stages + pick(0, 2);
  const unsigned num_types = pick(1, 3);
  const unsigned width = pick(1, 3);
  m.to_emit = 80 + pick(0, 120);

  // Stages with small random capacities; the fetch stage must hold a full
  // issue group.
  std::vector<model::StageHandle> stages;
  for (unsigned s = 0; s < num_stages; ++s) {
    unsigned cap = pick(1, 3);
    if (s == 0 && cap < width) cap = width;
    stages.push_back(b.add_stage(id_name('S', s), cap));
  }
  // Occasionally pin a middle stage to two-list (conservative forwarding
  // timing), exercising the master/slave promotion path.
  if (num_stages > 2 && pick(0, 2) == 0)
    b.force_two_list(stages[1 + pick(0, num_stages - 3)], true);

  // Places in pipeline order, distributed over the stages (several places may
  // share one stage and its capacity).
  std::vector<model::PlaceHandle> places;
  std::vector<unsigned> place_stage;
  for (unsigned i = 0; i < num_places; ++i) {
    const unsigned s = i * num_stages / num_places;
    place_stage.push_back(s);
    places.push_back(b.add_place(id_name('P', i), stages[s], /*delay=*/pick(1, 2)));
  }

  // A roomy side stage for reservation tokens (orphans from flushes may
  // accumulate; the stage must never backpressure the net into deadlock).
  const model::StageHandle res_stage =
      b.add_stage("RES", static_cast<std::uint32_t>(m.to_emit + 8));
  const model::PlaceHandle res_place = b.add_place("RES", res_stage);

  std::vector<model::TypeHandle> types;
  for (unsigned t = 0; t < num_types; ++t)
    types.push_back(b.add_type(id_name('T', t)));

  // Per type: an emit/consume reservation pair on the chain (consume sites
  // get a fallback edge so a missing reservation stalls but never deadlocks).
  std::vector<int> res_emit_at(num_types, -1), res_consume_at(num_types, -1);
  for (unsigned t = 0; t < num_types; ++t) {
    if (num_places >= 2 && pick(0, 1) == 0) {
      const unsigned i = pick(0, num_places - 2);
      res_emit_at[t] = static_cast<int>(i);
      res_consume_at[t] = static_cast<int>(pick(i + 1, num_places - 1));
    }
  }

  // Guard mixes. Everything is a deterministic function of token fields, the
  // clock, machine counters and the per-transition parameter arrays, so both
  // backends — and an emitted freestanding artifact — evaluate identically.
  auto add_guard = [&](auto& tb, unsigned kind, unsigned backpressure_place) {
    switch (kind) {
      case 1:
        tb.guard_ref("rcpn::machines::fuzz_guard_periodic");
        break;
      case 2:
        tb.guard_ref("rcpn::machines::fuzz_guard_window");
        break;
      case 3: {
        tb.guard_ref("rcpn::machines::fuzz_guard_backpressure");
        fuzz_set_param(m.guard_param, tb.handle().id(),
                       places[backpressure_place].id());
        tb.reads_state(places[backpressure_place]);
        break;
      }
      default:
        break;
    }
  };
  auto add_action = [&](auto& tb, unsigned kind, unsigned from_place) {
    switch (kind) {
      case 1:
        tb.action_ref("rcpn::machines::fuzz_action_count");
        break;
      case 2:  // token delay override for the next place entry
        tb.action_ref("rcpn::machines::fuzz_action_delay");
        break;
      case 3: {  // age-based flush of an earlier stage every 11th instruction
        tb.action_ref("rcpn::machines::fuzz_action_flush");
        fuzz_set_param(m.action_param, tb.handle().id(),
                       stages[place_stage[pick(0, from_place)]].id());
        break;
      }
      default:
        break;
    }
  };

  // The sub-nets: for every (type, place) a forward edge (1-2 places ahead,
  // falling off the end retires), plus occasional lower-priority forks and
  // occasional *feedback* arcs ahead of the forward edge. This guarantees
  // every token always has a candidate transition wherever it sits, so
  // generated models cannot wedge on missing structure.
  for (unsigned t = 0; t < num_types; ++t) {
    for (unsigned i = 0; i < num_places; ++i) {
      const unsigned jump = pick(1, 2);
      const model::PlaceHandle target =
          (i + jump < num_places) ? places[i + jump] : b.end();
      const bool consume_here = res_consume_at[t] == static_cast<int>(i);
      std::uint8_t prio = 0;

      if (consume_here) {
        // Highest-priority consuming edge; the plain edge below is the
        // fallback.
        auto tb = b.add_transition(tx_name('c', t, i), types[t]);
        tb.from(places[i], prio++).consume_reservation(res_place).to(target);
        add_action(tb, pick(0, 2), i);
      }

      // Feedback arc (Fig 5's L1 loop shape): send the token back to an
      // earlier place, at most `trips` times per token (token->raw is the
      // trip counter, reset at fetch), tried *before* the forward edge so it
      // actually fires. The enclosed places form a real token cycle, so the
      // engine's SCC analysis puts their stages on the two-list algorithm.
      if (i >= 1 && pick(0, 4) == 0) {
        const unsigned back = pick(0, i - 1);
        const std::uint32_t trips = pick(1, 2);
        auto lb = b.add_transition(tx_name('l', t, i), types[t]);
        lb.from(places[i], prio++).to(places[back]);
        lb.guard_ref("rcpn::machines::fuzz_guard_loop");
        fuzz_set_param(m.guard_param, lb.handle().id(),
                       static_cast<std::int32_t>(trips));
        lb.action_ref("rcpn::machines::fuzz_action_loop");
      }

      const std::uint8_t main_prio = prio;
      auto tb = b.add_transition(tx_name('t', t, i), types[t]);
      tb.from(places[i], main_prio).to(target);
      if (res_emit_at[t] == static_cast<int>(i)) tb.emit_reservation(res_place);
      // Backpressure guards must watch a strictly *later* place: watching your
      // own (or an earlier) place can deadlock once it fills, and liveness of
      // the generated model is proven by induction from the last place back.
      unsigned guard_kind = pick(0, 3) == 1 ? pick(1, 3) : 0;
      if (guard_kind == 3 && i + 1 >= num_places) guard_kind = 1;
      add_guard(tb, guard_kind, i + 1 < num_places ? pick(i + 1, num_places - 1) : i);
      add_action(tb, pick(0, 4) == 0 ? 3 : pick(0, 2), i);

      if (pick(0, 3) == 0) {  // fork: alternative route at lower priority
        const unsigned fjump = pick(1, 3);
        const model::PlaceHandle ftarget =
            (i + fjump < num_places) ? places[i + fjump] : b.end();
        auto fb = b.add_transition(tx_name('f', t, i), types[t]);
        fb.from(places[i], static_cast<std::uint8_t>(main_prio + 1)).to(ftarget);
        add_action(fb, pick(0, 2), i);
      }
    }
  }

  // Multi-issue fetch: up to `width` fresh tokens per cycle.
  m.entry = places[0].id();
  m.fetch_types.clear();
  for (auto th : types) m.fetch_types.push_back(th.id());
  b.add_independent_transition("fetch")
      .guard_ref("rcpn::machines::fuzz_fetch_guard")
      .action_ref("rcpn::machines::fuzz_fetch_action")
      .max_fires_per_cycle(static_cast<int>(width))
      .to(places[0]);
}

core::EngineOptions fuzz_options_for(unsigned seed, core::Backend backend) {
  core::EngineOptions o;
  o.backend = backend;
  // Exercise the ablation analyses too: some seeds double-buffer every stage,
  // some drop the state-reference rule. Both engines of a lockstep pair get
  // identical options.
  o.force_two_list_all = seed % 7 == 3;
  o.two_list_state_refs = seed % 5 != 4;
  o.deadlock_limit = 20000;
  return o;
}

std::string fuzz_model_name(unsigned seed) { return "fuzz-" + std::to_string(seed); }

GoldenRunResult golden_finish_fuzz(model::Simulator<FuzzMachine>& sim,
                                   const std::string& name,
                                   std::uint64_t max_cycles) {
  GoldenRunResult r;
  record_golden_retires(sim.engine(), r.trace);
  const std::uint64_t kMaxCycles = max_cycles != 0 ? max_cycles : kFuzzDrainCap;
  std::uint64_t cycle = 0;
  for (; cycle < kMaxCycles; ++cycle) {
    if (sim.machine().emitted >= sim.machine().to_emit &&
        sim.engine().tokens_in_flight() == 0)
      break;
    if (!sim.step())
      throw std::runtime_error(name +
                               ": engine stopped (deadlocked model?) at cycle " +
                               std::to_string(cycle));
  }
  if (cycle >= kMaxCycles) throw std::runtime_error(name + ": model did not drain");
  r.stats = sim.engine().stats();
  return r;
}

GoldenRunResult golden_run_fuzz(unsigned seed, core::EngineOptions options,
                                std::uint64_t max_cycles) {
  model::Simulator<FuzzMachine> sim(
      fuzz_model_name(seed), options,
      [seed](model::ModelBuilder<FuzzMachine>& b, FuzzMachine& m) {
        describe_fuzz_model(seed, b, m);
      },
      FuzzMachine{});
  return golden_finish_fuzz(sim, fuzz_model_name(seed), max_cycles);
}

namespace {

class FuzzSession final : public SessionBase {
 public:
  FuzzSession(unsigned seed, core::EngineOptions options, std::uint64_t max_cycles)
      : name_(fuzz_model_name(seed)),
        cap_(max_cycles != 0 ? max_cycles : kFuzzDrainCap),
        sim_(
            name_, options,
            [seed](model::ModelBuilder<FuzzMachine>& b, FuzzMachine& m) {
              describe_fuzz_model(seed, b, m);
            },
            FuzzMachine{}) {
    record_golden_retires(sim_.engine(), trace_);
  }

  core::Engine& engine() override { return sim_.engine(); }

  bool advance(std::uint64_t cycles) override {
    // Same loop shape (and error behaviour) as golden_finish_fuzz: done is
    // checked *before* each step, and the iteration counter equals the engine
    // clock because the straight run steps exactly once per iteration from
    // cycle 0 — so a resumed session picks the count up from the clock.
    std::uint64_t cycle = sim_.engine().clock();
    for (std::uint64_t k = 0; k < cycles; ++k, ++cycle) {
      if (cycle >= cap_) throw std::runtime_error(name_ + ": model did not drain");
      if (done()) return false;
      if (!sim_.step())
        throw std::runtime_error(name_ +
                                 ": engine stopped (deadlocked model?) at cycle " +
                                 std::to_string(cycle));
    }
    return true;
  }

  std::string machine_key() const override { return name_; }
  std::string workload_id() const override { return "golden"; }

  void save_machine(ckpt::StateWriter& w, const ckpt::RefCoder&) const override {
    const FuzzMachine& m = sim_.machine();
    w.begin("fuzz")
        .field("emitted", m.emitted)
        .field("actions_run", m.actions_run)
        .field("flushes", m.flushes)
        .field("loops_taken", m.loops_taken)
        .end();
  }

  void restore_machine(ckpt::StateReader& r, const ckpt::RefCoder&) override {
    FuzzMachine& m = sim_.machine();
    r.next("fuzz");
    m.emitted = r.get_u64("emitted");
    m.actions_run = r.get_u64("actions_run");
    m.flushes = r.get_u64("flushes");
    m.loops_taken = r.get_u64("loops_taken");
  }

 private:
  bool done() {
    return sim_.machine().emitted >= sim_.machine().to_emit &&
           sim_.engine().tokens_in_flight() == 0;
  }

  std::string name_;
  std::uint64_t cap_;
  model::Simulator<FuzzMachine> sim_;
};

}  // namespace

std::unique_ptr<GoldenSession> make_fuzz_session(unsigned seed,
                                                 core::EngineOptions options,
                                                 std::uint64_t max_cycles) {
  return std::make_unique<FuzzSession>(seed, options, max_cycles);
}

}  // namespace rcpn::machines
