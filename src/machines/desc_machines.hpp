// Model-as-data entry points for the machines shipped with the library: the
// bridge between serialized .rcpn descriptions (src/desc/) and the concrete
// machine families (Fig2, Fig5, Tomasulo, StrongArm, XScale, StallCause,
// fuzz-N).
//
// This is deliberately the ONLY machines/ translation unit that includes the
// description parser: the machine cpps themselves stay parser-free so a
// freestanding amalgamated simulator (gen::emit_simulator) does not drag the
// .rcpn reader into the single-file artifact. desc_machines.cpp is excluded
// from the embedded-source set for the same reason (cmake/EmbedSources.cmake).
//
// The loaded path and the describe-callback path construct the same machine:
// each wrapper class has a description constructor that replays the .rcpn
// structure through ModelBuilderBase::from_description and then re-binds the
// machine-context ids by *name* against the lowered net (bind_*_context), and
// both paths share one golden_finish_* workload function — so round-trip
// equality (build -> describe -> load -> build -> identical trace + stats) is
// a meaningful check, not a tautology.
#pragma once

#include <string>

#include "desc/description.hpp"
#include "machines/golden_trace.hpp"

namespace rcpn::machines {

/// The DelegateRegistry for `d.machine_type` — every machine family shipped
/// with the library registers here. Throws model::ModelError when the
/// description names a machine type no shipped registry provides.
const desc::DelegateRegistry& delegates_for(const desc::Description& d);

/// Serialize machine `key`'s model under `options` into a Description.
/// `key` is a golden machine key (fig2, fig5, tomasulo, strongarm_crc,
/// xscale_adpcm, stallcause) or "fuzz-N" for the seeded random model N.
desc::Description describe_machine(const std::string& key, core::EngineOptions options);

/// Construct the machine family `d.model` names from the description and run
/// its fixed golden workload under `options` (the caller folds the
/// description's own options in first via desc::engine_options if desired).
/// `max_cycles` caps fuzz drains (0 = default). Throws model::ModelError for
/// a model name no shipped machine family claims.
GoldenRunResult run_description(const desc::Description& d, core::EngineOptions options,
                                std::uint64_t max_cycles = 0);

/// Construct from the description (engine built, workload NOT run) and hand
/// the net + engine to `fn` — the emitter's lowering hook for .rcpn inputs.
void inspect_description(const desc::Description& d, core::EngineOptions options,
                         const GoldenInspectFn& fn);

/// Golden machine key of a description's model name ("Fig2" -> "fig2"), or
/// "" when the model is not a golden machine (e.g. fuzz-N).
std::string description_machine_key(const desc::Description& d);

}  // namespace rcpn::machines
