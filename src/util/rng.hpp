// Deterministic xorshift RNG used by property tests and workload generators.
// Deliberately not std::mt19937: we want identical sequences across platforms
// and standard-library versions so that fuzzed co-simulation tests are
// reproducible from a seed printed in a failure message.
#pragma once

#include <cstdint>

namespace rcpn::util {

class Xorshift64 {
 public:
  explicit Xorshift64(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
      : state_(seed != 0 ? seed : 1) {}

  std::uint64_t next() {
    std::uint64_t x = state_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state_ = x;
    return x;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) { return below(den) < num; }

 private:
  std::uint64_t state_;
};

}  // namespace rcpn::util
