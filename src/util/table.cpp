#include "util/table.hpp"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace rcpn::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      // Left-align the first column (labels), right-align numbers.
      if (c == 0) {
        out << row[c] << std::string(width[c] - row[c].size(), ' ');
      } else {
        out << std::string(width[c] - row[c].size(), ' ') << row[c];
      }
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) out << (c ? "," : "") << row[c];
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace rcpn::util
