// bits.hpp is header-only; this translation unit pins the target in CMake and
// provides a home for any future out-of-line helpers.
#include "util/bits.hpp"
