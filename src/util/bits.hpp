// Bit-manipulation helpers shared across the ISA, cache and core layers.
#pragma once

#include <cstdint>

namespace rcpn::util {

/// Extract bits [lo, hi] (inclusive) of `v`, right-aligned.
constexpr std::uint32_t bits(std::uint32_t v, unsigned hi, unsigned lo) {
  const unsigned width = hi - lo + 1;
  if (width >= 32) return v >> lo;
  return (v >> lo) & ((1u << width) - 1u);
}

/// Extract a single bit of `v`.
constexpr std::uint32_t bit(std::uint32_t v, unsigned pos) {
  return (v >> pos) & 1u;
}

/// Sign-extend the low `width` bits of `v` to 32 bits.
constexpr std::int32_t sign_extend(std::uint32_t v, unsigned width) {
  const std::uint32_t m = 1u << (width - 1);
  return static_cast<std::int32_t>((v ^ m) - m);
}

/// Rotate right by `amount` (mod 32).
constexpr std::uint32_t rotr32(std::uint32_t v, unsigned amount) {
  amount &= 31u;
  if (amount == 0) return v;
  return (v >> amount) | (v << (32u - amount));
}

/// True iff `v` is a power of two (0 is not).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// log2 of a power of two.
constexpr unsigned log2_exact(std::uint64_t v) {
  unsigned n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

/// Number of set bits (population count) — used by LDM/STM register lists.
constexpr unsigned popcount32(std::uint32_t v) {
  unsigned n = 0;
  while (v != 0) {
    v &= v - 1;
    ++n;
  }
  return n;
}

/// Align `v` down to a multiple of `align` (power of two).
constexpr std::uint64_t align_down(std::uint64_t v, std::uint64_t align) {
  return v & ~(align - 1);
}

/// Carry-out of a 32-bit addition a + b + cin.
constexpr bool add_carry(std::uint32_t a, std::uint32_t b, bool cin) {
  const std::uint64_t s =
      static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b) + (cin ? 1 : 0);
  return (s >> 32) != 0;
}

/// Signed overflow of a 32-bit addition a + b + cin.
constexpr bool add_overflow(std::uint32_t a, std::uint32_t b, bool cin) {
  const std::uint32_t s = a + b + (cin ? 1u : 0u);
  return (~(a ^ b) & (a ^ s) & 0x8000'0000u) != 0;
}

}  // namespace rcpn::util
