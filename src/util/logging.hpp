// Minimal leveled logger. Cycle-accurate simulators are extremely hot loops,
// so trace logging must cost nothing when disabled: callers guard with
// `if (log_enabled(Level::trace))` before formatting.
#pragma once

#include <cstdio>
#include <string>

namespace rcpn::util {

enum class LogLevel : int { none = 0, error = 1, warn = 2, info = 3, trace = 4 };

/// Global log level; default warn. Settable via RCPN_LOG env var (0-4).
LogLevel log_level();
void set_log_level(LogLevel level);
bool log_enabled(LogLevel level);

/// Log a preformatted line with a level prefix to stderr.
void log_line(LogLevel level, const std::string& msg);

}  // namespace rcpn::util
