#include "util/rng.hpp"
