#include "util/logging.hpp"

#include <cstdlib>

namespace rcpn::util {
namespace {

LogLevel read_env_level() {
  if (const char* env = std::getenv("RCPN_LOG")) {
    const int v = std::atoi(env);
    if (v >= 0 && v <= 4) return static_cast<LogLevel>(v);
  }
  return LogLevel::warn;
}

LogLevel g_level = read_env_level();

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::error: return "[error] ";
    case LogLevel::warn: return "[warn ] ";
    case LogLevel::info: return "[info ] ";
    case LogLevel::trace: return "[trace] ";
    default: return "";
  }
}

}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }
bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(g_level);
}

void log_line(LogLevel level, const std::string& msg) {
  if (!log_enabled(level)) return;
  std::fputs(prefix(level), stderr);
  std::fputs(msg.c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace rcpn::util
