// Aligned text-table printer used by the benchmark harnesses to emit the
// paper's figure rows (Fig 10 / Fig 11) in a readable, diff-able form.
#pragma once

#include <string>
#include <vector>

namespace rcpn::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with `prec` decimals.
  static std::string fmt(double v, int prec = 1);

  /// Render with column alignment and a header underline.
  std::string to_string() const;

  /// Render as CSV (for machine post-processing of experiment outputs).
  std::string to_csv() const;

  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rcpn::util
