#include "predictor/predictor.hpp"

#include <cassert>

#include "util/bits.hpp"

namespace rcpn::predictor {

Prediction StaticNotTaken::predict(std::uint32_t) {
  ++stats_.lookups;
  return Prediction{};
}

void StaticNotTaken::update(std::uint32_t, bool, std::uint32_t, bool mispredicted) {
  ++stats_.updates;
  if (mispredicted) ++stats_.mispredicts;
}

Bimodal::Bimodal(std::uint32_t entries) : entries_(entries), counters_(entries, 1) {
  assert(util::is_pow2(entries));
}

void Bimodal::reset() {
  BranchPredictor::reset();
  counters_.assign(entries_, 1);
}

Prediction Bimodal::predict(std::uint32_t pc) {
  ++stats_.lookups;
  Prediction p;
  p.taken = counters_[index(pc)] >= 2;
  if (p.taken) ++stats_.predicted_taken;
  return p;
}

void Bimodal::update(std::uint32_t pc, bool taken, std::uint32_t, bool mispredicted) {
  ++stats_.updates;
  if (mispredicted) ++stats_.mispredicts;
  std::uint8_t& c = counters_[index(pc)];
  if (taken && c < 3) ++c;
  if (!taken && c > 0) --c;
}

Btb::Btb(std::uint32_t entries) : entries_(entries), table_(entries) {
  assert(util::is_pow2(entries));
}

void Btb::reset() {
  BranchPredictor::reset();
  table_.assign(entries_, Entry{});
}

Prediction Btb::predict(std::uint32_t pc) {
  ++stats_.lookups;
  const Entry& e = table_[index(pc)];
  Prediction p;
  if (e.valid && e.tag == pc) {
    p.taken = e.counter >= 2;
    p.target = e.target;
    p.target_known = true;
    if (p.taken) ++stats_.predicted_taken;
  }
  return p;
}

void Btb::update(std::uint32_t pc, bool taken, std::uint32_t target, bool mispredicted) {
  ++stats_.updates;
  if (mispredicted) ++stats_.mispredicts;
  Entry& e = table_[index(pc)];
  if (e.valid && e.tag == pc) {
    if (taken && e.counter < 3) ++e.counter;
    if (!taken && e.counter > 0) --e.counter;
    if (taken) e.target = target;
  } else if (taken) {
    // Allocate on taken branches only (typical BTB policy).
    e = Entry{pc, target, 2, true};
  }
}

}  // namespace rcpn::predictor
