// Branch predictors. RCPN transitions reference these "non-pipeline units"
// directly (paper §3, "Transition"): the fetch transition asks for a
// prediction, the branch-resolution transition updates the tables and
// triggers a flush on mispredict.
//
// Three variants:
//  * StaticNotTaken — SA-110 has no branch prediction hardware;
//  * Bimodal       — classic 2-bit saturating counter table;
//  * Btb           — tagged branch target buffer with 2-bit counters
//                    (XScale's 128-entry BTB).
#pragma once

#include <cstdint>
#include <vector>

namespace rcpn::predictor {

struct Prediction {
  bool taken = false;
  std::uint32_t target = 0;
  bool target_known = false;  // BTB hit
};

struct PredictorStats {
  std::uint64_t lookups = 0;
  std::uint64_t predicted_taken = 0;
  std::uint64_t updates = 0;
  std::uint64_t mispredicts = 0;
  double mispredict_ratio() const {
    return updates == 0 ? 0.0
                        : static_cast<double>(mispredicts) / static_cast<double>(updates);
  }
};

class BranchPredictor {
 public:
  virtual ~BranchPredictor() = default;
  virtual Prediction predict(std::uint32_t pc) = 0;
  /// `mispredicted` is the model's verdict (wrong direction or wrong target).
  virtual void update(std::uint32_t pc, bool taken, std::uint32_t target,
                      bool mispredicted) = 0;
  const PredictorStats& stats() const { return stats_; }
  virtual void reset() { stats_ = PredictorStats{}; }

 protected:
  PredictorStats stats_;
};

class StaticNotTaken final : public BranchPredictor {
 public:
  Prediction predict(std::uint32_t pc) override;
  void update(std::uint32_t pc, bool taken, std::uint32_t target,
              bool mispredicted) override;
};

class Bimodal final : public BranchPredictor {
 public:
  explicit Bimodal(std::uint32_t entries = 512);
  Prediction predict(std::uint32_t pc) override;
  void update(std::uint32_t pc, bool taken, std::uint32_t target,
              bool mispredicted) override;
  void reset() override;

 private:
  std::uint32_t index(std::uint32_t pc) const { return (pc >> 2) & (entries_ - 1); }
  std::uint32_t entries_;
  std::vector<std::uint8_t> counters_;  // 0..3, taken when >= 2
};

class Btb final : public BranchPredictor {
 public:
  explicit Btb(std::uint32_t entries = 128);
  Prediction predict(std::uint32_t pc) override;
  void update(std::uint32_t pc, bool taken, std::uint32_t target,
              bool mispredicted) override;
  void reset() override;

 private:
  struct Entry {
    std::uint32_t tag = 0;
    std::uint32_t target = 0;
    std::uint8_t counter = 0;
    bool valid = false;
  };
  std::uint32_t index(std::uint32_t pc) const { return (pc >> 2) & (entries_ - 1); }
  std::uint32_t entries_;
  std::vector<Entry> table_;
};

}  // namespace rcpn::predictor
