// Branch predictors. RCPN transitions reference these "non-pipeline units"
// directly (paper §3, "Transition"): the fetch transition asks for a
// prediction, the branch-resolution transition updates the tables and
// triggers a flush on mispredict.
//
// Three variants:
//  * StaticNotTaken — SA-110 has no branch prediction hardware;
//  * Bimodal       — classic 2-bit saturating counter table;
//  * Btb           — tagged branch target buffer with 2-bit counters
//                    (XScale's 128-entry BTB).
#pragma once

#include <cstdint>
#include <vector>

namespace rcpn::predictor {

struct Prediction {
  bool taken = false;
  std::uint32_t target = 0;
  bool target_known = false;  // BTB hit
};

struct PredictorStats {
  std::uint64_t lookups = 0;
  std::uint64_t predicted_taken = 0;
  std::uint64_t updates = 0;
  std::uint64_t mispredicts = 0;
  double mispredict_ratio() const {
    return updates == 0 ? 0.0
                        : static_cast<double>(mispredicts) / static_cast<double>(updates);
  }
};

class BranchPredictor {
 public:
  virtual ~BranchPredictor() = default;
  virtual Prediction predict(std::uint32_t pc) = 0;
  /// `mispredicted` is the model's verdict (wrong direction or wrong target).
  virtual void update(std::uint32_t pc, bool taken, std::uint32_t target,
                      bool mispredicted) = 0;
  const PredictorStats& stats() const { return stats_; }
  virtual void reset() { stats_ = PredictorStats{}; }
  /// Checkpoint support (src/ckpt/): predictor counters are timing state and
  /// must survive a snapshot/restore round trip verbatim.
  void ckpt_set_stats(const PredictorStats& s) { stats_ = s; }

 protected:
  PredictorStats stats_;
};

class StaticNotTaken final : public BranchPredictor {
 public:
  Prediction predict(std::uint32_t pc) override;
  void update(std::uint32_t pc, bool taken, std::uint32_t target,
              bool mispredicted) override;
};

class Bimodal final : public BranchPredictor {
 public:
  explicit Bimodal(std::uint32_t entries = 512);
  Prediction predict(std::uint32_t pc) override;
  void update(std::uint32_t pc, bool taken, std::uint32_t target,
              bool mispredicted) override;
  void reset() override;

  // Checkpoint support: the 2-bit counter table, raw.
  const std::vector<std::uint8_t>& counters() const { return counters_; }
  void ckpt_set_counter(std::uint32_t i, std::uint8_t v) { counters_[i] = v; }

 private:
  std::uint32_t index(std::uint32_t pc) const { return (pc >> 2) & (entries_ - 1); }
  std::uint32_t entries_;
  std::vector<std::uint8_t> counters_;  // 0..3, taken when >= 2
};

class Btb final : public BranchPredictor {
 public:
  explicit Btb(std::uint32_t entries = 128);
  Prediction predict(std::uint32_t pc) override;
  void update(std::uint32_t pc, bool taken, std::uint32_t target,
              bool mispredicted) override;
  void reset() override;

  // Checkpoint support: tagged entries, raw.
  struct CkptEntry {
    std::uint32_t tag = 0;
    std::uint32_t target = 0;
    std::uint8_t counter = 0;
    bool valid = false;
  };
  std::uint32_t num_entries() const { return entries_; }
  CkptEntry ckpt_entry(std::uint32_t i) const {
    const Entry& e = table_[i];
    return CkptEntry{e.tag, e.target, e.counter, e.valid};
  }
  void ckpt_set_entry(std::uint32_t i, const CkptEntry& e) {
    table_[i] = Entry{e.tag, e.target, e.counter, e.valid};
  }

 private:
  struct Entry {
    std::uint32_t tag = 0;
    std::uint32_t target = 0;
    std::uint8_t counter = 0;
    bool valid = false;
  };
  std::uint32_t index(std::uint32_t pc) const { return (pc >> 2) & (entries_ - 1); }
  std::uint32_t entries_;
  std::vector<Entry> table_;
};

}  // namespace rcpn::predictor
