// Exporters over an obs::Hub (ring + profile + meta captured at build()):
//
//  * export_chrome_trace() — Chrome-trace-event JSON (the format Perfetto and
//    chrome://tracing load directly). One thread track per pipeline stage
//    (tid = stage + 1; tid 0 carries the independent sub-net), instruction
//    tokens as async "b"/"e" spans keyed by sequence number, transition fires
//    and stalls as instant events on their stage's track, and per-stage
//    occupancy counter tracks. Timestamps are cycle numbers (the trace-event
//    µs convention: 1 cycle renders as 1 µs).
//
//  * format_profile() — the aggregate StageProfile as a text report:
//    occupancy histograms with mean/max, per-place stall-cause breakdowns and
//    fires-vs-attempts per transition (the candidate-scan hit rate that feeds
//    profile-guided emission, ROADMAP #1).
//
// Both operate purely on the hub, so they work in every build configuration
// (hand-built hubs in tests) and after the engine is gone.
#pragma once

#include <string>

#include "obs/probe.hpp"

namespace rcpn::obs {

/// Serialize the hub's retained events as Chrome-trace-event JSON. Truncation
/// from ring overflow is flagged in otherData.dropped_events, and spans whose
/// begin was evicted are silently re-anchored (no unbalanced "e" records).
std::string export_chrome_trace(const Hub& hub);

/// Human-readable aggregate profile report.
std::string format_profile(const Hub& hub);

}  // namespace rcpn::obs
