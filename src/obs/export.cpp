#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <unordered_map>

namespace rcpn::obs {

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string hex_pc(std::uint64_t pc) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(pc));
  return buf;
}

/// tid of the thread track carrying a place's events (stage + 1; tid 0 is the
/// independent sub-net / engine track).
int place_tid(const Meta& meta, std::int16_t place) {
  if (place < 0 || static_cast<std::size_t>(place) >= meta.place_stage.size())
    return 0;
  return meta.place_stage[static_cast<std::size_t>(place)] + 1;
}

const std::string& name_or(const std::vector<std::string>& names, std::int16_t id,
                           const std::string& fallback) {
  if (id < 0 || static_cast<std::size_t>(id) >= names.size()) return fallback;
  return names[static_cast<std::size_t>(id)];
}

}  // namespace

std::string export_chrome_trace(const Hub& hub) {
  const Meta& meta = hub.meta();
  const std::vector<Event> events = hub.sink().snapshot();
  static const std::string kUnknown = "?";

  std::string out;
  out.reserve(events.size() * 96 + 4096);
  out += "{\"traceEvents\":[\n";

  // Metadata first: the process is the model, one named thread per stage.
  out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"";
  append_json_escaped(out, meta.model);
  out += "\"}},\n";
  out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,\"name\":\"thread_name\","
         "\"args\":{\"name\":\"independent\"}}";
  for (std::size_t s = 0; s < meta.stage_names.size(); ++s) {
    out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(s + 1);
    out += ",\"ts\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"";
    append_json_escaped(out, meta.stage_names[s]);
    out += "\"}}";
  }

  auto emit = [&out](const std::string& body) {
    out += ",\n{";
    out += body;
    out += '}';
  };

  struct OpenSpan {
    std::uint64_t span_id;
    int tid;
  };
  std::unordered_map<std::uint32_t, OpenSpan> open;  // seq -> residency span
  std::uint64_t next_span = 1;
  std::uint64_t last_cycle = 0;

  auto close_span = [&](std::uint32_t seq, std::uint64_t cycle) {
    auto it = open.find(seq);
    if (it == open.end()) return;  // begin evicted by the ring — drop, don't
                                   // emit an unbalanced "e".
    std::string b = "\"ph\":\"e\",\"cat\":\"token\",\"pid\":1,\"tid\":";
    b += std::to_string(it->second.tid);
    b += ",\"ts\":";
    b += std::to_string(cycle);
    b += ",\"id\":\"";
    b += std::to_string(it->second.span_id);
    b += "\",\"name\":\"insn\"";
    emit(b);
    open.erase(it);
  };

  for (const Event& e : events) {
    last_cycle = std::max(last_cycle, e.cycle);
    switch (e.kind) {
      case EventKind::token_enter: {
        close_span(e.seq, e.cycle);
        const int tid = place_tid(meta, e.place);
        const std::uint64_t id = next_span++;
        open[e.seq] = OpenSpan{id, tid};
        std::string b = "\"ph\":\"b\",\"cat\":\"token\",\"pid\":1,\"tid\":";
        b += std::to_string(tid);
        b += ",\"ts\":";
        b += std::to_string(e.cycle);
        b += ",\"id\":\"";
        b += std::to_string(id);
        b += "\",\"name\":\"insn\",\"args\":{\"seq\":";
        b += std::to_string(e.seq);
        b += ",\"pc\":\"";
        b += hex_pc(e.pc);
        b += "\",\"place\":\"";
        append_json_escaped(b, name_or(meta.place_names, e.place, kUnknown));
        b += "\"}";
        emit(b);
        break;
      }
      case EventKind::retire:
      case EventKind::squash: {
        close_span(e.seq, e.cycle);
        std::string b = "\"ph\":\"i\",\"s\":\"p\",\"pid\":1,\"tid\":0,\"ts\":";
        b += std::to_string(e.cycle);
        b += ",\"name\":\"";
        b += e.kind == EventKind::retire ? "retire" : "squash";
        b += "\",\"args\":{\"seq\":";
        b += std::to_string(e.seq);
        b += ",\"pc\":\"";
        b += hex_pc(e.pc);
        b += "\"}";
        emit(b);
        break;
      }
      case EventKind::fire: {
        const std::int16_t tp =
            e.transition >= 0 &&
                    static_cast<std::size_t>(e.transition) < meta.transition_place.size()
                ? meta.transition_place[static_cast<std::size_t>(e.transition)]
                : std::int16_t{-1};
        std::string b = "\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":";
        b += std::to_string(place_tid(meta, tp));
        b += ",\"ts\":";
        b += std::to_string(e.cycle);
        b += ",\"name\":\"fire ";
        append_json_escaped(b, name_or(meta.transition_names, e.transition, kUnknown));
        b += "\"";
        emit(b);
        break;
      }
      case EventKind::stall: {
        std::string b = "\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":";
        b += std::to_string(place_tid(meta, e.place));
        b += ",\"ts\":";
        b += std::to_string(e.cycle);
        b += ",\"name\":\"stall ";
        b += core::stall_cause_name(e.cause);
        b += "\",\"args\":{\"place\":\"";
        append_json_escaped(b, name_or(meta.place_names, e.place, kUnknown));
        b += "\",\"seq\":";
        b += std::to_string(e.seq);
        b += ",\"pc\":\"";
        b += hex_pc(e.pc);
        b += "\"}";
        emit(b);
        break;
      }
      case EventKind::occupancy: {
        // place field carries the STAGE id for occupancy samples.
        std::string b = "\"ph\":\"C\",\"pid\":1,\"tid\":";
        b += std::to_string(e.place + 1);
        b += ",\"ts\":";
        b += std::to_string(e.cycle);
        b += ",\"name\":\"occ ";
        append_json_escaped(b, name_or(meta.stage_names, e.place, kUnknown));
        b += "\",\"args\":{\"tokens\":";
        b += std::to_string(e.value);
        b += "}";
        emit(b);
        break;
      }
    }
  }

  // Close spans still open at the end of the recording so every "b" has its
  // "e" (tokens in flight when the run stopped).
  while (!open.empty()) close_span(open.begin()->first, last_cycle);

  out += "\n],\n\"displayTimeUnit\":\"ns\",\n\"otherData\":{\"model\":\"";
  append_json_escaped(out, meta.model);
  out += "\",\"clock\":\"1 cycle = 1 trace us\",\"retained_events\":";
  out += std::to_string(events.size());
  out += ",\"dropped_events\":";
  out += std::to_string(hub.sink().dropped());
  out += "}}\n";
  return out;
}

std::string format_profile(const Hub& hub) {
  const Meta& meta = hub.meta();
  const StageProfile& p = hub.profile();
  std::ostringstream out;
  out << "profile: " << meta.model << "  (cycles: " << p.cycles << ")\n";
  out << "ring: " << hub.sink().size() << " events retained, "
      << hub.sink().dropped() << " dropped\n";

  out << "stage occupancy (end-of-cycle, tokens -> cycles):\n";
  for (std::size_t s = 0; s < p.occupancy_hist.size(); ++s) {
    const auto& row = p.occupancy_hist[s];
    std::uint64_t total = 0, weighted = 0;
    std::size_t max_occ = 0;
    for (std::size_t occ = 0; occ < row.size(); ++occ) {
      total += row[occ];
      weighted += row[occ] * occ;
      if (row[occ] != 0) max_occ = occ;
    }
    out << "  " << (s < meta.stage_names.size() ? meta.stage_names[s] : "?")
        << ": mean "
        << (total == 0 ? 0.0
                       : static_cast<double>(weighted) / static_cast<double>(total))
        << " max " << max_occ << "  [";
    for (std::size_t occ = 0; occ <= max_occ && occ < row.size(); ++occ) {
      if (occ != 0) out << ' ';
      out << row[occ];
    }
    out << "]\n";
  }

  out << "stall causes (no_ready/guard/capacity):\n";
  for (std::size_t pl = 0; pl * core::kNumStallCauses + (core::kNumStallCauses - 1) <
                           p.stall_causes.size();
       ++pl) {
    const std::uint64_t* c = &p.stall_causes[pl * core::kNumStallCauses];
    const std::uint64_t total = c[0] + c[1] + c[2];
    if (total == 0) continue;
    out << "  " << (pl < meta.place_names.size() ? meta.place_names[pl] : "?")
        << ": " << total << " (" << c[0] << "/" << c[1] << "/" << c[2] << ")\n";
  }

  out << "transition candidate scans (fires/attempts):\n";
  for (std::size_t t = 0; t < p.fires.size() && t < p.attempts.size(); ++t) {
    if (p.attempts[t] == 0 && p.fires[t] == 0) continue;
    out << "  "
        << (t < meta.transition_names.size() ? meta.transition_names[t] : "?")
        << ": " << p.fires[t] << "/" << p.attempts[t];
    if (p.attempts[t] != 0) {
      out << " (" << (100.0 * static_cast<double>(p.fires[t]) /
                      static_cast<double>(p.attempts[t]))
          << "%)";
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace rcpn::obs
