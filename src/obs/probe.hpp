// Observability probe layer: cycle-stamped structured events + aggregate
// profiles for every engine backend.
//
// A Hub is attached to a run through core::EngineOptions::obs (runtime-only:
// it never participates in job identity, generated-artifact options keys or
// golden traces). The engines call the on_*() probe entry points from shared
// accounting helpers, so all four backends — interpreted, compiled,
// generated(linked) and freestanding — emit *identical* event streams for the
// same (machine, workload, options) run; tests/test_obs.cpp pins this.
//
// Compile-time gating: the probe call sites in the engines sit behind
// `#if RCPN_OBS` (a cmake option, -DRCPN_OBS=ON), so a default build carries
// zero probe code in the hot loop — bench_obs_overhead asserts an attached
// hub then costs nothing. This header itself always compiles (the exporters
// and their tests work on hand-built hubs in any configuration).
//
// Two consumers sit on top (src/obs/export.hpp):
//  * export_chrome_trace() — Chrome-trace-event / Perfetto JSON, one track
//    per pipeline stage;
//  * format_profile() — the aggregate StageProfile as a text report
//    (occupancy histograms, stall-cause breakdowns, firing-cost counters).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/stats.hpp"

namespace rcpn::obs {

enum class EventKind : std::uint8_t {
  /// An instruction token entered a (non-end) place.
  token_enter,
  /// An instruction token reached the virtual end stage.
  retire,
  /// An instruction token was squashed by a flush.
  squash,
  /// A transition fired (instruction or independent sub-net).
  fire,
  /// A ready token found no firable transition this cycle (cause attached).
  stall,
  /// A stage's occupancy changed (sampled at end of cycle; value = tokens).
  occupancy,
};

const char* event_kind_name(EventKind k);

/// One cycle-stamped probe event. Field use depends on kind:
///  token_enter  place, seq, pc
///  retire       seq, pc
///  squash       seq, pc
///  fire         transition
///  stall        place, cause, seq, pc (the stalled token)
///  occupancy    place = STAGE id, value = token count
struct Event {
  std::uint64_t cycle = 0;
  std::uint64_t pc = 0;
  std::uint32_t seq = 0;
  std::uint32_t value = 0;
  std::int16_t place = -1;
  std::int16_t transition = -1;
  EventKind kind = EventKind::token_enter;
  core::StallCause cause = core::StallCause::no_ready_token;

  bool operator==(const Event&) const = default;
};

/// Bounded ring buffer of probe events: drop-oldest on overflow, with a
/// dropped counter so exporters can flag truncation instead of hiding it.
class EventSink {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

  explicit EventSink(std::size_t capacity = kDefaultCapacity)
      : buf_(capacity == 0 ? 1 : capacity) {}

  void push(const Event& e) {
    buf_[head_] = e;
    head_ = head_ + 1 == buf_.size() ? 0 : head_ + 1;
    if (size_ < buf_.size()) {
      ++size_;
    } else {
      ++dropped_;
    }
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }
  /// Events evicted because the ring was full (oldest-first eviction).
  std::uint64_t dropped() const { return dropped_; }

  /// The retained events, oldest first.
  std::vector<Event> snapshot() const {
    std::vector<Event> out;
    out.reserve(size_);
    const std::size_t start = size_ < buf_.size() ? 0 : head_;
    for (std::size_t i = 0; i < size_; ++i)
      out.push_back(buf_[(start + i) % buf_.size()]);
    return out;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
  }

  /// Checkpoint support (src/ckpt/): restore replays the retained events via
  /// push() and then reinstates the eviction counter, so a resumed run's
  /// stream (retained events + dropped count) matches the straight run's.
  void ckpt_set_dropped(std::uint64_t d) { dropped_ = d; }

 private:
  std::vector<Event> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Model identity captured at Engine::build(): the names and the place->stage
/// mapping the exporters need, so exporting needs no live Net.
struct Meta {
  std::string model;
  std::vector<std::string> stage_names;
  std::vector<std::string> place_names;
  std::vector<std::int16_t> place_stage;  // PlaceId -> owning StageId
  std::vector<std::string> transition_names;
  /// Trigger place of each transition (-1 for independent transitions).
  std::vector<std::int16_t> transition_place;
};

/// Aggregate counters extending core::Stats with the per-structure breakdown
/// the paper's analysis lacks: where cycles pool up (occupancy), why tokens
/// wait (stall causes) and what candidate scans cost (fires vs attempts —
/// the input for profile-guided emission, ROADMAP #1).
struct StageProfile {
  std::uint64_t cycles = 0;
  /// [stage][occupancy] -> number of cycles the stage ended holding exactly
  /// that many tokens (visible + incoming). Rows grow on demand.
  std::vector<std::vector<std::uint64_t>> occupancy_hist;
  /// [place * core::kNumStallCauses + cause] — mirrors
  /// core::Stats::place_stall_causes (the always-on attribution); kept here
  /// too so a profile is self-contained once the engine is gone.
  std::vector<std::uint64_t> stall_causes;
  /// [transition] -> firings (mirrors Stats::transition_fires).
  std::vector<std::uint64_t> fires;
  /// [transition] -> candidate evaluations (try_fire entries + independent
  /// enable checks). attempts - fires = wasted scan work per transition.
  std::vector<std::uint64_t> attempts;

  bool operator==(const StageProfile&) const = default;
};

struct HubOptions {
  std::size_t ring_capacity = EventSink::kDefaultCapacity;
  /// Record individual events into the ring (the profile always aggregates).
  bool record_events = true;
};

/// Per-engine observability hub: the ring buffer, the aggregate profile and
/// the model meta. Not thread-safe — one hub per engine/run, like the engine
/// itself. Attach with `options.obs = &hub` before the run; the engine binds
/// the meta at build().
class Hub {
 public:
  explicit Hub(HubOptions options = {})
      : options_(options), sink_(options.ring_capacity) {}

  /// Called by Engine::build(). Sizes the profile; re-binding with the same
  /// shape (e.g. a rebuild of the same model) preserves accumulated counters.
  void bind(Meta meta) {
    const bool same_shape =
        bound_ && meta.place_names.size() == meta_.place_names.size() &&
        meta.transition_names.size() == meta_.transition_names.size() &&
        meta.stage_names.size() == meta_.stage_names.size();
    meta_ = std::move(meta);
    if (!same_shape) {
      profile_ = StageProfile{};
      profile_.occupancy_hist.resize(meta_.stage_names.size());
      profile_.stall_causes.assign(
          meta_.place_names.size() * core::kNumStallCauses, 0);
      profile_.fires.assign(meta_.transition_names.size(), 0);
      profile_.attempts.assign(meta_.transition_names.size(), 0);
      last_occ_.assign(meta_.stage_names.size(), ~std::uint32_t{0});
    }
    bound_ = true;
  }

  bool bound() const { return bound_; }
  const Meta& meta() const { return meta_; }
  EventSink& sink() { return sink_; }
  const EventSink& sink() const { return sink_; }
  const StageProfile& profile() const { return profile_; }

  /// Drop recorded events and counters; keep the binding.
  void clear() {
    sink_.clear();
    profile_ = StageProfile{};
    profile_.occupancy_hist.resize(meta_.stage_names.size());
    profile_.stall_causes.assign(meta_.place_names.size() * core::kNumStallCauses,
                                 0);
    profile_.fires.assign(meta_.transition_names.size(), 0);
    profile_.attempts.assign(meta_.transition_names.size(), 0);
    last_occ_.assign(meta_.stage_names.size(), ~std::uint32_t{0});
  }

  // -- probe entry points (engines call these from shared helpers) ------------

  void on_token_enter(std::uint64_t cycle, std::int16_t place, std::uint32_t seq,
                      std::uint64_t pc) {
    if (options_.record_events)
      sink_.push(Event{cycle, pc, seq, 0, place, -1, EventKind::token_enter,
                       core::StallCause::no_ready_token});
  }

  void on_retire(std::uint64_t cycle, std::uint32_t seq, std::uint64_t pc) {
    if (options_.record_events)
      sink_.push(Event{cycle, pc, seq, 0, -1, -1, EventKind::retire,
                       core::StallCause::no_ready_token});
  }

  void on_squash(std::uint64_t cycle, std::uint32_t seq, std::uint64_t pc) {
    if (options_.record_events)
      sink_.push(Event{cycle, pc, seq, 0, -1, -1, EventKind::squash,
                       core::StallCause::no_ready_token});
  }

  void on_fire(std::uint64_t cycle, std::int16_t transition) {
    if (static_cast<std::size_t>(transition) < profile_.fires.size())
      ++profile_.fires[static_cast<std::size_t>(transition)];
    if (options_.record_events)
      sink_.push(Event{cycle, 0, 0, 0, -1, transition, EventKind::fire,
                       core::StallCause::no_ready_token});
  }

  void on_attempt(std::int16_t transition) {
    if (static_cast<std::size_t>(transition) < profile_.attempts.size())
      ++profile_.attempts[static_cast<std::size_t>(transition)];
  }

  void on_stall(std::uint64_t cycle, std::int16_t place, core::StallCause cause,
                std::uint32_t seq, std::uint64_t pc) {
    const std::size_t idx = static_cast<std::size_t>(place) * core::kNumStallCauses +
                            static_cast<std::size_t>(cause);
    if (idx < profile_.stall_causes.size()) ++profile_.stall_causes[idx];
    if (options_.record_events)
      sink_.push(Event{cycle, pc, seq, 0, place, -1, EventKind::stall, cause});
  }

  /// End-of-cycle occupancy sample for one stage. The histogram accumulates
  /// every cycle; a ring event is only recorded when the value changed, so
  /// the trace stays proportional to activity, not run length.
  void sample_stage(std::uint64_t cycle, std::int16_t stage, std::uint32_t occ) {
    const auto s = static_cast<std::size_t>(stage);
    if (s < profile_.occupancy_hist.size()) {
      auto& row = profile_.occupancy_hist[s];
      if (row.size() <= occ) row.resize(occ + 1, 0);
      ++row[occ];
    }
    if (options_.record_events && s < last_occ_.size() && last_occ_[s] != occ) {
      last_occ_[s] = occ;
      sink_.push(Event{cycle, 0, 0, occ, stage, -1, EventKind::occupancy,
                       core::StallCause::no_ready_token});
    }
  }

  void on_cycle_end(std::uint64_t /*cycle*/) { ++profile_.cycles; }

  // -- checkpoint support (src/ckpt/) -----------------------------------------
  // The ring contents, the aggregate profile and the occupancy
  // change-detection latch are all run state: restoring them makes the
  // resumed run's event stream byte-identical to the straight run's.
  StageProfile& ckpt_profile() { return profile_; }
  const std::vector<std::uint32_t>& last_occ() const { return last_occ_; }
  void ckpt_set_last_occ(std::size_t stage, std::uint32_t occ) {
    if (stage < last_occ_.size()) last_occ_[stage] = occ;
  }

 private:
  HubOptions options_;
  EventSink sink_;
  Meta meta_;
  StageProfile profile_;
  /// Last occupancy value recorded per stage (change detection for counter
  /// events); ~0 forces a baseline event on the first sample.
  std::vector<std::uint32_t> last_occ_;
  bool bound_ = false;
};

}  // namespace rcpn::obs
