#include "obs/probe.hpp"

namespace rcpn::obs {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::token_enter: return "token_enter";
    case EventKind::retire: return "retire";
    case EventKind::squash: return "squash";
    case EventKind::fire: return "fire";
    case EventKind::stall: return "stall";
    case EventKind::occupancy: return "occupancy";
  }
  return "?";
}

}  // namespace rcpn::obs
