#include "model/model_builder.hpp"

#include <atomic>
#include <cassert>
#include <unordered_set>

namespace rcpn::model {

namespace {
detail::ModelTag next_tag() {
  static std::atomic<detail::ModelTag> counter{detail::kNoModel};
  return ++counter;
}
}  // namespace

ModelBuilderBase::ModelBuilderBase(std::string name)
    : name_(std::move(name)), tag_(next_tag()) {}

StageHandle ModelBuilderBase::add_stage(std::string name, std::uint32_t capacity) {
  // Mirrors core::Net id assignment: id 0 is the virtual end stage.
  const auto id = static_cast<core::StageId>(stages_.size() + 1);
  stages_.push_back(StageDef{std::move(name), capacity, std::nullopt});
  return StageHandle(tag_, id);
}

PlaceHandle ModelBuilderBase::add_place(std::string name, StageHandle stage,
                                        std::uint32_t delay) {
  const auto id = static_cast<core::PlaceId>(places_.size() + 1);
  places_.push_back(PlaceDef{std::move(name), stage, delay, /*end=*/false});
  return PlaceHandle(tag_, id);
}

PlaceHandle ModelBuilderBase::add_end_place(std::string name) {
  const auto id = static_cast<core::PlaceId>(places_.size() + 1);
  places_.push_back(PlaceDef{std::move(name), StageHandle{}, 1, /*end=*/true});
  return PlaceHandle(tag_, id);
}

TypeHandle ModelBuilderBase::add_type(std::string name) {
  const auto id = static_cast<core::TypeId>(types_.size());
  types_.push_back(std::move(name));
  return TypeHandle(tag_, id);
}

void ModelBuilderBase::force_two_list(StageHandle stage, bool value) {
  check_handle(stage, "stage", stages_.size(), "force_two_list()");
  if (stage.id() == 0) fail("force_two_list(): the virtual end stage cannot be two-list");
  stages_[static_cast<unsigned>(stage.id()) - 1].forced_two_list = value;
}

core::Net& ModelBuilderBase::net() {
  if (!net_) fail("net() before build()");
  return *net_;
}

const core::Net& ModelBuilderBase::net() const {
  if (!net_) fail("net() before build()");
  return *net_;
}

ModelBuilderBase::TransitionDef& ModelBuilderBase::add_transition_def(
    std::string name, TypeHandle type, bool independent, TransitionHandle* out_handle) {
  const auto id = static_cast<core::TransitionId>(transitions_.size());
  transitions_.push_back(TransitionDef{});
  TransitionDef& def = transitions_.back();
  def.name = std::move(name);
  def.type = type;
  def.independent = independent;
  *out_handle = TransitionHandle(tag_, id);
  return def;
}

void ModelBuilderBase::fail(const std::string& what) const {
  throw ModelError("model '" + name_ + "': " + what);
}

void ModelBuilderBase::check_handle_base(detail::ModelTag model, const char* kind, int id,
                                         std::size_t limit,
                                         const std::string& context) const {
  if (model == detail::kNoModel)
    fail(context + ": dangling " + kind + " handle (default-constructed, never declared)");
  if (model != tag_)
    fail(context + ": " + kind + " handle belongs to a different model");
  if (id < 0 || static_cast<std::size_t>(id) > limit)
    fail(context + ": " + kind + " handle out of range");
}

void ModelBuilderBase::validate() const {
  // -- entity declarations ----------------------------------------------------
  std::unordered_set<std::string> seen;
  for (const StageDef& s : stages_) {
    if (s.capacity == 0)
      fail("stage '" + s.name + "' has zero capacity (capacity 0 is reserved for the end stage)");
    if (!seen.insert(s.name).second) fail("duplicate stage name '" + s.name + "'");
  }
  seen.clear();
  for (const PlaceDef& p : places_) {
    if (p.delay == 0)
      fail("place '" + p.name + "' has zero delay (a place holds its token for >= 1 cycle)");
    if (!p.end) {
      check_handle(p.stage, "stage", stages_.size(), "place '" + p.name + "'");
      if (p.stage.id() == 0)
        fail("place '" + p.name + "' binds to the virtual end stage; use add_end_place()");
    }
    if (!seen.insert(p.name).second) fail("duplicate place name '" + p.name + "'");
  }
  seen.clear();
  for (const std::string& t : types_)
    if (!seen.insert(t).second) fail("duplicate operation-class name '" + t + "'");

  // Unreachable stages: a stage no place binds to can never hold a token, so
  // its declared capacity is dead weight — almost certainly a model typo
  // (a place bound to the wrong StageHandle).
  std::vector<bool> stage_used(stages_.size(), false);
  for (const PlaceDef& p : places_)
    if (!p.end) stage_used[static_cast<unsigned>(p.stage.id()) - 1] = true;
  for (std::size_t i = 0; i < stages_.size(); ++i)
    if (!stage_used[i])
      fail("stage '" + stages_[i].name +
           "' is unreachable: no place binds to it, so no token can ever enter it");

  // -- transitions ------------------------------------------------------------
  for (const TransitionDef& t : transitions_) {
    const std::string ctx = "transition '" + t.name + "'";
    if (!t.independent)
      check_handle(t.type, "operation-class", types_.empty() ? 0 : types_.size() - 1, ctx);

    unsigned triggers = 0, moves = 0;
    for (const InArcDef& a : t.in) {
      check_handle(a.place, "place", places_.size(), ctx + " input arc");
      // Tokens retire (or recycle) the moment they enter an end place, so an
      // arc consuming from one can never be satisfied: the transition is dead.
      const int pid = a.place.id();
      if (pid == 0 || places_[static_cast<unsigned>(pid) - 1].end)
        fail(ctx + ": input arc consumes from an end place, where tokens retire on "
                   "entry — the transition could never fire");
      if (!a.reservation) ++triggers;
    }
    for (const OutArcDef& a : t.out) {
      check_handle(a.place, "place", places_.size(), ctx + " output arc");
      if (!a.reservation) ++moves;
    }
    for (const PlaceHandle& p : t.state_refs)
      check_handle(p, "place", places_.size(), ctx + " reads_state");

    if (t.independent) {
      if (triggers != 0)
        fail(ctx + ": instruction-independent transitions cannot have trigger arcs");
      if (t.priority_override)
        fail(ctx + ": priority applies to the trigger arc of sub-net transitions only");
      if (t.max_fires < 1)
        fail(ctx + ": max_fires_per_cycle must be >= 1 (a transition that can never "
                   "fire is a dead model)");
    } else {
      if (triggers == 0) fail(ctx + ": no trigger arc (missing from())");
      if (triggers > 1) fail(ctx + ": more than one trigger arc");
      if (moves == 0)
        fail(ctx + ": the instruction token is never moved (missing to(); route finished "
                   "instructions to end())");
      if (moves > 1) fail(ctx + ": a transition moves its token to one place, got several");
      if (t.max_fires != 1)
        fail(ctx + ": max_fires_per_cycle applies to independent transitions only");
    }
  }
}

void ModelBuilderBase::lower_structure_into(core::Net& net) const {
  net.set_emit_machine_type(emit_machine_type_);
  for (const std::string& inc : emit_includes_) net.add_emit_include(inc);
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const StageDef& s = stages_[i];
    const core::StageId id = net.add_stage(s.name, s.capacity);
    assert(static_cast<std::size_t>(id) == i + 1 && "handle/id mismatch");
    (void)id;
    if (s.forced_two_list) net.stage(id).force_two_list(*s.forced_two_list);
  }
  for (std::size_t i = 0; i < places_.size(); ++i) {
    const PlaceDef& p = places_[i];
    const core::PlaceId id = p.end ? net.add_end_place(p.name)
                                   : net.add_place(p.name, p.stage.id(), p.delay);
    assert(static_cast<std::size_t>(id) == i + 1 && "handle/id mismatch");
    (void)id;
  }
  for (const std::string& t : types_) net.add_type(t);

  for (const TransitionDef& def : transitions_) {
    core::TransitionBuilder tb = def.independent
                                     ? net.add_independent_transition(def.name)
                                     : net.add_transition(def.name, def.type.id());
    for (const InArcDef& a : def.in) {
      if (a.reservation) {
        tb.consume_reservation(a.place.id());
      } else {
        tb.from(a.place.id(), def.priority_override.value_or(a.priority));
      }
    }
    for (const OutArcDef& a : def.out) {
      if (a.reservation) {
        tb.emit_reservation(a.place.id());
      } else {
        tb.to(a.place.id());
      }
    }
    for (const PlaceHandle& p : def.state_refs) tb.reads_state(p.id());
    if (def.delay != 0) tb.delay(def.delay);
    if (def.independent && def.max_fires != 1) tb.max_fires_per_cycle(def.max_fires);
  }
}

core::Net ModelBuilderBase::structural_net() const {
  validate();
  core::Net net(name_);
  lower_structure_into(net);
  return net;
}

core::Net& ModelBuilderBase::build_erased(void* machine) {
  if (net_) fail("build() called twice");
  validate();
  if (machine == nullptr) {
    for (const TransitionDef& t : transitions_)
      if (t.needs_machine)
        fail("transition '" + t.name +
             "' has a typed (Machine&) guard or action but build() got no machine context");
  }

  net_.emplace(name_);
  core::Net& net = *net_;
  lower_structure_into(net);

  // Second pass: bind guards/actions with the machine context. Ids are
  // assigned in declaration order, so def i lowered to transition i.
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    TransitionDef& def = transitions_[i];
    core::TransitionBuilder tb = net.edit_transition(static_cast<core::TransitionId>(i));

    // Stateless callables: single raw-delegate call, env = machine pointer.
    if (def.fast_guard != nullptr) tb.guard(def.fast_guard, machine);
    if (def.fast_action != nullptr) tb.action(def.fast_action, machine);
    if (!def.guard_symbol.empty())
      tb.guard_symbol(def.guard_symbol, def.guard_symbol_machine);
    if (!def.action_symbol.empty())
      tb.action_symbol(def.action_symbol, def.action_symbol_machine);

    if (def.guard || def.action) {
      bound_.push_back(Bound{std::move(def.guard), std::move(def.action), machine});
      Bound& b = bound_.back();
      if (b.guard)
        tb.guard(
            +[](void* env, core::FireCtx& ctx) {
              Bound* bd = static_cast<Bound*>(env);
              return bd->guard(bd->machine, ctx);
            },
            &b);
      if (b.action)
        tb.action(
            +[](void* env, core::FireCtx& ctx) {
              Bound* bd = static_cast<Bound*>(env);
              bd->action(bd->machine, ctx);
            },
            &b);
    }
  }
  return net;
}

}  // namespace rcpn::model
