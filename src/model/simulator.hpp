// Simulator<Machine>: the facade that packages a generated simulator.
//
// It owns, with the right lifetimes and in the right order:
//   1. the Machine context (register files, memories, pc, model counters) —
//      constructed first so the model description can reference it;
//   2. the ModelBuilder<Machine> holding the declarative description and the
//      bound guard/action closures;
//   3. the lowered core::Net and the engine "generated" from it — the
//      interpreted core::Engine, the gen::CompiledEngine running the
//      flattened tables of gen::CompiledModel (Backend::compiled), or the
//      model's registered gen::StaticEngine specialization from an emitted
//      simulator TU (Backend::generated). All engines store tokens in
//      the same per-stage SoA pools (core::TokenStore), so guards, actions,
//      hooks and stats observe identical token semantics on every backend;
//      tests/test_fuzz_lockstep.cpp pins that equivalence on randomized
//      generated models, tests/test_golden_traces.cpp on checked-in traces.
//
// The machine context reaches guards and actions typed — bool(Machine&,
// FireCtx&) — replacing the old pattern of parking `this` behind the
// engine's void* and casting it back in every callback. One coherent
// run-control surface (load / run / step / reset / drain / report) fronts
// the engine; net() and engine() stay available for introspection, CPN
// conversion and the benches.
//
// Typical machine definition:
//
//   struct Counter { std::uint64_t left = 0; };
//   model::Simulator<Counter> sim("demo", [&](auto& b, Counter& m) {
//     auto st = b.add_stage("S", 1);
//     auto p  = b.add_place("S", st);
//     auto ty = b.add_type("T");
//     b.add_transition("t", ty).from(p).to(b.end());
//     b.add_independent_transition("gen")
//         .guard([](Counter& m, core::FireCtx&) { return m.left > 0; })
//         .action([p](Counter& m, core::FireCtx& ctx) {
//           auto* t = ctx.engine->acquire_pooled_instruction();
//           t->type = 0;
//           --m.left;
//           ctx.engine->emit_instruction(t, p);
//         })
//         .to(p);
//   }, Counter{10});
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "core/engine.hpp"
#include "gen/compiled_engine.hpp"
#include "gen/generated.hpp"
#include "model/model_builder.hpp"

namespace rcpn::model {

template <typename Machine>
class Simulator {
 public:
  /// Construct the machine from `margs`, run `describe(builder, machine)` to
  /// record the model, then validate, lower and generate the engine.
  /// `options.backend` selects it: core::Engine (interpreted),
  /// gen::CompiledEngine (the flattened, devirtualized tables), or the
  /// model's registered gen::StaticEngine specialization (generated — the
  /// emitted simulator TU must be linked in, else ModelError). All three are
  /// cycle-for-cycle equivalent, so models and callers never branch on it.
  /// Throws ModelError if the description is invalid.
  template <typename Describe, typename... MArgs>
  Simulator(std::string name, core::EngineOptions options, Describe&& describe,
            MArgs&&... margs)
      : machine_(std::forward<MArgs>(margs)...), builder_(std::move(name)) {
    describe(builder_, machine_);
    init_engine(options);
  }

  template <typename Describe, typename... MArgs>
  explicit Simulator(std::string name, Describe&& describe, MArgs&&... margs)
      : Simulator(std::move(name), core::EngineOptions{}, std::forward<Describe>(describe),
                  std::forward<MArgs>(margs)...) {}

  /// Model-as-data construction: replay a serialized description
  /// (desc::read_file / desc::parse) into the builder, resolving every named
  /// delegate through `registry`, then lower and generate the engine exactly
  /// like the describe-callback constructor. Only the *structure* comes from
  /// the description — machine-context fields the describe callback would
  /// have set from handles (type ids, entry places, ...) must be bound after
  /// construction, by name, against net(). Instantiated only in translation
  /// units that include desc/description.hpp.
  template <typename... MArgs>
  Simulator(const desc::Description& description,
            const desc::DelegateRegistry& registry, core::EngineOptions options,
            MArgs&&... margs)
      : machine_(std::forward<MArgs>(margs)...), builder_("desc") {
    builder_.from_description(description, registry);
    init_engine(options);
  }

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // -- the three layers -------------------------------------------------------
  Machine& machine() { return machine_; }
  const Machine& machine() const { return machine_; }
  core::Net& net() { return builder_.net(); }
  const core::Net& net() const { return builder_.net(); }
  core::Engine& engine() { return *eng_; }
  const core::Engine& engine() const { return *eng_; }
  core::Backend backend() const { return eng_->options().backend; }

  // -- run control ------------------------------------------------------------
  /// Drain in-flight tokens from a previous run, then hand `args` to the
  /// machine's own load() (program image, instruction vector, ...). The
  /// engine resets *first*: leftover tokens must release their operand
  /// reservations before the machine tears down the state they point into.
  template <typename... Args>
  void load(Args&&... args) {
    eng_->reset();
    machine_.load(std::forward<Args>(args)...);
  }

  /// Simulate one clock cycle.
  bool step() { return eng_->step(); }
  /// Run until the machine stops the engine (or `max_cycles`).
  std::uint64_t run(std::uint64_t max_cycles = ~0ull) { return eng_->run(max_cycles); }
  /// Run until `done(machine)` holds with no tokens in flight (or the engine
  /// stops / `max_cycles` elapse). Returns cycles executed.
  template <typename DonePred>
  std::uint64_t drain(DonePred&& done, std::uint64_t max_cycles = ~0ull) {
    const core::Cycle start = eng_->clock();
    while (!eng_->stopped() && eng_->clock() - start < max_cycles) {
      eng_->step();
      if (done(machine_) && eng_->tokens_in_flight() == 0) break;
    }
    return eng_->clock() - start;
  }
  /// Clear all dynamic state (tokens, stats, clock); keeps the build products.
  void reset() { eng_->reset(); }
  void stop() { eng_->stop(); }
  bool stopped() const { return eng_->stopped(); }
  core::Cycle clock() const { return eng_->clock(); }

  // -- stats & hooks ----------------------------------------------------------
  core::Stats& stats() { return eng_->stats(); }
  const core::Stats& stats() const { return eng_->stats(); }
  core::Engine::Hooks& hooks() { return eng_->hooks(); }
  std::uint64_t fires(TransitionHandle t) const {
    if (!builder_.owns(t))
      throw ModelError("fires(): transition handle was not issued by this simulator's model");
    return eng_->stats().transition_fires[static_cast<unsigned>(t.id())];
  }
  /// Human-readable per-transition/per-place report.
  std::string report() const { return eng_->stats().report(net()); }

 private:
  /// Lower the recorded description and generate the engine `options.backend`
  /// selects: core::Engine (interpreted), gen::CompiledEngine (flattened,
  /// devirtualized tables), or the model's registered gen::StaticEngine
  /// specialization (generated — the emitted simulator TU must be linked in,
  /// else ModelError). All three are cycle-for-cycle equivalent, so models
  /// and callers never branch on it.
  void init_engine(core::EngineOptions options) {
    core::Net& net = builder_.build(&machine_);
    if (options.backend == core::Backend::compiled) {
      eng_ = std::make_unique<gen::CompiledEngine>(net, options);
    } else if (options.backend == core::Backend::generated) {
      // A simulator source emitted by gen::emit_simulator() and linked into
      // this binary registers its engine factory under the model name plus
      // the schedule-affecting options it was emitted for; ablation variants
      // need their own emitted TU.
      gen::GeneratedFactory factory = gen::find_generated_engine(net.name(), options);
      if (factory == nullptr)
        throw ModelError(
            "model '" + net.name() + "': Backend::generated with options [" +
            gen::generated_options_desc(gen::generated_options_key(options)) +
            "] requires the generated simulator translation unit "
            "(gen::emit_simulator output for exactly these options) to be "
            "linked in and registered");
      eng_ = factory(net, options);
    } else {
      eng_ = std::make_unique<core::Engine>(net, options);
    }
    eng_->set_machine(&machine_);
    eng_->build();
  }

  Machine machine_;
  ModelBuilder<Machine> builder_;
  std::unique_ptr<core::Engine> eng_;
};

}  // namespace rcpn::model
