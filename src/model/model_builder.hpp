// The declarative modeling API (paper §3: a designer *describes* stages,
// latches and operation-class sub-nets; the simulator is generated from the
// description).
//
// ModelBuilder<Machine> is a construction-time layer over core::Net:
//
//  * declarations return typed handles (StageHandle, PlaceHandle, TypeHandle,
//    TransitionHandle) instead of raw integer ids;
//  * transitions are described with a fluent TransitionBuilder whose guards
//    and actions receive the machine context *typed* — bool(Machine&,
//    FireCtx&) — so no model code ever casts a void*;
//  * build() validates the whole description (duplicate names, dangling or
//    foreign handles, zero capacities, malformed arc sets) and throws
//    ModelError with a precise message instead of corrupting a net;
//  * lowering produces a plain core::Net: the engine's hot path (Fig 6 sorted
//    tables, two-list analysis, token pools) is untouched — the builder costs
//    nothing after build().
//
// The builder must outlive the lowered net: it owns the bound guard/action
// closures the net's transitions point into. model::Simulator<M> packages
// builder, net, engine and machine with the right lifetimes; use it unless
// you are doing something unusual.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <typeindex>
#include <vector>

#include "core/net.hpp"
#include "model/handles.hpp"

namespace rcpn::core {
struct EngineOptions;
}  // namespace rcpn::core

namespace rcpn::desc {
// Serialized model descriptions (src/desc/): the versioned model-as-data
// form of a builder description, and the symbol -> typed delegate registry
// that binds its named guards/actions. Only forward-declared here — the
// builder header stays independent of the serialization layer.
class Description;
class DelegateRegistry;
}  // namespace rcpn::desc

namespace rcpn::model {

/// Thrown by ModelBuilder::build() on an invalid model description.
class ModelError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Non-template core of the builder: declaration records, validation and
/// lowering. The typed layer (ModelBuilder<M>) only adds guard/action binding.
class ModelBuilderBase {
 public:
  explicit ModelBuilderBase(std::string name);
  ModelBuilderBase(const ModelBuilderBase&) = delete;
  ModelBuilderBase& operator=(const ModelBuilderBase&) = delete;

  const std::string& name() const { return name_; }

  /// Declare a pipeline stage with `capacity` token slots (>= 1).
  StageHandle add_stage(std::string name, std::uint32_t capacity);
  /// Declare a place bound to `stage`; `delay` is its residence time (>= 1).
  PlaceHandle add_place(std::string name, StageHandle stage, std::uint32_t delay = 1);
  /// Declare an additional end place (shares the unlimited virtual end stage).
  PlaceHandle add_end_place(std::string name);
  /// Declare an operation class (instruction type / sub-net).
  TypeHandle add_type(std::string name);

  /// The virtual end place every instruction token retires into.
  PlaceHandle end() const { return PlaceHandle(tag_, core::PlaceId{0}); }

  // -- generation metadata ------------------------------------------------------
  // For gen::emit_simulator(): the fully-qualified C++ type of the machine
  // context the named delegates take, and the header(s) declaring that type
  // and those functions. A model that registers every guard/action with
  // guard_named/action_named plus these two calls is fully emittable as a
  // standalone generated simulator.
  void emit_machine_type(std::string type) { emit_machine_type_ = std::move(type); }
  void emit_include(std::string header) { emit_includes_.push_back(std::move(header)); }

  // -- serialized descriptions (src/desc/) --------------------------------------

  /// Export the built model as a versioned serialized description
  /// (desc::kDescVersion): stages, places, types, transitions with arcs and
  /// named delegate symbol refs, emission metadata, and the
  /// schedule-affecting subset of `options`. Requires built(); throws
  /// ModelError if any bound delegate is anonymous (unnamed closures cannot
  /// be serialized as data). Defined in desc/description.cpp.
  desc::Description describe(const core::EngineOptions& options) const;

  /// Load a serialized description into this (empty, un-built) builder:
  /// declarations are replayed in description order, and every guard/action
  /// symbol is resolved through `registry` — an unknown symbol or a
  /// description with an unsupported version is a ModelError naming it.
  /// After loading, build() lowers the model exactly as if the declarations
  /// had been made by hand. Defined in desc/description.cpp.
  void from_description(const desc::Description& description,
                        const desc::DelegateRegistry& registry);

  /// Attach the model's DelegateRegistry: installs its machine type +
  /// includes as the emission metadata and enables guard_ref/action_ref
  /// symbol binding. The typed overload on ModelBuilder<M> verifies the
  /// registry's context type against M.
  void use_delegates(const desc::DelegateRegistry& registry) {
    use_delegates_checked(registry, std::type_index(typeid(void)));
  }

  /// The attached registry, or nullptr.
  const desc::DelegateRegistry* delegates() const { return delegates_; }

  /// Pin the two-list (master/slave) flag of a stage, overriding the engine's
  /// circular-reference analysis (e.g. a combinational forwarding latch).
  void force_two_list(StageHandle stage, bool value);

  /// True if this builder issued `h` (guards Simulator::fires and other
  /// post-build lookups against dangling or foreign handles).
  bool owns(TransitionHandle h) const { return h.valid() && h.model_ == tag_; }

  /// True once build() has lowered the description.
  bool built() const { return net_.has_value(); }
  core::Net& net();
  const core::Net& net() const;

  /// Validate and lower the *structure* only — stages, places, types, arcs,
  /// delays — into a fresh net with no guards or actions bound. Works before
  /// build() and needs no machine context, so analysis passes (CPN
  /// conversion, DOT export) can consume a typed model description without
  /// constructing the machine it simulates. Callable any number of times;
  /// does not mark the builder built. Throws ModelError like build().
  core::Net structural_net() const;

 protected:
  using ErasedGuard = std::function<bool(void*, core::FireCtx&)>;
  using ErasedAction = std::function<void(void*, core::FireCtx&)>;

  struct InArcDef {
    PlaceHandle place;
    bool reservation = false;  // false: trigger arc
    std::uint8_t priority = 0;
  };
  struct OutArcDef {
    PlaceHandle place;
    bool reservation = false;  // false: move the instruction token
  };
  struct TransitionDef {
    std::string name;
    TypeHandle type;  // invalid for instruction-independent transitions
    bool independent = false;
    std::vector<InArcDef> in;
    std::vector<OutArcDef> out;
    std::vector<PlaceHandle> state_refs;
    std::optional<std::uint8_t> priority_override;
    std::uint32_t delay = 0;
    int max_fires = 1;
    ErasedGuard guard;
    ErasedAction action;
    /// Fast path for stateless callables: a trampoline instantiated per
    /// lambda type whose env is the machine pointer itself — one indirect
    /// call, the shape of the paper's generated simulators. Set instead of
    /// guard/action when the callable is empty.
    core::GuardFn fast_guard = nullptr;
    core::ActionFn fast_action = nullptr;
    /// Fully-qualified symbols of named delegates (guard_named/action_named);
    /// empty for anonymous closures. Lowered onto the core transition for
    /// gen::emit_simulator, together with the arity the call must be emitted
    /// with ((Machine&, FireCtx&) vs (FireCtx&)).
    std::string guard_symbol;
    std::string action_symbol;
    bool guard_symbol_machine = true;
    bool action_symbol_machine = true;
    /// Any callable was registered in the typed (Machine&) form, so
    /// build(nullptr) must be rejected.
    bool needs_machine = false;
  };

  TransitionDef& add_transition_def(std::string name, TypeHandle type, bool independent,
                                    TransitionHandle* out_handle);

  /// Validate the whole description, then lower it into an owned core::Net
  /// whose guard/action closures receive `machine`. Throws ModelError.
  core::Net& build_erased(void* machine);

  // Registry-backed symbol binding (guard_ref/action_ref and the description
  // loader); defined in desc/delegate_registry.cpp. Throws ModelError when no
  // registry is attached or the symbol is unknown.
  void use_delegates_checked(const desc::DelegateRegistry& registry,
                             std::type_index machine);
  void bind_guard_ref(TransitionDef& def, const std::string& symbol);
  void bind_action_ref(TransitionDef& def, const std::string& symbol);

  detail::ModelTag tag() const { return tag_; }

 private:
  struct StageDef {
    std::string name;
    std::uint32_t capacity = 0;
    std::optional<bool> forced_two_list;
  };
  struct PlaceDef {
    std::string name;
    StageHandle stage;  // unused when `end` (the virtual end stage)
    std::uint32_t delay = 1;
    bool end = false;
  };

  const desc::DelegateRegistry& require_delegates(const char* what,
                                                  const std::string& symbol) const;

  [[noreturn]] void fail(const std::string& what) const;
  void check_handle_base(detail::ModelTag model, const char* kind, int id, std::size_t limit,
                         const std::string& context) const;
  template <typename Handle>
  void check_handle(Handle h, const char* kind, std::size_t limit,
                    const std::string& context) const;
  void validate() const;
  void lower_structure_into(core::Net& net) const;

  std::string name_;
  detail::ModelTag tag_;
  std::vector<StageDef> stages_;
  std::vector<PlaceDef> places_;
  std::vector<std::string> types_;
  std::deque<TransitionDef> transitions_;
  std::string emit_machine_type_;
  std::vector<std::string> emit_includes_;
  const desc::DelegateRegistry* delegates_ = nullptr;

  std::optional<core::Net> net_;
  // Bound callables the lowered net points into (stable addresses).
  struct Bound {
    ErasedGuard guard;
    ErasedAction action;
    void* machine = nullptr;
  };
  std::deque<Bound> bound_;
};

template <typename Handle>
void ModelBuilderBase::check_handle(Handle h, const char* kind, std::size_t limit,
                                    const std::string& context) const {
  // PlaceHandle/StageHandle id 0 (the virtual end place/stage) is always
  // in range; declared entities occupy ids [1, limit].
  check_handle_base(h.valid() ? h.model_ : detail::kNoModel, kind, static_cast<int>(h.id()),
                    limit, context);
}

namespace detail {
/// Placeholder context type so ModelBuilder<void>'s guard/action templates
/// stay well-formed (no `void&` is ever spelled); never instantiated at
/// runtime.
struct NoMachine {};
}  // namespace detail

/// Typed fluent builder. `Machine` is the model's context type; guards and
/// actions may take either (Machine&, FireCtx&) or just (FireCtx&). With the
/// default Machine = void only the (FireCtx&) form exists.
template <typename Machine = void>
class ModelBuilder : public ModelBuilderBase {
  using Ctx = std::conditional_t<std::is_void_v<Machine>, detail::NoMachine, Machine>;

 public:
  using ModelBuilderBase::ModelBuilderBase;

  /// Fluent construction handle for one transition declaration.
  class TransitionBuilder {
   public:
    /// Trigger input arc: the instruction token is consumed from `p`.
    TransitionBuilder& from(PlaceHandle p, std::uint8_t priority = 0) {
      def_->in.push_back({p, /*reservation=*/false, priority});
      return *this;
    }
    /// Extra input arc consuming one reservation token from `p`.
    TransitionBuilder& consume_reservation(PlaceHandle p) {
      def_->in.push_back({p, /*reservation=*/true, 0});
      return *this;
    }
    /// Output arc moving the instruction token to `p`.
    TransitionBuilder& to(PlaceHandle p) {
      def_->out.push_back({p, /*reservation=*/false});
      return *this;
    }
    /// Output arc emitting a fresh reservation token into `p`.
    TransitionBuilder& emit_reservation(PlaceHandle p) {
      def_->out.push_back({p, /*reservation=*/true});
      return *this;
    }
    /// Declare that the guard queries the state of place `p` (can_read_in
    /// etc.); feeds the engine's circular-reference analysis.
    TransitionBuilder& reads_state(PlaceHandle p) {
      def_->state_refs.push_back(p);
      return *this;
    }
    /// Order among the output transitions of the trigger place (lower fires
    /// first). Alternative spelling of from()'s second argument.
    TransitionBuilder& priority(std::uint8_t pr) {
      def_->priority_override = pr;
      return *this;
    }
    /// Execution delay added to the moved token's next residence.
    TransitionBuilder& delay(std::uint32_t d) {
      def_->delay = d;
      return *this;
    }
    /// Independent transitions only: maximum firings per cycle (n-wide fetch).
    TransitionBuilder& max_fires_per_cycle(int n) {
      def_->max_fires = n;
      return *this;
    }

    /// Guard: bool(Machine&, FireCtx&) — or bool(FireCtx&) when the machine
    /// context is not needed. A capture-less callable lowers to a single
    /// raw-delegate call (no std::function in the hot loop): the engine's
    /// dispatch is then identical to hand-registered GuardFn delegates.
    template <typename G>
    TransitionBuilder& guard(G g) {
      // Last writer wins regardless of which storage the callable lands in.
      def_->guard = nullptr;
      def_->fast_guard = nullptr;
      def_->guard_symbol.clear();
      constexpr bool stateless = std::is_empty_v<G> && std::is_default_constructible_v<G>;
      if constexpr (!std::is_void_v<Machine> &&
                    std::is_invocable_r_v<bool, G&, Ctx&, core::FireCtx&>) {
        def_->needs_machine = true;
        if constexpr (stateless) {
          def_->fast_guard = [](void* env, core::FireCtx& ctx) {
            return static_cast<bool>(G{}(*static_cast<Ctx*>(env), ctx));
          };
        } else {
          def_->guard = [g = std::move(g)](void* m, core::FireCtx& ctx) mutable {
            return static_cast<bool>(g(*static_cast<Ctx*>(m), ctx));
          };
        }
      } else {
        static_assert(std::is_invocable_r_v<bool, G&, core::FireCtx&>,
                      "guard must be callable as bool(Machine&, FireCtx&) or bool(FireCtx&)");
        if constexpr (stateless) {
          def_->fast_guard = [](void*, core::FireCtx& ctx) {
            return static_cast<bool>(G{}(ctx));
          };
        } else {
          def_->guard = [g = std::move(g)](void*, core::FireCtx& ctx) mutable {
            return static_cast<bool>(g(ctx));
          };
        }
      }
      return *this;
    }

    /// Guard bound to a *named* free function — the emittable registration
    /// form. `Fn` is the function itself (compile-time, so the trampoline is
    /// a direct call the optimizer sees through); `symbol` is its
    /// fully-qualified spelling, recorded so gen::emit_simulator() can emit
    /// the call into the generated translation unit. The function takes
    /// (Machine&, FireCtx&) or just (FireCtx&), like guard().
    ///
    ///   .guard_named<&fig2_u1_guard>("rcpn::machines::fig2_u1_guard")
    template <auto Fn>
    TransitionBuilder& guard_named(const char* symbol) {
      def_->guard = nullptr;
      def_->fast_guard = nullptr;
      def_->guard_symbol = symbol;
      if constexpr (!std::is_void_v<Machine> &&
                    std::is_invocable_r_v<bool, decltype(Fn), Ctx&, core::FireCtx&>) {
        def_->needs_machine = true;
        def_->guard_symbol_machine = true;
        def_->fast_guard = [](void* env, core::FireCtx& ctx) {
          return static_cast<bool>(Fn(*static_cast<Ctx*>(env), ctx));
        };
      } else {
        static_assert(std::is_invocable_r_v<bool, decltype(Fn), core::FireCtx&>,
                      "guard_named function must be callable as "
                      "bool(Machine&, FireCtx&) or bool(FireCtx&)");
        def_->guard_symbol_machine = false;
        def_->fast_guard = [](void*, core::FireCtx& ctx) {
          return static_cast<bool>(Fn(ctx));
        };
      }
      return *this;
    }

    /// Guard bound by *symbol* through the model's DelegateRegistry
    /// (use_delegates must have been called). The registry supplies the
    /// function pointer and arity, so the symbol string is the only thing
    /// spelled at the call site — same emitted form as guard_named, one
    /// source of truth. Throws ModelError on an unknown symbol.
    TransitionBuilder& guard_ref(const std::string& symbol) {
      owner_->bind_guard_ref(*def_, symbol);
      return *this;
    }

    /// Action counterpart of guard_ref().
    TransitionBuilder& action_ref(const std::string& symbol) {
      owner_->bind_action_ref(*def_, symbol);
      return *this;
    }

    /// Action counterpart of guard_named().
    template <auto Fn>
    TransitionBuilder& action_named(const char* symbol) {
      def_->action = nullptr;
      def_->fast_action = nullptr;
      def_->action_symbol = symbol;
      if constexpr (!std::is_void_v<Machine> &&
                    std::is_invocable_v<decltype(Fn), Ctx&, core::FireCtx&>) {
        def_->needs_machine = true;
        def_->action_symbol_machine = true;
        def_->fast_action = [](void* env, core::FireCtx& ctx) {
          Fn(*static_cast<Ctx*>(env), ctx);
        };
      } else {
        static_assert(std::is_invocable_v<decltype(Fn), core::FireCtx&>,
                      "action_named function must be callable as "
                      "void(Machine&, FireCtx&) or void(FireCtx&)");
        def_->action_symbol_machine = false;
        def_->fast_action = [](void*, core::FireCtx& ctx) { Fn(ctx); };
      }
      return *this;
    }

    /// Action: void(Machine&, FireCtx&) — or void(FireCtx&). Same stateless
    /// fast path as guard().
    template <typename A>
    TransitionBuilder& action(A a) {
      def_->action = nullptr;
      def_->fast_action = nullptr;
      def_->action_symbol.clear();
      constexpr bool stateless = std::is_empty_v<A> && std::is_default_constructible_v<A>;
      if constexpr (!std::is_void_v<Machine> &&
                    std::is_invocable_v<A&, Ctx&, core::FireCtx&>) {
        def_->needs_machine = true;
        if constexpr (stateless) {
          def_->fast_action = [](void* env, core::FireCtx& ctx) {
            A{}(*static_cast<Ctx*>(env), ctx);
          };
        } else {
          def_->action = [a = std::move(a)](void* m, core::FireCtx& ctx) mutable {
            a(*static_cast<Ctx*>(m), ctx);
          };
        }
      } else {
        static_assert(std::is_invocable_v<A&, core::FireCtx&>,
                      "action must be callable as void(Machine&, FireCtx&) or void(FireCtx&)");
        if constexpr (stateless) {
          def_->fast_action = [](void*, core::FireCtx& ctx) { A{}(ctx); };
        } else {
          def_->action = [a = std::move(a)](void*, core::FireCtx& ctx) mutable { a(ctx); };
        }
      }
      return *this;
    }

    TransitionHandle handle() const { return h_; }
    operator TransitionHandle() const { return h_; }

   private:
    friend class ModelBuilder;
    TransitionBuilder(ModelBuilder* owner, TransitionDef* def, TransitionHandle h)
        : owner_(owner), def_(def), h_(h) {}
    ModelBuilder* owner_;
    TransitionDef* def_;
    TransitionHandle h_;
  };

  /// Attach the model's DelegateRegistry (see ModelBuilderBase): verifies the
  /// registry's delegates take this builder's Machine as context.
  void use_delegates(const desc::DelegateRegistry& registry) {
    use_delegates_checked(registry, std::type_index(typeid(Ctx)));
  }

  /// Declare a transition in operation class `type`'s sub-net.
  TransitionBuilder add_transition(std::string name, TypeHandle type) {
    TransitionHandle h;
    TransitionDef& def = add_transition_def(std::move(name), type, /*independent=*/false, &h);
    return TransitionBuilder(this, &def, h);
  }
  /// Declare an instruction-independent transition (fetch, µ-op expansion);
  /// runs at the end of every cycle in declaration order.
  TransitionBuilder add_independent_transition(std::string name) {
    TransitionHandle h;
    TransitionDef& def =
        add_transition_def(std::move(name), TypeHandle{}, /*independent=*/true, &h);
    return TransitionBuilder(this, &def, h);
  }

  /// Validate and lower to a core::Net whose guards/actions receive
  /// `*machine`. The builder keeps owning the net and the bound closures.
  core::Net& build(Machine* machine)
    requires(!std::is_void_v<Machine>)
  {
    return build_erased(machine);
  }
  core::Net& build()
    requires(std::is_void_v<Machine>)
  {
    return build_erased(nullptr);
  }
};

}  // namespace rcpn::model
