// Typed handles for the declarative modeling API.
//
// A handle names one declared entity (stage, place, operation class,
// transition) of one ModelBuilder. Handles are cheap value types; they carry
// the core id the entity will lower to plus the identity of the builder that
// issued them, so the builder can reject dangling arcs — a default-constructed
// handle, or a handle that belongs to a different model — at build() time
// instead of silently wiring the wrong net.
//
// Because ModelBuilder mirrors core::Net's deterministic id assignment
// (declaration order; id 0 is the virtual end stage/place), a handle's id()
// is valid the moment the entity is declared — guards and actions may capture
// ids immediately, before build() runs.
#pragma once

#include <cstdint>

#include "core/token.hpp"

namespace rcpn::model {

namespace detail {
/// Identity of the issuing ModelBuilder (0 = no builder: invalid handle).
using ModelTag = std::uint32_t;
constexpr ModelTag kNoModel = 0;
}  // namespace detail

#define RCPN_MODEL_HANDLE(Handle, IdType, kInvalid)                       \
  class Handle {                                                          \
   public:                                                                \
    Handle() = default;                                                   \
    bool valid() const { return model_ != detail::kNoModel; }             \
    IdType id() const { return id_; }                                     \
    /* implicit: handles are drop-in where core ids are expected */       \
    operator IdType() const { return id_; }                               \
    bool operator==(const Handle&) const = default;                       \
                                                                          \
   private:                                                               \
    friend class ModelBuilderBase;                                        \
    Handle(detail::ModelTag model, IdType id) : model_(model), id_(id) {} \
    detail::ModelTag model_ = detail::kNoModel;                           \
    IdType id_ = kInvalid;                                                \
  }

/// A pipeline stage declaration (latch, reservation station, ...).
RCPN_MODEL_HANDLE(StageHandle, core::StageId, core::kNoStage);
/// A place declaration bound to a stage.
RCPN_MODEL_HANDLE(PlaceHandle, core::PlaceId, core::kNoPlace);
/// An operation class (instruction type / sub-net id).
RCPN_MODEL_HANDLE(TypeHandle, core::TypeId, core::kNoType);
/// A declared transition; resolves to the core TransitionId (stats lookups).
RCPN_MODEL_HANDLE(TransitionHandle, core::TransitionId, core::TransitionId{-1});

#undef RCPN_MODEL_HANDLE

}  // namespace rcpn::model
