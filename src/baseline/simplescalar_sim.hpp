// SimpleScalar-style fixed-architecture cycle-accurate simulator — the
// paper's comparison point ("SimpleScalarArm ... implements StrongArm
// architecture and we disabled all checkings and used simplest parameter
// values", §5).
//
// Faithful to the sim-outorder construction rather than to its source text:
//  * functional-first execution at dispatch, with timing tracked behind it
//    by a register-update-unit (RUU) window, a fetch queue and an LSQ;
//  * the RS_link machinery: a ready queue and a sorted completion event
//    queue built from pooled list nodes, and per-entry output-dependence
//    chains walked at writeback to wake consumers;
//  * per-cycle queue scans and occupancy statistics;
//  * caches and TLBs accessed through the generic linked-list cache walker
//    (SsCache) on every reference — fetch pays icache+itlb, memory ops pay
//    dcache+dtlb, stores access the dcache again at commit;
//  * instructions re-decoded from the raw word at dispatch on every dynamic
//    occurrence (no token caching, no per-instance specialization) — the
//    exact overheads RCPN §4 removes.
//
// Configured as an in-order single-issue StrongArm. Architecturally
// identical to the functional ISS by construction (same semantics helpers).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "arm/arm_isa.hpp"
#include "baseline/ss_structures.hpp"
#include "machines/strongarm.hpp"  // RunResult
#include "mem/memory.hpp"
#include "predictor/predictor.hpp"
#include "sys/program.hpp"
#include "sys/syscalls.hpp"

namespace rcpn::baseline {

struct SimpleScalarConfig {
  unsigned ifq_size = 4;    // fetch queue entries
  unsigned ruu_size = 16;   // register update unit entries (sim-outorder default)
  unsigned lsq_size = 8;    // load/store queue entries
  unsigned width = 1;       // decode/issue/commit width (StrongArm: scalar)
  bool in_order_issue = true;
  unsigned branch_penalty = 2;  // mispredicted-path squash cost
  mem::MemorySystemConfig mem;  // cache geometry (TLBs are fixed SS defaults)

  SimpleScalarConfig();
};

class SimpleScalarSim {
 public:
  explicit SimpleScalarSim(SimpleScalarConfig config = SimpleScalarConfig());

  machines::RunResult run(const sys::Program& program,
                          std::uint64_t max_cycles = ~0ull);

  std::uint32_t reg(unsigned i) const { return regs_[i]; }
  const sys::SyscallHandler& syscalls() const { return sys_; }
  std::uint64_t cycles() const { return cycle_; }
  std::uint64_t instructions() const { return committed_; }

 private:
  struct RuuEntry {
    std::uint32_t pc = 0;
    std::uint32_t raw = 0;
    arm::DecodedInstruction d;  // re-decoded at dispatch, every occurrence
    std::uint32_t seq = 0;
    bool valid = false;
    bool queued = false;   // in the ready queue
    bool issued = false;
    bool completed = false;
    bool is_mem = false;
    bool is_store = false;
    std::uint32_t ea = 0;
    unsigned missing_inputs = 0;
    RsLink* consumers = nullptr;  // output-dependence chain (woken at WB)
    std::array<std::uint8_t, 4> ideps{};
    unsigned num_ideps = 0;
    std::array<std::uint8_t, 3> odeps{};
    unsigned num_odeps = 0;
  };

  struct FetchEntry {
    std::uint32_t pc = 0;
    std::uint32_t raw = 0;
    std::uint64_t ready_cycle = 0;  // icache+itlb delay
  };

  struct Producer {
    int entry = -1;
    std::uint32_t seq = 0;
  };

  void reset(const sys::Program& program);
  void fetch_stage();
  void dispatch_stage();
  void issue_stage();
  void writeback_stage();
  void commit_stage();
  void tally_cycle_stats();
  bool oldest_unissued(int idx) const;
  bool load_blocked_by_store(int idx) const;
  std::uint32_t exec_functional(const arm::DecodedInstruction& d, std::uint32_t pc);
  void build_dep_lists(RuuEntry& e);
  unsigned exec_latency(const RuuEntry& e);

  SimpleScalarConfig cfg_;
  mem::Memory mem_;
  SsCache icache_, dcache_, itlb_, dtlb_;
  sys::SyscallHandler sys_;
  predictor::StaticNotTaken bpred_;  // "simplest parameter values"

  // Architectural state (functional-first).
  std::array<std::uint32_t, arm::kNumRegs> regs_{};
  std::uint32_t cpsr_ = 0;
  std::uint32_t true_pc_ = 0;
  std::uint32_t fetch_pc_ = 0;

  // Timing state.
  std::uint64_t cycle_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t fetched_ = 0;
  std::uint64_t squashed_ = 0;
  std::uint64_t mispredicts_ = 0;
  std::uint32_t seq_ = 0;
  bool halted_ = false;
  std::uint64_t fetch_resume_cycle_ = 0;

  std::vector<FetchEntry> ifq_;
  std::vector<RuuEntry> ruu_;
  unsigned ruu_head_ = 0, ruu_tail_ = 0, ruu_count_ = 0;
  unsigned lsq_used_ = 0;

  RsLinkPool pool_;
  ReadyQueue readyq_;
  EventQueue eventq_;
  std::array<Producer, arm::kNumCells> producer_{};
  std::vector<int> issue_scratch_;

  // Occupancy/rate statistics accumulated every cycle (sim-outorder's stat
  // database tallies).
  std::uint64_t acc_ruu_occ_ = 0, acc_ifq_occ_ = 0, acc_lsq_occ_ = 0;
  std::uint64_t sim_issue_ = 0, sim_wb_ = 0, sim_dispatch_ = 0;
};

}  // namespace rcpn::baseline
