// sim-outorder's core data structures, re-created for the baseline:
//
//  * SsCache  — per-set singly-linked way lists with move-to-head on hit
//               (sim-outorder's cache_access walks a block list and performs
//               pointer surgery; the pointer chasing is a real, honest cost
//               of the generic framework);
//  * RsLink / RsLinkPool — the RS_link free-list machinery used for ready
//               queues, event queues and output-dependence chains;
//  * EventQueue — completion events kept sorted by cycle via insertion into
//               a linked list (ruu_event_queue);
//  * ReadyQueue — linked list of issue-ready window entries (ruu_ready_queue).
//
// These are deliberately *not* micro-optimized: they model the cost profile
// of the original tool, which is exactly what the paper compares against.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rcpn::baseline {

class SsCache {
 public:
  struct Stats {
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    double hit_ratio() const {
      return accesses ? static_cast<double>(hits) / static_cast<double>(accesses) : 0.0;
    }
  };

  SsCache(std::string name, std::uint32_t nsets, std::uint32_t bsize,
          std::uint32_t assoc, std::uint32_t hit_latency, std::uint32_t miss_latency);

  /// Walk the set's block list; on hit move the block to the head (MRU), on
  /// miss evict the tail (LRU). Returns the access latency.
  std::uint32_t access(std::uint32_t addr, bool is_write);

  const Stats& stats() const { return stats_; }
  void reset();

 private:
  struct Block {
    std::uint32_t tag = 0;
    bool valid = false;
    bool dirty = false;
    Block* next = nullptr;
  };

  std::string name_;
  std::uint32_t nsets_, bsize_, assoc_, hit_latency_, miss_latency_;
  unsigned offset_bits_, index_bits_;
  std::vector<Block> blocks_;
  std::vector<Block*> heads_;
  Stats stats_;
};

/// The RS_link of sim-outorder: a pooled list node referencing a window entry.
struct RsLink {
  RsLink* next = nullptr;
  int entry = -1;           // RUU index
  std::uint32_t tag = 0;    // squash detection
  std::uint64_t when = 0;   // event time (event queue use)
};

class RsLinkPool {
 public:
  RsLink* alloc() {
    if (free_ == nullptr) grow();
    RsLink* l = free_;
    free_ = l->next;
    l->next = nullptr;
    return l;
  }
  void release(RsLink* l) {
    l->next = free_;
    free_ = l;
  }

 private:
  void grow() {
    constexpr unsigned kChunk = 256;
    blocks_.push_back(std::make_unique<RsLink[]>(kChunk));
    RsLink* chunk = blocks_.back().get();
    for (unsigned i = 0; i < kChunk; ++i) {
      chunk[i].next = free_;
      free_ = &chunk[i];
    }
  }
  RsLink* free_ = nullptr;
  std::vector<std::unique_ptr<RsLink[]>> blocks_;
};

/// Completion events sorted by `when` (insertion sort into a linked list,
/// exactly ruu_event_queue).
class EventQueue {
 public:
  explicit EventQueue(RsLinkPool& pool) : pool_(pool) {}

  void schedule(int entry, std::uint64_t when) {
    RsLink* ev = pool_.alloc();
    ev->entry = entry;
    ev->when = when;
    RsLink** prev = &head_;
    while (*prev != nullptr && (*prev)->when <= when) prev = &(*prev)->next;
    ev->next = *prev;
    *prev = ev;
  }

  /// Pop the next event due at or before `now`; -1 if none.
  int pop_due(std::uint64_t now) {
    if (head_ == nullptr || head_->when > now) return -1;
    RsLink* ev = head_;
    head_ = ev->next;
    const int entry = ev->entry;
    pool_.release(ev);
    return entry;
  }

  void clear() {
    while (head_ != nullptr) {
      RsLink* n = head_->next;
      pool_.release(head_);
      head_ = n;
    }
  }

 private:
  RsLinkPool& pool_;
  RsLink* head_ = nullptr;
};

/// Issue-ready window entries (ruu_ready_queue), FIFO by insertion (oldest
/// first since dispatch inserts in program order and wakeups append).
class ReadyQueue {
 public:
  explicit ReadyQueue(RsLinkPool& pool) : pool_(pool) {}

  void push(int entry) {
    RsLink* l = pool_.alloc();
    l->entry = entry;
    if (tail_ == nullptr) {
      head_ = tail_ = l;
    } else {
      tail_->next = l;
      tail_ = l;
    }
  }

  /// Walk and collect entries into `out` (the per-cycle issue scan); the
  /// queue is rebuilt by the caller re-pushing the entries it did not issue.
  template <typename Fn>
  void drain(Fn&& fn) {
    RsLink* cur = head_;
    head_ = tail_ = nullptr;
    while (cur != nullptr) {
      RsLink* next = cur->next;
      cur->next = nullptr;
      const int e = cur->entry;
      pool_.release(cur);
      fn(e);
      cur = next;
    }
  }

  bool empty() const { return head_ == nullptr; }

  void clear() {
    drain([](int) {});
  }

 private:
  RsLinkPool& pool_;
  RsLink* head_ = nullptr;
  RsLink* tail_ = nullptr;
};

}  // namespace rcpn::baseline
