#include "baseline/functional_iss.hpp"

#include "util/bits.hpp"

namespace rcpn::baseline {

using namespace rcpn::arm;

FunctionalIss::FunctionalIss(mem::Memory& memory, sys::SyscallHandler& syscalls)
    : mem_(memory), sys_(syscalls) {}

void FunctionalIss::reset(const sys::Program& program) {
  program.load_into(mem_);
  reset(program.entry, program.initial_sp);
}

void FunctionalIss::reset(std::uint32_t entry, std::uint32_t sp) {
  regs_.fill(0);
  regs_[kRegSp] = sp;
  cpsr_ = 0;
  pc_ = entry;
  instret_ = 0;
  exited_ = false;
}

const DecodedInstruction& FunctionalIss::decoded(std::uint32_t pc, std::uint32_t raw) {
  auto [it, inserted] = decode_cache_.try_emplace(pc);
  if (inserted || it->second.raw != raw) it->second = decode(raw, pc);
  return it->second;
}

void FunctionalIss::write_flags(std::uint32_t nzcv) {
  cpsr_ = (cpsr_ & ~(kFlagN | kFlagZ | kFlagC | kFlagV)) | nzcv;
}

void FunctionalIss::exec_load_store(const DecodedInstruction& d) {
  const LsAddress a = ls_address(d, operand(d.rn), d.rm < kNumRegs ? operand(d.rm) : 0,
                                 cpsr_);
  if (d.is_load) {
    const std::uint32_t v = d.is_byte ? mem_.read8(a.ea) : mem_.read32(a.ea);
    if (a.rn_writeback) regs_[d.rn] = a.rn_after;
    // Load value takes precedence over base writeback when rd == rn.
    if (d.rd == kRegPc) {
      pc_ = v & ~3u;
      return;  // pc already updated; caller must not advance
    }
    regs_[d.rd] = v;
  } else {
    const std::uint32_t v = operand(d.rd);
    if (d.is_byte)
      mem_.write8(a.ea, static_cast<std::uint8_t>(v));
    else
      mem_.write32(a.ea, v);
    if (a.rn_writeback) regs_[d.rn] = a.rn_after;
  }
}

void FunctionalIss::exec_lsm(const DecodedInstruction& d) {
  const LsmPlan plan = lsm_plan(d, regs_[d.rn]);
  std::uint32_t addr = plan.start;
  bool loaded_pc = false;
  std::uint32_t base_original = regs_[d.rn];
  for (unsigned r = 0; r < 16; ++r) {
    if (!(d.reg_list & (1u << r))) continue;
    if (d.is_load) {
      const std::uint32_t v = mem_.read32(addr);
      if (r == kRegPc) {
        pc_ = v & ~3u;
        loaded_pc = true;
      } else {
        regs_[r] = v;
      }
    } else {
      // STM stores the original base value when rn is in the list.
      const std::uint32_t v =
          r == d.rn ? base_original : (r == kRegPc ? pc_ + 8 : regs_[r]);
      mem_.write32(addr, v);
    }
    addr += 4;
  }
  if (d.writeback) {
    // LDM with rn in the list: the loaded value wins (writeback suppressed).
    if (!(d.is_load && (d.reg_list & (1u << d.rn)))) regs_[d.rn] = plan.rn_after;
  }
  if (d.is_load && loaded_pc) return;  // control transfer already applied
  pc_ += 4;
}

bool FunctionalIss::step() {
  if (exited_) return false;
  const std::uint32_t raw = mem_.read32(pc_);
  const DecodedInstruction& d = decoded(pc_, raw);
  ++instret_;

  if (!cond_pass(d.cond, cpsr_)) {
    pc_ += 4;
    return true;
  }

  switch (d.cls) {
    case OpClass::data_proc: {
      const DataProcOut out =
          exec_dataproc(d, d.rn < kNumRegs ? operand(d.rn) : 0,
                        d.rm < kNumRegs ? operand(d.rm) : 0,
                        d.rs < kNumRegs ? operand(d.rs) : 0, cpsr_);
      if (out.writes_flags) write_flags(out.nzcv);
      if (out.writes_rd) regs_[d.rd] = out.result;
      pc_ += 4;
      break;
    }
    case OpClass::multiply: {
      const MulOut out = exec_mul(d, operand(d.rm), operand(d.rs),
                                  d.rn < kNumRegs ? operand(d.rn) : 0, cpsr_);
      if (out.writes_flags) write_flags(out.nzcv);
      regs_[d.rd] = out.result;
      pc_ += 4;
      break;
    }
    case OpClass::load_store: {
      const bool to_pc = d.is_load && d.rd == kRegPc;
      exec_load_store(d);
      if (!to_pc) pc_ += 4;
      break;
    }
    case OpClass::load_store_multiple:
      exec_lsm(d);  // advances pc itself
      break;
    case OpClass::branch: {
      if (d.branch_via_reg) {
        const DataProcOut out =
            exec_dataproc(d, d.rn < kNumRegs ? operand(d.rn) : 0,
                          d.rm < kNumRegs ? operand(d.rm) : 0,
                          d.rs < kNumRegs ? operand(d.rs) : 0, cpsr_);
        if (out.writes_flags) write_flags(out.nzcv);
        pc_ = out.result & ~3u;
      } else {
        if (d.link) regs_[kRegLr] = pc_ + 4;
        pc_ = static_cast<std::uint32_t>(static_cast<std::int64_t>(pc_) + 8 +
                                         d.branch_offset);
      }
      break;
    }
    case OpClass::swi: {
      const sys::SyscallResult res =
          sys_.handle({d.swi_imm, regs_[0], regs_[1]}, mem_);
      if (res.writes_r0) regs_[0] = res.r0_out;
      if (res.exited) exited_ = true;
      pc_ += 4;
      break;
    }
    default:
      pc_ += 4;
      break;
  }
  return !exited_;
}

std::uint64_t FunctionalIss::run(std::uint64_t max_instructions) {
  const std::uint64_t start = instret_;
  while (!exited_ && instret_ - start < max_instructions) {
    if (!step()) break;
  }
  return instret_ - start;
}

}  // namespace rcpn::baseline
