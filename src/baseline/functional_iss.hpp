// Functional instruction-set simulator (no timing).
//
// Serves two roles from the paper's world:
//  * the golden architectural model every cycle-accurate simulator is
//    co-simulated against in the test suite (registers, memory and program
//    output must match instruction for instruction);
//  * the "fast functional simulator" the paper's conclusion mentions
//    extracting from the same models.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "arm/arm_isa.hpp"
#include "mem/memory.hpp"
#include "sys/program.hpp"
#include "sys/syscalls.hpp"

namespace rcpn::baseline {

class FunctionalIss {
 public:
  FunctionalIss(mem::Memory& memory, sys::SyscallHandler& syscalls);

  /// Load `program` and prepare for execution.
  void reset(const sys::Program& program);
  void reset(std::uint32_t entry, std::uint32_t sp);

  /// Execute one instruction; false once the program has exited.
  bool step();
  /// Run until exit or `max_instructions`; returns instructions executed.
  std::uint64_t run(std::uint64_t max_instructions = ~0ull);

  std::uint32_t reg(unsigned i) const { return regs_[i]; }
  void set_reg(unsigned i, std::uint32_t v) { regs_[i] = v; }
  std::uint32_t cpsr() const { return cpsr_; }
  std::uint32_t pc() const { return pc_; }
  std::uint64_t instret() const { return instret_; }
  bool exited() const { return exited_; }

 private:
  const arm::DecodedInstruction& decoded(std::uint32_t pc, std::uint32_t raw);
  /// Operand read with the architectural r15 = pc + 8 rule.
  std::uint32_t operand(unsigned r) const {
    return r == arm::kRegPc ? pc_ + 8 : regs_[r];
  }
  void write_flags(std::uint32_t nzcv);
  void exec_load_store(const arm::DecodedInstruction& d);
  void exec_lsm(const arm::DecodedInstruction& d);

  mem::Memory& mem_;
  sys::SyscallHandler& sys_;
  std::array<std::uint32_t, arm::kNumRegs> regs_{};
  std::uint32_t cpsr_ = 0;
  std::uint32_t pc_ = 0;
  std::uint64_t instret_ = 0;
  bool exited_ = false;
  std::unordered_map<std::uint32_t, arm::DecodedInstruction> decode_cache_;
};

}  // namespace rcpn::baseline
