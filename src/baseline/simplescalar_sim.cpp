#include "baseline/simplescalar_sim.hpp"

#include <cassert>

namespace rcpn::baseline {

using namespace rcpn::arm;

SimpleScalarConfig::SimpleScalarConfig() {
  // StrongArm-flavoured memory system, same geometry as the RCPN model.
  mem.icache = {16 * 1024, 32, 32, 1, 24, true};
  mem.dcache = {16 * 1024, 32, 32, 1, 24, true};
}

namespace {
SsCache make_cache(const char* name, const mem::CacheConfig& c) {
  const std::uint32_t nsets = c.size_bytes / (c.line_bytes * c.assoc);
  return SsCache(name, nsets == 0 ? 1 : nsets, c.line_bytes, c.assoc, c.hit_latency,
                 c.miss_penalty);
}
}  // namespace

SimpleScalarSim::SimpleScalarSim(SimpleScalarConfig config)
    : cfg_(config),
      icache_(make_cache("il1", config.mem.icache)),
      dcache_(make_cache("dl1", config.mem.dcache)),
      // sim-outorder defaults: itlb:16:4096:4, dtlb:32:4096:4.
      itlb_("itlb", 4, 4096, 4, 1, 30),
      dtlb_("dtlb", 8, 4096, 4, 1, 30),
      readyq_(pool_),
      eventq_(pool_) {
  ifq_.reserve(cfg_.ifq_size);
  ruu_.resize(cfg_.ruu_size);
}

void SimpleScalarSim::reset(const sys::Program& program) {
  mem_.clear();
  program.load_into(mem_);
  icache_.reset();
  dcache_.reset();
  itlb_.reset();
  dtlb_.reset();
  sys_.reset();
  bpred_.reset();
  regs_.fill(0);
  regs_[kRegSp] = program.initial_sp;
  cpsr_ = 0;
  true_pc_ = fetch_pc_ = program.entry;
  cycle_ = committed_ = fetched_ = squashed_ = mispredicts_ = 0;
  seq_ = 0;
  halted_ = false;
  fetch_resume_cycle_ = 0;
  ifq_.clear();
  for (RuuEntry& e : ruu_) {
    while (e.consumers != nullptr) {
      RsLink* n = e.consumers->next;
      pool_.release(e.consumers);
      e.consumers = n;
    }
    e.valid = false;
  }
  ruu_head_ = ruu_tail_ = ruu_count_ = 0;
  lsq_used_ = 0;
  readyq_.clear();
  eventq_.clear();
  producer_.fill(Producer{});
  acc_ruu_occ_ = acc_ifq_occ_ = acc_lsq_occ_ = 0;
  sim_issue_ = sim_wb_ = sim_dispatch_ = 0;
}

// ---------------------------------------------------------------------------
// Functional-first execution (dispatch time)
// ---------------------------------------------------------------------------

std::uint32_t SimpleScalarSim::exec_functional(const DecodedInstruction& d,
                                               std::uint32_t pc) {
  auto operand = [&](std::uint8_t r) -> std::uint32_t {
    if (r >= kNumRegs) return 0;
    return r == kRegPc ? pc + 8 : regs_[r];
  };
  auto write_flags = [&](std::uint32_t nzcv) {
    cpsr_ = (cpsr_ & ~(kFlagN | kFlagZ | kFlagC | kFlagV)) | nzcv;
  };

  if (!cond_pass(d.cond, cpsr_)) return pc + 4;

  switch (d.cls) {
    case OpClass::data_proc: {
      const DataProcOut out = exec_dataproc(d, operand(d.rn), operand(d.rm),
                                            operand(d.rs), cpsr_);
      if (out.writes_flags) write_flags(out.nzcv);
      if (out.writes_rd) regs_[d.rd] = out.result;
      return pc + 4;
    }
    case OpClass::multiply: {
      const MulOut out =
          exec_mul(d, operand(d.rm), operand(d.rs), operand(d.rn), cpsr_);
      if (out.writes_flags) write_flags(out.nzcv);
      regs_[d.rd] = out.result;
      return pc + 4;
    }
    case OpClass::load_store: {
      const LsAddress a = ls_address(d, operand(d.rn), operand(d.rm), cpsr_);
      if (d.is_load) {
        const std::uint32_t v = d.is_byte ? mem_.read8(a.ea) : mem_.read32(a.ea);
        if (a.rn_writeback) regs_[d.rn] = a.rn_after;
        if (d.rd == kRegPc) return v & ~3u;
        regs_[d.rd] = v;
      } else {
        const std::uint32_t v = operand(d.rd);
        if (d.is_byte)
          mem_.write8(a.ea, static_cast<std::uint8_t>(v));
        else
          mem_.write32(a.ea, v);
        if (a.rn_writeback) regs_[d.rn] = a.rn_after;
      }
      return pc + 4;
    }
    case OpClass::load_store_multiple: {
      const LsmPlan plan = lsm_plan(d, regs_[d.rn]);
      std::uint32_t addr = plan.start;
      const std::uint32_t base_original = regs_[d.rn];
      std::uint32_t next = pc + 4;
      for (unsigned r = 0; r < 16; ++r) {
        if (!(d.reg_list & (1u << r))) continue;
        if (d.is_load) {
          const std::uint32_t v = mem_.read32(addr);
          if (r == kRegPc)
            next = v & ~3u;
          else
            regs_[r] = v;
        } else {
          const std::uint32_t v =
              r == d.rn ? base_original : (r == kRegPc ? pc + 8 : regs_[r]);
          mem_.write32(addr, v);
        }
        addr += 4;
      }
      if (d.writeback && !(d.is_load && (d.reg_list & (1u << d.rn))))
        regs_[d.rn] = plan.rn_after;
      return next;
    }
    case OpClass::branch: {
      if (d.branch_via_reg) {
        const DataProcOut out = exec_dataproc(d, operand(d.rn), operand(d.rm),
                                              operand(d.rs), cpsr_);
        if (out.writes_flags) write_flags(out.nzcv);
        return out.result & ~3u;
      }
      if (d.link) regs_[kRegLr] = pc + 4;
      return static_cast<std::uint32_t>(static_cast<std::int64_t>(pc) + 8 +
                                        d.branch_offset);
    }
    case OpClass::swi: {
      const sys::SyscallResult res =
          sys_.handle({d.swi_imm, regs_[0], regs_[1]}, mem_);
      if (res.writes_r0) regs_[0] = res.r0_out;
      if (res.exited) halted_ = true;
      return pc + 4;
    }
    default:
      return pc + 4;
  }
}

// ---------------------------------------------------------------------------
// Generic dependence bookkeeping (rebuilt for every dynamic instruction)
// ---------------------------------------------------------------------------

void SimpleScalarSim::build_dep_lists(RuuEntry& e) {
  const DecodedInstruction& d = e.d;
  e.num_ideps = e.num_odeps = 0;
  auto in = [&](std::uint8_t r) {
    if (r < kNumRegs && r != kRegPc) e.ideps[e.num_ideps++] = r;
  };
  auto out = [&](std::uint8_t r) {
    if (r < kNumRegs && r != kRegPc) e.odeps[e.num_odeps++] = r;
  };
  const bool uses_flags = d.cond != Cond::al || d.reads_carry();
  if (uses_flags) e.ideps[e.num_ideps++] = kCpsrCell;
  if (d.sets_flags) e.odeps[e.num_odeps++] = kCpsrCell;
  switch (d.cls) {
    case OpClass::data_proc:
      in(d.rn);
      if (!d.imm_operand) in(d.rm);
      if (d.shift_by_reg) in(d.rs);
      if (d.writes_rd()) out(d.rd);
      break;
    case OpClass::multiply:
      in(d.rm);
      in(d.rs);
      if (d.accumulate) in(d.rn);
      out(d.rd);
      break;
    case OpClass::load_store:
      in(d.rn);
      if (d.reg_offset) in(d.rm);
      if (d.is_load)
        out(d.rd);
      else
        in(d.rd);
      if (!d.pre_index || d.writeback) out(d.rn);
      break;
    case OpClass::load_store_multiple:
      in(d.rn);
      if (d.writeback) out(d.rn);
      break;
    case OpClass::branch:
      if (d.branch_via_reg) {
        in(d.rn);
        if (!d.imm_operand) in(d.rm);
        if (d.shift_by_reg) in(d.rs);
      }
      if (d.link) out(kRegLr);
      break;
    case OpClass::swi:
      in(0);
      in(1);
      break;
    default:
      break;
  }
}

unsigned SimpleScalarSim::exec_latency(const RuuEntry& e) {
  switch (e.d.cls) {
    case OpClass::multiply:
      return 2 + mul_extra_cycles(regs_[e.d.rs]);
    case OpClass::load_store: {
      if (!e.d.is_load) return 1;  // stores hit the dcache at commit
      const unsigned tlb = dtlb_.access(e.ea, false);
      const unsigned cache = dcache_.access(e.ea, false);
      // +1: address generation precedes the access (one load-use bubble on a
      // hit, as on the SA-110).
      return 1 + (tlb > cache ? tlb : cache);
    }
    case OpClass::load_store_multiple: {
      unsigned total = 0;
      std::uint32_t addr = e.ea;
      for (unsigned r = 0; r < 16; ++r) {
        if (!(e.d.reg_list & (1u << r))) continue;
        dtlb_.access(addr, false);
        total += dcache_.access(addr, !e.d.is_load);
        addr += 4;
      }
      return total == 0 ? 1 : total;
    }
    default:
      return 1;
  }
}

// ---------------------------------------------------------------------------
// Pipeline stages
// ---------------------------------------------------------------------------

void SimpleScalarSim::fetch_stage() {
  if (halted_ || cycle_ < fetch_resume_cycle_) return;
  for (unsigned n = 0; n < cfg_.width; ++n) {
    if (ifq_.size() >= cfg_.ifq_size) return;
    FetchEntry fe;
    fe.pc = fetch_pc_;
    fe.raw = mem_.read32(fetch_pc_);
    const unsigned tlb = itlb_.access(fetch_pc_, false);
    const unsigned cache = icache_.access(fetch_pc_, false);
    fe.ready_cycle = cycle_ + (tlb > cache ? tlb : cache);
    // Next-pc prediction consulted for every fetched instruction (static
    // not-taken under the paper's "simplest parameter values").
    const predictor::Prediction pred = bpred_.predict(fetch_pc_);
    ifq_.push_back(fe);
    ++fetched_;
    fetch_pc_ = pred.taken && pred.target_known ? pred.target : fetch_pc_ + 4;
  }
}

void SimpleScalarSim::dispatch_stage() {
  for (unsigned n = 0; n < cfg_.width; ++n) {
    if (halted_ || ifq_.empty() || ruu_count_ >= cfg_.ruu_size) return;
    const FetchEntry fe = ifq_.front();
    if (fe.ready_cycle > cycle_) return;  // icache miss pending
    assert(fe.pc == true_pc_ && "in-order dispatch lost the program counter");

    RuuEntry& e = ruu_[ruu_tail_];
    assert(!e.valid);
    const int idx = static_cast<int>(ruu_tail_);
    e = RuuEntry{};
    e.valid = true;
    e.pc = fe.pc;
    e.raw = fe.raw;
    // Re-decode from the raw word on every occurrence (table-driven
    // interpretation, no decoded-instruction cache).
    e.d = decode(fe.raw, fe.pc);
    e.seq = seq_++;
    e.is_mem = e.d.cls == OpClass::load_store ||
               e.d.cls == OpClass::load_store_multiple;
    e.is_store = e.is_mem && !e.d.is_load;
    if (e.is_mem) {
      if (lsq_used_ >= cfg_.lsq_size) {  // structural stall
        e.valid = false;
        --seq_;
        return;
      }
      ++lsq_used_;
      if (e.d.cls == OpClass::load_store) {
        const std::uint32_t rnv = e.d.rn == kRegPc ? fe.pc + 8 : regs_[e.d.rn];
        const std::uint32_t rmv = e.d.rm < kNumRegs ? regs_[e.d.rm] : 0;
        e.ea = ls_address(e.d, rnv, rmv, cpsr_).ea;
      } else {
        e.ea = lsm_plan(e.d, regs_[e.d.rn]).start;
      }
    }
    ifq_.erase(ifq_.begin());
    build_dep_lists(e);

    // Wire input dependences onto producers' consumer chains (RS_links).
    e.missing_inputs = 0;
    for (unsigned k = 0; k < e.num_ideps; ++k) {
      const Producer& p = producer_[e.ideps[k]];
      if (p.entry >= 0) {
        RuuEntry& prod = ruu_[static_cast<unsigned>(p.entry)];
        if (prod.valid && prod.seq == p.seq && !prod.completed) {
          RsLink* link = pool_.alloc();
          link->entry = idx;
          link->tag = e.seq;
          link->next = prod.consumers;
          prod.consumers = link;
          ++e.missing_inputs;
        }
      }
    }
    // Register this entry as the newest producer of its outputs.
    for (unsigned k = 0; k < e.num_odeps; ++k)
      producer_[e.odeps[k]] = Producer{idx, e.seq};

    if (e.missing_inputs == 0) {
      e.queued = true;
      readyq_.push(idx);
    }

    // Functional-first execution; timing follows behind.
    const std::uint32_t next = exec_functional(e.d, fe.pc);
    const std::uint32_t predicted = fe.pc + 4;
    if (next != predicted) {
      ++mispredicts_;
      bpred_.update(fe.pc, true, next, true);
      squashed_ += ifq_.size();
      ifq_.clear();
      fetch_pc_ = next;
      fetch_resume_cycle_ = cycle_ + cfg_.branch_penalty;
    } else if (e.d.cls == OpClass::branch) {
      bpred_.update(fe.pc, false, next, false);
    }
    true_pc_ = next;
    ++sim_dispatch_;

    ruu_tail_ = (ruu_tail_ + 1) % cfg_.ruu_size;
    ++ruu_count_;
    if (halted_) return;
  }
}

bool SimpleScalarSim::oldest_unissued(int idx) const {
  // In-order issue check: scan from the head for the first unissued entry
  // (a genuine per-cycle scan in the original's in-order mode).
  for (unsigned i = 0, cur = ruu_head_; i < ruu_count_;
       ++i, cur = (cur + 1) % cfg_.ruu_size) {
    const RuuEntry& e = ruu_[cur];
    if (!e.valid) continue;
    if (!e.issued) return static_cast<int>(cur) == idx;
  }
  return false;
}

bool SimpleScalarSim::load_blocked_by_store(int idx) const {
  // lsq_refresh: a load may not issue past an older in-flight store to the
  // same word (conservative memory disambiguation; the original walks the
  // LSQ every cycle looking for exactly this).
  const RuuEntry& load = ruu_[static_cast<unsigned>(idx)];
  for (unsigned i = 0, cur = ruu_head_; i < ruu_count_;
       ++i, cur = (cur + 1) % cfg_.ruu_size) {
    const RuuEntry& e = ruu_[cur];
    if (!e.valid || e.seq >= load.seq) break;
    if (e.is_store && !e.completed && (e.ea & ~3u) == (load.ea & ~3u)) return true;
  }
  return false;
}

void SimpleScalarSim::issue_stage() {
  unsigned issued_this_cycle = 0;
  issue_scratch_.clear();
  readyq_.drain([&](int idx) { issue_scratch_.push_back(idx); });
  for (int idx : issue_scratch_) {
    RuuEntry& e = ruu_[static_cast<unsigned>(idx)];
    if (!e.valid || e.issued) continue;
    const bool can_issue =
        issued_this_cycle < cfg_.width &&
        (!cfg_.in_order_issue || oldest_unissued(idx)) &&
        !(e.is_mem && e.d.is_load && load_blocked_by_store(idx));
    if (!can_issue) {
      readyq_.push(idx);  // re-queue for the next cycle's scan
      continue;
    }
    e.issued = true;
    e.queued = false;
    ++issued_this_cycle;
    ++sim_issue_;
    eventq_.schedule(idx, cycle_ + exec_latency(e));
  }
}

void SimpleScalarSim::writeback_stage() {
  for (;;) {
    const int idx = eventq_.pop_due(cycle_);
    if (idx < 0) break;
    RuuEntry& e = ruu_[static_cast<unsigned>(idx)];
    if (!e.valid || e.completed) continue;
    e.completed = true;
    ++sim_wb_;
    // Wake consumers by walking the output-dependence chain.
    while (e.consumers != nullptr) {
      RsLink* link = e.consumers;
      e.consumers = link->next;
      RuuEntry& c = ruu_[static_cast<unsigned>(link->entry)];
      if (c.valid && c.seq == link->tag && !c.issued) {
        assert(c.missing_inputs > 0);
        if (--c.missing_inputs == 0 && !c.queued) {
          c.queued = true;
          readyq_.push(link->entry);
        }
      }
      pool_.release(link);
    }
  }
}

void SimpleScalarSim::commit_stage() {
  for (unsigned n = 0; n < cfg_.width; ++n) {
    if (ruu_count_ == 0) return;
    RuuEntry& e = ruu_[ruu_head_];
    if (!e.valid || !e.completed) return;
    if (e.is_store) {
      // Stores perform their cache access at commit (sim-outorder rule).
      dtlb_.access(e.ea, true);
      dcache_.access(e.ea, true);
    }
    if (e.is_mem) --lsq_used_;
    // Retire producer registrations that still point at this entry.
    for (unsigned k = 0; k < e.num_odeps; ++k) {
      Producer& p = producer_[e.odeps[k]];
      if (p.entry == static_cast<int>(ruu_head_) && p.seq == e.seq)
        p = Producer{};
    }
    e.valid = false;
    ruu_head_ = (ruu_head_ + 1) % cfg_.ruu_size;
    --ruu_count_;
    ++committed_;
  }
}

void SimpleScalarSim::tally_cycle_stats() {
  acc_ruu_occ_ += ruu_count_;
  acc_ifq_occ_ += ifq_.size();
  acc_lsq_occ_ += lsq_used_;
}

machines::RunResult SimpleScalarSim::run(const sys::Program& program,
                                         std::uint64_t max_cycles) {
  reset(program);
  while (cycle_ < max_cycles) {
    // sim-outorder stage order: commit, writeback, issue, dispatch, fetch.
    commit_stage();
    writeback_stage();
    issue_stage();
    dispatch_stage();
    fetch_stage();
    tally_cycle_stats();
    ++cycle_;
    if (halted_ && ruu_count_ == 0) break;
  }

  machines::RunResult r;
  r.cycles = cycle_;
  r.instructions = committed_;
  r.cpi = committed_ ? static_cast<double>(cycle_) / static_cast<double>(committed_)
                     : 0.0;
  r.output = sys_.output();
  r.exit_code = sys_.exit_code();
  r.exited = sys_.exited();
  r.icache_misses = icache_.stats().misses;
  r.dcache_misses = dcache_.stats().misses;
  r.icache_hit_ratio = icache_.stats().hit_ratio();
  r.dcache_hit_ratio = dcache_.stats().hit_ratio();
  r.mispredicts = mispredicts_;
  return r;
}

}  // namespace rcpn::baseline
