#include "baseline/ss_structures.hpp"

#include <cassert>

#include "util/bits.hpp"

namespace rcpn::baseline {

SsCache::SsCache(std::string name, std::uint32_t nsets, std::uint32_t bsize,
                 std::uint32_t assoc, std::uint32_t hit_latency,
                 std::uint32_t miss_latency)
    : name_(std::move(name)),
      nsets_(nsets),
      bsize_(bsize),
      assoc_(assoc),
      hit_latency_(hit_latency),
      miss_latency_(miss_latency) {
  assert(util::is_pow2(nsets) && util::is_pow2(bsize));
  offset_bits_ = util::log2_exact(bsize);
  index_bits_ = util::log2_exact(nsets);
  blocks_.resize(static_cast<std::size_t>(nsets) * assoc);
  heads_.resize(nsets);
  reset();
}

void SsCache::reset() {
  for (std::uint32_t s = 0; s < nsets_; ++s) {
    Block* head = nullptr;
    for (std::uint32_t w = assoc_; w > 0; --w) {
      Block& b = blocks_[static_cast<std::size_t>(s) * assoc_ + (w - 1)];
      b = Block{};
      b.next = head;
      head = &b;
    }
    heads_[s] = head;
  }
  stats_ = Stats{};
}

std::uint32_t SsCache::access(std::uint32_t addr, bool is_write) {
  ++stats_.accesses;
  const std::uint32_t set = (addr >> offset_bits_) & (nsets_ - 1);
  const std::uint32_t tag = addr >> (offset_bits_ + index_bits_);

  // Walk the way list (pointer chasing, as cache_access does).
  Block* prev = nullptr;
  Block* cur = heads_[set];
  while (cur != nullptr) {
    if (cur->valid && cur->tag == tag) {
      ++stats_.hits;
      if (is_write) cur->dirty = true;
      // Move to head (MRU).
      if (prev != nullptr) {
        prev->next = cur->next;
        cur->next = heads_[set];
        heads_[set] = cur;
      }
      return hit_latency_;
    }
    if (cur->next == nullptr) break;  // cur = LRU tail
    prev = cur;
    cur = cur->next;
  }

  // Miss: replace the tail block and move it to the head.
  ++stats_.misses;
  assert(cur != nullptr);
  cur->valid = true;
  cur->tag = tag;
  cur->dirty = is_write;
  if (prev != nullptr) {
    prev->next = cur->next;
    cur->next = heads_[set];
    heads_[set] = cur;
  }
  return hit_latency_ + miss_latency_;
}

}  // namespace rcpn::baseline
