#include "core/stats.hpp"

#include <sstream>

#include "core/net.hpp"

namespace rcpn::core {

const char* stall_cause_name(StallCause c) {
  switch (c) {
    case StallCause::no_ready_token: return "no_ready_token";
    case StallCause::guard_rejected: return "guard_rejected";
    case StallCause::capacity_backpressure: return "capacity_backpressure";
  }
  return "?";
}

void Stats::reset(unsigned num_transitions, unsigned num_places) {
  cycles = retired = fetched = squashed = reservations = firings = 0;
  quiesced_cycles = 0;
  transition_fires.assign(num_transitions, 0);
  place_stalls.assign(num_places, 0);
  place_stall_causes.assign(static_cast<std::size_t>(num_places) * kNumStallCauses, 0);
}

std::string Stats::report(const Net& net) const {
  std::ostringstream out;
  out << "cycles:        " << cycles << '\n'
      << "instructions:  " << retired << '\n'
      << "CPI:           " << (retired ? cpi() : 0.0) << '\n'
      << "fetched:       " << fetched << '\n'
      << "squashed:      " << squashed << '\n'
      << "firings:       " << firings << '\n';
  out << "transition firings:\n";
  for (unsigned i = 0; i < transition_fires.size(); ++i) {
    if (transition_fires[i] == 0) continue;
    out << "  " << net.transition(static_cast<TransitionId>(i)).name() << ": "
        << transition_fires[i] << '\n';
  }
  out << "place stalls (no_ready/guard/capacity):\n";
  for (unsigned i = 0; i < place_stalls.size(); ++i) {
    if (place_stalls[i] == 0) continue;
    out << "  " << net.place(static_cast<PlaceId>(i)).name << ": " << place_stalls[i];
    if (place_stall_causes.size() >= (i + 1) * kNumStallCauses) {
      const std::uint64_t* c = &place_stall_causes[i * kNumStallCauses];
      out << " (" << c[0] << "/" << c[1] << "/" << c[2] << ")";
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace rcpn::core
