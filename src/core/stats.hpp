// Execution statistics collected by the engine: cycle counts, retired
// instructions (CPI), per-transition firing counts and per-place stall
// counts. These feed the Fig 10 / Fig 11 benchmark harnesses directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rcpn::core {

class Net;

/// Why a ready token failed to fire any of its candidate transitions this
/// cycle. Attribution follows the candidate scan: the *last* candidate's
/// failure reason wins (a token with zero candidates counts as
/// no_ready_token), identically in every backend — the lockstep tests compare
/// the per-place breakdown across engines.
enum class StallCause : std::uint8_t {
  /// No candidate matched, or a reservation-input token was missing/not ready.
  no_ready_token = 0,
  /// The transition's guard evaluated to false.
  guard_rejected = 1,
  /// An output stage lacked capacity (pipeline backpressure).
  capacity_backpressure = 2,
};

inline constexpr unsigned kNumStallCauses = 3;

const char* stall_cause_name(StallCause c);

struct Stats {
  std::uint64_t cycles = 0;
  /// Instruction tokens that reached the virtual end stage.
  std::uint64_t retired = 0;
  /// Instruction tokens emitted into the net (fetch).
  std::uint64_t fetched = 0;
  /// Instruction tokens squashed by flushes.
  std::uint64_t squashed = 0;
  /// Reservation tokens created.
  std::uint64_t reservations = 0;
  /// Total transition firings (instruction + independent).
  std::uint64_t firings = 0;
  /// Cycles covered by the quiescence fast-forward instead of being stepped
  /// (included in `cycles`; always 0 unless EngineOptions::quiescence_skip).
  std::uint64_t quiesced_cycles = 0;

  std::vector<std::uint64_t> transition_fires;  // indexed by TransitionId
  std::vector<std::uint64_t> place_stalls;      // token present, nothing fired
  /// Stall attribution: [place * kNumStallCauses + cause]. The per-place sum
  /// always equals place_stalls[place].
  std::vector<std::uint64_t> place_stall_causes;

  double cpi() const {
    return retired == 0 ? 0.0 : static_cast<double>(cycles) / static_cast<double>(retired);
  }
  double ipc() const {
    return cycles == 0 ? 0.0 : static_cast<double>(retired) / static_cast<double>(cycles);
  }

  void reset(unsigned num_transitions, unsigned num_places);

  /// Human-readable per-model report (examples use it; benches print tables).
  std::string report(const Net& net) const;
};

}  // namespace rcpn::core
