// Transitions and arcs.
//
// A transition carries the functionality an instruction executes when moving
// between states. Enabling (paper §3, redefined from CPN):
//   guard true  AND  matching tokens on every input arc
//               AND  the output places' stages have spare capacity.
// Output arcs either move the triggering instruction token or emit a fresh
// reservation token (the "arc expression" of the paper, specialised to the
// two conversions processor models use). Input arcs from a place carry a
// priority that fixes the deterministic order in which that place's output
// transitions may consume tokens.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/place.hpp"
#include "core/token.hpp"

namespace rcpn::core {

class Engine;

/// Context handed to guards and actions. `token` is the triggering
/// instruction token (nullptr inside instruction-independent transitions).
/// `transition` is the id of the transition being evaluated/fired: named
/// delegates shared between several transitions key per-transition
/// parameters off it (machines/fuzz_model.hpp is the canonical example) —
/// this is what keeps such models emittable by gen::emit_simulator, whose
/// dispatch calls one named function per case with no closure environment.
struct FireCtx {
  Engine* engine = nullptr;
  InstructionToken* token = nullptr;
  TransitionId transition = TransitionId{-1};
};

/// Raw delegates: one indirect call, no std::function overhead. This is the
/// only registration form the core layer has — the shape of the paper's
/// generated simulators. Callers register a static function plus an
/// environment pointer; the model layer (ModelBuilder) boxes arbitrary
/// closures behind this same signature when a model needs them.
using GuardFn = bool (*)(void* env, FireCtx& ctx);
using ActionFn = void (*)(void* env, FireCtx& ctx);

enum class ArcNeed : std::uint8_t {
  /// The arc along which the triggering instruction token enters. Exactly
  /// one per sub-net transition.
  trigger,
  /// The arc consumes one reservation token from its place.
  reservation,
};

struct InArc {
  PlaceId place = kNoPlace;
  ArcNeed need = ArcNeed::trigger;
  /// Order among the output transitions of `place` (lower fires first);
  /// meaningful on trigger arcs (Fig 6 sorts candidate lists by it).
  std::uint8_t priority = 0;
};

enum class ArcEmit : std::uint8_t {
  /// Move the triggering instruction token into the place.
  move,
  /// Emit a fresh reservation token into the place.
  reservation,
};

struct OutArc {
  PlaceId place = kNoPlace;
  ArcEmit emit = ArcEmit::move;
};

class Transition {
 public:
  Transition(std::string name, TransitionId id, TypeId subnet)
      : name_(std::move(name)), id_(id), subnet_(subnet) {}

  const std::string& name() const { return name_; }
  TransitionId id() const { return id_; }
  /// Operation class whose sub-net this transition belongs to; kNoType for
  /// instruction-independent transitions.
  TypeId subnet() const { return subnet_; }
  bool independent() const { return subnet_ == kNoType; }

  const std::vector<InArc>& inputs() const { return in_; }
  const std::vector<OutArc>& outputs() const { return out_; }
  const std::vector<PlaceId>& state_refs() const { return state_refs_; }

  bool has_guard() const { return guard_fn_ != nullptr; }
  bool eval_guard(FireCtx& ctx) const { return guard_fn_(guard_env_, ctx); }
  bool has_action() const { return action_fn_ != nullptr; }
  void run_action(FireCtx& ctx) const { action_fn_(action_env_, ctx); }

  /// Read-only view of the bound raw delegates (std::function registrations
  /// are already boxed behind these). The gen:: lowering pass copies them
  /// into its flat tables so the compiled engine dispatches without touching
  /// Transition objects; the pointed-to environments stay owned here.
  GuardFn guard_fn() const { return guard_fn_; }
  void* guard_env() const { return guard_env_; }
  ActionFn action_fn() const { return action_fn_; }
  void* action_env() const { return action_env_; }

  /// Fully-qualified C++ symbol of the delegate, when the model registered a
  /// *named* function (ModelBuilder::guard_named/action_named). Empty for
  /// anonymous closures. gen::emit_simulator() turns these into direct calls
  /// in the generated translation unit — a delegate without a symbol cannot
  /// be emitted. The *_takes_machine flags record the named function's
  /// arity: (Machine&, FireCtx&) or just (FireCtx&).
  const std::string& guard_symbol() const { return guard_symbol_; }
  const std::string& action_symbol() const { return action_symbol_; }
  bool guard_symbol_takes_machine() const { return guard_symbol_machine_; }
  bool action_symbol_takes_machine() const { return action_symbol_machine_; }

  /// Execution delay of the transition's functionality; added to the
  /// residence of the moved token at its next place.
  std::uint32_t delay() const { return delay_; }

  /// For independent transitions: how many times it may fire per cycle
  /// (e.g. a 2-wide fetch unit fires twice).
  int max_fires_per_cycle() const { return max_fires_; }

  /// Trigger place (kNoPlace for independent transitions).
  PlaceId trigger_place() const;
  /// Priority of the trigger arc.
  std::uint8_t trigger_priority() const;

 private:
  friend class TransitionBuilder;

  std::string name_;
  TransitionId id_;
  TypeId subnet_;
  GuardFn guard_fn_ = nullptr;
  void* guard_env_ = nullptr;
  ActionFn action_fn_ = nullptr;
  void* action_env_ = nullptr;
  std::string guard_symbol_;
  std::string action_symbol_;
  bool guard_symbol_machine_ = true;
  bool action_symbol_machine_ = true;
  std::uint32_t delay_ = 0;
  int max_fires_ = 1;
  std::vector<InArc> in_;
  std::vector<OutArc> out_;
  std::vector<PlaceId> state_refs_;
};

}  // namespace rcpn::core
