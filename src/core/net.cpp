#include "core/net.hpp"

namespace rcpn::core {

Net::Net(std::string name) : name_(std::move(name)) {
  // Virtual final stage & place: unlimited capacity, id 0.
  stages_.emplace_back("end", /*id=*/0, /*capacity=*/0, /*is_end=*/true);
  places_.push_back(Place{"end", /*id=*/0, /*stage=*/0, /*delay=*/1});
}

StageId Net::add_stage(const std::string& name, std::uint32_t capacity) {
  assert(capacity > 0 && "capacity 0 is reserved for the end stage");
  const StageId id = static_cast<StageId>(stages_.size());
  stages_.emplace_back(name, id, capacity, /*is_end=*/false);
  return id;
}

PlaceId Net::add_place(const std::string& name, StageId stage, std::uint32_t delay) {
  assert(stage >= 0 && static_cast<unsigned>(stage) < stages_.size());
  assert(delay >= 1 && "a place holds its token for at least one cycle");
  const PlaceId id = static_cast<PlaceId>(places_.size());
  places_.push_back(Place{name, id, stage, delay});
  return id;
}

PlaceId Net::add_end_place(const std::string& name) {
  return add_place(name, end_stage(), 1);
}

TypeId Net::add_type(const std::string& name) {
  const TypeId id = static_cast<TypeId>(types_.size());
  types_.push_back(name);
  return id;
}

TransitionBuilder Net::add_transition(const std::string& name, TypeId subnet) {
  assert(subnet >= 0 && static_cast<unsigned>(subnet) < types_.size());
  const TransitionId id = static_cast<TransitionId>(transitions_.size());
  transitions_.push_back(std::make_unique<Transition>(name, id, subnet));
  return TransitionBuilder(this, transitions_.back().get());
}

TransitionBuilder Net::add_independent_transition(const std::string& name) {
  const TransitionId id = static_cast<TransitionId>(transitions_.size());
  transitions_.push_back(std::make_unique<Transition>(name, id, kNoType));
  independent_.push_back(id);
  return TransitionBuilder(this, transitions_.back().get());
}

TransitionBuilder Net::edit_transition(TransitionId t) {
  assert(t >= 0 && static_cast<unsigned>(t) < transitions_.size());
  return TransitionBuilder(this, transitions_[static_cast<unsigned>(t)].get());
}

PlaceId Net::find_place(const std::string& name) const {
  for (const Place& p : places_)
    if (p.name == name) return p.id;
  return kNoPlace;
}

StageId Net::find_stage(const std::string& name) const {
  for (const PipelineStage& s : stages_)
    if (s.name() == name) return s.id();
  return kNoStage;
}

TypeId Net::find_type(const std::string& name) const {
  for (unsigned i = 0; i < types_.size(); ++i)
    if (types_[i] == name) return static_cast<TypeId>(i);
  return kNoType;
}

Net::ModelStats Net::model_stats() const {
  ModelStats ms;
  ms.stages = num_stages();
  ms.places = num_places();
  ms.transitions = num_transitions();
  ms.subnets = num_types();
  for (const auto& t : transitions_)
    ms.arcs += static_cast<unsigned>(t->inputs().size() + t->outputs().size());
  return ms;
}

// -- TransitionBuilder --------------------------------------------------------

TransitionBuilder& TransitionBuilder::from(PlaceId p, std::uint8_t priority) {
  assert(t_->trigger_place() == kNoPlace && "a transition has one trigger arc");
  t_->in_.push_back(InArc{p, ArcNeed::trigger, priority});
  return *this;
}

TransitionBuilder& TransitionBuilder::consume_reservation(PlaceId p) {
  t_->in_.push_back(InArc{p, ArcNeed::reservation, 0});
  return *this;
}

TransitionBuilder& TransitionBuilder::to(PlaceId p) {
#ifndef NDEBUG
  for (const OutArc& a : t_->out_)
    assert(a.emit != ArcEmit::move && "a transition moves its token once");
#endif
  t_->out_.push_back(OutArc{p, ArcEmit::move});
  return *this;
}

TransitionBuilder& TransitionBuilder::emit_reservation(PlaceId p) {
  t_->out_.push_back(OutArc{p, ArcEmit::reservation});
  return *this;
}

TransitionBuilder& TransitionBuilder::guard(GuardFn fn, void* env) {
  t_->guard_fn_ = fn;
  t_->guard_env_ = env;
  return *this;
}

TransitionBuilder& TransitionBuilder::action(ActionFn fn, void* env) {
  t_->action_fn_ = fn;
  t_->action_env_ = env;
  return *this;
}

TransitionBuilder& TransitionBuilder::guard_symbol(std::string symbol,
                                                   bool takes_machine) {
  t_->guard_symbol_ = std::move(symbol);
  t_->guard_symbol_machine_ = takes_machine;
  return *this;
}

TransitionBuilder& TransitionBuilder::action_symbol(std::string symbol,
                                                    bool takes_machine) {
  t_->action_symbol_ = std::move(symbol);
  t_->action_symbol_machine_ = takes_machine;
  return *this;
}

TransitionBuilder& TransitionBuilder::reads_state(PlaceId p) {
  t_->state_refs_.push_back(p);
  return *this;
}

TransitionBuilder& TransitionBuilder::delay(std::uint32_t d) {
  t_->delay_ = d;
  return *this;
}

TransitionBuilder& TransitionBuilder::max_fires_per_cycle(int n) {
  assert(t_->independent() && "per-cycle fire count applies to independent transitions");
  t_->max_fires_ = n;
  return *this;
}

}  // namespace rcpn::core
